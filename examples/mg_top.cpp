/**
 * @file
 * mg_top — live daemon introspection.  Polls a running mgd over its
 * control plane (STATS frames on the same Unix socket the mapping
 * traffic uses) and renders the snapshot like `top`: daemon state and
 * generation, queue depth, per-tenant load and EWMA service time,
 * worker heartbeat ages, per-stage latency with trace-id exemplars,
 * and the slowest requests currently in flight.
 *
 * Run:  ./examples/mg_top --socket /tmp/mgd.sock
 *       ./examples/mg_top --socket /tmp/mgd.sock --count 1 --raw
 *
 * `--raw` prints the snapshot JSON verbatim (scripting); otherwise the
 * JSON is parsed and rendered.  `--count N` stops after N snapshots
 * (0 = until interrupted), `--interval S` is the poll period.
 */
#include <unistd.h>

#include <cstdio>
#include <string>

#include "obs/json.h"
#include "serve/client.h"
#include "util/flags.h"

namespace {

using mg::obs::json::Value;

double
num(const Value& object, const char* name)
{
    const Value* v = object.find(name);
    return v != nullptr && v->isNumber() ? v->number : 0.0;
}

uint64_t
uns(const Value& object, const char* name)
{
    const Value* v = object.find(name);
    return v != nullptr && v->isNumber() ? v->asUint() : 0;
}

std::string
text(const Value& object, const char* name)
{
    const Value* v = object.find(name);
    return v != nullptr && v->isString() ? v->text : std::string();
}

double
millis(double nanos)
{
    return nanos / 1e6;
}

void
render(const Value& snap)
{
    std::printf("mgd %s  generation %llu%s  reloads %llu (%llu rejected, "
                "%llu retired)\n",
                text(snap, "state").c_str(),
                static_cast<unsigned long long>(uns(snap, "generation")),
                snap.find("publishing") != nullptr &&
                        snap.find("publishing")->isBool() &&
                        snap.find("publishing")->boolean
                    ? " [publishing]"
                    : "",
                static_cast<unsigned long long>(uns(snap, "reloads")),
                static_cast<unsigned long long>(
                    uns(snap, "reloads_rejected")),
                static_cast<unsigned long long>(
                    uns(snap, "generations_retired")));

    if (const Value* queue = snap.find("queue");
        queue != nullptr && queue->isObject()) {
        std::printf("queue %llu/%llu (peak %llu), %llu in flight\n",
                    static_cast<unsigned long long>(uns(*queue, "depth")),
                    static_cast<unsigned long long>(
                        uns(*queue, "capacity")),
                    static_cast<unsigned long long>(
                        uns(*queue, "peak_depth")),
                    static_cast<unsigned long long>(
                        uns(*queue, "in_flight")));
    }

    if (const Value* tenants = snap.find("tenants");
        tenants != nullptr && tenants->isArray() &&
        !tenants->items.empty()) {
        std::printf("\n%-12s %6s %6s %9s %9s %6s %6s %6s %9s\n", "TENANT",
                    "QUEUED", "INFLT", "ACCEPTED", "COMPLETE", "SHED",
                    "DLSHED", "ERRS", "EWMA-MS");
        for (const Value& tenant : tenants->items) {
            std::printf("%-12s %6llu %6llu %9llu %9llu %6llu %6llu %6llu "
                        "%9.2f\n",
                        text(tenant, "name").c_str(),
                        static_cast<unsigned long long>(
                            uns(tenant, "queued")),
                        static_cast<unsigned long long>(
                            uns(tenant, "in_flight")),
                        static_cast<unsigned long long>(
                            uns(tenant, "accepted")),
                        static_cast<unsigned long long>(
                            uns(tenant, "completed")),
                        static_cast<unsigned long long>(
                            uns(tenant, "shed")),
                        static_cast<unsigned long long>(
                            uns(tenant, "deadline_shed")),
                        static_cast<unsigned long long>(
                            uns(tenant, "errors")),
                        millis(num(tenant, "ewma_service_ns")));
        }
    }

    if (const Value* workers = snap.find("workers");
        workers != nullptr && workers->isArray() &&
        !workers->items.empty()) {
        std::printf("\nworkers:");
        for (const Value& worker : workers->items) {
            const Value* busy = worker.find("busy");
            const bool is_busy =
                busy != nullptr && busy->isBool() && busy->boolean;
            std::printf("  #%llu %s",
                        static_cast<unsigned long long>(
                            uns(worker, "worker")),
                        is_busy ? "busy" : "idle");
            if (is_busy) {
                std::printf(" %.0fms", millis(num(worker,
                                                  "heartbeat_age_ns")));
            }
        }
        std::printf("\n");
    }

    if (const Value* stages = snap.find("stages");
        stages != nullptr && stages->isArray() && !stages->items.empty()) {
        std::printf("\n%-16s %9s %9s %9s %9s  %s\n", "STAGE", "COUNT",
                    "MEAN-MS", "P50-MS", "P99-MS", "SLOWEST-TRACE");
        for (const Value& stage : stages->items) {
            const uint64_t count = uns(stage, "count");
            if (count == 0) {
                continue;
            }
            std::string exemplar = text(stage, "exemplar");
            std::printf("%-16s %9llu %9.3f %9.3f %9.3f  %s\n",
                        text(stage, "stage").c_str(),
                        static_cast<unsigned long long>(count),
                        millis(num(stage, "mean_ns")),
                        millis(num(stage, "p50_ns")),
                        millis(num(stage, "p99_ns")),
                        exemplar.empty() ? "-" : exemplar.c_str());
        }
    }

    if (const Value* slow = snap.find("slowest_in_flight");
        slow != nullptr && slow->isArray() && !slow->items.empty()) {
        std::printf("\nslowest in flight:\n");
        for (const Value& entry : slow->items) {
            std::printf("  worker %llu  %s  %.1f ms\n",
                        static_cast<unsigned long long>(
                            uns(entry, "worker")),
                        text(entry, "trace").c_str(),
                        millis(num(entry, "age_ns")));
        }
    }

    if (const Value* trace = snap.find("trace");
        trace != nullptr && trace->isObject()) {
        std::printf("\ntracing: sample %.3f, %llu committed, %llu "
                    "dropped spans\n",
                    num(*trace, "sample_rate"),
                    static_cast<unsigned long long>(
                        uns(*trace, "committed")),
                    static_cast<unsigned long long>(
                        uns(*trace, "dropped_spans")));
    }
}

} // namespace

int
main(int argc, char** argv)
try {
    mg::util::Flags flags("mg_top");
    flags.define("socket", "", "mgd Unix-domain socket path")
         .define("interval", "2.0", "seconds between snapshots")
         .define("count", "0",
                 "stop after N snapshots (0 = until interrupted)")
         .define("raw", "false",
                 "print the snapshot JSON verbatim instead of rendering")
         .define("clear", "true",
                 "clear the terminal between rendered snapshots");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }
    if (flags.str("socket").empty()) {
        std::fprintf(stderr,
                     "usage: mg_top --socket <path> [--interval s] "
                     "[--count n] [--raw]\n");
        return 1;
    }
    mg::serve::ClientParams cparams;
    cparams.socketPath = flags.str("socket");
    mg::serve::Client client(cparams);

    const uint64_t count = static_cast<uint64_t>(flags.integer("count"));
    const double interval = flags.real("interval");
    const bool raw = flags.boolean("raw");
    const bool clear = flags.boolean("clear") && count != 1 && !raw;

    for (uint64_t taken = 0; count == 0 || taken < count; ++taken) {
        if (taken > 0) {
            ::usleep(static_cast<useconds_t>(interval * 1e6));
        }
        mg::serve::Response response;
        mg::util::Status status = client.queryStats(response);
        if (!status.ok()) {
            std::fprintf(stderr, "mg_top: %s\n", status.message.c_str());
            return 1;
        }
        if (response.status != mg::serve::ResponseStatus::StatsOk) {
            std::fprintf(stderr, "mg_top: unexpected response %s: %s\n",
                         mg::serve::responseStatusName(response.status),
                         response.message.c_str());
            return 1;
        }
        if (raw) {
            std::printf("%s\n", response.message.c_str());
        } else {
            if (clear) {
                std::printf("\033[2J\033[H");
            }
            render(mg::obs::json::parse(response.message, "mgd stats"));
        }
        std::fflush(stdout);
    }
    return 0;
} catch (const mg::util::Error& e) {
    std::fprintf(stderr, "mg_top: %s\n", e.what());
    return 1;
}
