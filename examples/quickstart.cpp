/**
 * @file
 * Quickstart: the whole miniGiraffe stack in one small program.
 *
 *   1. Generate a toy pangenome (population model) and index it (GBWT,
 *      minimizers, distance index).
 *   2. Save / reload it through the MGZ container.
 *   3. Simulate a handful of short reads.
 *   4. Map them with the full parent pipeline and print the alignments.
 *
 * Run:  ./examples/quickstart [--reads N] [--seed S]
 */
#include <cstdio>

#include "giraffe/parent.h"
#include "index/distance.h"
#include "index/minimizer.h"
#include "io/file.h"
#include "io/mgz.h"
#include "sim/pangenome_gen.h"
#include "sim/read_sim.h"
#include "util/flags.h"

int
main(int argc, char** argv)
{
    mg::util::Flags flags("quickstart");
    flags.define("reads", "12", "number of reads to simulate and map")
         .define("seed", "42", "generation seed")
         .define("mgz", "", "optional path to save the pangenome as MGZ");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }

    // 1. A small pangenome: ~20 kb backbone, 8 haplotypes.
    mg::sim::PangenomeParams pparams;
    pparams.seed = static_cast<uint64_t>(flags.integer("seed"));
    pparams.backboneLength = 20000;
    pparams.haplotypes = 8;
    mg::sim::GeneratedPangenome pg = mg::sim::generatePangenome(pparams);
    std::printf("pangenome: %zu nodes, %zu edges, %zu haplotypes, "
                "%zu graph bases\n",
                pg.graph.numNodes(), pg.graph.numEdges(),
                pg.graph.numPaths(), pg.graph.totalSequenceLength());

    // 2. Round-trip through the MGZ container (the GBZ stand-in).
    std::vector<uint8_t> mgz = mg::io::encodeMgz(pg.graph, pg.gbwt);
    std::printf("mgz container: %zu bytes compressed\n", mgz.size());
    if (!flags.str("mgz").empty()) {
        mg::io::writeFileBytes(flags.str("mgz"), mgz);
        std::printf("saved to %s\n", flags.str("mgz").c_str());
    }
    mg::io::Pangenome loaded = mg::io::decodeMgz(mgz);

    // 3. Indexes over the loaded graph.
    mg::index::MinimizerParams mparams;
    mparams.k = 15;
    mparams.w = 8;
    mg::index::MinimizerIndex minimizers(loaded.graph, mparams);
    mg::index::DistanceIndex distance(loaded.graph);
    std::printf("minimizer index: %zu keys, %zu entries\n",
                minimizers.numKeys(), minimizers.numEntries());

    // 4. Simulate reads from the *generated* haplotypes and map them
    //    against the *loaded* pangenome.
    mg::sim::ReadSimParams rparams;
    rparams.seed = pparams.seed + 1;
    rparams.count = static_cast<size_t>(flags.integer("reads"));
    rparams.readLength = 120;
    rparams.errorRate = 0.01;
    mg::map::ReadSet reads = mg::sim::simulateReads(pg, rparams);

    mg::giraffe::ParentParams gparams;
    mg::giraffe::ParentEmulator giraffe(loaded.graph, loaded.gbwt,
                                        minimizers, distance, gparams);
    mg::giraffe::ParentOutputs outputs = giraffe.run(reads);

    std::printf("\n%-10s %-6s %-7s %-5s %-6s %s\n", "read", "mapped",
                "strand", "score", "mapq", "path");
    for (const mg::giraffe::Alignment& alignment : outputs.alignments) {
        if (!alignment.mapped) {
            std::printf("%-10s no\n", alignment.readName.c_str());
            continue;
        }
        std::string path;
        for (mg::graph::Handle step : alignment.path) {
            path += step.str() + " ";
        }
        std::printf("%-10s yes    %-7s %-5d %-6d %s\n",
                    alignment.readName.c_str(),
                    alignment.onReverseRead ? "-" : "+", alignment.score,
                    alignment.mappingQuality, path.c_str());
    }
    std::printf("\nmapped %zu reads in %.3f s; GBWT cache hit rate %.3f\n",
                reads.size(), outputs.wallSeconds,
                outputs.cacheStats.hitRate());
    return 0;
}
