/**
 * @file
 * The full mapper as a command-line tool: map a FASTQ of short reads
 * against an MGZ pangenome and emit GAF alignments — the parent-emulator
 * counterpart of minigiraffe_app (which runs the critical functions only).
 *
 * Run:  ./examples/giraffe_app <graph.mgz|graph.mgz3> <reads.fastq>
 *           [--threads N] [--batch-size B] [--paired]
 *           [--gaf out.gaf] [--k 15] [--w 8]
 *           [--kernel scalar|swar|simd|auto]
 *           [--index out.mgz3]
 *
 * Build-once / map-many: `--index out.mgz3` writes a zero-copy MGZ v3
 * container (graph + GBWT + prebuilt minimizer/distance indexes) on the
 * first run and memory-maps it on every later run, skipping both the
 * parse and the index builds.  A v3 path can also be passed directly as
 * the positional graph argument.
 */
#include <cstdio>
#include <memory>

#include "fault/fault.h"
#include "giraffe/checkpoint_run.h"
#include "giraffe/parent.h"
#include "giraffe/run_summary.h"
#include "index/distance.h"
#include "index/minimizer.h"
#include "io/fastq.h"
#include "io/file.h"
#include "io/gaf.h"
#include "io/mgz.h"
#include "obs/emitter.h"
#include "obs/hub.h"
#include "obs/trace.h"
#include "serve/stop.h"
#include "util/flags.h"
#include "util/simd.h"
#include "util/timer.h"

namespace {

/** Per-site fault counters for the final metrics snapshot. */
std::vector<mg::obs::MetricValue>
faultExtras()
{
    std::vector<mg::obs::MetricValue> extras;
    for (const auto& [site, stats] : mg::fault::allStats()) {
        mg::obs::MetricValue hits;
        hits.name = "mg_fault_hits_total{site=\"" + site + "\"}";
        hits.help = "Times the fault site was evaluated.";
        hits.value = stats.hits;
        extras.push_back(std::move(hits));
        mg::obs::MetricValue fires;
        fires.name = "mg_fault_fires_total{site=\"" + site + "\"}";
        fires.help = "Times the fault site injected its fault.";
        fires.value = stats.fires;
        extras.push_back(std::move(fires));
    }
    return extras;
}

} // namespace

int
main(int argc, char** argv)
try {
    mg::util::Flags flags("giraffe_app");
    flags.define("threads", "1", "worker thread count")
         .define("batch-size", "512", "reads per scheduler batch")
         .define("paired", "false",
                 "treat consecutive reads as mate pairs")
         .define("gaf", "", "write GAF alignments to this file")
         .define("k", "15", "minimizer k-mer length")
         .define("w", "8", "minimizer window size")
         .define("kernel", "auto",
                 "match kernel: scalar | swar | simd | auto")
         .define("index", "",
                 "MGZ v3 container: mmap it when present, else build "
                 "the indexes once and write it (build-once/map-many)")
         .define("index-build-threads", "0",
                 "worker threads for index construction when parsing "
                 "(0 = hardware)")
         .define("fault", "",
                 "arm fault injection, e.g. 'sched.worker=throw,limit=2'")
         .define("deadline", "0",
                 "wall-clock budget in seconds (0 = unlimited); reads "
                 "past the deadline degrade to best-so-far")
         .define("max-extend-steps", "0",
                 "per-read cap on extension walk states (0 = unlimited)")
         .define("max-gbwt-lookups", "0",
                 "per-read cap on GBWT lookups (0 = unlimited)")
         .define("watchdog", "false",
                 "supervise workers; stalled batches are cancelled "
                 "cooperatively")
         .define("watchdog-stall", "5.0",
                 "seconds without a heartbeat before a worker counts "
                 "as stalled")
         .define("checkpoint", "",
                 "checkpoint directory: flush durable GAF shards and "
                 "resume from them (unpaired reads only)")
         .define("checkpoint-shard", "2048",
                 "reads per checkpoint shard")
         .define("metrics-out", "",
                 "write metrics here (.prom = Prometheus text, anything "
                 "else = JSON snapshot series)")
         .define("metrics-interval", "0",
                 "rewrite --metrics-out every N seconds (0 = final only)")
         .define("trace-out", "",
                 "write a Chrome trace-event JSON timeline (implies "
                 "region profiling; non-checkpoint runs only)")
         .define("flight-ring", "16",
                 "flight-recorder entries per worker")
         .define("summary-json", "",
                 "write the machine-readable run summary here");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }
    if (flags.positional().size() != 2) {
        std::fprintf(stderr,
                     "usage: giraffe_app <graph.mgz> <reads.fastq> "
                     "[flags]\n");
        return 1;
    }

    if (!flags.str("fault").empty()) {
        mg::fault::armFromText(flags.str("fault"));
    }
    // SIGTERM/SIGINT request a graceful stop: the current unit of work
    // (batch, or checkpoint shard) finishes, outputs flush, exit is 0.
    mg::serve::installStopHandlers();

    mg::util::WallTimer timer;
    mg::io::LoadOptions load_options;
    load_options.minimizer.k = static_cast<int>(flags.integer("k"));
    load_options.minimizer.w = static_cast<int>(flags.integer("w"));
    load_options.buildThreads =
        static_cast<unsigned>(flags.integer("index-build-threads"));
    const std::string index_path = flags.str("index");
    mg::io::IndexedPangenome pangenome;
    if (!index_path.empty() && mg::io::fileExists(index_path)) {
        pangenome = mg::io::loadPangenome(index_path, load_options);
    } else {
        pangenome = mg::io::loadPangenome(flags.positional()[0],
                                          load_options);
        if (!index_path.empty()) {
            mg::io::saveMgz3(index_path, pangenome.graph, pangenome.gbwt,
                             pangenome.minimizers, pangenome.distance);
            std::printf("wrote %s (map it on the next run)\n",
                        index_path.c_str());
        }
    }
    mg::map::ReadSet reads = mg::io::loadFastq(flags.positional()[1]);
    if (flags.boolean("paired")) {
        mg::util::require(reads.size() % 2 == 0,
                          "--paired needs an even number of reads");
        reads.pairedEnd = true;
        for (size_t i = 0; i + 1 < reads.size(); i += 2) {
            reads.reads[i].mate = i + 1;
            reads.reads[i + 1].mate = i;
        }
    }
    std::printf("loaded %zu nodes / %zu reads in %.2f s "
                "(%s load: %.3f s, %zu minimizer keys)\n",
                pangenome.graph.numNodes(), reads.size(), timer.seconds(),
                mg::io::loadModeName(pangenome.info.mode),
                pangenome.info.loadSeconds,
                pangenome.minimizers.numKeys());
    timer.reset();

    mg::giraffe::ParentParams params;
    if (!mg::util::parseKernelVariant(flags.str("kernel"),
                                      params.mapper.extend.kernel)) {
        std::fprintf(stderr,
                     "giraffe_app: unknown --kernel '%s' "
                     "(scalar | swar | simd | auto)\n",
                     flags.str("kernel").c_str());
        return 1;
    }
    params.numThreads = static_cast<size_t>(flags.integer("threads"));
    params.batchSize = static_cast<size_t>(flags.integer("batch-size"));
    params.budget.wallSeconds = flags.real("deadline");
    params.budget.maxExtendSteps =
        static_cast<uint64_t>(flags.integer("max-extend-steps"));
    params.budget.maxGbwtLookups =
        static_cast<uint64_t>(flags.integer("max-gbwt-lookups"));
    params.watchdog = flags.boolean("watchdog");
    params.watchdogParams.stallSeconds = flags.real("watchdog-stall");
    if (flags.str("checkpoint").empty()) {
        // Checkpointed runs stop at shard granularity instead (see
        // CheckpointRunParams::stopFlag) — a mid-chunk stop would flush
        // a shard claiming coverage it does not have.
        params.stopFlag = mg::serve::stopFlag();
    }
    mg::giraffe::ParentEmulator giraffe(pangenome.graph, pangenome.gbwt,
                                        pangenome.minimizers,
                                        pangenome.distance, params);

    // Telemetry hub: live metrics + flight recorder, shared by the plain
    // and checkpointed paths.
    const bool telemetry = !flags.str("metrics-out").empty() ||
                           !flags.str("trace-out").empty() ||
                           params.watchdog;
    std::unique_ptr<mg::obs::Hub> hub;
    std::unique_ptr<mg::obs::MetricsEmitter> emitter;
    if (telemetry) {
        hub = std::make_unique<mg::obs::Hub>(
            params.numThreads,
            static_cast<size_t>(flags.integer("flight-ring")));
        mg::obs::installCrashHandler(&hub->flight());
        if (!flags.str("metrics-out").empty()) {
            emitter = std::make_unique<mg::obs::MetricsEmitter>(
                hub->registry(), flags.str("metrics-out"),
                flags.real("metrics-interval"));
            emitter->start();
        }
    }

    if (!flags.str("checkpoint").empty()) {
        // Checkpointed mode: the parent emulator drives shard-at-a-time
        // mapping with durable flushes, resuming from whatever the
        // directory already holds; the stitched GAF is byte-identical to
        // an uninterrupted run.
        mg::giraffe::CheckpointRunParams cp;
        cp.dir = flags.str("checkpoint");
        cp.shardReads =
            static_cast<uint64_t>(flags.integer("checkpoint-shard"));
        cp.hub = hub.get();
        cp.stopFlag = mg::serve::stopFlag();
        mg::giraffe::CheckpointRunResult result =
            mg::giraffe::runCheckpointed(giraffe, reads, cp);
        if (result.stopped) {
            std::printf("graceful stop: in-progress shard flushed, GAF "
                        "holds the contiguous prefix; resume with the "
                        "same --checkpoint dir\n");
        }
        std::printf("checkpointed run: %llu resumed + %llu mapped reads "
                    "in %.3f s (%llu dropped shards)\n",
                    static_cast<unsigned long long>(result.resumedReads),
                    static_cast<unsigned long long>(result.mappedReads),
                    result.wallSeconds,
                    static_cast<unsigned long long>(result.droppedShards));
        std::printf("resilience: %s\n",
                    result.resilience.summary().c_str());
        if (!result.failures.ok()) {
            std::printf("failures: %s\n",
                        result.failures.summary().c_str());
        }
        if (emitter) {
            emitter->finalize(faultExtras());
            std::printf("wrote %s\n", flags.str("metrics-out").c_str());
        }
        if (!flags.str("summary-json").empty()) {
            mg::io::writeFileText(flags.str("summary-json"),
                                  mg::giraffe::summaryJson(result, cp));
            std::printf("wrote %s\n", flags.str("summary-json").c_str());
        }
        if (!flags.str("gaf").empty()) {
            mg::io::writeFileText(flags.str("gaf"), result.gaf);
            std::printf("wrote %s\n", flags.str("gaf").c_str());
        }
        if (hub) {
            mg::obs::installCrashHandler(nullptr);
        }
        return 0;
    }

    mg::perf::Profiler profiler(!flags.str("trace-out").empty());
    mg::giraffe::ParentOutputs outputs = giraffe.run(
        reads, profiler.enabled() ? &profiler : nullptr, nullptr,
        hub.get());

    size_t mapped = 0;
    for (const mg::giraffe::Alignment& alignment : outputs.alignments) {
        if (alignment.mapped) {
            ++mapped;
        }
    }
    if (outputs.stopped) {
        std::printf("graceful stop: running batches finished, later ones "
                    "never started; unvisited reads are unmapped "
                    "placeholders\n");
    }
    std::printf("mapped %zu / %zu reads in %.3f s "
                "(GBWT cache hit rate %.3f)\n",
                mapped, reads.size(), outputs.wallSeconds,
                outputs.cacheStats.hitRate());
    std::printf("resilience: %s\n", outputs.resilience.summary().c_str());
    auto read_name = [&](uint64_t index) -> std::string {
        return index < reads.size() ? reads.reads[index].name : "?";
    };
    for (const mg::sched::WatchdogEvent& event : outputs.watchdogEvents) {
        std::printf("watchdog cancel: worker %zu batch [%zu,%zu) stalled "
                    "%.2f s\n",
                    event.worker, event.batchBegin, event.batchEnd,
                    static_cast<double>(event.stalledNanos) / 1e9);
        for (const mg::obs::FlightEntry& entry : event.flight) {
            const double age =
                event.atNanos > entry.stageEnterNanos
                    ? static_cast<double>(event.atNanos -
                                          entry.stageEnterNanos) / 1e9
                    : 0.0;
            std::printf("  read %llu (%s): in %s for %.3f s\n",
                        static_cast<unsigned long long>(entry.readIndex),
                        read_name(entry.readIndex).c_str(),
                        mg::obs::stageName(entry.stage), age);
        }
    }
    if (!outputs.failures.ok()) {
        std::printf("failures: %s\n", outputs.failures.summary().c_str());
        for (const mg::sched::ItemFailure& item :
             outputs.failures.poisoned) {
            std::printf("  quarantined read %zu (%s): %s\n", item.index,
                        reads.reads[item.index].name.c_str(),
                        item.what.c_str());
        }
        if (hub && !outputs.failures.poisoned.empty()) {
            std::printf("%s", hub->flight()
                                  .report(mg::util::nowNanos(), read_name)
                                  .c_str());
        }
    }
    for (const auto& [site, stats] : mg::fault::allStats()) {
        std::printf("fault site %s: %llu hits, %llu fires\n", site.c_str(),
                    static_cast<unsigned long long>(stats.hits),
                    static_cast<unsigned long long>(stats.fires));
    }
    if (reads.pairedEnd) {
        size_t proper = 0;
        for (const mg::giraffe::PairResult& pair : outputs.pairs) {
            if (pair.properPair) {
                ++proper;
            }
        }
        std::printf("proper pairs: %zu / %zu\n", proper,
                    outputs.pairs.size());
    }

    if (emitter) {
        emitter->finalize(faultExtras());
        std::printf("wrote %s\n", flags.str("metrics-out").c_str());
    }
    if (!flags.str("trace-out").empty()) {
        std::vector<mg::obs::TraceInstant> instants;
        for (const mg::sched::WatchdogEvent& event :
             outputs.watchdogEvents) {
            instants.push_back(mg::obs::TraceInstant{
                "watchdog cancel", event.worker, event.atNanos });
        }
        mg::obs::writeChromeTrace(flags.str("trace-out"), profiler,
                                  instants, "giraffe_app");
        std::printf("wrote %s\n", flags.str("trace-out").c_str());
    }
    if (!flags.str("summary-json").empty()) {
        pangenome.refreshResidency(); // post-run page-cache footprint
        mg::io::writeFileText(flags.str("summary-json"),
                              mg::giraffe::summaryJson(
                                  outputs, params, &pangenome.info));
        std::printf("wrote %s\n", flags.str("summary-json").c_str());
    }
    if (!flags.str("gaf").empty()) {
        mg::io::saveGaf(flags.str("gaf"), outputs.alignments, reads,
                        pangenome.graph);
        std::printf("wrote %s\n", flags.str("gaf").c_str());
    }
    if (hub) {
        mg::obs::installCrashHandler(nullptr);
    }
    return 0;
} catch (const mg::util::Error& e) {
    std::fprintf(stderr, "giraffe_app: %s\n", e.what());
    return 1;
}
