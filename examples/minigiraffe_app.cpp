/**
 * @file
 * miniGiraffe — the proxy application itself, mirroring the paper's
 * binary.  Inputs are the pangenome container and the reads+seeds capture;
 * the run executes only the critical functions (cluster_seeds and
 * process_until_threshold_c / extension) and writes the raw mapping
 * results.  The three Section VII-B tuning parameters are command-line
 * flags, as are instrumentation toggles.
 *
 * Run:  ./examples/minigiraffe_app <graph.mgz> <seeds.bin>
 *           [--threads N] [--batch-size B] [--cache-capacity C]
 *           [--scheduler openmp|vg|steal] [--output out.ext]
 *           [--profile regions.csv]
 */
#include <cstdio>

#include "fault/fault.h"
#include "giraffe/proxy.h"
#include "index/distance.h"
#include "io/extensions_io.h"
#include "io/mgz.h"
#include "io/reads_bin.h"
#include "util/flags.h"

int
main(int argc, char** argv)
try {
    mg::util::Flags flags("minigiraffe");
    flags.define("threads", "1", "worker thread count")
         .define("batch-size", "512", "reads per scheduler batch")
         .define("cache-capacity", "256",
                 "initial CachedGBWT capacity (0 = no caching)")
         .define("scheduler", "openmp", "openmp | vg | steal")
         .define("output", "", "write raw extensions to this file")
         .define("profile", "", "dump per-region timing records (CSV)")
         .define("fault", "",
                 "arm fault injection, e.g. 'sched.worker=throw,limit=2'")
         .define("deadline", "0",
                 "wall-clock budget in seconds (0 = unlimited)")
         .define("max-extend-steps", "0",
                 "per-read cap on extension walk states (0 = unlimited)")
         .define("max-gbwt-lookups", "0",
                 "per-read cap on GBWT lookups (0 = unlimited)")
         .define("watchdog", "false",
                 "supervise workers; stalled batches are cancelled")
         .define("watchdog-stall", "5.0",
                 "seconds without a heartbeat before a worker counts "
                 "as stalled");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }
    if (flags.positional().size() != 2) {
        std::fprintf(stderr,
                     "usage: minigiraffe <graph.mgz> <seeds.bin> [flags]\n");
        return 1;
    }

    if (!flags.str("fault").empty()) {
        mg::fault::armFromText(flags.str("fault"));
    }

    mg::io::Pangenome pangenome =
        mg::io::loadMgz(flags.positional()[0]);
    mg::io::SeedCapture capture =
        mg::io::loadSeedCapture(flags.positional()[1]);
    mg::index::DistanceIndex distance(pangenome.graph);

    mg::giraffe::ProxyParams params;
    params.numThreads = static_cast<size_t>(flags.integer("threads"));
    params.batchSize = static_cast<size_t>(flags.integer("batch-size"));
    params.mapper.gbwtCacheCapacity =
        static_cast<size_t>(flags.integer("cache-capacity"));
    params.scheduler = mg::sched::schedulerFromName(flags.str("scheduler"));
    params.budget.wallSeconds = flags.real("deadline");
    params.budget.maxExtendSteps =
        static_cast<uint64_t>(flags.integer("max-extend-steps"));
    params.budget.maxGbwtLookups =
        static_cast<uint64_t>(flags.integer("max-gbwt-lookups"));
    params.watchdog = flags.boolean("watchdog");
    params.watchdogParams.stallSeconds = flags.real("watchdog-stall");

    mg::giraffe::ProxyRunner proxy(pangenome.graph, pangenome.gbwt,
                                   distance, params);
    mg::perf::Profiler profiler(!flags.str("profile").empty());
    mg::giraffe::ProxyOutputs outputs = proxy.run(
        capture, profiler.enabled() ? &profiler : nullptr);

    uint64_t total_extensions = 0;
    for (const mg::io::ReadExtensions& entry : outputs.extensions) {
        total_extensions += entry.extensions.size();
    }
    std::printf("miniGiraffe: mapped %llu reads -> %llu extensions in "
                "%.3f s (makespan)\n",
                static_cast<unsigned long long>(outputs.readsMapped),
                static_cast<unsigned long long>(total_extensions),
                outputs.wallSeconds);
    std::printf("scheduler=%s batch=%zu capacity=%zu threads=%zu\n",
                mg::sched::schedulerName(params.scheduler),
                params.batchSize, params.mapper.gbwtCacheCapacity,
                params.numThreads);
    std::printf("CachedGBWT: %.3f hit rate, %llu decodes, %llu rehashes\n",
                outputs.cacheStats.hitRate(),
                static_cast<unsigned long long>(outputs.cacheStats.decodes),
                static_cast<unsigned long long>(
                    outputs.cacheStats.rehashes));
    std::printf("resilience: %s\n", outputs.resilience.summary().c_str());
    if (!outputs.failures.ok()) {
        std::printf("failures: %s\n", outputs.failures.summary().c_str());
        for (const mg::sched::ItemFailure& item :
             outputs.failures.poisoned) {
            std::printf("  quarantined read %zu (%s): %s\n", item.index,
                        capture.entries[item.index].read.name.c_str(),
                        item.what.c_str());
        }
    }
    for (const auto& [site, stats] : mg::fault::allStats()) {
        std::printf("fault site %s: %llu hits, %llu fires\n", site.c_str(),
                    static_cast<unsigned long long>(stats.hits),
                    static_cast<unsigned long long>(stats.fires));
    }

    if (!flags.str("output").empty()) {
        mg::io::saveExtensions(flags.str("output"), outputs.extensions);
        std::printf("wrote %s\n", flags.str("output").c_str());
    }
    if (profiler.enabled()) {
        profiler.dumpCsv(flags.str("profile"));
        std::printf("wrote %s\n", flags.str("profile").c_str());
    }
    return 0;
} catch (const mg::util::Error& e) {
    std::fprintf(stderr, "minigiraffe: %s\n", e.what());
    return 1;
}
