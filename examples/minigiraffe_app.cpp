/**
 * @file
 * miniGiraffe — the proxy application itself, mirroring the paper's
 * binary.  Inputs are the pangenome container and the reads+seeds capture;
 * the run executes only the critical functions (cluster_seeds and
 * process_until_threshold_c / extension) and writes the raw mapping
 * results.  The three Section VII-B tuning parameters are command-line
 * flags, as are instrumentation toggles.
 *
 * Run:  ./examples/minigiraffe_app <graph.mgz|graph.mgz3> <seeds.bin>
 *           [--threads N] [--batch-size B] [--cache-capacity C]
 *           [--scheduler openmp|vg|steal] [--kernel scalar|swar|simd|auto]
 *           [--prefilter F] [--output out.ext]
 *           [--profile regions.csv] [--metrics-out m.prom|m.json]
 *           [--trace-out trace.json] [--summary-json summary.json]
 */
#include <cstdio>
#include <memory>

#include "fault/fault.h"
#include "giraffe/proxy.h"
#include "giraffe/run_summary.h"
#include "index/distance.h"
#include "io/extensions_io.h"
#include "io/file.h"
#include "io/mgz.h"
#include "io/reads_bin.h"
#include "obs/emitter.h"
#include "obs/hub.h"
#include "obs/trace.h"
#include "serve/stop.h"
#include "util/flags.h"
#include "util/simd.h"
#include "util/timer.h"

namespace {

/** Per-site fault counters, appended to the final metrics snapshot (the
 *  set of armed sites is only known at end of run). */
std::vector<mg::obs::MetricValue>
faultExtras()
{
    std::vector<mg::obs::MetricValue> extras;
    for (const auto& [site, stats] : mg::fault::allStats()) {
        mg::obs::MetricValue hits;
        hits.name = "mg_fault_hits_total{site=\"" + site + "\"}";
        hits.help = "Times the fault site was evaluated.";
        hits.value = stats.hits;
        extras.push_back(std::move(hits));
        mg::obs::MetricValue fires;
        fires.name = "mg_fault_fires_total{site=\"" + site + "\"}";
        fires.help = "Times the fault site injected its fault.";
        fires.value = stats.fires;
        extras.push_back(std::move(fires));
    }
    return extras;
}

/** Flight-recorder dump of one watchdog cancellation, naming the reads
 *  that were on the operating table when the stall was detected. */
void
printWatchdogEvent(const mg::sched::WatchdogEvent& event,
                   const std::function<std::string(uint64_t)>& read_name)
{
    std::printf("watchdog cancel: worker %zu batch [%zu,%zu) stalled "
                "%.2f s\n",
                event.worker, event.batchBegin, event.batchEnd,
                static_cast<double>(event.stalledNanos) / 1e9);
    for (const mg::obs::FlightEntry& entry : event.flight) {
        const double age =
            event.atNanos > entry.stageEnterNanos
                ? static_cast<double>(event.atNanos -
                                      entry.stageEnterNanos) / 1e9
                : 0.0;
        std::printf("  read %llu (%s): in %s for %.3f s\n",
                    static_cast<unsigned long long>(entry.readIndex),
                    read_name(entry.readIndex).c_str(),
                    mg::obs::stageName(entry.stage), age);
    }
}

} // namespace

int
main(int argc, char** argv)
try {
    mg::util::Flags flags("minigiraffe");
    flags.define("threads", "1", "worker thread count")
         .define("batch-size", "512", "reads per scheduler batch")
         .define("cache-capacity", "256",
                 "initial CachedGBWT capacity (0 = no caching)")
         .define("scheduler", "openmp", "openmp | vg | steal")
         .define("kernel", "auto",
                 "match kernel: scalar | swar | simd | auto")
         .define("prefilter", "0",
                 "skip seeds scoring below this fraction of the read's "
                 "best chain (0 = off; output is no longer golden)")
         .define("output", "", "write raw extensions to this file")
         .define("profile", "", "dump per-region timing records (CSV)")
         .define("fault", "",
                 "arm fault injection, e.g. 'sched.worker=throw,limit=2'")
         .define("deadline", "0",
                 "wall-clock budget in seconds (0 = unlimited)")
         .define("max-extend-steps", "0",
                 "per-read cap on extension walk states (0 = unlimited)")
         .define("max-gbwt-lookups", "0",
                 "per-read cap on GBWT lookups (0 = unlimited)")
         .define("watchdog", "false",
                 "supervise workers; stalled batches are cancelled")
         .define("watchdog-stall", "5.0",
                 "seconds without a heartbeat before a worker counts "
                 "as stalled")
         .define("metrics-out", "",
                 "write metrics here (.prom = Prometheus text, anything "
                 "else = JSON snapshot series)")
         .define("metrics-interval", "0",
                 "rewrite --metrics-out every N seconds (0 = final only)")
         .define("trace-out", "",
                 "write a Chrome trace-event JSON timeline (implies "
                 "region profiling)")
         .define("flight-ring", "16",
                 "flight-recorder entries per worker")
         .define("summary-json", "",
                 "write the machine-readable run summary here");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }
    if (flags.positional().size() != 2) {
        std::fprintf(stderr,
                     "usage: minigiraffe <graph.mgz> <seeds.bin> [flags]\n");
        return 1;
    }

    if (!flags.str("fault").empty()) {
        mg::fault::armFromText(flags.str("fault"));
    }
    // SIGTERM/SIGINT request a graceful stop: running batches finish,
    // results written so far still flush, and the exit code stays 0.
    mg::serve::installStopHandlers();

    // Unified load path: v1/v2 containers parse and build the indexes,
    // v3 containers mmap near-instantly (the seeds arrive precomputed in
    // the capture, but a v3 file carries the minimizer tables anyway).
    mg::io::IndexedPangenome pangenome =
        mg::io::loadPangenome(flags.positional()[0]);
    mg::io::SeedCapture capture =
        mg::io::loadSeedCapture(flags.positional()[1]);
    std::printf("pangenome: %zu nodes, %s load in %.3f s\n",
                pangenome.graph.numNodes(),
                mg::io::loadModeName(pangenome.info.mode),
                pangenome.info.loadSeconds);

    mg::giraffe::ProxyParams params;
    params.numThreads = static_cast<size_t>(flags.integer("threads"));
    params.batchSize = static_cast<size_t>(flags.integer("batch-size"));
    params.mapper.gbwtCacheCapacity =
        static_cast<size_t>(flags.integer("cache-capacity"));
    params.scheduler = mg::sched::schedulerFromName(flags.str("scheduler"));
    if (!mg::util::parseKernelVariant(flags.str("kernel"),
                                      params.mapper.extend.kernel)) {
        std::fprintf(stderr,
                     "minigiraffe: unknown --kernel '%s' "
                     "(scalar | swar | simd | auto)\n",
                     flags.str("kernel").c_str());
        return 1;
    }
    params.mapper.prefilterFraction = flags.real("prefilter");
    params.budget.wallSeconds = flags.real("deadline");
    params.budget.maxExtendSteps =
        static_cast<uint64_t>(flags.integer("max-extend-steps"));
    params.budget.maxGbwtLookups =
        static_cast<uint64_t>(flags.integer("max-gbwt-lookups"));
    params.watchdog = flags.boolean("watchdog");
    params.watchdogParams.stallSeconds = flags.real("watchdog-stall");
    params.stopFlag = mg::serve::stopFlag();

    mg::giraffe::ProxyRunner proxy(pangenome.graph, pangenome.gbwt,
                                   pangenome.distance, params);
    mg::perf::Profiler profiler(!flags.str("profile").empty() ||
                                !flags.str("trace-out").empty());

    // Telemetry hub: live metrics + flight recorder.  Created whenever an
    // observability output was requested or the watchdog is on (so its
    // cancellation events carry flight-recorder context).
    const bool telemetry = !flags.str("metrics-out").empty() ||
                           !flags.str("trace-out").empty() ||
                           params.watchdog;
    std::unique_ptr<mg::obs::Hub> hub;
    std::unique_ptr<mg::obs::MetricsEmitter> emitter;
    if (telemetry) {
        hub = std::make_unique<mg::obs::Hub>(
            params.numThreads,
            static_cast<size_t>(flags.integer("flight-ring")));
        mg::obs::installCrashHandler(&hub->flight());
        if (!flags.str("metrics-out").empty()) {
            emitter = std::make_unique<mg::obs::MetricsEmitter>(
                hub->registry(), flags.str("metrics-out"),
                flags.real("metrics-interval"));
            emitter->start();
        }
    }

    mg::giraffe::ProxyOutputs outputs = proxy.run(
        capture, profiler.enabled() ? &profiler : nullptr, nullptr,
        hub.get());

    uint64_t total_extensions = 0;
    for (const mg::io::ReadExtensions& entry : outputs.extensions) {
        total_extensions += entry.extensions.size();
    }
    if (outputs.stopped) {
        std::printf("graceful stop: running batches finished, later ones "
                    "never started\n");
    }
    std::printf("miniGiraffe: mapped %llu reads -> %llu extensions in "
                "%.3f s (makespan)\n",
                static_cast<unsigned long long>(outputs.readsMapped),
                static_cast<unsigned long long>(total_extensions),
                outputs.wallSeconds);
    std::printf("scheduler=%s batch=%zu capacity=%zu threads=%zu\n",
                mg::sched::schedulerName(params.scheduler),
                params.batchSize, params.mapper.gbwtCacheCapacity,
                params.numThreads);
    std::printf("CachedGBWT: %.3f hit rate, %llu decodes, %llu rehashes\n",
                outputs.cacheStats.hitRate(),
                static_cast<unsigned long long>(outputs.cacheStats.decodes),
                static_cast<unsigned long long>(
                    outputs.cacheStats.rehashes));
    std::printf("resilience: %s\n", outputs.resilience.summary().c_str());
    auto read_name = [&](uint64_t index) -> std::string {
        return index < capture.entries.size()
                   ? capture.entries[index].read.name
                   : "?";
    };
    for (const mg::sched::WatchdogEvent& event : outputs.watchdogEvents) {
        printWatchdogEvent(event, read_name);
    }
    if (!outputs.failures.ok()) {
        std::printf("failures: %s\n", outputs.failures.summary().c_str());
        for (const mg::sched::ItemFailure& item :
             outputs.failures.poisoned) {
            std::printf("  quarantined read %zu (%s): %s\n", item.index,
                        capture.entries[item.index].read.name.c_str(),
                        item.what.c_str());
        }
        if (hub && !outputs.failures.poisoned.empty()) {
            std::printf("%s", hub->flight()
                                  .report(mg::util::nowNanos(), read_name)
                                  .c_str());
        }
    }
    for (const auto& [site, stats] : mg::fault::allStats()) {
        std::printf("fault site %s: %llu hits, %llu fires\n", site.c_str(),
                    static_cast<unsigned long long>(stats.hits),
                    static_cast<unsigned long long>(stats.fires));
    }

    if (emitter) {
        emitter->finalize(faultExtras());
        std::printf("wrote %s\n", flags.str("metrics-out").c_str());
    }
    if (!flags.str("trace-out").empty()) {
        std::vector<mg::obs::TraceInstant> instants;
        for (const mg::sched::WatchdogEvent& event :
             outputs.watchdogEvents) {
            instants.push_back(mg::obs::TraceInstant{
                "watchdog cancel", event.worker, event.atNanos });
        }
        mg::obs::writeChromeTrace(flags.str("trace-out"), profiler,
                                  instants, "minigiraffe");
        std::printf("wrote %s\n", flags.str("trace-out").c_str());
    }
    if (!flags.str("summary-json").empty()) {
        pangenome.refreshResidency(); // post-run page-cache footprint
        mg::io::writeFileText(flags.str("summary-json"),
                              mg::giraffe::summaryJson(
                                  outputs, params, &pangenome.info));
        std::printf("wrote %s\n", flags.str("summary-json").c_str());
    }

    if (!flags.str("output").empty()) {
        mg::io::saveExtensions(flags.str("output"), outputs.extensions);
        std::printf("wrote %s\n", flags.str("output").c_str());
    }
    if (!flags.str("profile").empty()) {
        profiler.dumpCsv(flags.str("profile"));
        std::printf("wrote %s\n", flags.str("profile").c_str());
    }
    if (hub) {
        mg::obs::installCrashHandler(nullptr);
    }
    return 0;
} catch (const mg::util::Error& e) {
    std::fprintf(stderr, "minigiraffe: %s\n", e.what());
    return 1;
}
