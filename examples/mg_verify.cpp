/**
 * @file
 * mg_verify — integrity checker for this repository's file formats.  For
 * every argument the tool picks a decoder by file extension, runs it, and
 * prints either the decoded summary or the structured error (code, file,
 * section, byte offset) the hardened decode paths report.  MGZ containers
 * additionally get a per-section checksum table from inspectMgz, so every
 * damaged section of a corrupt file is listed in one pass.
 *
 * Run:  ./examples/mg_verify <file> [<file>...]
 *           [--deep true|false]   also decode MGZ payloads (default true)
 *
 * Exit status: 0 when every file verified, 1 otherwise.
 */
#include <cstdio>
#include <string>
#include <unordered_map>

#include "io/checkpoint.h"
#include "io/extensions_io.h"
#include "io/fastq.h"
#include "io/file.h"
#include "io/gfa.h"
#include "io/mgz.h"
#include "io/reads_bin.h"
#include "obs/json.h"
#include "obs/request_trace.h"
#include "serve/frame.h"
#include "util/flags.h"
#include "util/status.h"

namespace {

bool
endsWith(const std::string& text, const std::string& suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

/**
 * Validate a metrics snapshot series (obs::toJson output): schema marker,
 * strictly increasing snapshot times, and counter/histogram monotonicity
 * — a counter that shrinks between snapshots means a broken exporter or a
 * hand-edited file.  Prints the final snapshot's nonzero values.
 */
bool
verifyMetricsJson(const std::string& path, const mg::obs::json::Value& doc)
{
    const mg::obs::json::Value* snapshots = doc.find("snapshots");
    if (snapshots == nullptr || !snapshots->isArray()) {
        std::fprintf(stderr, "%s: metrics file has no snapshots array\n",
                     path.c_str());
        return false;
    }
    uint64_t prev_at = 0;
    // name -> last seen counter value / histogram count
    std::vector<std::pair<std::string, uint64_t>> watermarks;
    auto watermark = [&](const std::string& name) -> uint64_t& {
        for (auto& [n, v] : watermarks) {
            if (n == name) {
                return v;
            }
        }
        watermarks.emplace_back(name, 0);
        return watermarks.back().second;
    };
    bool ok = true;
    for (size_t s = 0; s < snapshots->items.size(); ++s) {
        const mg::obs::json::Value& snap = snapshots->items[s];
        const mg::obs::json::Value* at = snap.find("at_ns");
        const mg::obs::json::Value* metrics = snap.find("metrics");
        if (at == nullptr || !at->isNumber() || metrics == nullptr ||
            !metrics->isArray()) {
            std::fprintf(stderr, "%s: snapshot %zu malformed\n",
                         path.c_str(), s);
            return false;
        }
        if (s > 0 && at->asUint() <= prev_at) {
            std::fprintf(stderr,
                         "%s: snapshot %zu at_ns not increasing\n",
                         path.c_str(), s);
            ok = false;
        }
        prev_at = at->asUint();
        for (const mg::obs::json::Value& metric : metrics->items) {
            const mg::obs::json::Value* name = metric.find("name");
            const mg::obs::json::Value* kind = metric.find("kind");
            if (name == nullptr || !name->isString() || kind == nullptr ||
                !kind->isString()) {
                std::fprintf(stderr, "%s: snapshot %zu has a metric "
                             "without name/kind\n", path.c_str(), s);
                return false;
            }
            uint64_t current = 0;
            if (kind->text == "counter") {
                const mg::obs::json::Value* value = metric.find("value");
                if (value == nullptr || !value->isNumber()) {
                    std::fprintf(stderr, "%s: counter %s has no value\n",
                                 path.c_str(), name->text.c_str());
                    return false;
                }
                current = value->asUint();
            } else if (kind->text == "histogram") {
                const mg::obs::json::Value* count = metric.find("count");
                if (count == nullptr || !count->isNumber()) {
                    std::fprintf(stderr, "%s: histogram %s has no count\n",
                                 path.c_str(), name->text.c_str());
                    return false;
                }
                current = count->asUint();
            } else {
                continue; // gauges may move in any direction
            }
            uint64_t& seen = watermark(name->text);
            if (current < seen) {
                std::fprintf(stderr,
                             "%s: %s shrank between snapshots "
                             "(%llu -> %llu)\n",
                             path.c_str(), name->text.c_str(),
                             static_cast<unsigned long long>(seen),
                             static_cast<unsigned long long>(current));
                ok = false;
            }
            seen = current;
        }
    }
    std::printf("%s: metrics series, %zu snapshots%s\n", path.c_str(),
                snapshots->items.size(), ok ? "" : " (NOT monotonic)");
    if (!snapshots->items.empty()) {
        const mg::obs::json::Value* metrics =
            snapshots->items.back().find("metrics");
        for (const mg::obs::json::Value& metric : metrics->items) {
            const mg::obs::json::Value* name = metric.find("name");
            const mg::obs::json::Value* kind = metric.find("kind");
            if (kind->text == "histogram") {
                const mg::obs::json::Value* count = metric.find("count");
                if (count->asUint() > 0) {
                    std::printf("  %-44s count=%llu\n",
                                name->text.c_str(),
                                static_cast<unsigned long long>(
                                    count->asUint()));
                }
            } else {
                const mg::obs::json::Value* value = metric.find("value");
                if (value != nullptr && value->asUint() > 0) {
                    std::printf("  %-44s %llu\n", name->text.c_str(),
                                static_cast<unsigned long long>(
                                    value->asUint()));
                }
            }
        }
    }
    return ok;
}

/**
 * Validate a client request capture (`.mgreq`): every frame is CRC-whole
 * and decodes as a Request or a RELOAD Control frame, and ids are
 * strictly increasing across both kinds (the client stamps a fresh id
 * per attempt from one counter).  When the sibling `.mgresp` exists it
 * is cross-checked: every id must be answered — Ok, RETRY_AFTER, Error,
 * ShuttingDown, DEADLINE_SHED, and the reload verdicts all count; a
 * request with *no* response means the daemon leaked it.
 */
bool
verifyRequestCapture(const std::string& path,
                     const std::vector<uint8_t>& bytes)
{
    std::vector<std::vector<uint8_t>> payloads =
        mg::serve::parseFrameStream(bytes, path);
    bool ok = true;
    uint64_t prev_id = 0;
    uint64_t total_reads = 0;
    size_t controls = 0;
    std::vector<uint64_t> ids;
    ids.reserve(payloads.size());
    for (size_t i = 0; i < payloads.size(); ++i) {
        uint64_t id = 0;
        mg::serve::MessageKind kind = mg::serve::MessageKind::Request;
        if (mg::serve::peekKind(payloads[i], kind).ok() &&
            kind == mg::serve::MessageKind::Control) {
            mg::serve::ControlRequest control;
            mg::util::Status status =
                mg::serve::decodeControl(payloads[i], control);
            if (!status.ok()) {
                std::fprintf(stderr, "%s: frame %zu: %s\n", path.c_str(),
                             i, status.toString().c_str());
                return false;
            }
            id = control.id;
            ++controls;
        } else {
            mg::serve::Request request;
            mg::util::Status status =
                mg::serve::decodeRequest(payloads[i], request);
            if (!status.ok()) {
                std::fprintf(stderr, "%s: frame %zu: %s\n", path.c_str(),
                             i, status.toString().c_str());
                return false;
            }
            id = request.id;
            total_reads += request.reads.size();
        }
        if (i > 0 && id <= prev_id) {
            std::fprintf(stderr,
                         "%s: frame %zu: id %llu not monotone (prev "
                         "%llu)\n",
                         path.c_str(), i,
                         static_cast<unsigned long long>(id),
                         static_cast<unsigned long long>(prev_id));
            ok = false;
        }
        prev_id = id;
        ids.push_back(id);
    }
    std::printf("%s: request capture, %zu frames (%zu control), %llu "
                "reads, ids monotone: %s\n",
                path.c_str(), payloads.size(), controls,
                static_cast<unsigned long long>(total_reads),
                ok ? "yes" : "NO");

    const std::string resp_path =
        path.substr(0, path.size() - 6) + ".mgresp";
    std::vector<uint8_t> resp_bytes;
    try {
        resp_bytes = mg::io::readFileBytes(resp_path);
    } catch (const mg::util::Error&) {
        std::printf("  (no %s to cross-check)\n", resp_path.c_str());
        return ok;
    }
    std::unordered_map<uint64_t, mg::serve::ResponseStatus> answered;
    for (const std::vector<uint8_t>& payload :
         mg::serve::parseFrameStream(resp_bytes, resp_path)) {
        mg::serve::Response response;
        mg::util::Status status =
            mg::serve::decodeResponse(payload, response);
        if (!status.ok()) {
            std::fprintf(stderr, "%s: %s\n", resp_path.c_str(),
                         status.toString().c_str());
            return false;
        }
        answered.emplace(response.id, response.status);
    }
    size_t mapped = 0;
    size_t shed = 0;
    size_t errors = 0;
    size_t reloads = 0;
    size_t leaked = 0;
    for (uint64_t id : ids) {
        auto it = answered.find(id);
        if (it == answered.end()) {
            std::fprintf(stderr,
                         "%s: request id %llu has no response — the "
                         "daemon leaked it\n",
                         path.c_str(),
                         static_cast<unsigned long long>(id));
            ++leaked;
            continue;
        }
        switch (it->second) {
          case mg::serve::ResponseStatus::Ok:
            ++mapped;
            break;
          case mg::serve::ResponseStatus::RetryAfter:
          case mg::serve::ResponseStatus::ShuttingDown:
          case mg::serve::ResponseStatus::DeadlineShed:
            ++shed;
            break;
          case mg::serve::ResponseStatus::Error:
            ++errors;
            break;
          case mg::serve::ResponseStatus::ReloadOk:
          case mg::serve::ResponseStatus::ReloadRejected:
          case mg::serve::ResponseStatus::StatsOk:
            ++reloads;
            break;
        }
    }
    std::printf("  cross-check vs %s: %zu mapped, %zu shed, %zu error, "
                "%zu control verdicts, %zu leaked\n",
                resp_path.c_str(), mapped, shed, errors, reloads, leaked);
    return ok && leaked == 0;
}

/** Validate a response capture (`.mgresp`): CRC-whole frames, each
 *  decoding as a Response with a unique id; tallies by status. */
bool
verifyResponseCapture(const std::string& path,
                      const std::vector<uint8_t>& bytes)
{
    std::vector<std::vector<uint8_t>> payloads =
        mg::serve::parseFrameStream(bytes, path);
    bool ok = true;
    std::unordered_map<uint64_t, size_t> seen;
    size_t by_status[8] = { 0, 0, 0, 0, 0, 0, 0, 0 };
    for (size_t i = 0; i < payloads.size(); ++i) {
        mg::serve::Response response;
        mg::util::Status status =
            mg::serve::decodeResponse(payloads[i], response);
        if (!status.ok()) {
            std::fprintf(stderr, "%s: frame %zu: %s\n", path.c_str(), i,
                         status.toString().c_str());
            return false;
        }
        if (++seen[response.id] > 1) {
            std::fprintf(stderr,
                         "%s: frame %zu: duplicate response id %llu\n",
                         path.c_str(), i,
                         static_cast<unsigned long long>(response.id));
            ok = false;
        }
        const size_t raw = static_cast<size_t>(response.status);
        by_status[raw < 8 ? raw : 2]++; // decode already bounds raw
    }
    std::printf("%s: response capture, %zu frames — %zu ok, %zu "
                "retry-after, %zu error, %zu shutting-down, %zu "
                "reload-ok, %zu reload-rejected, %zu deadline-shed, "
                "%zu stats-ok\n",
                path.c_str(), payloads.size(), by_status[0], by_status[1],
                by_status[2], by_status[3], by_status[4], by_status[5],
                by_status[6], by_status[7]);
    return ok;
}

/**
 * Validate a slow-request trace dump (`.mgtrace`, written by mgd's
 * `--trace-dump`): schema marker, a well-formed trace id, spans sorted by
 * begin time with begin <= end and every stage name known, span windows
 * inside the request's [begin_ns, end_ns], and well-formed flight-recorder
 * entries.
 */
bool
verifyTraceDump(const std::string& path, const mg::obs::json::Value& doc)
{
    bool ok = true;
    auto fail = [&](const char* what) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), what);
        ok = false;
    };
    const mg::obs::json::Value* trace_id = doc.find("trace_id");
    if (trace_id == nullptr || !trace_id->isString() ||
        mg::obs::parseTraceIdHex(trace_id->text) == 0) {
        fail("missing or invalid trace_id");
    }
    const mg::obs::json::Value* begin = doc.find("begin_ns");
    const mg::obs::json::Value* end = doc.find("end_ns");
    if (begin == nullptr || !begin->isNumber() || end == nullptr ||
        !end->isNumber() || begin->asUint() > end->asUint()) {
        fail("missing or inverted begin_ns/end_ns window");
    }
    const mg::obs::json::Value* spans = doc.find("spans");
    size_t span_count = 0;
    if (spans == nullptr || !spans->isArray()) {
        fail("missing spans array");
    } else {
        span_count = spans->items.size();
        uint64_t prev_begin = 0;
        for (size_t i = 0; i < spans->items.size(); ++i) {
            const mg::obs::json::Value& span = spans->items[i];
            const mg::obs::json::Value* stage = span.find("stage");
            const mg::obs::json::Value* sb = span.find("begin_ns");
            const mg::obs::json::Value* se = span.find("end_ns");
            if (stage == nullptr || !stage->isString() || sb == nullptr ||
                !sb->isNumber() || se == nullptr || !se->isNumber()) {
                fail("span missing stage/begin_ns/end_ns");
                break;
            }
            bool known = false;
            for (size_t s = 0; s < mg::obs::kSpanStages; ++s) {
                if (stage->text ==
                    mg::obs::spanStageName(
                        static_cast<mg::obs::SpanStage>(s))) {
                    known = true;
                    break;
                }
            }
            if (!known) {
                std::fprintf(stderr, "%s: span %zu has unknown stage "
                             "'%s'\n", path.c_str(), i,
                             stage->text.c_str());
                ok = false;
            }
            if (sb->asUint() > se->asUint()) {
                fail("span with begin_ns > end_ns");
            }
            if (begin != nullptr && begin->isNumber() && end != nullptr &&
                end->isNumber() &&
                (sb->asUint() < begin->asUint() ||
                 se->asUint() > end->asUint())) {
                fail("span outside the request window");
            }
            if (sb->asUint() < prev_begin) {
                fail("spans not sorted by begin_ns");
            }
            prev_begin = sb->asUint();
        }
    }
    const mg::obs::json::Value* flight = doc.find("flight");
    size_t flight_count = 0;
    if (flight == nullptr || !flight->isArray()) {
        fail("missing flight array");
    } else {
        flight_count = flight->items.size();
        for (const mg::obs::json::Value& entry : flight->items) {
            if (entry.find("read_index") == nullptr ||
                entry.find("stage") == nullptr ||
                entry.find("trace_id") == nullptr) {
                fail("flight entry missing read_index/stage/trace_id");
                break;
            }
        }
    }
    const mg::obs::json::Value* total = doc.find("total_ns");
    const mg::obs::json::Value* disposition = doc.find("disposition");
    std::printf("%s: trace dump %s, %.3f ms (%s), %zu spans, %zu flight "
                "entries%s\n",
                path.c_str(),
                trace_id != nullptr && trace_id->isString()
                    ? trace_id->text.c_str()
                    : "?",
                (total != nullptr && total->isNumber() ? total->number
                                                       : 0.0) /
                    1e6,
                disposition != nullptr && disposition->isString()
                    ? disposition->text.c_str()
                    : "?",
                span_count, flight_count, ok ? "" : " (INVALID)");
    return ok;
}

/** Verify one file; returns true on success. */
bool
verifyFile(const std::string& path, bool deep)
{
    std::vector<uint8_t> bytes = mg::io::readFileBytes(path);

    if (endsWith(path, ".mgz3")) {
        // Zero-copy container: structural validation (magic/version,
        // page-aligned canonical section layout, table CRC) throws; the
        // per-section CRC sweep reports every damaged section in one
        // pass, like the v2 table below.
        mg::io::MgzInfo info =
            mg::io::inspectMgz3(bytes.data(), bytes.size(), path);
        std::printf("%s: MGZ version 3 (zero-copy), %llu bytes\n",
                    path.c_str(),
                    static_cast<unsigned long long>(info.fileBytes));
        for (const mg::io::MgzSectionInfo& section : info.sections) {
            std::printf("  section %-14s offset=%-9llu size=%-9llu "
                        "crc=%08x %s\n",
                        section.name,
                        static_cast<unsigned long long>(section.offset),
                        static_cast<unsigned long long>(section.size),
                        section.crcStored,
                        section.crcOk ? "ok" : "MISMATCH");
        }
        if (!info.allChecksumsOk()) {
            return false;
        }
        if (deep) {
            // Full bind: mmap the file, re-verify every section CRC
            // against the *mapped* bytes, and run the structural scans
            // every loadPangenome performs (offset monotonicity, bucket
            // spans, positions inside the graph).
            mg::io::LoadOptions options;
            options.verifySectionCrcs = true;
            mg::io::IndexedPangenome indexed =
                mg::io::loadPangenome(path, options);
            std::printf("  mapped: %zu nodes, %llu paths, %zu minimizer "
                        "keys, %s load in %.4f s\n",
                        indexed.graph.numNodes(),
                        static_cast<unsigned long long>(
                            indexed.gbwt.numPaths()),
                        indexed.minimizers.numKeys(),
                        mg::io::loadModeName(indexed.info.mode),
                        indexed.info.loadSeconds);
        }
        return true;
    }
    if (endsWith(path, ".mgz")) {
        mg::io::MgzInfo info = mg::io::inspectMgz(bytes, path);
        std::printf("%s: MGZ version %d, %llu bytes\n", path.c_str(),
                    static_cast<int>(info.version),
                    static_cast<unsigned long long>(info.fileBytes));
        for (const mg::io::MgzSectionInfo& section : info.sections) {
            std::printf("  section %-5s offset=%-8llu size=%-8llu "
                        "crc=%08x %s\n",
                        section.name,
                        static_cast<unsigned long long>(section.offset),
                        static_cast<unsigned long long>(section.size),
                        section.crcStored,
                        section.crcOk ? "ok"
                                      : "MISMATCH");
        }
        if (!info.allChecksumsOk()) {
            return false;
        }
        if (deep) {
            mg::io::Pangenome pg = mg::io::decodeMgz(bytes, path);
            std::printf("  decoded: %zu nodes, %llu paths\n",
                        pg.graph.numNodes(),
                        static_cast<unsigned long long>(
                            pg.gbwt.numPaths()));
        }
        return true;
    }
    if (endsWith(path, ".seeds.bin") || endsWith(path, ".bin")) {
        mg::io::SeedCapture capture =
            mg::io::decodeSeedCapture(bytes, path);
        std::printf("%s: seed capture, %zu reads%s\n", path.c_str(),
                    capture.entries.size(),
                    capture.pairedEnd ? " (paired-end)" : "");
        return true;
    }
    if (endsWith(path, ".ext")) {
        auto all = mg::io::decodeExtensions(bytes, path);
        size_t extensions = 0;
        for (const mg::io::ReadExtensions& entry : all) {
            extensions += entry.extensions.size();
        }
        std::printf("%s: extensions dump, %zu reads, %zu extensions\n",
                    path.c_str(), all.size(), extensions);
        return true;
    }
    if (endsWith(path, ".fastq") || endsWith(path, ".fq")) {
        mg::map::ReadSet reads = mg::io::parseFastq(
            std::string(bytes.begin(), bytes.end()), path);
        std::printf("%s: FASTQ, %zu reads\n", path.c_str(), reads.size());
        return true;
    }
    if (endsWith(path, ".mgc")) {
        // Checkpoint manifest: CRC, structure, and shard-range coverage,
        // then every referenced shard file (CRC + range cross-check).
        mg::io::Manifest manifest;
        mg::util::Status status =
            mg::io::decodeManifest(bytes, path, manifest);
        if (!status.ok()) {
            std::fprintf(stderr, "%s: %s\n", path.c_str(),
                         status.toString().c_str());
            return false;
        }
        size_t slash = path.find_last_of('/');
        std::string dir =
            slash == std::string::npos ? "." : path.substr(0, slash);
        uint64_t covered = 0;
        bool shards_ok = true;
        for (const mg::io::ManifestEntry& entry : manifest.shards) {
            covered += entry.end - entry.begin;
            const std::string shard_path = dir + "/" + entry.file;
            mg::io::Shard shard;
            bool ok = false;
            std::string why;
            try {
                std::vector<uint8_t> shard_bytes =
                    mg::io::readFileBytes(shard_path);
                mg::util::Status shard_status =
                    mg::io::decodeShard(shard_bytes, shard_path, shard);
                if (!shard_status.ok()) {
                    why = shard_status.toString();
                } else if (shard.begin != entry.begin ||
                           shard.end != entry.end) {
                    why = "shard range disagrees with manifest";
                } else {
                    ok = true;
                }
            } catch (const mg::util::Error& e) {
                why = e.what();
            }
            std::printf("  shard [%llu, %llu) %s %s\n",
                        static_cast<unsigned long long>(entry.begin),
                        static_cast<unsigned long long>(entry.end),
                        entry.file.c_str(),
                        ok ? "ok" : why.c_str());
            shards_ok = shards_ok && ok;
        }
        std::printf("%s: checkpoint manifest, %zu shards covering "
                    "%llu / %llu reads%s\n",
                    path.c_str(), manifest.shards.size(),
                    static_cast<unsigned long long>(covered),
                    static_cast<unsigned long long>(manifest.totalReads),
                    covered == manifest.totalReads ? " (complete)"
                                                   : " (partial)");
        return shards_ok;
    }
    if (endsWith(path, ".mgs")) {
        mg::io::Shard shard;
        mg::util::Status status = mg::io::decodeShard(bytes, path, shard);
        if (!status.ok()) {
            std::fprintf(stderr, "%s: %s\n", path.c_str(),
                         status.toString().c_str());
            return false;
        }
        std::printf("%s: checkpoint shard [%llu, %llu), %zu GAF bytes\n",
                    path.c_str(),
                    static_cast<unsigned long long>(shard.begin),
                    static_cast<unsigned long long>(shard.end),
                    shard.gaf.size());
        return true;
    }
    if (endsWith(path, ".json")) {
        // Any repo-emitted JSON parses; metrics snapshot series (the
        // obs::toJson schema) additionally get monotonicity validation.
        mg::obs::json::Value doc = mg::obs::json::parse(
            std::string(bytes.begin(), bytes.end()), path);
        const mg::obs::json::Value* marker =
            doc.find("minigiraffe_metrics");
        if (marker != nullptr) {
            if (!marker->isNumber() || marker->asUint() != 1) {
                std::fprintf(stderr,
                             "%s: unsupported metrics schema version\n",
                             path.c_str());
                return false;
            }
            return verifyMetricsJson(path, doc);
        }
        std::printf("%s: valid JSON (%zu top-level members)\n",
                    path.c_str(), doc.members.size());
        return true;
    }
    if (endsWith(path, ".mgtrace")) {
        mg::obs::json::Value doc = mg::obs::json::parse(
            std::string(bytes.begin(), bytes.end()), path);
        const mg::obs::json::Value* marker = doc.find("minigiraffe_trace");
        if (marker == nullptr || !marker->isNumber() ||
            marker->asUint() != 1) {
            std::fprintf(stderr,
                         "%s: unsupported trace schema version\n",
                         path.c_str());
            return false;
        }
        return verifyTraceDump(path, doc);
    }
    if (endsWith(path, ".mgreq")) {
        return verifyRequestCapture(path, bytes);
    }
    if (endsWith(path, ".mgresp")) {
        return verifyResponseCapture(path, bytes);
    }
    if (endsWith(path, ".gfa")) {
        mg::graph::VariationGraph graph = mg::io::parseGfa(
            std::string(bytes.begin(), bytes.end()), path);
        std::printf("%s: GFA, %zu nodes, %zu paths\n", path.c_str(),
                    graph.numNodes(), graph.paths().size());
        return true;
    }
    std::fprintf(stderr,
                 "%s: unknown extension (expected .mgz, .mgz3, .bin, "
                 ".ext, .fastq, .gfa, .json, .mgc, .mgs, .mgreq, "
                 ".mgresp, or .mgtrace)\n",
                 path.c_str());
    return false;
}

} // namespace

int
main(int argc, char** argv)
{
    mg::util::Flags flags("mg_verify");
    flags.define("deep", "true", "also decode MGZ payloads");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }
    if (flags.positional().empty()) {
        std::fprintf(stderr, "usage: mg_verify <file> [<file>...]\n");
        return 1;
    }

    bool all_ok = true;
    for (const std::string& path : flags.positional()) {
        try {
            if (!verifyFile(path, flags.boolean("deep"))) {
                all_ok = false;
            }
        } catch (const mg::util::StatusError& e) {
            const mg::util::Status& status = e.status();
            std::fprintf(stderr, "%s: %s\n", path.c_str(),
                         status.toString().c_str());
            all_ok = false;
        } catch (const mg::util::Error& e) {
            std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
            all_ok = false;
        }
    }
    return all_ok ? 0 : 1;
}
