/**
 * @file
 * mg_verify — integrity checker for this repository's file formats.  For
 * every argument the tool picks a decoder by file extension, runs it, and
 * prints either the decoded summary or the structured error (code, file,
 * section, byte offset) the hardened decode paths report.  MGZ containers
 * additionally get a per-section checksum table from inspectMgz, so every
 * damaged section of a corrupt file is listed in one pass.
 *
 * Run:  ./examples/mg_verify <file> [<file>...]
 *           [--deep true|false]   also decode MGZ payloads (default true)
 *
 * Exit status: 0 when every file verified, 1 otherwise.
 */
#include <cstdio>
#include <string>

#include "io/extensions_io.h"
#include "io/fastq.h"
#include "io/file.h"
#include "io/gfa.h"
#include "io/mgz.h"
#include "io/reads_bin.h"
#include "util/flags.h"
#include "util/status.h"

namespace {

bool
endsWith(const std::string& text, const std::string& suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

/** Verify one file; returns true on success. */
bool
verifyFile(const std::string& path, bool deep)
{
    std::vector<uint8_t> bytes = mg::io::readFileBytes(path);

    if (endsWith(path, ".mgz")) {
        mg::io::MgzInfo info = mg::io::inspectMgz(bytes, path);
        std::printf("%s: MGZ version %d, %llu bytes\n", path.c_str(),
                    static_cast<int>(info.version),
                    static_cast<unsigned long long>(info.fileBytes));
        for (const mg::io::MgzSectionInfo& section : info.sections) {
            std::printf("  section %-5s offset=%-8llu size=%-8llu "
                        "crc=%08x %s\n",
                        section.name,
                        static_cast<unsigned long long>(section.offset),
                        static_cast<unsigned long long>(section.size),
                        section.crcStored,
                        section.crcOk ? "ok"
                                      : "MISMATCH");
        }
        if (!info.allChecksumsOk()) {
            return false;
        }
        if (deep) {
            mg::io::Pangenome pg = mg::io::decodeMgz(bytes, path);
            std::printf("  decoded: %zu nodes, %llu paths\n",
                        pg.graph.numNodes(),
                        static_cast<unsigned long long>(
                            pg.gbwt.numPaths()));
        }
        return true;
    }
    if (endsWith(path, ".seeds.bin") || endsWith(path, ".bin")) {
        mg::io::SeedCapture capture =
            mg::io::decodeSeedCapture(bytes, path);
        std::printf("%s: seed capture, %zu reads%s\n", path.c_str(),
                    capture.entries.size(),
                    capture.pairedEnd ? " (paired-end)" : "");
        return true;
    }
    if (endsWith(path, ".ext")) {
        auto all = mg::io::decodeExtensions(bytes, path);
        size_t extensions = 0;
        for (const mg::io::ReadExtensions& entry : all) {
            extensions += entry.extensions.size();
        }
        std::printf("%s: extensions dump, %zu reads, %zu extensions\n",
                    path.c_str(), all.size(), extensions);
        return true;
    }
    if (endsWith(path, ".fastq") || endsWith(path, ".fq")) {
        mg::map::ReadSet reads = mg::io::parseFastq(
            std::string(bytes.begin(), bytes.end()), path);
        std::printf("%s: FASTQ, %zu reads\n", path.c_str(), reads.size());
        return true;
    }
    if (endsWith(path, ".gfa")) {
        mg::graph::VariationGraph graph = mg::io::parseGfa(
            std::string(bytes.begin(), bytes.end()), path);
        std::printf("%s: GFA, %zu nodes, %zu paths\n", path.c_str(),
                    graph.numNodes(), graph.paths().size());
        return true;
    }
    std::fprintf(stderr,
                 "%s: unknown extension (expected .mgz, .bin, .ext, "
                 ".fastq, or .gfa)\n",
                 path.c_str());
    return false;
}

} // namespace

int
main(int argc, char** argv)
{
    mg::util::Flags flags("mg_verify");
    flags.define("deep", "true", "also decode MGZ payloads");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }
    if (flags.positional().empty()) {
        std::fprintf(stderr, "usage: mg_verify <file> [<file>...]\n");
        return 1;
    }

    bool all_ok = true;
    for (const std::string& path : flags.positional()) {
        try {
            if (!verifyFile(path, flags.boolean("deep"))) {
                all_ok = false;
            }
        } catch (const mg::util::StatusError& e) {
            const mg::util::Status& status = e.status();
            std::fprintf(stderr, "%s: %s\n", path.c_str(),
                         status.toString().c_str());
            all_ok = false;
        } catch (const mg::util::Error& e) {
            std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
            all_ok = false;
        }
    }
    return all_ok ? 0 : 1;
}
