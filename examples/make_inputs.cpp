/**
 * @file
 * Input-set builder: materializes one of the paper's four input-set
 * analogs (Table III) as on-disk artifacts, mirroring the paper's
 * "generate new input sets" workflow:
 *
 *   <name>.mgz           the pangenome (graph + GBWT)
 *   <name>.seeds.bin     the preprocessing capture (reads + seeds),
 *                        i.e. miniGiraffe's input
 *   <name>.expected.ext  the parent's critical-function output, used by
 *                        validate_proxy
 *
 * Run:  ./examples/make_inputs --input-set A-human --scale 0.1 --out-dir .
 */
#include <cstdio>

#include "giraffe/parent.h"
#include "index/distance.h"
#include "index/minimizer.h"
#include "io/extensions_io.h"
#include "io/fastq.h"
#include "io/mgz.h"
#include "io/reads_bin.h"
#include "sim/input_sets.h"
#include "util/flags.h"
#include "util/timer.h"

int
main(int argc, char** argv)
try {
    mg::util::Flags flags("make_inputs");
    flags.define("input-set", "A-human",
                 "A-human | B-yeast | C-HPRC | D-HPRC")
         .define("scale", "0.1", "read-count multiplier")
         .define("out-dir", ".", "output directory");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }

    std::string name = flags.str("input-set");
    mg::util::WallTimer timer;
    mg::sim::InputSet set = mg::sim::buildInputSet(
        mg::sim::inputSetSpec(name), flags.real("scale"));
    std::printf("built %s: %zu nodes, %zu reads (%.2f s)\n", name.c_str(),
                set.pangenome.graph.numNodes(), set.reads.size(),
                timer.seconds());

    std::string base = flags.str("out-dir") + "/" + name;
    mg::io::saveMgz(base + ".mgz", set.pangenome.graph, set.pangenome.gbwt);
    mg::io::saveFastq(base + ".fastq", set.reads);

    mg::index::MinimizerParams mparams;
    mparams.k = 15;
    mparams.w = 8;
    mg::index::MinimizerIndex minimizers(set.pangenome.graph, mparams);
    mg::index::DistanceIndex distance(set.pangenome.graph);
    mg::giraffe::ParentEmulator parent(set.pangenome.graph,
                                       set.pangenome.gbwt, minimizers,
                                       distance,
                                       mg::giraffe::ParentParams());

    timer.reset();
    mg::io::SeedCapture capture = parent.capturePreprocessing(set.reads);
    mg::io::saveSeedCapture(base + ".seeds.bin", capture);
    std::printf("captured seeds for %zu reads (%.2f s)\n",
                capture.entries.size(), timer.seconds());

    timer.reset();
    mg::giraffe::ParentOutputs outputs = parent.run(set.reads);
    mg::io::saveExtensions(base + ".expected.ext", outputs.extensions);
    std::printf("parent mapping done (%.2f s); wrote:\n  %s.mgz\n"
                "  %s.fastq\n  %s.seeds.bin\n  %s.expected.ext\n",
                timer.seconds(), base.c_str(), base.c_str(), base.c_str(),
                base.c_str());
    return 0;
} catch (const mg::util::Error& e) {
    std::fprintf(stderr, "make_inputs: %s\n", e.what());
    return 1;
}
