/**
 * @file
 * mg_loadgen — open-loop Poisson load generator for mgd.  Replays reads
 * from an input-set analog as mapping requests at configured per-tenant
 * rates, retrying shed requests with the client's capped backoff (so the
 * tool doubles as a backpressure-contract demo), and reports per-tenant
 * throughput, shed/error counts, and response latency percentiles.
 *
 * Open-loop: arrival times are drawn up front from an exponential
 * inter-arrival distribution and do not slow down when the server does —
 * that is what makes overload visible.  Each tenant runs --connections
 * independent Poisson substreams (splitting the tenant rate), so up to
 * that many requests are in flight per tenant and a saturated daemon
 * sheds instead of being spared by a self-throttling sender; when the
 * schedule still outruns a connection, the late arrivals are counted
 * and reported, never silently dropped.
 *
 * With --swap-every N and --swap-path, a swapper thread issues a RELOAD
 * control frame every N seconds mid-run — hot-swap under sustained load —
 * and the report breaks latency/shed/retry counts down by the index
 * generation that answered each request.
 *
 * Run:  ./examples/mg_loadgen --socket /tmp/mgd.sock \
 *           [--tenants gold:200,free:100] [--duration 10] [--scale 0.05] \
 *           [--swap-every 2 --swap-path graph.mgz3]
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "serve/client.h"
#include "serve/stop.h"
#include "sim/input_sets.h"
#include "stats/latency.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

/** One tenant's traffic spec: name and request rate (per second). */
struct TenantLoad
{
    std::string name;
    double rate = 0.0;
};

/** Parse "gold:200,free:100" (rate defaults to 10/s when omitted). */
std::vector<TenantLoad>
parseLoadSpec(const std::string& spec)
{
    std::vector<TenantLoad> loads;
    size_t begin = 0;
    while (begin <= spec.size()) {
        size_t end = spec.find(',', begin);
        if (end == std::string::npos) {
            end = spec.size();
        }
        std::string part = spec.substr(begin, end - begin);
        begin = end + 1;
        if (part.empty()) {
            continue;
        }
        TenantLoad load;
        const size_t colon = part.find(':');
        if (colon == std::string::npos) {
            load.name = part;
            load.rate = 10.0;
        } else {
            load.name = part.substr(0, colon);
            load.rate = std::strtod(part.c_str() + colon + 1, nullptr);
        }
        mg::util::require(!load.name.empty() && load.rate > 0.0,
                          "bad tenant load spec: ", part);
        loads.push_back(std::move(load));
    }
    mg::util::require(!loads.empty(), "empty tenant load spec");
    return loads;
}

/** Per-index-generation slice of one tenant's traffic (hot-swap runs). */
struct GenerationStats
{
    mg::stats::LatencyHistogram latency;
    uint64_t ok = 0;
    uint64_t shed = 0;
    uint64_t deadlineShed = 0;
    uint64_t retries = 0;
};

/** What one tenant thread measured. */
struct TenantOutcome
{
    mg::serve::ClientStats client;
    mg::stats::LatencyHistogram latency;
    uint64_t mappedReads = 0;
    uint64_t degradedReads = 0;
    uint64_t arrivals = 0;
    uint64_t late = 0;
    /** Keyed by the generation tag the final response carried. */
    std::map<uint64_t, GenerationStats> perGeneration;
    /**
     * Per-stage breakdown of traced requests, from the trace echo on
     * each response: daemon queue wait, daemon mapping time, and the
     * remainder of the client-observed latency (wire + framing + any
     * retry backoff).  Reconciled against the daemon's own stage
     * histograms at end of run.
     */
    mg::stats::LatencyHistogram traceQueue;
    mg::stats::LatencyHistogram traceMap;
    mg::stats::LatencyHistogram traceOther;
};

/** Daemon-side stage summary pulled from a STATS snapshot for the
 *  reconciliation report ("client saw X, daemon attributes Y"). */
void
printDaemonStages(mg::serve::Client& client)
{
    mg::serve::Response response;
    mg::util::Status status = client.queryStats(response);
    if (!status.ok() ||
        response.status != mg::serve::ResponseStatus::StatsOk) {
        std::printf("daemon stages: unavailable (%s)\n",
                    status.ok()
                        ? mg::serve::responseStatusName(response.status)
                        : status.toString().c_str());
        return;
    }
    const mg::obs::json::Value snap =
        mg::obs::json::parse(response.message, "mgd stats");
    const mg::obs::json::Value* stages = snap.find("stages");
    if (stages == nullptr || !stages->isArray()) {
        return;
    }
    std::printf("daemon stage attribution (STATS snapshot):\n");
    for (const mg::obs::json::Value& stage : stages->items) {
        const mg::obs::json::Value* name = stage.find("stage");
        const mg::obs::json::Value* count = stage.find("count");
        const mg::obs::json::Value* mean = stage.find("mean_ns");
        const mg::obs::json::Value* p99 = stage.find("p99_ns");
        if (name == nullptr || count == nullptr ||
            count->asUint() == 0) {
            continue;
        }
        std::printf("  %-12s %8llu spans, mean %8.3f ms, p99 %8.3f ms\n",
                    name->text.c_str(),
                    static_cast<unsigned long long>(count->asUint()),
                    (mean != nullptr ? mean->number : 0.0) / 1e6,
                    (p99 != nullptr ? p99->number : 0.0) / 1e6);
    }
}

} // namespace

int
main(int argc, char** argv)
try {
    mg::util::Flags flags("mg_loadgen");
    flags.define("socket", "", "mgd socket path")
         .define("tenants", "default:50",
                 "per-tenant request rates 'name:rate,name2:rate' "
                 "(requests per second)")
         .define("duration", "5", "seconds of traffic per tenant")
         .define("input-set", "B-yeast",
                 "input-set analog supplying the replayed reads")
         .define("scale", "0.05", "input-set read-count scale")
         .define("reads-per-request", "8", "reads bundled per request")
         .define("deadline", "0",
                 "per-request wall budget in seconds (0 = unlimited)")
         .define("max-extend-steps", "0",
                 "per-read extension-step cap (0 = unlimited)")
         .define("max-gbwt-lookups", "0",
                 "per-read GBWT-lookup cap (0 = unlimited)")
         .define("max-attempts", "8", "attempts per request (1 + retries)")
         .define("connections", "4",
                 "concurrent connections per tenant (independent Poisson "
                 "substreams splitting the tenant rate)")
         .define("capture", "",
                 "capture frames to <prefix>-<tenant>.mgreq/.mgresp "
                 "for mg_verify")
         .define("swap-every", "0",
                 "issue a RELOAD control frame every N seconds mid-run "
                 "(0 = never); requires --swap-path")
         .define("swap-path", "",
                 "container the RELOAD frames name (the daemon hot-swaps "
                 "to this .mgz/.mgz3)")
         .define("trace-sample", "0",
                 "probability a request carries a client-minted trace "
                 "id; traced responses echo the daemon's queue/map "
                 "attribution for the per-stage breakdown")
         .define("seed", "1", "jitter/arrival RNG seed");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }
    if (flags.str("socket").empty()) {
        std::fprintf(stderr,
                     "usage: mg_loadgen --socket <path> [flags]\n");
        return 1;
    }
    mg::serve::installStopHandlers();

    const std::vector<TenantLoad> loads =
        parseLoadSpec(flags.str("tenants"));
    const double duration = flags.real("duration");
    const size_t per_request =
        static_cast<size_t>(flags.integer("reads-per-request"));
    mg::util::require(per_request > 0, "--reads-per-request must be > 0");

    // The replayed reads: one input-set analog, shared by every tenant
    // (each cycles through it from a different offset).
    mg::sim::InputSet input = mg::sim::buildInputSet(
        mg::sim::inputSetSpec(flags.str("input-set")),
        flags.real("scale"));
    mg::util::require(input.reads.size() > 0, "input set produced 0 reads");
    std::printf("mg_loadgen: %s x%.3g -> %zu reads, %zu tenants, %.1f s\n",
                input.name.c_str(), flags.real("scale"),
                input.reads.size(), loads.size(), duration);

    mg::resilience::WorkBudget budget;
    budget.wallSeconds = flags.real("deadline");
    budget.maxExtendSteps =
        static_cast<uint64_t>(flags.integer("max-extend-steps"));
    budget.maxGbwtLookups =
        static_cast<uint64_t>(flags.integer("max-gbwt-lookups"));

    const size_t connections = static_cast<size_t>(
        std::max<long long>(1, flags.integer("connections")));
    std::vector<TenantOutcome> outcomes(loads.size() * connections);
    std::vector<std::thread> threads;
    threads.reserve(outcomes.size());
    for (size_t t = 0; t < loads.size(); ++t) {
      for (size_t c = 0; c < connections; ++c) {
        threads.emplace_back([&, t, c] {
            const TenantLoad& load = loads[t];
            const size_t slot = t * connections + c;
            TenantOutcome& outcome = outcomes[slot];
            // Superposition: N independent Poisson streams at rate/N
            // offer the tenant's full rate with up to N in flight.
            const double rate = load.rate / static_cast<double>(connections);
            mg::serve::ClientParams cparams;
            cparams.socketPath = flags.str("socket");
            cparams.maxAttempts =
                static_cast<uint32_t>(flags.integer("max-attempts"));
            cparams.seed =
                static_cast<uint64_t>(flags.integer("seed")) + slot;
            cparams.traceSample = flags.real("trace-sample");
            if (!flags.str("capture").empty()) {
                cparams.capturePrefix =
                    flags.str("capture") + "-" + load.name;
                if (connections > 1) {
                    cparams.capturePrefix += "-c" + std::to_string(c);
                }
            }
            mg::serve::Client client(cparams);
            mg::util::Rng rng(cparams.seed * 7919 + 17);

            // Open-loop arrivals: exponential gaps at this stream's rate.
            mg::util::WallTimer clock;
            double next_arrival = 0.0;
            size_t cursor = slot * 131; // desynchronize read cycles
            while (clock.seconds() < duration &&
                   !mg::serve::stopRequested()) {
                const double u = rng.uniformReal();
                next_arrival += -std::log(1.0 - u) / rate;
                const double now = clock.seconds();
                if (next_arrival > duration) {
                    break;
                }
                if (now < next_arrival) {
                    std::this_thread::sleep_for(std::chrono::duration<double>(
                        next_arrival - now));
                } else {
                    ++outcome.late; // schedule outran the in-flight slot
                }
                ++outcome.arrivals;
                std::vector<mg::map::Read> reads;
                reads.reserve(per_request);
                for (size_t i = 0; i < per_request; ++i) {
                    reads.push_back(
                        input.reads.reads[cursor % input.reads.size()]);
                    ++cursor;
                }
                mg::serve::Response response;
                const mg::serve::ClientStats before = client.stats();
                mg::util::WallTimer rt;
                mg::util::Status status =
                    client.mapReads(load.name, reads, budget, response);
                if (status.ok() &&
                    response.status == mg::serve::ResponseStatus::Ok) {
                    const uint64_t total = rt.nanos();
                    outcome.latency.record(total);
                    outcome.mappedReads += response.mappedReads;
                    outcome.degradedReads += response.degradedReads;
                    if (response.traceId != 0) {
                        // Trace echo: split the client-observed latency
                        // into the daemon's queue wait, its mapping
                        // time, and everything else (wire + backoff).
                        const uint64_t attributed =
                            response.queueNanos + response.mapNanos;
                        outcome.traceQueue.record(response.queueNanos);
                        outcome.traceMap.record(response.mapNanos);
                        outcome.traceOther.record(
                            total > attributed ? total - attributed : 0);
                    }
                }
                if (status.ok()) {
                    // Attribute the call to the generation tag on its
                    // final response; the stats delta folds in any
                    // sheds/retries the call absorbed along the way.
                    const mg::serve::ClientStats& after = client.stats();
                    GenerationStats& gen =
                        outcome.perGeneration[response.generation];
                    if (response.status ==
                        mg::serve::ResponseStatus::Ok) {
                        ++gen.ok;
                        gen.latency.record(rt.nanos());
                    }
                    gen.shed += after.shed - before.shed;
                    gen.deadlineShed +=
                        after.deadlineShed - before.deadlineShed;
                    gen.retries += after.retries - before.retries;
                }
            }
            outcome.client = client.stats();
        });
      }
    }
    // Optional swapper: one RELOAD control frame every --swap-every
    // seconds, exercising the daemon's hot-swap path under the load
    // the tenant threads are offering.
    const double swap_every = flags.real("swap-every");
    const std::string swap_path = flags.str("swap-path");
    mg::util::require(swap_every <= 0.0 || !swap_path.empty(),
                      "--swap-every requires --swap-path");
    uint64_t swaps_ok = 0;
    uint64_t swaps_rejected = 0;
    std::thread swapper;
    if (swap_every > 0.0) {
        swapper = std::thread([&] {
            mg::serve::ClientParams cparams;
            cparams.socketPath = flags.str("socket");
            cparams.seed = static_cast<uint64_t>(flags.integer("seed"));
            mg::serve::Client client(cparams);
            mg::util::WallTimer clock;
            double next_swap = swap_every;
            while (clock.seconds() < duration &&
                   !mg::serve::stopRequested()) {
                const double now = clock.seconds();
                if (now < next_swap) {
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(
                            std::min(next_swap - now, 0.05)));
                    continue;
                }
                next_swap += swap_every;
                mg::serve::Response response;
                mg::util::Status status =
                    client.reload(swap_path, response);
                if (status.ok() &&
                    response.status ==
                        mg::serve::ResponseStatus::ReloadOk) {
                    ++swaps_ok;
                    std::printf("swap: generation %llu published "
                                "(t=%.1f s)\n",
                                static_cast<unsigned long long>(
                                    response.generation),
                                clock.seconds());
                } else {
                    ++swaps_rejected;
                    std::printf("swap: REJECTED (%s, t=%.1f s)\n",
                                status.ok() ? response.message.c_str()
                                            : status.toString().c_str(),
                                clock.seconds());
                }
                std::fflush(stdout);
            }
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
    if (swapper.joinable()) {
        swapper.join();
    }

    bool any_ok = false;
    for (size_t t = 0; t < loads.size(); ++t) {
        const TenantLoad& load = loads[t];
        // Fold the tenant's per-connection substreams into one report.
        TenantOutcome o;
        for (size_t c = 0; c < connections; ++c) {
            const TenantOutcome& part = outcomes[t * connections + c];
            o.client.sent += part.client.sent;
            o.client.ok += part.client.ok;
            o.client.shed += part.client.shed;
            o.client.shuttingDown += part.client.shuttingDown;
            o.client.errors += part.client.errors;
            o.client.reconnects += part.client.reconnects;
            o.client.retries += part.client.retries;
            o.client.exhausted += part.client.exhausted;
            o.client.deadlineShed += part.client.deadlineShed;
            o.client.traced += part.client.traced;
            o.latency.merge(part.latency);
            o.traceQueue.merge(part.traceQueue);
            o.traceMap.merge(part.traceMap);
            o.traceOther.merge(part.traceOther);
            o.mappedReads += part.mappedReads;
            o.degradedReads += part.degradedReads;
            o.arrivals += part.arrivals;
            o.late += part.late;
            for (const auto& [generation, stats] : part.perGeneration) {
                GenerationStats& gen = o.perGeneration[generation];
                gen.ok += stats.ok;
                gen.shed += stats.shed;
                gen.deadlineShed += stats.deadlineShed;
                gen.retries += stats.retries;
                gen.latency.merge(stats.latency);
            }
        }
        any_ok = any_ok || o.client.ok > 0;
        std::printf(
            "tenant %-10s rate %.0f/s: %llu arrivals (%llu late), "
            "%llu sent, %llu ok, %llu shed, %llu shutting-down, "
            "%llu errors, %llu retries, %llu exhausted, %llu reconnects\n",
            load.name.c_str(), load.rate,
            static_cast<unsigned long long>(o.arrivals),
            static_cast<unsigned long long>(o.late),
            static_cast<unsigned long long>(o.client.sent),
            static_cast<unsigned long long>(o.client.ok),
            static_cast<unsigned long long>(o.client.shed),
            static_cast<unsigned long long>(o.client.shuttingDown),
            static_cast<unsigned long long>(o.client.errors),
            static_cast<unsigned long long>(o.client.retries),
            static_cast<unsigned long long>(o.client.exhausted),
            static_cast<unsigned long long>(o.client.reconnects));
        std::printf(
            "  %llu reads mapped (%llu degraded); latency p50 %.2f ms, "
            "p99 %.2f ms, mean %.2f ms over %llu ok responses\n",
            static_cast<unsigned long long>(o.mappedReads),
            static_cast<unsigned long long>(o.degradedReads),
            o.latency.p50() / 1e6, o.latency.p99() / 1e6,
            o.latency.meanNanos() / 1e6,
            static_cast<unsigned long long>(o.latency.count()));
        if (o.traceQueue.count() > 0) {
            std::printf(
                "  traced breakdown (%llu tagged, %llu echoed): "
                "queue p50 %.2f / p99 %.2f ms, map p50 %.2f / p99 %.2f "
                "ms, other p50 %.2f / p99 %.2f ms\n",
                static_cast<unsigned long long>(o.client.traced),
                static_cast<unsigned long long>(o.traceQueue.count()),
                o.traceQueue.p50() / 1e6, o.traceQueue.p99() / 1e6,
                o.traceMap.p50() / 1e6, o.traceMap.p99() / 1e6,
                o.traceOther.p50() / 1e6, o.traceOther.p99() / 1e6);
        }
        if (o.perGeneration.size() > 1 || swap_every > 0.0) {
            for (const auto& [generation, gen] : o.perGeneration) {
                std::printf(
                    "  gen %-4llu: %llu ok, %llu shed, %llu deadline-shed, "
                    "%llu retries; p50 %.2f ms, p99 %.2f ms\n",
                    static_cast<unsigned long long>(generation),
                    static_cast<unsigned long long>(gen.ok),
                    static_cast<unsigned long long>(gen.shed),
                    static_cast<unsigned long long>(gen.deadlineShed),
                    static_cast<unsigned long long>(gen.retries),
                    gen.latency.p50() / 1e6, gen.latency.p99() / 1e6);
            }
        }
    }
    if (swap_every > 0.0) {
        std::printf("swaps: %llu published, %llu rejected\n",
                    static_cast<unsigned long long>(swaps_ok),
                    static_cast<unsigned long long>(swaps_rejected));
    }
    if (flags.real("trace-sample") > 0.0) {
        // Reconcile the client-side breakdown against the daemon's own
        // stage histograms: queue/map above should track QueueWait and
        // Seed+Cluster+Extend+GafEmit here.
        mg::serve::ClientParams cparams;
        cparams.socketPath = flags.str("socket");
        mg::serve::Client stats_client(cparams);
        printDaemonStages(stats_client);
    }
    if (!flags.str("capture").empty()) {
        std::printf("captures at %s-<tenant>.mgreq/.mgresp (validate "
                    "with mg_verify)\n",
                    flags.str("capture").c_str());
    }
    return any_ok ? 0 : 1;
} catch (const mg::util::Error& e) {
    std::fprintf(stderr, "mg_loadgen: %s\n", e.what());
    return 1;
}
