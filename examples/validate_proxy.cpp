/**
 * @file
 * Functional validation (paper Section VI-a): run the parent emulator and
 * the proxy independently on the same input set and assert the two-way
 * property — (1) every expected extension appears in the proxy output and
 * (2) the proxy produces nothing extra.  The paper reports a 100% match;
 * so does this reproduction.
 *
 * Run:  ./examples/validate_proxy [--input-set A-human] [--scale 0.05]
 * Or against files produced by make_inputs:
 *       ./examples/validate_proxy <graph.mgz> <seeds.bin> <expected.ext>
 */
#include <cstdio>

#include "giraffe/parent.h"
#include "giraffe/proxy.h"
#include "index/distance.h"
#include "index/minimizer.h"
#include "io/extensions_io.h"
#include "io/mgz.h"
#include "sim/input_sets.h"
#include "util/flags.h"

namespace {

int
report(const mg::io::ValidationReport& report)
{
    std::printf("reads compared:        %zu\n", report.readsCompared);
    std::printf("expected extensions:   %zu\n", report.extensionsExpected);
    std::printf("proxy extensions:      %zu\n", report.extensionsFound);
    std::printf("missing (1st check):   %zu\n", report.missing);
    std::printf("unexpected (2nd check):%zu\n", report.unexpected);
    if (report.perfectMatch()) {
        std::printf("VALIDATION PASSED: 100%% match between proxy and "
                    "parent outputs\n");
        return 0;
    }
    std::printf("VALIDATION FAILED\n");
    return 1;
}

} // namespace

int
main(int argc, char** argv)
try {
    mg::util::Flags flags("validate_proxy");
    flags.define("input-set", "A-human",
                 "input set analog to validate on")
         .define("scale", "0.05", "read-count multiplier");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }

    if (flags.positional().size() == 3) {
        // File mode: parent output was exported earlier by make_inputs.
        mg::io::Pangenome pangenome =
            mg::io::loadMgz(flags.positional()[0]);
        mg::io::SeedCapture capture =
            mg::io::loadSeedCapture(flags.positional()[1]);
        auto expected = mg::io::loadExtensions(flags.positional()[2]);
        mg::index::DistanceIndex distance(pangenome.graph);
        mg::giraffe::ProxyRunner proxy(pangenome.graph, pangenome.gbwt,
                                       distance,
                                       mg::giraffe::ProxyParams());
        mg::giraffe::ProxyOutputs outputs = proxy.run(capture);
        return report(
            mg::io::validateExtensions(expected, outputs.extensions));
    }

    // Self-contained mode: build the input set in memory.
    std::string name = flags.str("input-set");
    std::printf("building input set %s (scale %.3f)...\n", name.c_str(),
                flags.real("scale"));
    mg::sim::InputSet set = mg::sim::buildInputSet(
        mg::sim::inputSetSpec(name), flags.real("scale"));

    mg::index::MinimizerParams mparams;
    mparams.k = 15;
    mparams.w = 8;
    mg::index::MinimizerIndex minimizers(set.pangenome.graph, mparams);
    mg::index::DistanceIndex distance(set.pangenome.graph);

    mg::giraffe::ParentEmulator parent(set.pangenome.graph,
                                       set.pangenome.gbwt, minimizers,
                                       distance,
                                       mg::giraffe::ParentParams());
    std::printf("running parent (full pipeline)...\n");
    mg::giraffe::ParentOutputs parent_out = parent.run(set.reads);
    mg::io::SeedCapture capture = parent.capturePreprocessing(set.reads);

    std::printf("running proxy (critical functions only)...\n");
    mg::giraffe::ProxyRunner proxy(set.pangenome.graph, set.pangenome.gbwt,
                                   distance, mg::giraffe::ProxyParams());
    mg::giraffe::ProxyOutputs proxy_out = proxy.run(capture);

    return report(mg::io::validateExtensions(parent_out.extensions,
                                             proxy_out.extensions));
} catch (const mg::util::Error& e) {
    std::fprintf(stderr, "validate_proxy: %s\n", e.what());
    return 1;
}
