/**
 * @file
 * Haplotype support reporting: map reads, then use GBWT locate() to list
 * which haplotypes contain each alignment's walk — the query behind
 * haplotype-aware genotyping.  Demonstrates the locate()/pathsThrough()
 * API on top of the mapping pipeline.
 *
 * Run:  ./examples/haplotype_support [--reads N] [--seed S]
 */
#include <cstdio>

#include "giraffe/parent.h"
#include "index/distance.h"
#include "index/minimizer.h"
#include "sim/pangenome_gen.h"
#include "sim/read_sim.h"
#include "util/flags.h"

int
main(int argc, char** argv)
try {
    mg::util::Flags flags("haplotype_support");
    flags.define("reads", "8", "number of reads to map and report")
         .define("seed", "17", "generation seed");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }

    mg::sim::PangenomeParams pparams;
    pparams.seed = static_cast<uint64_t>(flags.integer("seed"));
    pparams.backboneLength = 15000;
    pparams.haplotypes = 6;
    mg::sim::GeneratedPangenome pg = mg::sim::generatePangenome(pparams);

    mg::index::MinimizerParams mparams;
    mparams.k = 15;
    mparams.w = 8;
    mg::index::MinimizerIndex minimizers(pg.graph, mparams);
    mg::index::DistanceIndex distance(pg.graph);

    mg::sim::ReadSimParams rparams;
    rparams.seed = pparams.seed + 1;
    rparams.count = static_cast<size_t>(flags.integer("reads"));
    rparams.readLength = 120;
    rparams.errorRate = 0.005;
    mg::map::ReadSet reads = mg::sim::simulateReads(pg, rparams);

    mg::giraffe::ParentEmulator giraffe(pg.graph, pg.gbwt, minimizers,
                                        distance,
                                        mg::giraffe::ParentParams());
    mg::giraffe::ParentOutputs outputs = giraffe.run(reads);

    std::printf("%-10s %-7s %-28s %s\n", "read", "mapped",
                "walk", "supporting haplotypes");
    for (const mg::giraffe::Alignment& alignment : outputs.alignments) {
        if (!alignment.mapped) {
            std::printf("%-10s no\n", alignment.readName.c_str());
            continue;
        }
        std::string walk;
        for (mg::graph::Handle step : alignment.path) {
            walk += step.str() + " ";
        }
        if (walk.size() > 27) {
            walk = walk.substr(0, 24) + "...";
        }
        // Oriented path ids: 2h = haplotype h forward, 2h+1 = reverse.
        std::string support;
        for (uint32_t id : pg.gbwt.pathsThrough(alignment.path)) {
            support += "hap" + std::to_string(id / 2);
            support += (id % 2) ? "-" : "+";
            support += " ";
        }
        if (support.empty()) {
            support = "(recombinant walk: no single haplotype)";
        }
        std::printf("%-10s yes     %-28s %s\n",
                    alignment.readName.c_str(), walk.c_str(),
                    support.c_str());
    }
    return 0;
} catch (const mg::util::Error& e) {
    std::fprintf(stderr, "haplotype_support: %s\n", e.what());
    return 1;
}
