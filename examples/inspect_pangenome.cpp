/**
 * @file
 * Pangenome inspection tool: loads an .mgz/.mgz3 (or generates an
 * input-set analog), prints structural statistics of the graph and the
 * GBWT — plus, for files, how the container was loaded (parsed vs mmap),
 * its per-section arena sizes, and the resident-vs-reserved footprint of
 * mapped arenas — and optionally exports the graph as GFA 1.0 for
 * vg/odgi/Bandage.
 *
 * Run:  ./examples/inspect_pangenome <file.mgz|file.mgz3> [--gfa out.gfa]
 * Or:   ./examples/inspect_pangenome --input-set B-yeast [--gfa out.gfa]
 */
#include <algorithm>
#include <cstdio>
#include <vector>

#include "io/gfa.h"
#include "io/mgz.h"
#include "sim/input_sets.h"
#include "util/flags.h"

int
main(int argc, char** argv)
try {
    mg::util::Flags flags("inspect_pangenome");
    flags.define("input-set", "",
                 "generate this analog instead of loading a file")
         .define("gfa", "", "export the graph as GFA 1.0 to this path");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }

    mg::io::IndexedPangenome pangenome;
    bool from_file = false;
    if (!flags.str("input-set").empty()) {
        mg::sim::InputSet set = mg::sim::buildInputSet(
            mg::sim::inputSetSpec(flags.str("input-set")), 0.01);
        pangenome.graph = std::move(set.pangenome.graph);
        pangenome.gbwt = std::move(set.pangenome.gbwt);
    } else if (flags.positional().size() == 1) {
        pangenome = mg::io::loadPangenome(flags.positional()[0]);
        from_file = true;
    } else {
        std::fprintf(stderr, "usage: inspect_pangenome <file.mgz> | "
                             "--input-set <name> [--gfa out.gfa]\n");
        return 1;
    }
    const mg::graph::VariationGraph& graph = pangenome.graph;

    // --- Graph shape. ---
    std::printf("graph: %zu nodes, %zu edges, %zu paths, %zu bases\n",
                graph.numNodes(), graph.numEdges(), graph.numPaths(),
                graph.totalSequenceLength());
    std::vector<size_t> lengths;
    size_t max_degree = 0;
    for (mg::graph::NodeId id = 1; id <= graph.numNodes(); ++id) {
        lengths.push_back(graph.length(id));
        max_degree = std::max(
            max_degree,
            graph.successors(mg::graph::Handle(id, false)).size());
    }
    std::sort(lengths.begin(), lengths.end());
    std::printf("node length: min %zu, median %zu, max %zu; "
                "max out-degree %zu\n",
                lengths.front(), lengths[lengths.size() / 2],
                lengths.back(), max_degree);

    // --- Haplotypes. ---
    size_t total_steps = 0;
    for (const mg::graph::PathEntry& path : graph.paths()) {
        total_steps += path.steps.size();
    }
    std::printf("haplotypes: %zu paths, %zu total steps, "
                "%.1f steps/path\n",
                graph.numPaths(), total_steps,
                graph.numPaths() ? static_cast<double>(total_steps) /
                                       static_cast<double>(graph.numPaths())
                                 : 0.0);

    // --- Packed sequence arena. ---
    const mg::graph::SequenceStore& store = graph.sequenceStore();
    size_t stored = 2 * store.totalBases(); // both strands live packed
    std::printf("sequence arena: %zu resident bytes (%zu arena + %zu "
                "offsets), %zu reserved; %.2f bits/stored base, "
                "%zu bases sanitized at ingest\n",
                store.footprintBytes(), store.arenaBytes(),
                store.offsetTableBytes(), store.reservedBytes(),
                stored ? 8.0 * static_cast<double>(store.arenaBytes()) /
                             static_cast<double>(stored)
                       : 0.0,
                store.sanitizedBases());

    // --- GBWT. ---
    const mg::gbwt::Gbwt& gbwt = pangenome.gbwt;
    std::printf("gbwt: %llu oriented paths, %llu visits, %zu compressed "
                "bytes (%.2f bytes/visit)\n",
                static_cast<unsigned long long>(gbwt.numPaths()),
                static_cast<unsigned long long>(gbwt.totalVisits()),
                gbwt.compressedBytes(),
                gbwt.totalVisits()
                    ? static_cast<double>(gbwt.compressedBytes()) /
                          static_cast<double>(gbwt.totalVisits())
                    : 0.0);

    // --- Compression vs naive storage. ---
    size_t haplotype_bases = 0;
    for (const mg::graph::PathEntry& path : graph.paths()) {
        haplotype_bases += graph.pathSequence(path.steps).size();
    }
    std::printf("pangenome effect: %zu haplotype bases stored as %zu "
                "graph bases (%.1fx deduplication)\n",
                haplotype_bases, graph.totalSequenceLength(),
                graph.totalSequenceLength()
                    ? static_cast<double>(haplotype_bases) /
                          static_cast<double>(graph.totalSequenceLength())
                    : 0.0);

    // --- Load accounting (file loads only). ---
    if (from_file) {
        pangenome.refreshResidency();
        const mg::io::IndexLoadInfo& info = pangenome.info;
        std::printf("load: %s in %.4f s; container %llu bytes\n",
                    mg::io::loadModeName(info.mode), info.loadSeconds,
                    static_cast<unsigned long long>(info.fileBytes));
        if (info.mode == mg::io::LoadMode::Mapped) {
            std::printf("footprint: %llu bytes mapped (reserved), %llu "
                        "resident in the page cache (%.1f%%); shared "
                        "across every process mapping this file\n",
                        static_cast<unsigned long long>(info.mappedBytes),
                        static_cast<unsigned long long>(
                            info.residentBytes),
                        info.mappedBytes
                            ? 100.0 *
                                  static_cast<double>(info.residentBytes) /
                                  static_cast<double>(info.mappedBytes)
                            : 0.0);
        } else {
            std::printf("footprint: %llu heap bytes across arenas and "
                        "indexes (private to this process)\n",
                        static_cast<unsigned long long>(info.heapBytes));
        }
        for (const auto& [name, bytes] : info.sections) {
            std::printf("  section %-14s %12llu bytes\n", name.c_str(),
                        static_cast<unsigned long long>(bytes));
        }
    }

    if (!flags.str("gfa").empty()) {
        mg::io::saveGfa(flags.str("gfa"), graph);
        std::printf("wrote GFA to %s\n", flags.str("gfa").c_str());
    }
    return 0;
} catch (const mg::util::Error& e) {
    std::fprintf(stderr, "inspect_pangenome: %s\n", e.what());
    return 1;
}
