/**
 * @file
 * mgd — mapping as a service.  Loads (or generates) a pangenome once,
 * builds its indexes, and serves mapping requests over a Unix-domain
 * socket with admission control, per-tenant QoS, explicit backpressure
 * (RETRY_AFTER), per-request deadlines, and graceful drain on
 * SIGTERM/SIGINT (finish or degrade in-flight work, flush metrics,
 * exit 0).
 *
 * Run:  ./examples/mgd <graph.mgz|graph.mgz3> --socket /tmp/mgd.sock
 *       ./examples/mgd --gen B-yeast --socket /tmp/mgd.sock [flags]
 *
 * A v3 container memory-maps instead of parsing: startup is near-instant
 * and N mgd processes serving the same .mgz3 share one page-cache copy
 * of the index.
 *
 * Hot reload: `kill -HUP <pid>` (or a RELOAD control frame from
 * mg_client/mg_loadgen) swaps in a replacement container without
 * dropping a single in-flight or queued request.  SIGHUP re-loads the
 * path mgd was started with (publish the new file under the same name,
 * then signal); a control frame names an arbitrary path.  A replacement
 * that fails validation is rejected and the old index keeps serving.
 */
#include <poll.h>

#include <cstdio>
#include <memory>
#include <optional>

#include "fault/fault.h"
#include "index/distance.h"
#include "index/minimizer.h"
#include "io/mgz.h"
#include "obs/emitter.h"
#include "obs/flight_recorder.h"
#include "obs/request_trace.h"
#include "serve/daemon.h"
#include "serve/stop.h"
#include "sim/input_sets.h"
#include "util/flags.h"
#include "util/timer.h"

namespace {

/** Per-site fault counters for the final metrics snapshot. */
std::vector<mg::obs::MetricValue>
faultExtras()
{
    std::vector<mg::obs::MetricValue> extras;
    for (const auto& [site, stats] : mg::fault::allStats()) {
        mg::obs::MetricValue hits;
        hits.name = "mg_fault_hits_total{site=\"" + site + "\"}";
        hits.help = "Times the fault site was evaluated.";
        hits.value = stats.hits;
        extras.push_back(std::move(hits));
        mg::obs::MetricValue fires;
        fires.name = "mg_fault_fires_total{site=\"" + site + "\"}";
        fires.help = "Times the fault site injected its fault.";
        fires.value = stats.fires;
        extras.push_back(std::move(fires));
    }
    return extras;
}

} // namespace

int
main(int argc, char** argv)
try {
    mg::util::Flags flags("mgd");
    flags.define("socket", "", "Unix-domain socket path to serve on")
         .define("gen", "",
                 "serve a generated pangenome (input-set name, e.g. "
                 "B-yeast) instead of loading an .mgz")
         .define("workers", "2", "mapping worker threads")
         .define("queue-capacity", "64",
                 "bound on queued requests across all tenants")
         .define("tenants", "",
                 "tenant QoS spec 'name:weight=3:inflight=8:queued=16,"
                 "name2,...' (empty = one 'default' tenant)")
         .define("retry-base-millis", "25",
                 "RETRY_AFTER base; the hint grows with queue depth")
         .define("max-reads-per-request", "4096",
                 "requests carrying more reads are answered Error")
         .define("drain-deadline", "5.0",
                 "seconds drain waits before cancelling in-flight work")
         .define("watchdog", "true",
                 "supervise workers; stalled requests are cancelled")
         .define("watchdog-stall", "5.0",
                 "seconds without a heartbeat before a worker counts "
                 "as stalled")
         .define("max-deadline", "0",
                 "ceiling on per-request wall-clock budget in seconds "
                 "(0 = requests choose freely)")
         .define("max-extend-steps", "0",
                 "ceiling on per-read extension-step caps (0 = none)")
         .define("max-gbwt-lookups", "0",
                 "ceiling on per-read GBWT-lookup caps (0 = none)")
         .define("k", "15", "minimizer k-mer length")
         .define("w", "8", "minimizer window size")
         .define("gaf-generation-comment", "false",
                 "prefix each GAF payload with a '# mg:gen=N' comment "
                 "naming the index generation that mapped it")
         .define("fault", "",
                 "arm fault injection, e.g. 'serve.read=throw,limit=2'")
         .define("metrics-out", "",
                 "write metrics here (.prom = Prometheus text, anything "
                 "else = JSON snapshot series)")
         .define("metrics-interval", "0",
                 "rewrite --metrics-out every N seconds (0 = final only)")
         .define("trace-sample", "0",
                 "head-sampling probability for requests that arrive "
                 "without a client trace id (0 = only client-tagged "
                 "requests are traced)")
         .define("trace-out", "",
                 "write a Chrome-trace JSON of all committed request "
                 "traces here at drain (load in Perfetto)")
         .define("trace-exemplars", "8",
                 "keep the N slowest traced requests as exemplars")
         .define("trace-dump", "",
                 "write each slow-request exemplar as "
                 "<prefix><traceid>.mgtrace at drain (mg_verify "
                 "validates them)")
         .define("flight-ring", "16",
                 "per-worker flight-recorder ring size (last N reads "
                 "named in watchdog and crash dumps)");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }
    const bool generated = !flags.str("gen").empty();
    if (flags.str("socket").empty() ||
        flags.positional().size() != (generated ? 0u : 1u)) {
        std::fprintf(stderr,
                     "usage: mgd (<graph.mgz[3]> | --gen <input-set>) "
                     "--socket <path> [flags]\n");
        return 1;
    }
    if (!flags.str("fault").empty()) {
        mg::fault::armFromText(flags.str("fault"));
    }
    mg::serve::installStopHandlers();
    mg::serve::installReloadHandler();

    // The pangenome: loaded from a container (v1/v2 parse + index
    // build, v3 mmap), or generated from the named input-set spec
    // (self-contained demos and tests).
    mg::util::WallTimer timer;
    std::optional<mg::io::IndexedPangenome> loaded;
    std::optional<mg::sim::GeneratedPangenome> synthetic;
    std::optional<mg::index::MinimizerIndex> gen_minimizers;
    std::optional<mg::index::DistanceIndex> gen_distance;
    if (generated) {
        synthetic = mg::sim::generatePangenome(
            mg::sim::inputSetSpec(flags.str("gen")).pangenome);
        mg::index::MinimizerParams mparams;
        mparams.k = static_cast<int>(flags.integer("k"));
        mparams.w = static_cast<int>(flags.integer("w"));
        gen_minimizers.emplace(synthetic->graph, mparams);
        gen_distance.emplace(synthetic->graph);
    } else {
        mg::io::LoadOptions load_options;
        load_options.minimizer.k = static_cast<int>(flags.integer("k"));
        load_options.minimizer.w = static_cast<int>(flags.integer("w"));
        loaded = mg::io::loadPangenome(flags.positional()[0],
                                       load_options);
    }
    const size_t num_nodes =
        generated ? synthetic->graph.numNodes() : loaded->graph.numNodes();
    const size_t num_keys = generated ? gen_minimizers->numKeys()
                                      : loaded->minimizers.numKeys();
    const std::string load_mode =
        generated ? "generated"
                  : mg::io::loadModeName(loaded->info.mode);
    const double load_seconds =
        generated ? timer.seconds() : loaded->info.loadSeconds;
    std::printf("mgd: %zu nodes ready in %.2f s (%s load: %.3f s, "
                "%zu minimizer keys)\n",
                num_nodes, timer.seconds(), load_mode.c_str(),
                load_seconds, num_keys);

    mg::serve::DaemonParams params;
    params.socketPath = flags.str("socket");
    params.workers = static_cast<size_t>(flags.integer("workers"));
    params.queueCapacity =
        static_cast<size_t>(flags.integer("queue-capacity"));
    if (!flags.str("tenants").empty()) {
        params.tenants = mg::serve::parseTenantSpec(flags.str("tenants"));
    }
    params.retryBaseMillis =
        static_cast<uint32_t>(flags.integer("retry-base-millis"));
    params.maxReadsPerRequest =
        static_cast<size_t>(flags.integer("max-reads-per-request"));
    params.drainDeadlineSeconds = flags.real("drain-deadline");
    params.watchdog = flags.boolean("watchdog");
    params.watchdogParams.stallSeconds = flags.real("watchdog-stall");
    params.maxBudget.wallSeconds = flags.real("max-deadline");
    params.maxBudget.maxExtendSteps =
        static_cast<uint64_t>(flags.integer("max-extend-steps"));
    params.maxBudget.maxGbwtLookups =
        static_cast<uint64_t>(flags.integer("max-gbwt-lookups"));
    params.indexLoadMode = load_mode;
    params.indexLoadSeconds = load_seconds;
    params.gafGenerationComment = flags.boolean("gaf-generation-comment");
    params.traceSample = flags.real("trace-sample");
    params.traceOut = flags.str("trace-out");
    params.traceExemplars =
        static_cast<size_t>(flags.integer("trace-exemplars"));
    params.traceDumpPrefix = flags.str("trace-dump");
    params.flightRingSize =
        static_cast<size_t>(flags.integer("flight-ring"));

    // File-backed pangenomes move into the daemon (the IndexManager must
    // own the mapping so a hot swap can retire and unmap it); generated
    // ones stay borrowed — there is no file to reload anyway.
    const std::string index_path =
        generated ? std::string() : flags.positional()[0];
    std::optional<mg::serve::Daemon> daemon;
    if (generated) {
        daemon.emplace(synthetic->graph, synthetic->gbwt, *gen_minimizers,
                       *gen_distance, params);
    } else {
        daemon.emplace(std::move(*loaded), index_path, params);
        loaded.reset();
    }
    daemon->start();
    // Fatal signals dump every worker's flight ring (read index, stage,
    // trace id) with async-signal-safe calls before re-raising.
    mg::obs::installCrashHandler(&daemon->hub().flight());
    std::unique_ptr<mg::obs::MetricsEmitter> emitter;
    if (!flags.str("metrics-out").empty()) {
        emitter = std::make_unique<mg::obs::MetricsEmitter>(
            daemon->hub().registry(), flags.str("metrics-out"),
            flags.real("metrics-interval"));
        emitter->start();
    }
    std::printf("mgd: serving on %s (%zu workers, queue %zu",
                params.socketPath.c_str(), params.workers,
                params.queueCapacity);
    for (const mg::serve::TenantConfig& tenant : daemon->params().tenants) {
        std::printf(", tenant %s w=%llu", tenant.name.c_str(),
                    static_cast<unsigned long long>(tenant.weight));
    }
    std::printf(")\n");
    std::fflush(stdout);

    // Sleep until SIGTERM/SIGINT; the self-pipe makes both stop and
    // reload signals poll()-able without busy-waiting.  SIGHUP re-loads
    // the container mgd was started with.
    while (!mg::serve::stopRequested()) {
        struct pollfd pfd;
        pfd.fd = mg::serve::stopFd();
        pfd.events = POLLIN;
        ::poll(&pfd, 1, 1000);
        if (mg::serve::reloadRequested()) {
            mg::serve::clearReloadRequest();
            if (index_path.empty()) {
                std::printf("mgd: SIGHUP ignored — serving a generated "
                            "pangenome, nothing to reload\n");
            } else {
                mg::serve::SwapOutcome outcome =
                    daemon->reloadIndex(index_path);
                if (outcome.accepted) {
                    std::printf("mgd: SIGHUP reload published generation "
                                "%llu (%s, %.3f s load)\n",
                                static_cast<unsigned long long>(
                                    outcome.generation),
                                index_path.c_str(), outcome.loadSeconds);
                } else {
                    std::printf("mgd: SIGHUP reload REJECTED, generation "
                                "%llu still serving: %s\n",
                                static_cast<unsigned long long>(
                                    outcome.generation),
                                outcome.reason.c_str());
                }
            }
            std::fflush(stdout);
        }
    }
    std::printf("mgd: stop signal, draining (deadline %.1f s)\n",
                params.drainDeadlineSeconds);
    daemon->requestDrain();
    daemon->stop();

    const mg::serve::DaemonReport& report = daemon->report();
    std::printf("mgd: drained %s — %llu accepted, %llu completed, "
                "%llu shed (%llu at drain, %llu past deadline), "
                "%llu errors, %llu bad frames, %llu watchdog cancels; "
                "index %s load in %.3f s\n",
                report.drainClean ? "clean" : "FORCED",
                static_cast<unsigned long long>(report.accepted),
                static_cast<unsigned long long>(report.completed),
                static_cast<unsigned long long>(report.shed),
                static_cast<unsigned long long>(report.drainShed),
                static_cast<unsigned long long>(report.deadlineShed),
                static_cast<unsigned long long>(report.errors),
                static_cast<unsigned long long>(report.badFrames),
                static_cast<unsigned long long>(report.watchdogCancels),
                report.indexLoadMode.c_str(), report.indexLoadSeconds);
    if (report.reloads > 0 || report.reloadsRejected > 0) {
        std::printf("mgd: %llu reloads (%llu rejected), %llu generations "
                    "retired, final generation %llu\n",
                    static_cast<unsigned long long>(report.reloads),
                    static_cast<unsigned long long>(report.reloadsRejected),
                    static_cast<unsigned long long>(
                        report.generationsRetired),
                    static_cast<unsigned long long>(
                        report.finalGeneration));
    }
    if (report.tracedRequests > 0) {
        std::printf("mgd: %llu traced requests (%llu exemplar dumps)",
                    static_cast<unsigned long long>(report.tracedRequests),
                    static_cast<unsigned long long>(report.traceDumps));
        if (!params.traceOut.empty()) {
            std::printf("; trace at %s", params.traceOut.c_str());
        }
        std::printf("\n");
    }
    if (emitter) {
        // Stamp each stage histogram with the trace id of the slowest
        // request seen at that stage, so the JSON snapshot links a fat
        // tail straight to a .mgtrace / Chrome-trace exemplar.
        const auto stage_exemplars = daemon->tracer().stageExemplars();
        emitter->finalize(
            faultExtras(), [&](mg::obs::Snapshot& snap) {
                for (size_t s = 0; s < mg::obs::kSpanStages; ++s) {
                    if (stage_exemplars[s].traceId == 0) {
                        continue;
                    }
                    const std::string name =
                        "mg_serve_stage_ns{" +
                        mg::obs::promLabel(
                            "stage", mg::obs::spanStageName(
                                         static_cast<mg::obs::SpanStage>(
                                             s))) +
                        "}";
                    snap.annotateExemplar(
                        name,
                        mg::obs::traceIdHex(stage_exemplars[s].traceId));
                }
            });
        std::printf("mgd: wrote %s\n", flags.str("metrics-out").c_str());
    }
    mg::obs::installCrashHandler(nullptr);
    return 0;
} catch (const mg::util::Error& e) {
    std::fprintf(stderr, "mgd: %s\n", e.what());
    return 1;
}
