/**
 * @file
 * Autotuning demo (paper Section VII-B, condensed): sweep the full
 * scheduler x batch-size x CachedGBWT-capacity cross product for one input
 * set, report the best configuration and its speedup over Giraffe's
 * defaults on each Table II machine, plus the per-factor ANOVA.
 *
 * Run:  ./examples/autotune_demo [--input-set C-HPRC] [--scale 0.02]
 */
#include <cstdio>

#include "giraffe/parent.h"
#include "index/distance.h"
#include "index/minimizer.h"
#include "sim/input_sets.h"
#include "tune/autotuner.h"
#include "util/flags.h"

int
main(int argc, char** argv)
try {
    mg::util::Flags flags("autotune_demo");
    flags.define("input-set", "C-HPRC", "input set analog to tune")
         .define("scale", "0.02",
                 "read-count multiplier (the paper subsamples to 10%)");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }

    std::string name = flags.str("input-set");
    std::printf("building %s at scale %.3f...\n", name.c_str(),
                flags.real("scale"));
    mg::sim::InputSet set = mg::sim::buildInputSet(
        mg::sim::inputSetSpec(name), flags.real("scale"));

    mg::index::MinimizerParams mparams;
    mparams.k = 15;
    mparams.w = 8;
    mg::index::MinimizerIndex minimizers(set.pangenome.graph, mparams);
    mg::index::DistanceIndex distance(set.pangenome.graph);
    mg::giraffe::ParentEmulator parent(set.pangenome.graph,
                                       set.pangenome.gbwt, minimizers,
                                       distance,
                                       mg::giraffe::ParentParams());
    mg::io::SeedCapture capture = parent.capturePreprocessing(set.reads);

    mg::tune::Autotuner tuner(set.pangenome.graph, set.pangenome.gbwt,
                              distance, capture);
    mg::tune::SweepSpace space = mg::tune::paperSweepSpace();
    std::printf("measuring %zu cache capacities (instrumented runs)...\n",
                space.capacities.size());
    auto profiles = tuner.measureCapacities(space.capacities);

    std::printf("\n%-12s %-18s %-12s %-12s %-8s\n", "machine",
                "best config", "best (s)", "default (s)", "speedup");
    for (const auto& machine : mg::machine::paperMachines()) {
        auto results = tuner.sweep(machine, space, profiles);
        const auto& best = mg::tune::Autotuner::best(results);
        const auto& fallback = mg::tune::Autotuner::find(
            results, mg::tune::defaultConfig());
        std::printf("%-12s %-18s %-12.4f %-12.4f %-8.2f\n",
                    machine.name.c_str(), best.config.str().c_str(),
                    best.makespanSeconds, fallback.makespanSeconds,
                    fallback.makespanSeconds / best.makespanSeconds);
    }

    std::printf("\nANOVA on the chi-intel sweep (factor significance):\n");
    auto chi_results = tuner.sweep(
        mg::machine::machineByName("chi-intel"), space, profiles);
    std::printf("%s", mg::stats::formatAnovaTable(
                          mg::tune::Autotuner::anova(chi_results)).c_str());
    return 0;
} catch (const mg::util::Error& e) {
    std::fprintf(stderr, "autotune_demo: %s\n", e.what());
    return 1;
}
