/**
 * @file
 * Figure 6 analog: speedup against "no CachedGBWT at all" for different
 * initial capacities, C-HPRC on local-intel, for both the OpenMP and the
 * work-stealing scheduler.  Every capacity is actually executed on the
 * host (rehash storms and table locality are emergent), then projected to
 * local-intel's full thread count.  Paper shape: best speedups at
 * capacities <= 4096, degradation for larger initial capacities.
 */
#include <cstdio>
#include <vector>

#include "common.h"
#include "tune/autotuner.h"
#include "util/csv.h"
#include "util/str.h"

int
main(int argc, char** argv)
{
    mg::util::Flags flags =
        mg::bench::benchFlags("bench_fig6_capacity", "0.25");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }
    mg::bench::banner("Figure 6 analog",
                      "Speedup vs no-caching for initial CachedGBWT "
                      "capacities (C-HPRC, local-intel model)");

    auto world = mg::bench::buildWorld("C-HPRC", flags.real("scale"));
    mg::giraffe::ParentEmulator parent = world->parent();
    mg::io::SeedCapture capture =
        parent.capturePreprocessing(world->set.reads);
    mg::tune::Autotuner tuner(world->graph(), world->gbwt(),
                              world->distance, capture);

    std::vector<size_t> capacities = {0,    256,   512,   1024, 2048,
                                      4096, 8192,  16384, 65536, 262144};
    std::vector<mg::tune::CapacityProfile> profiles;
    for (size_t capacity : capacities) {
        profiles.push_back(mg::bench::scaleProfileToPaper(
            tuner.measureCapacity(capacity), "C-HPRC"));
    }

    mg::machine::MachineConfig host =
        mg::machine::machineByName("local-intel");
    std::vector<mg::sched::SchedulerKind> schedulers = {
        mg::sched::SchedulerKind::OmpDynamic,
        mg::sched::SchedulerKind::WorkStealing,
    };

    std::unique_ptr<mg::util::CsvWriter> csv;
    if (!flags.str("csv").empty()) {
        csv = std::make_unique<mg::util::CsvWriter>(
            flags.str("csv"),
            std::vector<std::string>{"scheduler", "capacity", "speedup",
                                     "rehashes", "hit_rate"});
    }

    std::printf("%-10s", "capacity");
    for (auto kind : schedulers) {
        std::printf(" %12s", mg::sched::schedulerName(kind));
    }
    std::printf(" %10s %9s\n", "rehashes", "hit rate");

    std::vector<double> baseline(schedulers.size(), 0.0);
    for (size_t c = 0; c < capacities.size(); ++c) {
        std::printf("%-10zu", capacities[c]);
        for (size_t s = 0; s < schedulers.size(); ++s) {
            mg::tune::TuneConfig config;
            config.scheduler = schedulers[s];
            config.batchSize = 512;
            config.cacheCapacity = capacities[c];
            double makespan = mg::tune::Autotuner::modelMakespan(
                host, profiles[c], config, host.threadContexts());
            if (capacities[c] == 0) {
                baseline[s] = makespan;
            }
            double speedup = baseline[s] / makespan;
            std::printf(" %12.3f", speedup);
            if (csv) {
                csv->row({mg::sched::schedulerName(schedulers[s]),
                          std::to_string(capacities[c]),
                          mg::util::fixed(speedup, 4),
                          std::to_string(profiles[c].cacheStats.rehashes),
                          mg::util::fixed(profiles[c].cacheStats.hitRate(),
                                          4)});
            }
        }
        std::printf(" %10llu %9.3f\n",
                    static_cast<unsigned long long>(
                        profiles[c].cacheStats.rehashes),
                    profiles[c].cacheStats.hitRate());
    }
    std::printf("\npaper expectation: peak speedup at capacity <= 4096; "
                "larger initial capacities degrade\n");
    return 0;
}
