/**
 * @file
 * Table VIII analog: the best-performing configuration parameters (batch
 * size, CachedGBWT capacity, scheduler) for every input set on every
 * machine.  Paper headline: almost no two cells share a configuration and
 * the defaults (openmp/512/256) almost never win; the work-stealing
 * scheduler wins a minority of cells.  Our deterministic model collapses
 * near-ties that measurement noise spreads out in the paper (see
 * EXPERIMENTS.md), but the defaults-never-win property holds.
 */
#include <cstdio>
#include <vector>

#include "common.h"
#include "tune/autotuner.h"
#include "util/csv.h"

int
main(int argc, char** argv)
{
    mg::util::Flags flags =
        mg::bench::benchFlags("bench_table8_configs", "0.5");
    flags.define("subsample", "0.1", "fraction of each input set used");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }
    mg::bench::banner("Table VIII analog",
                      "Best configuration per input and machine "
                      "(BS = batch size, CC = cache capacity, * = "
                      "work-stealing scheduler)");

    double scale = flags.real("scale") * flags.real("subsample");
    mg::tune::SweepSpace space = mg::tune::paperSweepSpace();
    auto machines = mg::machine::paperMachines();

    std::unique_ptr<mg::util::CsvWriter> csv;
    if (!flags.str("csv").empty()) {
        csv = std::make_unique<mg::util::CsvWriter>(
            flags.str("csv"),
            std::vector<std::string>{"input", "machine", "batch",
                                     "capacity", "scheduler"});
    }

    std::printf("%-10s", "input");
    for (size_t m = 0; m < machines.size(); ++m) {
        std::printf(" | %6s %6s", "BS", "CC");
    }
    std::printf("\n%-10s", "");
    for (const auto& machine : machines) {
        std::printf(" | %13s", machine.name.c_str());
    }
    std::printf("\n");

    size_t default_wins = 0;
    size_t steal_wins = 0;
    size_t cells = 0;
    for (const auto& spec : mg::sim::standardInputSets()) {
        auto world = mg::bench::buildWorld(spec.name, scale);
        mg::giraffe::ParentEmulator parent = world->parent();
        mg::io::SeedCapture capture =
            parent.capturePreprocessing(world->set.reads);
        mg::tune::Autotuner tuner(world->graph(), world->gbwt(),
                                  world->distance, capture);
        auto profiles = tuner.measureCapacities(space.capacities);
        for (auto& profile : profiles) {
            profile = mg::bench::scaleProfileToPaper(
                profile, spec.name, flags.real("subsample"));
        }

        std::printf("%-10s", spec.name.c_str());
        for (const auto& machine : machines) {
            auto results = tuner.sweep(machine, space, profiles);
            const auto& best = mg::tune::Autotuner::best(results);
            bool steal = best.config.scheduler ==
                         mg::sched::SchedulerKind::WorkStealing;
            char capacity[16];
            std::snprintf(capacity, sizeof(capacity), "%zu%s",
                          best.config.cacheCapacity, steal ? "*" : "");
            std::printf(" | %6zu %6s", best.config.batchSize, capacity);
            ++cells;
            steal_wins += steal ? 1 : 0;
            mg::tune::TuneConfig defaults = mg::tune::defaultConfig();
            if (best.config.scheduler == defaults.scheduler &&
                best.config.batchSize == defaults.batchSize &&
                best.config.cacheCapacity == defaults.cacheCapacity) {
                ++default_wins;
            }
            if (csv) {
                csv->row({spec.name, machine.name,
                          std::to_string(best.config.batchSize),
                          std::to_string(best.config.cacheCapacity),
                          mg::sched::schedulerName(
                              best.config.scheduler)});
            }
        }
        std::printf("\n");
    }
    std::printf("\ndefault configuration wins %zu of %zu cells "
                "(paper: 0 of 16); work-stealing wins %zu "
                "(paper: 5 of 16)\n",
                default_wins, cells, steal_wins);
    return 0;
}
