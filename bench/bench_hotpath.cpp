/**
 * @file
 * Hot-path benchmark harness (perf trajectory anchor).  Measures the
 * seed-and-extend kernel the paper identifies as memory-bound: single-thread
 * mapping throughput (reads/sec), heap bytes allocated per read and per
 * steady-state extension (via a global operator-new counter), and the
 * CachedGBWT hit rate, on input-set analogs A and B.  Emits
 * `BENCH_hotpath.json` so every future PR can compare against a recorded
 * baseline.
 *
 * Modes:
 *   bench_hotpath [--scale=S] [--out=PATH] [gbench flags]   full run + JSON
 *   bench_hotpath --smoke [--scale=S]                       quick CTest run
 *   bench_hotpath --guard=PATH                              perf-guard run
 *
 * The smoke mode (CTest label `perf-smoke`) enforces machine-independent
 * invariants of the optimized kernel — zero heap allocations in the
 * steady-state extend loop and a sane cache hit rate — and runs one quick
 * throughput repetition so gross (>20%) kernel regressions surface in CI
 * timing logs.
 *
 * The guard mode (also perf-smoke) protects the SWAR speedup itself: it
 * re-measures the SWAR-vs-scalar throughput ratio (both kernels timed in
 * the same process, so machine speed cancels out) and fails if the ratio
 * fell more than 15% below the value committed in the given BENCH JSON.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "common.h"
#include "io/file.h"
#include "stats/latency.h"
#include "util/timer.h"

// ------------------------------------------------------------------------
// Global allocation counter: every operator new/delete in the process is
// counted, so a delta around a measured region gives exact heap traffic.

namespace {

std::atomic<uint64_t> g_alloc_bytes{0};
std::atomic<uint64_t> g_alloc_calls{0};

struct AllocSnapshot
{
    uint64_t bytes = 0;
    uint64_t calls = 0;
};

AllocSnapshot
allocNow()
{
    return {g_alloc_bytes.load(std::memory_order_relaxed),
            g_alloc_calls.load(std::memory_order_relaxed)};
}

AllocSnapshot
allocDelta(const AllocSnapshot& since)
{
    AllocSnapshot now = allocNow();
    return {now.bytes - since.bytes, now.calls - since.calls};
}

void*
countedAlloc(std::size_t size)
{
    g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
    g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) {
        return p;
    }
    throw std::bad_alloc();
}

} // namespace

void* operator new(std::size_t size) { return countedAlloc(size); }
void* operator new[](std::size_t size) { return countedAlloc(size); }
void*
operator new(std::size_t size, const std::nothrow_t&) noexcept
{
    g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
    g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size);
}
void*
operator new[](std::size_t size, const std::nothrow_t&) noexcept
{
    g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
    g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void
operator delete(void* p, const std::nothrow_t&) noexcept
{
    std::free(p);
}
void
operator delete[](void* p, const std::nothrow_t&) noexcept
{
    std::free(p);
}

// ------------------------------------------------------------------------

namespace mg::bench {
namespace {

double g_scale = 0.1;

/** One prepared workload: world + seed capture, built once per input set. */
struct Workload
{
    std::unique_ptr<World> world;
    io::SeedCapture capture;
};

const Workload&
workload(const std::string& input_set)
{
    static std::vector<std::pair<std::string, Workload>> cache;
    for (const auto& [name, wl] : cache) {
        if (name == input_set) {
            return wl;
        }
    }
    Workload wl;
    wl.world = buildWorld(input_set, g_scale);
    wl.capture =
        wl.world->parent().capturePreprocessing(wl.world->set.reads);
    cache.emplace_back(input_set, std::move(wl));
    return cache.back().second;
}

/** Result of one measured mapping pass over a whole capture. */
struct PassResult
{
    double readsPerSec = 0.0;
    double bytesPerRead = 0.0;
    double allocsPerRead = 0.0;
    double hitRate = 0.0;
    /** Per-read latency tail (nanoseconds), from the mapper's histogram. */
    double p50Nanos = 0.0;
    double p99Nanos = 0.0;
    double p999Nanos = 0.0;
};

/**
 * Map every read in the capture `reps` times with one reused MapperState
 * (warm-up pass excluded from both the clock and the allocation counter).
 */
PassResult
measureMapping(const Workload& wl, int reps, bool use_swar = true)
{
    map::MapperParams params;
    params.extend.useSwar = use_swar;
    map::Mapper mapper(wl.world->graph(), wl.world->gbwt(),
                       wl.world->minimizers, wl.world->distance, params);
    auto state = mapper.makeState();
    const auto& entries = wl.capture.entries;
    // Warm-up: touches every read once so caches/scratch reach capacity.
    for (const auto& entry : entries) {
        mapper.mapFromSeeds(entry.read, entry.seeds, *state);
    }
    const gbwt::CacheStats warm = state->totalStats();
    state->resilience.latency.clear(); // drop warm-up samples
    AllocSnapshot before = allocNow();
    util::WallTimer timer;
    for (int rep = 0; rep < reps; ++rep) {
        for (const auto& entry : entries) {
            benchmark::DoNotOptimize(
                mapper.mapFromSeeds(entry.read, entry.seeds, *state));
        }
    }
    double seconds = timer.seconds();
    AllocSnapshot delta = allocDelta(before);
    const gbwt::CacheStats total = state->totalStats();

    PassResult out;
    double reads =
        static_cast<double>(entries.size()) * static_cast<double>(reps);
    out.readsPerSec = reads / seconds;
    out.bytesPerRead = static_cast<double>(delta.bytes) / reads;
    out.allocsPerRead = static_cast<double>(delta.calls) / reads;
    uint64_t lookups = total.lookups - warm.lookups;
    uint64_t hits = total.hits - warm.hits;
    out.hitRate = lookups == 0
        ? 0.0
        : static_cast<double>(hits) / static_cast<double>(lookups);
    const stats::LatencyHistogram& latency = state->resilience.latency;
    out.p50Nanos = latency.p50();
    out.p99Nanos = latency.p99();
    out.p999Nanos = latency.p999();
    return out;
}

/**
 * The steady-state extend loop in isolation: repeatedly extend a fixed
 * sample of seeds with a warm cache.  The optimized kernel must allocate
 * nothing here (the acceptance criterion of the hot-path overhaul).
 */
struct ExtendSample
{
    const io::ReadWithSeeds* entry = nullptr;
    size_t seedIndex = 0;
    std::string oriented; // the orientation the seed was found on
};

std::vector<ExtendSample>
pickExtendSamples(const Workload& wl, size_t max_samples)
{
    std::vector<ExtendSample> samples;
    for (const auto& entry : wl.capture.entries) {
        if (samples.size() >= max_samples) {
            break;
        }
        for (size_t s = 0; s < entry.seeds.size(); ++s) {
            if (samples.size() >= max_samples) {
                break;
            }
            ExtendSample sample;
            sample.entry = &entry;
            sample.seedIndex = s;
            sample.oriented = entry.seeds[s].onReverseRead
                ? util::reverseComplement(entry.read.sequence)
                : entry.read.sequence;
            samples.push_back(std::move(sample));
        }
    }
    return samples;
}

struct ExtendResult
{
    double extendsPerSec = 0.0;
    double bytesPerExtend = 0.0;
    double allocsPerExtend = 0.0;
    /** 32-base SWAR chunks XORed per extension (0 in scalar mode). */
    double wordsPerExtend = 0.0;
};

ExtendResult
measureExtend(const Workload& wl, int reps, bool use_swar = true)
{
    map::ExtendParams params = map::MapperParams().extend;
    params.useSwar = use_swar;
    map::Extender extender(wl.world->graph(), params);
    gbwt::CachedGbwt cache(wl.world->gbwt());
    map::ExtendScratch scratch;
    std::vector<ExtendSample> samples = pickExtendSamples(wl, 256);
    MG_ASSERT(!samples.empty());
    // Warm-up: every sample extended once (cache fills, scratch spills).
    for (const ExtendSample& sample : samples) {
        extender.extendSeed(sample.entry->seeds[sample.seedIndex],
                            sample.oriented, cache, scratch);
    }
    scratch.wordsCompared = 0;
    AllocSnapshot before = allocNow();
    util::WallTimer timer;
    for (int rep = 0; rep < reps; ++rep) {
        for (const ExtendSample& sample : samples) {
            benchmark::DoNotOptimize(extender.extendSeed(
                sample.entry->seeds[sample.seedIndex], sample.oriented,
                cache, scratch));
        }
    }
    double seconds = timer.seconds();
    AllocSnapshot delta = allocDelta(before);
    double extends =
        static_cast<double>(samples.size()) * static_cast<double>(reps);
    ExtendResult out;
    out.extendsPerSec = extends / seconds;
    out.bytesPerExtend = static_cast<double>(delta.bytes) / extends;
    out.allocsPerExtend = static_cast<double>(delta.calls) / extends;
    out.wordsPerExtend = static_cast<double>(scratch.wordsCompared) / extends;
    return out;
}

// ------------------------------------------------------------------ gbench

void
BM_MapFromSeeds(benchmark::State& state, const char* input_set)
{
    const Workload& wl = workload(input_set);
    map::Mapper mapper(wl.world->graph(), wl.world->gbwt(),
                       wl.world->minimizers, wl.world->distance,
                       map::MapperParams());
    auto mapper_state = mapper.makeState();
    const auto& entries = wl.capture.entries;
    size_t i = 0;
    for (const auto& entry : entries) { // warm-up
        mapper.mapFromSeeds(entry.read, entry.seeds, *mapper_state);
    }
    AllocSnapshot before = allocNow();
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapper.mapFromSeeds(
            entries[i].read, entries[i].seeds, *mapper_state));
        i = (i + 1) % entries.size();
    }
    AllocSnapshot delta = allocDelta(before);
    state.SetItemsProcessed(state.iterations());
    state.counters["bytes_per_read"] = benchmark::Counter(
        static_cast<double>(delta.bytes) /
        static_cast<double>(state.iterations()));
    state.counters["hit_rate"] =
        benchmark::Counter(mapper_state->totalStats().hitRate());
}

void
BM_ExtendSteady(benchmark::State& state, const char* input_set)
{
    const Workload& wl = workload(input_set);
    map::Extender extender(wl.world->graph(),
                           map::MapperParams().extend);
    gbwt::CachedGbwt cache(wl.world->gbwt());
    std::vector<ExtendSample> samples = pickExtendSamples(wl, 256);
    for (const ExtendSample& sample : samples) { // warm-up
        extender.extendSeed(sample.entry->seeds[sample.seedIndex],
                            sample.oriented, cache);
    }
    size_t i = 0;
    AllocSnapshot before = allocNow();
    for (auto _ : state) {
        const ExtendSample& sample = samples[i];
        benchmark::DoNotOptimize(extender.extendSeed(
            sample.entry->seeds[sample.seedIndex], sample.oriented,
            cache));
        i = (i + 1) % samples.size();
    }
    AllocSnapshot delta = allocDelta(before);
    state.SetItemsProcessed(state.iterations());
    state.counters["bytes_per_extend"] = benchmark::Counter(
        static_cast<double>(delta.bytes) /
        static_cast<double>(state.iterations()));
}

// --------------------------------------------------------------- reporting

/** Everything measured on one input set (SWAR and scalar passes). */
struct InputRecord
{
    PassResult map;
    ExtendResult ext;
    PassResult mapScalar;
    ExtendResult extScalar;

    double
    mapSpeedup() const
    {
        return mapScalar.readsPerSec > 0.0
                   ? map.readsPerSec / mapScalar.readsPerSec
                   : 0.0;
    }
    double
    extendSpeedup() const
    {
        return extScalar.extendsPerSec > 0.0
                   ? ext.extendsPerSec / extScalar.extendsPerSec
                   : 0.0;
    }
};

/** Packed-arena footprint of one world's graph. */
void
emitArenaJson(std::FILE* f, const graph::VariationGraph& g,
              const char* name, const char* tail)
{
    const graph::SequenceStore& store = g.sequenceStore();
    size_t stored = 2 * store.totalBases();
    // The pre-packing layout held both strands as one byte per base.
    double reduction =
        store.arenaBytes()
            ? static_cast<double>(stored) /
                  static_cast<double>(store.arenaBytes())
            : 0.0;
    std::fprintf(f,
                 "    \"%s\": {\n"
                 "      \"resident_bytes\": %zu,\n"
                 "      \"arena_bytes\": %zu,\n"
                 "      \"offset_table_bytes\": %zu,\n"
                 "      \"reserved_bytes\": %zu,\n"
                 "      \"bits_per_stored_base\": %.3f,\n"
                 "      \"byte_arena_reduction\": %.2f,\n"
                 "      \"sanitized_bases\": %zu\n"
                 "    }%s\n",
                 name, store.footprintBytes(), store.arenaBytes(),
                 store.offsetTableBytes(), store.reservedBytes(),
                 stored ? 8.0 * static_cast<double>(store.arenaBytes()) /
                              static_cast<double>(stored)
                        : 0.0,
                 reduction, store.sanitizedBases(), tail);
}

void
writeJson(const std::string& path, const InputRecord& a,
          const InputRecord& b)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "bench_hotpath: cannot write %s\n",
                     path.c_str());
        return;
    }
    auto emit = [&](const char* name, const InputRecord& r,
                    const char* tail) {
        std::fprintf(f,
                     "    \"%s\": {\n"
                     "      \"reads_per_sec\": %.1f,\n"
                     "      \"bytes_per_read\": %.1f,\n"
                     "      \"allocs_per_read\": %.2f,\n"
                     "      \"cache_hit_rate\": %.4f,\n"
                     "      \"extends_per_sec\": %.1f,\n"
                     "      \"bytes_per_extend\": %.1f,\n"
                     "      \"allocs_per_extend\": %.2f,\n"
                     "      \"words_per_extend\": %.2f,\n"
                     "      \"read_latency_p50_ns\": %.0f,\n"
                     "      \"read_latency_p99_ns\": %.0f,\n"
                     "      \"read_latency_p999_ns\": %.0f,\n"
                     "      \"scalar_reads_per_sec\": %.1f,\n"
                     "      \"scalar_extends_per_sec\": %.1f\n"
                     "    }%s\n",
                     name, r.map.readsPerSec, r.map.bytesPerRead,
                     r.map.allocsPerRead, r.map.hitRate,
                     r.ext.extendsPerSec, r.ext.bytesPerExtend,
                     r.ext.allocsPerExtend, r.ext.wordsPerExtend,
                     r.map.p50Nanos, r.map.p99Nanos, r.map.p999Nanos,
                     r.mapScalar.readsPerSec, r.extScalar.extendsPerSec,
                     tail);
    };
    std::fprintf(f, "{\n  \"benchmark\": \"bench_hotpath\",\n"
                    "  \"scale\": %.3f,\n  \"results\": {\n",
                 g_scale);
    emit("A-human", a, ",");
    emit("B-yeast", b, "");
    std::fprintf(f, "  },\n  \"packed_arena\": {\n");
    emitArenaJson(f, workload("A-human").world->graph(), "A-human", ",");
    emitArenaJson(f, workload("B-yeast").world->graph(), "B-yeast", "");
    // The guard section: in-process SWAR/scalar ratios, the quantities the
    // perf_guard ctest re-measures (machine speed cancels in the ratio).
    std::fprintf(f,
                 "  },\n  \"guard\": {\n"
                 "    \"swar_map_speedup_A\": %.3f,\n"
                 "    \"swar_extend_speedup_A\": %.3f,\n"
                 "    \"swar_map_speedup_B\": %.3f,\n"
                 "    \"swar_extend_speedup_B\": %.3f\n"
                 "  }\n}\n",
                 a.mapSpeedup(), a.extendSpeedup(), b.mapSpeedup(),
                 b.extendSpeedup());
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
}

// ------------------------------------------------------------------- guard

/** Minimal scan for `"key": <number>` in a JSON text; < 0 if absent. */
double
jsonNumber(const std::string& text, const std::string& key)
{
    size_t at = text.find("\"" + key + "\"");
    if (at == std::string::npos) {
        return -1.0;
    }
    at = text.find(':', at);
    if (at == std::string::npos) {
        return -1.0;
    }
    return std::atof(text.c_str() + at + 1);
}

/**
 * Perf guard: re-measure the SWAR-vs-scalar extend speedup on the A analog
 * (best of three in-process A/B passes, so machine speed and load cancel)
 * and fail if it dropped more than 15% below the committed ratio.
 */
int
guardRun(const std::string& committed_path)
{
    std::string text;
    try {
        text = io::readFileText(committed_path);
    } catch (const util::Error& e) {
        std::fprintf(stderr, "FAIL: cannot read committed record %s: %s\n",
                     committed_path.c_str(), e.what());
        return 1;
    }
    double committed = jsonNumber(text, "swar_extend_speedup_A");
    if (committed <= 0.0) {
        std::fprintf(stderr,
                     "FAIL: %s has no swar_extend_speedup_A entry\n",
                     committed_path.c_str());
        return 1;
    }
    const Workload& wl = workload("A-human");
    double best = 0.0;
    for (int attempt = 0; attempt < 3; ++attempt) {
        ExtendResult swar = measureExtend(wl, 4, true);
        ExtendResult scalar = measureExtend(wl, 4, false);
        if (scalar.extendsPerSec > 0.0) {
            best = std::max(best, swar.extendsPerSec /
                                      scalar.extendsPerSec);
        }
    }
    const double threshold = 0.85 * committed;
    std::printf("perf-guard A-human: swar/scalar extend speedup %.3f "
                "(committed %.3f, floor %.3f)\n",
                best, committed, threshold);
    if (best < threshold) {
        std::fprintf(stderr,
                     "FAIL: SWAR extend speedup regressed >15%% below the "
                     "committed record (%.3f < %.3f)\n",
                     best, threshold);
        return 1;
    }
    return 0;
}

int
smokeRun()
{
    // One quick repetition on the A analog: fast enough for CTest, long
    // enough that a >20% kernel regression is visible in the logged
    // reads/sec, with hard failures only on machine-independent invariants.
    const Workload& wl = workload("A-human");
    PassResult map_a = measureMapping(wl, 1);
    ExtendResult ext_a = measureExtend(wl, 4);
    std::printf("perf-smoke A-human: %.0f reads/s, %.1f B/read, "
                "hit %.3f, extend %.0f/s, %.1f B/extend\n",
                map_a.readsPerSec, map_a.bytesPerRead, map_a.hitRate,
                ext_a.extendsPerSec, ext_a.bytesPerExtend);
    std::printf("perf-smoke A-human latency: p50 %s, p99 %s, p999 %s\n",
                stats::formatNanos(map_a.p50Nanos).c_str(),
                stats::formatNanos(map_a.p99Nanos).c_str(),
                stats::formatNanos(map_a.p999Nanos).c_str());
    int failures = 0;
    if (ext_a.bytesPerExtend != 0.0 || ext_a.allocsPerExtend != 0.0) {
        std::fprintf(stderr,
                     "FAIL: steady-state extend loop allocates "
                     "(%.1f bytes, %.2f allocs per extend); the kernel "
                     "must be allocation-free\n",
                     ext_a.bytesPerExtend, ext_a.allocsPerExtend);
        ++failures;
    }
    if (map_a.hitRate < 0.5) {
        std::fprintf(stderr,
                     "FAIL: CachedGBWT hit rate %.3f < 0.5; the per-read "
                     "cache reset is losing its entries\n",
                     map_a.hitRate);
        ++failures;
    }
    return failures == 0 ? 0 : 1;
}

} // namespace
} // namespace mg::bench

int
main(int argc, char** argv)
{
    using namespace mg::bench;
    bool smoke = false;
    std::string out_path = "BENCH_hotpath.json";
    std::string guard_path;
    std::vector<char*> passthrough;
    passthrough.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strncmp(argv[i], "--guard=", 8) == 0) {
            guard_path = argv[i] + 8;
        } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
            g_scale = std::atof(argv[i] + 8);
        } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
            out_path = argv[i] + 6;
        } else {
            passthrough.push_back(argv[i]);
        }
    }
    if (smoke || !guard_path.empty()) {
        if (g_scale > 0.05) {
            g_scale = 0.05; // keep CTest fast regardless of the default
        }
        if (!guard_path.empty()) {
            return guardRun(guard_path);
        }
        return smokeRun();
    }

    banner("hotpath", "Hot-path kernel throughput, allocation, and cache "
                      "behaviour (single thread)");

    // Deterministic measurement passes for the JSON record: SWAR and
    // scalar kernels back to back, same workload, same process.
    auto record = [](const Workload& wl) {
        InputRecord r;
        r.map = measureMapping(wl, 3, true);
        r.mapScalar = measureMapping(wl, 3, false);
        r.ext = measureExtend(wl, 20, true);
        r.extScalar = measureExtend(wl, 20, false);
        return r;
    };
    auto report = [](const char* name, const InputRecord& r) {
        std::printf(
            "%s: %10.0f reads/s  %8.1f B/read  %6.2f allocs/read"
            "  hit %.4f\n         %10.0f ext/s    %8.1f B/extend  "
            "%6.2f words/ext\n         read latency: p50 %s, p99 %s, "
            "p999 %s\n         swar/scalar: map %.2fx, "
            "extend %.2fx\n",
            name, r.map.readsPerSec, r.map.bytesPerRead,
            r.map.allocsPerRead, r.map.hitRate, r.ext.extendsPerSec,
            r.ext.bytesPerExtend, r.ext.wordsPerExtend,
            mg::stats::formatNanos(r.map.p50Nanos).c_str(),
            mg::stats::formatNanos(r.map.p99Nanos).c_str(),
            mg::stats::formatNanos(r.map.p999Nanos).c_str(),
            r.mapSpeedup(), r.extendSpeedup());
    };
    InputRecord rec_a = record(workload("A-human"));
    InputRecord rec_b = record(workload("B-yeast"));
    report("A-human", rec_a);
    report("B-yeast", rec_b);
    writeJson(out_path, rec_a, rec_b);

    // Google-benchmark pass (iteration-level timing, same kernels).
    int bench_argc = static_cast<int>(passthrough.size());
    benchmark::RegisterBenchmark("BM_MapFromSeeds/A", BM_MapFromSeeds,
                                 "A-human");
    benchmark::RegisterBenchmark("BM_MapFromSeeds/B", BM_MapFromSeeds,
                                 "B-yeast");
    benchmark::RegisterBenchmark("BM_ExtendSteady/A", BM_ExtendSteady,
                                 "A-human");
    benchmark::RegisterBenchmark("BM_ExtendSteady/B", BM_ExtendSteady,
                                 "B-yeast");
    benchmark::Initialize(&bench_argc, passthrough.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
