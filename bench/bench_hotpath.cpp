/**
 * @file
 * Hot-path benchmark harness (perf trajectory anchor).  Measures the
 * seed-and-extend kernel the paper identifies as memory-bound: single-thread
 * mapping throughput (reads/sec), heap bytes allocated per read and per
 * steady-state extension (via a global operator-new counter), and the
 * CachedGBWT hit rate, on input-set analogs A and B.  Emits
 * `BENCH_hotpath.json` so every future PR can compare against a recorded
 * baseline.
 *
 * Modes:
 *   bench_hotpath [--scale=S] [--out=PATH] [--baseline=PATH] [gbench
 *       flags]                                              full run + JSON
 *   bench_hotpath --smoke [--scale=S]                       quick CTest run
 *   bench_hotpath --guard=PATH                              perf-guard run
 *
 * The smoke mode (CTest label `perf-smoke`) enforces machine-independent
 * invariants of the optimized kernel — zero heap allocations in the
 * steady-state extend loop and a sane cache hit rate — and runs one quick
 * throughput repetition so gross (>20%) kernel regressions surface in CI
 * timing logs.
 *
 * The guard mode (also perf-smoke) protects the vectorized engine: the
 * committed BENCH record must show the >=1.15x extends/sec gain over the
 * BENCH_packed.json baseline on both input-set analogs (checked as
 * committed numbers, the acceptance criterion of the SIMD PR), and the
 * SIMD-vs-scalar throughput ratio is re-measured in-process (machine
 * speed cancels) and must stay within 15% of the committed ratio.
 *
 * The obs-guard mode (bench_hotpath --guard-obs=PATH, ctest
 * perf_guard_obs) protects the telemetry layer's "pay only a pointer
 * test" promise: it times the mapping kernel with live metrics off and on
 * (same process, A and B analogs) and fails if metrics cost more than 2%
 * of throughput.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "common.h"
#include "io/file.h"
#include "machine/host.h"
#include "obs/hub.h"
#include "obs/json.h"
#include "stats/latency.h"
#include "util/simd.h"
#include "util/timer.h"

// ------------------------------------------------------------------------
// Global allocation counter: every operator new/delete in the process is
// counted, so a delta around a measured region gives exact heap traffic.

namespace {

std::atomic<uint64_t> g_alloc_bytes{0};
std::atomic<uint64_t> g_alloc_calls{0};

struct AllocSnapshot
{
    uint64_t bytes = 0;
    uint64_t calls = 0;
};

AllocSnapshot
allocNow()
{
    return {g_alloc_bytes.load(std::memory_order_relaxed),
            g_alloc_calls.load(std::memory_order_relaxed)};
}

AllocSnapshot
allocDelta(const AllocSnapshot& since)
{
    AllocSnapshot now = allocNow();
    return {now.bytes - since.bytes, now.calls - since.calls};
}

void*
countedAlloc(std::size_t size)
{
    g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
    g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) {
        return p;
    }
    throw std::bad_alloc();
}

} // namespace

void* operator new(std::size_t size) { return countedAlloc(size); }
void* operator new[](std::size_t size) { return countedAlloc(size); }
void*
operator new(std::size_t size, const std::nothrow_t&) noexcept
{
    g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
    g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size);
}
void*
operator new[](std::size_t size, const std::nothrow_t&) noexcept
{
    g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
    g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void
operator delete(void* p, const std::nothrow_t&) noexcept
{
    std::free(p);
}
void
operator delete[](void* p, const std::nothrow_t&) noexcept
{
    std::free(p);
}

// ------------------------------------------------------------------------

namespace mg::bench {
namespace {

double g_scale = 0.1;

/** One prepared workload: world + seed capture, built once per input set. */
struct Workload
{
    std::unique_ptr<World> world;
    io::SeedCapture capture;
};

const Workload&
workload(const std::string& input_set)
{
    static std::vector<std::pair<std::string, Workload>> cache;
    for (const auto& [name, wl] : cache) {
        if (name == input_set) {
            return wl;
        }
    }
    Workload wl;
    wl.world = buildWorld(input_set, g_scale);
    wl.capture =
        wl.world->parent().capturePreprocessing(wl.world->set.reads);
    cache.emplace_back(input_set, std::move(wl));
    return cache.back().second;
}

/** Result of one measured mapping pass over a whole capture. */
struct PassResult
{
    double readsPerSec = 0.0;
    double bytesPerRead = 0.0;
    double allocsPerRead = 0.0;
    double hitRate = 0.0;
    /** Per-read latency tail (nanoseconds), from the mapper's histogram. */
    double p50Nanos = 0.0;
    double p99Nanos = 0.0;
    double p999Nanos = 0.0;
};

/**
 * Map every read in the capture `reps` times with one reused MapperState
 * (warm-up pass excluded from both the clock and the allocation counter).
 * When `hub` is set the measured loop runs with live metrics attached —
 * per-read funnel increments plus one flush per pass, the same cadence a
 * batch scheduler produces — so the obs guard can price the telemetry.
 *
 * When `trace_every` is N > 0, one read in N maps with a StageAccumulator
 * bound (the per-request span context a traced daemon request carries;
 * untraced reads pay the same null pointer test the daemon's do) — so the
 * trace guard can price request tracing at a head-sampling rate.
 */
PassResult
measureMapping(const Workload& wl, int reps,
               util::KernelVariant kernel = util::KernelVariant::Auto,
               bool lockstep = true, obs::Hub* hub = nullptr,
               int trace_every = 0)
{
    map::MapperParams params;
    params.extend.kernel = kernel;
    params.extend.lockstep = lockstep;
    map::Mapper mapper(wl.world->graph(), wl.world->gbwt(),
                       wl.world->minimizers, wl.world->distance, params);
    auto state = mapper.makeState();
    const auto& entries = wl.capture.entries;
    // Warm-up: touches every read once so caches/scratch reach capacity.
    for (const auto& entry : entries) {
        mapper.mapFromSeeds(entry.read, entry.seeds, *state);
    }
    if (hub != nullptr) { // bind after warm-up: measure steady state only
        state->metrics = hub->slab(0);
        state->metricIds = &hub->map();
    }
    const gbwt::CacheStats warm = state->totalStats();
    state->resilience.latency.clear(); // drop warm-up samples
    obs::StageAccumulator trace_accum;
    size_t read_index = 0;
    AllocSnapshot before = allocNow();
    util::WallTimer timer;
    for (int rep = 0; rep < reps; ++rep) {
        for (const auto& entry : entries) {
            if (trace_every > 0) {
                state->stageTrace =
                    read_index % static_cast<size_t>(trace_every) == 0
                        ? &trace_accum
                        : nullptr;
                ++read_index;
            }
            benchmark::DoNotOptimize(
                mapper.mapFromSeeds(entry.read, entry.seeds, *state));
        }
        if (hub != nullptr) {
            state->flushMetrics();
        }
    }
    state->stageTrace = nullptr;
    double seconds = timer.seconds();
    AllocSnapshot delta = allocDelta(before);
    const gbwt::CacheStats total = state->totalStats();

    PassResult out;
    double reads =
        static_cast<double>(entries.size()) * static_cast<double>(reps);
    out.readsPerSec = reads / seconds;
    out.bytesPerRead = static_cast<double>(delta.bytes) / reads;
    out.allocsPerRead = static_cast<double>(delta.calls) / reads;
    uint64_t lookups = total.lookups - warm.lookups;
    uint64_t hits = total.hits - warm.hits;
    out.hitRate = lookups == 0
        ? 0.0
        : static_cast<double>(hits) / static_cast<double>(lookups);
    const stats::LatencyHistogram& latency = state->resilience.latency;
    out.p50Nanos = latency.p50();
    out.p99Nanos = latency.p99();
    out.p999Nanos = latency.p999();
    return out;
}

/**
 * The steady-state extend loop in isolation: repeatedly extend a fixed
 * sample of seeds with a warm cache.  The optimized kernel must allocate
 * nothing here (the acceptance criterion of the hot-path overhaul).
 */
struct ExtendSample
{
    const io::ReadWithSeeds* entry = nullptr;
    size_t seedIndex = 0;
    std::string oriented; // the orientation the seed was found on
};

std::vector<ExtendSample>
pickExtendSamples(const Workload& wl, size_t max_samples)
{
    std::vector<ExtendSample> samples;
    for (const auto& entry : wl.capture.entries) {
        if (samples.size() >= max_samples) {
            break;
        }
        for (size_t s = 0; s < entry.seeds.size(); ++s) {
            if (samples.size() >= max_samples) {
                break;
            }
            ExtendSample sample;
            sample.entry = &entry;
            sample.seedIndex = s;
            sample.oriented = entry.seeds[s].onReverseRead
                ? util::reverseComplement(entry.read.sequence)
                : entry.read.sequence;
            samples.push_back(std::move(sample));
        }
    }
    return samples;
}

struct ExtendResult
{
    double extendsPerSec = 0.0;
    double bytesPerExtend = 0.0;
    double allocsPerExtend = 0.0;
    /** 32-base chunks examined per extension (0 in scalar mode). */
    double wordsPerExtend = 0.0;
};

ExtendResult
measureExtend(const Workload& wl, int reps,
              util::KernelVariant kernel = util::KernelVariant::Auto)
{
    map::ExtendParams params = map::MapperParams().extend;
    params.kernel = kernel;
    map::Extender extender(wl.world->graph(), params);
    gbwt::CachedGbwt cache(wl.world->gbwt());
    map::ExtendScratch scratch;
    std::vector<ExtendSample> samples = pickExtendSamples(wl, 256);
    MG_ASSERT(!samples.empty());
    // Warm-up: every sample extended once (cache fills, scratch spills).
    for (const ExtendSample& sample : samples) {
        extender.extendSeed(sample.entry->seeds[sample.seedIndex],
                            sample.oriented, cache, scratch);
    }
    scratch.wordsCompared = 0;
    AllocSnapshot before = allocNow();
    util::WallTimer timer;
    for (int rep = 0; rep < reps; ++rep) {
        for (const ExtendSample& sample : samples) {
            benchmark::DoNotOptimize(extender.extendSeed(
                sample.entry->seeds[sample.seedIndex], sample.oriented,
                cache, scratch));
        }
    }
    double seconds = timer.seconds();
    AllocSnapshot delta = allocDelta(before);
    double extends =
        static_cast<double>(samples.size()) * static_cast<double>(reps);
    ExtendResult out;
    out.extendsPerSec = extends / seconds;
    out.bytesPerExtend = static_cast<double>(delta.bytes) / extends;
    out.allocsPerExtend = static_cast<double>(delta.calls) / extends;
    out.wordsPerExtend = static_cast<double>(scratch.wordsCompared) / extends;
    return out;
}

// ------------------------------------------------------------------ gbench

void
BM_MapFromSeeds(benchmark::State& state, const char* input_set)
{
    const Workload& wl = workload(input_set);
    map::Mapper mapper(wl.world->graph(), wl.world->gbwt(),
                       wl.world->minimizers, wl.world->distance,
                       map::MapperParams());
    auto mapper_state = mapper.makeState();
    const auto& entries = wl.capture.entries;
    size_t i = 0;
    for (const auto& entry : entries) { // warm-up
        mapper.mapFromSeeds(entry.read, entry.seeds, *mapper_state);
    }
    AllocSnapshot before = allocNow();
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapper.mapFromSeeds(
            entries[i].read, entries[i].seeds, *mapper_state));
        i = (i + 1) % entries.size();
    }
    AllocSnapshot delta = allocDelta(before);
    state.SetItemsProcessed(state.iterations());
    state.counters["bytes_per_read"] = benchmark::Counter(
        static_cast<double>(delta.bytes) /
        static_cast<double>(state.iterations()));
    state.counters["hit_rate"] =
        benchmark::Counter(mapper_state->totalStats().hitRate());
}

void
BM_ExtendSteady(benchmark::State& state, const char* input_set)
{
    const Workload& wl = workload(input_set);
    map::Extender extender(wl.world->graph(),
                           map::MapperParams().extend);
    gbwt::CachedGbwt cache(wl.world->gbwt());
    std::vector<ExtendSample> samples = pickExtendSamples(wl, 256);
    for (const ExtendSample& sample : samples) { // warm-up
        extender.extendSeed(sample.entry->seeds[sample.seedIndex],
                            sample.oriented, cache);
    }
    size_t i = 0;
    AllocSnapshot before = allocNow();
    for (auto _ : state) {
        const ExtendSample& sample = samples[i];
        benchmark::DoNotOptimize(extender.extendSeed(
            sample.entry->seeds[sample.seedIndex], sample.oriented,
            cache));
        i = (i + 1) % samples.size();
    }
    AllocSnapshot delta = allocDelta(before);
    state.SetItemsProcessed(state.iterations());
    state.counters["bytes_per_extend"] = benchmark::Counter(
        static_cast<double>(delta.bytes) /
        static_cast<double>(state.iterations()));
}

// --------------------------------------------------------------- reporting

/** Everything measured on one input set: the production configuration
 *  (Auto kernel, lockstep batching) plus the ladder of baselines the
 *  guard ratios are built from. */
struct InputRecord
{
    PassResult map;          // Auto kernel, lockstep batching
    PassResult mapSeq;       // Auto kernel, sequential walks
    PassResult mapScalar;    // Scalar kernel, lockstep
    ExtendResult ext;        // Auto (the dispatched SIMD kernel)
    ExtendResult extSwar;    // forced SWAR
    ExtendResult extScalar;  // forced scalar oracle

    double
    mapSpeedup() const
    {
        return mapScalar.readsPerSec > 0.0
                   ? map.readsPerSec / mapScalar.readsPerSec
                   : 0.0;
    }
    double
    batchSpeedup() const
    {
        return mapSeq.readsPerSec > 0.0
                   ? map.readsPerSec / mapSeq.readsPerSec
                   : 0.0;
    }
    double
    extendSpeedup() const
    {
        return extScalar.extendsPerSec > 0.0
                   ? ext.extendsPerSec / extScalar.extendsPerSec
                   : 0.0;
    }
    double
    swarExtendSpeedup() const
    {
        return extScalar.extendsPerSec > 0.0
                   ? extSwar.extendsPerSec / extScalar.extendsPerSec
                   : 0.0;
    }
};

/** Packed-arena footprint of one world's graph. */
void
emitArenaJson(obs::JsonWriter& w, const graph::VariationGraph& g,
              const char* name)
{
    const graph::SequenceStore& store = g.sequenceStore();
    size_t stored = 2 * store.totalBases();
    // The pre-packing layout held both strands as one byte per base.
    double reduction =
        store.arenaBytes()
            ? static_cast<double>(stored) /
                  static_cast<double>(store.arenaBytes())
            : 0.0;
    w.key(name).beginObject();
    w.field("resident_bytes", static_cast<uint64_t>(store.footprintBytes()));
    w.field("arena_bytes", static_cast<uint64_t>(store.arenaBytes()));
    w.field("offset_table_bytes",
            static_cast<uint64_t>(store.offsetTableBytes()));
    w.field("reserved_bytes", static_cast<uint64_t>(store.reservedBytes()));
    w.field("bits_per_stored_base",
            stored ? 8.0 * static_cast<double>(store.arenaBytes()) /
                         static_cast<double>(stored)
                   : 0.0);
    w.field("byte_arena_reduction", reduction);
    w.field("sanitized_bases",
            static_cast<uint64_t>(store.sanitizedBases()));
    w.endObject();
}

/**
 * extends_per_sec for one analog from a committed BENCH JSON, or < 0
 * when the file or field is missing.
 */
double
baselineExtendsPerSec(const std::string& path, const char* analog)
{
    try {
        std::string text = io::readFileText(path);
        obs::json::Value doc = obs::json::parse(text, path);
        const obs::json::Value* results = doc.find("results");
        const obs::json::Value* entry =
            results != nullptr ? results->find(analog) : nullptr;
        const obs::json::Value* value =
            entry != nullptr ? entry->find("extends_per_sec") : nullptr;
        return value != nullptr && value->isNumber() ? value->number : -1.0;
    } catch (const util::Error&) {
        return -1.0;
    }
}

void
writeJson(const std::string& path, const std::string& baseline_path,
          const InputRecord& a, const InputRecord& b)
{
    obs::JsonWriter w;
    auto emit = [&](const char* name, const InputRecord& r) {
        w.key(name).beginObject();
        w.field("reads_per_sec", r.map.readsPerSec);
        w.field("bytes_per_read", r.map.bytesPerRead);
        w.field("allocs_per_read", r.map.allocsPerRead);
        w.field("cache_hit_rate", r.map.hitRate);
        w.field("extends_per_sec", r.ext.extendsPerSec);
        w.field("bytes_per_extend", r.ext.bytesPerExtend);
        w.field("allocs_per_extend", r.ext.allocsPerExtend);
        w.field("words_per_extend", r.ext.wordsPerExtend);
        w.field("read_latency_p50_ns", r.map.p50Nanos);
        w.field("read_latency_p99_ns", r.map.p99Nanos);
        w.field("read_latency_p999_ns", r.map.p999Nanos);
        w.field("sequential_reads_per_sec", r.mapSeq.readsPerSec);
        w.field("scalar_reads_per_sec", r.mapScalar.readsPerSec);
        w.field("swar_extends_per_sec", r.extSwar.extendsPerSec);
        w.field("scalar_extends_per_sec", r.extScalar.extendsPerSec);
        w.endObject();
    };
    w.beginObject();
    w.field("benchmark", "bench_hotpath");
    w.field("scale", g_scale);
    const machine::HostCpu& host = machine::hostCpu();
    w.key("cpu").beginObject();
    w.field("arch", host.arch);
    w.field("features", host.features);
    w.field("simd", util::simdLevelName(host.bestLevel));
    w.endObject();
    const util::ResolvedKernel kernel =
        util::resolveKernel(util::KernelVariant::Auto);
    w.field("kernel", util::kernelVariantName(kernel.effective));
    w.key("results").beginObject();
    emit("A-human", a);
    emit("B-yeast", b);
    w.endObject();
    w.key("packed_arena").beginObject();
    emitArenaJson(w, workload("A-human").world->graph(), "A-human");
    emitArenaJson(w, workload("B-yeast").world->graph(), "B-yeast");
    w.endObject();
    // The guard section: in-process kernel ratios (machine speed cancels),
    // the quantities the perf_guard ctest re-measures, plus the gain over
    // the committed SWAR-era record when a baseline is given.
    w.key("guard").beginObject();
    w.field("simd_map_speedup_A", a.mapSpeedup());
    w.field("simd_extend_speedup_A", a.extendSpeedup());
    w.field("simd_map_speedup_B", b.mapSpeedup());
    w.field("simd_extend_speedup_B", b.extendSpeedup());
    w.field("swar_extend_speedup_A", a.swarExtendSpeedup());
    w.field("swar_extend_speedup_B", b.swarExtendSpeedup());
    w.field("batch_map_speedup_A", a.batchSpeedup());
    w.field("batch_map_speedup_B", b.batchSpeedup());
    if (!baseline_path.empty()) {
        double base_a = baselineExtendsPerSec(baseline_path, "A-human");
        double base_b = baselineExtendsPerSec(baseline_path, "B-yeast");
        if (base_a > 0.0 && base_b > 0.0) {
            w.field("speedup_vs_packed_A", a.ext.extendsPerSec / base_a);
            w.field("speedup_vs_packed_B", b.ext.extendsPerSec / base_b);
        } else {
            std::fprintf(stderr,
                         "bench_hotpath: baseline %s unreadable; "
                         "speedup_vs_packed omitted\n",
                         baseline_path.c_str());
        }
    }
    w.endObject();
    w.endObject();
    try {
        w.writeFile(path);
    } catch (const util::Error& e) {
        std::fprintf(stderr, "bench_hotpath: %s\n", e.what());
        return;
    }
    std::printf("wrote %s\n", path.c_str());
}

// ------------------------------------------------------------------- guard

/** Minimal scan for `"key": <number>` in a JSON text; < 0 if absent. */
double
jsonNumber(const std::string& text, const std::string& key)
{
    size_t at = text.find("\"" + key + "\"");
    if (at == std::string::npos) {
        return -1.0;
    }
    at = text.find(':', at);
    if (at == std::string::npos) {
        return -1.0;
    }
    return std::atof(text.c_str() + at + 1);
}

/**
 * Perf guard for the vectorized engine, two checks:
 *
 *  1. The committed record must contain speedup_vs_packed_{A,B} >= 1.15 —
 *     the acceptance criterion of the SIMD PR, frozen at record time when
 *     both the new engine and the SWAR-era baseline numbers came from the
 *     same machine.
 *  2. The SIMD-vs-scalar extend speedup on the A analog is re-measured
 *     (best of three in-process A/B passes, so machine speed and load
 *     cancel) and must stay within 15% of the committed ratio.
 */
int
guardRun(const std::string& committed_path)
{
    std::string text;
    try {
        text = io::readFileText(committed_path);
    } catch (const util::Error& e) {
        std::fprintf(stderr, "FAIL: cannot read committed record %s: %s\n",
                     committed_path.c_str(), e.what());
        return 1;
    }
    int failures = 0;
    for (const char* key : { "speedup_vs_packed_A", "speedup_vs_packed_B" }) {
        double gain = jsonNumber(text, key);
        if (gain <= 0.0) {
            std::fprintf(stderr, "FAIL: %s has no %s entry\n",
                         committed_path.c_str(), key);
            ++failures;
            continue;
        }
        std::printf("perf-guard: committed %s = %.3f (floor 1.15)\n", key,
                    gain);
        if (gain < 1.15) {
            std::fprintf(stderr,
                         "FAIL: committed %s %.3f misses the 1.15x "
                         "extends/sec target over BENCH_packed.json\n",
                         key, gain);
            ++failures;
        }
    }
    double committed = jsonNumber(text, "simd_extend_speedup_A");
    if (committed <= 0.0) {
        std::fprintf(stderr,
                     "FAIL: %s has no simd_extend_speedup_A entry\n",
                     committed_path.c_str());
        return 1;
    }
    const Workload& wl = workload("A-human");
    double best = 0.0;
    for (int attempt = 0; attempt < 3; ++attempt) {
        ExtendResult simd =
            measureExtend(wl, 4, util::KernelVariant::Auto);
        ExtendResult scalar =
            measureExtend(wl, 4, util::KernelVariant::Scalar);
        if (scalar.extendsPerSec > 0.0) {
            best = std::max(best, simd.extendsPerSec /
                                      scalar.extendsPerSec);
        }
    }
    const double threshold = 0.85 * committed;
    std::printf("perf-guard A-human: simd/scalar extend speedup %.3f "
                "(committed %.3f, floor %.3f)\n",
                best, committed, threshold);
    if (best < threshold) {
        std::fprintf(stderr,
                     "FAIL: SIMD extend speedup regressed >15%% below the "
                     "committed record (%.3f < %.3f)\n",
                     best, threshold);
        ++failures;
    }
    return failures == 0 ? 0 : 1;
}

/**
 * Obs guard: price the live-metrics layer.  Per input set, time the
 * mapping kernel with metrics off and on in the same process (best of
 * up to five interleaved attempts, so machine speed and drift cancel) and
 * fail if the on/off throughput ratio drops below 0.98 — the telemetry
 * layer promises a pointer test plus ~20 buffered increments per read,
 * which must stay under 2%.  The committed BENCH record is read for a
 * context line only; the verdict is machine-independent.
 */
int
guardObsRun(const std::string& committed_path)
{
    try {
        std::string text = io::readFileText(committed_path);
        double committed = jsonNumber(text, "reads_per_sec");
        if (committed > 0.0) {
            std::printf("perf-guard-obs: committed record %s "
                        "(%.0f reads/s at record time)\n",
                        committed_path.c_str(), committed);
        }
    } catch (const util::Error& e) {
        std::printf("perf-guard-obs: no committed record (%s)\n",
                    e.what());
    }
    int failures = 0;
    for (const char* input_set : { "A-human", "B-yeast" }) {
        const Workload& wl = workload(input_set);
        double best = 0.0;
        for (int attempt = 0; attempt < 5 && best < 0.98; ++attempt) {
            obs::Hub hub(1);
            PassResult off = measureMapping(wl, 2);
            PassResult on = measureMapping(
                wl, 2, util::KernelVariant::Auto, true, &hub);
            if (off.readsPerSec > 0.0) {
                best = std::max(best, on.readsPerSec / off.readsPerSec);
            }
        }
        std::printf("perf-guard-obs %s: metrics-on/off throughput ratio "
                    "%.4f (floor 0.98)\n",
                    input_set, best);
        if (best < 0.98) {
            std::fprintf(stderr,
                         "FAIL: live metrics cost >2%% of mapping "
                         "throughput on %s (ratio %.4f)\n",
                         input_set, best);
            ++failures;
        }
    }
    return failures == 0 ? 0 : 1;
}

/**
 * Trace guard: price end-to-end request tracing at a realistic
 * head-sampling rate.  Per input set, time the mapping kernel with
 * tracing off and with one read in 100 carrying a StageAccumulator
 * (best of up to five interleaved attempts) and fail if the on/off
 * throughput ratio drops below 0.98 — tracing promises "a null pointer
 * test per untraced read, two clock reads per stage on traced ones",
 * which at 1%% sampling must be noise.  The committed BENCH record is
 * read for a context line only; the verdict is machine-independent.
 */
int
guardTraceRun(const std::string& committed_path)
{
    try {
        std::string text = io::readFileText(committed_path);
        double committed = jsonNumber(text, "reads_per_sec");
        if (committed > 0.0) {
            std::printf("perf-guard-trace: committed record %s "
                        "(%.0f reads/s at record time)\n",
                        committed_path.c_str(), committed);
        }
    } catch (const util::Error& e) {
        std::printf("perf-guard-trace: no committed record (%s)\n",
                    e.what());
    }
    int failures = 0;
    for (const char* input_set : { "A-human", "B-yeast" }) {
        const Workload& wl = workload(input_set);
        double best = 0.0;
        double best_full = 0.0;
        for (int attempt = 0; attempt < 5 && best < 0.98; ++attempt) {
            PassResult off = measureMapping(wl, 2);
            PassResult sampled = measureMapping(
                wl, 2, util::KernelVariant::Auto, true, nullptr, 100);
            PassResult full = measureMapping(
                wl, 2, util::KernelVariant::Auto, true, nullptr, 1);
            if (off.readsPerSec > 0.0) {
                best =
                    std::max(best, sampled.readsPerSec / off.readsPerSec);
                best_full =
                    std::max(best_full, full.readsPerSec / off.readsPerSec);
            }
        }
        std::printf("perf-guard-trace %s: 1%%-sampled/off throughput "
                    "ratio %.4f (floor 0.98); every-read ratio %.4f "
                    "(context)\n",
                    input_set, best, best_full);
        if (best < 0.98) {
            std::fprintf(stderr,
                         "FAIL: request tracing at 1%% sampling costs "
                         ">2%% of mapping throughput on %s (ratio %.4f)\n",
                         input_set, best);
            ++failures;
        }
    }
    return failures == 0 ? 0 : 1;
}

int
smokeRun()
{
    // One quick repetition on the A analog: fast enough for CTest, long
    // enough that a >20% kernel regression is visible in the logged
    // reads/sec, with hard failures only on machine-independent invariants.
    const Workload& wl = workload("A-human");
    PassResult map_a = measureMapping(wl, 1);
    ExtendResult ext_a = measureExtend(wl, 4);
    std::printf("perf-smoke A-human: %.0f reads/s, %.1f B/read, "
                "hit %.3f, extend %.0f/s, %.1f B/extend\n",
                map_a.readsPerSec, map_a.bytesPerRead, map_a.hitRate,
                ext_a.extendsPerSec, ext_a.bytesPerExtend);
    std::printf("perf-smoke A-human latency: p50 %s, p99 %s, p999 %s\n",
                stats::formatNanos(map_a.p50Nanos).c_str(),
                stats::formatNanos(map_a.p99Nanos).c_str(),
                stats::formatNanos(map_a.p999Nanos).c_str());
    int failures = 0;
    if (ext_a.bytesPerExtend != 0.0 || ext_a.allocsPerExtend != 0.0) {
        std::fprintf(stderr,
                     "FAIL: steady-state extend loop allocates "
                     "(%.1f bytes, %.2f allocs per extend); the kernel "
                     "must be allocation-free\n",
                     ext_a.bytesPerExtend, ext_a.allocsPerExtend);
        ++failures;
    }
    if (map_a.hitRate < 0.5) {
        std::fprintf(stderr,
                     "FAIL: CachedGBWT hit rate %.3f < 0.5; the per-read "
                     "cache reset is losing its entries\n",
                     map_a.hitRate);
        ++failures;
    }
    return failures == 0 ? 0 : 1;
}

} // namespace
} // namespace mg::bench

int
main(int argc, char** argv)
{
    using namespace mg::bench;
    bool smoke = false;
    std::string out_path = "BENCH_hotpath.json";
    std::string baseline_path;
    std::string guard_path;
    std::string guard_obs_path;
    std::string guard_trace_path;
    std::vector<char*> passthrough;
    passthrough.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strncmp(argv[i], "--guard=", 8) == 0) {
            guard_path = argv[i] + 8;
        } else if (std::strncmp(argv[i], "--guard-obs=", 12) == 0) {
            guard_obs_path = argv[i] + 12;
        } else if (std::strncmp(argv[i], "--guard-trace=", 14) == 0) {
            guard_trace_path = argv[i] + 14;
        } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
            g_scale = std::atof(argv[i] + 8);
        } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
            out_path = argv[i] + 6;
        } else if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
            baseline_path = argv[i] + 11;
        } else {
            passthrough.push_back(argv[i]);
        }
    }
    if (smoke || !guard_path.empty() || !guard_obs_path.empty() ||
        !guard_trace_path.empty()) {
        if (g_scale > 0.05) {
            g_scale = 0.05; // keep CTest fast regardless of the default
        }
        if (!guard_path.empty()) {
            return guardRun(guard_path);
        }
        if (!guard_obs_path.empty()) {
            return guardObsRun(guard_obs_path);
        }
        if (!guard_trace_path.empty()) {
            return guardTraceRun(guard_trace_path);
        }
        return smokeRun();
    }

    banner("hotpath", "Hot-path kernel throughput, allocation, and cache "
                      "behaviour (single thread)");
    std::printf("cpu: %s %s (dispatch: %s)\n",
                mg::machine::hostCpu().arch.c_str(),
                mg::machine::hostCpu().features.c_str(),
                mg::util::kernelVariantName(
                    mg::util::resolveKernel(mg::util::KernelVariant::Auto)
                        .effective));

    // Deterministic measurement passes for the JSON record: the dispatched
    // kernel and its SWAR/scalar baselines back to back, same workload,
    // same process.
    auto record = [](const Workload& wl) {
        using mg::util::KernelVariant;
        InputRecord r;
        r.map = measureMapping(wl, 3, KernelVariant::Auto, true);
        r.mapSeq = measureMapping(wl, 3, KernelVariant::Auto, false);
        r.mapScalar = measureMapping(wl, 3, KernelVariant::Scalar, true);
        r.ext = measureExtend(wl, 20, KernelVariant::Auto);
        r.extSwar = measureExtend(wl, 20, KernelVariant::Swar);
        r.extScalar = measureExtend(wl, 20, KernelVariant::Scalar);
        return r;
    };
    auto report = [](const char* name, const InputRecord& r) {
        std::printf(
            "%s: %10.0f reads/s  %8.1f B/read  %6.2f allocs/read"
            "  hit %.4f\n         %10.0f ext/s    %8.1f B/extend  "
            "%6.2f words/ext\n         read latency: p50 %s, p99 %s, "
            "p999 %s\n         vs scalar: map %.2fx, extend %.2fx  "
            "(swar %.2fx)  batch: %.2fx\n",
            name, r.map.readsPerSec, r.map.bytesPerRead,
            r.map.allocsPerRead, r.map.hitRate, r.ext.extendsPerSec,
            r.ext.bytesPerExtend, r.ext.wordsPerExtend,
            mg::stats::formatNanos(r.map.p50Nanos).c_str(),
            mg::stats::formatNanos(r.map.p99Nanos).c_str(),
            mg::stats::formatNanos(r.map.p999Nanos).c_str(),
            r.mapSpeedup(), r.extendSpeedup(), r.swarExtendSpeedup(),
            r.batchSpeedup());
    };
    InputRecord rec_a = record(workload("A-human"));
    InputRecord rec_b = record(workload("B-yeast"));
    report("A-human", rec_a);
    report("B-yeast", rec_b);
    writeJson(out_path, baseline_path, rec_a, rec_b);

    // Google-benchmark pass (iteration-level timing, same kernels).
    int bench_argc = static_cast<int>(passthrough.size());
    benchmark::RegisterBenchmark("BM_MapFromSeeds/A", BM_MapFromSeeds,
                                 "A-human");
    benchmark::RegisterBenchmark("BM_MapFromSeeds/B", BM_MapFromSeeds,
                                 "B-yeast");
    benchmark::RegisterBenchmark("BM_ExtendSteady/A", BM_ExtendSteady,
                                 "A-human");
    benchmark::RegisterBenchmark("BM_ExtendSteady/B", BM_ExtendSteady,
                                 "B-yeast");
    benchmark::Initialize(&bench_argc, passthrough.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
