/**
 * @file
 * Startup microbenchmark for the MGZ v3 zero-copy substrate.
 *
 * Measures, per input-set analog, the three costs the substrate exists to
 * change: (1) heap-parsing a v2 container (decode + GBWT rebuild +
 * minimizer/distance construction) vs (2) mmap-binding a v3 container
 * (map + pointer fixup), plus (3) the steady-state mapping throughput on
 * each, which must not regress — the mapped arenas are the same bytes the
 * heap path would have built.  Also sweeps the parallel index builders
 * (GBWT batches + minimizer shards over the work-stealing scheduler)
 * against the serial build.
 *
 *   bench_startup [--scale=S] [--json=PATH]       record BENCH_mmap.json
 *   bench_startup --guard=PATH                    perf-guard run (CTest)
 *
 * The guard re-measures in-process ratios (machine speed cancels):
 *   - v3 mmap load must be >= 10x faster than the v2 parse on A-human;
 *   - mapped-mode mapping throughput >= 0.95x parsed-mode;
 *   - parallel index build >= 2x serial at 8 threads (only asserted when
 *     the machine actually has >= 8 hardware threads; CI runners with one
 *     core record the numbers but skip the assertion).
 */
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "gbwt/gbwt.h"
#include "index/minimizer.h"
#include "io/file.h"
#include "io/mgz.h"
#include "obs/json.h"
#include "util/timer.h"

namespace mg::bench {
namespace {

std::string
containerPath(const std::string& input_set, const char* ext)
{
    return "/tmp/mg_bench_startup_" + input_set + ext;
}

/** Everything measured for one input-set analog. */
struct StartupRow
{
    std::string inputSet;
    uint64_t v2Bytes = 0;
    uint64_t v3Bytes = 0;
    double parseSeconds = 0.0;     // v2: decode + index builds
    double mmapFirstSeconds = 0.0; // v3: first map after writing
    double mmapWarmSeconds = 0.0;  // v3: best of warm re-maps
    double mmapSpeedup = 0.0;      // parseSeconds / mmapWarmSeconds
    double parsedReadsPerSec = 0.0;
    double mappedReadsPerSec = 0.0;
    double throughputRatio = 0.0; // mapped / parsed
    /** First mapping query after a fresh v3 bind: with the one-shot
     *  MADV_WILLNEED prefetch of the minimizer tables vs without. */
    double firstQueryPrefetchSeconds = 0.0;
    double firstQueryNoPrefetchSeconds = 0.0;
    double serialBuildSeconds = 0.0;
    double parallelBuildSeconds = 0.0; // at min(8, hardware) threads
    unsigned parallelThreads = 1;
    double buildSpeedup = 0.0;
};

double
readsPerSec(const io::IndexedPangenome& pg, const map::ReadSet& reads)
{
    giraffe::ParentEmulator parent(pg.graph, pg.gbwt, pg.minimizers,
                                   pg.distance, giraffe::ParentParams());
    // One warmup pass (faults v3 pages in, fills allocator caches), then
    // two timed passes; the caller interleaves calls and keeps the best.
    parent.run(reads);
    double best_seconds = 1e9;
    for (int rep = 0; rep < 2; ++rep) {
        util::WallTimer timer;
        giraffe::ParentOutputs outputs = parent.run(reads);
        best_seconds = std::min(
            best_seconds, std::max(outputs.wallSeconds, timer.seconds()));
    }
    return static_cast<double>(reads.reads.size()) / best_seconds;
}

/**
 * Bind the v3 container fresh and time ONE small mapping batch — the
 * first-query latency a daemon pays right after startup or a hot swap.
 * The prefetch flag toggles the one-shot MADV_WILLNEED on the minimizer
 * bucket/key tables that the first findSeeds otherwise faults in page by
 * page.  Best of 3 binds (each bind gets exactly one first query).
 */
double
firstQuerySeconds(const std::string& v3, bool prefetch,
                  const map::ReadSet& reads)
{
    map::ReadSet batch;
    const size_t count = std::min<size_t>(32, reads.reads.size());
    batch.reads.assign(reads.reads.begin(),
                       reads.reads.begin() +
                           static_cast<std::ptrdiff_t>(count));
    double best = 1e9;
    for (int rep = 0; rep < 3; ++rep) {
        io::LoadOptions options;
        options.prefetchFirstQuery = prefetch;
        io::IndexedPangenome pg = io::loadPangenome(v3, options);
        giraffe::ParentEmulator parent(pg.graph, pg.gbwt, pg.minimizers,
                                       pg.distance,
                                       giraffe::ParentParams());
        util::WallTimer timer;
        parent.run(batch);
        best = std::min(best, timer.seconds());
    }
    return best;
}

double
buildIndexesOnce(const graph::VariationGraph& graph, unsigned threads)
{
    util::WallTimer timer;
    gbwt::GbwtBuilder builder;
    for (const graph::PathEntry& path : graph.paths()) {
        builder.addPath(path.steps);
    }
    gbwt::Gbwt gbwt = std::move(builder).build(threads);
    index::MinimizerParams mparams;
    mparams.k = 15;
    mparams.w = 8;
    mparams.buildThreads = threads;
    index::MinimizerIndex minimizers(graph, mparams);
    double seconds = timer.seconds();
    // Keep the results observable so the builds cannot be elided.
    if (gbwt.numPaths() == 0 && minimizers.numKeys() == 0) {
        std::printf("(empty index)\n");
    }
    return seconds;
}

StartupRow
measure(const std::string& input_set, double scale)
{
    StartupRow row;
    row.inputSet = input_set;

    std::unique_ptr<World> world = buildWorld(input_set, scale);
    const std::string v2 = containerPath(input_set, ".mgz");
    const std::string v3 = containerPath(input_set, ".mgz3");
    io::saveMgz(v2, world->graph(), world->gbwt());
    io::saveMgz3(v3, world->graph(), world->gbwt(), world->minimizers,
                 world->distance);
    row.v2Bytes = io::readFileBytes(v2).size();
    row.v3Bytes = io::readFileBytes(v3).size();

    // v2 parse: best of 2 (both page-cache warm; the parse dominates).
    row.parseSeconds = 1e9;
    for (int rep = 0; rep < 2; ++rep) {
        util::WallTimer timer;
        io::IndexedPangenome pg = io::loadPangenome(v2);
        row.parseSeconds = std::min(row.parseSeconds, timer.seconds());
    }

    // v3 map: first bind, then best of 5 warm binds.
    {
        util::WallTimer timer;
        io::IndexedPangenome pg = io::loadPangenome(v3);
        row.mmapFirstSeconds = timer.seconds();
    }
    row.mmapWarmSeconds = 1e9;
    for (int rep = 0; rep < 5; ++rep) {
        util::WallTimer timer;
        io::IndexedPangenome pg = io::loadPangenome(v3);
        row.mmapWarmSeconds = std::min(row.mmapWarmSeconds,
                                       timer.seconds());
    }
    row.mmapSpeedup = row.parseSeconds / row.mmapWarmSeconds;

    // Steady-state mapping throughput, both load modes.  Passes are
    // interleaved (parsed, mapped, parsed, ...) so slow drift in machine
    // load hits both sides equally and cancels out of the ratio.
    {
        io::IndexedPangenome parsed = io::loadPangenome(v2);
        io::IndexedPangenome mapped = io::loadPangenome(v3);
        for (int rep = 0; rep < 3; ++rep) {
            row.parsedReadsPerSec =
                std::max(row.parsedReadsPerSec,
                         readsPerSec(parsed, world->set.reads));
            row.mappedReadsPerSec =
                std::max(row.mappedReadsPerSec,
                         readsPerSec(mapped, world->set.reads));
        }
        row.throughputRatio = row.mappedReadsPerSec
                              / row.parsedReadsPerSec;
    }

    // First-query latency after a fresh bind, prefetch on vs off.
    row.firstQueryPrefetchSeconds =
        firstQuerySeconds(v3, true, world->set.reads);
    row.firstQueryNoPrefetchSeconds =
        firstQuerySeconds(v3, false, world->set.reads);

    // Parallel index construction vs serial.
    unsigned hardware = std::thread::hardware_concurrency();
    row.parallelThreads =
        std::max(1u, std::min(8u, hardware == 0 ? 1u : hardware));
    row.serialBuildSeconds = buildIndexesOnce(world->graph(), 1);
    row.parallelBuildSeconds =
        buildIndexesOnce(world->graph(), row.parallelThreads);
    row.buildSpeedup = row.serialBuildSeconds / row.parallelBuildSeconds;
    return row;
}

void
printRow(const StartupRow& row)
{
    std::printf("%-8s  v2 %7.2f MB parse %8.4f s | v3 %7.2f MB map "
                "%8.4f s (first %.4f s)  speedup %6.1fx\n",
                row.inputSet.c_str(), row.v2Bytes / 1048576.0,
                row.parseSeconds, row.v3Bytes / 1048576.0,
                row.mmapWarmSeconds, row.mmapFirstSeconds,
                row.mmapSpeedup);
    std::printf("          throughput parsed %8.0f r/s, mapped %8.0f r/s "
                "(ratio %.3f)\n",
                row.parsedReadsPerSec, row.mappedReadsPerSec,
                row.throughputRatio);
    std::printf("          first query after bind: prefetch %8.4f s, "
                "no prefetch %8.4f s\n",
                row.firstQueryPrefetchSeconds,
                row.firstQueryNoPrefetchSeconds);
    std::printf("          index build serial %.3f s, %u-thread %.3f s "
                "(speedup %.2fx)\n",
                row.serialBuildSeconds, row.parallelThreads,
                row.parallelBuildSeconds, row.buildSpeedup);
}

void
writeJson(const std::string& path, double scale,
          const std::vector<StartupRow>& rows)
{
    obs::JsonWriter w;
    w.beginObject();
    w.field("benchmark", "bench_startup");
    w.field("scale", scale);
    w.field("hardware_threads",
            static_cast<uint64_t>(std::thread::hardware_concurrency()));
    w.key("results").beginObject();
    for (const StartupRow& row : rows) {
        w.key(row.inputSet).beginObject();
        w.field("v2_bytes", row.v2Bytes);
        w.field("v3_bytes", row.v3Bytes);
        w.field("parse_seconds", row.parseSeconds);
        w.field("mmap_first_seconds", row.mmapFirstSeconds);
        w.field("mmap_warm_seconds", row.mmapWarmSeconds);
        w.field("mmap_speedup", row.mmapSpeedup);
        w.field("parsed_reads_per_sec", row.parsedReadsPerSec);
        w.field("mapped_reads_per_sec", row.mappedReadsPerSec);
        w.field("throughput_ratio", row.throughputRatio);
        w.field("first_query_prefetch_seconds",
                row.firstQueryPrefetchSeconds);
        w.field("first_query_no_prefetch_seconds",
                row.firstQueryNoPrefetchSeconds);
        w.field("serial_build_seconds", row.serialBuildSeconds);
        w.field("parallel_build_seconds", row.parallelBuildSeconds);
        w.field("parallel_build_threads",
                static_cast<uint64_t>(row.parallelThreads));
        w.field("build_speedup", row.buildSpeedup);
        w.endObject();
    }
    w.endObject();
    // The floors perf_guard_mmap re-measures.
    w.key("guard").beginObject();
    w.field("mmap_speedup_floor", 10.0);
    w.field("throughput_ratio_floor", 0.95);
    w.field("build_speedup_floor_at_8_threads", 2.0);
    w.endObject();
    w.endObject();
    io::writeFileText(path, w.str());
    std::printf("wrote %s\n", path.c_str());
}

/**
 * Perf guard (ctest perf_guard_mmap): in-process ratios on the A-human
 * analog.  Machine speed cancels out of every checked quantity.
 */
int
guardRun(const std::string& committed_path)
{
    if (io::fileExists(committed_path)) {
        std::printf("perf-guard-mmap: committed record %s\n",
                    committed_path.c_str());
    } else {
        std::printf("perf-guard-mmap: no committed record (%s)\n",
                    committed_path.c_str());
    }

    StartupRow row = measure("A-human", 0.1);
    printRow(row);
    bool ok = true;

    if (row.mmapSpeedup < 10.0) {
        std::printf("FAIL: v3 mmap load %.1fx faster than v2 parse "
                    "(floor 10x)\n",
                    row.mmapSpeedup);
        ok = false;
    } else {
        std::printf("ok: mmap load %.1fx faster than parse "
                    "(floor 10x)\n",
                    row.mmapSpeedup);
    }

    if (row.throughputRatio < 0.95) {
        std::printf("FAIL: mapped-mode throughput ratio %.3f "
                    "(floor 0.95)\n",
                    row.throughputRatio);
        ok = false;
    } else {
        std::printf("ok: mapped/parsed throughput ratio %.3f "
                    "(floor 0.95)\n",
                    row.throughputRatio);
    }

    unsigned hardware = std::thread::hardware_concurrency();
    if (hardware >= 8) {
        if (row.buildSpeedup < 2.0) {
            std::printf("FAIL: parallel index build %.2fx at %u threads "
                        "(floor 2x)\n",
                        row.buildSpeedup, row.parallelThreads);
            ok = false;
        } else {
            std::printf("ok: parallel index build %.2fx at %u threads "
                        "(floor 2x)\n",
                        row.buildSpeedup, row.parallelThreads);
        }
    } else {
        std::printf("skip: build-scaling floor needs >= 8 hardware "
                    "threads (have %u); measured %.2fx at %u\n",
                    hardware, row.buildSpeedup, row.parallelThreads);
    }
    return ok ? 0 : 1;
}

int
run(int argc, char** argv)
{
    util::Flags flags = benchFlags("bench_startup", "0.1");
    flags.define("json", "BENCH_mmap.json",
                 "output path for the JSON record");
    flags.define("guard", "",
                 "perf-guard mode: committed BENCH_mmap.json path");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }

    std::string guard = flags.str("guard");
    if (!guard.empty()) {
        return guardRun(guard);
    }

    double scale = flags.real("scale");
    banner("startup", "v2 parse vs v3 mmap load, build scaling");
    std::vector<StartupRow> rows;
    for (const char* input_set : { "A-human", "B-yeast" }) {
        rows.push_back(measure(input_set, scale));
        printRow(rows.back());
    }
    writeJson(flags.str("json"), scale, rows);
    return 0;
}

} // namespace
} // namespace mg::bench

int
main(int argc, char** argv)
{
    return mg::bench::run(argc, argv);
}
