/**
 * @file
 * Figure 3 analog: percentage of runtime per instrumented region for all
 * four input sets (I/O and settings-parsing excluded, as in the paper).
 * The paper's headline observations, reproduced here: the extension
 * region (process_until_threshold_c) is the most expensive everywhere,
 * with cluster_seeds second among the critical functions.
 */
#include <cstdio>
#include <map>
#include <vector>

#include "common.h"
#include "util/csv.h"
#include "util/str.h"

int
main(int argc, char** argv)
{
    mg::util::Flags flags =
        mg::bench::benchFlags("bench_fig3_regions", "0.5");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }
    mg::bench::banner("Figure 3 analog",
                      "Region share of total mapping time per input set "
                      "(parent emulator, averaged across threads)");

    std::vector<std::string> region_order = {
        mg::perf::regions::kFindSeeds,
        mg::perf::regions::kClusterSeeds,
        mg::perf::regions::kProcessUntilThresholdC,
        mg::perf::regions::kScoreExtensions,
        mg::perf::regions::kAlign,
    };

    std::map<std::string, std::map<std::string, double>> share;
    std::vector<std::string> input_names;

    for (const auto& spec : mg::sim::standardInputSets()) {
        input_names.push_back(spec.name);
        auto world = mg::bench::buildWorld(spec.name, flags.real("scale"));
        mg::giraffe::ParentParams params;
        params.numThreads = 1;
        mg::giraffe::ParentEmulator parent = world->parent(params);
        mg::perf::Profiler profiler;
        parent.run(world->set.reads, &profiler);

        double total = 0.0;
        std::map<std::string, double> seconds;
        for (const std::string& region : region_order) {
            // The extension region nests inside process_until_threshold_c;
            // count the parent region only (as the paper's regions do).
            if (region == mg::perf::regions::kExtend) {
                continue;
            }
            seconds[region] = profiler.regionSeconds(region);
            total += seconds[region];
        }
        for (const std::string& region : region_order) {
            share[region][spec.name] =
                total > 0.0 ? 100.0 * seconds[region] / total : 0.0;
        }
    }

    std::printf("%-28s", "region \\ input");
    for (const std::string& name : input_names) {
        std::printf(" %10s", name.c_str());
    }
    std::printf("\n");
    for (const std::string& region : region_order) {
        std::printf("%-28s", region.c_str());
        for (const std::string& name : input_names) {
            std::printf(" %9.1f%%", share[region][name]);
        }
        std::printf("\n");
    }

    std::printf("\npaper expectation: process_until_threshold_c dominates "
                "(46-52%% of compute on A/B), cluster_seeds second\n");

    if (!flags.str("csv").empty()) {
        std::vector<std::string> header = {"region"};
        header.insert(header.end(), input_names.begin(),
                      input_names.end());
        mg::util::CsvWriter csv(flags.str("csv"), header);
        for (const std::string& region : region_order) {
            std::vector<std::string> row = {region};
            for (const std::string& name : input_names) {
                row.push_back(mg::util::fixed(share[region][name], 2));
            }
            csv.row(row);
        }
    }
    return 0;
}
