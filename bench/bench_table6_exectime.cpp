/**
 * @file
 * Table VI analog: execution-time comparison between the parent's
 * critical-function regions and the proxy, measured on the host across
 * all four input sets (average of three runs each, as in the paper).
 * The paper reports the proxy within 5.7-8.8% of the parent; the claim to
 * preserve is that the proxy closely tracks the parent's critical-region
 * time on every input.
 */
#include <cstdio>
#include <vector>

#include "common.h"
#include "stats/bootstrap.h"
#include "util/csv.h"
#include "util/str.h"

int
main(int argc, char** argv)
{
    mg::util::Flags flags =
        mg::bench::benchFlags("bench_table6_exectime", "0.5");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }
    mg::bench::banner("Table VI analog",
                      "Critical-region time: parent vs proxy, host "
                      "measurement, 3-run averages");

    const int kRuns = 3;
    struct Row
    {
        std::string input;
        double parentSeconds = 0.0;
        double proxySeconds = 0.0;
        mg::stats::ConfidenceInterval diffCi;
    };
    std::vector<Row> rows;

    for (const auto& spec : mg::sim::standardInputSets()) {
        auto world = mg::bench::buildWorld(spec.name, flags.real("scale"));
        mg::giraffe::ParentEmulator parent = world->parent();
        mg::io::SeedCapture capture =
            parent.capturePreprocessing(world->set.reads);
        mg::giraffe::ProxyRunner proxy = world->proxy();

        Row row;
        row.input = spec.name;
        std::vector<double> parent_runs;
        std::vector<double> proxy_runs;
        for (int run = 0; run < kRuns; ++run) {
            // Parent: time only the regions the proxy covers.
            mg::perf::Profiler profiler;
            parent.run(world->set.reads, &profiler);
            parent_runs.push_back(
                profiler.regionSeconds(mg::perf::regions::kClusterSeeds) +
                profiler.regionSeconds(
                    mg::perf::regions::kProcessUntilThresholdC));
            // Proxy: whole-run makespan (it *is* the critical region).
            proxy_runs.push_back(proxy.run(capture).wallSeconds);
        }
        for (int run = 0; run < kRuns; ++run) {
            row.parentSeconds += parent_runs[run] / kRuns;
            row.proxySeconds += proxy_runs[run] / kRuns;
        }
        row.diffCi = mg::stats::bootstrapRelativeDifference(proxy_runs,
                                                            parent_runs);
        rows.push_back(row);
    }

    std::printf("%-22s", "");
    for (const Row& row : rows) {
        std::printf(" %10s", row.input.c_str());
    }
    std::printf("\n%-22s", "miniGiraffe (s)");
    for (const Row& row : rows) {
        std::printf(" %10.3f", row.proxySeconds);
    }
    std::printf("\n%-22s", "Giraffe critical (s)");
    for (const Row& row : rows) {
        std::printf(" %10.3f", row.parentSeconds);
    }
    std::printf("\n%-22s", "%% diff over Giraffe");
    for (const Row& row : rows) {
        std::printf(" %10.2f",
                    100.0 * (row.proxySeconds - row.parentSeconds) /
                        row.parentSeconds);
    }
    std::printf("\n%-22s", "95%% CI of %% diff");
    for (const Row& row : rows) {
        std::printf(" %10s",
                    ("[" + mg::util::fixed(100.0 * row.diffCi.lower, 1) +
                     "," + mg::util::fixed(100.0 * row.diffCi.upper, 1) +
                     "]").c_str());
    }
    std::printf("\n\npaper: diffs of 8.77 / 5.75 / 7.02 / 8.22%% "
                "(proxy slightly slower than the parent's regions)\n");

    if (!flags.str("csv").empty()) {
        mg::util::CsvWriter csv(flags.str("csv"),
                                {"input", "proxy_s", "parent_s",
                                 "pct_diff"});
        for (const Row& row : rows) {
            csv.row({row.input, mg::util::fixed(row.proxySeconds, 5),
                     mg::util::fixed(row.parentSeconds, 5),
                     mg::util::fixed(
                         100.0 * (row.proxySeconds - row.parentSeconds) /
                             row.parentSeconds, 2)});
        }
    }
    return 0;
}
