/**
 * @file
 * Figure 4 analog: the parent application's strong scaling of the
 * extension stage on local-intel (the paper's host), thread sweep 1..48.
 * 4a reports execution times, 4b the speedups.  Single-thread cost is
 * measured on this host and projected through the calibrated machine
 * model (this container has one core; see DESIGN.md).  Expected shapes:
 * the smallest input (A-human) plateaus early, the large inputs keep
 * scaling to 48 threads.
 */
#include <cstdio>
#include <vector>

#include "common.h"
#include "tune/autotuner.h"
#include "util/csv.h"
#include "util/str.h"

int
main(int argc, char** argv)
{
    mg::util::Flags flags =
        mg::bench::benchFlags("bench_fig4_scaling", "0.5");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }
    mg::bench::banner("Figure 4 analog",
                      "Parent strong scaling of the extension stage on "
                      "local-intel (measured 1-thread cost + calibrated "
                      "scaling model)");

    mg::machine::MachineConfig host =
        mg::machine::machineByName("local-intel");
    std::vector<size_t> threads = {1, 2, 4, 8, 16, 24, 32, 48};

    struct Series
    {
        std::string name;
        std::vector<double> seconds;
    };
    std::vector<Series> series;

    for (const auto& spec : mg::sim::standardInputSets()) {
        auto world = mg::bench::buildWorld(spec.name, flags.real("scale"));
        mg::giraffe::ParentEmulator parent = world->parent();
        mg::io::SeedCapture capture =
            parent.capturePreprocessing(world->set.reads);
        mg::tune::Autotuner tuner(world->graph(), world->gbwt(),
                                  world->distance, capture);
        mg::tune::CapacityProfile profile =
            mg::bench::scaleProfileToPaper(
                tuner.measureCapacity(
                    mg::gbwt::CachedGbwt::kDefaultInitialCapacity),
                spec.name);
        mg::machine::CostProfile cost =
            mg::tune::Autotuner::calibratedCost(host, profile);

        mg::machine::WorkloadShape shape;
        shape.numReads = profile.numReads;
        shape.batchSize = 512;
        shape.dramBytes = static_cast<double>(
            profile.perMachine.at(host.name).llcMisses) * 64.0;
        // Giraffe itself schedules through the VG dispatcher.
        mg::machine::SchedulerCost sched =
            mg::tune::schedulerCost(mg::sched::SchedulerKind::VgBatch);

        Series s;
        s.name = spec.name;
        for (size_t t : threads) {
            s.seconds.push_back(
                mg::machine::predictedTime(host, cost, shape, sched, t));
        }
        series.push_back(std::move(s));
    }

    std::printf("(4a) extension time in seconds\n%-10s", "input");
    for (size_t t : threads) {
        std::printf(" %8zu", t);
    }
    std::printf("\n");
    for (const Series& s : series) {
        std::printf("%-10s", s.name.c_str());
        for (double sec : s.seconds) {
            std::printf(" %8.4f", sec);
        }
        std::printf("\n");
    }

    std::printf("\n(4b) speedup over 1 thread\n%-10s", "input");
    for (size_t t : threads) {
        std::printf(" %8zu", t);
    }
    std::printf("\n");
    for (const Series& s : series) {
        std::printf("%-10s", s.name.c_str());
        for (double sec : s.seconds) {
            std::printf(" %8.2f", s.seconds.front() / sec);
        }
        std::printf("\n");
    }
    std::printf("\npaper expectation: A-human plateaus earliest; larger "
                "inputs keep gaining through 48 threads\n");

    if (!flags.str("csv").empty()) {
        mg::util::CsvWriter csv(flags.str("csv"),
                                {"input", "threads", "seconds", "speedup"});
        for (const Series& s : series) {
            for (size_t i = 0; i < threads.size(); ++i) {
                csv.row({s.name, std::to_string(threads[i]),
                         mg::util::sci(s.seconds[i]),
                         mg::util::fixed(s.seconds.front() / s.seconds[i],
                                         3)});
            }
        }
    }
    return 0;
}
