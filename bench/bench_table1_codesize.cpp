/**
 * @file
 * Table I analog: code-size comparison between the parent application and
 * the proxy.  The paper compares vg Giraffe (~50 kLoC, ~350 files, ~50
 * library dependencies) against miniGiraffe (~1 kLoC, 2 files, 3
 * dependencies).  In this reproduction the "parent" is the full pipeline
 * plus every substrate it transitively needs, and the "proxy" is the
 * critical-function core plus its runner — both counted live from this
 * repository's sources.
 */
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common.h"
#include "util/csv.h"
#include "util/str.h"

namespace fs = std::filesystem;

namespace {

struct ModuleCount
{
    std::string name;
    size_t files = 0;
    size_t lines = 0;
};

ModuleCount
countDir(const std::string& name, const fs::path& dir)
{
    ModuleCount count;
    count.name = name;
    if (!fs::exists(dir)) {
        return count;
    }
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
        if (!entry.is_regular_file()) {
            continue;
        }
        std::string ext = entry.path().extension().string();
        if (ext != ".h" && ext != ".cpp") {
            continue;
        }
        ++count.files;
        std::ifstream in(entry.path());
        std::string line;
        while (std::getline(in, line)) {
            ++count.lines;
        }
    }
    return count;
}

} // namespace

int
main(int argc, char** argv)
{
    mg::util::Flags flags = mg::bench::benchFlags("bench_table1_codesize");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }
    mg::bench::banner("Table I analog",
                      "Parent vs proxy code size, counted from this "
                      "repository's sources");

    fs::path src = fs::path(MG_SOURCE_DIR) / "src";

    // Parent scope: the full pipeline and every substrate.
    std::vector<std::string> parent_modules = {
        "util", "stats", "perf", "graph", "gbwt", "index", "map",
        "sched", "io", "sim", "machine", "giraffe", "tune",
    };
    // Proxy scope: the critical functions plus the scheduler loop — the
    // pieces miniGiraffe actually executes at mapping time.
    std::vector<std::string> proxy_modules = { "map", "sched" };

    std::printf("%-10s %8s %10s\n", "module", "files", "lines");
    ModuleCount parent_total{"parent", 0, 0};
    for (const std::string& module : parent_modules) {
        ModuleCount count = countDir(module, src / module);
        std::printf("%-10s %8zu %10zu\n", count.name.c_str(), count.files,
                    count.lines);
        parent_total.files += count.files;
        parent_total.lines += count.lines;
    }
    ModuleCount proxy_total{"proxy", 0, 0};
    for (const std::string& module : proxy_modules) {
        ModuleCount count = countDir(module, src / module);
        proxy_total.files += count.files;
        proxy_total.lines += count.lines;
    }
    // The proxy binary itself.
    ModuleCount app = countDir(
        "app", fs::path(MG_SOURCE_DIR) / "examples");
    (void)app; // examples counted separately below for context

    std::printf("\n%-28s %10s %10s %14s\n", "", "files", "lines",
                "dependencies");
    std::printf("%-28s %10zu %10zu %14s\n",
                "Giraffe analog (full stack)", parent_total.files,
                parent_total.lines, "13 modules");
    std::printf("%-28s %10zu %10zu %14s\n",
                "miniGiraffe analog (core)", proxy_total.files,
                proxy_total.lines, "3 (gbwt/index/util)");
    std::printf("\nproxy is %.1f%% of the parent stack's lines "
                "(paper: ~2%%)\n",
                100.0 * static_cast<double>(proxy_total.lines) /
                    static_cast<double>(parent_total.lines));

    if (!flags.str("csv").empty()) {
        mg::util::CsvWriter csv(flags.str("csv"),
                                {"scope", "files", "lines"});
        csv.row({"parent", std::to_string(parent_total.files),
                 std::to_string(parent_total.lines)});
        csv.row({"proxy", std::to_string(proxy_total.files),
                 std::to_string(proxy_total.lines)});
    }
    return 0;
}
