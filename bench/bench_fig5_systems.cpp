/**
 * @file
 * Figure 5 analog: the proxy's parallel scalability on all four Table II
 * machines, all four input sets.  Single-thread cost is measured on this
 * host (proxy runs with the memory tracer), then projected through the
 * calibrated machine model (DESIGN.md).  Paper shapes to reproduce:
 * local-amd near-linear up to its 64 physical cores; both Intel systems
 * sublinear across sockets and hyperthreads; chi-arm near-linear for all
 * but the smallest input; chi-arm and chi-intel lack the memory for
 * D-HPRC.
 */
#include <cstdio>
#include <vector>

#include "common.h"
#include "tune/autotuner.h"
#include "util/csv.h"
#include "util/str.h"

int
main(int argc, char** argv)
{
    mg::util::Flags flags =
        mg::bench::benchFlags("bench_fig5_systems", "0.5");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }
    mg::bench::banner("Figure 5 analog",
                      "Proxy scalability on the Table II fleet "
                      "(measured 1-thread cost + calibrated model)");

    std::unique_ptr<mg::util::CsvWriter> csv;
    if (!flags.str("csv").empty()) {
        csv = std::make_unique<mg::util::CsvWriter>(
            flags.str("csv"),
            std::vector<std::string>{"machine", "input", "threads",
                                     "speedup"});
    }

    // Profile each input once (capacity at default).
    struct InputProfile
    {
        std::string name;
        mg::tune::CapacityProfile profile;
    };
    std::vector<InputProfile> profiles;
    for (const auto& spec : mg::sim::standardInputSets()) {
        auto world = mg::bench::buildWorld(spec.name, flags.real("scale"));
        mg::giraffe::ParentEmulator parent = world->parent();
        mg::io::SeedCapture capture =
            parent.capturePreprocessing(world->set.reads);
        mg::tune::Autotuner tuner(world->graph(), world->gbwt(),
                                  world->distance, capture);
        profiles.push_back(
            {spec.name,
             mg::bench::scaleProfileToPaper(
                 tuner.measureCapacity(
                     mg::gbwt::CachedGbwt::kDefaultInitialCapacity),
                 spec.name)});
    }

    for (const auto& machine : mg::machine::paperMachines()) {
        std::vector<size_t> threads =
            mg::bench::threadSweep(machine.threadContexts());
        std::printf("--- %s (%zu contexts) ---\n%-10s",
                    machine.name.c_str(), machine.threadContexts(),
                    "input");
        for (size_t t : threads) {
            std::printf(" %7zu", t);
        }
        std::printf("\n");
        for (const InputProfile& input : profiles) {
            std::printf("%-10s", input.name.c_str());
            if (!mg::bench::fitsInMemory(machine, input.name)) {
                std::printf("  out of memory at paper scale (%.0f GB "
                            "needed, %zu GB present)\n",
                            mg::bench::paperMemoryRequirementGb(
                                input.name),
                            machine.dramGb);
                continue;
            }
            mg::machine::CostProfile cost =
                mg::tune::Autotuner::calibratedCost(machine,
                                                    input.profile);
            mg::machine::WorkloadShape shape;
            shape.numReads = input.profile.numReads;
            shape.batchSize = 512;
            shape.dramBytes = static_cast<double>(
                input.profile.perMachine.at(machine.name).llcMisses) *
                64.0;
            mg::machine::SchedulerCost sched = mg::tune::schedulerCost(
                mg::sched::SchedulerKind::OmpDynamic);
            std::vector<double> curve = mg::machine::speedupCurve(
                machine, cost, shape, sched, threads);
            for (size_t i = 0; i < threads.size(); ++i) {
                std::printf(" %7.1f", curve[i]);
                if (csv) {
                    csv->row({machine.name, input.name,
                              std::to_string(threads[i]),
                              mg::util::fixed(curve[i], 3)});
                }
            }
            std::printf("\n");
        }
        std::printf("\n");
    }
    std::printf("paper expectation: local-amd the most linear; Intel "
                "systems plateau at socket/SMT boundaries; D-HPRC OOM on "
                "the 256 GB machines\n");
    return 0;
}
