/**
 * @file
 * Table VII analog: fastest execution time per input set across the four
 * machines (minimum over the thread sweep), from the calibrated machine
 * model.  Paper shapes: local-amd fastest everywhere (largest LLC),
 * chi-arm slowest, chi-intel second fastest, and the D-HPRC cells of the
 * 256 GB machines empty (out of memory).
 */
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common.h"
#include "tune/autotuner.h"
#include "util/csv.h"
#include "util/str.h"

int
main(int argc, char** argv)
{
    mg::util::Flags flags =
        mg::bench::benchFlags("bench_table7_fastest", "0.5");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }
    mg::bench::banner("Table VII analog",
                      "Fastest proxy execution times (seconds) per input "
                      "and machine (min over thread sweep)");

    auto machines = mg::machine::paperMachines();
    std::printf("%-10s", "input");
    for (const auto& machine : machines) {
        std::printf(" %12s", machine.name.c_str());
    }
    std::printf("\n");

    std::unique_ptr<mg::util::CsvWriter> csv;
    if (!flags.str("csv").empty()) {
        csv = std::make_unique<mg::util::CsvWriter>(
            flags.str("csv"),
            std::vector<std::string>{"input", "machine", "seconds"});
    }

    for (const auto& spec : mg::sim::standardInputSets()) {
        auto world = mg::bench::buildWorld(spec.name, flags.real("scale"));
        mg::giraffe::ParentEmulator parent = world->parent();
        mg::io::SeedCapture capture =
            parent.capturePreprocessing(world->set.reads);
        mg::tune::Autotuner tuner(world->graph(), world->gbwt(),
                                  world->distance, capture);
        mg::tune::CapacityProfile profile =
            mg::bench::scaleProfileToPaper(
                tuner.measureCapacity(
                    mg::gbwt::CachedGbwt::kDefaultInitialCapacity),
                spec.name);

        std::printf("%-10s", spec.name.c_str());
        for (const auto& machine : machines) {
            if (!mg::bench::fitsInMemory(machine, spec.name)) {
                std::printf(" %12s", "-");
                if (csv) {
                    csv->row({spec.name, machine.name, "oom"});
                }
                continue;
            }
            mg::machine::CostProfile cost =
                mg::tune::Autotuner::calibratedCost(machine, profile);
            mg::machine::WorkloadShape shape;
            shape.numReads = profile.numReads;
            shape.batchSize = 512;
            shape.dramBytes = static_cast<double>(
                profile.perMachine.at(machine.name).llcMisses) * 64.0;
            mg::machine::SchedulerCost sched = mg::tune::schedulerCost(
                mg::sched::SchedulerKind::OmpDynamic);
            double fastest = 1e300;
            for (size_t t :
                 mg::bench::threadSweep(machine.threadContexts())) {
                fastest = std::min(fastest,
                                   mg::machine::predictedTime(
                                       machine, cost, shape, sched, t));
            }
            std::printf(" %12.4f", fastest);
            if (csv) {
                csv->row({spec.name, machine.name,
                          mg::util::sci(fastest, 4)});
            }
        }
        std::printf("\n");
    }
    std::printf("\npaper expectation: local-amd fastest on every input, "
                "chi-arm slowest, '-' where D-HPRC exceeds memory\n");
    return 0;
}
