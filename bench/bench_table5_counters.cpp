/**
 * @file
 * Table V analog: hardware-counter validation of the proxy against the
 * parent on A-human, single-threaded, via the trace-driven cache
 * simulator on local-intel (the paper uses perf on its Xeon 8260 host).
 * The parent runs its full pipeline (seeding interleaved with the
 * critical functions); the proxy runs the critical functions alone from
 * the captured seeds.  The paper's headline numbers: near-identical
 * instruction counts and LLC misses, slightly more L1 misses on the
 * parent (interleaved extra work), and a cosine similarity of 0.9996
 * between the two counter vectors.
 */
#include <cmath>
#include <cstdio>
#include <vector>

#include "common.h"
#include "machine/cost_model.h"
#include "machine/tracer.h"
#include "stats/descriptive.h"
#include "util/csv.h"
#include "util/str.h"

namespace {

struct CounterRow
{
    double instructions;
    double ipc;
    double l1da;
    double l1dm;
    double llda;
    double lldm;

    std::vector<double>
    asVector() const
    {
        return {instructions, ipc, l1da, l1dm, llda, lldm};
    }
};

CounterRow
makeRow(const mg::machine::TraceCounter& tracer,
        const mg::machine::MachineConfig& host)
{
    const mg::machine::CacheCounters& c = tracer.countersFor(host.name);
    mg::machine::CostProfile cost =
        mg::machine::modelCost(host, tracer.work(), c);
    CounterRow row;
    row.instructions = static_cast<double>(tracer.work().instructions);
    row.ipc = cost.ipc;
    row.l1da = static_cast<double>(c.l1Accesses);
    row.l1dm = static_cast<double>(c.l1Misses);
    row.llda = static_cast<double>(c.llcAccesses);
    row.lldm = static_cast<double>(c.llcMisses);
    return row;
}

void
printRow(const char* name, const CounterRow& row)
{
    std::printf("%-12s %12s %6.2f %12s %12s %12s %12s\n", name,
                mg::util::sci(row.instructions).c_str(), row.ipc,
                mg::util::sci(row.l1da).c_str(),
                mg::util::sci(row.l1dm).c_str(),
                mg::util::sci(row.llda).c_str(),
                mg::util::sci(row.lldm).c_str());
}

} // namespace

int
main(int argc, char** argv)
{
    mg::util::Flags flags =
        mg::bench::benchFlags("bench_table5_counters", "0.5");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }
    mg::bench::banner("Table V analog",
                      "Counter congruence, proxy vs parent, A-human, one "
                      "thread (trace-driven cache model on local-intel)");

    auto world = mg::bench::buildWorld("A-human", flags.real("scale"));
    mg::machine::MachineConfig host =
        mg::machine::machineByName("local-intel");

    // Parent: the full pipeline, traced.
    mg::giraffe::ParentEmulator parent = world->parent();
    mg::machine::TraceCounter parent_tracer(mg::machine::paperMachines());
    parent.run(world->set.reads, nullptr, &parent_tracer);
    CounterRow parent_row = makeRow(parent_tracer, host);

    // Proxy: critical functions only, from the captured seeds.
    mg::io::SeedCapture capture =
        parent.capturePreprocessing(world->set.reads);
    mg::giraffe::ProxyRunner proxy = world->proxy();
    mg::machine::TraceCounter proxy_tracer(mg::machine::paperMachines());
    proxy.run(capture, nullptr, &proxy_tracer);
    CounterRow proxy_row = makeRow(proxy_tracer, host);

    std::printf("%-12s %12s %6s %12s %12s %12s %12s\n", "application",
                "Inst.", "IPC", "L1DA", "L1DM", "LLDA", "LLDM");
    printRow("miniGiraffe", proxy_row);
    printRow("Giraffe", parent_row);

    std::printf("\nL1D miss rate: proxy %.4f vs parent %.4f "
                "(paper: 0.004 vs 0.011)\n",
                proxy_row.l1dm / proxy_row.l1da,
                parent_row.l1dm / parent_row.l1da);
    std::printf("LLC miss rate: proxy %.3f vs parent %.3f "
                "(paper: 0.73 vs 0.55)\n",
                proxy_row.lldm / proxy_row.llda,
                parent_row.lldm / parent_row.llda);

    double cosine = mg::stats::cosineSimilarity(proxy_row.asVector(),
                                                parent_row.asVector());
    std::printf("cosine similarity of counter vectors: %.4f "
                "(paper: 0.9996)\n", cosine);

    if (!flags.str("csv").empty()) {
        mg::util::CsvWriter csv(flags.str("csv"),
                                {"application", "inst", "ipc", "l1da",
                                 "l1dm", "llda", "lldm"});
        auto emit = [&](const char* name, const CounterRow& row) {
            csv.row({name, mg::util::sci(row.instructions),
                     mg::util::fixed(row.ipc, 3), mg::util::sci(row.l1da),
                     mg::util::sci(row.l1dm), mg::util::sci(row.llda),
                     mg::util::sci(row.lldm)});
        };
        emit("miniGiraffe", proxy_row);
        emit("Giraffe", parent_row);
    }
    return 0;
}
