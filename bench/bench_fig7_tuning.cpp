/**
 * @file
 * Figure 7 analog: makespan of the best-tuned configuration vs Giraffe's
 * defaults for every input set on every machine, using the paper's 10%
 * subsample.  Paper headline: geometric-mean speedup 1.15x overall (per
 * input: 1.36, 1.07, 1.10, 1.11), up to 3.32x, defaults rarely optimal.
 */
#include <cstdio>
#include <vector>

#include "common.h"
#include "stats/descriptive.h"
#include "tune/autotuner.h"
#include "util/csv.h"
#include "util/str.h"

int
main(int argc, char** argv)
{
    mg::util::Flags flags =
        mg::bench::benchFlags("bench_fig7_tuning", "0.5");
    flags.define("subsample", "0.1",
                 "fraction of each input set used (paper: first 10%)");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }
    mg::bench::banner("Figure 7 analog",
                      "Best-tuned vs default makespan per input and "
                      "machine (10% subsampled inputs)");

    double scale = flags.real("scale") * flags.real("subsample");
    mg::tune::SweepSpace space = mg::tune::paperSweepSpace();
    auto machines = mg::machine::paperMachines();

    std::unique_ptr<mg::util::CsvWriter> csv;
    if (!flags.str("csv").empty()) {
        csv = std::make_unique<mg::util::CsvWriter>(
            flags.str("csv"),
            std::vector<std::string>{"input", "machine", "default_s",
                                     "best_s", "speedup", "best_config"});
    }

    std::printf("%-10s %-12s %12s %12s %9s  %s\n", "input", "machine",
                "default(s)", "best(s)", "speedup", "best config");
    std::vector<double> all_speedups;
    for (const auto& spec : mg::sim::standardInputSets()) {
        auto world = mg::bench::buildWorld(spec.name, scale);
        mg::giraffe::ParentEmulator parent = world->parent();
        mg::io::SeedCapture capture =
            parent.capturePreprocessing(world->set.reads);
        mg::tune::Autotuner tuner(world->graph(), world->gbwt(),
                                  world->distance, capture);
        auto profiles = tuner.measureCapacities(space.capacities);
        for (auto& profile : profiles) {
            profile = mg::bench::scaleProfileToPaper(
                profile, spec.name, flags.real("subsample"));
        }

        std::vector<double> input_speedups;
        for (const auto& machine : machines) {
            auto results = tuner.sweep(machine, space, profiles);
            const auto& best = mg::tune::Autotuner::best(results);
            const auto& fallback = mg::tune::Autotuner::find(
                results, mg::tune::defaultConfig());
            double speedup =
                fallback.makespanSeconds / best.makespanSeconds;
            input_speedups.push_back(speedup);
            all_speedups.push_back(speedup);
            std::printf("%-10s %-12s %12.5f %12.5f %8.2fx  %s\n",
                        spec.name.c_str(), machine.name.c_str(),
                        fallback.makespanSeconds, best.makespanSeconds,
                        speedup, best.config.str().c_str());
            if (csv) {
                csv->row({spec.name, machine.name,
                          mg::util::sci(fallback.makespanSeconds, 4),
                          mg::util::sci(best.makespanSeconds, 4),
                          mg::util::fixed(speedup, 3),
                          best.config.str()});
            }
        }
        std::printf("%-10s %-12s geometric mean speedup %.3fx\n",
                    spec.name.c_str(), "(all)",
                    mg::stats::geomean(input_speedups));
    }
    std::printf("\noverall geomean %.3fx, max %.2fx "
                "(paper: 1.15x geomean, 3.32x max)\n",
                mg::stats::geomean(all_speedups),
                mg::stats::maxOf(all_speedups));
    return 0;
}
