/**
 * @file
 * Google-benchmark microbenchmarks of the individual kernels: GBWT record
 * decode, CachedGBWT lookups (hit and miss paths), minimizer extraction,
 * seeding, clustering, gapless extension, the full critical-function
 * pipeline per read, and scheduler dispatch overhead.  These are the
 * building blocks behind every table/figure harness.
 *
 * Before the gbench pass, a match-kernel sweep times every KernelVariant
 * this binary and CPU can run (scalar, swar, and each compiled-in SIMD
 * level) over a range of spans and prints a bases/cycle table (bases/ns
 * where no cycle counter is available) — the per-ISA headroom picture
 * behind ExtendParams::kernel.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "map/cluster.h"
#include "map/seeding.h"
#include "sched/scheduler.h"
#include "util/dna.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/timer.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace {

/** Lazily built single world shared by all kernels. */
const mg::bench::World&
world()
{
    static std::unique_ptr<mg::bench::World> w =
        mg::bench::buildWorld("B-yeast", 0.2);
    return *w;
}

const mg::io::SeedCapture&
capture()
{
    static mg::io::SeedCapture c =
        world().parent().capturePreprocessing(world().set.reads);
    return c;
}

void
BM_GbwtDecodeRecord(benchmark::State& state)
{
    const auto& gbwt = world().gbwt();
    size_t num_nodes = world().graph().numNodes();
    mg::graph::NodeId id = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            gbwt.decodeRecord(mg::graph::Handle(id, false)));
        id = id % num_nodes + 1;
    }
}
BENCHMARK(BM_GbwtDecodeRecord);

void
BM_CachedGbwtHit(benchmark::State& state)
{
    mg::gbwt::CachedGbwt cache(world().gbwt(), 4096);
    mg::graph::Handle handle(1, false);
    cache.record(handle);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.record(handle));
    }
}
BENCHMARK(BM_CachedGbwtHit);

void
BM_CachedGbwtMissStream(benchmark::State& state)
{
    // Fresh cache per iteration batch: every access decodes.
    size_t num_nodes = world().graph().numNodes();
    mg::gbwt::CachedGbwt cache(world().gbwt(), 0);
    mg::graph::NodeId id = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.record(mg::graph::Handle(id, false)));
        id = id % num_nodes + 1;
    }
}
BENCHMARK(BM_CachedGbwtMissStream);

void
BM_Minimizers(benchmark::State& state)
{
    const std::string& seq = world().set.pangenome.sequences[0];
    std::string read = seq.substr(0, 150);
    mg::index::MinimizerParams params;
    params.k = 15;
    params.w = 8;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mg::index::minimizersOf(read, params));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Minimizers);

void
BM_FindSeeds(benchmark::State& state)
{
    const auto& reads = world().set.reads.reads;
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mg::map::findSeeds(world().minimizers, reads[i]));
        i = (i + 1) % reads.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FindSeeds);

void
BM_ClusterSeeds(benchmark::State& state)
{
    const auto& entries = capture().entries;
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mg::map::clusterSeeds(
            world().graph(), world().distance, entries[i].seeds,
            mg::map::ClusterParams()));
        i = (i + 1) % entries.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClusterSeeds);

void
BM_MapFromSeeds(benchmark::State& state)
{
    // The proxy's whole critical path, one read at a time.
    mg::map::MapperParams params;
    mg::map::Mapper mapper(world().graph(), world().gbwt(),
                           world().minimizers, world().distance, params);
    auto mapper_state = mapper.makeState();
    const auto& entries = capture().entries;
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapper.mapFromSeeds(
            entries[i].read, entries[i].seeds, *mapper_state));
        i = (i + 1) % entries.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MapFromSeeds);

void
BM_SchedulerDispatch(benchmark::State& state)
{
    auto kind = static_cast<mg::sched::SchedulerKind>(state.range(0));
    auto scheduler = mg::sched::makeScheduler(kind);
    for (auto _ : state) {
        scheduler->run(4096, 64, 4, [](size_t, size_t begin, size_t end) {
            benchmark::DoNotOptimize(begin + end);
        });
    }
    state.SetLabel(mg::sched::schedulerName(kind));
}
BENCHMARK(BM_SchedulerDispatch)->Arg(0)->Arg(1)->Arg(2);

// ----------------------------------------------------- match-kernel sweep

/** One timeable kernel variant: a display name plus its function. */
struct SweepKernel
{
    std::string name;
    mg::util::MatchRunFn fn = nullptr;
};

/** Every variant this binary AND this CPU can run, widest last. */
std::vector<SweepKernel>
sweepKernels()
{
    using namespace mg::util;
    std::vector<SweepKernel> kernels;
    kernels.push_back(
        {"scalar", resolveKernel(KernelVariant::Scalar).fn});
    kernels.push_back({"swar", resolveKernel(KernelVariant::Swar).fn});
    const CpuFeatures& cpu = cpuFeatures();
    struct
    {
        SimdLevel level;
        bool available;
    } levels[] = {
        {SimdLevel::Neon, cpu.neon},
        {SimdLevel::Avx2, cpu.avx2},
        {SimdLevel::Avx512bw, cpu.avx512bw},
    };
    for (const auto& entry : levels) {
        MatchRunFn fn = mg::util::matchRunForLevel(entry.level);
        if (entry.available && fn != nullptr) {
            kernels.push_back({simdLevelName(entry.level), fn});
        }
    }
    return kernels;
}

/**
 * Time every runnable variant over a range of spans on identical random
 * sequences (the all-match case: the kernel streams the full span, which
 * is what separates the ISAs) and print a bases/cycle table — bases/ns
 * when no cycle counter is available.  Offsets rotate through all 32
 * intra-word phases so the shift-carry path is exercised, not just the
 * aligned fast case.
 */
void
printMatchKernelTable()
{
    using namespace mg::util;
    constexpr uint32_t kBases = 1u << 16;
    constexpr uint32_t kSpans[] = {32, 128, 512, 4096};
    mg::util::Rng rng(0x51313d);
    std::string seq = rng.randomDna(kBases);
    std::vector<uint64_t> a(packedBufferWords(kBases), 0);
    std::vector<uint64_t> b(packedBufferWords(kBases), 0);
    packAsciiInto(seq, a.data(), 0);
    packAsciiInto(seq, b.data(), 0);

#if defined(__x86_64__) || defined(_M_X64)
    const bool cycles = true;
#else
    const bool cycles = false;
#endif
    std::printf("match-kernel sweep (cpu: %s), %s per variant x span, "
                "all-match inputs:\n",
                cpuFeatures().summary().c_str(),
                cycles ? "bases/cycle" : "bases/ns");
    std::printf("%10s", "");
    for (uint32_t span : kSpans) {
        std::printf("  span=%-5u", span);
    }
    std::printf("\n");
    for (const SweepKernel& kernel : sweepKernels()) {
        std::printf("%10s", kernel.name.c_str());
        for (uint32_t span : kSpans) {
            const uint32_t max_off = kBases - span;
            uint64_t sink = 0;
            uint64_t words = 0;
            // Calibrate repetitions so each cell measures ~2M bases.
            const uint32_t reps = std::max<uint32_t>(1, (1u << 21) / span);
            // Warm-up pass.
            for (uint32_t r = 0; r < reps; ++r) {
                uint64_t off = (r * 33) % max_off;
                sink += kernel.fn(a.data(), off, b.data(), off, span, words);
            }
#if defined(__x86_64__) || defined(_M_X64)
            uint64_t t0 = __rdtsc();
#endif
            mg::util::WallTimer timer;
            for (uint32_t r = 0; r < reps; ++r) {
                uint64_t off = (r * 33) % max_off;
                sink += kernel.fn(a.data(), off, b.data(), off, span, words);
            }
#if defined(__x86_64__) || defined(_M_X64)
            double ticks = static_cast<double>(__rdtsc() - t0);
#else
            double ticks = timer.seconds() * 1e9;
#endif
            benchmark::DoNotOptimize(sink);
            double total_bases =
                static_cast<double>(span) * static_cast<double>(reps);
            std::printf("  %10.2f", ticks > 0.0 ? total_bases / ticks : 0.0);
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char** argv)
{
    printMatchKernelTable();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
