/**
 * @file
 * Google-benchmark microbenchmarks of the individual kernels: GBWT record
 * decode, CachedGBWT lookups (hit and miss paths), minimizer extraction,
 * seeding, clustering, gapless extension, the full critical-function
 * pipeline per read, and scheduler dispatch overhead.  These are the
 * building blocks behind every table/figure harness.
 */
#include <benchmark/benchmark.h>

#include <memory>

#include "common.h"
#include "map/cluster.h"
#include "map/seeding.h"
#include "sched/scheduler.h"

namespace {

/** Lazily built single world shared by all kernels. */
const mg::bench::World&
world()
{
    static std::unique_ptr<mg::bench::World> w =
        mg::bench::buildWorld("B-yeast", 0.2);
    return *w;
}

const mg::io::SeedCapture&
capture()
{
    static mg::io::SeedCapture c =
        world().parent().capturePreprocessing(world().set.reads);
    return c;
}

void
BM_GbwtDecodeRecord(benchmark::State& state)
{
    const auto& gbwt = world().gbwt();
    size_t num_nodes = world().graph().numNodes();
    mg::graph::NodeId id = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            gbwt.decodeRecord(mg::graph::Handle(id, false)));
        id = id % num_nodes + 1;
    }
}
BENCHMARK(BM_GbwtDecodeRecord);

void
BM_CachedGbwtHit(benchmark::State& state)
{
    mg::gbwt::CachedGbwt cache(world().gbwt(), 4096);
    mg::graph::Handle handle(1, false);
    cache.record(handle);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.record(handle));
    }
}
BENCHMARK(BM_CachedGbwtHit);

void
BM_CachedGbwtMissStream(benchmark::State& state)
{
    // Fresh cache per iteration batch: every access decodes.
    size_t num_nodes = world().graph().numNodes();
    mg::gbwt::CachedGbwt cache(world().gbwt(), 0);
    mg::graph::NodeId id = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.record(mg::graph::Handle(id, false)));
        id = id % num_nodes + 1;
    }
}
BENCHMARK(BM_CachedGbwtMissStream);

void
BM_Minimizers(benchmark::State& state)
{
    const std::string& seq = world().set.pangenome.sequences[0];
    std::string read = seq.substr(0, 150);
    mg::index::MinimizerParams params;
    params.k = 15;
    params.w = 8;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mg::index::minimizersOf(read, params));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Minimizers);

void
BM_FindSeeds(benchmark::State& state)
{
    const auto& reads = world().set.reads.reads;
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mg::map::findSeeds(world().minimizers, reads[i]));
        i = (i + 1) % reads.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FindSeeds);

void
BM_ClusterSeeds(benchmark::State& state)
{
    const auto& entries = capture().entries;
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mg::map::clusterSeeds(
            world().graph(), world().distance, entries[i].seeds,
            mg::map::ClusterParams()));
        i = (i + 1) % entries.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClusterSeeds);

void
BM_MapFromSeeds(benchmark::State& state)
{
    // The proxy's whole critical path, one read at a time.
    mg::map::MapperParams params;
    mg::map::Mapper mapper(world().graph(), world().gbwt(),
                           world().minimizers, world().distance, params);
    auto mapper_state = mapper.makeState();
    const auto& entries = capture().entries;
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapper.mapFromSeeds(
            entries[i].read, entries[i].seeds, *mapper_state));
        i = (i + 1) % entries.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MapFromSeeds);

void
BM_SchedulerDispatch(benchmark::State& state)
{
    auto kind = static_cast<mg::sched::SchedulerKind>(state.range(0));
    auto scheduler = mg::sched::makeScheduler(kind);
    for (auto _ : state) {
        scheduler->run(4096, 64, 4, [](size_t, size_t begin, size_t end) {
            benchmark::DoNotOptimize(begin + end);
        });
    }
    state.SetLabel(mg::sched::schedulerName(kind));
}
BENCHMARK(BM_SchedulerDispatch)->Arg(0)->Arg(1)->Arg(2);

} // namespace

BENCHMARK_MAIN();
