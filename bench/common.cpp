#include "common.h"

#include <cstdio>

namespace mg::bench {

std::unique_ptr<World>
buildWorld(const std::string& input_set, double scale)
{
    auto world = std::make_unique<World>();
    world->set = sim::buildInputSet(sim::inputSetSpec(input_set), scale);
    index::MinimizerParams mparams;
    mparams.k = 15;
    mparams.w = 8;
    world->minimizers =
        index::MinimizerIndex(world->set.pangenome.graph, mparams);
    world->distance = index::DistanceIndex(world->set.pangenome.graph);
    return world;
}

std::vector<std::unique_ptr<World>>
buildAllWorlds(double scale)
{
    std::vector<std::unique_ptr<World>> worlds;
    for (const sim::InputSetSpec& spec : sim::standardInputSets()) {
        worlds.push_back(buildWorld(spec.name, scale));
    }
    return worlds;
}

util::Flags
benchFlags(const std::string& program, const std::string& default_scale)
{
    util::Flags flags(program);
    flags.define("scale", default_scale,
                 "read-count multiplier for every input set")
         .define("csv", "", "also write results to this CSV file");
    return flags;
}

void
banner(const std::string& experiment, const std::string& what)
{
    std::printf("== %s ==\n%s\n\n", experiment.c_str(), what.c_str());
}

std::vector<size_t>
threadSweep(size_t max_threads)
{
    std::vector<size_t> counts;
    for (size_t t = 1; t < max_threads; t *= 2) {
        counts.push_back(t);
    }
    counts.push_back(max_threads);
    return counts;
}

double
paperMemoryRequirementGb(const std::string& input_set)
{
    if (input_set == "A-human") {
        return 32.0;
    }
    if (input_set == "B-yeast") {
        return 40.0;
    }
    if (input_set == "C-HPRC") {
        return 120.0;
    }
    if (input_set == "D-HPRC") {
        return 320.0; // exceeded the paper's 256 GB machines
    }
    throw util::Error("unknown input set: " + input_set);
}

bool
fitsInMemory(const machine::MachineConfig& machine,
             const std::string& input_set)
{
    return static_cast<double>(machine.dramGb) >=
           paperMemoryRequirementGb(input_set);
}

uint64_t
paperReadCount(const std::string& input_set)
{
    // Table III: reads in millions -- A 1.0, B 24.5, C 8.0, D 71.1.
    if (input_set == "A-human") {
        return 1000000ull;
    }
    if (input_set == "B-yeast") {
        return 24500000ull;
    }
    if (input_set == "C-HPRC") {
        return 8000000ull;
    }
    if (input_set == "D-HPRC") {
        return 71100000ull;
    }
    throw util::Error("unknown input set: " + input_set);
}

tune::CapacityProfile
scaleProfileToPaper(const tune::CapacityProfile& p,
                    const std::string& input_set, double subsample)
{
    tune::CapacityProfile out = p;
    double target =
        static_cast<double>(paperReadCount(input_set)) * subsample;
    double factor = target / static_cast<double>(p.numReads);
    out.numReads = static_cast<uint64_t>(target);
    out.hostSeconds *= factor;
    out.anchorHostSeconds *= factor;
    out.anchorModelSeconds *= factor;
    out.work.instructions = static_cast<uint64_t>(
        static_cast<double>(p.work.instructions) * factor);
    out.work.memoryAccesses = static_cast<uint64_t>(
        static_cast<double>(p.work.memoryAccesses) * factor);
    out.work.bytesTouched = static_cast<uint64_t>(
        static_cast<double>(p.work.bytesTouched) * factor);
    for (auto& [name, c] : out.perMachine) {
        (void)name;
        auto scaled = [factor](uint64_t v) {
            return static_cast<uint64_t>(static_cast<double>(v) * factor);
        };
        c.l1Accesses = scaled(c.l1Accesses);
        c.l1Misses = scaled(c.l1Misses);
        c.l2Accesses = scaled(c.l2Accesses);
        c.l2Misses = scaled(c.l2Misses);
        c.llcAccesses = scaled(c.llcAccesses);
        c.llcMisses = scaled(c.llcMisses);
    }
    return out;
}

} // namespace mg::bench
