/**
 * @file
 * Figure 8 analog: makespan across the full parameter cross product for
 * D-HPRC on chi-intel, printed as a heat-map matrix (rows = scheduler x
 * batch size, columns = CachedGBWT capacity).  Paper headlines: a 1.76x
 * spread between the best and worst configurations, and the default
 * parameters among the slowest cells.
 */
#include <cstdio>
#include <vector>

#include "common.h"
#include "tune/autotuner.h"
#include "util/csv.h"
#include "util/str.h"

int
main(int argc, char** argv)
{
    mg::util::Flags flags =
        mg::bench::benchFlags("bench_fig8_heatmap", "0.5");
    flags.define("subsample", "0.1", "fraction of the input set used");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }
    mg::bench::banner("Figure 8 analog",
                      "Makespan (ms) heat map over all configurations, "
                      "D-HPRC on chi-intel");

    double scale = flags.real("scale") * flags.real("subsample");
    auto world = mg::bench::buildWorld("D-HPRC", scale);
    mg::giraffe::ParentEmulator parent = world->parent();
    mg::io::SeedCapture capture =
        parent.capturePreprocessing(world->set.reads);
    mg::tune::Autotuner tuner(world->graph(), world->gbwt(),
                              world->distance, capture);
    mg::tune::SweepSpace space = mg::tune::paperSweepSpace();
    auto profiles = tuner.measureCapacities(space.capacities);
    for (auto& profile : profiles) {
        profile = mg::bench::scaleProfileToPaper(
            profile, "D-HPRC", flags.real("subsample"));
    }
    mg::machine::MachineConfig machine =
        mg::machine::machineByName("chi-intel");
    auto results = tuner.sweep(machine, space, profiles);

    std::unique_ptr<mg::util::CsvWriter> csv;
    if (!flags.str("csv").empty()) {
        csv = std::make_unique<mg::util::CsvWriter>(
            flags.str("csv"),
            std::vector<std::string>{"scheduler", "batch", "capacity",
                                     "makespan_s"});
    }

    std::printf("%-16s", "sched/batch \\ CC");
    for (size_t capacity : space.capacities) {
        std::printf(" %9zu", capacity);
    }
    std::printf("\n");
    double best = 1e300;
    double worst = 0.0;
    for (auto scheduler : space.schedulers) {
        for (size_t batch : space.batchSizes) {
            std::printf("%-16s",
                        (std::string(mg::sched::schedulerName(scheduler)) +
                         "/" + std::to_string(batch)).c_str());
            for (size_t capacity : space.capacities) {
                const auto& cell = mg::tune::Autotuner::find(
                    results,
                    mg::tune::TuneConfig{scheduler, batch, capacity});
                double ms = cell.makespanSeconds * 1e3;
                best = std::min(best, cell.makespanSeconds);
                worst = std::max(worst, cell.makespanSeconds);
                std::printf(" %9.3f", ms);
                if (csv) {
                    csv->row({mg::sched::schedulerName(scheduler),
                              std::to_string(batch),
                              std::to_string(capacity),
                              mg::util::sci(cell.makespanSeconds, 4)});
                }
            }
            std::printf("\n");
        }
    }

    const auto& defaults = mg::tune::Autotuner::find(
        results, mg::tune::defaultConfig());
    std::printf("\nbest %.3f ms, worst %.3f ms -> worst/best %.2fx "
                "(paper: 1.76x avoidable slowdown)\n", best * 1e3,
                worst * 1e3, worst / best);
    std::printf("default config (openmp/512/256): %.3f ms = %.2fx over "
                "best (paper: among the slowest cells)\n",
                defaults.makespanSeconds * 1e3,
                defaults.makespanSeconds / best);
    return 0;
}
