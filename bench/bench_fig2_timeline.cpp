/**
 * @file
 * Figure 2 analog: per-thread region timeline of the parent application
 * mapping the A-human input with 16 threads.  The paper's figure plots
 * every instrumented region occurrence over time; this harness prints a
 * per-thread summary (first activity, last activity, busy fraction, and
 * the region mix) and optionally dumps the raw timestamped records as CSV
 * — the exact data behind such a plot.
 */
#include <algorithm>
#include <cstdio>
#include <map>

#include "common.h"
#include "util/str.h"

int
main(int argc, char** argv)
{
    mg::util::Flags flags =
        mg::bench::benchFlags("bench_fig2_timeline", "1.0");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }
    mg::bench::banner("Figure 2 analog",
                      "Per-thread region activity of the parent emulator "
                      "mapping A-human with 16 threads");

    auto world = mg::bench::buildWorld("A-human", flags.real("scale"));
    mg::giraffe::ParentParams params;
    params.numThreads = 16;
    params.batchSize = 64;
    mg::giraffe::ParentEmulator parent = world->parent(params);

    mg::perf::Profiler profiler;
    mg::giraffe::ParentOutputs outputs =
        parent.run(world->set.reads, &profiler);

    // Aggregate per thread: busy time, span, top regions.
    struct ThreadRow
    {
        uint64_t firstNs = UINT64_MAX;
        uint64_t lastNs = 0;
        uint64_t busyNs = 0;
        std::map<std::string, uint64_t> regionNs;
        uint64_t tasks = 0;
    };
    std::map<size_t, ThreadRow> rows;
    for (const mg::perf::RegionTotal& total : profiler.aggregate()) {
        ThreadRow& row = rows[total.thread];
        // The extend region nests inside process_until_threshold_c; skip
        // it in the busy sum so busy time is not double counted.
        if (total.region != mg::perf::regions::kExtend) {
            row.busyNs += total.totalNanos;
            row.regionNs[total.region] += total.totalNanos;
        }
        row.tasks += total.invocations;
    }
    // First/last timestamps need the raw records; re-derive via CSV dump
    // only when asked.  Span here: run wall time.
    double wall = outputs.wallSeconds;

    std::printf("%-7s %10s %9s %7s   %s\n", "thread", "busy(ms)",
                "busy(%)", "tasks", "top regions");
    for (const auto& [thread, row] : rows) {
        std::vector<std::pair<std::string, uint64_t>> top(
            row.regionNs.begin(), row.regionNs.end());
        std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
            return a.second > b.second;
        });
        std::string mix;
        for (size_t i = 0; i < std::min<size_t>(3, top.size()); ++i) {
            mix += top[i].first + " " +
                   mg::util::fixed(100.0 * static_cast<double>(
                                       top[i].second) /
                                   static_cast<double>(row.busyNs), 0) +
                   "%  ";
        }
        std::printf("%-7zu %10.2f %8.1f%% %7llu   %s\n", thread,
                    static_cast<double>(row.busyNs) * 1e-6,
                    100.0 * static_cast<double>(row.busyNs) /
                        (wall * 1e9),
                    static_cast<unsigned long long>(row.tasks),
                    mix.c_str());
    }
    std::printf("\nwall time %.3f s over %zu threads; every thread runs "
                "every region (as in the paper's Fig. 2)\n", wall,
                rows.size());

    if (!flags.str("csv").empty()) {
        profiler.dumpCsv(flags.str("csv"));
        std::printf("raw timeline records -> %s\n",
                    flags.str("csv").c_str());
    }
    return 0;
}
