/**
 * @file
 * Section VII-B ANOVA analog: quantify each tuning parameter's influence
 * on makespan.  Two analyses are reported:
 *
 *  (1) Measured: the proxy is *actually executed* on the host for every
 *      configuration of the sweep (repeated), and the ANOVA runs on the
 *      measured makespans.  On a single-threaded host run the scheduler
 *      and batch size genuinely cannot matter (only noise), while the
 *      CachedGBWT capacity changes real work — reproducing the paper's
 *      conclusion (capacity significant at p=0.047; batches p=0.878 and
 *      scheduler p=0.859 not).
 *  (2) Modelled: ANOVA over the machine-model sweep for D-HPRC/chi-intel
 *      (deterministic, so p-values are extreme; shown for completeness).
 */
#include <cstdio>

#include "common.h"
#include "util/rng.h"
#include "tune/autotuner.h"
#include "util/csv.h"
#include "util/str.h"

int
main(int argc, char** argv)
{
    mg::util::Flags flags = mg::bench::benchFlags("bench_anova", "0.5");
    flags.define("subsample", "0.1", "fraction of the input set used")
         .define("repetitions", "3", "measured runs per configuration");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }
    mg::bench::banner("Section VII-B ANOVA analog",
                      "Parameter significance on makespan, D-HPRC");

    double scale = flags.real("scale") * flags.real("subsample");
    auto world = mg::bench::buildWorld("D-HPRC", scale);
    mg::giraffe::ParentEmulator parent = world->parent();
    mg::io::SeedCapture capture =
        parent.capturePreprocessing(world->set.reads);
    mg::tune::SweepSpace space = mg::tune::paperSweepSpace();

    // ---- (1) Measured host runs, in randomized order so that slow
    // drift (thermal, page cache) does not masquerade as a factor. ----
    const int reps = static_cast<int>(flags.integer("repetitions"));
    std::vector<mg::tune::TuneConfig> schedule;
    for (auto scheduler : space.schedulers) {
        for (size_t batch : space.batchSizes) {
            for (size_t capacity : space.capacities) {
                for (int rep = 0; rep < reps; ++rep) {
                    schedule.push_back({scheduler, batch, capacity});
                }
            }
        }
    }
    mg::util::Rng rng(12345);
    rng.shuffle(schedule);
    std::vector<mg::tune::ConfigResult> measured;
    for (const mg::tune::TuneConfig& config : schedule) {
        mg::giraffe::ProxyParams params;
        params.scheduler = config.scheduler;
        params.batchSize = config.batchSize;
        params.mapper.gbwtCacheCapacity = config.cacheCapacity;
        params.numThreads = 1;
        mg::giraffe::ProxyRunner proxy(world->graph(), world->gbwt(),
                                       world->distance, params);
        mg::tune::ConfigResult result;
        result.config = config;
        result.makespanSeconds = proxy.run(capture).wallSeconds;
        measured.push_back(result);
    }
    std::printf("(1) measured host makespans (%zu runs):\n%s\n",
                measured.size(),
                mg::stats::formatAnovaTable(
                    mg::tune::Autotuner::anova(measured)).c_str());

    // ---- (2) Modelled sweep on chi-intel. ----
    mg::tune::Autotuner tuner(world->graph(), world->gbwt(),
                              world->distance, capture);
    auto profiles = tuner.measureCapacities(space.capacities);
    for (auto& profile : profiles) {
        profile = mg::bench::scaleProfileToPaper(profile, "D-HPRC",
                                                 flags.real("subsample"));
    }
    auto modelled = tuner.sweep(mg::machine::machineByName("chi-intel"),
                                space, profiles);
    std::printf("(2) modelled chi-intel sweep (deterministic):\n%s\n",
                mg::stats::formatAnovaTable(
                    mg::tune::Autotuner::anova(modelled)).c_str());

    std::printf("paper: capacity p=0.047 (significant); batches p=0.878 "
                "and scheduler p=0.859 (not significant)\n");
    return 0;
}
