/**
 * @file
 * Table IV analog: top-down microarchitecture analysis of the parent
 * mapping the A-human input, modelled on local-intel.  The paper (VTune on
 * a Xeon 8260) reports Front-End 23.5 (latency 10.9), Back-End 22.8
 * (memory 15.6), Bad Speculation 10.2, Retiring 43.4.  Our buckets come
 * from the trace-driven cost model (DESIGN.md documents the substitution);
 * the claim to preserve is the *profile character*: mostly retiring, with
 * meaningful front-end and memory-bound back-end components.
 */
#include <cstdio>

#include "common.h"
#include "machine/cost_model.h"
#include "machine/tracer.h"
#include "util/csv.h"
#include "util/str.h"

int
main(int argc, char** argv)
{
    mg::util::Flags flags =
        mg::bench::benchFlags("bench_table4_topdown", "0.5");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }
    mg::bench::banner("Table IV analog",
                      "Top-down buckets of the parent on A-human "
                      "(modelled on local-intel)");

    auto world = mg::bench::buildWorld("A-human", flags.real("scale"));
    mg::giraffe::ParentEmulator parent = world->parent();
    mg::machine::TraceCounter tracer(mg::machine::paperMachines());
    parent.run(world->set.reads, nullptr, &tracer);

    mg::machine::MachineConfig host =
        mg::machine::machineByName("local-intel");
    mg::machine::CostProfile cost = mg::machine::modelCost(
        host, tracer.work(), tracer.countersFor(host.name));
    mg::machine::TopDownProfile td = mg::machine::modelTopDown(host, cost);

    std::printf("%-18s %10s %10s\n", "bucket", "measured", "paper");
    std::printf("%-18s %9.1f%% %10s\n", "Front-End", td.frontEndPct,
                "23.5");
    std::printf("%-18s %9.1f%% %10s\n", "  (latency)",
                td.frontEndLatencyPct, "10.9");
    std::printf("%-18s %9.1f%% %10s\n", "Back-End", td.backEndPct, "22.8");
    std::printf("%-18s %9.1f%% %10s\n", "  (memory)", td.memoryBoundPct,
                "15.6");
    std::printf("%-18s %9.1f%% %10s\n", "Bad Speculation",
                td.badSpeculationPct, "10.2");
    std::printf("%-18s %9.1f%% %10s\n", "Retiring", td.retiringPct,
                "43.4");
    std::printf("\nmodelled IPC %.2f over %llu traced instructions\n",
                cost.ipc,
                static_cast<unsigned long long>(cost.instructions));

    if (!flags.str("csv").empty()) {
        mg::util::CsvWriter csv(flags.str("csv"), {"bucket", "percent"});
        csv.row({"front_end", mg::util::fixed(td.frontEndPct, 2)});
        csv.row({"front_end_latency",
                 mg::util::fixed(td.frontEndLatencyPct, 2)});
        csv.row({"back_end", mg::util::fixed(td.backEndPct, 2)});
        csv.row({"memory_bound", mg::util::fixed(td.memoryBoundPct, 2)});
        csv.row({"bad_speculation",
                 mg::util::fixed(td.badSpeculationPct, 2)});
        csv.row({"retiring", mg::util::fixed(td.retiringPct, 2)});
    }
    return 0;
}
