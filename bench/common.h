/**
 * @file
 * Shared infrastructure for the benchmark harnesses.  Each harness
 * regenerates one table or figure of the paper (see DESIGN.md's
 * experiment index): it builds the relevant input-set analogs, runs the
 * pipelines, and prints the same rows/series the paper reports — plus an
 * optional CSV for scripting.  A --scale flag shrinks or grows every
 * workload uniformly.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "giraffe/parent.h"
#include "giraffe/proxy.h"
#include "index/distance.h"
#include "index/minimizer.h"
#include "machine/config.h"
#include "sim/input_sets.h"
#include "tune/autotuner.h"
#include "util/flags.h"

namespace mg::bench {

/** One fully built world: input set plus every index and both pipelines. */
struct World
{
    sim::InputSet set;
    index::MinimizerIndex minimizers;
    index::DistanceIndex distance;

    const graph::VariationGraph& graph() const
    {
        return set.pangenome.graph;
    }
    const gbwt::Gbwt& gbwt() const { return set.pangenome.gbwt; }

    giraffe::ParentEmulator
    parent(giraffe::ParentParams params = giraffe::ParentParams()) const
    {
        return giraffe::ParentEmulator(graph(), gbwt(), minimizers,
                                       distance, params);
    }

    giraffe::ProxyRunner
    proxy(giraffe::ProxyParams params = giraffe::ProxyParams()) const
    {
        return giraffe::ProxyRunner(graph(), gbwt(), distance, params);
    }
};

/** Build one input-set analog with all indexes. */
std::unique_ptr<World> buildWorld(const std::string& input_set,
                                  double scale);

/** Build all four input-set analogs. */
std::vector<std::unique_ptr<World>> buildAllWorlds(double scale);

/** Standard bench flags: --scale plus an optional --csv output path. */
util::Flags benchFlags(const std::string& program,
                       const std::string& default_scale = "1.0");

/** Print the harness banner (paper artifact, experiment id). */
void banner(const std::string& experiment, const std::string& what);

/** Thread counts used for scaling curves: 1..max in powers of two. */
std::vector<size_t> threadSweep(size_t max_threads);

/**
 * Peak resident memory (GB) each *paper-scale* input set needs during
 * mapping, taken from the paper's reported behaviour: the smallest input
 * needs 32 GB (artifact appendix) and D-HPRC exceeded the 256 GB machines
 * (Section VII-A).  Used to reproduce the "ran out of memory" cells of
 * Figure 5 / Table VII.
 */
double paperMemoryRequirementGb(const std::string& input_set);

/** True iff the paper-scale input fits in the machine's DRAM. */
bool fitsInMemory(const machine::MachineConfig& machine,
                  const std::string& input_set);

/** Read counts of the paper's Table III (millions of reads, full scale). */
uint64_t paperReadCount(const std::string& input_set);

/**
 * Project a measured per-read profile to the paper's input scale: the
 * paper's figures/tables are taken at full (or 10%-subsampled) input
 * sizes, so the model's work terms are scaled from our laptop-size
 * measurement to the Table III read counts.  Cache *rates* stay as
 * measured; only volumes scale.
 */
tune::CapacityProfile scaleProfileToPaper(const tune::CapacityProfile& p,
                                          const std::string& input_set,
                                          double subsample = 1.0);

} // namespace mg::bench
