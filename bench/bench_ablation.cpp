/**
 * @file
 * Ablation studies of the design choices DESIGN.md calls out.  Not a
 * paper table — these quantify why the system is built the way it is:
 *
 *  A1. Haplotype-consistent extension (the GBWT constraint) vs walking
 *      every graph edge: states explored, time, output volume.
 *  A2. CachedGBWT on vs off: decode volume and critical-path time.
 *  A3. Exact-distance cluster refinement on vs off: cluster quality
 *      (count, spurious merges) and clustering time.
 *  A4. Scheduler policies head-to-head, including the static baseline.
 *  A5. Next-line prefetcher in the cache model.
 *  A6. Minimizer (k, w) parameterization: index size vs seed yield.
 */
#include <cstdio>

#include "common.h"
#include "util/str.h"
#include "util/timer.h"

namespace {

double
timeProxy(const mg::bench::World& world, const mg::io::SeedCapture& capture,
          mg::giraffe::ProxyParams params)
{
    mg::giraffe::ProxyRunner proxy(world.graph(), world.gbwt(),
                                   world.distance, params);
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
        best = std::min(best, proxy.run(capture).wallSeconds);
    }
    return best;
}

} // namespace

int
main(int argc, char** argv)
{
    mg::util::Flags flags = mg::bench::benchFlags("bench_ablation", "0.3");
    if (!flags.parse(argc - 1, argv + 1)) {
        return 0;
    }
    mg::bench::banner("Ablation studies",
                      "Design-choice ablations on C-HPRC (host "
                      "measurements, best of 3)");

    auto world = mg::bench::buildWorld("C-HPRC", flags.real("scale"));
    mg::giraffe::ParentEmulator parent = world->parent();
    mg::io::SeedCapture capture =
        parent.capturePreprocessing(world->set.reads);

    // --- A1: haplotype-consistent extension. -------------------------
    {
        mg::giraffe::ProxyParams consistent;
        mg::giraffe::ProxyParams unconstrained;
        unconstrained.mapper.extend.haplotypeConsistent = false;

        mg::giraffe::ProxyRunner on(world->graph(), world->gbwt(),
                                    world->distance, consistent);
        mg::giraffe::ProxyRunner off(world->graph(), world->gbwt(),
                                     world->distance, unconstrained);
        auto out_on = on.run(capture);
        auto out_off = off.run(capture);
        uint64_t ext_on = 0;
        uint64_t ext_off = 0;
        for (size_t i = 0; i < out_on.extensions.size(); ++i) {
            ext_on += out_on.extensions[i].extensions.size();
            ext_off += out_off.extensions[i].extensions.size();
        }
        std::printf("A1 haplotype-consistent extension\n");
        std::printf("   %-22s %12s %14s %12s\n", "", "time (s)",
                    "GBWT lookups", "extensions");
        std::printf("   %-22s %12.3f %14llu %12llu\n", "GBWT-guided",
                    timeProxy(*world, capture, consistent),
                    static_cast<unsigned long long>(
                        out_on.cacheStats.lookups),
                    static_cast<unsigned long long>(ext_on));
        std::printf("   %-22s %12.3f %14llu %12llu\n", "all graph edges",
                    timeProxy(*world, capture, unconstrained),
                    static_cast<unsigned long long>(
                        out_off.cacheStats.lookups),
                    static_cast<unsigned long long>(ext_off));
        std::printf("   (unconstrained walks can spell recombinant paths "
                    "no haplotype supports)\n\n");
    }

    // --- A2: CachedGBWT on vs off. ------------------------------------
    {
        mg::giraffe::ProxyParams cached;
        mg::giraffe::ProxyParams uncached;
        uncached.mapper.gbwtCacheCapacity = 0;
        mg::giraffe::ProxyRunner off(world->graph(), world->gbwt(),
                                     world->distance, uncached);
        auto out_off = off.run(capture);
        mg::giraffe::ProxyRunner on(world->graph(), world->gbwt(),
                                    world->distance, cached);
        auto out_on = on.run(capture);
        std::printf("A2 CachedGBWT\n");
        std::printf("   %-22s %12s %14s\n", "", "time (s)", "decodes");
        std::printf("   %-22s %12.3f %14llu\n", "cache (capacity 256)",
                    timeProxy(*world, capture, cached),
                    static_cast<unsigned long long>(
                        out_on.cacheStats.decodes));
        std::printf("   %-22s %12.3f %14llu\n", "no cache",
                    timeProxy(*world, capture, uncached),
                    static_cast<unsigned long long>(
                        out_off.cacheStats.decodes));
        std::printf("\n");
    }

    // --- A3: exact-distance cluster refinement. ------------------------
    {
        mg::util::WallTimer timer;
        size_t refined_clusters = 0;
        size_t sweep_clusters = 0;
        mg::map::ClusterParams with;
        mg::map::ClusterParams without;
        without.exactRefinement = false;

        timer.reset();
        for (const auto& entry : capture.entries) {
            refined_clusters +=
                mg::map::clusterSeeds(world->graph(), world->distance,
                                      entry.seeds, with).size();
        }
        double refined_seconds = timer.seconds();
        timer.reset();
        for (const auto& entry : capture.entries) {
            sweep_clusters +=
                mg::map::clusterSeeds(world->graph(), world->distance,
                                      entry.seeds, without).size();
        }
        double sweep_seconds = timer.seconds();
        std::printf("A3 exact-distance cluster refinement\n");
        std::printf("   %-22s %12s %12s\n", "", "time (s)", "clusters");
        std::printf("   %-22s %12.3f %12zu\n", "with refinement",
                    refined_seconds, refined_clusters);
        std::printf("   %-22s %12.3f %12zu\n", "sweep only",
                    sweep_seconds, sweep_clusters);
        std::printf("   (refinement splits coordinate-coincident but "
                    "unreachable seed groups)\n\n");
    }

    // --- A4: scheduler policies head-to-head (4 threads, host). --------
    {
        std::printf("A4 scheduler policies (host, 4 threads, batch 64)\n");
        std::printf("   %-22s %12s\n", "", "time (s)");
        for (auto kind : {mg::sched::SchedulerKind::OmpDynamic,
                          mg::sched::SchedulerKind::VgBatch,
                          mg::sched::SchedulerKind::WorkStealing,
                          mg::sched::SchedulerKind::Static}) {
            mg::giraffe::ProxyParams params;
            params.scheduler = kind;
            params.numThreads = 4;
            params.batchSize = 64;
            std::printf("   %-22s %12.3f\n",
                        mg::sched::schedulerName(kind),
                        timeProxy(*world, capture, params));
        }
        std::printf("\n");
    }

    // --- A5: next-line prefetcher in the cache model. -------------------
    {
        mg::machine::MachineConfig base =
            mg::machine::machineByName("local-intel");
        mg::machine::MachineConfig with_pf = base;
        with_pf.nextLinePrefetcher = true;
        mg::machine::TraceCounter tracer({base, with_pf});
        mg::giraffe::ProxyRunner proxy(world->graph(), world->gbwt(),
                                       world->distance,
                                       mg::giraffe::ProxyParams());
        proxy.run(capture, nullptr, &tracer);
        const auto& plain = tracer.counters(0);
        const auto& pf = tracer.counters(1);
        std::printf("A5 next-line prefetcher (local-intel cache model)\n");
        std::printf("   %-22s %12s %12s %12s\n", "", "L1 misses",
                    "LLC misses", "prefetches");
        std::printf("   %-22s %12llu %12llu %12llu\n", "demand only",
                    static_cast<unsigned long long>(plain.l1Misses),
                    static_cast<unsigned long long>(plain.llcMisses),
                    static_cast<unsigned long long>(plain.prefetches));
        std::printf("   %-22s %12llu %12llu %12llu\n", "with prefetcher",
                    static_cast<unsigned long long>(pf.l1Misses),
                    static_cast<unsigned long long>(pf.llcMisses),
                    static_cast<unsigned long long>(pf.prefetches));
        std::printf("\n");
    }

    // --- A6: minimizer parameterization. -------------------------------
    {
        std::printf("A6 minimizer (k, w) parameterization\n");
        std::printf("   %4s %4s %12s %12s %14s\n", "k", "w", "index keys",
                    "entries", "seeds/read");
        for (auto [k, w] : {std::pair<int, int>{11, 6},
                            {15, 8},
                            {19, 11},
                            {25, 14}}) {
            mg::index::MinimizerParams params;
            params.k = k;
            params.w = w;
            mg::index::MinimizerIndex index(world->graph(), params);
            uint64_t seeds = 0;
            size_t probe = std::min<size_t>(200, world->set.reads.size());
            for (size_t i = 0; i < probe; ++i) {
                seeds += mg::map::findSeeds(index,
                                            world->set.reads.reads[i])
                             .size();
            }
            std::printf("   %4d %4d %12zu %12zu %14.1f\n", k, w,
                        index.numKeys(), index.numEntries(),
                        static_cast<double>(seeds) /
                            static_cast<double>(probe));
        }
    }
    return 0;
}
