/**
 * mgd end-to-end tests: a real daemon on a real Unix socket, exercised
 * through the real client.  Mapping through the service is byte-identical
 * to mapping through a MapSession directly; deterministic budget caps
 * degrade (dg:Z:) identically across runs; overload is answered with
 * RETRY_AFTER, never silence; graceful drain answers or sheds every
 * admitted request and the accounting proves it; per-tenant metrics add
 * up against client-side ground truth.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "giraffe/session.h"
#include "io/fd.h"
#include "io/file.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "sim/pangenome_gen.h"
#include "sim/read_sim.h"

namespace mg::serve {
namespace {

class ServeFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fault::disarmAll();
        sim::PangenomeParams pparams;
        pparams.seed = 501;
        pparams.backboneLength = 6000;
        pparams.haplotypes = 4;
        pg_ = sim::generatePangenome(pparams);

        index::MinimizerParams mparams;
        mparams.k = 15;
        mparams.w = 8;
        minimizers_ = index::MinimizerIndex(pg_.graph, mparams);
        distance_ = index::DistanceIndex(pg_.graph);

        sim::ReadSimParams rparams;
        rparams.seed = 502;
        rparams.count = 48;
        rparams.readLength = 100;
        rparams.errorRate = 0.005;
        reads_ = sim::simulateReads(pg_, rparams).reads;
    }

    void TearDown() override { fault::disarmAll(); }

    std::string
    socketPath(const std::string& name) const
    {
        return std::string(::testing::TempDir()) + "/" + name + ".sock";
    }

    DaemonParams
    daemonParams(const std::string& name) const
    {
        DaemonParams params;
        params.socketPath = socketPath(name);
        params.workers = 2;
        params.queueCapacity = 8;
        params.watchdogParams.stallSeconds = 2.0;
        return params;
    }

    std::unique_ptr<Daemon>
    makeDaemon(DaemonParams params) const
    {
        return std::make_unique<Daemon>(pg_.graph, pg_.gbwt, minimizers_,
                                        distance_, std::move(params));
    }

    ClientParams
    clientParams(const std::string& name) const
    {
        ClientParams params;
        params.socketPath = socketPath(name);
        params.backoffBaseMillis = 2;
        params.backoffCapMillis = 50;
        return params;
    }

    std::vector<map::Read>
    slice(size_t begin, size_t count) const
    {
        return std::vector<map::Read>(reads_.begin() + begin,
                                      reads_.begin() + begin + count);
    }

    sim::GeneratedPangenome pg_;
    index::MinimizerIndex minimizers_;
    index::DistanceIndex distance_;
    std::vector<map::Read> reads_;
};

TEST_F(ServeFixture, MapsExactlyLikeDirectSession)
{
    DaemonParams dparams = daemonParams("basic");
    std::unique_ptr<Daemon> daemon = makeDaemon(dparams);
    daemon->start();

    Client client(clientParams("basic"));
    Response response;
    util::Status status =
        client.mapReads("", slice(0, 16), resilience::WorkBudget{},
                        response);
    ASSERT_TRUE(status.ok()) << status.toString();
    ASSERT_EQ(response.status, ResponseStatus::Ok);

    // Ground truth: the same reads through a MapSession directly.
    giraffe::MapSession session(pg_.graph, pg_.gbwt, minimizers_,
                                distance_, giraffe::SessionParams{});
    giraffe::SessionResult direct =
        session.map(0, slice(0, 16), resilience::WorkBudget{});

    EXPECT_EQ(response.gaf, direct.gaf);
    EXPECT_EQ(response.mappedReads, direct.mappedReads);
    EXPECT_EQ(response.degradedReads, direct.degradedReads);
    EXPECT_GT(response.mappedReads, 0u);

    daemon->stop();
    EXPECT_EQ(daemon->state(), DaemonState::Stopped);
    EXPECT_EQ(daemon->report().accepted, 1u);
    EXPECT_EQ(daemon->report().completed, 1u);
}

TEST_F(ServeFixture, StepCapDegradesDeterministicallyAcrossRuns)
{
    std::string first;
    for (int run = 0; run < 2; ++run) {
        DaemonParams dparams = daemonParams("degraded");
        std::unique_ptr<Daemon> daemon = makeDaemon(dparams);
        daemon->start();

        Client client(clientParams("degraded"));
        resilience::WorkBudget budget;
        budget.maxExtendSteps = 1; // brutal, deterministic cap
        Response response;
        util::Status status =
            client.mapReads("", slice(0, 12), budget, response);
        ASSERT_TRUE(status.ok()) << status.toString();
        ASSERT_EQ(response.status, ResponseStatus::Ok);
        EXPECT_GT(response.degradedReads, 0u);
        EXPECT_NE(response.gaf.find("dg:Z:"), std::string::npos);
        daemon->stop();

        if (run == 0) {
            first = response.gaf;
        } else {
            EXPECT_EQ(response.gaf, first); // byte-reproducible
        }
    }
}

TEST_F(ServeFixture, MalformedAndOversizedRequestsGetStructuredErrors)
{
    DaemonParams dparams = daemonParams("errors");
    dparams.maxReadsPerRequest = 4;
    std::unique_ptr<Daemon> daemon = makeDaemon(dparams);
    daemon->start();

    Client client(clientParams("errors"));

    // Unknown tenant: Error, not a dropped connection.
    Response response;
    Request request;
    request.id = client.nextId();
    request.tenant = "nonexistent";
    request.reads = slice(0, 2);
    ASSERT_TRUE(client.call(request, response).ok());
    EXPECT_EQ(response.status, ResponseStatus::Error);
    EXPECT_NE(response.message.find("tenant"), std::string::npos);

    // Too many reads: Error naming the limit's existence.
    Request big;
    big.id = client.nextId();
    big.reads = slice(0, 8);
    ASSERT_TRUE(client.call(big, response).ok());
    EXPECT_EQ(response.status, ResponseStatus::Error);

    // The connection is still serviceable afterwards.
    ASSERT_TRUE(client
                    .mapReads("", slice(0, 2), resilience::WorkBudget{},
                              response)
                    .ok());
    EXPECT_EQ(response.status, ResponseStatus::Ok);
    daemon->stop();
}

/**
 * Overload: one worker, a queue of 2, and a pipelined burst of requests
 * written back-to-back before any response is read.  Some must come back
 * RETRY_AFTER with a nonzero hint; every request gets *some* response
 * (the leak-free invariant); the daemon's accounting matches.
 */
TEST_F(ServeFixture, OverloadShedsWithRetryAfterAndAnswersEverything)
{
    DaemonParams dparams = daemonParams("overload");
    dparams.workers = 1;
    dparams.queueCapacity = 2;
    std::unique_ptr<Daemon> daemon = makeDaemon(dparams);
    daemon->start();

    constexpr uint64_t kBurst = 12;
    int fd = io::connectUnix(socketPath("overload"));
    for (uint64_t id = 1; id <= kBurst; ++id) {
        Request request;
        request.id = id;
        request.reads = slice(0, 24);
        ASSERT_TRUE(writeFrame(fd, encodeRequest(request)).ok());
    }
    uint64_t ok = 0;
    uint64_t shed = 0;
    std::vector<bool> answered(kBurst + 1, false);
    for (uint64_t i = 0; i < kBurst; ++i) {
        std::vector<uint8_t> payload;
        ASSERT_TRUE(readFrame(fd, payload).ok());
        Response response;
        ASSERT_TRUE(decodeResponse(payload, response).ok());
        ASSERT_GE(response.id, 1u);
        ASSERT_LE(response.id, kBurst);
        EXPECT_FALSE(answered[response.id]); // exactly one response each
        answered[response.id] = true;
        if (response.status == ResponseStatus::Ok) {
            ++ok;
        } else {
            ASSERT_EQ(response.status, ResponseStatus::RetryAfter);
            EXPECT_GT(response.retryAfterMillis, 0u);
            ++shed;
        }
    }
    ::close(fd);

    EXPECT_EQ(ok + shed, kBurst);
    EXPECT_GT(shed, 0u) << "burst was supposed to overwhelm the queue";
    EXPECT_GT(ok, 0u);

    daemon->stop();
    EXPECT_EQ(daemon->report().accepted, ok);
    EXPECT_EQ(daemon->report().completed, ok);
    EXPECT_EQ(daemon->report().shed, shed);

    // The registry agrees with the wire-level ground truth.
    const obs::Snapshot snapshot = daemon->hub().registry().snapshot();
    EXPECT_EQ(snapshot.valueOf("mg_serve_requests_total"), kBurst);
    EXPECT_EQ(
        snapshot.valueOf("mg_serve_accepted_total{tenant=\"default\"}"),
        ok);
    EXPECT_EQ(snapshot.valueOf("mg_serve_shed_total{tenant=\"default\"}"),
              shed);
}

TEST_F(ServeFixture, PerTenantMetricsMatchClientGroundTruth)
{
    DaemonParams dparams = daemonParams("tenants");
    TenantConfig gold;
    gold.name = "gold";
    gold.weight = 3;
    TenantConfig free_tier;
    free_tier.name = "free";
    free_tier.weight = 1;
    dparams.tenants = { gold, free_tier };
    std::unique_ptr<Daemon> daemon = makeDaemon(dparams);
    daemon->start();

    std::thread gold_client([&] {
        Client client(clientParams("tenants"));
        for (int i = 0; i < 6; ++i) {
            Response response;
            ASSERT_TRUE(client
                            .mapReads("gold", slice(0, 4),
                                      resilience::WorkBudget{}, response)
                            .ok());
            EXPECT_EQ(response.status, ResponseStatus::Ok);
        }
    });
    Client client(clientParams("tenants"));
    for (int i = 0; i < 3; ++i) {
        Response response;
        ASSERT_TRUE(client
                        .mapReads("free", slice(4, 4),
                                  resilience::WorkBudget{}, response)
                        .ok());
        EXPECT_EQ(response.status, ResponseStatus::Ok);
    }
    gold_client.join();
    daemon->stop();

    const obs::Snapshot snapshot = daemon->hub().registry().snapshot();
    EXPECT_EQ(snapshot.valueOf("mg_serve_accepted_total{tenant=\"gold\"}"),
              6u);
    EXPECT_EQ(
        snapshot.valueOf("mg_serve_completed_total{tenant=\"gold\"}"), 6u);
    EXPECT_EQ(snapshot.valueOf("mg_serve_accepted_total{tenant=\"free\"}"),
              3u);
    EXPECT_EQ(daemon->report().accepted, 9u);
    EXPECT_EQ(daemon->report().completed, 9u);
}

TEST_F(ServeFixture, DrainAnswersShuttingDownAndStopsClean)
{
    DaemonParams dparams = daemonParams("drain");
    std::unique_ptr<Daemon> daemon = makeDaemon(dparams);
    daemon->start();
    EXPECT_EQ(daemon->state(), DaemonState::Running);

    // A request before the drain maps normally.
    Client client(clientParams("drain"));
    Response response;
    ASSERT_TRUE(client
                    .mapReads("", slice(0, 4), resilience::WorkBudget{},
                              response)
                    .ok());
    EXPECT_EQ(response.status, ResponseStatus::Ok);

    daemon->requestDrain();
    EXPECT_EQ(daemon->state(), DaemonState::Draining);

    // New work on the existing connection is refused with ShuttingDown
    // (the one-shot call shows the raw verdict the retry loop would see).
    Request request;
    request.id = client.nextId();
    request.reads = slice(0, 2);
    util::Status status = client.call(request, response);
    if (status.ok()) {
        EXPECT_EQ(response.status, ResponseStatus::ShuttingDown);
        EXPECT_GT(response.retryAfterMillis, 0u);
    } // else: the daemon already tore the connection down — also valid.

    daemon->stop();
    EXPECT_EQ(daemon->state(), DaemonState::Stopped);
    EXPECT_TRUE(daemon->report().drainClean);
    EXPECT_EQ(daemon->report().accepted, daemon->report().completed);

    // The socket is unlinked: a fresh connect must fail.
    EXPECT_THROW(io::connectUnix(socketPath("drain")), util::Error);
}

TEST_F(ServeFixture, ClientRetriesThenReportsExhaustion)
{
    DaemonParams dparams = daemonParams("exhaust");
    std::unique_ptr<Daemon> daemon = makeDaemon(dparams);
    daemon->start();
    daemon->requestDrain(); // permanently ShuttingDown from the client's view

    ClientParams cparams = clientParams("exhaust");
    cparams.maxAttempts = 3;
    Client client(cparams);
    Response response;
    util::Status status = client.mapReads(
        "", slice(0, 2), resilience::WorkBudget{}, response);
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code, util::StatusCode::ResourceExhausted);
    EXPECT_EQ(client.stats().exhausted, 1u);
    EXPECT_GT(client.stats().retries, 0u);
    daemon->stop();
}

/** Ids on the wire stay strictly monotone even across retry attempts —
 *  the invariant mg_verify checks on .mgreq captures. */
TEST_F(ServeFixture, CaptureFilesValidateAfterRetries)
{
    DaemonParams dparams = daemonParams("capture");
    std::unique_ptr<Daemon> daemon = makeDaemon(dparams);
    daemon->start();

    ClientParams cparams = clientParams("capture");
    cparams.capturePrefix =
        std::string(::testing::TempDir()) + "/serve_capture";
    {
        Client client(cparams);
        Response response;
        for (int i = 0; i < 3; ++i) {
            ASSERT_TRUE(client
                            .mapReads("", slice(0, 2),
                                      resilience::WorkBudget{}, response)
                            .ok());
        }
    }
    daemon->stop();

    std::vector<uint8_t> req_bytes =
        io::readFileBytes(cparams.capturePrefix + ".mgreq");
    std::vector<std::vector<uint8_t>> frames =
        parseFrameStream(req_bytes, "serve_capture.mgreq");
    ASSERT_EQ(frames.size(), 3u);
    uint64_t prev = 0;
    for (const std::vector<uint8_t>& payload : frames) {
        Request request;
        ASSERT_TRUE(decodeRequest(payload, request).ok());
        EXPECT_GT(request.id, prev);
        prev = request.id;
    }
    std::vector<uint8_t> resp_bytes =
        io::readFileBytes(cparams.capturePrefix + ".mgresp");
    EXPECT_EQ(parseFrameStream(resp_bytes, "serve_capture.mgresp").size(),
              3u);
}

} // namespace
} // namespace mg::serve
