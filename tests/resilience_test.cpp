/**
 * mg::resilience tests: deterministic budget caps with degraded-GAF
 * tagging, watchdog stall detection and cooperative batch cancellation,
 * the retry/bisect stats double-count regression, and FailureReport
 * determinism across schedulers.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "giraffe/parent.h"
#include "io/gaf.h"
#include "resilience/budget.h"
#include "sched/watchdog.h"
#include "sim/pangenome_gen.h"
#include "sim/read_sim.h"

namespace mg::resilience {
namespace {

// ------------------------------------------------------------------ units

TEST(CancelTokenTest, FirstReasonWinsUntilReset)
{
    CancelToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_EQ(token.reason(), CancelReason::None);

    token.cancel(CancelReason::Watchdog);
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.reason(), CancelReason::Watchdog);

    token.cancel(CancelReason::Deadline); // loses: first reason sticks
    EXPECT_EQ(token.reason(), CancelReason::Watchdog);

    token.reset();
    EXPECT_FALSE(token.cancelled());
    token.cancel(CancelReason::Deadline);
    EXPECT_EQ(token.reason(), CancelReason::Deadline);
}

TEST(ReadBudgetTest, InactiveBudgetChargesNothing)
{
    ReadBudget budget;
    budget.beginRead();
    EXPECT_FALSE(budget.active());
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(budget.chargeStep());
        budget.chargeLookup();
    }
    EXPECT_FALSE(budget.exhausted());
    EXPECT_EQ(budget.steps(), 0u);
    EXPECT_EQ(budget.lookups(), 0u);
}

TEST(ReadBudgetTest, StepCapFiresDeterministically)
{
    WorkBudget limits;
    limits.maxExtendSteps = 3;
    ReadBudget budget;
    budget.configure(limits, 0, nullptr);

    budget.beginRead();
    EXPECT_FALSE(budget.chargeStep());
    EXPECT_FALSE(budget.chargeStep());
    EXPECT_FALSE(budget.chargeStep());
    EXPECT_TRUE(budget.chargeStep()); // 4th state exceeds the cap of 3
    EXPECT_TRUE(budget.exhausted());
    EXPECT_EQ(budget.reason(), CancelReason::StepCap);
    // Once fired, every later point reports the same verdict.
    EXPECT_TRUE(budget.chargeStep());

    // The next read starts from a clean slate.
    budget.beginRead();
    EXPECT_FALSE(budget.exhausted());
    EXPECT_FALSE(budget.chargeStep());
}

TEST(ReadBudgetTest, LookupCapEnforcedAtNextStep)
{
    WorkBudget limits;
    limits.maxGbwtLookups = 2;
    ReadBudget budget;
    budget.configure(limits, 0, nullptr);

    budget.beginRead();
    budget.chargeLookup();
    budget.chargeLookup();
    EXPECT_FALSE(budget.chargeStep()); // at the cap, not over it
    budget.chargeLookup();
    EXPECT_TRUE(budget.chargeStep());
    EXPECT_EQ(budget.reason(), CancelReason::LookupCap);
}

TEST(ReadBudgetTest, FiredTokenDegradesFromBeginRead)
{
    CancelToken token;
    token.cancel(CancelReason::Watchdog);
    ReadBudget budget;
    budget.configure(WorkBudget{}, 0, &token);

    budget.beginRead();
    EXPECT_TRUE(budget.exhausted());
    EXPECT_EQ(budget.reason(), CancelReason::Watchdog);
    EXPECT_TRUE(budget.chargeStep());
}

TEST(ResilienceStatsTest, SummaryCountsAndNames)
{
    ResilienceStats stats;
    EXPECT_EQ(stats.summary(),
              "0 degraded (deadline 0, step-cap 0, lookup-cap 0, "
              "watchdog 0)");
    stats.countDegraded(CancelReason::Deadline);
    stats.countDegraded(CancelReason::StepCap);
    stats.countDegraded(CancelReason::StepCap);
    stats.countDegraded(CancelReason::None); // no-op
    EXPECT_EQ(stats.degradedReads(), 3u);
    std::string summary = stats.summary();
    EXPECT_NE(summary.find("deadline 1"), std::string::npos);
    EXPECT_NE(summary.find("step-cap 2"), std::string::npos);
}

TEST(WatchdogTest, CancelsAStalledSlotOnce)
{
    sched::HeartbeatBoard board(2);
    board.beginBatch(0, 10, 20); // stalls below
    board.beginBatch(1, 20, 30);

    sched::WatchdogParams params;
    params.stallSeconds = 0.05;
    params.pollMillis = 5.0;
    sched::Watchdog watchdog(board, params);
    watchdog.start();

    // Worker 1 keeps beating; worker 0 goes silent past the threshold.
    for (int i = 0; i < 20; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        board.beat(1);
    }
    watchdog.stop();

    ASSERT_EQ(watchdog.events().size(), 1u); // fires once per batch
    EXPECT_EQ(watchdog.events()[0].worker, 0u);
    EXPECT_EQ(watchdog.events()[0].batchBegin, 10u);
    EXPECT_EQ(watchdog.events()[0].batchEnd, 20u);
    EXPECT_EQ(board.slot(0).token.reason(), CancelReason::Watchdog);
    EXPECT_FALSE(board.slot(1).token.cancelled());
}

TEST(WatchdogTest, IdleSlotsNeverStall)
{
    sched::HeartbeatBoard board(1);
    board.beginBatch(0, 0, 8);
    board.endBatch(0); // parked

    sched::WatchdogParams params;
    params.stallSeconds = 0.02;
    params.pollMillis = 5.0;
    sched::Watchdog watchdog(board, params);
    watchdog.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    watchdog.stop();

    EXPECT_TRUE(watchdog.events().empty());
    EXPECT_FALSE(board.slot(0).token.cancelled());
}

// ------------------------------------------------------------ end-to-end

/** Small mapping world shared by the pipeline tests. */
class ResiliencePipelineFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fault::disarmAll();
        sim::PangenomeParams pparams;
        pparams.seed = 911;
        pparams.backboneLength = 8000;
        pparams.haplotypes = 4;
        pg_ = sim::generatePangenome(pparams);

        index::MinimizerParams mparams;
        mparams.k = 15;
        mparams.w = 8;
        minimizers_ = index::MinimizerIndex(pg_.graph, mparams);
        distance_ = index::DistanceIndex(pg_.graph);

        sim::ReadSimParams rparams;
        rparams.seed = 912;
        rparams.count = 80;
        rparams.readLength = 100;
        rparams.errorRate = 0.005;
        reads_ = sim::simulateReads(pg_, rparams);
    }

    void TearDown() override { fault::disarmAll(); }

    giraffe::ParentOutputs
    runParent(const giraffe::ParentParams& params) const
    {
        giraffe::ParentEmulator parent(pg_.graph, pg_.gbwt, minimizers_,
                                       distance_, params);
        return parent.run(reads_);
    }

    giraffe::ParentParams
    baseParams(size_t threads = 2) const
    {
        giraffe::ParentParams params;
        params.numThreads = threads;
        params.batchSize = 8;
        return params;
    }

    sim::GeneratedPangenome pg_;
    index::MinimizerIndex minimizers_;
    index::DistanceIndex distance_;
    map::ReadSet reads_;
};

TEST_F(ResiliencePipelineFixture, StepCapIsDeterministicAndTagged)
{
    giraffe::ParentParams params = baseParams();
    params.budget.maxExtendSteps = 2; // brutal: most reads hit the cap

    giraffe::ParentOutputs first = runParent(params);
    giraffe::ParentOutputs second = runParent(params);

    EXPECT_GT(first.resilience.stepCapHits, 0u);
    EXPECT_EQ(first.resilience.stepCapHits, second.resilience.stepCapHits);
    EXPECT_EQ(first.resilience.degradedReads(),
              second.resilience.degradedReads());

    // The per-alignment tags agree with the counters, and the GAF carries
    // them: a deterministic cap is a pure function of the read.
    size_t tagged = 0;
    for (size_t i = 0; i < first.alignments.size(); ++i) {
        EXPECT_EQ(first.alignments[i].degraded,
                  second.alignments[i].degraded);
        tagged += first.alignments[i].degraded != CancelReason::None;
    }
    EXPECT_EQ(tagged, first.resilience.degradedReads());

    std::string gaf = io::formatGaf(first.alignments, reads_, pg_.graph);
    EXPECT_NE(gaf.find("\tdg:Z:step-cap"), std::string::npos);
    EXPECT_EQ(gaf, io::formatGaf(second.alignments, reads_, pg_.graph));

    // No read is lost: one GAF line per read, capped or not.
    EXPECT_EQ(static_cast<size_t>(
                  std::count(gaf.begin(), gaf.end(), '\n')),
              reads_.size());
}

TEST_F(ResiliencePipelineFixture, LookupCapDegradesReads)
{
    giraffe::ParentParams params = baseParams();
    params.budget.maxGbwtLookups = 1;
    giraffe::ParentOutputs outputs = runParent(params);

    EXPECT_GT(outputs.resilience.lookupCapHits, 0u);
    std::string gaf = io::formatGaf(outputs.alignments, reads_, pg_.graph);
    EXPECT_NE(gaf.find("\tdg:Z:lookup-cap"), std::string::npos);
}

TEST_F(ResiliencePipelineFixture, ExpiredDeadlineDegradesEveryRead)
{
    giraffe::ParentParams params = baseParams();
    params.budget.wallSeconds = 1e-9; // expires before the first read
    giraffe::ParentOutputs outputs = runParent(params);

    // Every read passes its beginRead() deadline check, degrades to
    // best-so-far, and the run still terminates with all reads present.
    EXPECT_EQ(outputs.resilience.deadlineHits, reads_.size());
    EXPECT_EQ(outputs.alignments.size(), reads_.size());
    std::string gaf = io::formatGaf(outputs.alignments, reads_, pg_.graph);
    EXPECT_NE(gaf.find("\tdg:Z:deadline"), std::string::npos);
}

TEST_F(ResiliencePipelineFixture, UnlimitedBudgetDegradesNothing)
{
    giraffe::ParentOutputs outputs = runParent(baseParams());
    EXPECT_EQ(outputs.resilience.degradedReads(), 0u);
    EXPECT_EQ(outputs.resilience.latency.count(), reads_.size());
    std::string gaf = io::formatGaf(outputs.alignments, reads_, pg_.graph);
    EXPECT_EQ(gaf.find("dg:Z:"), std::string::npos);
}

TEST_F(ResiliencePipelineFixture, WatchdogCancelsAStalledBatch)
{
    // One injected 400 ms stall inside mapFromSeeds; the watchdog's
    // threshold is 50 ms, so it must cancel the stalled worker's batch
    // while the other worker keeps mapping.
    fault::armFromText("map.read=stall,stall=400,limit=1");
    giraffe::ParentParams params = baseParams();
    params.watchdog = true;
    params.watchdogParams.stallSeconds = 0.05;
    params.watchdogParams.pollMillis = 5.0;
    giraffe::ParentOutputs outputs = runParent(params);

    EXPECT_GE(outputs.failures.watchdogCancels, 1u);
    EXPECT_GT(outputs.resilience.watchdogCancels, 0u);
    // A cancelled batch completes degraded; it is not a failure.
    EXPECT_TRUE(outputs.failures.batches.empty());
    EXPECT_TRUE(outputs.failures.poisoned.empty());
    EXPECT_NE(outputs.failures.summary().find("watchdog"),
              std::string::npos);

    // No reads lost or left unmapped-by-accident: every read has its
    // alignment slot and the GAF tags the degraded ones.
    ASSERT_EQ(outputs.alignments.size(), reads_.size());
    std::string gaf = io::formatGaf(outputs.alignments, reads_, pg_.graph);
    EXPECT_EQ(static_cast<size_t>(
                  std::count(gaf.begin(), gaf.end(), '\n')),
              reads_.size());
    EXPECT_NE(gaf.find("\tdg:Z:watchdog"), std::string::npos);
}

TEST_F(ResiliencePipelineFixture, WatchdogIdlesOnAHealthyRun)
{
    giraffe::ParentParams params = baseParams();
    params.watchdog = true; // default 5 s threshold never trips here
    giraffe::ParentOutputs guarded = runParent(params);
    giraffe::ParentOutputs plain = runParent(baseParams());

    EXPECT_EQ(guarded.failures.watchdogCancels, 0u);
    EXPECT_EQ(guarded.resilience.degradedReads(), 0u);
    EXPECT_EQ(io::formatGaf(guarded.alignments, reads_, pg_.graph),
              io::formatGaf(plain.alignments, reads_, pg_.graph));
}

TEST_F(ResiliencePipelineFixture, RetriedBatchesCountStatsOnce)
{
    // Regression: runGuarded retries a failed batch, and bisection may
    // re-run healthy batchmates; before the snapshot/restore fix every
    // attempt leaked its cache and degradation counters into the totals.
    giraffe::ParentParams params = baseParams(/*threads=*/1);
    params.budget.maxExtendSteps = 16; // nonzero degradation counters too
    giraffe::ParentOutputs baseline = runParent(params);
    ASSERT_TRUE(baseline.failures.ok());

    fault::armFromText("sched.worker=throw,limit=3");
    giraffe::ParentOutputs faulted = runParent(params);
    ASSERT_EQ(faulted.failures.batches.size(), 3u);
    for (const sched::BatchFailure& failure : faulted.failures.batches) {
        EXPECT_TRUE(failure.recovered);
    }

    // The retried run's aggregate stats equal the clean run's exactly:
    // failed attempts contribute nothing, retries count once.
    EXPECT_EQ(faulted.cacheStats.lookups, baseline.cacheStats.lookups);
    EXPECT_EQ(faulted.cacheStats.hits, baseline.cacheStats.hits);
    EXPECT_EQ(faulted.cacheStats.decodes, baseline.cacheStats.decodes);
    EXPECT_EQ(faulted.resilience.stepCapHits,
              baseline.resilience.stepCapHits);
    EXPECT_EQ(faulted.resilience.degradedReads(),
              baseline.resilience.degradedReads());
    EXPECT_EQ(faulted.resilience.latency.count(),
              baseline.resilience.latency.count());
}

TEST_F(ResiliencePipelineFixture, FailureReportIsSortedOnEveryScheduler)
{
    const sched::SchedulerKind kinds[] = {
        sched::SchedulerKind::OmpDynamic,
        sched::SchedulerKind::VgBatch,
        sched::SchedulerKind::WorkStealing,
    };
    for (sched::SchedulerKind kind : kinds) {
        fault::disarmAll();
        // Persistent poison on a spread of reads: several batches fail
        // and bisect, in a thread-dependent order.
        fault::armFromText("map.read=throw,after=50");
        giraffe::ParentParams params = baseParams(/*threads=*/4);
        params.scheduler = kind;
        giraffe::ParentOutputs outputs = runParent(params);

        ASSERT_FALSE(outputs.failures.ok())
            << sched::schedulerName(kind);
        EXPECT_TRUE(std::is_sorted(
            outputs.failures.batches.begin(),
            outputs.failures.batches.end(),
            [](const sched::BatchFailure& a, const sched::BatchFailure& b) {
                return a.begin != b.begin ? a.begin < b.begin
                                          : a.end < b.end;
            }))
            << sched::schedulerName(kind);
        EXPECT_TRUE(std::is_sorted(
            outputs.failures.poisoned.begin(),
            outputs.failures.poisoned.end(),
            [](const sched::ItemFailure& a, const sched::ItemFailure& b) {
                return a.index < b.index;
            }))
            << sched::schedulerName(kind);
    }
}

} // namespace
} // namespace mg::resilience
