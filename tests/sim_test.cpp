/** Tests for the synthetic pangenome and read simulators. */
#include <gtest/gtest.h>

#include <set>

#include "sim/input_sets.h"
#include "sim/pangenome_gen.h"
#include "sim/read_sim.h"
#include "util/common.h"
#include "util/dna.h"

namespace mg::sim {
namespace {

TEST(PangenomeGenTest, DeterministicForSameSeed)
{
    PangenomeParams params;
    params.seed = 5;
    params.backboneLength = 2000;
    params.haplotypes = 4;
    GeneratedPangenome a = generatePangenome(params);
    GeneratedPangenome b = generatePangenome(params);
    ASSERT_EQ(a.graph.numNodes(), b.graph.numNodes());
    for (graph::NodeId id = 1; id <= a.graph.numNodes(); ++id) {
        ASSERT_EQ(a.graph.forwardSequence(id), b.graph.forwardSequence(id));
    }
    ASSERT_EQ(a.walks, b.walks);
}

TEST(PangenomeGenTest, DifferentSeedsDiffer)
{
    PangenomeParams params;
    params.backboneLength = 2000;
    params.haplotypes = 4;
    params.seed = 1;
    GeneratedPangenome a = generatePangenome(params);
    params.seed = 2;
    GeneratedPangenome b = generatePangenome(params);
    EXPECT_NE(a.sequences[0], b.sequences[0]);
}

TEST(PangenomeGenTest, BackboneLengthRoughlyHonored)
{
    PangenomeParams params;
    params.seed = 6;
    params.backboneLength = 10000;
    params.haplotypes = 2;
    GeneratedPangenome pg = generatePangenome(params);
    for (const std::string& hap : pg.sequences) {
        EXPECT_GT(hap.size(), params.backboneLength * 8 / 10);
        EXPECT_LT(hap.size(), params.backboneLength * 13 / 10);
    }
}

TEST(PangenomeGenTest, HaplotypesDiverge)
{
    PangenomeParams params;
    params.seed = 7;
    params.backboneLength = 5000;
    params.haplotypes = 6;
    GeneratedPangenome pg = generatePangenome(params);
    std::set<std::string> distinct(pg.sequences.begin(),
                                   pg.sequences.end());
    EXPECT_GT(distinct.size(), 1u);
}

TEST(PangenomeGenTest, GraphSmallerThanHaplotypeSum)
{
    // The whole point of a pangenome graph: shared anchors stored once.
    PangenomeParams params;
    params.seed = 8;
    params.backboneLength = 8000;
    params.haplotypes = 12;
    GeneratedPangenome pg = generatePangenome(params);
    size_t haplotype_total = 0;
    for (const std::string& hap : pg.sequences) {
        haplotype_total += hap.size();
    }
    EXPECT_LT(pg.graph.totalSequenceLength(), haplotype_total / 4);
}

TEST(PangenomeGenTest, GbwtIndexesAllWalks)
{
    PangenomeParams params;
    params.seed = 9;
    params.backboneLength = 3000;
    params.haplotypes = 5;
    GeneratedPangenome pg = generatePangenome(params);
    EXPECT_EQ(pg.gbwt.numPaths(), 2 * params.haplotypes);
    // First node of every walk has at least one visit.
    for (const auto& walk : pg.walks) {
        EXPECT_GE(pg.gbwt.nodeCount(walk.front()), 1u);
    }
}

TEST(PangenomeGenTest, RejectsBadParameters)
{
    PangenomeParams params;
    params.backboneLength = 10;
    params.meanAnchorLength = 48;
    EXPECT_THROW(generatePangenome(params), util::Error);
    params = PangenomeParams();
    params.haplotypes = 0;
    EXPECT_THROW(generatePangenome(params), util::Error);
}

// ------------------------------------------------------------- read sim

class ReadSimTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        PangenomeParams params;
        params.seed = 10;
        params.backboneLength = 5000;
        params.haplotypes = 4;
        pg_ = generatePangenome(params);
    }

    GeneratedPangenome pg_;
};

TEST_F(ReadSimTest, SingleEndCountsAndLengths)
{
    ReadSimParams params;
    params.count = 100;
    params.readLength = 120;
    map::ReadSet set = simulateReads(pg_, params);
    EXPECT_FALSE(set.pairedEnd);
    ASSERT_EQ(set.reads.size(), 100u);
    for (const map::Read& read : set.reads) {
        EXPECT_EQ(read.sequence.size(), 120u);
        EXPECT_TRUE(util::isDna(read.sequence));
        EXPECT_FALSE(read.paired());
    }
}

TEST_F(ReadSimTest, PairedEndMatesLinkBothWays)
{
    ReadSimParams params;
    params.count = 50;
    params.paired = true;
    params.readLength = 100;
    params.fragmentLength = 300;
    map::ReadSet set = simulateReads(pg_, params);
    EXPECT_TRUE(set.pairedEnd);
    ASSERT_EQ(set.reads.size(), 50u);
    for (size_t i = 0; i < set.reads.size(); i += 2) {
        EXPECT_EQ(set.reads[i].mate, i + 1);
        EXPECT_EQ(set.reads[i + 1].mate, i);
        EXPECT_TRUE(set.reads[i].paired());
    }
}

TEST_F(ReadSimTest, ErrorFreeReadsOccurInHaplotypes)
{
    ReadSimParams params;
    params.count = 30;
    params.errorRate = 0.0;
    params.readLength = 80;
    map::ReadSet set = simulateReads(pg_, params);
    for (const map::Read& read : set.reads) {
        bool found = false;
        std::string rc = util::reverseComplement(read.sequence);
        for (const std::string& hap : pg_.sequences) {
            if (hap.find(read.sequence) != std::string::npos ||
                hap.find(rc) != std::string::npos) {
                found = true;
                break;
            }
        }
        EXPECT_TRUE(found) << read.name;
    }
}

TEST_F(ReadSimTest, ErrorRateChangesReads)
{
    ReadSimParams clean;
    clean.count = 50;
    clean.errorRate = 0.0;
    ReadSimParams noisy = clean;
    noisy.errorRate = 0.05;
    map::ReadSet a = simulateReads(pg_, clean);
    map::ReadSet b = simulateReads(pg_, noisy);
    size_t differing = 0;
    for (size_t i = 0; i < a.reads.size(); ++i) {
        if (a.reads[i].sequence != b.reads[i].sequence) {
            ++differing;
        }
    }
    EXPECT_GT(differing, 25u);
}

TEST_F(ReadSimTest, DeterministicForSameSeed)
{
    ReadSimParams params;
    params.count = 40;
    map::ReadSet a = simulateReads(pg_, params);
    map::ReadSet b = simulateReads(pg_, params);
    ASSERT_EQ(a.reads.size(), b.reads.size());
    for (size_t i = 0; i < a.reads.size(); ++i) {
        EXPECT_EQ(a.reads[i].sequence, b.reads[i].sequence);
    }
}

// ----------------------------------------------------------- input sets

TEST(InputSetsTest, CatalogHasTheFourPaperSets)
{
    auto specs = standardInputSets();
    ASSERT_EQ(specs.size(), 4u);
    EXPECT_EQ(specs[0].name, "A-human");
    EXPECT_EQ(specs[1].name, "B-yeast");
    EXPECT_EQ(specs[2].name, "C-HPRC");
    EXPECT_EQ(specs[3].name, "D-HPRC");
    // Workflow split matches Table III: A,B single; C,D paired.
    EXPECT_FALSE(specs[0].reads.paired);
    EXPECT_FALSE(specs[1].reads.paired);
    EXPECT_TRUE(specs[2].reads.paired);
    EXPECT_TRUE(specs[3].reads.paired);
    // D has the most reads (the paper's heavyweight input).
    EXPECT_GT(specs[3].reads.count, specs[0].reads.count);
    EXPECT_GT(specs[3].reads.count, specs[2].reads.count);
}

TEST(InputSetsTest, LookupByNameAndUnknown)
{
    EXPECT_EQ(inputSetSpec("B-yeast").name, "B-yeast");
    EXPECT_THROW(inputSetSpec("Z-nope"), util::Error);
}

TEST(InputSetsTest, ScaleAdjustsReadCountOnly)
{
    InputSetSpec spec = inputSetSpec("B-yeast");
    spec.pangenome.backboneLength = 4000; // keep the test fast
    spec.reads.count = 1000;
    InputSet full = buildInputSet(spec, 1.0);
    InputSet tenth = buildInputSet(spec, 0.1);
    EXPECT_EQ(full.reads.size(), 1000u);
    EXPECT_EQ(tenth.reads.size(), 100u);
    EXPECT_EQ(full.pangenome.graph.numNodes(),
              tenth.pangenome.graph.numNodes());
}

TEST(InputSetsTest, InvalidScaleThrows)
{
    EXPECT_THROW(buildInputSet(inputSetSpec("B-yeast"), 0.0), util::Error);
}

} // namespace
} // namespace mg::sim
