/**
 * Crash-consistent checkpoint/resume tests: shard and manifest codec
 * roundtrips and rejection paths, the durable writer + loader, torn-write
 * detection, and the crash matrix — a child process SIGKILLed at injected
 * fault points inside the durability protocol, after which the parent
 * process resumes the run and must reproduce the uninterrupted GAF byte
 * for byte, for every scheduler.
 */
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "giraffe/checkpoint_run.h"
#include "giraffe/parent.h"
#include "io/checkpoint.h"
#include "io/file.h"
#include "io/gaf.h"
#include "sim/pangenome_gen.h"
#include "sim/read_sim.h"

namespace mg::io {
namespace {

/** Fresh (empty) checkpoint directory under the test temp root. */
std::string
freshDir(const std::string& name)
{
    std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / name;
    std::filesystem::remove_all(dir);
    return dir.string();
}

Shard
sampleShard(uint64_t begin, uint64_t end)
{
    Shard shard;
    shard.begin = begin;
    shard.end = end;
    for (uint64_t i = begin; i < end; ++i) {
        shard.gaf += "read" + std::to_string(i) + "\t100\t0\t100\t+\n";
    }
    shard.stats.deadlineHits = 1;
    shard.stats.stepCapHits = 2;
    shard.stats.cacheLookups = 300;
    shard.stats.cacheHits = 250;
    return shard;
}

// ------------------------------------------------------------------ codec

TEST(CheckpointCodecTest, ShardRoundtrip)
{
    Shard shard = sampleShard(16, 24);
    std::vector<uint8_t> bytes = encodeShard(shard);

    Shard out;
    util::Status status = decodeShard(bytes, "s.mgs", out);
    ASSERT_TRUE(status.ok()) << status.toString();
    EXPECT_EQ(out.begin, 16u);
    EXPECT_EQ(out.end, 24u);
    EXPECT_EQ(out.gaf, shard.gaf);
    EXPECT_EQ(out.stats.deadlineHits, 1u);
    EXPECT_EQ(out.stats.stepCapHits, 2u);
    EXPECT_EQ(out.stats.cacheLookups, 300u);
    EXPECT_EQ(out.stats.cacheHits, 250u);
}

TEST(CheckpointCodecTest, ManifestRoundtrip)
{
    Manifest manifest;
    manifest.totalReads = 100;
    manifest.shards.push_back({0, 10, 0x1234, shardFileName(0, 10)});
    manifest.shards.push_back({10, 30, 0x5678, shardFileName(10, 30)});
    std::vector<uint8_t> bytes = encodeManifest(manifest);

    Manifest out;
    util::Status status = decodeManifest(bytes, "m.mgc", out);
    ASSERT_TRUE(status.ok()) << status.toString();
    EXPECT_EQ(out.totalReads, 100u);
    ASSERT_EQ(out.shards.size(), 2u);
    EXPECT_EQ(out.shards[0].begin, 0u);
    EXPECT_EQ(out.shards[0].payloadCrc, 0x1234u);
    EXPECT_EQ(out.shards[1].file, shardFileName(10, 30));
}

TEST(CheckpointCodecTest, ManifestRejectsOverlapAndDisorder)
{
    // Overlapping ranges: a manifest must tile without double-covering
    // a read, or resume would emit it twice.
    Manifest overlap;
    overlap.totalReads = 100;
    overlap.shards.push_back({0, 12, 1, shardFileName(0, 12)});
    overlap.shards.push_back({8, 20, 2, shardFileName(8, 20)});
    Manifest out;
    EXPECT_FALSE(
        decodeManifest(encodeManifest(overlap), "m.mgc", out).ok());

    Manifest unsorted;
    unsorted.totalReads = 100;
    unsorted.shards.push_back({20, 30, 1, shardFileName(20, 30)});
    unsorted.shards.push_back({0, 10, 2, shardFileName(0, 10)});
    EXPECT_FALSE(
        decodeManifest(encodeManifest(unsorted), "m.mgc", out).ok());

    Manifest duplicate;
    duplicate.totalReads = 100;
    duplicate.shards.push_back({0, 10, 1, shardFileName(0, 10)});
    duplicate.shards.push_back({0, 10, 2, shardFileName(0, 10)});
    EXPECT_FALSE(
        decodeManifest(encodeManifest(duplicate), "m.mgc", out).ok());

    Manifest beyond;
    beyond.totalReads = 16;
    beyond.shards.push_back({0, 32, 1, shardFileName(0, 32)});
    EXPECT_FALSE(
        decodeManifest(encodeManifest(beyond), "m.mgc", out).ok());
}

TEST(CheckpointCodecTest, DamagedImagesReturnStatusNeverThrow)
{
    std::vector<uint8_t> shard_bytes = encodeShard(sampleShard(0, 8));
    Manifest manifest;
    manifest.totalReads = 8;
    manifest.shards.push_back({0, 8, 7, shardFileName(0, 8)});
    std::vector<uint8_t> manifest_bytes = encodeManifest(manifest);

    for (size_t cut = 0; cut < shard_bytes.size(); ++cut) {
        std::vector<uint8_t> bad(shard_bytes.begin(),
                                 shard_bytes.begin() +
                                     static_cast<long>(cut));
        Shard out;
        EXPECT_FALSE(decodeShard(bad, "s.mgs", out).ok());
    }
    for (size_t at = 0; at < manifest_bytes.size(); ++at) {
        std::vector<uint8_t> bad = manifest_bytes;
        bad[at] ^= 0x40;
        Manifest out;
        // A flip may strike the CRC of a structurally valid image or the
        // payload it protects; either way the decode must report it.
        EXPECT_FALSE(decodeManifest(bad, "m.mgc", out).ok());
    }
}

// ----------------------------------------------------------- writer/loader

TEST(CheckpointWriterTest, AppendLoadRoundtrip)
{
    std::string dir = freshDir("cp-roundtrip");
    CheckpointWriter writer(dir, 24);
    writer.append(sampleShard(8, 16));
    writer.append(sampleShard(0, 8)); // out-of-order completion is fine
    writer.append(sampleShard(16, 24));

    CheckpointState state;
    util::Status status = loadCheckpoint(dir, state);
    ASSERT_TRUE(status.ok()) << status.toString();
    EXPECT_EQ(state.droppedShards, 0u);
    ASSERT_EQ(state.shards.size(), 3u);
    // The manifest keeps entries sorted by range regardless of append
    // order.
    EXPECT_EQ(state.shards[0].begin, 0u);
    EXPECT_EQ(state.shards[1].begin, 8u);
    EXPECT_EQ(state.shards[2].begin, 16u);
    EXPECT_EQ(state.manifest.totalReads, 24u);
    EXPECT_EQ(state.shards[1].gaf, sampleShard(8, 16).gaf);
}

TEST(CheckpointWriterTest, MissingDirectoryIsAFreshRun)
{
    CheckpointState state;
    util::Status status =
        loadCheckpoint(freshDir("cp-missing"), state);
    EXPECT_TRUE(status.ok()) << status.toString();
    EXPECT_TRUE(state.manifest.shards.empty());
    EXPECT_TRUE(state.shards.empty());
}

TEST(CheckpointWriterTest, CorruptShardIsDroppedAndPruned)
{
    std::string dir = freshDir("cp-dropshard");
    CheckpointWriter writer(dir, 16);
    writer.append(sampleShard(0, 8));
    writer.append(sampleShard(8, 16));

    // Flip one payload byte of the first shard file on disk.
    std::string victim = dir + "/" + shardFileName(0, 8);
    std::vector<uint8_t> bytes = readFileBytes(victim);
    bytes[bytes.size() / 2] ^= 0x01;
    writeFileBytes(victim, bytes);

    CheckpointState state;
    util::Status status = loadCheckpoint(dir, state);
    ASSERT_TRUE(status.ok()) << status.toString();
    EXPECT_EQ(state.droppedShards, 1u);
    ASSERT_EQ(state.shards.size(), 1u);
    EXPECT_EQ(state.shards[0].begin, 8u);
    // The returned manifest is pruned to the survivors, so adopting it
    // and re-flushing the dropped range cannot create overlapping
    // entries.
    ASSERT_EQ(state.manifest.shards.size(), 1u);
    EXPECT_EQ(state.manifest.shards[0].begin, 8u);
}

TEST(CheckpointWriterTest, CorruptManifestIsFatal)
{
    std::string dir = freshDir("cp-badmanifest");
    CheckpointWriter writer(dir, 8);
    writer.append(sampleShard(0, 8));

    std::string manifest_path = dir + "/" + kManifestFileName;
    std::vector<uint8_t> bytes = readFileBytes(manifest_path);
    bytes[bytes.size() - 1] ^= 0xff; // trailing CRC byte
    writeFileBytes(manifest_path, bytes);

    CheckpointState state;
    EXPECT_FALSE(loadCheckpoint(dir, state).ok());
}

// ------------------------------------------------------------ end-to-end

/**
 * Full-pipeline fixture.  Main-process runs stick to thread-based
 * schedulers (VgBatch / WorkStealing); OmpDynamic only ever runs inside
 * forked children, which see a fresh OpenMP runtime — using OpenMP in
 * this process and then forking would hand every child a broken one.
 */
class CheckpointRunFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fault::disarmAll();
        sim::PangenomeParams pparams;
        pparams.seed = 921;
        pparams.backboneLength = 8000;
        pparams.haplotypes = 4;
        pg_ = sim::generatePangenome(pparams);

        index::MinimizerParams mparams;
        mparams.k = 15;
        mparams.w = 8;
        minimizers_ = index::MinimizerIndex(pg_.graph, mparams);
        distance_ = index::DistanceIndex(pg_.graph);

        sim::ReadSimParams rparams;
        rparams.seed = 922;
        rparams.count = 60;
        rparams.readLength = 100;
        rparams.errorRate = 0.005;
        reads_ = sim::simulateReads(pg_, rparams);
    }

    void TearDown() override { fault::disarmAll(); }

    giraffe::ParentEmulator
    makeParent(sched::SchedulerKind kind =
                   sched::SchedulerKind::WorkStealing) const
    {
        giraffe::ParentParams params;
        params.numThreads = 2;
        params.batchSize = 8;
        params.scheduler = kind;
        return giraffe::ParentEmulator(pg_.graph, pg_.gbwt, minimizers_,
                                       distance_, params);
    }

    std::string
    referenceGaf() const
    {
        giraffe::ParentEmulator parent = makeParent();
        giraffe::ParentOutputs outputs = parent.run(reads_);
        return io::formatGaf(outputs.alignments, reads_, pg_.graph);
    }

    giraffe::CheckpointRunParams
    runParams(const std::string& dir) const
    {
        giraffe::CheckpointRunParams params;
        params.dir = dir;
        params.shardReads = 8;
        return params;
    }

    sim::GeneratedPangenome pg_;
    index::MinimizerIndex minimizers_;
    index::DistanceIndex distance_;
    map::ReadSet reads_;
};

TEST_F(CheckpointRunFixture, UninterruptedRunMatchesPlainRun)
{
    std::string dir = freshDir("cp-clean");
    giraffe::ParentEmulator parent = makeParent();
    giraffe::CheckpointRunResult result =
        giraffe::runCheckpointed(parent, reads_, runParams(dir));

    EXPECT_EQ(result.resumedReads, 0u);
    EXPECT_EQ(result.mappedReads, reads_.size());
    EXPECT_EQ(result.gaf, referenceGaf());

    // Re-running over the completed checkpoint maps nothing new and
    // still reproduces the same bytes.
    giraffe::CheckpointRunResult again =
        giraffe::runCheckpointed(parent, reads_, runParams(dir));
    EXPECT_EQ(again.resumedReads, reads_.size());
    EXPECT_EQ(again.mappedReads, 0u);
    EXPECT_EQ(again.gaf, result.gaf);
}

TEST_F(CheckpointRunFixture, InterruptedFlushResumesByteIdentical)
{
    std::string dir = freshDir("cp-interrupted");
    giraffe::ParentEmulator parent = makeParent();

    // The third flush throws: two shards (16 reads) are durable when the
    // run dies.
    fault::armFromText("checkpoint.flush=throw,after=2");
    EXPECT_THROW(
        giraffe::runCheckpointed(parent, reads_, runParams(dir)),
        util::Error);

    fault::disarmAll();
    giraffe::CheckpointRunResult resumed =
        giraffe::runCheckpointed(parent, reads_, runParams(dir));
    EXPECT_EQ(resumed.resumedReads, 16u);
    EXPECT_EQ(resumed.mappedReads, reads_.size() - 16u);
    EXPECT_EQ(resumed.gaf, referenceGaf());
}

TEST_F(CheckpointRunFixture, TornShardWriteIsDetectedAndRemapped)
{
    std::string dir = freshDir("cp-torn");
    giraffe::ParentEmulator parent = makeParent();

    // Durable-write call order is shard, manifest, shard, manifest, ...;
    // hit index 2 is the second shard file, which is persisted as a torn
    // prefix while its manifest entry (with the full payload's CRC) still
    // lands.  The loader must catch the mismatch, not trust the rename.
    fault::armFromText("io.file.durable=torn-write,after=2,limit=1");
    giraffe::CheckpointRunResult first =
        giraffe::runCheckpointed(parent, reads_, runParams(dir));
    fault::disarmAll();
    EXPECT_EQ(first.gaf, referenceGaf()); // in-memory spans were intact

    CheckpointState state;
    ASSERT_TRUE(loadCheckpoint(dir, state).ok());
    EXPECT_EQ(state.droppedShards, 1u);

    giraffe::CheckpointRunResult resumed =
        giraffe::runCheckpointed(parent, reads_, runParams(dir));
    EXPECT_EQ(resumed.droppedShards, 1u);
    EXPECT_EQ(resumed.mappedReads, 8u); // only the torn range remaps
    EXPECT_EQ(resumed.gaf, referenceGaf());
}

TEST_F(CheckpointRunFixture, RejectsCheckpointOfDifferentRun)
{
    std::string dir = freshDir("cp-mismatch");
    CheckpointWriter writer(dir, 999); // some other run's checkpoint
    writer.append(sampleShard(0, 8));

    giraffe::ParentEmulator parent = makeParent();
    EXPECT_THROW(
        giraffe::runCheckpointed(parent, reads_, runParams(dir)),
        util::Error);
}

/**
 * The crash matrix: for every scheduler and every fault point in the
 * durability protocol, a forked child is SIGKILLed mid-run (no unwinding,
 * no flushes — fault::Crash raises SIGKILL), and the surviving checkpoint
 * must resume to the uninterrupted run's exact bytes.
 */
TEST_F(CheckpointRunFixture, CrashMatrixResumesByteIdentical)
{
    const std::string reference = referenceGaf();
    const sched::SchedulerKind kinds[] = {
        sched::SchedulerKind::OmpDynamic,
        sched::SchedulerKind::VgBatch,
        sched::SchedulerKind::WorkStealing,
    };
    const char* crash_specs[] = {
        // 3rd shard flush: killed before the shard is written at all.
        "checkpoint.flush=crash,after=2",
        // 4th durable write = 2nd manifest: its shard is already durable
        // but orphaned; the old manifest stays authoritative.
        "io.file.durable=crash,after=3",
        // 2nd rename: the manifest temp file is fsynced but never
        // renamed; the directory looks like a fresh run.
        "io.file.durable.rename=crash,after=1",
    };

    for (sched::SchedulerKind kind : kinds) {
        for (size_t site = 0; site < std::size(crash_specs); ++site) {
            const char* spec = crash_specs[site];
            std::string dir = freshDir(
                std::string("cp-crash-") + sched::schedulerName(kind) +
                "-" + std::to_string(site));

            pid_t pid = fork();
            ASSERT_GE(pid, 0);
            if (pid == 0) {
                // Child: arm the crash and map until SIGKILL.  Exit codes
                // flag the two ways the crash could fail to happen.
                fault::armFromText(spec);
                try {
                    giraffe::ParentEmulator child_parent =
                        makeParent(kind);
                    giraffe::runCheckpointed(child_parent, reads_,
                                             runParams(dir));
                } catch (...) {
                    _exit(3);
                }
                _exit(2);
            }
            int wstatus = 0;
            ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
            ASSERT_TRUE(WIFSIGNALED(wstatus))
                << sched::schedulerName(kind) << " / " << spec
                << ": child exited "
                << (WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1)
                << " instead of crashing";
            EXPECT_EQ(WTERMSIG(wstatus), SIGKILL);

            // Resume in this process (thread-based scheduler) from
            // whatever the kill left behind.
            giraffe::ParentEmulator parent = makeParent();
            giraffe::CheckpointRunResult resumed =
                giraffe::runCheckpointed(parent, reads_, runParams(dir));
            EXPECT_EQ(resumed.gaf, reference)
                << sched::schedulerName(kind) << " / " << spec;
            EXPECT_EQ(resumed.resumedReads + resumed.mappedReads,
                      reads_.size());
        }
    }
}

} // namespace
} // namespace mg::io
