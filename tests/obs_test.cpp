/**
 * Tests for the mg::obs telemetry layer: JSON emit/parse, the metrics
 * registry (snapshot, delta, freeze discipline, exporters), the flight
 * recorder ring, the periodic emitter's thread-safety against live worker
 * increments (the tsan preset runs this binary), the Chrome-trace export,
 * and the end-to-end funnel consistency of a hub-instrumented proxy run.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "giraffe/parent.h"
#include "giraffe/proxy.h"
#include "giraffe/run_summary.h"
#include "io/file.h"
#include "obs/emitter.h"
#include "obs/flight_recorder.h"
#include "obs/hub.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perf/profiler.h"
#include "sim/input_sets.h"
#include "util/common.h"
#include "util/timer.h"

namespace mg::obs {
namespace {

// ------------------------------------------------------------------- JSON

TEST(JsonWriter, RoundTripsNestedStructure)
{
    JsonWriter w;
    w.beginObject();
    w.field("name", "mini\"giraffe\"\n\t\\");
    w.field("count", uint64_t{42});
    w.field("ratio", 0.5);
    w.field("on", true);
    w.key("nothing").null();
    w.key("list").beginArray();
    w.value(uint64_t{1});
    w.value("two");
    w.beginObject();
    w.field("three", 3);
    w.endObject();
    w.endArray();
    w.endObject();

    json::Value doc = json::parse(w.str(), "test");
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.find("name")->text, "mini\"giraffe\"\n\t\\");
    EXPECT_EQ(doc.find("count")->asUint(), 42u);
    EXPECT_DOUBLE_EQ(doc.find("ratio")->number, 0.5);
    EXPECT_TRUE(doc.find("on")->boolean);
    EXPECT_TRUE(doc.find("nothing")->isNull());
    const json::Value* list = doc.find("list");
    ASSERT_TRUE(list->isArray());
    ASSERT_EQ(list->items.size(), 3u);
    EXPECT_EQ(list->items[1].text, "two");
    EXPECT_EQ(list->items[2].find("three")->asUint(), 3u);
}

TEST(JsonWriter, EscapesControlCharacters)
{
    EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(JsonWriter::escape("a\nb"), "a\\nb");
    EXPECT_EQ(JsonWriter::escape(std::string_view("a\x01z", 3)),
              "a\\u0001z");
}

TEST(JsonParser, RejectsMalformedInput)
{
    EXPECT_THROW(json::parse("{", "t"), util::Error);
    EXPECT_THROW(json::parse("{\"a\":}", "t"), util::Error);
    EXPECT_THROW(json::parse("[1,2,]", "t"), util::Error);
    EXPECT_THROW(json::parse("{} trailing", "t"), util::Error);
    EXPECT_THROW(json::parse("\"unterminated", "t"), util::Error);
}

TEST(JsonParser, DecodesUnicodeEscapes)
{
    json::Value doc = json::parse("{\"s\": \"a\\u00e9b\"}", "t");
    EXPECT_EQ(doc.find("s")->text, "a\xc3\xa9" "b");
}

// --------------------------------------------------------------- Registry

TEST(Registry, SnapshotSumsCountersAcrossSlabs)
{
    Registry reg;
    CounterId reads = reg.counter("mg_test_reads_total", "reads");
    GaugeId depth = reg.gauge("mg_test_depth", "queue depth peak");
    HistogramId lat = reg.histogram("mg_test_latency_ns", "latency");

    Registry::ThreadSlab* s0 = reg.registerThread(0);
    Registry::ThreadSlab* s1 = reg.registerThread(1);
    s0->add(reads, 10);
    s1->add(reads, 32);
    s0->raise(depth, 5);
    s1->raise(depth, 3);
    s0->observe(lat, 100);
    s1->observe(lat, 1 << 20);

    Snapshot snap = reg.snapshot();
    EXPECT_EQ(snap.valueOf("mg_test_reads_total"), 42u);
    // Gauges aggregate by max (peak semantics), not by sum.
    EXPECT_EQ(snap.valueOf("mg_test_depth"), 5u);
    const MetricValue* hist = snap.find("mg_test_latency_ns");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->hist.count(), 2u);
    EXPECT_EQ(hist->hist.sumNanos(), 100u + (1u << 20));
}

TEST(Registry, RegisterThreadIsIdempotentPerSlot)
{
    Registry reg;
    reg.counter("mg_test_a_total", "a");
    EXPECT_EQ(reg.registerThread(0), reg.registerThread(0));
    EXPECT_NE(reg.registerThread(0), reg.registerThread(1));
}

TEST(Registry, FreezesAtFirstRegisterThread)
{
    Registry reg;
    reg.counter("mg_test_early_total", "registered before freeze");
    EXPECT_FALSE(reg.frozen());
    reg.registerThread(0);
    EXPECT_TRUE(reg.frozen());
    EXPECT_THROW(reg.counter("mg_test_late_total", "too late"),
                 util::Error);
    EXPECT_THROW(reg.histogram("mg_test_late_ns", "too late"),
                 util::Error);
}

TEST(Registry, RejectsDuplicateNames)
{
    Registry reg;
    reg.counter("mg_test_dup_total", "first");
    EXPECT_THROW(reg.counter("mg_test_dup_total", "second"), util::Error);
}

TEST(Registry, DeltaSubtractsCountersKeepsGauges)
{
    Registry reg;
    CounterId c = reg.counter("mg_test_c_total", "c");
    GaugeId g = reg.gauge("mg_test_g", "g");
    HistogramId h = reg.histogram("mg_test_h_ns", "h");
    Registry::ThreadSlab* slab = reg.registerThread(0);

    slab->add(c, 10);
    slab->set(g, 7);
    slab->observe(h, 50);
    Snapshot first = reg.snapshot();

    slab->add(c, 5);
    slab->set(g, 3);
    slab->observe(h, 50);
    Snapshot second = reg.snapshot();

    Snapshot d = second.delta(first);
    EXPECT_EQ(d.valueOf("mg_test_c_total"), 5u);
    EXPECT_EQ(d.valueOf("mg_test_g"), 3u); // level, not a rate
    EXPECT_EQ(d.find("mg_test_h_ns")->hist.count(), 1u);
}

// -------------------------------------------------------------- exporters

TEST(Exporters, PrometheusSplicesLabelsAndCumulativeBuckets)
{
    Registry reg;
    CounterId deg = reg.counter(
        "mg_test_degraded_total{reason=\"deadline\"}", "degraded reads");
    HistogramId lat =
        reg.histogram("mg_test_lat_ns{phase=\"extend\"}", "latency");
    Registry::ThreadSlab* slab = reg.registerThread(0);
    slab->add(deg, 3);
    slab->observe(lat, 3); // bucket 2 ([2,4) ns)
    slab->observe(lat, 3);

    std::string prom = toPrometheus(reg.snapshot());
    // HELP/TYPE use the base name; the sample line keeps the labels.
    EXPECT_NE(prom.find("# TYPE mg_test_degraded_total counter"),
              std::string::npos);
    EXPECT_NE(
        prom.find("mg_test_degraded_total{reason=\"deadline\"} 3"),
        std::string::npos);
    // The le label is spliced after the baked-in labels; buckets are
    // cumulative and stop at the highest nonzero bound before +Inf.
    EXPECT_NE(prom.find("mg_test_lat_ns_bucket{phase=\"extend\",le=\"2\"}"
                        " 2"),
              std::string::npos);
    EXPECT_NE(prom.find("mg_test_lat_ns_bucket{phase=\"extend\","
                        "le=\"+Inf\"} 2"),
              std::string::npos);
    EXPECT_NE(prom.find("mg_test_lat_ns_sum{phase=\"extend\"} 6"),
              std::string::npos);
    EXPECT_NE(prom.find("mg_test_lat_ns_count{phase=\"extend\"} 2"),
              std::string::npos);
}

TEST(Exporters, JsonSeriesRoundTripsThroughParser)
{
    Registry reg;
    CounterId c = reg.counter("mg_test_reads_total", "reads mapped");
    HistogramId h = reg.histogram("mg_test_lat_ns", "latency");
    Registry::ThreadSlab* slab = reg.registerThread(0);
    slab->add(c, 7);
    slab->observe(h, 1000);
    Snapshot snap1 = reg.snapshot();
    slab->add(c, 1);
    Snapshot snap2 = reg.snapshot();

    json::Value doc = json::parse(toJson({ snap1, snap2 }), "metrics");
    EXPECT_EQ(doc.find("minigiraffe_metrics")->asUint(), 1u);
    const json::Value* snaps = doc.find("snapshots");
    ASSERT_TRUE(snaps->isArray());
    ASSERT_EQ(snaps->items.size(), 2u);
    const json::Value* metrics = snaps->items[1].find("metrics");
    bool saw_counter = false;
    for (const json::Value& m : metrics->items) {
        if (m.find("name")->text == "mg_test_reads_total") {
            EXPECT_EQ(m.find("kind")->text, "counter");
            EXPECT_EQ(m.find("value")->asUint(), 8u);
            saw_counter = true;
        }
    }
    EXPECT_TRUE(saw_counter);
}

// --------------------------------------------------------- flight recorder

TEST(FlightRecorder, RingWrapsKeepingNewestEntries)
{
    FlightRecorder recorder(1, 4);
    FlightRecorder::Ring* ring = recorder.ring(0);
    for (uint64_t read = 0; read < 10; ++read) {
        ring->begin(read);
        ring->stage(ReadStage::Cluster);
        ring->stage(ReadStage::Extend);
        ring->done();
    }
    std::vector<FlightEntry> entries = recorder.snapshot(0);
    ASSERT_EQ(entries.size(), 4u);
    // Newest first: reads 9, 8, 7, 6 survived the wrap.
    for (size_t i = 0; i < entries.size(); ++i) {
        EXPECT_EQ(entries[i].readIndex, 9u - i);
        EXPECT_EQ(entries[i].stage, ReadStage::Done);
    }
}

TEST(FlightRecorder, ReportNamesReadsAndStages)
{
    FlightRecorder recorder(2, 4);
    recorder.ring(0)->begin(17);
    recorder.ring(0)->stage(ReadStage::Extend);
    std::string report = recorder.report(
        util::nowNanos(),
        [](uint64_t index) { return "read-" + std::to_string(index); });
    EXPECT_NE(report.find("read-17"), std::string::npos);
    EXPECT_NE(report.find("extend"), std::string::npos);
}

// ---------------------------------------------------------------- emitter

TEST(Emitter, ConcurrentWithWorkerIncrements)
{
    // The tsan preset runs this: a periodic emitter snapshotting while two
    // workers hammer their slabs must be race-free.
    Registry reg;
    CounterId c = reg.counter("mg_test_hammer_total", "increments");
    HistogramId h = reg.histogram("mg_test_hammer_ns", "observations");
    Registry::ThreadSlab* slabs[2] = { reg.registerThread(0),
                                       reg.registerThread(1) };

    const std::string path =
        ::testing::TempDir() + "/obs_emitter_test.json";
    MetricsEmitter emitter(reg, path, 0.005);
    emitter.start();

    std::atomic<bool> stop{false};
    std::thread workers[2];
    for (int t = 0; t < 2; ++t) {
        workers[t] = std::thread([&, t] {
            while (!stop.load(std::memory_order_relaxed)) {
                slabs[t]->add(c);
                slabs[t]->observe(h, 64);
            }
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    stop.store(true);
    workers[0].join();
    workers[1].join();

    Snapshot last = emitter.finalize();
    EXPECT_GE(emitter.snapshotCount(), 2u);
    EXPECT_GT(last.valueOf("mg_test_hammer_total"), 0u);
    // The written series must itself be valid and monotonic.
    json::Value doc = json::parse(io::readFileText(path), path);
    EXPECT_EQ(doc.find("minigiraffe_metrics")->asUint(), 1u);
    const json::Value* snaps = doc.find("snapshots");
    ASSERT_TRUE(snaps->isArray());
    uint64_t prev = 0;
    for (const json::Value& snap : snaps->items) {
        for (const json::Value& m : snap.find("metrics")->items) {
            if (m.find("name")->text == "mg_test_hammer_total") {
                EXPECT_GE(m.find("value")->asUint(), prev);
                prev = m.find("value")->asUint();
            }
        }
    }
}

TEST(Emitter, PrometheusExtensionWritesExposition)
{
    Registry reg;
    CounterId c = reg.counter("mg_test_prom_total", "a counter");
    reg.registerThread(0)->add(c, 9);
    const std::string path = ::testing::TempDir() + "/obs_test.prom";
    MetricsEmitter emitter(reg, path);
    EXPECT_TRUE(emitter.prometheus());
    Snapshot final_snap = emitter.finalize();
    std::string text = io::readFileText(path);
    EXPECT_NE(text.find("# TYPE mg_test_prom_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("mg_test_prom_total 9"), std::string::npos);
    EXPECT_EQ(final_snap.valueOf("mg_test_prom_total"), 9u);
}

TEST(Emitter, FinalizeAppendsExtras)
{
    Registry reg;
    reg.counter("mg_test_base_total", "base");
    reg.registerThread(0);
    const std::string path = ::testing::TempDir() + "/obs_extras.prom";
    MetricsEmitter emitter(reg, path);
    MetricValue extra;
    extra.name = "mg_fault_fires_total{site=\"io.read\"}";
    extra.help = "fires";
    extra.value = 2;
    Snapshot final_snap = emitter.finalize({ extra });
    EXPECT_EQ(final_snap.valueOf("mg_fault_fires_total{site=\"io.read\"}"),
              2u);
    std::string text = io::readFileText(path);
    EXPECT_NE(text.find("mg_fault_fires_total{site=\"io.read\"} 2"),
              std::string::npos);
}

// ------------------------------------------------------------------ trace

TEST(Trace, ChromeTraceParsesAndCarriesEvents)
{
    perf::Profiler profiler(true);
    perf::RegionId extend = profiler.regionId(perf::regions::kExtend);
    perf::Profiler::ThreadLog* log = profiler.registerThread(0);
    for (int i = 0; i < 3; ++i) {
        perf::ScopedRegion region(log, extend);
        util::WallTimer spin;
        while (spin.nanos() < 1000) {
        }
    }
    const std::string path = ::testing::TempDir() + "/obs_trace.json";
    std::vector<TraceInstant> instants;
    instants.push_back(TraceInstant{ "watchdog cancel", 0, 0 });
    writeChromeTrace(path, profiler, instants, "obs_test");

    json::Value doc = json::parse(io::readFileText(path), path);
    const json::Value* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    size_t complete = 0;
    size_t instant = 0;
    size_t metadata = 0;
    for (const json::Value& event : events->items) {
        const std::string& ph = event.find("ph")->text;
        if (ph == "X") {
            ++complete;
            EXPECT_EQ(event.find("name")->text, perf::regions::kExtend);
        } else if (ph == "i") {
            ++instant;
            EXPECT_EQ(event.find("name")->text, "watchdog cancel");
        } else if (ph == "M") {
            ++metadata;
        }
    }
    EXPECT_EQ(complete, 3u);
    EXPECT_EQ(instant, 1u);
    EXPECT_GE(metadata, 2u); // process_name + at least one thread_name
}

} // namespace
} // namespace mg::obs

// ------------------------------------------------------------- end to end

namespace mg::giraffe {
namespace {

class ObsPipelineFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sim::PangenomeParams pparams;
        pparams.seed = 301;
        pparams.backboneLength = 6000;
        pparams.haplotypes = 4;
        pg_ = sim::generatePangenome(pparams);

        index::MinimizerParams mparams;
        mparams.k = 15;
        mparams.w = 8;
        minimizers_ = index::MinimizerIndex(pg_.graph, mparams);
        distance_ = index::DistanceIndex(pg_.graph);

        sim::ReadSimParams rparams;
        rparams.seed = 302;
        rparams.count = 80;
        rparams.readLength = 110;
        rparams.errorRate = 0.005;
        reads_ = sim::simulateReads(pg_, rparams);
    }

    sim::GeneratedPangenome pg_;
    index::MinimizerIndex minimizers_;
    index::DistanceIndex distance_;
    map::ReadSet reads_;
};

TEST_F(ObsPipelineFixture, ProxyFunnelMetricsAreSelfConsistent)
{
    ParentParams pparams;
    ParentEmulator parent(pg_.graph, pg_.gbwt, minimizers_, distance_,
                          pparams);
    io::SeedCapture capture = parent.capturePreprocessing(reads_);

    ProxyParams params;
    params.numThreads = 2;
    params.batchSize = 16;
    ProxyRunner proxy(pg_.graph, pg_.gbwt, distance_, params);
    obs::Hub hub(params.numThreads);
    ProxyOutputs outputs = proxy.run(capture, nullptr, nullptr, &hub);

    obs::Snapshot snap = hub.registry().snapshot();
    const uint64_t mapped = snap.valueOf("mg_map_reads_total");
    EXPECT_EQ(mapped, capture.entries.size());
    // Funnel ordering: processed clusters are a subset of formed ones,
    // emitted extensions a subset of attempted ones.
    EXPECT_LE(snap.valueOf("mg_map_clusters_processed_total"),
              snap.valueOf("mg_map_clusters_formed_total"));
    EXPECT_LE(snap.valueOf("mg_map_extensions_emitted_total"),
              snap.valueOf("mg_map_extensions_attempted_total"));
    EXPECT_GT(snap.valueOf("mg_map_extensions_emitted_total"), 0u);
    // Per-read latency histogram saw every read exactly once.
    EXPECT_EQ(snap.find("mg_map_read_latency_ns")->hist.count(), mapped);
    // Cache metrics agree with the run's own aggregated stats.
    EXPECT_EQ(snap.valueOf("mg_gbwt_lookups_total"),
              outputs.cacheStats.lookups);
    EXPECT_EQ(snap.valueOf("mg_gbwt_hits_total"),
              outputs.cacheStats.hits);
    // Scheduler counters: at least one batch, nothing failed.
    EXPECT_GE(snap.valueOf("mg_sched_batches_total"),
              (capture.entries.size() + params.batchSize - 1) /
                  params.batchSize);
    EXPECT_EQ(snap.valueOf("mg_sched_quarantined_total"), 0u);
    EXPECT_EQ(snap.find("mg_sched_batch_latency_ns")->hist.count(),
              snap.valueOf("mg_sched_batches_total"));
}

TEST_F(ObsPipelineFixture, ParentRunPopulatesHubAndSummary)
{
    ParentParams params;
    params.numThreads = 2;
    params.batchSize = 16;
    ParentEmulator parent(pg_.graph, pg_.gbwt, minimizers_, distance_,
                          params);
    obs::Hub hub(params.numThreads);
    ParentOutputs outputs = parent.run(reads_, nullptr, nullptr, &hub);

    obs::Snapshot snap = hub.registry().snapshot();
    EXPECT_EQ(snap.valueOf("mg_map_reads_total"), reads_.size());
    EXPECT_EQ(snap.valueOf("mg_gbwt_lookups_total"),
              outputs.cacheStats.lookups);

    // The run summary is valid JSON and carries the failure-isolation
    // counters every summary must have.
    obs::json::Value doc =
        obs::json::parse(summaryJson(outputs, params), "summary");
    EXPECT_EQ(doc.find("kind")->text, "parent");
    const obs::json::Value* failures = doc.find("failures");
    ASSERT_NE(failures, nullptr);
    EXPECT_NE(failures->find("retries"), nullptr);
    EXPECT_NE(failures->find("quarantined"), nullptr);
    EXPECT_NE(failures->find("watchdog_cancels"), nullptr);
    EXPECT_EQ(doc.find("reads")->asUint(), reads_.size());
}

TEST_F(ObsPipelineFixture, UndersizedHubIsRejected)
{
    ProxyParams params;
    params.numThreads = 4;
    ProxyRunner proxy(pg_.graph, pg_.gbwt, distance_, params);
    ParentParams pparams;
    ParentEmulator parent(pg_.graph, pg_.gbwt, minimizers_, distance_,
                          pparams);
    io::SeedCapture capture = parent.capturePreprocessing(reads_);
    obs::Hub hub(2); // too small for 4 workers
    EXPECT_THROW(proxy.run(capture, nullptr, nullptr, &hub), util::Error);
}

} // namespace
} // namespace mg::giraffe
