/**
 * Graceful-stop tests for the batch pipelines: the SIGTERM/SIGINT stop
 * flag wired through ParentParams (finish running batches, leave the
 * rest as unmapped placeholders) and CheckpointRunParams (finish the
 * in-progress shard, flush it durably, resume later to a byte-identical
 * GAF).  The fork test delivers a real SIGTERM to a child process using
 * the real serve::installStopHandlers() wiring — the same path
 * giraffe_app and minigiraffe_app use.
 */
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <string>

#include "fault/fault.h"
#include "giraffe/checkpoint_run.h"
#include "giraffe/parent.h"
#include "io/gaf.h"
#include "serve/stop.h"
#include "sim/pangenome_gen.h"
#include "sim/read_sim.h"

namespace mg {
namespace {

class DrainFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fault::disarmAll();
        serve::resetStopForTests();
        sim::PangenomeParams pparams;
        pparams.seed = 701;
        pparams.backboneLength = 8000;
        pparams.haplotypes = 4;
        pg_ = sim::generatePangenome(pparams);

        index::MinimizerParams mparams;
        mparams.k = 15;
        mparams.w = 8;
        minimizers_ = index::MinimizerIndex(pg_.graph, mparams);
        distance_ = index::DistanceIndex(pg_.graph);

        sim::ReadSimParams rparams;
        rparams.seed = 702;
        rparams.count = 64;
        rparams.readLength = 100;
        rparams.errorRate = 0.005;
        reads_ = sim::simulateReads(pg_, rparams);
    }

    void
    TearDown() override
    {
        fault::disarmAll();
        serve::resetStopForTests();
    }

    giraffe::ParentEmulator
    makeParent(const std::atomic<bool>* stop_flag = nullptr) const
    {
        giraffe::ParentParams params;
        params.numThreads = 2;
        params.batchSize = 8;
        params.scheduler = sched::SchedulerKind::WorkStealing;
        params.stopFlag = stop_flag;
        return giraffe::ParentEmulator(pg_.graph, pg_.gbwt, minimizers_,
                                       distance_, params);
    }

    std::string
    freshDir(const std::string& name) const
    {
        std::filesystem::path dir =
            std::filesystem::path(::testing::TempDir()) / name;
        std::filesystem::remove_all(dir);
        return dir.string();
    }

    giraffe::CheckpointRunParams
    runParams(const std::string& dir,
              const std::atomic<bool>* stop_flag = nullptr) const
    {
        giraffe::CheckpointRunParams params;
        params.dir = dir;
        params.shardReads = 8;
        params.stopFlag = stop_flag;
        return params;
    }

    std::string
    referenceGaf() const
    {
        giraffe::ParentEmulator parent = makeParent();
        giraffe::ParentOutputs outputs = parent.run(reads_);
        return io::formatGaf(outputs.alignments, reads_, pg_.graph);
    }

    sim::GeneratedPangenome pg_;
    index::MinimizerIndex minimizers_;
    index::DistanceIndex distance_;
    map::ReadSet reads_;
};

/**
 * A pre-set stop flag means "no new batch is dispatched": the run
 * reports stopped, and every read still has a (placeholder) GAF line —
 * a stopped run never truncates the output format.
 */
TEST_F(DrainFixture, ParentStopFlagSkipsAllBatchesButKeepsShape)
{
    std::atomic<bool> stop{true};
    giraffe::ParentEmulator parent = makeParent(&stop);
    giraffe::ParentOutputs outputs = parent.run(reads_);
    EXPECT_TRUE(outputs.stopped);
    ASSERT_EQ(outputs.alignments.size(), reads_.size());
    std::string gaf = io::formatGaf(outputs.alignments, reads_, pg_.graph);
    EXPECT_EQ(static_cast<size_t>(
                  std::count(gaf.begin(), gaf.end(), '\n')),
              reads_.size());
}

/** An unset flag changes nothing: stopped stays false. */
TEST_F(DrainFixture, ParentStopFlagUnsetRunsToCompletion)
{
    std::atomic<bool> stop{false};
    giraffe::ParentEmulator parent = makeParent(&stop);
    giraffe::ParentOutputs outputs = parent.run(reads_);
    EXPECT_FALSE(outputs.stopped);
    EXPECT_EQ(io::formatGaf(outputs.alignments, reads_, pg_.graph),
              referenceGaf());
}

/**
 * Checkpointed stop-and-resume: a run stopped before mapping anything
 * leaves a resumable directory; clearing the flag and re-running the
 * same directory completes to a GAF byte-identical to an uninterrupted
 * run — the stop is just a scheduled crash with better manners.
 */
TEST_F(DrainFixture, CheckpointStopThenResumeIsByteIdentical)
{
    std::string dir = freshDir("drain-stop-resume");
    std::atomic<bool> stop{true};

    giraffe::ParentEmulator parent = makeParent();
    giraffe::CheckpointRunResult stopped = giraffe::runCheckpointed(
        parent, reads_, runParams(dir, &stop));
    EXPECT_TRUE(stopped.stopped);
    EXPECT_LT(stopped.mappedReads, reads_.size());

    giraffe::CheckpointRunResult resumed =
        giraffe::runCheckpointed(parent, reads_, runParams(dir));
    EXPECT_FALSE(resumed.stopped);
    EXPECT_EQ(resumed.gaf, referenceGaf());
    EXPECT_EQ(resumed.resumedReads + resumed.mappedReads, reads_.size());
}

/**
 * The real thing: a forked child installs the app's SIGTERM handlers,
 * runs a checkpointed mapping with the serve::stopFlag() wiring (exactly
 * what giraffe_app --checkpoint does), and the parent SIGTERMs it
 * mid-run.  The child must exit 0 with its in-progress shard flushed;
 * the parent resumes the directory to a byte-identical final GAF.
 */
TEST_F(DrainFixture, SigtermMidCheckpointRunExitsZeroAndResumes)
{
    std::string dir = freshDir("drain-sigterm");
    std::string reference = referenceGaf();

    int ready[2];
    ASSERT_EQ(::pipe(ready), 0);
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::close(ready[0]);
        serve::resetStopForTests();
        serve::installStopHandlers();
        char byte = 'r';
        if (::write(ready[1], &byte, 1) != 1) {
            _exit(4);
        }
        ::close(ready[1]);
        try {
            giraffe::ParentEmulator child_parent = makeParent();
            giraffe::CheckpointRunResult result = giraffe::runCheckpointed(
                child_parent, reads_,
                runParams(dir, serve::stopFlag()));
            // 0: stopped gracefully.  2: the run beat the signal (still
            // a pass for the resume check, but the parent asserts the
            // stop actually happened, so flag it distinctly).
            _exit(result.stopped ? 0 : 2);
        } catch (...) {
            _exit(3);
        }
    }
    ::close(ready[1]);
    char byte = 0;
    ASSERT_EQ(::read(ready[0], &byte, 1), 1);
    ::close(ready[0]);
    // Let the child get into the mapping loop, then pull the plug the
    // way systemd would.
    ::usleep(20 * 1000);
    ASSERT_EQ(::kill(pid, SIGTERM), 0);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus));
    int code = WEXITSTATUS(wstatus);
    ASSERT_TRUE(code == 0 || code == 2) << "child exited " << code;

    // Whatever the child left behind resumes to the exact answer.
    giraffe::ParentEmulator parent = makeParent();
    giraffe::CheckpointRunResult resumed =
        giraffe::runCheckpointed(parent, reads_, runParams(dir));
    EXPECT_EQ(resumed.gaf, reference);
    EXPECT_EQ(resumed.resumedReads + resumed.mappedReads, reads_.size());
}

} // namespace
} // namespace mg
