/** Tests for the machine-model substrate. */
#include <gtest/gtest.h>

#include "machine/config.h"
#include "machine/cost_model.h"
#include "machine/scaling_model.h"
#include "machine/tracer.h"
#include "util/common.h"
#include "util/dna.h"
#include "util/rng.h"

namespace mg::machine {
namespace {

TEST(ConfigTest, TableIIFleetIsPresent)
{
    auto machines = paperMachines();
    ASSERT_EQ(machines.size(), 4u);
    MachineConfig li = machineByName("local-intel");
    EXPECT_EQ(li.sockets, 2u);
    EXPECT_EQ(li.coresPerSocket, 24u);
    EXPECT_EQ(li.threadContexts(), 96u);
    MachineConfig la = machineByName("local-amd");
    EXPECT_EQ(la.threadContexts(), 128u);
    EXPECT_EQ(la.sockets, 1u);
    MachineConfig ca = machineByName("chi-arm");
    EXPECT_EQ(ca.threadContexts(), 64u);
    EXPECT_EQ(ca.threadsPerCore, 1u);
    MachineConfig ci = machineByName("chi-intel");
    EXPECT_EQ(ci.threadContexts(), 160u);
    EXPECT_THROW(machineByName("laptop"), util::Error);
}

TEST(ConfigTest, LlcOrderingMatchesPaper)
{
    // local-amd has the largest LLC, local-intel the smallest (Table II).
    EXPECT_GT(machineByName("local-amd").l3PerSocket.sizeBytes,
              machineByName("chi-arm").l3PerSocket.sizeBytes);
    EXPECT_GT(machineByName("chi-arm").l3PerSocket.sizeBytes,
              machineByName("chi-intel").l3PerSocket.sizeBytes);
    EXPECT_GT(machineByName("chi-intel").l3PerSocket.sizeBytes,
              machineByName("local-intel").l3PerSocket.sizeBytes);
}

// --------------------------------------------------------------- caches

CacheLevelConfig
tinyCache(size_t size_bytes, size_t ways)
{
    CacheLevelConfig config;
    config.sizeBytes = size_bytes;
    config.lineBytes = 64;
    config.associativity = ways;
    return config;
}

TEST(CacheLevelTest, HitsAfterInstall)
{
    CacheLevel cache(tinyCache(1024, 2));
    EXPECT_FALSE(cache.access(5));
    EXPECT_TRUE(cache.access(5));
    EXPECT_TRUE(cache.access(5));
}

TEST(CacheLevelTest, LruEvictionWithinSet)
{
    // 2-way, 8 sets: lines 0, 8, 16 map to set 0.
    CacheLevel cache(tinyCache(1024, 2));
    ASSERT_EQ(cache.numSets(), 8u);
    EXPECT_FALSE(cache.access(0));
    EXPECT_FALSE(cache.access(8));
    EXPECT_TRUE(cache.access(0));   // refresh 0; LRU is now 8
    EXPECT_FALSE(cache.access(16)); // evicts 8
    EXPECT_TRUE(cache.access(0));
    EXPECT_FALSE(cache.access(8));  // 8 was evicted
}

TEST(CacheLevelTest, CapacityBoundedWorkingSetAlwaysHits)
{
    CacheLevel cache(tinyCache(64 * 1024, 8)); // 1024 lines
    // Touch 512 distinct lines twice: second pass must fully hit.
    for (uint64_t line = 0; line < 512; ++line) {
        cache.access(line);
    }
    for (uint64_t line = 0; line < 512; ++line) {
        EXPECT_TRUE(cache.access(line)) << line;
    }
}

TEST(CacheHierarchyTest, MissesFlowDownTheHierarchy)
{
    MachineConfig m = machineByName("local-intel");
    CacheHierarchy hierarchy(m);
    hierarchy.access(0x1000, 4);
    const CacheCounters& counters = hierarchy.counters();
    EXPECT_EQ(counters.l1Accesses, 1u);
    EXPECT_EQ(counters.l1Misses, 1u);
    EXPECT_EQ(counters.l2Accesses, 1u);
    EXPECT_EQ(counters.l2Misses, 1u);
    EXPECT_EQ(counters.llcAccesses, 1u);
    EXPECT_EQ(counters.llcMisses, 1u);
    // Second touch hits L1; deeper levels see nothing.
    hierarchy.access(0x1000, 4);
    EXPECT_EQ(counters.l1Accesses, 2u);
    EXPECT_EQ(counters.l1Misses, 1u);
    EXPECT_EQ(counters.l2Accesses, 1u);
}

TEST(CacheHierarchyTest, WideAccessSplitsAcrossLines)
{
    CacheHierarchy hierarchy(machineByName("local-intel"));
    hierarchy.access(0x1000, 256); // 4 lines
    EXPECT_EQ(hierarchy.counters().l1Accesses, 4u);
    // Unaligned spill adds one more line.
    hierarchy.access(0x2030, 64);
    EXPECT_EQ(hierarchy.counters().l1Accesses, 6u);
}

TEST(CacheHierarchyTest, LargerLlcMissesLess)
{
    // Stream over a working set that fits AMD's 256 MB L3 but thrashes
    // local-intel's 35.75 MB.
    MachineConfig intel = machineByName("local-intel");
    MachineConfig amd = machineByName("local-amd");
    CacheHierarchy h_intel(intel);
    CacheHierarchy h_amd(amd);
    util::Rng rng(7);
    const uint64_t span = 128ull * 1024 * 1024; // 128 MB working set
    for (int pass = 0; pass < 2; ++pass) {
        for (uint64_t i = 0; i < 200000; ++i) {
            // Hash the index so both passes touch the same pseudo-random
            // lines (reuse!) while dodging trivial streaming prefetch.
            uint64_t addr = util::hash64(i % 100000) % span;
            h_intel.access(addr, 8);
            h_amd.access(addr, 8);
        }
    }
    EXPECT_LT(h_amd.counters().llcMisses, h_intel.counters().llcMisses);
}

TEST(CacheHierarchyTest, NextLinePrefetcherTurnsStreamsIntoHits)
{
    MachineConfig base = machineByName("local-intel");
    MachineConfig pf = base;
    pf.nextLinePrefetcher = true;
    CacheHierarchy plain(base);
    CacheHierarchy prefetching(pf);
    // Sequential stream: every line is new; the prefetcher should turn
    // roughly every other demand access into a hit.
    for (uint64_t addr = 0; addr < 64 * 4096; addr += 64) {
        plain.access(addr, 8);
        prefetching.access(addr, 8);
    }
    EXPECT_LT(prefetching.counters().l1Misses,
              plain.counters().l1Misses / 2 + 16);
    EXPECT_GT(prefetching.counters().prefetches, 0u);
    EXPECT_EQ(plain.counters().prefetches, 0u);
}

TEST(CacheHierarchyTest, FlushDropsContentsKeepsCounters)
{
    CacheHierarchy hierarchy(machineByName("local-intel"));
    hierarchy.access(0x40, 4);
    hierarchy.flush();
    uint64_t misses_before = hierarchy.counters().l1Misses;
    hierarchy.access(0x40, 4); // misses again after flush
    EXPECT_EQ(hierarchy.counters().l1Misses, misses_before + 1);
}

// --------------------------------------------------------------- tracer

TEST(TraceCounterTest, DrivesAllMachinesAtOnce)
{
    TraceCounter tracer(paperMachines());
    ASSERT_EQ(tracer.numMachines(), 4u);
    int dummy[64] = {};
    tracer.onAccess(dummy, sizeof(dummy), false);
    tracer.onWork(10);
    EXPECT_EQ(tracer.work().memoryAccesses, 1u);
    EXPECT_EQ(tracer.work().instructions, 11u);
    for (size_t m = 0; m < tracer.numMachines(); ++m) {
        EXPECT_GE(tracer.counters(m).l1Accesses, 1u);
    }
    EXPECT_NO_THROW(tracer.countersFor("chi-arm"));
    EXPECT_THROW(tracer.countersFor("nope"), util::Error);
}

// ------------------------------------------------------------ cost model

WorkCounters
syntheticWork()
{
    WorkCounters work;
    work.instructions = 1000000;
    work.memoryAccesses = 300000;
    return work;
}

CacheCounters
syntheticCounters(uint64_t llc_misses)
{
    CacheCounters counters;
    counters.l1Accesses = 300000;
    counters.l1Misses = 30000;
    counters.l2Accesses = 30000;
    counters.l2Misses = 10000;
    counters.llcAccesses = 10000;
    counters.llcMisses = llc_misses;
    return counters;
}

TEST(CostModelTest, MoreMissesMeanMoreCycles)
{
    MachineConfig m = machineByName("local-intel");
    CostProfile cheap = modelCost(m, syntheticWork(), syntheticCounters(100));
    CostProfile expensive =
        modelCost(m, syntheticWork(), syntheticCounters(9000));
    EXPECT_GT(expensive.cycles, cheap.cycles);
    EXPECT_LT(expensive.ipc, cheap.ipc);
    EXPECT_GT(expensive.seconds, cheap.seconds);
}

TEST(CostModelTest, IpcIsPlausible)
{
    MachineConfig m = machineByName("local-amd");
    CostProfile profile =
        modelCost(m, syntheticWork(), syntheticCounters(1000));
    EXPECT_GT(profile.ipc, 0.3);
    EXPECT_LT(profile.ipc, 4.0);
}

TEST(TopDownTest, BucketsSumToHundred)
{
    MachineConfig m = machineByName("local-intel");
    CostProfile cost = modelCost(m, syntheticWork(), syntheticCounters(5000));
    TopDownProfile td = modelTopDown(m, cost);
    double sum = td.retiringPct + td.frontEndPct + td.backEndPct +
                 td.badSpeculationPct;
    EXPECT_NEAR(sum, 100.0, 1e-6);
    EXPECT_GT(td.retiringPct, 0.0);
    EXPECT_LE(td.memoryBoundPct, td.backEndPct);
    EXPECT_LE(td.frontEndLatencyPct, td.frontEndPct);
}

// --------------------------------------------------------- scaling model

TEST(ScalingModelTest, ParallelismSaturatesAtContexts)
{
    MachineConfig m = machineByName("local-intel"); // 48 cores, 96 contexts
    double p48 = effectiveParallelism(m, 48);
    double p96 = effectiveParallelism(m, 96);
    double p200 = effectiveParallelism(m, 200);
    EXPECT_GT(p96, p48);          // hyperthreads help a little
    EXPECT_LT(p96 - p48, p48);    // ...much less than real cores
    EXPECT_DOUBLE_EQ(p96, p200);  // beyond contexts: no gain
}

TEST(ScalingModelTest, SingleSocketScalesBetterPerCore)
{
    // local-amd (1 socket) keeps near-linear speedups; local-intel's
    // second socket is discounted.
    MachineConfig amd = machineByName("local-amd");
    MachineConfig intel = machineByName("local-intel");
    EXPECT_NEAR(effectiveParallelism(amd, 48), 48.0, 1e-9);
    EXPECT_LT(effectiveParallelism(intel, 48), 44.0);
}

TEST(ScalingModelTest, PredictedTimeDecreasesThenPlateaus)
{
    MachineConfig m = machineByName("chi-intel");
    CostProfile cost;
    cost.instructions = 1u << 30;
    cost.seconds = 100.0;
    cost.cycles = cost.seconds * m.frequencyGhz * 1e9;
    WorkloadShape shape;
    shape.numReads = 100000;
    shape.batchSize = 512;
    shape.dramBytes = 1e9;
    SchedulerCost sched;
    double prev = 1e30;
    for (size_t threads : {1, 2, 4, 8, 16, 32, 64, 80}) {
        double t = predictedTime(m, cost, shape, sched, threads);
        EXPECT_LT(t, prev) << threads;
        prev = t;
    }
    // Hyperthread region: still no slower.
    double t160 = predictedTime(m, cost, shape, sched, 160);
    EXPECT_LE(t160, prev);
}

TEST(ScalingModelTest, BandwidthFloorBindsMemoryHeavyRuns)
{
    MachineConfig m = machineByName("local-intel");
    CostProfile cost;
    cost.seconds = 10.0;
    WorkloadShape shape;
    shape.numReads = 10000;
    shape.batchSize = 512;
    shape.dramBytes = 1e13; // 10 TB of traffic: clearly bandwidth bound
    SchedulerCost sched;
    double t = predictedTime(m, cost, shape, sched, 96);
    double floor = shape.dramBytes / (m.memBandwidthGBs * 1e9 * m.sockets);
    EXPECT_GE(t, floor);
}

TEST(ScalingModelTest, SerialDispatchHurtsAtScale)
{
    MachineConfig m = machineByName("chi-intel");
    CostProfile cost;
    cost.seconds = 10.0;
    WorkloadShape shape;
    shape.numReads = 1000000;
    shape.batchSize = 128; // many batches
    shape.dramBytes = 0.0;
    SchedulerCost distributed;
    distributed.dispatchMicros = 1.0;
    SchedulerCost serial = distributed;
    serial.serialDispatch = true;
    EXPECT_GT(predictedTime(m, cost, shape, serial, 160),
              predictedTime(m, cost, shape, distributed, 160));
}

TEST(ScalingModelTest, SpeedupCurveStartsAtOne)
{
    MachineConfig m = machineByName("chi-arm");
    CostProfile cost;
    cost.seconds = 50.0;
    WorkloadShape shape;
    shape.numReads = 50000;
    shape.batchSize = 512;
    SchedulerCost sched;
    auto curve = speedupCurve(m, cost, shape, sched, {1, 2, 4, 8});
    ASSERT_EQ(curve.size(), 4u);
    EXPECT_NEAR(curve[0], 1.0, 1e-9);
    EXPECT_GT(curve[3], curve[1]);
}

} // namespace
} // namespace mg::machine
