/** Tests for the autotuning harness. */
#include <gtest/gtest.h>

#include "giraffe/parent.h"
#include "sim/pangenome_gen.h"
#include "sim/read_sim.h"
#include "tune/autotuner.h"

namespace mg::tune {
namespace {

/** A small world + capture reused across tuning tests (built once). */
class TuneFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        sim::PangenomeParams pparams;
        pparams.seed = 301;
        pparams.backboneLength = 8000;
        pparams.haplotypes = 4;
        pg_ = new sim::GeneratedPangenome(sim::generatePangenome(pparams));

        index::MinimizerParams mparams;
        mparams.k = 15;
        mparams.w = 8;
        minimizers_ =
            new index::MinimizerIndex(pg_->graph, mparams);
        distance_ = new index::DistanceIndex(pg_->graph);

        sim::ReadSimParams rparams;
        rparams.seed = 302;
        rparams.count = 60;
        rparams.readLength = 100;
        map::ReadSet reads = sim::simulateReads(*pg_, rparams);

        giraffe::ParentEmulator parent(pg_->graph, pg_->gbwt, *minimizers_,
                                       *distance_,
                                       giraffe::ParentParams());
        capture_ = new io::SeedCapture(parent.capturePreprocessing(reads));
    }

    static void
    TearDownTestSuite()
    {
        delete capture_;
        delete distance_;
        delete minimizers_;
        delete pg_;
    }

    Autotuner
    makeTuner() const
    {
        return Autotuner(pg_->graph, pg_->gbwt, *distance_, *capture_);
    }

    static sim::GeneratedPangenome* pg_;
    static index::MinimizerIndex* minimizers_;
    static index::DistanceIndex* distance_;
    static io::SeedCapture* capture_;
};

sim::GeneratedPangenome* TuneFixture::pg_ = nullptr;
index::MinimizerIndex* TuneFixture::minimizers_ = nullptr;
index::DistanceIndex* TuneFixture::distance_ = nullptr;
io::SeedCapture* TuneFixture::capture_ = nullptr;

TEST(TuneConfigTest, StringKeyAndDefaults)
{
    TuneConfig config = defaultConfig();
    EXPECT_EQ(config.str(), "openmp/512/256");
    EXPECT_EQ(config.batchSize, 512u);
    EXPECT_EQ(config.cacheCapacity, 256u);
}

TEST(SweepSpaceTest, PaperCrossProduct)
{
    SweepSpace space = paperSweepSpace();
    // 2 schedulers x 5 batch sizes x 5 capacities.
    EXPECT_EQ(space.size(), 50u);
    // Batch sizes are the paper's powers of two from 128 to 2048.
    EXPECT_EQ(space.batchSizes.front(), 128u);
    EXPECT_EQ(space.batchSizes.back(), 2048u);
    EXPECT_EQ(space.capacities.back(), 4096u);
}

TEST(SchedulerCostTest, StealHasCheapestDispatch)
{
    auto omp = schedulerCost(sched::SchedulerKind::OmpDynamic);
    auto vg = schedulerCost(sched::SchedulerKind::VgBatch);
    auto steal = schedulerCost(sched::SchedulerKind::WorkStealing);
    EXPECT_LT(steal.dispatchMicros, omp.dispatchMicros);
    EXPECT_LT(omp.dispatchMicros, vg.dispatchMicros);
    EXPECT_TRUE(vg.serialDispatch);
    EXPECT_FALSE(omp.serialDispatch);
}

TEST_F(TuneFixture, MeasureCapacityProducesFullProfile)
{
    Autotuner tuner = makeTuner();
    CapacityProfile profile = tuner.measureCapacity(256);
    EXPECT_EQ(profile.capacity, 256u);
    EXPECT_GT(profile.hostSeconds, 0.0);
    EXPECT_EQ(profile.numReads, capture_->entries.size());
    EXPECT_GT(profile.work.instructions, 0u);
    EXPECT_EQ(profile.perMachine.size(), 4u);
    for (const auto& [name, counters] : profile.perMachine) {
        EXPECT_GT(counters.l1Accesses, 0u) << name;
    }
    EXPECT_GT(profile.cacheStats.lookups, 0u);
}

TEST_F(TuneFixture, NoCacheDecodesEveryLookup)
{
    Autotuner tuner = makeTuner();
    CapacityProfile off = tuner.measureCapacity(0);
    CapacityProfile on = tuner.measureCapacity(1024);
    EXPECT_EQ(off.cacheStats.decodes, off.cacheStats.lookups);
    EXPECT_LT(on.cacheStats.decodes, on.cacheStats.lookups);
    // Caching saves modelled instructions (decode work disappears).
    EXPECT_LT(on.work.instructions, off.work.instructions);
}

TEST_F(TuneFixture, TinyCapacityRehashesLargeDoesNot)
{
    Autotuner tuner = makeTuner();
    CapacityProfile tiny = tuner.measureCapacity(2);
    CapacityProfile large = tuner.measureCapacity(65536);
    EXPECT_GT(tiny.cacheStats.rehashes, 0u);
    EXPECT_EQ(large.cacheStats.rehashes, 0u);
}

TEST_F(TuneFixture, SweepCoversTheWholeSpace)
{
    Autotuner tuner = makeTuner();
    SweepSpace space;
    space.schedulers = {sched::SchedulerKind::OmpDynamic,
                        sched::SchedulerKind::WorkStealing};
    space.batchSizes = {128, 512};
    space.capacities = {256, 4096};
    auto profiles = tuner.measureCapacities(space.capacities);
    auto results =
        tuner.sweep(machine::machineByName("local-intel"), space, profiles);
    EXPECT_EQ(results.size(), space.size());
    for (const ConfigResult& result : results) {
        EXPECT_GT(result.makespanSeconds, 0.0) << result.config.str();
    }
    const ConfigResult& winner = Autotuner::best(results);
    EXPECT_LE(winner.makespanSeconds, results.front().makespanSeconds);
    // find() locates an exact configuration.
    TuneConfig probe{sched::SchedulerKind::WorkStealing, 512, 4096};
    EXPECT_EQ(Autotuner::find(results, probe).config.str(), probe.str());
    TuneConfig missing{sched::SchedulerKind::VgBatch, 512, 4096};
    EXPECT_THROW(Autotuner::find(results, missing), util::Error);
}

TEST_F(TuneFixture, ModelMakespanRespondsToThreads)
{
    Autotuner tuner = makeTuner();
    // Inflate the measured micro-profile to a realistic run size so the
    // parallel term dominates the fixed thread-setup overhead (with only
    // 60 reads the model correctly refuses to reward 64 threads).
    CapacityProfile profile = tuner.measureCapacity(256);
    const uint64_t scale = 10000;
    profile.numReads *= scale;
    profile.hostSeconds *= static_cast<double>(scale);
    profile.work.instructions *= scale;
    for (auto& [name, counters] : profile.perMachine) {
        (void)name;
        counters.l1Accesses *= scale;
        counters.l1Misses *= scale;
        counters.l2Accesses *= scale;
        counters.l2Misses *= scale;
        counters.llcAccesses *= scale;
        counters.llcMisses *= scale;
    }
    machine::MachineConfig m = machine::machineByName("local-amd");
    TuneConfig config = defaultConfig();
    double t1 = Autotuner::modelMakespan(m, profile, config, 1);
    double t64 = Autotuner::modelMakespan(m, profile, config, 64);
    EXPECT_GT(t1, 10.0 * t64); // near-linear on the single-socket EPYC
}

TEST_F(TuneFixture, AnovaRunsOnSweepResults)
{
    Autotuner tuner = makeTuner();
    SweepSpace space = paperSweepSpace();
    auto profiles = tuner.measureCapacities(space.capacities);
    auto results =
        tuner.sweep(machine::machineByName("chi-intel"), space, profiles);
    stats::AnovaResult anova = Autotuner::anova(results);
    ASSERT_EQ(anova.effects.size(), 3u);
    for (const auto& effect : anova.effects) {
        EXPECT_GE(effect.pValue, 0.0);
        EXPECT_LE(effect.pValue, 1.0);
    }
}

} // namespace
} // namespace mg::tune
