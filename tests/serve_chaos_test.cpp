/**
 * Chaos matrix for mgd: torn and truncated frames on the wire, peers
 * that vanish mid-request, injected failures on the accept and enqueue
 * paths, a stalled worker rescued by the watchdog, and SIGKILL during
 * drain.  The invariant under every row: the daemon never crashes, and
 * no admitted request disappears without a response or a logged shed.
 */
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "io/fd.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "sim/pangenome_gen.h"
#include "sim/read_sim.h"

namespace mg::serve {
namespace {

class ServeChaosFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fault::disarmAll();
        sim::PangenomeParams pparams;
        pparams.seed = 611;
        pparams.backboneLength = 5000;
        pparams.haplotypes = 4;
        pg_ = sim::generatePangenome(pparams);

        index::MinimizerParams mparams;
        mparams.k = 15;
        mparams.w = 8;
        minimizers_ = index::MinimizerIndex(pg_.graph, mparams);
        distance_ = index::DistanceIndex(pg_.graph);

        sim::ReadSimParams rparams;
        rparams.seed = 612;
        rparams.count = 24;
        rparams.readLength = 100;
        rparams.errorRate = 0.005;
        reads_ = sim::simulateReads(pg_, rparams).reads;
    }

    void TearDown() override { fault::disarmAll(); }

    std::string
    socketPath(const std::string& name) const
    {
        return std::string(::testing::TempDir()) + "/" + name + ".sock";
    }

    DaemonParams
    daemonParams(const std::string& name) const
    {
        DaemonParams params;
        params.socketPath = socketPath(name);
        params.workers = 2;
        params.queueCapacity = 8;
        params.watchdogParams.stallSeconds = 2.0;
        return params;
    }

    std::unique_ptr<Daemon>
    makeDaemon(DaemonParams params) const
    {
        return std::make_unique<Daemon>(pg_.graph, pg_.gbwt, minimizers_,
                                        distance_, std::move(params));
    }

    ClientParams
    clientParams(const std::string& name) const
    {
        ClientParams params;
        params.socketPath = socketPath(name);
        params.backoffBaseMillis = 2;
        params.backoffCapMillis = 50;
        return params;
    }

    std::vector<map::Read>
    slice(size_t begin, size_t count) const
    {
        return std::vector<map::Read>(reads_.begin() + begin,
                                      reads_.begin() + begin + count);
    }

    Request
    sampleRequest(uint64_t id, size_t read_count) const
    {
        Request request;
        request.id = id;
        request.reads = slice(0, read_count);
        return request;
    }

    sim::GeneratedPangenome pg_;
    index::MinimizerIndex minimizers_;
    index::DistanceIndex distance_;
    std::vector<map::Read> reads_;
};

/**
 * A frame whose CRC fails is answered with a structured Error and the
 * connection is dropped — never a crash, never silence.  The damage is
 * hand-crafted (a flipped payload byte) so the test is deterministic.
 */
TEST_F(ServeChaosFixture, CorruptFrameGetsErrorResponseAndDaemonSurvives)
{
    std::unique_ptr<Daemon> daemon = makeDaemon(daemonParams("corrupt"));
    daemon->start();

    std::vector<uint8_t> frame =
        frameBytes(encodeRequest(sampleRequest(1, 4)));
    frame[frame.size() - 6] ^= 0x40; // payload byte: CRC must catch it

    int fd = io::connectUnix(socketPath("corrupt"));
    ASSERT_EQ(io::writeFull(fd, frame.data(), frame.size()),
              static_cast<ssize_t>(frame.size()));

    std::vector<uint8_t> payload;
    util::Status status = readFrame(fd, payload);
    ASSERT_TRUE(status.ok()) << status.toString();
    Response response;
    ASSERT_TRUE(decodeResponse(payload, response).ok());
    EXPECT_EQ(response.status, ResponseStatus::Error);
    EXPECT_FALSE(response.message.empty());
    // The stream is desynchronized after damage: the daemon drops it.
    EXPECT_FALSE(readFrame(fd, payload).ok());
    ::close(fd);

    // The daemon is still fully serviceable for the next client.
    Client client(clientParams("corrupt"));
    Response ok;
    ASSERT_TRUE(client
                    .mapReads("", slice(0, 4), resilience::WorkBudget{},
                              ok)
                    .ok());
    EXPECT_EQ(ok.status, ResponseStatus::Ok);

    daemon->stop();
    EXPECT_GE(daemon->report().badFrames, 1u);
    EXPECT_EQ(daemon->report().completed, 1u);
}

/**
 * A torn frame — the peer dies mid-frame — is indistinguishable from
 * truncation.  The daemon counts it and keeps serving.
 */
TEST_F(ServeChaosFixture, TruncatedFrameThenDisconnectIsCountedNotLeaked)
{
    std::unique_ptr<Daemon> daemon = makeDaemon(daemonParams("torn"));
    daemon->start();

    std::vector<uint8_t> frame =
        frameBytes(encodeRequest(sampleRequest(1, 4)));
    int fd = io::connectUnix(socketPath("torn"));
    size_t half = frame.size() / 2;
    ASSERT_EQ(io::writeFull(fd, frame.data(), half),
              static_cast<ssize_t>(half));
    ::close(fd); // tear the frame

    Client client(clientParams("torn"));
    Response ok;
    ASSERT_TRUE(client
                    .mapReads("", slice(0, 4), resilience::WorkBudget{},
                              ok)
                    .ok());
    EXPECT_EQ(ok.status, ResponseStatus::Ok);

    daemon->stop();
    EXPECT_GE(daemon->report().badFrames, 1u);
    EXPECT_EQ(daemon->report().accepted, 1u);
    EXPECT_EQ(daemon->report().completed, 1u);
}

/**
 * The client vanishes after sending a valid request.  The work is done,
 * the response has nowhere to go — the daemon logs and counts the lost
 * response (errors), never leaking the request from the accounting.
 */
TEST_F(ServeChaosFixture, DisconnectMidRequestCountsTheLostResponse)
{
    std::unique_ptr<Daemon> daemon = makeDaemon(daemonParams("vanish"));
    daemon->start();

    std::vector<uint8_t> payload = encodeRequest(sampleRequest(7, 8));
    int fd = io::connectUnix(socketPath("vanish"));
    ASSERT_TRUE(writeFrame(fd, payload).ok());
    ::close(fd); // gone before the answer

    // A follow-up client proves the daemon shrugged it off.
    Client client(clientParams("vanish"));
    Response ok;
    ASSERT_TRUE(client
                    .mapReads("", slice(0, 4), resilience::WorkBudget{},
                              ok)
                    .ok());
    EXPECT_EQ(ok.status, ResponseStatus::Ok);

    // stop() drains the queue, so the vanished peer's job has been
    // processed (and its lost response counted) by the time we look.
    daemon->stop();
    DaemonReport report = daemon->report();
    EXPECT_EQ(report.accepted, 2u);
    EXPECT_EQ(report.completed, 1u);
    EXPECT_GE(report.errors, 1u);
}

/**
 * Injected torn write on the wire (fault site serve.write): the client's
 * first frame goes out deterministically mangled; the daemon's CRC
 * catches it, answers Error, and the client recovers on a clean retry.
 */
TEST_F(ServeChaosFixture, InjectedTornWriteIsCaughtByCrc)
{
    std::unique_ptr<Daemon> daemon = makeDaemon(daemonParams("tornwrite"));
    daemon->start();

    // The site is process-global; the client's request write is the
    // first writeFrame in this process, so limit=1 pins the fault to it.
    fault::Spec spec;
    spec.kind = fault::Kind::Corrupt;
    spec.limit = 1;
    fault::arm("serve.write", spec);

    Client client(clientParams("tornwrite"));
    Response response;
    util::Status status = client.mapReads(
        "", slice(0, 4), resilience::WorkBudget{}, response);
    ASSERT_TRUE(status.ok()) << status.toString();
    if (response.status != ResponseStatus::Ok) {
        // The mangled frame earned a structured Error; a clean retry
        // must succeed.
        EXPECT_EQ(response.status, ResponseStatus::Error);
        ASSERT_TRUE(client
                        .mapReads("", slice(0, 4),
                                  resilience::WorkBudget{}, response)
                        .ok());
        EXPECT_EQ(response.status, ResponseStatus::Ok);
    }

    daemon->stop();
    EXPECT_GE(daemon->report().badFrames, 1u);
}

/**
 * Fault on the accept path: the daemon skips the poll wakeup, counts it,
 * and accepts the (still pending) connection on the next loop — the
 * client never notices beyond a few hundred milliseconds of latency.
 */
TEST_F(ServeChaosFixture, AcceptFaultDelaysButNeverDropsTheDaemon)
{
    std::unique_ptr<Daemon> daemon = makeDaemon(daemonParams("accept"));
    daemon->start();

    fault::Spec spec;
    spec.kind = fault::Kind::Throw;
    spec.limit = 1;
    fault::arm("serve.accept", spec);

    Client client(clientParams("accept"));
    Response response;
    ASSERT_TRUE(client
                    .mapReads("", slice(0, 4), resilience::WorkBudget{},
                              response)
                    .ok());
    EXPECT_EQ(response.status, ResponseStatus::Ok);

    daemon->stop();
    EXPECT_GE(daemon->report().badFrames, 1u);
    EXPECT_EQ(daemon->report().completed, 1u);
    EXPECT_EQ(fault::stats("serve.accept").fires, 1u);
}

/**
 * Fault on the enqueue step: handleRequest throws after admission
 * control picked the tenant.  The reader loop converts it into a
 * structured Error on the same connection and keeps serving it.
 */
TEST_F(ServeChaosFixture, EnqueueFaultYieldsStructuredErrorAndRecovers)
{
    std::unique_ptr<Daemon> daemon = makeDaemon(daemonParams("enq"));
    daemon->start();

    fault::Spec spec;
    spec.kind = fault::Kind::Throw;
    spec.limit = 1;
    fault::arm("serve.enqueue", spec);

    Client client(clientParams("enq"));
    Response response;
    util::Status status = client.mapReads(
        "", slice(0, 4), resilience::WorkBudget{}, response);
    ASSERT_TRUE(status.ok()) << status.toString();
    EXPECT_EQ(response.status, ResponseStatus::Error);

    // Same client, same connection: the next request maps fine.
    ASSERT_TRUE(client
                    .mapReads("", slice(0, 4), resilience::WorkBudget{},
                              response)
                    .ok());
    EXPECT_EQ(response.status, ResponseStatus::Ok);
    EXPECT_EQ(client.stats().reconnects, 0u);

    daemon->stop();
    EXPECT_EQ(daemon->report().completed, 1u);
}

/**
 * A worker wedges mid-read (injected stall far beyond the heartbeat
 * threshold).  The watchdog cancels the batch token; the remaining reads
 * degrade; the request is still *answered* (Ok, degraded) and the daemon
 * keeps running.
 */
TEST_F(ServeChaosFixture, StalledWorkerIsCancelledByWatchdogAndAnswered)
{
    DaemonParams dparams = daemonParams("stall");
    dparams.workers = 1;
    dparams.watchdogParams.stallSeconds = 0.05;
    dparams.watchdogParams.pollMillis = 10.0;
    std::unique_ptr<Daemon> daemon = makeDaemon(dparams);
    daemon->start();

    fault::Spec spec;
    spec.kind = fault::Kind::Stall;
    spec.stallMillis = 400; // >> stallSeconds: the watchdog must fire
    spec.limit = 1;
    fault::arm("map.read", spec);

    Client client(clientParams("stall"));
    Response response;
    ASSERT_TRUE(client
                    .mapReads("", slice(0, 8), resilience::WorkBudget{},
                              response)
                    .ok());
    EXPECT_EQ(response.status, ResponseStatus::Ok);
    EXPECT_GT(response.degradedReads, 0u);
    EXPECT_NE(response.gaf.find("dg:Z:"), std::string::npos);

    // The daemon is healthy afterwards: a clean request fully maps.
    fault::disarmAll();
    ASSERT_TRUE(client
                    .mapReads("", slice(0, 8), resilience::WorkBudget{},
                              response)
                    .ok());
    EXPECT_EQ(response.status, ResponseStatus::Ok);
    EXPECT_EQ(response.degradedReads, 0u);

    daemon->stop();
    EXPECT_GE(daemon->report().watchdogCancels, 1u);
    EXPECT_EQ(daemon->report().completed, 2u);
}

/**
 * SIGKILL during drain: the hardest exit leaves nothing behind that
 * prevents a fresh daemon from binding the same socket path and serving.
 */
TEST_F(ServeChaosFixture, SigkillDuringDrainLeavesRestartableSocket)
{
    const std::string path = socketPath("kill9");
    int ready[2];
    ASSERT_EQ(::pipe(ready), 0);

    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::close(ready[0]);
        {
            DaemonParams dparams = daemonParams("kill9");
            std::unique_ptr<Daemon> child_daemon =
                makeDaemon(std::move(dparams));
            child_daemon->start();
            child_daemon->requestDrain();
            char byte = 'r';
            if (::write(ready[1], &byte, 1) != 1) {
                _exit(4);
            }
            ::sleep(30); // parent SIGKILLs us mid-drain
        }
        _exit(5); // the backstop tripped: the kill never arrived
    }
    ::close(ready[1]);
    char byte = 0;
    ASSERT_EQ(::read(ready[0], &byte, 1), 1);
    ::close(ready[0]);
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wstatus));
    EXPECT_EQ(WTERMSIG(wstatus), SIGKILL);

    // The stale socket file is still on disk; a fresh daemon must
    // reclaim the path and serve.
    std::unique_ptr<Daemon> daemon = makeDaemon(daemonParams("kill9"));
    daemon->start();
    Client client(clientParams("kill9"));
    Response response;
    ASSERT_TRUE(client
                    .mapReads("", slice(0, 4), resilience::WorkBudget{},
                              response)
                    .ok());
    EXPECT_EQ(response.status, ResponseStatus::Ok);
    daemon->stop();
    EXPECT_TRUE(daemon->report().drainClean);
}

} // namespace
} // namespace mg::serve
