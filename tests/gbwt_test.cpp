/**
 * GBWT correctness tests.  The central oracle: a SearchState extended along
 * any sequence of handles must count exactly the haplotype walks (in the
 * indexed orientation) containing that handle subsequence as a contiguous
 * run, which we verify by brute-force path replay.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gbwt/gbwt.h"
#include "graph/handle.h"
#include "sim/pangenome_gen.h"
#include "util/rng.h"
#include "util/cursor.h"
#include "util/varint.h"

namespace mg::gbwt {
namespace {

using graph::Handle;

/** All oriented walks a builder would index for the given forward walks. */
std::vector<std::vector<Handle>>
orientedWalks(const std::vector<std::vector<Handle>>& forward)
{
    std::vector<std::vector<Handle>> out;
    for (const auto& walk : forward) {
        out.push_back(walk);
        std::vector<Handle> reverse;
        for (auto it = walk.rbegin(); it != walk.rend(); ++it) {
            reverse.push_back(it->flip());
        }
        out.push_back(reverse);
    }
    return out;
}

/** Brute force: number of occurrences of `pattern` across oriented walks. */
uint64_t
countOccurrences(const std::vector<std::vector<Handle>>& oriented,
                 const std::vector<Handle>& pattern)
{
    uint64_t count = 0;
    for (const auto& walk : oriented) {
        if (walk.size() < pattern.size()) {
            continue;
        }
        for (size_t start = 0; start + pattern.size() <= walk.size();
             ++start) {
            bool match = true;
            for (size_t i = 0; i < pattern.size(); ++i) {
                if (walk[start + i] != pattern[i]) {
                    match = false;
                    break;
                }
            }
            if (match) {
                ++count;
            }
        }
    }
    return count;
}

/** Follow a pattern through the index, returning the final state. */
SearchState
followPattern(const Gbwt& gbwt, const std::vector<Handle>& pattern)
{
    SearchState state = gbwt.find(pattern.front());
    for (size_t i = 1; i < pattern.size() && !state.empty(); ++i) {
        state = gbwt.extend(state, pattern[i]);
    }
    return state;
}

TEST(GbwtTest, EmptyBuilderYieldsEmptyIndex)
{
    Gbwt gbwt = GbwtBuilder().build();
    EXPECT_EQ(gbwt.numPaths(), 0u);
    EXPECT_EQ(gbwt.totalVisits(), 0u);
    EXPECT_FALSE(gbwt.hasRecord(Handle(1, false)));
    EXPECT_TRUE(gbwt.find(Handle(1, false)).empty());
}

TEST(GbwtTest, SinglePathCounts)
{
    std::vector<Handle> walk = {Handle(1, false), Handle(2, false),
                                Handle(3, false)};
    GbwtBuilder builder;
    builder.addPath(walk);
    Gbwt gbwt = std::move(builder).build();

    EXPECT_EQ(gbwt.numPaths(), 2u); // forward + reverse
    EXPECT_EQ(gbwt.nodeCount(Handle(1, false)), 1u);
    EXPECT_EQ(gbwt.nodeCount(Handle(1, true)), 1u);
    EXPECT_EQ(gbwt.nodeCount(Handle(2, false)), 1u);
    EXPECT_EQ(gbwt.nodeCount(Handle(4, false)), 0u);

    // Following the path and its reverse both succeed.
    EXPECT_EQ(followPattern(gbwt, walk).size(), 1u);
    std::vector<Handle> reverse = {Handle(3, true), Handle(2, true),
                                   Handle(1, true)};
    EXPECT_EQ(followPattern(gbwt, reverse).size(), 1u);
    // A non-path transition is unsupported.
    std::vector<Handle> wrong = {Handle(1, false), Handle(3, false)};
    EXPECT_TRUE(followPattern(gbwt, wrong).empty());
}

TEST(GbwtTest, SharedBubbleCounts)
{
    // Three haplotypes through a diamond: two take node 2, one takes 3.
    std::vector<std::vector<Handle>> walks = {
        {Handle(1, false), Handle(2, false), Handle(4, false)},
        {Handle(1, false), Handle(2, false), Handle(4, false)},
        {Handle(1, false), Handle(3, false), Handle(4, false)},
    };
    GbwtBuilder builder;
    for (const auto& walk : walks) {
        builder.addPath(walk);
    }
    Gbwt gbwt = std::move(builder).build();

    EXPECT_EQ(gbwt.nodeCount(Handle(1, false)), 3u);
    EXPECT_EQ(gbwt.nodeCount(Handle(2, false)), 2u);
    EXPECT_EQ(gbwt.nodeCount(Handle(3, false)), 1u);

    SearchState at1 = gbwt.find(Handle(1, false));
    EXPECT_EQ(gbwt.extend(at1, Handle(2, false)).size(), 2u);
    EXPECT_EQ(gbwt.extend(at1, Handle(3, false)).size(), 1u);
    EXPECT_TRUE(gbwt.extend(at1, Handle(4, false)).empty());

    // successorStates at node 1 reports both supported branches.
    DecodedRecord rec = gbwt.decodeRecord(Handle(1, false));
    auto succs = rec.successorStates(at1);
    ASSERT_EQ(succs.size(), 2u);
}

TEST(GbwtTest, ExtendMatchesBruteForceOnGeneratedPangenome)
{
    sim::PangenomeParams params;
    params.seed = 77;
    params.backboneLength = 4000;
    params.haplotypes = 6;
    sim::GeneratedPangenome pg = sim::generatePangenome(params);
    auto oriented = orientedWalks(pg.walks);

    util::Rng rng(123);
    // Sample random subpaths of random oriented walks and verify counts.
    for (int trial = 0; trial < 200; ++trial) {
        const auto& walk = oriented[rng.uniform(oriented.size())];
        size_t len = 1 + rng.uniform(std::min<size_t>(8, walk.size()));
        size_t start = rng.uniform(walk.size() - len + 1);
        std::vector<Handle> pattern(walk.begin() + start,
                                    walk.begin() + start + len);
        SearchState state = followPattern(pg.gbwt, pattern);
        EXPECT_EQ(state.size(), countOccurrences(oriented, pattern))
            << "trial " << trial;
    }
}

TEST(GbwtTest, NodeCountsMatchBruteForceEverywhere)
{
    sim::PangenomeParams params;
    params.seed = 78;
    params.backboneLength = 2000;
    params.haplotypes = 5;
    sim::GeneratedPangenome pg = sim::generatePangenome(params);
    auto oriented = orientedWalks(pg.walks);

    for (graph::NodeId id = 1; id <= pg.graph.numNodes(); ++id) {
        for (bool reverse : {false, true}) {
            Handle h(id, reverse);
            EXPECT_EQ(pg.gbwt.nodeCount(h),
                      countOccurrences(oriented, {h}))
                << h.str();
        }
    }
}

TEST(GbwtTest, SuccessorStatesPartitionTheRange)
{
    sim::PangenomeParams params;
    params.seed = 79;
    params.backboneLength = 3000;
    params.haplotypes = 7;
    sim::GeneratedPangenome pg = sim::generatePangenome(params);

    for (graph::NodeId id = 1; id <= pg.graph.numNodes(); ++id) {
        Handle h(id, false);
        DecodedRecord rec = pg.gbwt.decodeRecord(h);
        if (rec.empty()) {
            continue;
        }
        SearchState all(h, 0, rec.numVisits());
        uint64_t successor_total = 0;
        for (const SearchState& succ : rec.successorStates(all)) {
            successor_total += succ.size();
        }
        // Successor states cover all visits except those that end here.
        uint64_t ends = 0;
        uint32_t end_rank = rec.edgeRank(Handle());
        if (end_rank != kNoEdge) {
            ends = rec.countBefore(rec.numVisits(), end_rank);
        }
        EXPECT_EQ(successor_total + ends, rec.numVisits()) << h.str();
    }
}

TEST(GbwtTest, SerializationRoundTrip)
{
    sim::PangenomeParams params;
    params.seed = 80;
    params.backboneLength = 2000;
    params.haplotypes = 4;
    sim::GeneratedPangenome pg = sim::generatePangenome(params);

    util::ByteWriter writer;
    pg.gbwt.save(writer);
    util::ByteCursor reader(writer.bytes());
    Gbwt loaded = Gbwt::load(reader);

    EXPECT_EQ(loaded.numPaths(), pg.gbwt.numPaths());
    EXPECT_EQ(loaded.totalVisits(), pg.gbwt.totalVisits());
    EXPECT_EQ(loaded.compressedBytes(), pg.gbwt.compressedBytes());
    // Spot-check queries agree.
    for (graph::NodeId id = 1; id <= pg.graph.numNodes(); ++id) {
        Handle h(id, false);
        EXPECT_EQ(loaded.nodeCount(h), pg.gbwt.nodeCount(h));
    }
}

TEST(GbwtTest, CompressionIsEffective)
{
    sim::PangenomeParams params;
    params.seed = 81;
    params.backboneLength = 20000;
    params.haplotypes = 16;
    sim::GeneratedPangenome pg = sim::generatePangenome(params);
    // 32 oriented walks over thousands of visits must compress well below
    // a naive 16-byte-per-visit encoding.
    EXPECT_LT(pg.gbwt.compressedBytes(), pg.gbwt.totalVisits() * 4);
}

TEST(GbwtTest, LocateIdentifiesHaplotypes)
{
    // Three walks: 0/1 take node 2, 2 takes node 3 (oriented path ids are
    // 2*h for forward, 2*h+1 for reverse).
    std::vector<std::vector<Handle>> walks = {
        {Handle(1, false), Handle(2, false), Handle(4, false)},
        {Handle(1, false), Handle(2, false), Handle(4, false)},
        {Handle(1, false), Handle(3, false), Handle(4, false)},
    };
    GbwtBuilder builder;
    for (const auto& walk : walks) {
        builder.addPath(walk);
    }
    Gbwt gbwt = std::move(builder).build();

    auto at1 = gbwt.locate(gbwt.find(Handle(1, false)));
    EXPECT_EQ(at1, (std::vector<uint32_t>{0, 2, 4}));
    auto via2 = gbwt.pathsThrough({Handle(1, false), Handle(2, false)});
    EXPECT_EQ(via2, (std::vector<uint32_t>{0, 2}));
    auto via3 = gbwt.pathsThrough({Handle(1, false), Handle(3, false)});
    EXPECT_EQ(via3, (std::vector<uint32_t>{4}));
    // Reverse orientation reports the reverse path ids.
    auto rev = gbwt.pathsThrough({Handle(4, true), Handle(3, true)});
    EXPECT_EQ(rev, (std::vector<uint32_t>{5}));
    // Unsupported walks locate nothing.
    EXPECT_TRUE(gbwt.pathsThrough({Handle(2, false),
                                   Handle(3, false)}).empty());
    EXPECT_TRUE(gbwt.locate(SearchState()).empty());
}

TEST(GbwtTest, LocateMatchesBruteForceOnGeneratedPangenome)
{
    sim::PangenomeParams params;
    params.seed = 82;
    params.backboneLength = 3000;
    params.haplotypes = 5;
    sim::GeneratedPangenome pg = sim::generatePangenome(params);
    auto oriented = orientedWalks(pg.walks);

    util::Rng rng(83);
    for (int trial = 0; trial < 80; ++trial) {
        const auto& walk = oriented[rng.uniform(oriented.size())];
        size_t len = 1 + rng.uniform(std::min<size_t>(6, walk.size()));
        size_t start = rng.uniform(walk.size() - len + 1);
        std::vector<Handle> pattern(walk.begin() + start,
                                    walk.begin() + start + len);
        // Brute force: which oriented walks contain the pattern?
        std::vector<uint32_t> expected;
        for (uint32_t p = 0; p < oriented.size(); ++p) {
            if (countOccurrences({oriented[p]}, pattern) > 0) {
                expected.push_back(p);
            }
        }
        EXPECT_EQ(pg.gbwt.pathsThrough(pattern), expected)
            << "trial " << trial;
    }
}

TEST(GbwtTest, LocateSurvivesSerialization)
{
    sim::PangenomeParams params;
    params.seed = 84;
    params.backboneLength = 1500;
    params.haplotypes = 3;
    sim::GeneratedPangenome pg = sim::generatePangenome(params);
    util::ByteWriter writer;
    pg.gbwt.save(writer);
    util::ByteCursor reader(writer.bytes());
    Gbwt loaded = Gbwt::load(reader);
    for (const auto& walk : pg.walks) {
        std::vector<Handle> prefix(walk.begin(),
                                   walk.begin() +
                                       std::min<size_t>(4, walk.size()));
        EXPECT_EQ(loaded.pathsThrough(prefix),
                  pg.gbwt.pathsThrough(prefix));
    }
}

TEST(GbwtBuilderTest, RejectsBadPaths)
{
    GbwtBuilder builder;
    EXPECT_THROW(builder.addPath({}), util::Error);
    EXPECT_THROW(builder.addPath({Handle(1, true)}), util::Error);
    EXPECT_THROW(builder.addPath({Handle()}), util::Error);
}

TEST(RecordTest, EncodeDecodeRoundTrip)
{
    std::vector<RecordEdge> edges;
    edges.push_back(RecordEdge{Handle(), 0});
    edges.push_back(RecordEdge{Handle(5, false), 3});
    edges.push_back(RecordEdge{Handle(9, true), 12});
    std::vector<RecordRun> runs = {
        {1, 4}, {0, 1}, {2, 2}, {1, 1},
    };
    DecodedRecord rec(std::move(edges), std::move(runs), 8);

    util::ByteWriter writer;
    rec.encode(writer);
    util::ByteCursor reader(writer.bytes());
    DecodedRecord back = DecodedRecord::decode(reader);

    EXPECT_EQ(back.numVisits(), 8u);
    EXPECT_EQ(back.edges().size(), 3u);
    EXPECT_EQ(back.edgeRank(Handle(5, false)), 1u);
    EXPECT_EQ(back.edgeRank(Handle(9, true)), 2u);
    EXPECT_EQ(back.edgeRank(Handle(7, false)), kNoEdge);
    EXPECT_EQ(back.countBefore(8, 1), 5u);
    EXPECT_EQ(back.countBefore(4, 1), 4u);
    EXPECT_EQ(back.countBefore(5, 0), 1u);
}

} // namespace
} // namespace mg::gbwt
