/** Tests for the region profiler. */
#include <gtest/gtest.h>

#include <fstream>
#include <thread>
#include <vector>

#include "perf/profiler.h"
#include "util/common.h"

namespace mg::perf {
namespace {

TEST(ProfilerTest, RegionIdsAreStable)
{
    Profiler profiler;
    RegionId a = profiler.regionId("cluster_seeds");
    RegionId b = profiler.regionId("extend");
    EXPECT_NE(a, b);
    EXPECT_EQ(profiler.regionId("cluster_seeds"), a);
    EXPECT_EQ(profiler.regionName(a), "cluster_seeds");
}

TEST(ProfilerTest, CanonicalRegionsArePreRegistered)
{
    // The canonical regions are registered at construction so trace export
    // and region tables never depend on which code paths happened to run.
    Profiler profiler;
    EXPECT_EQ(profiler.regionName(profiler.regionId(regions::kFindSeeds)),
              regions::kFindSeeds);
    EXPECT_EQ(profiler.regionName(profiler.regionId(regions::kExtend)),
              regions::kExtend);
}

TEST(ProfilerTest, RegionTableFreezesAtFirstRegisterThread)
{
    Profiler profiler;
    RegionId known = profiler.regionId("early_region");
    profiler.registerThread(0);
    // Lookups of known names stay legal after the freeze...
    EXPECT_EQ(profiler.regionId("early_region"), known);
    EXPECT_EQ(profiler.regionId(regions::kClusterSeeds),
              profiler.regionId(regions::kClusterSeeds));
    // ...but new-name registration must throw: the region table is shared
    // with running worker threads.
    EXPECT_THROW(profiler.regionId("late_region"), util::Error);
}

TEST(ProfilerTest, DisabledProfilerRecordsNothing)
{
    Profiler profiler(false);
    EXPECT_EQ(profiler.registerThread(0), nullptr);
    {
        ScopedRegion region(nullptr, 0); // must be a safe no-op
    }
    EXPECT_TRUE(profiler.aggregate().empty());
}

TEST(ProfilerTest, ScopedRegionAccumulatesTime)
{
    Profiler profiler;
    RegionId region = profiler.regionId("work");
    Profiler::ThreadLog* log = profiler.registerThread(0);
    ASSERT_NE(log, nullptr);
    for (int i = 0; i < 3; ++i) {
        ScopedRegion scoped(log, region);
        // Busy loop long enough to be measurable.
        volatile uint64_t x = 0;
        for (int j = 0; j < 10000; ++j) {
            x += j;
        }
    }
    auto totals = profiler.aggregate();
    ASSERT_EQ(totals.size(), 1u);
    EXPECT_EQ(totals[0].region, "work");
    EXPECT_EQ(totals[0].invocations, 3u);
    EXPECT_GT(totals[0].totalNanos, 0u);
    EXPECT_GT(profiler.regionSeconds("work"), 0.0);
    EXPECT_DOUBLE_EQ(profiler.regionSeconds("absent"), 0.0);
}

TEST(ProfilerTest, PerThreadAggregation)
{
    Profiler profiler;
    RegionId region = profiler.regionId("map");
    std::vector<std::thread> threads;
    for (size_t t = 0; t < 4; ++t) {
        threads.emplace_back([&profiler, region, t] {
            Profiler::ThreadLog* log = profiler.registerThread(t);
            for (size_t i = 0; i <= t; ++i) {
                ScopedRegion scoped(log, region);
            }
        });
    }
    for (auto& thread : threads) {
        thread.join();
    }
    auto totals = profiler.aggregate();
    ASSERT_EQ(totals.size(), 4u);
    uint64_t invocations = 0;
    for (const RegionTotal& total : totals) {
        invocations += total.invocations;
    }
    EXPECT_EQ(invocations, 1u + 2u + 3u + 4u);
    EXPECT_EQ(profiler.numThreads(), 4u);
}

TEST(ProfilerTest, DumpCsvWritesRecords)
{
    Profiler profiler;
    RegionId region = profiler.regionId("io");
    Profiler::ThreadLog* log = profiler.registerThread(0);
    {
        ScopedRegion scoped(log, region);
    }
    std::string path = ::testing::TempDir() + "/mg_profile.csv";
    profiler.dumpCsv(path);
    std::ifstream in(path);
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "thread,region,start_ns,end_ns");
    std::string row;
    std::getline(in, row);
    EXPECT_NE(row.find("0,io,"), std::string::npos);
}

TEST(ProfilerTest, ClearRecordsKeepsRegions)
{
    Profiler profiler;
    RegionId region = profiler.regionId("r");
    Profiler::ThreadLog* log = profiler.registerThread(0);
    {
        ScopedRegion scoped(log, region);
    }
    profiler.clearRecords();
    EXPECT_TRUE(profiler.aggregate().empty());
    EXPECT_EQ(profiler.regionId("r"), region);
}

} // namespace
} // namespace mg::perf
