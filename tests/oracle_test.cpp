/**
 * Oracle tests: the mapper's best extension is checked against exhaustive
 * brute-force gapless alignment of the read to every haplotype string,
 * and mapping quality degrades monotonically with injected error rate.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "map/mapper.h"
#include "sim/pangenome_gen.h"
#include "sim/read_sim.h"
#include "util/dna.h"
#include "util/rng.h"

namespace mg::map {
namespace {

/**
 * Brute-force best gapless local alignment score of `read` against
 * `reference` under the extender's scoring (max-score prefix semantics
 * around every possible anchor position, both handled by simply scanning
 * every diagonal and taking the best-scoring window).
 */
int32_t
bestGaplessScore(const std::string& read, const std::string& reference,
                 const ExtendParams& params)
{
    int32_t best = 0;
    if (reference.size() < 1 || read.empty()) {
        return 0;
    }
    // Each diagonal: reference offset d aligns read[i] to reference[d+i].
    for (size_t d = 0; d + 1 <= reference.size(); ++d) {
        size_t span = std::min(read.size(), reference.size() - d);
        // Max-score subarray (Kadane) over per-base score contributions,
        // with the mismatch-budget cap applied within the window.
        // Evaluate all windows explicitly (sizes here are small).
        for (size_t begin = 0; begin < span; ++begin) {
            int32_t score = 0;
            int mismatches = 0;
            for (size_t i = begin; i < span; ++i) {
                if (read[i] == reference[d + i]) {
                    score += params.matchScore;
                } else {
                    if (++mismatches > 2 * params.maxMismatches) {
                        break;
                    }
                    score -= params.mismatchPenalty;
                }
                int32_t bonus = 0;
                if (begin == 0 && i + 1 == read.size()) {
                    bonus = params.fullLengthBonus;
                }
                best = std::max(best, score + bonus);
            }
        }
    }
    return best;
}

class OracleFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sim::PangenomeParams params;
        params.seed = 601;
        params.backboneLength = 6000;
        params.haplotypes = 4;
        params.repeatFraction = 0.0; // keep the oracle tractable
        pg_ = sim::generatePangenome(params);
        index::MinimizerParams mparams;
        mparams.k = 15;
        mparams.w = 8;
        minimizers_ = index::MinimizerIndex(pg_.graph, mparams);
        distance_ = index::DistanceIndex(pg_.graph);
        mapper_ = std::make_unique<Mapper>(pg_.graph, pg_.gbwt,
                                           minimizers_, distance_,
                                           MapperParams());
        state_ = mapper_->makeState();
    }

    int32_t
    oracleBest(const std::string& read_seq) const
    {
        // Best over all haplotypes, both read orientations.
        int32_t best = 0;
        std::string rc = util::reverseComplement(read_seq);
        for (const std::string& hap : pg_.sequences) {
            best = std::max(best, bestGaplessScore(
                                      read_seq, hap,
                                      mapper_->params().extend));
            best = std::max(best, bestGaplessScore(
                                      rc, hap, mapper_->params().extend));
        }
        return best;
    }

    sim::GeneratedPangenome pg_;
    index::MinimizerIndex minimizers_;
    index::DistanceIndex distance_;
    std::unique_ptr<Mapper> mapper_;
    std::unique_ptr<MapperState> state_;
};

TEST_F(OracleFixture, BestExtensionNeverBeatsTheOracle)
{
    // The mapper aligns against the graph, whose walks are exactly the
    // haplotypes (plus recombinants sharing them locally); a score above
    // every per-haplotype alignment would indicate a scoring bug.
    util::Rng rng(602);
    for (int trial = 0; trial < 15; ++trial) {
        const std::string& hap =
            pg_.sequences[rng.uniform(pg_.sequences.size())];
        size_t start = rng.uniform(hap.size() - 80);
        Read read;
        read.name = "r";
        read.sequence = hap.substr(start, 80);
        for (int e = 0; e < 2; ++e) {
            size_t pos = rng.uniform(read.sequence.size());
            read.sequence[pos] = rng.differentBase(read.sequence[pos]);
        }
        MapResult result = mapper_->mapRead(read, *state_);
        if (result.extensions.empty()) {
            continue;
        }
        int32_t oracle = oracleBest(read.sequence);
        EXPECT_LE(result.extensions.front().score, oracle)
            << "trial " << trial;
    }
}

TEST_F(OracleFixture, ErrorFreeReadsAchieveTheOracleScore)
{
    util::Rng rng(603);
    for (int trial = 0; trial < 15; ++trial) {
        const std::string& hap =
            pg_.sequences[rng.uniform(pg_.sequences.size())];
        size_t start = rng.uniform(hap.size() - 80);
        Read read;
        read.name = "r";
        read.sequence = hap.substr(start, 80);
        MapResult result = mapper_->mapRead(read, *state_);
        ASSERT_FALSE(result.extensions.empty()) << "trial " << trial;
        // A perfect read's oracle score is len + bonus; the mapper must
        // reach it (the seed chain covers the true placement).
        int32_t perfect =
            static_cast<int32_t>(read.sequence.size()) *
                mapper_->params().extend.matchScore +
            mapper_->params().extend.fullLengthBonus;
        EXPECT_EQ(result.extensions.front().score, perfect)
            << "trial " << trial;
    }
}

/** Mapping success rate degrades monotonically-ish with error rate. */
class ErrorRateProperty : public ::testing::TestWithParam<double>
{};

TEST_P(ErrorRateProperty, FullLengthRateDropsWithErrors)
{
    sim::PangenomeParams params;
    params.seed = 604;
    params.backboneLength = 10000;
    params.haplotypes = 4;
    sim::GeneratedPangenome pg = sim::generatePangenome(params);
    index::MinimizerParams mparams;
    mparams.k = 15;
    mparams.w = 8;
    index::MinimizerIndex minimizers(pg.graph, mparams);
    index::DistanceIndex distance(pg.graph);
    Mapper mapper(pg.graph, pg.gbwt, minimizers, distance, MapperParams());
    auto state = mapper.makeState();

    sim::ReadSimParams rparams;
    rparams.seed = 605;
    rparams.count = 120;
    rparams.readLength = 120;
    rparams.errorRate = GetParam();
    map::ReadSet reads = sim::simulateReads(pg, rparams);

    size_t full = 0;
    for (const Read& read : reads.reads) {
        MapResult result = mapper.mapRead(read, *state);
        if (!result.extensions.empty() &&
            result.extensions.front().fullLength) {
            ++full;
        }
    }
    double rate =
        static_cast<double>(full) / static_cast<double>(reads.size());
    if (GetParam() <= 0.001) {
        EXPECT_GT(rate, 0.95);
    } else if (GetParam() >= 0.10) {
        // A tenth of bases flipped: full-length gapless mapping collapses.
        EXPECT_LT(rate, 0.35);
    }
}

INSTANTIATE_TEST_SUITE_P(Rates, ErrorRateProperty,
                         ::testing::Values(0.0, 0.001, 0.01, 0.05, 0.10));

} // namespace
} // namespace mg::map
