/** Tests for minimizer selection and the minimizer index. */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "index/minimizer.h"
#include "sim/pangenome_gen.h"
#include "util/dna.h"
#include "util/rng.h"

namespace mg::index {
namespace {

/** Brute-force minimizers: min-hash k-mer of every window. */
std::vector<Minimizer>
bruteForceMinimizers(std::string_view seq, const MinimizerParams& params)
{
    const int k = params.k;
    const int w = params.w;
    std::vector<Minimizer> out;
    if (static_cast<int>(seq.size()) < k + w - 1) {
        // Still emit if at least one window's worth of k-mers exists.
    }
    if (static_cast<int>(seq.size()) < k) {
        return out;
    }
    size_t num_kmers = seq.size() - k + 1;
    std::vector<uint64_t> hashes(num_kmers);
    for (size_t i = 0; i < num_kmers; ++i) {
        hashes[i] = util::hash64(util::packKmer(seq.substr(i), k));
    }
    uint32_t last = UINT32_MAX;
    for (size_t win_end = static_cast<size_t>(w) - 1; win_end < num_kmers;
         ++win_end) {
        size_t win_begin = win_end + 1 - w;
        size_t best = win_begin;
        for (size_t i = win_begin; i <= win_end; ++i) {
            if (hashes[i] < hashes[best]) {
                best = i;
            }
        }
        if (best != last) {
            out.push_back(Minimizer{hashes[best],
                                    static_cast<uint32_t>(best)});
            last = static_cast<uint32_t>(best);
        }
    }
    return out;
}

TEST(MinimizerTest, MatchesBruteForceOnRandomSequences)
{
    util::Rng rng(41);
    MinimizerParams params;
    params.k = 5;
    params.w = 4;
    for (int trial = 0; trial < 100; ++trial) {
        std::string seq = rng.randomDna(10 + rng.uniform(300));
        auto fast = minimizersOf(seq, params);
        auto brute = bruteForceMinimizers(seq, params);
        ASSERT_EQ(fast.size(), brute.size()) << "trial " << trial;
        for (size_t i = 0; i < fast.size(); ++i) {
            EXPECT_EQ(fast[i].offset, brute[i].offset);
            EXPECT_EQ(fast[i].hash, brute[i].hash);
        }
    }
}

TEST(MinimizerTest, ShortSequenceYieldsNothing)
{
    MinimizerParams params;
    params.k = 15;
    params.w = 8;
    EXPECT_TRUE(minimizersOf("ACGTACGT", params).empty());
}

TEST(MinimizerTest, WindowCoverageProperty)
{
    // Density bound: consecutive selected minimizers are less than k + w
    // apart, so any window of w consecutive k-mers contains one.
    util::Rng rng(42);
    MinimizerParams params;
    params.k = 9;
    params.w = 6;
    for (int trial = 0; trial < 30; ++trial) {
        std::string seq = rng.randomDna(500);
        auto mins = minimizersOf(seq, params);
        ASSERT_FALSE(mins.empty());
        EXPECT_LT(mins.front().offset, static_cast<uint32_t>(params.w));
        for (size_t i = 1; i < mins.size(); ++i) {
            EXPECT_GT(mins[i].offset, mins[i - 1].offset);
            EXPECT_LE(mins[i].offset - mins[i - 1].offset,
                      static_cast<uint32_t>(params.w));
        }
    }
}

TEST(MinimizerTest, HashMatchesKmerContent)
{
    MinimizerParams params;
    params.k = 7;
    params.w = 5;
    util::Rng rng(43);
    std::string seq = rng.randomDna(200);
    for (const Minimizer& min : minimizersOf(seq, params)) {
        uint64_t expected =
            util::hash64(util::packKmer(seq.substr(min.offset), params.k));
        EXPECT_EQ(min.hash, expected);
    }
}

class MinimizerIndexTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sim::PangenomeParams params;
        params.seed = 55;
        params.backboneLength = 8000;
        params.haplotypes = 6;
        pg_ = sim::generatePangenome(params);
        indexParams_.k = 15;
        indexParams_.w = 8;
        index_ = MinimizerIndex(pg_.graph, indexParams_);
    }

    sim::GeneratedPangenome pg_;
    MinimizerParams indexParams_;
    MinimizerIndex index_;
};

TEST_F(MinimizerIndexTest, IndexIsNonTrivial)
{
    EXPECT_GT(index_.numKeys(), 100u);
    EXPECT_GE(index_.numEntries(), index_.numKeys());
}

TEST_F(MinimizerIndexTest, LookupMissReturnsEmpty)
{
    auto [positions, count] = index_.lookup(0xdeadbeefdeadbeefull);
    EXPECT_EQ(count, 0u);
    EXPECT_EQ(positions, nullptr);
}

TEST_F(MinimizerIndexTest, IndexedPositionsSpellTheirKmer)
{
    // Every indexed position must actually spell a k-mer that hashes to
    // its key.  Verify via haplotype minimizers (the source of entries).
    size_t checked = 0;
    for (const std::string& hap : pg_.sequences) {
        for (const Minimizer& min : minimizersOf(hap, indexParams_)) {
            auto [positions, count] = index_.lookup(min.hash);
            ASSERT_GT(count, 0u);
            ++checked;
            if (checked > 500) {
                return;
            }
        }
    }
}

TEST_F(MinimizerIndexTest, ReadFromHaplotypeAlwaysSeeds)
{
    // An error-free read sampled from an indexed haplotype shares all its
    // minimizers with the index.
    util::Rng rng(56);
    for (int trial = 0; trial < 50; ++trial) {
        const std::string& hap =
            pg_.sequences[rng.uniform(pg_.sequences.size())];
        size_t start = rng.uniform(hap.size() - 150);
        std::string read = hap.substr(start, 150);
        auto mins = minimizersOf(read, indexParams_);
        ASSERT_FALSE(mins.empty());
        size_t found = 0;
        for (const Minimizer& min : mins) {
            auto [positions, count] = index_.lookup(min.hash);
            (void)positions;
            if (count > 0) {
                ++found;
            }
        }
        // All of them (repeat-filtered entries could drop a few).
        EXPECT_GE(found * 10, mins.size() * 9) << "trial " << trial;
    }
}

TEST_F(MinimizerIndexTest, PositionsPointAtRealNodes)
{
    // Walk a few keys' position lists and bounds-check them.
    util::Rng rng(57);
    std::string probe = pg_.sequences[0].substr(0, 400);
    for (const Minimizer& min : minimizersOf(probe, indexParams_)) {
        auto [positions, count] = index_.lookup(min.hash);
        for (size_t i = 0; i < count; ++i) {
            ASSERT_TRUE(pg_.graph.hasNode(positions[i].handle.id()));
            ASSERT_LT(positions[i].offset,
                      pg_.graph.length(positions[i].handle.id()));
        }
    }
}

TEST_F(MinimizerIndexTest, PackedPathMatchesStringSweep)
{
    // The packed-arena sweep (minimizersOfPath rolling codes out of
    // chunk32 fetches) must produce exactly the minimizers of the decoded
    // path string — same offsets, same hashes, same order.
    for (const graph::PathEntry& path : pg_.graph.paths()) {
        auto packed = minimizersOfPath(pg_.graph, path.steps, indexParams_);
        auto decoded = minimizersOf(pg_.graph.pathSequence(path.steps),
                                    indexParams_);
        ASSERT_EQ(packed.size(), decoded.size());
        for (size_t i = 0; i < packed.size(); ++i) {
            ASSERT_EQ(packed[i].offset, decoded[i].offset);
            ASSERT_EQ(packed[i].hash, decoded[i].hash);
        }
    }
}

TEST_F(MinimizerIndexTest, ParallelBuildIsIdenticalToSerial)
{
    // Fan-out over the work-stealing scheduler must not change the index:
    // per-path results merge in path order before the global sort.
    MinimizerParams serial = indexParams_;
    serial.buildThreads = 1;
    MinimizerParams parallel = indexParams_;
    parallel.buildThreads = 4;
    MinimizerIndex a(pg_.graph, serial);
    MinimizerIndex b(pg_.graph, parallel);
    ASSERT_EQ(a.numKeys(), b.numKeys());
    ASSERT_EQ(a.numEntries(), b.numEntries());
    EXPECT_EQ(a.keys(), b.keys());
    ASSERT_EQ(a.positions().size(), b.positions().size());
    for (size_t i = 0; i < a.positions().size(); ++i) {
        ASSERT_EQ(a.positions()[i], b.positions()[i]);
    }
}

TEST(MinimizerIndexFilterTest, RepeatFilterDropsFrequentKeys)
{
    // A graph that is one long homopolymer-ish repeat: with a tiny
    // occurrence cap, the index drops the over-frequent keys.
    graph::VariationGraph g;
    std::string unit = "ACGTACGTACGTACGTACGTACGTACGTACGT";
    std::string repeat;
    for (int i = 0; i < 16; ++i) {
        repeat += unit;
    }
    graph::NodeId node = g.addNode(repeat);
    g.addPath("hap", {graph::Handle(node, false)});

    MinimizerParams strict;
    strict.k = 8;
    strict.w = 4;
    strict.maxOccurrences = 2;
    MinimizerIndex filtered(g, strict);

    MinimizerParams loose = strict;
    loose.maxOccurrences = 100000;
    MinimizerIndex unfiltered(g, loose);

    EXPECT_LT(filtered.numEntries(), unfiltered.numEntries());
}

} // namespace
} // namespace mg::index
