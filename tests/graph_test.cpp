/** Tests for handles and the variation graph. */
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/variation_graph.h"
#include "sim/pangenome_gen.h"
#include "util/common.h"

namespace mg::graph {
namespace {

TEST(HandleTest, PackingRoundTrip)
{
    Handle h(42, true);
    EXPECT_EQ(h.id(), 42u);
    EXPECT_TRUE(h.isReverse());
    EXPECT_EQ(Handle::fromPacked(h.packed()), h);
}

TEST(HandleTest, FlipIsInvolution)
{
    Handle h(7, false);
    EXPECT_EQ(h.flip().flip(), h);
    EXPECT_NE(h.flip(), h);
    EXPECT_EQ(h.flip().id(), h.id());
}

TEST(HandleTest, InvalidHandle)
{
    Handle h;
    EXPECT_FALSE(h.valid());
    EXPECT_TRUE(Handle(1, false).valid());
}

TEST(HandleTest, StringRendering)
{
    EXPECT_EQ(Handle(12, false).str(), "12+");
    EXPECT_EQ(Handle(12, true).str(), "12-");
}

/** Tiny diamond graph used by several fixtures: 1 -> {2,3} -> 4. */
VariationGraph
diamond()
{
    VariationGraph g;
    NodeId a = g.addNode("ACGT");   // 1
    NodeId b = g.addNode("T");      // 2
    NodeId c = g.addNode("G");      // 3
    NodeId d = g.addNode("CCAA");   // 4
    g.addEdge(Handle(a, false), Handle(b, false));
    g.addEdge(Handle(a, false), Handle(c, false));
    g.addEdge(Handle(b, false), Handle(d, false));
    g.addEdge(Handle(c, false), Handle(d, false));
    return g;
}

TEST(VariationGraphTest, BasicCounts)
{
    VariationGraph g = diamond();
    EXPECT_EQ(g.numNodes(), 4u);
    EXPECT_EQ(g.numEdges(), 4u);
    EXPECT_EQ(g.totalSequenceLength(), 10u);
}

TEST(VariationGraphTest, RejectsBadSequences)
{
    VariationGraph g;
    EXPECT_THROW(g.addNode(""), util::Error);
    // Non-letter characters are invalid under the canonicalization policy.
    EXPECT_THROW(g.addNode("AC-T"), util::Error);
    EXPECT_THROW(g.addNode("ACG*"), util::Error);
}

TEST(VariationGraphTest, CanonicalizesAmbiguityLetters)
{
    // Policy (util/dna.h): ambiguity letters -> 'A' with a count; lower
    // case upper-cased without counting.  Both strands reflect the
    // canonical bases.
    VariationGraph g;
    NodeId a = g.addNode("ACGN");
    NodeId b = g.addNode("acgt");
    EXPECT_EQ(g.forwardSequence(a), "ACGA");
    EXPECT_EQ(g.forwardSequence(b), "ACGT");
    EXPECT_EQ(g.sequence(Handle(a, true)), "TCGT");
    EXPECT_EQ(g.sanitizedBases(), 1u);
}

TEST(VariationGraphTest, EdgeCreatesReverseTwin)
{
    VariationGraph g = diamond();
    // Edge 1+ -> 2+ implies 2- -> 1-.
    EXPECT_TRUE(g.hasEdge(Handle(1, false), Handle(2, false)));
    EXPECT_TRUE(g.hasEdge(Handle(2, true), Handle(1, true)));
    EXPECT_FALSE(g.hasEdge(Handle(2, false), Handle(1, false)));
}

TEST(VariationGraphTest, EdgeIsIdempotent)
{
    VariationGraph g = diamond();
    size_t before = g.numEdges();
    g.addEdge(Handle(1, false), Handle(2, false));
    EXPECT_EQ(g.numEdges(), before);
}

TEST(VariationGraphTest, EdgeToUnknownNodeThrows)
{
    VariationGraph g = diamond();
    EXPECT_THROW(g.addEdge(Handle(1, false), Handle(9, false)),
                 util::Error);
}

TEST(VariationGraphTest, SequenceRespectsOrientation)
{
    VariationGraph g = diamond();
    EXPECT_EQ(g.sequence(Handle(1, false)), "ACGT");
    EXPECT_EQ(g.sequence(Handle(1, true)), "ACGT"); // palindrome
    EXPECT_EQ(g.sequence(Handle(4, false)), "CCAA");
    EXPECT_EQ(g.sequence(Handle(4, true)), "TTGG");
}

TEST(VariationGraphTest, BaseAccessorMatchesSequence)
{
    VariationGraph g = diamond();
    for (NodeId id = 1; id <= g.numNodes(); ++id) {
        for (bool reverse : {false, true}) {
            Handle h(id, reverse);
            std::string seq = g.sequence(h);
            for (size_t i = 0; i < seq.size(); ++i) {
                EXPECT_EQ(g.base(h, i), seq[i])
                    << h.str() << " offset " << i;
            }
        }
    }
}

TEST(VariationGraphTest, SuccessorsAndPredecessors)
{
    VariationGraph g = diamond();
    auto succ = g.successors(Handle(1, false));
    EXPECT_EQ(succ.size(), 2u);
    auto preds = g.predecessors(Handle(4, false));
    ASSERT_EQ(preds.size(), 2u);
    std::vector<NodeId> ids = {preds[0].id(), preds[1].id()};
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids[0], 2u);
    EXPECT_EQ(ids[1], 3u);
}

TEST(VariationGraphTest, PathValidationRequiresEdges)
{
    VariationGraph g = diamond();
    EXPECT_THROW(
        g.addPath("bad", {Handle(2, false), Handle(3, false)}),
        util::Error);
    g.addPath("good", {Handle(1, false), Handle(2, false),
                       Handle(4, false)});
    EXPECT_EQ(g.numPaths(), 1u);
}

TEST(VariationGraphTest, PathSequenceConcatenates)
{
    VariationGraph g = diamond();
    std::vector<Handle> steps = {Handle(1, false), Handle(3, false),
                                 Handle(4, false)};
    g.addPath("p", steps);
    EXPECT_EQ(g.pathSequence(steps), "ACGTGCCAA");
}

TEST(VariationGraphTest, TopologicalOrderRespectsEdges)
{
    VariationGraph g = diamond();
    std::vector<NodeId> order = g.topologicalOrder();
    ASSERT_EQ(order.size(), 4u);
    std::vector<size_t> rank(5);
    for (size_t i = 0; i < order.size(); ++i) {
        rank[order[i]] = i;
    }
    EXPECT_LT(rank[1], rank[2]);
    EXPECT_LT(rank[1], rank[3]);
    EXPECT_LT(rank[2], rank[4]);
    EXPECT_LT(rank[3], rank[4]);
}

TEST(VariationGraphTest, TopologicalOrderDetectsCycle)
{
    VariationGraph g;
    NodeId a = g.addNode("A");
    NodeId b = g.addNode("C");
    g.addEdge(Handle(a, false), Handle(b, false));
    g.addEdge(Handle(b, false), Handle(a, false));
    EXPECT_THROW(g.topologicalOrder(), util::Error);
}

TEST(VariationGraphTest, ValidatePassesOnGeneratedPangenome)
{
    sim::PangenomeParams params;
    params.backboneLength = 5000;
    params.haplotypes = 4;
    sim::GeneratedPangenome pg = sim::generatePangenome(params);
    EXPECT_NO_THROW(pg.graph.validate());
    EXPECT_NO_THROW(pg.graph.topologicalOrder());
}

/** Property sweep: generated pangenomes of many shapes stay valid DAGs. */
class GeneratedGraphProperty
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>>
{};

TEST_P(GeneratedGraphProperty, ValidDagWithConsistentPaths)
{
    auto [backbone, haps] = GetParam();
    sim::PangenomeParams params;
    params.seed = backbone * 31 + haps;
    params.backboneLength = backbone;
    params.haplotypes = haps;
    sim::GeneratedPangenome pg = sim::generatePangenome(params);
    pg.graph.validate();
    std::vector<NodeId> order = pg.graph.topologicalOrder();
    EXPECT_EQ(order.size(), pg.graph.numNodes());
    // Haplotype walks and spelled sequences agree.
    ASSERT_EQ(pg.walks.size(), haps);
    for (size_t h = 0; h < haps; ++h) {
        EXPECT_EQ(pg.graph.pathSequence(pg.walks[h]), pg.sequences[h]);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeneratedGraphProperty,
    ::testing::Combine(::testing::Values(500, 2000, 8000),
                       ::testing::Values(1, 2, 8, 16)));

} // namespace
} // namespace mg::graph
