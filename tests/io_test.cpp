/** Serialization round-trip and validation tests for the io module. */
#include <gtest/gtest.h>

#include "io/extensions_io.h"
#include "io/fastq.h"
#include "io/file.h"
#include "io/mgz.h"
#include "io/reads_bin.h"
#include "sim/pangenome_gen.h"
#include "util/common.h"
#include "util/status.h"

namespace mg::io {
namespace {

sim::GeneratedPangenome
makePangenome(uint64_t seed = 90)
{
    sim::PangenomeParams params;
    params.seed = seed;
    params.backboneLength = 4000;
    params.haplotypes = 5;
    return sim::generatePangenome(params);
}

TEST(FileTest, BytesRoundTrip)
{
    std::string path = ::testing::TempDir() + "/mg_file_test.bin";
    std::vector<uint8_t> bytes = {0, 1, 2, 255, 128, 7};
    writeFileBytes(path, bytes);
    EXPECT_EQ(readFileBytes(path), bytes);
}

TEST(FileTest, MissingFileThrows)
{
    EXPECT_THROW(readFileBytes("/nonexistent/definitely/nope"),
                 util::Error);
}

TEST(MgzTest, RoundTripPreservesEverything)
{
    sim::GeneratedPangenome pg = makePangenome();
    std::vector<uint8_t> bytes = encodeMgz(pg.graph, pg.gbwt);
    Pangenome loaded = decodeMgz(bytes);

    EXPECT_EQ(loaded.graph.numNodes(), pg.graph.numNodes());
    EXPECT_EQ(loaded.graph.numEdges(), pg.graph.numEdges());
    EXPECT_EQ(loaded.graph.numPaths(), pg.graph.numPaths());
    for (graph::NodeId id = 1; id <= pg.graph.numNodes(); ++id) {
        ASSERT_EQ(loaded.graph.forwardSequence(id), pg.graph.forwardSequence(id));
    }
    for (size_t p = 0; p < pg.graph.numPaths(); ++p) {
        EXPECT_EQ(loaded.graph.path(p).name, pg.graph.path(p).name);
        ASSERT_EQ(loaded.graph.path(p).steps, pg.graph.path(p).steps);
    }
    // Edge sets match exactly.
    for (graph::NodeId id = 1; id <= pg.graph.numNodes(); ++id) {
        for (bool reverse : {false, true}) {
            graph::Handle h(id, reverse);
            auto a = pg.graph.successors(h);
            for (graph::Handle succ : a) {
                EXPECT_TRUE(loaded.graph.hasEdge(h, succ))
                    << h.str() << "->" << succ.str();
            }
            EXPECT_EQ(loaded.graph.successors(h).size(), a.size());
        }
    }
    // GBWT queries agree.
    EXPECT_EQ(loaded.gbwt.numPaths(), pg.gbwt.numPaths());
    for (graph::NodeId id = 1; id <= pg.graph.numNodes(); ++id) {
        graph::Handle h(id, false);
        EXPECT_EQ(loaded.gbwt.nodeCount(h), pg.gbwt.nodeCount(h));
    }
    loaded.graph.validate();
}

TEST(MgzTest, FileRoundTrip)
{
    sim::GeneratedPangenome pg = makePangenome(91);
    std::string path = ::testing::TempDir() + "/mg_test.mgz";
    saveMgz(path, pg.graph, pg.gbwt);
    Pangenome loaded = loadMgz(path);
    EXPECT_EQ(loaded.graph.numNodes(), pg.graph.numNodes());
}

TEST(MgzTest, CompressionBeatsNaiveEncoding)
{
    sim::PangenomeParams params;
    params.seed = 92;
    params.backboneLength = 20000;
    params.haplotypes = 8;
    sim::GeneratedPangenome pg = sim::generatePangenome(params);
    std::vector<uint8_t> bytes = encodeMgz(pg.graph, pg.gbwt);
    // Naive cost: 1 byte/base plus 8 bytes per path step plus 8 bytes per
    // GBWT visit.  MGZ's 2-bit packing + varints must beat it handily.
    size_t path_steps = 0;
    for (const graph::PathEntry& path : pg.graph.paths()) {
        path_steps += path.steps.size();
    }
    size_t naive = pg.graph.totalSequenceLength() + 8 * path_steps +
                   8 * pg.gbwt.totalVisits();
    EXPECT_LT(bytes.size(), naive / 2);
}

TEST(MgzTest, BadMagicThrows)
{
    std::vector<uint8_t> bytes = {'N', 'O', 'P', 'E', 0, 0};
    EXPECT_THROW(decodeMgz(bytes), util::Error);
}

TEST(MgzTest, TruncatedPayloadThrows)
{
    sim::GeneratedPangenome pg = makePangenome(93);
    std::vector<uint8_t> bytes = encodeMgz(pg.graph, pg.gbwt);
    bytes.resize(bytes.size() / 2);
    EXPECT_THROW(decodeMgz(bytes), util::Error);
}

TEST(MgzTest, LegacyV1FilesStillDecode)
{
    sim::GeneratedPangenome pg = makePangenome(94);
    std::vector<uint8_t> v1 = encodeMgz(pg.graph, pg.gbwt, MgzVersion::V1);
    std::vector<uint8_t> v2 = encodeMgz(pg.graph, pg.gbwt, MgzVersion::V2);
    EXPECT_NE(v1, v2);

    Pangenome loaded = decodeMgz(v1);
    EXPECT_EQ(loaded.graph.numNodes(), pg.graph.numNodes());
    EXPECT_EQ(loaded.graph.numEdges(), pg.graph.numEdges());
    EXPECT_EQ(loaded.gbwt.numPaths(), pg.gbwt.numPaths());
    loaded.graph.validate();

    MgzInfo info = inspectMgz(v1);
    EXPECT_EQ(info.version, MgzVersion::V1);
    EXPECT_TRUE(info.sections.empty()); // no section table to report
    EXPECT_TRUE(info.allChecksumsOk()); // vacuously
}

TEST(MgzTest, ChecksumMismatchNamesTheDamagedSection)
{
    sim::GeneratedPangenome pg = makePangenome(95);
    std::vector<uint8_t> bytes = encodeMgz(pg.graph, pg.gbwt);
    MgzInfo clean = inspectMgz(bytes, "graph.mgz");
    ASSERT_EQ(clean.sections.size(), 4u);
    EXPECT_TRUE(clean.allChecksumsOk());

    // Flip one byte in the middle of the "edges" payload, located via
    // the inspection report rather than hard-coded offsets.
    const MgzSectionInfo& edges = clean.sections[1];
    ASSERT_STREQ(edges.name, "edges");
    ASSERT_GT(edges.size, 0u);
    std::vector<uint8_t> bad = bytes;
    bad[edges.offset + edges.size / 2] ^= 0x40;

    try {
        decodeMgz(bad, "graph.mgz");
        FAIL() << "expected throw";
    } catch (const util::StatusError& e) {
        EXPECT_EQ(e.status().code, util::StatusCode::ChecksumMismatch);
        EXPECT_EQ(e.status().file, "graph.mgz");
        EXPECT_EQ(e.status().section, "edges");
    }
}

TEST(MgzTest, InspectReportsEveryDamagedSection)
{
    sim::GeneratedPangenome pg = makePangenome(96);
    std::vector<uint8_t> bytes = encodeMgz(pg.graph, pg.gbwt);
    MgzInfo clean = inspectMgz(bytes);
    ASSERT_EQ(clean.sections.size(), 4u);

    // Damage "nodes" and "gbwt"; leave "edges" and "paths" intact.
    std::vector<uint8_t> bad = bytes;
    bad[clean.sections[0].offset] ^= 0x01;
    bad[clean.sections[3].offset] ^= 0x01;

    MgzInfo report = inspectMgz(bad);
    ASSERT_EQ(report.sections.size(), 4u);
    EXPECT_FALSE(report.allChecksumsOk());
    EXPECT_FALSE(report.sections[0].crcOk); // nodes
    EXPECT_TRUE(report.sections[1].crcOk);  // edges
    EXPECT_TRUE(report.sections[2].crcOk);  // paths
    EXPECT_FALSE(report.sections[3].crcOk); // gbwt
    EXPECT_NE(report.sections[0].crcComputed,
              report.sections[0].crcStored);
}

TEST(SeedCaptureTest, RoundTrip)
{
    SeedCapture capture;
    capture.pairedEnd = true;
    for (int r = 0; r < 3; ++r) {
        ReadWithSeeds entry;
        entry.read.name = "read" + std::to_string(r);
        entry.read.sequence = "ACGTACGTAC";
        entry.read.mate = r == 0 ? 1 : SIZE_MAX;
        for (int s = 0; s < 4; ++s) {
            map::Seed seed;
            seed.position.handle = graph::Handle(10 + s, s % 2 == 1);
            seed.position.offset = static_cast<uint32_t>(s * 3);
            seed.readOffset = static_cast<uint32_t>(s);
            seed.onReverseRead = s % 2 == 0;
            seed.score = 0.125f * static_cast<float>(s + 1);
            entry.seeds.push_back(seed);
        }
        capture.entries.push_back(entry);
    }
    std::vector<uint8_t> bytes = encodeSeedCapture(capture);
    SeedCapture loaded = decodeSeedCapture(bytes);
    EXPECT_EQ(loaded.pairedEnd, capture.pairedEnd);
    ASSERT_EQ(loaded.entries.size(), capture.entries.size());
    for (size_t r = 0; r < capture.entries.size(); ++r) {
        EXPECT_EQ(loaded.entries[r].read.name,
                  capture.entries[r].read.name);
        EXPECT_EQ(loaded.entries[r].read.sequence,
                  capture.entries[r].read.sequence);
        EXPECT_EQ(loaded.entries[r].read.mate,
                  capture.entries[r].read.mate);
        ASSERT_EQ(loaded.entries[r].seeds.size(),
                  capture.entries[r].seeds.size());
        for (size_t s = 0; s < capture.entries[r].seeds.size(); ++s) {
            const map::Seed& a = loaded.entries[r].seeds[s];
            const map::Seed& b = capture.entries[r].seeds[s];
            EXPECT_TRUE(a == b);
            EXPECT_EQ(a.score, b.score); // exact float round-trip
        }
    }
}

TEST(ExtensionsIoTest, RoundTrip)
{
    std::vector<ReadExtensions> all;
    ReadExtensions entry;
    entry.readName = "readX";
    map::GaplessExtension ext;
    ext.path = {graph::Handle(3, false), graph::Handle(4, true)};
    ext.startOffset = 2;
    ext.readBegin = 5;
    ext.readEnd = 45;
    ext.mismatchOffsets = {7, 20};
    ext.score = 40 - 8;
    ext.onReverseRead = true;
    ext.fullLength = false;
    entry.extensions.push_back(ext);
    all.push_back(entry);

    auto loaded = decodeExtensions(encodeExtensions(all));
    ASSERT_EQ(loaded.size(), 1u);
    ASSERT_EQ(loaded[0].extensions.size(), 1u);
    EXPECT_TRUE(loaded[0].extensions[0] == ext);
    EXPECT_EQ(loaded[0].extensions[0].score, ext.score);
    EXPECT_EQ(loaded[0].extensions[0].fullLength, ext.fullLength);
}

TEST(ExtensionsIoTest, ValidationDetectsPerfectMatch)
{
    std::vector<ReadExtensions> a;
    ReadExtensions entry;
    entry.readName = "r";
    map::GaplessExtension ext;
    ext.path = {graph::Handle(1, false)};
    ext.readEnd = 10;
    ext.score = 10;
    entry.extensions.push_back(ext);
    a.push_back(entry);

    ValidationReport report = validateExtensions(a, a);
    EXPECT_TRUE(report.perfectMatch());
    EXPECT_EQ(report.readsCompared, 1u);
    EXPECT_EQ(report.extensionsExpected, 1u);
    EXPECT_EQ(report.extensionsFound, 1u);
}

TEST(ExtensionsIoTest, ValidationDetectsMissingAndUnexpected)
{
    map::GaplessExtension e1;
    e1.path = {graph::Handle(1, false)};
    e1.readEnd = 10;
    map::GaplessExtension e2 = e1;
    e2.readEnd = 20;

    std::vector<ReadExtensions> expected = {{"r", {e1, e2}}};
    std::vector<ReadExtensions> candidate = {{"r", {e2}}};
    ValidationReport report = validateExtensions(expected, candidate);
    EXPECT_FALSE(report.perfectMatch());
    EXPECT_EQ(report.missing, 1u);
    EXPECT_EQ(report.unexpected, 0u);

    // Swap roles: now there is an unexpected extension.
    report = validateExtensions(candidate, expected);
    EXPECT_EQ(report.missing, 0u);
    EXPECT_EQ(report.unexpected, 1u);
}

TEST(ExtensionsIoTest, ValidationCountsDuplicates)
{
    map::GaplessExtension e;
    e.path = {graph::Handle(1, false)};
    e.readEnd = 10;
    std::vector<ReadExtensions> two = {{"r", {e, e}}};
    std::vector<ReadExtensions> one = {{"r", {e}}};
    ValidationReport report = validateExtensions(two, one);
    EXPECT_EQ(report.missing, 1u);
}

TEST(FastqTest, RoundTrip)
{
    map::ReadSet reads;
    for (int i = 0; i < 3; ++i) {
        map::Read read;
        read.name = "seq" + std::to_string(i);
        read.sequence = "ACGTACGTA";
        reads.reads.push_back(read);
    }
    map::ReadSet loaded = parseFastq(formatFastq(reads));
    ASSERT_EQ(loaded.reads.size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(loaded.reads[i].name, reads.reads[i].name);
        EXPECT_EQ(loaded.reads[i].sequence, reads.reads[i].sequence);
    }
}

TEST(FastqTest, MalformedInputThrows)
{
    EXPECT_THROW(parseFastq("@x\nACGT\n"), util::Error);           // 2 lines
    EXPECT_THROW(parseFastq("x\nACGT\n+\nIIII\n"), util::Error);   // no @
    EXPECT_THROW(parseFastq("@x\nAC-T\n+\nIIII\n"), util::Error);  // garbage
    EXPECT_THROW(parseFastq("@x\nACGT\n-\nIIII\n"), util::Error);  // no +
    EXPECT_THROW(parseFastq("@x\nACGT\n+\nII\n"), util::Error);    // short Q
}

TEST(FastqTest, AmbiguityLettersCanonicalized)
{
    // Policy (util/dna.h): ambiguity letters -> 'A', counted; lower-case
    // acgt upper-cased without counting; non-letters reject (test above).
    map::ReadSet set = parseFastq("@x\nACGN\n+\nIIII\n@y\nacgt\n+\nIIII\n");
    ASSERT_EQ(set.reads.size(), 2u);
    EXPECT_EQ(set.reads[0].sequence, "ACGA");
    EXPECT_EQ(set.reads[1].sequence, "ACGT");
    EXPECT_EQ(set.sanitizedBases, 1u);
}

} // namespace
} // namespace mg::io
