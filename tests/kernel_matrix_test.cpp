/**
 * Kernel-matrix suite: every KernelVariant × walk mode must be observably
 * identical.  The dispatch layer (util/simd) promises that Scalar, Swar,
 * Simd, and Auto produce the same match lengths, and the extension engine
 * promises that lockstep batching reorders only the schedule, never the
 * result — so the full pipeline must emit byte-identical GAF under every
 * combination.  The suite also pins the degrade path (a Simd request on a
 * CPU without wide units falls back to Swar and keeps working, never
 * crashes) and the one-pass successorStatesInto against the per-edge
 * extend() formulation it replaced.
 *
 * Registered under the `kernel-matrix` ctest label; the asan/tsan presets
 * include it so the forced-variant walks also run sanitized.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "giraffe/alignment.h"
#include "giraffe/parent.h"
#include "index/distance.h"
#include "index/minimizer.h"
#include "io/gaf.h"
#include "io/reads_bin.h"
#include "map/mapper.h"
#include "sim/input_sets.h"
#include "util/simd.h"

namespace mg::map {
namespace {

struct MatrixWorld
{
    sim::InputSet set;
    index::MinimizerIndex minimizers;
    index::DistanceIndex distance;
    io::SeedCapture capture;
};

MatrixWorld
buildWorld(const std::string& input_set, double scale)
{
    MatrixWorld world;
    world.set = sim::buildInputSet(sim::inputSetSpec(input_set), scale);
    index::MinimizerParams mparams;
    mparams.k = 15;
    mparams.w = 8;
    world.minimizers =
        index::MinimizerIndex(world.set.pangenome.graph, mparams);
    world.distance = index::DistanceIndex(world.set.pangenome.graph);
    giraffe::ParentEmulator parent(world.set.pangenome.graph,
                                   world.set.pangenome.gbwt,
                                   world.minimizers, world.distance,
                                   giraffe::ParentParams());
    world.capture = parent.capturePreprocessing(world.set.reads);
    return world;
}

/** Map every captured read under one kernel/mode combination. */
struct PipelineRun
{
    std::vector<MapResult> results;
    std::string gaf;
};

PipelineRun
runPipeline(const MatrixWorld& world, util::KernelVariant kernel,
            bool lockstep)
{
    MapperParams params;
    params.extend.kernel = kernel;
    params.extend.lockstep = lockstep;
    Mapper mapper(world.set.pangenome.graph, world.set.pangenome.gbwt,
                  world.minimizers, world.distance, params);
    auto state = mapper.makeState();

    PipelineRun run;
    std::vector<giraffe::Alignment> alignments;
    ReadSet reads;
    for (const io::ReadWithSeeds& entry : world.capture.entries) {
        MapResult result =
            mapper.mapFromSeeds(entry.read, entry.seeds, *state);
        alignments.push_back(giraffe::postProcess(
            entry.read.name, result.extensions,
            giraffe::PostProcessParams()));
        reads.reads.push_back(entry.read);
        run.results.push_back(std::move(result));
    }
    run.gaf = io::formatGaf(alignments, reads, world.set.pangenome.graph);
    return run;
}

void
expectIdenticalResults(const PipelineRun& got, const PipelineRun& ref,
                       const std::string& combo)
{
    ASSERT_EQ(got.results.size(), ref.results.size()) << combo;
    for (size_t r = 0; r < got.results.size(); ++r) {
        const MapResult& g = got.results[r];
        const MapResult& e = ref.results[r];
        ASSERT_EQ(g.extensions.size(), e.extensions.size())
            << combo << " read " << r;
        for (size_t i = 0; i < g.extensions.size(); ++i) {
            EXPECT_EQ(g.extensions[i], e.extensions[i])
                << combo << " read " << r << " extension " << i;
            EXPECT_EQ(g.extensions[i].str(), e.extensions[i].str())
                << combo << " read " << r << " extension " << i;
        }
    }
    EXPECT_EQ(got.gaf, ref.gaf)
        << combo << ": GAF must be byte-identical";
}

class KernelMatrix : public ::testing::TestWithParam<const char*>
{};

TEST_P(KernelMatrix, GafByteIdenticalAcrossVariantsAndWalkModes)
{
    MatrixWorld world = buildWorld(GetParam(), 0.04);
    ASSERT_FALSE(world.capture.entries.empty());

    // Reference: the scalar oracle on the sequential walk.
    PipelineRun ref =
        runPipeline(world, util::KernelVariant::Scalar, false);
    EXPECT_FALSE(ref.gaf.empty());

    const util::KernelVariant variants[] = {
        util::KernelVariant::Scalar,
        util::KernelVariant::Swar,
        util::KernelVariant::Simd,
        util::KernelVariant::Auto,
    };
    for (util::KernelVariant variant : variants) {
        for (bool lockstep : {false, true}) {
            PipelineRun got = runPipeline(world, variant, lockstep);
            expectIdenticalResults(
                got, ref,
                std::string(util::kernelVariantName(variant)) +
                    (lockstep ? "/lockstep" : "/sequential"));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(InputSets, KernelMatrix,
                         ::testing::Values("A-human", "B-yeast"));

/**
 * A Simd request on any CPU resolves to something runnable: the widest
 * compiled-and-available level, or the Swar fallback when the host has no
 * wide units — and the resolved kernel actually maps reads.  This is the
 * degrade path CI machines without AVX exercise for real.
 */
TEST(KernelMatrixDispatch, SimdRequestAlwaysResolvesRunnable)
{
    const util::ResolvedKernel kernel =
        util::resolveKernel(util::KernelVariant::Simd);
    EXPECT_NE(kernel.fn, nullptr);
    if (kernel.level == util::SimdLevel::None) {
        // No wide ISA on this host: the request degrades to Swar.
        EXPECT_EQ(kernel.effective, util::KernelVariant::Swar);
    } else {
        EXPECT_EQ(kernel.effective, util::KernelVariant::Simd);
    }

    MatrixWorld world = buildWorld("B-yeast", 0.02);
    PipelineRun got = runPipeline(world, util::KernelVariant::Simd, true);
    PipelineRun ref =
        runPipeline(world, util::KernelVariant::Swar, false);
    expectIdenticalResults(got, ref, "simd-degrade");
}

/**
 * The one-pass successorStatesInto against the per-edge extend()
 * formulation it replaced, over every node record and a sweep of
 * haplotype sub-ranges.
 */
TEST(KernelMatrixGbwt, OnePassSuccessorStatesMatchesPerEdgeExtend)
{
    MatrixWorld world = buildWorld("B-yeast", 0.02);
    const gbwt::Gbwt& gbwt = world.set.pangenome.gbwt;
    const graph::VariationGraph& graph = world.set.pangenome.graph;
    size_t checked = 0;
    for (graph::NodeId id = 1; id <= graph.numNodes(); ++id) {
        for (bool flip : {false, true}) {
            const graph::Handle handle(id, flip);
            const gbwt::DecodedRecord record = gbwt.decodeRecord(handle);
            const uint64_t visits = record.numVisits();
            if (visits == 0) {
                continue;
            }
            // Full range plus narrowed sub-ranges, including the
            // single-visit edges of the range.
            const std::pair<uint64_t, uint64_t> ranges[] = {
                {0, visits},
                {0, std::min<uint64_t>(1, visits)},
                {visits - 1, visits},
                {visits / 3, visits - visits / 4},
            };
            for (const auto& [lo, hi] : ranges) {
                if (lo >= hi) {
                    continue;
                }
                const gbwt::SearchState state(handle, lo, hi);
                std::vector<gbwt::SearchState> got;
                record.successorStatesInto(state, got);
                std::vector<gbwt::SearchState> ref;
                for (const gbwt::RecordEdge& edge : record.edges()) {
                    if (!edge.successor.valid()) {
                        continue;
                    }
                    gbwt::SearchState next =
                        record.extend(state, edge.successor);
                    if (!next.empty()) {
                        ref.push_back(next);
                    }
                }
                ASSERT_EQ(got.size(), ref.size()) << handle.str();
                for (size_t i = 0; i < got.size(); ++i) {
                    EXPECT_EQ(got[i].node, ref[i].node) << handle.str();
                    EXPECT_EQ(got[i].start, ref[i].start) << handle.str();
                    EXPECT_EQ(got[i].end, ref[i].end) << handle.str();
                }
                ++checked;
            }
        }
    }
    EXPECT_GT(checked, 100u);
}

/**
 * The score prefilter: off by default (byte-identical golden output), and
 * when enabled it only ever removes extensions — each skipped seed is
 * counted in extensionsPrefiltered and the survivors are a subset of the
 * unfiltered run's extensions.
 */
TEST(KernelMatrixPrefilter, CountsSkipsAndNeverAddsExtensions)
{
    MatrixWorld world = buildWorld("B-yeast", 0.03);

    MapperParams base;
    ASSERT_EQ(base.prefilterFraction, 0.0) << "prefilter must default off";

    MapperParams filtered;
    filtered.prefilterFraction = 0.9;

    Mapper plain(world.set.pangenome.graph, world.set.pangenome.gbwt,
                 world.minimizers, world.distance, base);
    Mapper pruned(world.set.pangenome.graph, world.set.pangenome.gbwt,
                  world.minimizers, world.distance, filtered);
    auto plain_state = plain.makeState();
    auto pruned_state = pruned.makeState();

    uint64_t skipped = 0;
    for (const io::ReadWithSeeds& entry : world.capture.entries) {
        MapResult full =
            plain.mapFromSeeds(entry.read, entry.seeds, *plain_state);
        MapResult cut =
            pruned.mapFromSeeds(entry.read, entry.seeds, *pruned_state);
        EXPECT_EQ(full.extensionsPrefiltered, 0u);
        skipped += cut.extensionsPrefiltered;
        EXPECT_LE(cut.extensions.size(), full.extensions.size())
            << entry.read.name;
        // Every surviving extension exists verbatim in the full run.
        for (const GaplessExtension& ext : cut.extensions) {
            const bool present = std::any_of(
                full.extensions.begin(), full.extensions.end(),
                [&](const GaplessExtension& other) {
                    return other == ext && other.str() == ext.str();
                });
            EXPECT_TRUE(present) << entry.read.name;
        }
    }
    EXPECT_GT(skipped, 0u) << "an aggressive prefilter must skip seeds";
}

} // namespace
} // namespace mg::map
