/**
 * End-to-end request tracing and live introspection tests.  The
 * invariants:
 *
 *  - the extended wire frames are backward compatible: an untraced
 *    request/response encodes byte-identically to the pre-tracing
 *    format, and the trailing trace fields round-trip when present;
 *  - a traced request's response echoes the trace id plus the daemon's
 *    queue/map attribution, and its spans land in the stage histograms
 *    and the slowest-N exemplar ring;
 *  - tracing is observation-only: daemon GAF with tracing on is
 *    byte-identical to a direct MapSession's output;
 *  - the STATS control frame answers a parseable introspection snapshot
 *    naming tenants, workers, stages, and in-flight traces;
 *  - the Chrome-trace export is valid JSON with per-lane tracks and
 *    cross-thread flow arrows; `.mgtrace` dumps validate;
 *  - the Prometheus exposition survives a strict text-format parser,
 *    including label values that need escaping.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "giraffe/session.h"
#include "io/file.h"
#include "obs/hub.h"
#include "obs/json.h"
#include "obs/request_trace.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/frame.h"
#include "sim/pangenome_gen.h"
#include "sim/read_sim.h"

namespace mg::serve {
namespace {

std::string
tempPath(const std::string& name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

// --------------------------------------------------------------------
// Wire compatibility: the trace fields are optional trailing varints.

TEST(TraceWire, UntracedRequestEncodesAsPreTracingPrefix)
{
    Request request;
    request.id = 7;
    request.tenant = "gold";
    request.deadlineMicros = 1000;
    map::Read read;
    read.name = "r1";
    read.sequence = "ACGTACGT";
    request.reads.push_back(read);

    std::vector<uint8_t> untraced = encodeRequest(request);
    request.traceId = 0xabcdef12u;
    std::vector<uint8_t> traced = encodeRequest(request);

    // The traced payload extends the untraced one: old peers decode the
    // shared prefix, new peers read the trailing id.
    ASSERT_GT(traced.size(), untraced.size());
    EXPECT_TRUE(std::equal(untraced.begin(), untraced.end(),
                           traced.begin()));

    Request out;
    ASSERT_TRUE(decodeRequest(untraced, out).ok());
    EXPECT_EQ(out.traceId, 0u);
    ASSERT_TRUE(decodeRequest(traced, out).ok());
    EXPECT_EQ(out.traceId, 0xabcdef12u);
    EXPECT_EQ(out.tenant, "gold");
    ASSERT_EQ(out.reads.size(), 1u);
    EXPECT_EQ(out.reads[0].sequence, "ACGTACGT");
}

TEST(TraceWire, ResponseTraceEchoRoundTrips)
{
    Response response;
    response.id = 9;
    response.status = ResponseStatus::Ok;
    response.generation = 3;
    response.gaf = "read1\t100\n";
    response.mappedReads = 1;

    std::vector<uint8_t> untraced = encodeResponse(response);
    response.traceId = 0x1122334455667788ull;
    response.queueNanos = 1500;
    response.mapNanos = 250000;
    std::vector<uint8_t> traced = encodeResponse(response);

    ASSERT_GT(traced.size(), untraced.size());
    EXPECT_TRUE(std::equal(untraced.begin(), untraced.end(),
                           traced.begin()));

    Response out;
    ASSERT_TRUE(decodeResponse(untraced, out).ok());
    EXPECT_EQ(out.traceId, 0u);
    EXPECT_EQ(out.queueNanos, 0u);
    EXPECT_EQ(out.mapNanos, 0u);
    ASSERT_TRUE(decodeResponse(traced, out).ok());
    EXPECT_EQ(out.traceId, 0x1122334455667788ull);
    EXPECT_EQ(out.queueNanos, 1500u);
    EXPECT_EQ(out.mapNanos, 250000u);
    EXPECT_EQ(out.gaf, "read1\t100\n");
}

TEST(TraceWire, StatsControlFrameRoundTrips)
{
    ControlRequest control;
    control.id = 12;
    control.op = ControlOp::Stats;

    ControlRequest out;
    ASSERT_TRUE(decodeControl(encodeControl(control), out).ok());
    EXPECT_EQ(out.id, 12u);
    EXPECT_EQ(out.op, ControlOp::Stats);
    EXPECT_TRUE(out.path.empty());

    Response stats;
    stats.id = 12;
    stats.status = ResponseStatus::StatsOk;
    stats.generation = 2;
    stats.message = "{\"minigiraffe_stats\": 1}";
    Response decoded;
    ASSERT_TRUE(decodeResponse(encodeResponse(stats), decoded).ok());
    EXPECT_EQ(decoded.status, ResponseStatus::StatsOk);
    EXPECT_EQ(decoded.message, "{\"minigiraffe_stats\": 1}");
}

// --------------------------------------------------------------------
// Tracer unit behavior.

TEST(RequestTracer, MintsDistinctNonzeroIds)
{
    obs::RequestTracer::Params params;
    params.lanes = 2;
    obs::RequestTracer tracer(params);
    std::set<uint64_t> ids;
    for (int i = 0; i < 256; ++i) {
        uint64_t id = tracer.mint();
        EXPECT_NE(id, 0u);
        ids.insert(id);
    }
    EXPECT_EQ(ids.size(), 256u);
}

TEST(RequestTracer, HeadSamplingFollowsRate)
{
    obs::RequestTracer::Params params;
    params.lanes = 1;
    params.sampleRate = 0.0;
    obs::RequestTracer never(params);
    for (int i = 0; i < 64; ++i) {
        EXPECT_FALSE(never.sampleHead());
    }
    params.sampleRate = 1.0;
    obs::RequestTracer always(params);
    for (int i = 0; i < 64; ++i) {
        EXPECT_TRUE(always.sampleHead());
    }
    params.sampleRate = 0.25;
    obs::RequestTracer quarter(params);
    int sampled = 0;
    for (int i = 0; i < 2000; ++i) {
        sampled += quarter.sampleHead() ? 1 : 0;
    }
    EXPECT_GT(sampled, 2000 / 8);
    EXPECT_LT(sampled, 2000 / 2);
}

TEST(RequestTracer, TraceIdHexRoundTrips)
{
    const uint64_t id = 0x0123456789abcdefull;
    const std::string hex = obs::traceIdHex(id);
    EXPECT_EQ(hex, "0x0123456789abcdef");
    EXPECT_EQ(obs::parseTraceIdHex(hex), id);
    EXPECT_EQ(obs::parseTraceIdHex("nonsense"), 0u);
    EXPECT_EQ(obs::parseTraceIdHex("0x12"), 0u); // wrong width
}

/** A synthetic request: accept on the reader lane, the rest on worker
 *  lane 0.  `reader_lane` must be the tracer's controlLane() for the
 *  cross-lane flow arrow to materialize. */
obs::TraceContext
makeContext(uint64_t trace_id, uint64_t begin, uint64_t map_nanos,
            uint32_t reader_lane = 1)
{
    obs::TraceContext ctx;
    ctx.traceId = trace_id;
    ctx.beginNanos = begin;
    ctx.endNanos = begin + map_nanos + 2000;
    ctx.tenant = "default";
    ctx.span(obs::SpanStage::Accept, reader_lane, begin, begin + 500);
    ctx.span(obs::SpanStage::QueueWait, 0, begin + 500, begin + 2000);
    ctx.span(obs::SpanStage::Extend, 0, begin + 2000,
             begin + 2000 + map_nanos);
    return ctx;
}

TEST(RequestTracer, ExemplarRingKeepsSlowestN)
{
    obs::RequestTracer::Params params;
    params.lanes = 1;
    params.exemplars = 2;
    obs::RequestTracer tracer(params);
    tracer.commit(0, makeContext(1, 1000, 10'000));
    tracer.commit(0, makeContext(2, 1000, 90'000));
    tracer.commit(0, makeContext(3, 1000, 50'000));
    tracer.commit(0, makeContext(4, 1000, 1'000));

    std::vector<obs::RequestTracer::Exemplar> slowest =
        tracer.exemplars();
    ASSERT_EQ(slowest.size(), 2u);
    EXPECT_EQ(slowest[0].ctx.traceId, 2u);
    EXPECT_EQ(slowest[1].ctx.traceId, 3u);
    EXPECT_GE(slowest[0].totalNanos, slowest[1].totalNanos);
    EXPECT_EQ(tracer.committedTotal(), 4u);

    // The per-stage table names the trace that dominated each stage.
    auto stage = tracer.stageExemplars();
    EXPECT_EQ(
        stage[static_cast<size_t>(obs::SpanStage::Extend)].traceId, 2u);
    EXPECT_EQ(
        stage[static_cast<size_t>(obs::SpanStage::Seed)].traceId, 0u);
}

TEST(RequestTracer, InFlightTableTracksLanes)
{
    obs::RequestTracer::Params params;
    params.lanes = 3;
    obs::RequestTracer tracer(params);
    EXPECT_TRUE(tracer.inFlight().empty());
    tracer.beginInFlight(1, 42, 5000);
    tracer.beginInFlight(2, 43, 1000);
    std::vector<obs::RequestTracer::InFlightEntry> entries =
        tracer.inFlight();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].traceId, 43u); // oldest first
    EXPECT_EQ(entries[1].traceId, 42u);
    tracer.endInFlight(2);
    entries = tracer.inFlight();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].traceId, 42u);
}

TEST(RequestTracer, ChromeTraceHasTracksAndFlowArrows)
{
    obs::RequestTracer::Params params;
    params.lanes = 2;
    obs::RequestTracer tracer(params);
    // One request crossing from the control lane (reader) to lane 0
    // (worker): the export must draw a flow arrow between them.
    tracer.commit(0, makeContext(77, 10'000, 30'000,
                                 static_cast<uint32_t>(
                                     tracer.controlLane())));
    const std::string path = tempPath("chrome_trace.json");
    tracer.writeChromeTrace(path, "test");

    std::vector<uint8_t> bytes = io::readFileBytes(path);
    obs::json::Value doc = obs::json::parse(
        std::string(bytes.begin(), bytes.end()), path);
    const obs::json::Value* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    size_t spans = 0;
    size_t flow_starts = 0;
    size_t flow_ends = 0;
    std::set<uint64_t> tids;
    for (const obs::json::Value& event : events->items) {
        const obs::json::Value* ph = event.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->text == "X") {
            ++spans;
            tids.insert(event.find("tid")->asUint());
        } else if (ph->text == "s") {
            ++flow_starts;
        } else if (ph->text == "f") {
            ++flow_ends;
        }
    }
    EXPECT_EQ(spans, 3u);
    EXPECT_GE(tids.size(), 2u); // reader track + worker track
    EXPECT_GE(flow_starts, 1u);
    EXPECT_EQ(flow_starts, flow_ends);
}

TEST(RequestTracer, TraceDumpWritesValidatableJson)
{
    obs::RequestTracer::Exemplar exemplar;
    exemplar.ctx = makeContext(0x5555, 1000, 40'000);
    exemplar.ctx.disposition = "ok";
    exemplar.totalNanos = exemplar.ctx.endNanos - exemplar.ctx.beginNanos;
    std::vector<obs::FlightEntry> flight(1);
    flight[0].readIndex = 12;
    flight[0].stage = obs::ReadStage::Extend;
    flight[0].traceId = 0x5555;

    const std::string path = tempPath("exemplar.mgtrace");
    obs::writeTraceDump(path, exemplar, flight);

    std::vector<uint8_t> bytes = io::readFileBytes(path);
    obs::json::Value doc = obs::json::parse(
        std::string(bytes.begin(), bytes.end()), path);
    ASSERT_NE(doc.find("minigiraffe_trace"), nullptr);
    EXPECT_EQ(doc.find("minigiraffe_trace")->asUint(), 1u);
    EXPECT_NE(obs::parseTraceIdHex(doc.find("trace_id")->text), 0u);
    const obs::json::Value* spans = doc.find("spans");
    ASSERT_NE(spans, nullptr);
    ASSERT_EQ(spans->items.size(), 3u);
    uint64_t prev_begin = 0;
    for (const obs::json::Value& span : spans->items) {
        const uint64_t begin = span.find("begin_ns")->asUint();
        const uint64_t end = span.find("end_ns")->asUint();
        EXPECT_LE(begin, end);
        EXPECT_GE(begin, prev_begin); // sorted by begin
        EXPECT_GE(begin, doc.find("begin_ns")->asUint());
        EXPECT_LE(end, doc.find("end_ns")->asUint());
        prev_begin = begin;
    }
    const obs::json::Value* fl = doc.find("flight");
    ASSERT_NE(fl, nullptr);
    ASSERT_EQ(fl->items.size(), 1u);
    EXPECT_EQ(fl->items[0].find("read_index")->asUint(), 12u);
}

// --------------------------------------------------------------------
// Prometheus exposition vs a strict text-format parser.

/**
 * Strict parse of the Prometheus text format: every line is a HELP, a
 * TYPE, or a sample; HELP/TYPE appear at most once per family and
 * before any of its samples; label values have balanced quoting with
 * only \\, \" and \n escapes; sample values are numeric.
 */
void
strictPromParse(const std::string& text)
{
    std::set<std::string> help_seen;
    std::set<std::string> type_seen;
    std::set<std::string> sampled; // families that already emitted data
    size_t pos = 0;
    size_t lineno = 0;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        ASSERT_NE(eol, std::string::npos)
            << "line " << lineno << " missing newline";
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        ++lineno;
        if (line.empty()) {
            continue;
        }
        if (line.rfind("# HELP ", 0) == 0 ||
            line.rfind("# TYPE ", 0) == 0) {
            const bool is_help = line[2] == 'H';
            const size_t name_begin = 7;
            const size_t name_end = line.find(' ', name_begin);
            ASSERT_NE(name_end, std::string::npos) << line;
            const std::string family =
                line.substr(name_begin, name_end - name_begin);
            std::set<std::string>& seen =
                is_help ? help_seen : type_seen;
            EXPECT_TRUE(seen.insert(family).second)
                << "duplicate " << (is_help ? "HELP" : "TYPE")
                << " for " << family;
            EXPECT_EQ(sampled.count(family), 0u)
                << "header after samples for " << family;
            if (is_help) {
                // HELP text must not contain a raw newline (it would
                // have split the line) and escapes must be valid.
                const std::string help = line.substr(name_end + 1);
                for (size_t i = 0; i < help.size(); ++i) {
                    if (help[i] == '\\') {
                        ASSERT_LT(i + 1, help.size()) << line;
                        char next = help[i + 1];
                        EXPECT_TRUE(next == '\\' || next == 'n')
                            << "bad HELP escape in: " << line;
                        ++i;
                    }
                }
            }
            continue;
        }
        ASSERT_NE(line[0], '#') << "unknown comment line: " << line;
        // Sample line: name[{labels}] value
        size_t name_end = line.find_first_of("{ ");
        ASSERT_NE(name_end, std::string::npos) << line;
        std::string name = line.substr(0, name_end);
        for (char c : name) {
            EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) ||
                        c == '_' || c == ':')
                << "bad metric name char in: " << line;
        }
        size_t cursor = name_end;
        if (line[cursor] == '{') {
            // Parse label pairs strictly.
            ++cursor;
            while (line[cursor] != '}') {
                size_t eq = line.find('=', cursor);
                ASSERT_NE(eq, std::string::npos) << line;
                const std::string key =
                    line.substr(cursor, eq - cursor);
                ASSERT_FALSE(key.empty()) << line;
                ASSERT_EQ(line[eq + 1], '"') << line;
                size_t v = eq + 2;
                bool closed = false;
                while (v < line.size()) {
                    if (line[v] == '\\') {
                        ASSERT_LT(v + 1, line.size()) << line;
                        char next = line[v + 1];
                        EXPECT_TRUE(next == '\\' || next == '"' ||
                                    next == 'n')
                            << "bad label escape in: " << line;
                        v += 2;
                        continue;
                    }
                    if (line[v] == '"') {
                        closed = true;
                        break;
                    }
                    ASSERT_NE(line[v], '\n') << line;
                    ++v;
                }
                ASSERT_TRUE(closed) << "unterminated label in: " << line;
                cursor = v + 1;
                if (line[cursor] == ',') {
                    ++cursor;
                }
            }
            ++cursor; // past '}'
        }
        ASSERT_EQ(line[cursor], ' ') << line;
        const std::string value = line.substr(cursor + 1);
        ASSERT_FALSE(value.empty()) << line;
        char* end = nullptr;
        (void)std::strtod(value.c_str(), &end);
        EXPECT_EQ(*end, '\0') << "non-numeric sample value in: " << line;
        // Strip histogram suffixes to find the family for ordering.
        std::string family = name;
        for (const char* suffix : { "_bucket", "_sum", "_count" }) {
            const size_t len = std::string(suffix).size();
            if (family.size() > len &&
                family.compare(family.size() - len, len, suffix) == 0 &&
                type_seen.count(family.substr(0, family.size() - len)) >
                    0) {
                family = family.substr(0, family.size() - len);
                break;
            }
        }
        sampled.insert(family);
        EXPECT_EQ(type_seen.count(family), 1u)
            << "sample without TYPE header: " << line;
    }
}

TEST(Prometheus, ExpositionSurvivesStrictParserWithHostileLabels)
{
    // Tenant names exercising every escape the text format defines.
    std::vector<std::string> tenants = { "plain", "quo\"te", "back\\slash",
                                         "new\nline" };
    obs::Hub hub(2, tenants);
    obs::Registry::ThreadSlab* slab = hub.slab(0);
    for (size_t t = 0; t < tenants.size(); ++t) {
        slab->add(hub.serve().perTenant[t].accepted, t + 1);
        slab->observe(hub.serve().perTenant[t].latency, 1000 * (t + 1));
    }
    slab->observe(
        hub.serve().stageNanos[static_cast<size_t>(
            obs::SpanStage::Extend)],
        123456);

    const std::string prom = obs::toPrometheus(hub.registry().snapshot());
    strictPromParse(prom);
    // The escaped forms actually appear.
    EXPECT_NE(prom.find("tenant=\"quo\\\"te\""), std::string::npos);
    EXPECT_NE(prom.find("tenant=\"back\\\\slash\""), std::string::npos);
    EXPECT_NE(prom.find("tenant=\"new\\nline\""), std::string::npos);
    EXPECT_NE(prom.find("mg_serve_stage_ns"), std::string::npos);
}

// --------------------------------------------------------------------
// End-to-end: a real daemon, traced requests, introspection.

class TracingFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fault::disarmAll();
        sim::PangenomeParams pparams;
        pparams.seed = 501;
        pparams.backboneLength = 6000;
        pparams.haplotypes = 4;
        pg_ = sim::generatePangenome(pparams);

        index::MinimizerParams mparams;
        mparams.k = 15;
        mparams.w = 8;
        minimizers_ = index::MinimizerIndex(pg_.graph, mparams);
        distance_ = index::DistanceIndex(pg_.graph);

        sim::ReadSimParams rparams;
        rparams.seed = 502;
        rparams.count = 48;
        rparams.readLength = 100;
        rparams.errorRate = 0.005;
        reads_ = sim::simulateReads(pg_, rparams).reads;
    }

    void TearDown() override { fault::disarmAll(); }

    std::string
    socketPath(const std::string& name) const
    {
        return tempPath(name + ".sock");
    }

    DaemonParams
    daemonParams(const std::string& name) const
    {
        DaemonParams params;
        params.socketPath = socketPath(name);
        params.workers = 2;
        params.queueCapacity = 8;
        params.watchdogParams.stallSeconds = 2.0;
        return params;
    }

    std::unique_ptr<Daemon>
    makeDaemon(DaemonParams params) const
    {
        return std::make_unique<Daemon>(pg_.graph, pg_.gbwt, minimizers_,
                                        distance_, std::move(params));
    }

    ClientParams
    clientParams(const std::string& name) const
    {
        ClientParams params;
        params.socketPath = socketPath(name);
        params.backoffBaseMillis = 2;
        params.backoffCapMillis = 50;
        return params;
    }

    std::vector<map::Read>
    slice(size_t begin, size_t count) const
    {
        return std::vector<map::Read>(reads_.begin() + begin,
                                      reads_.begin() + begin + count);
    }

    /**
     * Wait until the tracer has committed `n` requests.  The worker
     * commits *after* writing the response, so assertions made the
     * instant the client returns race the final bookkeeping (visible
     * under TSan's slowdown).
     */
    static void
    settleCommitted(Daemon& daemon, uint64_t n)
    {
        for (int spin = 0;
             spin < 2000 && daemon.tracer().committedTotal() < n;
             ++spin) {
            usleep(1000);
        }
        ASSERT_GE(daemon.tracer().committedTotal(), n)
            << "trace commits never settled";
    }

    sim::GeneratedPangenome pg_;
    index::MinimizerIndex minimizers_;
    index::DistanceIndex distance_;
    std::vector<map::Read> reads_;
};

TEST_F(TracingFixture, ClientTaggedRequestEchoesTraceAndFeedsStages)
{
    std::unique_ptr<Daemon> daemon = makeDaemon(daemonParams("tagged"));
    daemon->start();

    ClientParams cparams = clientParams("tagged");
    cparams.traceSample = 1.0; // tag every request
    Client client(cparams);
    Response response;
    util::Status status = client.mapReads(
        "", slice(0, 16), resilience::WorkBudget{}, response);
    ASSERT_TRUE(status.ok()) << status.toString();
    ASSERT_EQ(response.status, ResponseStatus::Ok);

    // The trace echo names the id the client minted and attributes time.
    EXPECT_NE(response.traceId, 0u);
    EXPECT_GT(response.mapNanos, 0u);
    EXPECT_EQ(client.stats().traced, 1u);

    // Spans landed: the tracer committed the request and the stage
    // histograms saw seed/extend/write time.
    settleCommitted(*daemon, 1);
    EXPECT_EQ(daemon->tracer().committedTotal(), 1u);
    std::vector<obs::RequestTracer::Exemplar> exemplars =
        daemon->tracer().exemplars();
    ASSERT_EQ(exemplars.size(), 1u);
    EXPECT_EQ(exemplars[0].ctx.traceId, response.traceId);
    EXPECT_EQ(exemplars[0].ctx.disposition, "ok");
    std::set<obs::SpanStage> stages;
    for (const obs::Span& span : exemplars[0].ctx.spans) {
        EXPECT_LE(span.beginNanos, span.endNanos);
        stages.insert(span.stage);
    }
    EXPECT_EQ(stages.count(obs::SpanStage::Accept), 1u);
    EXPECT_EQ(stages.count(obs::SpanStage::QueueWait), 1u);
    EXPECT_EQ(stages.count(obs::SpanStage::Seed), 1u);
    EXPECT_EQ(stages.count(obs::SpanStage::Extend), 1u);
    EXPECT_EQ(stages.count(obs::SpanStage::Write), 1u);

    obs::Snapshot snap = daemon->hub().registry().snapshot();
    const obs::MetricValue* extend_hist = snap.find(
        "mg_serve_stage_ns{stage=\"extend\"}");
    ASSERT_NE(extend_hist, nullptr);
    EXPECT_GT(extend_hist->hist.count(), 0u);

    daemon->stop();
    EXPECT_EQ(daemon->report().tracedRequests, 1u);
}

TEST_F(TracingFixture, HeadSamplingTracesUntaggedRequests)
{
    DaemonParams dparams = daemonParams("head");
    dparams.traceSample = 1.0; // daemon mints for every untagged request
    std::unique_ptr<Daemon> daemon = makeDaemon(dparams);
    daemon->start();

    Client client(clientParams("head")); // traceSample 0: never tags
    Response response;
    util::Status status = client.mapReads(
        "", slice(0, 8), resilience::WorkBudget{}, response);
    ASSERT_TRUE(status.ok()) << status.toString();
    ASSERT_EQ(response.status, ResponseStatus::Ok);
    EXPECT_EQ(client.stats().traced, 0u);
    EXPECT_NE(response.traceId, 0u); // daemon minted and echoed
    settleCommitted(*daemon, 1);
    EXPECT_EQ(daemon->tracer().committedTotal(), 1u);
}

TEST_F(TracingFixture, TracingIsByteInvisibleInGaf)
{
    std::unique_ptr<Daemon> daemon = makeDaemon(daemonParams("bytes"));
    daemon->start();

    ClientParams cparams = clientParams("bytes");
    cparams.traceSample = 1.0;
    Client traced(cparams);
    Response response;
    ASSERT_TRUE(traced.mapReads("", slice(0, 24),
                                resilience::WorkBudget{}, response)
                    .ok());
    ASSERT_EQ(response.status, ResponseStatus::Ok);
    ASSERT_NE(response.traceId, 0u);

    giraffe::MapSession session(pg_.graph, pg_.gbwt, minimizers_,
                                distance_, giraffe::SessionParams{});
    giraffe::SessionResult direct =
        session.map(0, slice(0, 24), resilience::WorkBudget{});
    EXPECT_EQ(response.gaf, direct.gaf);
    EXPECT_EQ(response.mappedReads, direct.mappedReads);
}

TEST_F(TracingFixture, StatsControlAnswersIntrospectionSnapshot)
{
    DaemonParams dparams = daemonParams("stats");
    dparams.tenants = parseTenantSpec("gold:weight=3,free");
    dparams.traceSample = 1.0;
    std::unique_ptr<Daemon> daemon = makeDaemon(dparams);
    daemon->start();

    ClientParams cparams = clientParams("stats");
    cparams.traceSample = 1.0;
    Client client(cparams);
    Response mapped;
    ASSERT_TRUE(client.mapReads("gold", slice(0, 8),
                                resilience::WorkBudget{}, mapped)
                    .ok());
    ASSERT_EQ(mapped.status, ResponseStatus::Ok);

    // The worker's completed/latency bookkeeping lands after the
    // response is written; settle before snapshotting.
    settleCommitted(*daemon, 1);
    for (int spin = 0; spin < 2000; ++spin) {
        const obs::MetricValue* done =
            daemon->hub().registry().snapshot().find(
                "mg_serve_completed_total{tenant=\"gold\"}");
        if (done != nullptr && done->value >= 1) {
            break;
        }
        usleep(1000);
    }

    Response stats;
    util::Status status = client.queryStats(stats);
    ASSERT_TRUE(status.ok()) << status.toString();
    ASSERT_EQ(stats.status, ResponseStatus::StatsOk);
    EXPECT_EQ(stats.generation, 1u);

    obs::json::Value snap =
        obs::json::parse(stats.message, "stats response");
    ASSERT_NE(snap.find("minigiraffe_stats"), nullptr);
    EXPECT_EQ(snap.find("minigiraffe_stats")->asUint(), 1u);
    EXPECT_EQ(snap.find("state")->text, "running");
    EXPECT_EQ(snap.find("generation")->asUint(), 1u);

    const obs::json::Value* queue = snap.find("queue");
    ASSERT_NE(queue, nullptr);
    EXPECT_EQ(queue->find("capacity")->asUint(), 8u);

    const obs::json::Value* tenants = snap.find("tenants");
    ASSERT_NE(tenants, nullptr);
    ASSERT_EQ(tenants->items.size(), 2u);
    EXPECT_EQ(tenants->items[0].find("name")->text, "gold");
    EXPECT_EQ(tenants->items[0].find("accepted")->asUint(), 1u);
    EXPECT_EQ(tenants->items[0].find("completed")->asUint(), 1u);
    EXPECT_GT(tenants->items[0].find("ewma_service_ns")->asUint(), 0u);
    EXPECT_EQ(tenants->items[1].find("name")->text, "free");
    EXPECT_EQ(tenants->items[1].find("accepted")->asUint(), 0u);

    const obs::json::Value* workers = snap.find("workers");
    ASSERT_NE(workers, nullptr);
    EXPECT_EQ(workers->items.size(), 2u);

    const obs::json::Value* stages = snap.find("stages");
    ASSERT_NE(stages, nullptr);
    bool extend_seen = false;
    for (const obs::json::Value& stage : stages->items) {
        if (stage.find("stage")->text == "extend") {
            extend_seen = true;
            EXPECT_GT(stage.find("count")->asUint(), 0u);
            const obs::json::Value* exemplar = stage.find("exemplar");
            ASSERT_NE(exemplar, nullptr);
            EXPECT_NE(obs::parseTraceIdHex(exemplar->text), 0u);
        }
    }
    EXPECT_TRUE(extend_seen);

    const obs::json::Value* trace = snap.find("trace");
    ASSERT_NE(trace, nullptr);
    EXPECT_EQ(trace->find("committed")->asUint(), 1u);
}

TEST_F(TracingFixture, StopExportsChromeTraceAndExemplarDumps)
{
    DaemonParams dparams = daemonParams("export");
    dparams.traceOut = tempPath("mgd_trace.json");
    dparams.traceDumpPrefix = tempPath("mgd_slow_");
    dparams.traceExemplars = 2;
    std::unique_ptr<Daemon> daemon = makeDaemon(dparams);
    daemon->start();

    ClientParams cparams = clientParams("export");
    cparams.traceSample = 1.0;
    Client client(cparams);
    for (int i = 0; i < 3; ++i) {
        Response response;
        ASSERT_TRUE(client.mapReads("", slice(0, 8),
                                    resilience::WorkBudget{}, response)
                        .ok());
        ASSERT_EQ(response.status, ResponseStatus::Ok);
    }
    daemon->stop();
    EXPECT_EQ(daemon->report().tracedRequests, 3u);
    EXPECT_EQ(daemon->report().traceDumps, 2u);

    // The Chrome trace parses and carries spans from all three requests.
    std::vector<uint8_t> bytes = io::readFileBytes(dparams.traceOut);
    obs::json::Value doc = obs::json::parse(
        std::string(bytes.begin(), bytes.end()), dparams.traceOut);
    const obs::json::Value* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    size_t spans = 0;
    for (const obs::json::Value& event : events->items) {
        spans += event.find("ph")->text == "X" ? 1 : 0;
    }
    EXPECT_GE(spans, 3u * 5u); // >= 5 spans per traced request

    // Each exemplar produced a .mgtrace named by its trace id.
    size_t dumps = 0;
    for (const obs::RequestTracer::Exemplar& exemplar :
         daemon->tracer().exemplars()) {
        const std::string path = dparams.traceDumpPrefix +
                                 obs::traceIdHex(exemplar.ctx.traceId) +
                                 ".mgtrace";
        std::vector<uint8_t> dump = io::readFileBytes(path);
        obs::json::Value parsed = obs::json::parse(
            std::string(dump.begin(), dump.end()), path);
        EXPECT_EQ(parsed.find("minigiraffe_trace")->asUint(), 1u);
        EXPECT_EQ(obs::parseTraceIdHex(parsed.find("trace_id")->text),
                  exemplar.ctx.traceId);
        ++dumps;
    }
    EXPECT_EQ(dumps, 2u);
}

TEST_F(TracingFixture, UntracedRequestsPayNothingAndEchoNothing)
{
    std::unique_ptr<Daemon> daemon = makeDaemon(daemonParams("off"));
    daemon->start();

    Client client(clientParams("off"));
    Response response;
    ASSERT_TRUE(client.mapReads("", slice(0, 8),
                                resilience::WorkBudget{}, response)
                    .ok());
    ASSERT_EQ(response.status, ResponseStatus::Ok);
    EXPECT_EQ(response.traceId, 0u);
    EXPECT_EQ(response.queueNanos, 0u);
    EXPECT_EQ(daemon->tracer().committedTotal(), 0u);

    obs::Snapshot snap = daemon->hub().registry().snapshot();
    const obs::MetricValue* extend_hist = snap.find(
        "mg_serve_stage_ns{stage=\"extend\"}");
    ASSERT_NE(extend_hist, nullptr);
    EXPECT_EQ(extend_hist->hist.count(), 0u);
}

} // namespace
} // namespace mg::serve
