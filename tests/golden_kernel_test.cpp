/**
 * Golden equivalence suite for the hot-path memory overhaul.
 *
 * The optimized extension kernel (SequenceStore span compares, SmallVector
 * walk states, epoch-reset CachedGBWT, scratch reuse) must be *observably
 * identical* to the pre-overhaul implementation.  This file keeps a
 * reference copy of the original per-base algorithm — std::vector walk
 * states, per-base graph.base() calls, a freshly constructed cache per
 * read — and checks, on the A-human and B-yeast input-set analogs, that
 * the production pipeline produces (1) the identical MapResult extension
 * lists and (2) byte-identical GAF output.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "giraffe/alignment.h"
#include "giraffe/parent.h"
#include "index/distance.h"
#include "index/minimizer.h"
#include "io/gaf.h"
#include "io/reads_bin.h"
#include "map/cluster.h"
#include "map/mapper.h"
#include "sim/input_sets.h"
#include "util/dna.h"

namespace mg::map {
namespace {

// --------------------------------------------------------------------
// Reference kernel: the pre-overhaul algorithm, kept verbatim in spirit —
// per-base compares through graph.base(), heap-allocated per-walk vectors,
// allocating successor queries, and a brand-new CachedGbwt per read.

struct RefWalkState
{
    gbwt::SearchState state;
    uint32_t nodeOffset = 0;
    uint32_t queryPos = 0;
    int mismatches = 0;
    int32_t score = 0;
    std::vector<graph::Handle> path;
    std::vector<uint32_t> mismatchOffsets;
    uint32_t bestQueryPos = 0;
    uint32_t bestEndOffset = 0;
    int32_t bestScore = 0;
    size_t bestMismatches = 0;
    size_t bestPathLen = 0;
};

struct RefWalk
{
    uint32_t consumed = 0;
    std::vector<uint32_t> mismatchOffsets;
    std::vector<graph::Handle> path;
    int32_t score = 0;
    uint32_t endOffset = 0;
};

bool
refBetter(const RefWalk& a, const RefWalk& b)
{
    if (a.score != b.score) {
        return a.score > b.score;
    }
    if (a.consumed != b.consumed) {
        return a.consumed > b.consumed;
    }
    if (a.path != b.path) {
        return a.path < b.path;
    }
    return a.mismatchOffsets < b.mismatchOffsets;
}

RefWalk
refWalk(const graph::VariationGraph& graph, const ExtendParams& params,
        graph::Handle start, uint32_t offset, std::string_view query,
        gbwt::CachedGbwt& cache)
{
    RefWalk best;
    if (query.empty()) {
        return best;
    }
    gbwt::SearchState root = cache.find(start);
    if (root.empty()) {
        return best;
    }
    std::vector<RefWalkState> stack;
    {
        RefWalkState init;
        init.state = root;
        init.nodeOffset = offset;
        stack.push_back(std::move(init));
    }
    size_t explored = 0;

    auto finish = [&](const RefWalkState& s) {
        RefWalk candidate;
        candidate.consumed = s.bestQueryPos;
        candidate.score = s.bestScore;
        candidate.endOffset = s.bestEndOffset;
        candidate.mismatchOffsets.assign(
            s.mismatchOffsets.begin(),
            s.mismatchOffsets.begin() + static_cast<long>(s.bestMismatches));
        candidate.path.assign(s.path.begin(),
                              s.path.begin() +
                                  static_cast<long>(s.bestPathLen));
        if (candidate.consumed > 0 && refBetter(candidate, best)) {
            best = std::move(candidate);
        }
    };

    while (!stack.empty()) {
        RefWalkState s = std::move(stack.back());
        stack.pop_back();
        if (++explored > params.maxWalkStates) {
            finish(s);
            break;
        }
        graph::Handle handle = s.state.node;
        uint32_t len = static_cast<uint32_t>(graph.length(handle.id()));
        bool dead = false;
        if (s.nodeOffset < len && s.queryPos < query.size()) {
            s.path.push_back(handle);
        }
        while (s.nodeOffset < len && s.queryPos < query.size()) {
            char graph_base = graph.base(handle, s.nodeOffset);
            if (graph_base == query[s.queryPos]) {
                s.score += params.matchScore;
                ++s.nodeOffset;
                ++s.queryPos;
                if (s.score >= s.bestScore) {
                    s.bestQueryPos = s.queryPos;
                    s.bestEndOffset = s.nodeOffset;
                    s.bestScore = s.score;
                    s.bestMismatches = s.mismatchOffsets.size();
                    s.bestPathLen = s.path.size();
                }
            } else {
                if (s.mismatches + 1 > params.maxMismatches) {
                    dead = true;
                    break;
                }
                ++s.mismatches;
                s.score -= params.mismatchPenalty;
                s.mismatchOffsets.push_back(s.queryPos);
                ++s.nodeOffset;
                ++s.queryPos;
            }
        }
        if (dead || s.queryPos >= query.size()) {
            finish(s);
            continue;
        }
        std::vector<gbwt::SearchState> successors;
        if (params.haplotypeConsistent) {
            successors = cache.successorStates(s.state);
        } else {
            for (graph::Handle succ : graph.successors(handle)) {
                successors.emplace_back(succ, 0, 1);
            }
        }
        if (successors.empty()) {
            finish(s);
            continue;
        }
        std::sort(successors.begin(), successors.end(),
                  [](const gbwt::SearchState& a, const gbwt::SearchState& b) {
                      return b.node < a.node;
                  });
        for (gbwt::SearchState& succ : successors) {
            RefWalkState next = s; // full copy, as the original did
            next.state = succ;
            next.nodeOffset = 0;
            stack.push_back(std::move(next));
        }
    }
    return best;
}

GaplessExtension
refExtendSeed(const graph::VariationGraph& graph,
              const ExtendParams& params, const Seed& seed,
              std::string_view sequence, gbwt::CachedGbwt& cache)
{
    const graph::Position& pos = seed.position;
    const uint32_t read_offset = seed.readOffset;
    const uint32_t node_len =
        static_cast<uint32_t>(graph.length(pos.handle.id()));

    RefWalk right = refWalk(graph, params, pos.handle, pos.offset,
                            sequence.substr(read_offset), cache);
    std::string left_query =
        util::reverseComplement(sequence.substr(0, read_offset));
    RefWalk left = refWalk(graph, params, pos.handle.flip(),
                           node_len - pos.offset, left_query, cache);

    GaplessExtension ext;
    ext.onReverseRead = seed.onReverseRead;
    ext.readBegin = read_offset - left.consumed;
    ext.readEnd = read_offset + right.consumed;
    ext.score = left.score + right.score;
    for (auto it = left.mismatchOffsets.rbegin();
         it != left.mismatchOffsets.rend(); ++it) {
        ext.mismatchOffsets.push_back(read_offset - 1 - *it);
    }
    for (uint32_t off : right.mismatchOffsets) {
        ext.mismatchOffsets.push_back(read_offset + off);
    }
    for (auto it = left.path.rbegin(); it != left.path.rend(); ++it) {
        ext.path.push_back(it->flip());
    }
    if (!ext.path.empty() && !right.path.empty() &&
        ext.path.back() == right.path.front()) {
        ext.path.pop_back();
    }
    ext.path.insert(ext.path.end(), right.path.begin(), right.path.end());
    if (left.consumed > 0) {
        graph::Handle first = ext.path.front();
        uint32_t first_len =
            static_cast<uint32_t>(graph.length(first.id()));
        ext.startOffset = first_len - left.endOffset;
    } else {
        ext.startOffset = pos.offset;
    }
    if (ext.readBegin == 0 && ext.readEnd == sequence.size()) {
        ext.fullLength = true;
        ext.score += params.fullLengthBonus;
    }
    return ext;
}

/** The pre-overhaul mapFromSeeds: fresh cache object, per-cluster vectors,
 *  per-read reverse complement string — the original control flow. */
MapResult
refMapFromSeeds(const graph::VariationGraph& graph, const gbwt::Gbwt& gbwt,
                const index::DistanceIndex& distance,
                const MapperParams& params, const Read& read,
                const SeedVector& seeds)
{
    MapResult result;
    gbwt::CachedGbwt cache(gbwt, params.gbwtCacheCapacity);
    std::vector<Cluster> clusters =
        clusterSeeds(graph, distance, seeds, params.cluster);
    result.clustersFormed = static_cast<uint32_t>(clusters.size());
    if (clusters.empty()) {
        return result;
    }
    const double best_score = clusters.front().score;
    const double cutoff = best_score * params.clusterScoreFraction;
    std::string reverse_seq;
    bool reverse_ready = false;
    for (size_t c = 0; c < clusters.size(); ++c) {
        const Cluster& cluster = clusters[c];
        if (c >= params.maxClusters) {
            break;
        }
        if (c >= params.minClusters && cluster.score < cutoff) {
            break;
        }
        ++result.clustersProcessed;
        std::string_view oriented = read.sequence;
        if (cluster.onReverseRead) {
            if (!reverse_ready) {
                reverse_seq = util::reverseComplement(read.sequence);
                reverse_ready = true;
            }
            oriented = reverse_seq;
        }
        std::vector<uint32_t> chosen;
        {
            std::vector<uint32_t> sorted;
            for (uint32_t idx : cluster.seedIndices) {
                sorted.push_back(idx);
            }
            std::sort(sorted.begin(), sorted.end(),
                      [&](uint32_t a, uint32_t b) {
                          if (seeds[a].score != seeds[b].score) {
                              return seeds[a].score > seeds[b].score;
                          }
                          return a < b;
                      });
            uint32_t last_offset = UINT32_MAX;
            for (uint32_t idx : sorted) {
                if (seeds[idx].readOffset == last_offset) {
                    continue;
                }
                chosen.push_back(idx);
                last_offset = seeds[idx].readOffset;
                if (chosen.size() >= params.maxSeedsPerCluster) {
                    break;
                }
            }
        }
        for (uint32_t idx : chosen) {
            GaplessExtension ext = refExtendSeed(graph, params.extend,
                                                 seeds[idx], oriented,
                                                 cache);
            if (ext.readEnd > ext.readBegin) {
                result.extensions.push_back(std::move(ext));
            }
        }
    }
    std::sort(result.extensions.begin(), result.extensions.end());
    result.extensions.erase(
        std::unique(result.extensions.begin(), result.extensions.end()),
        result.extensions.end());
    if (result.extensions.size() > params.maxExtensions) {
        result.extensions.resize(params.maxExtensions);
    }
    return result;
}

// --------------------------------------------------------------------

struct GoldenWorld
{
    sim::InputSet set;
    index::MinimizerIndex minimizers;
    index::DistanceIndex distance;
    io::SeedCapture capture;
};

GoldenWorld
buildGolden(const std::string& input_set, double scale)
{
    GoldenWorld world;
    world.set = sim::buildInputSet(sim::inputSetSpec(input_set), scale);
    index::MinimizerParams mparams;
    mparams.k = 15;
    mparams.w = 8;
    world.minimizers =
        index::MinimizerIndex(world.set.pangenome.graph, mparams);
    world.distance = index::DistanceIndex(world.set.pangenome.graph);
    giraffe::ParentEmulator parent(world.set.pangenome.graph,
                                   world.set.pangenome.gbwt,
                                   world.minimizers, world.distance,
                                   giraffe::ParentParams());
    world.capture = parent.capturePreprocessing(world.set.reads);
    return world;
}

/** Full-fidelity comparison: operator== ignores score/fullLength, so also
 *  compare the canonical textual form, which carries every field. */
void
expectIdentical(const MapResult& got, const MapResult& ref,
                const std::string& read_name)
{
    EXPECT_EQ(got.clustersFormed, ref.clustersFormed) << read_name;
    EXPECT_EQ(got.clustersProcessed, ref.clustersProcessed) << read_name;
    ASSERT_EQ(got.extensions.size(), ref.extensions.size()) << read_name;
    for (size_t i = 0; i < got.extensions.size(); ++i) {
        EXPECT_EQ(got.extensions[i], ref.extensions[i])
            << read_name << " extension " << i;
        EXPECT_EQ(got.extensions[i].str(), ref.extensions[i].str())
            << read_name << " extension " << i;
    }
}

class GoldenKernel : public ::testing::TestWithParam<const char*>
{};

TEST_P(GoldenKernel, MapResultsAndGafMatchPreOverhaulReference)
{
    GoldenWorld world = buildGolden(GetParam(), 0.05);
    const graph::VariationGraph& graph = world.set.pangenome.graph;
    const gbwt::Gbwt& gbwt = world.set.pangenome.gbwt;
    MapperParams params;
    Mapper mapper(graph, gbwt, world.minimizers, world.distance, params);
    auto state = mapper.makeState();

    ASSERT_FALSE(world.capture.entries.empty());
    std::vector<giraffe::Alignment> got_alignments;
    std::vector<giraffe::Alignment> ref_alignments;
    map::ReadSet reads;
    for (const io::ReadWithSeeds& entry : world.capture.entries) {
        // Production kernel with one long-lived state: the epoch-reset
        // cache and reused scratch see many consecutive reads, exactly as
        // the mapping loop drives them.
        MapResult got = mapper.mapFromSeeds(entry.read, entry.seeds,
                                            *state);
        MapResult ref = refMapFromSeeds(graph, gbwt, world.distance,
                                        params, entry.read, entry.seeds);
        expectIdentical(got, ref, entry.read.name);
        got_alignments.push_back(giraffe::postProcess(
            entry.read.name, got.extensions, giraffe::PostProcessParams()));
        ref_alignments.push_back(giraffe::postProcess(
            entry.read.name, ref.extensions, giraffe::PostProcessParams()));
        reads.reads.push_back(entry.read);
    }
    std::string got_gaf = io::formatGaf(got_alignments, reads, graph);
    std::string ref_gaf = io::formatGaf(ref_alignments, reads, graph);
    EXPECT_EQ(got_gaf, ref_gaf) << "GAF output must be byte-identical";
    EXPECT_FALSE(got_gaf.empty());
}

INSTANTIATE_TEST_SUITE_P(InputSets, GoldenKernel,
                         ::testing::Values("A-human", "B-yeast"));

/** The walk itself, state reuse across many calls: sweep seeds through one
 *  Extender+scratch against per-call reference walks. */
TEST(GoldenKernelWalk, WalkMatchesReferenceAcrossOrientations)
{
    GoldenWorld world = buildGolden("B-yeast", 0.02);
    const graph::VariationGraph& graph = world.set.pangenome.graph;
    const gbwt::Gbwt& gbwt = world.set.pangenome.gbwt;
    ExtendParams params;
    Extender extender(graph, params);
    gbwt::CachedGbwt cache(gbwt);
    gbwt::CachedGbwt ref_cache(gbwt);
    ExtendScratch scratch;
    size_t checked = 0;
    for (const io::ReadWithSeeds& entry : world.capture.entries) {
        for (const Seed& seed : entry.seeds) {
            std::string oriented = seed.onReverseRead
                ? util::reverseComplement(entry.read.sequence)
                : entry.read.sequence;
            DirectionalWalk got = extender.walk(
                seed.position.handle, seed.position.offset,
                std::string_view(oriented).substr(seed.readOffset), cache,
                scratch);
            RefWalk ref = refWalk(
                graph, params, seed.position.handle, seed.position.offset,
                std::string_view(oriented).substr(seed.readOffset),
                ref_cache);
            ASSERT_EQ(got.consumed, ref.consumed);
            ASSERT_EQ(got.score, ref.score);
            ASSERT_EQ(got.endOffset, ref.endOffset);
            ASSERT_TRUE(std::equal(got.path.begin(), got.path.end(),
                                   ref.path.begin(), ref.path.end()));
            ASSERT_TRUE(std::equal(got.mismatchOffsets.begin(),
                                   got.mismatchOffsets.end(),
                                   ref.mismatchOffsets.begin(),
                                   ref.mismatchOffsets.end()));
            ++checked;
        }
    }
    EXPECT_GT(checked, 100u);
}

} // namespace
} // namespace mg::map
