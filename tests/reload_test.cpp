/**
 * Chaos matrix for the zero-downtime hot swap (serve::IndexManager +
 * the mgd RELOAD path).  The invariants under every row:
 *
 *  - no admitted request is ever dropped or answered from a
 *    half-published generation;
 *  - a replacement that fails validation is rejected with the old
 *    generation still serving (validated rollback) — including 400
 *    randomly damaged images, every one of which must roll back;
 *  - once the last pinned request of a retired generation completes,
 *    its arenas are provably unmapped (the weak_ptr proof);
 *  - a crash mid-swap (SIGKILL via the fault layer) leaves both the
 *    old and the replacement containers intact on disk, and a daemon
 *    in another process keeps serving.
 */
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "giraffe/session.h"
#include "index/distance.h"
#include "index/minimizer.h"
#include "io/file.h"
#include "io/mgz.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/frame.h"
#include "serve/index_manager.h"
#include "sim/pangenome_gen.h"
#include "sim/read_sim.h"

namespace mg::serve {
namespace {

std::string
tempPath(const std::string& name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

class ReloadFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fault::disarmAll();
        sim::PangenomeParams pparams;
        pparams.seed = 911;
        pparams.backboneLength = 5000;
        pparams.haplotypes = 4;
        pg_ = sim::generatePangenome(pparams);

        index::MinimizerParams mparams;
        mparams.k = 15;
        mparams.w = 8;
        minimizers_ = index::MinimizerIndex(pg_.graph, mparams);
        distance_ = index::DistanceIndex(pg_.graph);

        sim::ReadSimParams rparams;
        rparams.seed = 912;
        rparams.count = 24;
        rparams.readLength = 100;
        rparams.errorRate = 0.005;
        reads_ = sim::simulateReads(pg_, rparams).reads;

        v3Path_ = tempPath("reload_base.mgz3");
        io::saveMgz3(v3Path_, pg_.graph, pg_.gbwt, minimizers_,
                     distance_);
    }

    void TearDown() override { fault::disarmAll(); }

    std::string
    socketPath(const std::string& name) const
    {
        return tempPath(name + ".sock");
    }

    DaemonParams
    daemonParams(const std::string& name) const
    {
        DaemonParams params;
        params.socketPath = socketPath(name);
        params.workers = 2;
        params.queueCapacity = 16;
        params.retryBaseMillis = 2;
        return params;
    }

    /** Daemon serving the v3 container as an *owned* first generation
     *  (the hot-swappable configuration mgd uses for file loads). */
    std::unique_ptr<Daemon>
    makeDaemon(DaemonParams params) const
    {
        io::IndexedPangenome loaded = io::loadPangenome(v3Path_);
        return std::make_unique<Daemon>(std::move(loaded), v3Path_,
                                        std::move(params));
    }

    ClientParams
    clientParams(const std::string& name) const
    {
        ClientParams params;
        params.socketPath = socketPath(name);
        params.backoffBaseMillis = 1;
        params.backoffCapMillis = 40;
        params.maxAttempts = 32;
        return params;
    }

    /** A byte-identical replacement container at its own path. */
    std::string
    replacementPath(const std::string& name) const
    {
        std::string path = tempPath("reload_" + name + ".mgz3");
        io::writeFileBytes(path, io::readFileBytes(v3Path_));
        return path;
    }

    std::vector<map::Read>
    slice(size_t begin, size_t count) const
    {
        return std::vector<map::Read>(reads_.begin() + begin,
                                      reads_.begin() + begin + count);
    }

    sim::GeneratedPangenome pg_;
    index::MinimizerIndex minimizers_;
    index::DistanceIndex distance_;
    std::vector<map::Read> reads_;
    std::string v3Path_;
};

// --------------------------------------------------------------------
// Wire protocol for the new statuses and the RELOAD control frame.

TEST_F(ReloadFixture, FrameRoundTripsReloadStatusesAndControl)
{
    for (ResponseStatus status :
         { ResponseStatus::ReloadOk, ResponseStatus::ReloadRejected,
           ResponseStatus::DeadlineShed }) {
        Response in;
        in.id = 77;
        in.status = status;
        in.generation = 12345;
        if (status == ResponseStatus::DeadlineShed) {
            in.retryAfterMillis = 9;
        } else {
            in.message = "because";
        }
        Response out;
        ASSERT_TRUE(decodeResponse(encodeResponse(in), out).ok());
        EXPECT_EQ(out.id, in.id);
        EXPECT_EQ(out.status, in.status);
        EXPECT_EQ(out.generation, 12345u);
        EXPECT_EQ(out.message, in.message);
        EXPECT_EQ(out.retryAfterMillis, in.retryAfterMillis);
    }

    ControlRequest control;
    control.id = 9;
    control.path = "/some/graph.mgz3";
    std::vector<uint8_t> payload = encodeControl(control);
    MessageKind kind = MessageKind::Request;
    ASSERT_TRUE(peekKind(payload, kind).ok());
    EXPECT_EQ(kind, MessageKind::Control);
    ControlRequest decoded;
    ASSERT_TRUE(decodeControl(payload, decoded).ok());
    EXPECT_EQ(decoded.id, 9u);
    EXPECT_EQ(decoded.op, ControlOp::Reload);
    EXPECT_EQ(decoded.path, control.path);

    // Total decoder: trailing garbage is a structured rejection.
    payload.push_back(0xEE);
    EXPECT_FALSE(decodeControl(payload, decoded).ok());
}

// --------------------------------------------------------------------
// The happy path: swap under a live daemon, generation tags, golden GAF.

TEST_F(ReloadFixture, SwapPublishesNewGenerationWithIdenticalGaf)
{
    std::unique_ptr<Daemon> daemon = makeDaemon(daemonParams("swap"));
    daemon->start();

    Client client(clientParams("swap"));
    Response before;
    ASSERT_TRUE(client
                    .mapReads("", slice(0, 16), resilience::WorkBudget{},
                              before)
                    .ok());
    ASSERT_EQ(before.status, ResponseStatus::Ok);
    EXPECT_EQ(before.generation, 1u);

    // Ground truth: the same reads through a MapSession directly.
    giraffe::MapSession session(pg_.graph, pg_.gbwt, minimizers_,
                                distance_, giraffe::SessionParams{});
    giraffe::SessionResult direct =
        session.map(0, slice(0, 16), resilience::WorkBudget{});
    EXPECT_EQ(before.gaf, direct.gaf);

    Response verdict;
    ASSERT_TRUE(client.reload(replacementPath("swap"), verdict).ok());
    ASSERT_EQ(verdict.status, ResponseStatus::ReloadOk) << verdict.message;
    EXPECT_EQ(verdict.generation, 2u);

    Response after;
    ASSERT_TRUE(client
                    .mapReads("", slice(0, 16), resilience::WorkBudget{},
                              after)
                    .ok());
    ASSERT_EQ(after.status, ResponseStatus::Ok);
    EXPECT_EQ(after.generation, 2u);
    // Byte-identical replacement => byte-identical GAF across the swap.
    EXPECT_EQ(after.gaf, before.gaf);

    daemon->stop();
    const DaemonReport& report = daemon->report();
    EXPECT_EQ(report.reloads, 1u);
    EXPECT_EQ(report.reloadsRejected, 0u);
    EXPECT_EQ(report.finalGeneration, 2u);
    EXPECT_EQ(report.generationsRetired, 1u);
    EXPECT_EQ(client.stats().reloadsOk, 1u);
}

TEST_F(ReloadFixture, GafGenerationCommentTagsEachResponse)
{
    DaemonParams dparams = daemonParams("gencomment");
    dparams.gafGenerationComment = true;
    std::unique_ptr<Daemon> daemon = makeDaemon(dparams);
    daemon->start();

    Client client(clientParams("gencomment"));
    Response response;
    ASSERT_TRUE(client
                    .mapReads("", slice(0, 8), resilience::WorkBudget{},
                              response)
                    .ok());
    ASSERT_EQ(response.status, ResponseStatus::Ok);
    EXPECT_EQ(response.gaf.rfind("# mg:gen=1 ", 0), 0u) << response.gaf;

    Response verdict;
    ASSERT_TRUE(client.reload(replacementPath("gencomment"), verdict).ok());
    ASSERT_EQ(verdict.status, ResponseStatus::ReloadOk) << verdict.message;

    ASSERT_TRUE(client
                    .mapReads("", slice(0, 8), resilience::WorkBudget{},
                              response)
                    .ok());
    ASSERT_EQ(response.status, ResponseStatus::Ok);
    EXPECT_EQ(response.gaf.rfind("# mg:gen=2 ", 0), 0u) << response.gaf;

    daemon->stop();
}

// --------------------------------------------------------------------
// Validated rollback.

TEST_F(ReloadFixture, CorruptReplacementIsRejectedAndOldIndexServes)
{
    std::unique_ptr<Daemon> daemon = makeDaemon(daemonParams("corrupt"));
    daemon->start();

    // Damage one payload byte inside a section: the deep CRC sweep in
    // the load step must catch it before any serving state changes.
    std::string bad = replacementPath("corrupt");
    std::vector<uint8_t> bytes = io::readFileBytes(bad);
    io::MgzInfo info = io::inspectMgz3(bytes.data(), bytes.size(), bad);
    const io::MgzSectionInfo* victim = nullptr;
    for (const io::MgzSectionInfo& section : info.sections) {
        if (section.size > 0) {
            victim = &section;
        }
    }
    ASSERT_NE(victim, nullptr);
    bytes[victim->offset + victim->size / 2] ^= 0x40;
    io::writeFileBytes(bad, bytes);

    Client client(clientParams("corrupt"));
    Response verdict;
    ASSERT_TRUE(client.reload(bad, verdict).ok());
    EXPECT_EQ(verdict.status, ResponseStatus::ReloadRejected);
    EXPECT_FALSE(verdict.message.empty());
    EXPECT_EQ(verdict.generation, 1u); // the old one still serving

    Response response;
    ASSERT_TRUE(client
                    .mapReads("", slice(0, 8), resilience::WorkBudget{},
                              response)
                    .ok());
    EXPECT_EQ(response.status, ResponseStatus::Ok);
    EXPECT_EQ(response.generation, 1u);

    daemon->stop();
    EXPECT_EQ(daemon->report().reloads, 0u);
    EXPECT_EQ(daemon->report().reloadsRejected, 1u);
    EXPECT_EQ(daemon->report().finalGeneration, 1u);
    EXPECT_EQ(client.stats().reloadsRejected, 1u);
}

/**
 * 400 damaged replacement images, every flip restricted to bytes the
 * format actually covers (the header page and section payloads — the
 * CRCs do not cover inter-section padding, so a padding flip would load
 * clean and publish, which is correct but not what this test measures).
 * Every single attempt must roll back: generation stays 1, pin() stays
 * serviceable, and the manager afterwards still swaps a clean image.
 */
TEST_F(ReloadFixture, DamagedReplacementFuzz400AlwaysRollsBack)
{
    io::IndexedPangenome loaded = io::loadPangenome(v3Path_);
    IndexManager manager(std::move(loaded), giraffe::SessionParams{},
                         v3Path_);

    const std::vector<uint8_t> clean = io::readFileBytes(v3Path_);
    io::MgzInfo info =
        io::inspectMgz3(clean.data(), clean.size(), v3Path_);

    // Damageable byte ranges: the header page + every section payload.
    std::vector<std::pair<uint64_t, uint64_t>> ranges;
    ranges.emplace_back(0, 64);
    for (const io::MgzSectionInfo& section : info.sections) {
        if (section.size > 0) {
            ranges.emplace_back(section.offset,
                                section.offset + section.size);
        }
    }

    std::mt19937_64 rng(0xBADC0DEull);
    std::uniform_int_distribution<size_t> pick_range(0, ranges.size() - 1);
    std::uniform_int_distribution<int> pick_bit(0, 7);
    const std::string path = tempPath("reload_fuzz.mgz3");

    for (int round = 0; round < 400; ++round) {
        std::vector<uint8_t> damaged = clean;
        if (round % 8 == 7) {
            // Truncate into a covered range (always detectable).
            const auto& [begin, end] = ranges[pick_range(rng)];
            std::uniform_int_distribution<uint64_t> pick(begin, end - 1);
            damaged.resize(pick(rng));
        } else {
            const int flips = 1 + round % 3;
            for (int i = 0; i < flips; ++i) {
                const auto& [begin, end] = ranges[pick_range(rng)];
                std::uniform_int_distribution<uint64_t> pick(begin,
                                                             end - 1);
                damaged[pick(rng)] ^=
                    static_cast<uint8_t>(1u << pick_bit(rng));
            }
        }
        io::writeFileBytes(path, damaged);
        SwapOutcome outcome = manager.swap(path);
        EXPECT_FALSE(outcome.accepted)
            << "round " << round << " published damaged image";
        EXPECT_FALSE(outcome.reason.empty());
        EXPECT_EQ(manager.generation(), 1u);
        ASSERT_NE(manager.pin(), nullptr);
    }
    EXPECT_EQ(manager.retiredTotal(), 0u);

    // Rollback left the manager fully functional: a clean image swaps.
    io::writeFileBytes(path, clean);
    SwapOutcome outcome = manager.swap(path);
    EXPECT_TRUE(outcome.accepted) << outcome.reason;
    EXPECT_EQ(manager.generation(), 2u);
}

// --------------------------------------------------------------------
// Swap under sustained load: nothing dropped, arenas provably unmapped.

TEST_F(ReloadFixture, SwapUnderSustainedLoadDropsNothingAndUnmapsOld)
{
    std::unique_ptr<Daemon> daemon = makeDaemon(daemonParams("load"));
    daemon->start();

    constexpr size_t kClients = 3;
    constexpr int kCallsPerClient = 30;
    std::atomic<uint64_t> failures{0};
    std::vector<std::string> gafByGeneration[kClients];
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (size_t c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            Client client(clientParams("load"));
            for (int i = 0; i < kCallsPerClient; ++i) {
                Response response;
                util::Status status =
                    client.mapReads("", slice(0, 8),
                                    resilience::WorkBudget{}, response);
                if (!status.ok() ||
                    response.status != ResponseStatus::Ok) {
                    ++failures;
                    continue;
                }
                // Per-generation GAF: every generation serves the same
                // container bytes, so all GAF must be byte-identical.
                if (response.generation >=
                    gafByGeneration[c].size() + 1) {
                    gafByGeneration[c].resize(response.generation);
                }
                std::string& seen =
                    gafByGeneration[c][response.generation - 1];
                if (seen.empty()) {
                    seen = response.gaf;
                } else if (seen != response.gaf) {
                    ++failures;
                }
            }
        });
    }

    // Swap repeatedly while the load runs.
    const std::string replacement = replacementPath("load");
    size_t published = 0;
    for (int s = 0; s < 4; ++s) {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        SwapOutcome outcome = daemon->reloadIndex(replacement);
        ASSERT_TRUE(outcome.accepted) << outcome.reason;
        ++published;
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
    EXPECT_EQ(failures.load(), 0u);

    // Cross-generation golden equality (threads only checked within
    // themselves; generations must also agree with each other).
    std::string golden;
    for (size_t c = 0; c < kClients; ++c) {
        for (const std::string& gaf : gafByGeneration[c]) {
            if (gaf.empty()) {
                continue; // this thread never hit that generation
            }
            if (golden.empty()) {
                golden = gaf;
            }
            EXPECT_EQ(gaf, golden);
        }
    }
    EXPECT_FALSE(golden.empty());

    // The unmap proof: with no request in flight, every retired
    // generation's weak_ptrs must expire — including the MappedFile
    // keepalives, whose expiry means munmap already ran.
    IndexManager& manager = daemon->indexManager();
    EXPECT_EQ(manager.retiredTotal(), published);
    for (int wait = 0; manager.retiredAlive() != 0 && wait < 100; ++wait) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(manager.retiredAlive(), 0u);
    EXPECT_EQ(manager.retiredMappingsAlive(), 0u);

    daemon->stop();
    const DaemonReport& report = daemon->report();
    EXPECT_EQ(report.reloads, published);
    EXPECT_EQ(report.generationsRetired, published);
    EXPECT_EQ(report.finalGeneration, published + 1);
}

TEST_F(ReloadFixture, RapidRepeatedSwapsStayCoherent)
{
    std::unique_ptr<Daemon> daemon = makeDaemon(daemonParams("rapid"));
    daemon->start();

    const std::string replacement = replacementPath("rapid");
    Client client(clientParams("rapid"));
    for (uint64_t s = 1; s <= 6; ++s) {
        SwapOutcome outcome = daemon->reloadIndex(replacement);
        ASSERT_TRUE(outcome.accepted) << outcome.reason;
        EXPECT_EQ(outcome.generation, s + 1);

        Response response;
        ASSERT_TRUE(client
                        .mapReads("", slice(0, 4),
                                  resilience::WorkBudget{}, response)
                        .ok());
        ASSERT_EQ(response.status, ResponseStatus::Ok);
        EXPECT_EQ(response.generation, s + 1);
    }
    EXPECT_EQ(daemon->indexManager().retiredTotal(), 6u);
    daemon->stop();
    EXPECT_EQ(daemon->report().finalGeneration, 7u);
}

// --------------------------------------------------------------------
// The publish window: late admissions see RETRY_AFTER, never a
// half-published handle.

TEST_F(ReloadFixture, StalledPublishYieldsRetryAfterNeverHalfPublished)
{
    std::unique_ptr<Daemon> daemon = makeDaemon(daemonParams("publish"));
    daemon->start();

    fault::Spec spec;
    spec.kind = fault::Kind::Stall;
    spec.stallMillis = 250;
    spec.limit = 1;
    fault::arm("serve.swap.publish", spec);

    std::thread swapper([&] {
        SwapOutcome outcome =
            daemon->reloadIndex(replacementPath("publish"));
        EXPECT_TRUE(outcome.accepted) << outcome.reason;
    });

    // Hammer the admission path with unretried calls while the publish
    // window is held open.  Every response must be a *complete* verdict:
    // Ok from generation 1 or 2 with non-empty GAF, or RETRY_AFTER with
    // a hint.  Anything else is a half-published observation.
    Client client(clientParams("publish"));
    size_t retry_after = 0;
    size_t ok = 0;
    for (int i = 0; i < 400; ++i) {
        Request request;
        request.id = client.nextId();
        request.reads = slice(0, 2);
        Response response;
        util::Status status = client.call(request, response);
        ASSERT_TRUE(status.ok()) << status.toString();
        if (response.status == ResponseStatus::Ok) {
            ++ok;
            EXPECT_TRUE(response.generation == 1 ||
                        response.generation == 2)
                << response.generation;
            EXPECT_FALSE(response.gaf.empty());
        } else {
            ASSERT_EQ(response.status, ResponseStatus::RetryAfter);
            ++retry_after;
            EXPECT_GT(response.retryAfterMillis, 0u);
            EXPECT_EQ(response.generation, 1u); // old one still serving
        }
    }
    swapper.join();
    EXPECT_GT(ok, 0u);
    // The 250 ms window must have refused at least one admission.
    EXPECT_GT(retry_after, 0u);

    // After the window closes, service resumes on the new generation.
    Response response;
    ASSERT_TRUE(client
                    .mapReads("", slice(0, 4), resilience::WorkBudget{},
                              response)
                    .ok());
    EXPECT_EQ(response.status, ResponseStatus::Ok);
    EXPECT_EQ(response.generation, 2u);
    daemon->stop();
}

// --------------------------------------------------------------------
// Swap racing graceful drain.

TEST_F(ReloadFixture, ReloadDuringDrainIsRejected)
{
    std::unique_ptr<Daemon> daemon = makeDaemon(daemonParams("drainrej"));
    daemon->start();
    daemon->requestDrain();

    SwapOutcome outcome =
        daemon->reloadIndex(replacementPath("drainrej"));
    EXPECT_FALSE(outcome.accepted);
    EXPECT_NE(outcome.reason.find("not running"), std::string::npos)
        << outcome.reason;
    EXPECT_EQ(outcome.generation, 1u);

    daemon->stop();
    EXPECT_EQ(daemon->report().reloadsRejected, 1u);
    EXPECT_EQ(daemon->report().finalGeneration, 1u);
}

TEST_F(ReloadFixture, SwapRacingDrainNeverHangsOrCrashes)
{
    std::unique_ptr<Daemon> daemon = makeDaemon(daemonParams("drainrace"));
    daemon->start();

    // Hold the swap inside its load step while the drain runs past it.
    fault::Spec spec;
    spec.kind = fault::Kind::Stall;
    spec.stallMillis = 150;
    spec.limit = 1;
    fault::arm("serve.swap.load", spec);

    SwapOutcome outcome;
    std::thread swapper([&] {
        outcome = daemon->reloadIndex(replacementPath("drainrace"));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    daemon->requestDrain();
    swapper.join();
    daemon->stop();

    // Either side may win the race; both must leave a coherent daemon.
    if (outcome.accepted) {
        EXPECT_EQ(daemon->report().finalGeneration, 2u);
    } else {
        EXPECT_EQ(daemon->report().finalGeneration, 1u);
        EXPECT_FALSE(outcome.reason.empty());
    }
    EXPECT_EQ(daemon->state(), DaemonState::Stopped);
}

// --------------------------------------------------------------------
// Crash mid-swap (fault-layer SIGKILL in a forked child): both
// containers stay intact on disk and the parent keeps serving.

TEST_F(ReloadFixture, SigkillMidSwapLeavesContainersIntactAndServing)
{
    const std::string replacement = replacementPath("kill9");

    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: crash at the publish boundary — after load+validate,
        // mid-flip.  Kind::Crash raises SIGKILL (no unwinding, no
        // flush), the closest stand-in for power loss.
        fault::Spec spec;
        spec.kind = fault::Kind::Crash;
        spec.limit = 1;
        fault::arm("serve.swap.publish", spec);
        io::IndexedPangenome loaded = io::loadPangenome(v3Path_);
        IndexManager manager(std::move(loaded), giraffe::SessionParams{},
                             v3Path_);
        manager.swap(replacement);
        _exit(7); // unreachable: the fault killed us
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wstatus));
    EXPECT_EQ(WTERMSIG(wstatus), SIGKILL);

    // The swap machinery only ever *reads* the containers: both images
    // must still deep-validate after the crash.
    EXPECT_TRUE(io::validatePangenomeFile(v3Path_, true).ok());
    EXPECT_TRUE(io::validatePangenomeFile(replacement, true).ok());

    // And a daemon (the "old socket" in the deployment story) serves
    // the original container untouched by the child's death.
    std::unique_ptr<Daemon> daemon = makeDaemon(daemonParams("kill9"));
    daemon->start();
    Client client(clientParams("kill9"));
    Response response;
    ASSERT_TRUE(client
                    .mapReads("", slice(0, 4), resilience::WorkBudget{},
                              response)
                    .ok());
    EXPECT_EQ(response.status, ResponseStatus::Ok);
    EXPECT_EQ(response.generation, 1u);
    daemon->stop();
}

// --------------------------------------------------------------------
// SLO-aware shedding: queued requests whose deadline is already
// unmeetable are answered DEADLINE_SHED instead of mapped late.

TEST_F(ReloadFixture, ExpiredQueuedRequestsAreDeadlineShed)
{
    DaemonParams dparams = daemonParams("slo");
    dparams.workers = 1;
    std::unique_ptr<Daemon> daemon = makeDaemon(dparams);
    daemon->start();

    // Wedge the single worker on request A long enough for B and C's
    // 1 ms deadlines to lapse while they sit in the queue.
    fault::Spec spec;
    spec.kind = fault::Kind::Stall;
    spec.stallMillis = 300;
    spec.limit = 1;
    fault::arm("map.read", spec);

    std::thread busy([&] {
        Client client(clientParams("slo"));
        Request request;
        request.id = client.nextId();
        request.reads = slice(0, 8);
        Response response;
        util::Status status = client.call(request, response);
        EXPECT_TRUE(status.ok()) << status.toString();
        EXPECT_EQ(response.status, ResponseStatus::Ok);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::atomic<int> shed_count{0};
    std::vector<std::thread> doomed;
    for (int i = 0; i < 2; ++i) {
        doomed.emplace_back([&] {
            Client client(clientParams("slo"));
            Request request;
            request.id = client.nextId();
            request.deadlineMicros = 1000; // 1 ms: cannot be met
            request.reads = slice(0, 4);
            Response response;
            util::Status status = client.call(request, response);
            ASSERT_TRUE(status.ok()) << status.toString();
            EXPECT_EQ(response.status, ResponseStatus::DeadlineShed);
            EXPECT_EQ(response.generation, 1u);
            ++shed_count;
        });
    }
    busy.join();
    for (std::thread& thread : doomed) {
        thread.join();
    }
    EXPECT_EQ(shed_count.load(), 2);

    daemon->stop();
    EXPECT_EQ(daemon->report().deadlineShed, 2u);
    EXPECT_EQ(daemon->report().completed, 1u);
}

// --------------------------------------------------------------------
// Observability continuity: a hot swap must not tear the metric space.

TEST_F(ReloadFixture, MetricsStayContinuousAcrossHotSwap)
{
    DaemonParams dparams = daemonParams("continuity");
    dparams.tenants = parseTenantSpec("gold:weight=3,free");
    dparams.traceSample = 1.0; // feed the stage histograms too
    std::unique_ptr<Daemon> daemon = makeDaemon(dparams);
    daemon->start();

    Client client(clientParams("continuity"));
    auto mapOk = [&](const std::string& tenant) {
        Response response;
        util::Status status = client.mapReads(
            tenant, slice(0, 8), resilience::WorkBudget{}, response);
        ASSERT_TRUE(status.ok()) << status.toString();
        ASSERT_EQ(response.status, ResponseStatus::Ok);
    };
    // The worker accounts a request *after* writing its response, so a
    // snapshot taken the instant the client returns can race the final
    // counter bump; settle on the expected totals first.
    auto settledSnapshot = [&](uint64_t gold_done, uint64_t free_done) {
        for (int spin = 0; spin < 2000; ++spin) {
            obs::Snapshot snap = daemon->hub().registry().snapshot();
            const obs::MetricValue* gold =
                snap.find("mg_serve_completed_total{tenant=\"gold\"}");
            const obs::MetricValue* free_tenant =
                snap.find("mg_serve_completed_total{tenant=\"free\"}");
            const obs::MetricValue* extend =
                snap.find("mg_serve_stage_ns{stage=\"extend\"}");
            if (gold != nullptr && free_tenant != nullptr &&
                extend != nullptr && gold->value >= gold_done &&
                free_tenant->value >= free_done &&
                extend->hist.count() >= gold_done + free_done) {
                return snap;
            }
            usleep(1000);
        }
        ADD_FAILURE() << "counters never settled";
        return daemon->hub().registry().snapshot();
    };

    mapOk("gold");
    mapOk("gold");
    mapOk("free");
    obs::Snapshot before = settledSnapshot(2, 1);

    SwapOutcome outcome =
        daemon->reloadIndex(replacementPath("continuity"));
    ASSERT_TRUE(outcome.accepted) << outcome.reason;
    EXPECT_EQ(outcome.generation, 2u);

    mapOk("gold");
    mapOk("free");
    obs::Snapshot after = settledSnapshot(3, 2);

    // The metric space is identical across the swap: every series that
    // existed before exists after, same kind — no torn or re-registered
    // series — and counters/histograms only ever move forward.
    ASSERT_EQ(before.metrics.size(), after.metrics.size());
    for (const obs::MetricValue& old : before.metrics) {
        const obs::MetricValue* now = after.find(old.name);
        ASSERT_NE(now, nullptr) << "series vanished: " << old.name;
        EXPECT_EQ(now->kind, old.kind) << old.name;
        if (old.kind == obs::MetricKind::Counter) {
            EXPECT_GE(now->value, old.value)
                << "counter went backwards: " << old.name;
        } else if (old.kind == obs::MetricKind::Histogram) {
            EXPECT_GE(now->hist.count(), old.hist.count())
                << "histogram shrank: " << old.name;
            EXPECT_GE(now->hist.sumNanos(), old.hist.sumNanos())
                << old.name;
        }
    }

    // Work after the swap landed in the *same* per-tenant series.
    auto counter = [](const obs::Snapshot& snap, const std::string& name) {
        const obs::MetricValue* m = snap.find(name);
        EXPECT_NE(m, nullptr) << name;
        return m != nullptr ? m->value : 0;
    };
    EXPECT_EQ(counter(before, "mg_serve_completed_total{tenant=\"gold\"}"),
              2u);
    EXPECT_EQ(counter(after, "mg_serve_completed_total{tenant=\"gold\"}"),
              3u);
    EXPECT_EQ(counter(before, "mg_serve_completed_total{tenant=\"free\"}"),
              1u);
    EXPECT_EQ(counter(after, "mg_serve_completed_total{tenant=\"free\"}"),
              2u);

    // The swap itself is accounted, and the generation gauge moved.
    EXPECT_EQ(counter(after, "mg_serve_reloads_total"), 1u);
    EXPECT_EQ(after.find("mg_serve_generation")->value, 2u);
    const obs::MetricValue* reload_latency =
        after.find("mg_serve_reload_latency_ns");
    ASSERT_NE(reload_latency, nullptr);
    EXPECT_EQ(reload_latency->hist.count(), 1u);

    // Stage histograms kept accumulating across the swap (requests were
    // traced on both sides of it).
    const obs::MetricValue* extend_before =
        before.find("mg_serve_stage_ns{stage=\"extend\"}");
    const obs::MetricValue* extend_after =
        after.find("mg_serve_stage_ns{stage=\"extend\"}");
    ASSERT_NE(extend_before, nullptr);
    ASSERT_NE(extend_after, nullptr);
    EXPECT_EQ(extend_before->hist.count(), 3u);
    EXPECT_EQ(extend_after->hist.count(), 5u);

    daemon->stop();
    EXPECT_EQ(daemon->report().completed, 5u);
    EXPECT_EQ(daemon->report().reloads, 1u);
    EXPECT_EQ(daemon->report().tracedRequests, 5u);
}

} // namespace
} // namespace mg::serve
