/** Tests for the CachedGBWT decode cache. */
#include <gtest/gtest.h>

#include "gbwt/cached_gbwt.h"
#include "sim/pangenome_gen.h"
#include "util/rng.h"

namespace mg::gbwt {
namespace {

using graph::Handle;

sim::GeneratedPangenome
makePangenome(uint64_t seed = 99, size_t backbone = 3000, size_t haps = 6)
{
    sim::PangenomeParams params;
    params.seed = seed;
    params.backboneLength = backbone;
    params.haplotypes = haps;
    return sim::generatePangenome(params);
}

TEST(CachedGbwtTest, QueriesMatchUncachedGbwt)
{
    sim::GeneratedPangenome pg = makePangenome();
    CachedGbwt cache(pg.gbwt, 64);

    for (graph::NodeId id = 1; id <= pg.graph.numNodes(); ++id) {
        for (bool reverse : {false, true}) {
            Handle h(id, reverse);
            EXPECT_EQ(cache.nodeCount(h), pg.gbwt.nodeCount(h));
            SearchState cached = cache.find(h);
            SearchState raw = pg.gbwt.find(h);
            EXPECT_EQ(cached, raw);
        }
    }
}

TEST(CachedGbwtTest, ExtendMatchesUncachedAlongWalks)
{
    sim::GeneratedPangenome pg = makePangenome(100);
    CachedGbwt cache(pg.gbwt, 128);
    for (const auto& walk : pg.walks) {
        SearchState cached = cache.find(walk.front());
        SearchState raw = pg.gbwt.find(walk.front());
        for (size_t i = 1; i < walk.size(); ++i) {
            cached = cache.extend(cached, walk[i]);
            raw = pg.gbwt.extend(raw, walk[i]);
            ASSERT_EQ(cached, raw) << "step " << i;
        }
        EXPECT_GE(cached.size(), 1u);
    }
}

TEST(CachedGbwtTest, RepeatAccessesHitTheCache)
{
    sim::GeneratedPangenome pg = makePangenome(101);
    CachedGbwt cache(pg.gbwt, 256);
    Handle h(1, false);
    cache.record(h);
    uint64_t decodes_after_first = cache.stats().decodes;
    for (int i = 0; i < 10; ++i) {
        cache.record(h);
    }
    EXPECT_EQ(cache.stats().decodes, decodes_after_first);
    EXPECT_GE(cache.stats().hits, 10u);
}

TEST(CachedGbwtTest, ZeroCapacityDisablesCaching)
{
    sim::GeneratedPangenome pg = makePangenome(102);
    CachedGbwt cache(pg.gbwt, 0);
    EXPECT_FALSE(cache.cachingEnabled());
    Handle h(1, false);
    for (int i = 0; i < 5; ++i) {
        cache.record(h);
    }
    EXPECT_EQ(cache.stats().decodes, 5u);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.size(), 0u);
    // Queries still work.
    EXPECT_EQ(cache.nodeCount(h), pg.gbwt.nodeCount(h));
}

TEST(CachedGbwtTest, SmallInitialCapacityRehashesMore)
{
    sim::GeneratedPangenome pg = makePangenome(103, 6000, 8);
    CachedGbwt small(pg.gbwt, 2);
    CachedGbwt large(pg.gbwt, 1 << 14);
    for (graph::NodeId id = 1; id <= pg.graph.numNodes(); ++id) {
        small.record(Handle(id, false));
        large.record(Handle(id, false));
    }
    EXPECT_GT(small.stats().rehashes, 5u);
    EXPECT_EQ(large.stats().rehashes, 0u);
    // Same content either way.
    EXPECT_EQ(small.size(), large.size());
}

TEST(CachedGbwtTest, CapacityRoundsUpToPowerOfTwo)
{
    sim::GeneratedPangenome pg = makePangenome(104, 1000, 2);
    CachedGbwt cache(pg.gbwt, 300);
    EXPECT_EQ(cache.capacity(), 512u);
}

TEST(CachedGbwtTest, RecordReferencesSurviveGrowth)
{
    sim::GeneratedPangenome pg = makePangenome(105, 4000, 4);
    CachedGbwt cache(pg.gbwt, 2);
    const DecodedRecord& first = cache.record(Handle(1, false));
    uint64_t visits = first.numVisits();
    // Force many insertions (and rehashes).
    for (graph::NodeId id = 2; id <= pg.graph.numNodes(); ++id) {
        cache.record(Handle(id, false));
    }
    EXPECT_GT(cache.stats().rehashes, 0u);
    // The reference obtained before growth still reads correctly.
    EXPECT_EQ(first.numVisits(), visits);
    EXPECT_EQ(first.numVisits(), pg.gbwt.nodeCount(Handle(1, false)));
}

TEST(CachedGbwtTest, ClearKeepsCapacityDropsEntries)
{
    sim::GeneratedPangenome pg = makePangenome(106, 1000, 2);
    CachedGbwt cache(pg.gbwt, 64);
    for (graph::NodeId id = 1; id <= 20; ++id) {
        cache.record(Handle(id, false));
    }
    size_t capacity = cache.capacity();
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.capacity(), capacity);
    // Re-decoding works after clear.
    EXPECT_EQ(cache.nodeCount(Handle(1, false)),
              pg.gbwt.nodeCount(Handle(1, false)));
}

TEST(CachedGbwtTest, ClearResetsStatsAndBumpsEpoch)
{
    sim::GeneratedPangenome pg = makePangenome(110, 1000, 2);
    CachedGbwt cache(pg.gbwt, 64);
    for (graph::NodeId id = 1; id <= 10; ++id) {
        cache.record(Handle(id, false));
    }
    EXPECT_GT(cache.stats().lookups, 0u);
    uint64_t epoch_before = cache.epoch();
    cache.clear();
    EXPECT_EQ(cache.epoch(), epoch_before + 1);
    // Statistics reset with the generation (freshCache() accumulates the
    // previous interval before clearing).
    EXPECT_EQ(cache.stats().lookups, 0u);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().decodes, 0u);
    EXPECT_EQ(cache.stats().probes, 0u);
    EXPECT_EQ(cache.stats().rehashes, 0u);
}

TEST(CachedGbwtTest, StaleGenerationEntriesMissAfterClear)
{
    sim::GeneratedPangenome pg = makePangenome(111, 1000, 2);
    CachedGbwt cache(pg.gbwt, 64);
    Handle h(3, false);
    cache.record(h);
    cache.record(h);
    EXPECT_EQ(cache.stats().hits, 1u);
    cache.clear();
    // The slot still physically holds the key, but its generation stamp is
    // stale: the next access must decode again, exactly as a freshly
    // constructed cache would.
    cache.record(h);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().decodes, 1u);
    // ... and from then on it hits again.
    cache.record(h);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(CachedGbwtTest, ClearedCacheMatchesFreshCacheOnEveryQuery)
{
    sim::GeneratedPangenome pg = makePangenome(112, 2000, 4);
    CachedGbwt recycled(pg.gbwt, 64);
    // Several generations of varied traffic, then compare a full sweep
    // against a never-cleared fresh cache.
    util::Rng rng(7);
    for (int gen = 0; gen < 5; ++gen) {
        for (int i = 0; i < 200; ++i) {
            graph::NodeId id = 1 + rng.uniform(pg.graph.numNodes());
            recycled.record(Handle(id, rng.chance(0.5)));
        }
        recycled.clear();
    }
    CachedGbwt fresh(pg.gbwt, 64);
    for (graph::NodeId id = 1; id <= pg.graph.numNodes(); ++id) {
        for (bool reverse : {false, true}) {
            Handle h(id, reverse);
            ASSERT_EQ(recycled.find(h), fresh.find(h));
            ASSERT_EQ(recycled.nodeCount(h), fresh.nodeCount(h));
        }
    }
    EXPECT_EQ(recycled.size(), fresh.size());
}

TEST(CachedGbwtTest, ClearShrinksGrownTableBackToInitialCapacity)
{
    sim::GeneratedPangenome pg = makePangenome(113, 4000, 4);
    CachedGbwt cache(pg.gbwt, 8);
    for (graph::NodeId id = 1; id <= pg.graph.numNodes(); ++id) {
        cache.record(Handle(id, false));
    }
    EXPECT_GT(cache.capacity(), 8u); // rehash growth happened
    cache.clear();
    // A fresh mapping task starts at the tuned initial capacity again.
    EXPECT_EQ(cache.capacity(), 8u);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.nodeCount(Handle(1, false)),
              pg.gbwt.nodeCount(Handle(1, false)));
}

TEST(CachedGbwtTest, FootprintGrowsWithEntries)
{
    sim::GeneratedPangenome pg = makePangenome(107, 2000, 4);
    CachedGbwt cache(pg.gbwt, 64);
    size_t before = cache.footprintBytes();
    for (graph::NodeId id = 1; id <= 50; ++id) {
        cache.record(Handle(id, false));
    }
    EXPECT_GT(cache.footprintBytes(), before);
}

/** Parameterized sweep: every capacity yields identical query results. */
class CacheCapacityProperty : public ::testing::TestWithParam<size_t>
{};

TEST_P(CacheCapacityProperty, CapacityNeverChangesSemantics)
{
    sim::GeneratedPangenome pg = makePangenome(108, 2500, 5);
    CachedGbwt cache(pg.gbwt, GetParam());
    util::Rng rng(GetParam() + 1);
    for (int trial = 0; trial < 300; ++trial) {
        graph::NodeId id =
            1 + rng.uniform(pg.graph.numNodes());
        Handle h(id, rng.chance(0.5));
        ASSERT_EQ(cache.nodeCount(h), pg.gbwt.nodeCount(h));
    }
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheCapacityProperty,
                         ::testing::Values(0, 2, 16, 256, 4096, 65536));

} // namespace
} // namespace mg::gbwt
