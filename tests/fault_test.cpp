/**
 * Fault-injection harness tests: registry determinism, the injection
 * kinds, guarded scheduling with quarantine, and the end-to-end failure
 * scenario of the robustness acceptance criteria — a parent run with
 * faults armed at the decoder and inside the workers must complete,
 * report what fired, and keep its output for healthy reads identical to
 * a fault-free run.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <new>
#include <vector>

#include "fault/fault.h"
#include "giraffe/parent.h"
#include "giraffe/proxy.h"
#include "io/gaf.h"
#include "io/mgz.h"
#include "sched/failure.h"
#include "sched/scheduler.h"
#include "sim/input_sets.h"
#include "util/status.h"

namespace mg::fault {
namespace {

/** Every test leaves the registry clean. */
class FaultFixture : public ::testing::Test
{
  protected:
    void SetUp() override { disarmAll(); }
    void TearDown() override { disarmAll(); }
};

TEST_F(FaultFixture, NothingArmedIsANoOp)
{
    EXPECT_FALSE(anyArmed());
    EXPECT_FALSE(fire("some.site").has_value());
    inject("some.site"); // must not throw
    std::vector<uint8_t> bytes = { 1, 2, 3 };
    EXPECT_FALSE(corrupted("some.site", bytes).has_value());
}

TEST_F(FaultFixture, ArmDisarmTracksArmedState)
{
    arm("a.site", {});
    EXPECT_TRUE(anyArmed());
    disarm("a.site");
    EXPECT_FALSE(anyArmed());
    arm("a.site", {});
    arm("b.site", {});
    disarmAll();
    EXPECT_FALSE(anyArmed());
}

TEST_F(FaultFixture, FiringIsDeterministicForASeed)
{
    Spec spec;
    spec.probability = 0.5;
    spec.seed = 42;

    auto pattern = [&] {
        arm("det.site", spec);
        std::vector<bool> fired;
        for (int i = 0; i < 200; ++i) {
            fired.push_back(fire("det.site").has_value());
        }
        disarmAll();
        return fired;
    };
    std::vector<bool> first = pattern();
    std::vector<bool> second = pattern();
    EXPECT_EQ(first, second);

    // Roughly half fire (deterministic, so an exact count each run).
    size_t fires = 0;
    for (bool f : first) {
        fires += f ? 1 : 0;
    }
    EXPECT_GT(fires, 50u);
    EXPECT_LT(fires, 150u);

    // A different seed gives a different pattern.
    spec.seed = 43;
    EXPECT_NE(pattern(), first);
}

TEST_F(FaultFixture, AfterAndLimitWindowTheFires)
{
    Spec spec;
    spec.after = 3;
    spec.limit = 2;
    arm("win.site", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 10; ++i) {
        fired.push_back(fire("win.site").has_value());
    }
    std::vector<bool> expected = { false, false, false, true, true,
                                   false, false, false, false, false };
    EXPECT_EQ(fired, expected);

    SiteStats site_stats = stats("win.site");
    EXPECT_EQ(site_stats.hits, 10u);
    EXPECT_EQ(site_stats.fires, 2u);
}

TEST_F(FaultFixture, InjectThrowCarriesStatus)
{
    arm("throw.site", {});
    try {
        inject("throw.site");
        FAIL() << "expected StatusError";
    } catch (const util::StatusError& e) {
        EXPECT_EQ(e.status().code, util::StatusCode::FaultInjected);
        EXPECT_EQ(e.status().section, "throw.site");
    }
}

TEST_F(FaultFixture, InjectAllocFailThrowsBadAlloc)
{
    Spec spec;
    spec.kind = Kind::AllocFail;
    arm("alloc.site", spec);
    EXPECT_THROW(inject("alloc.site"), std::bad_alloc);
}

TEST_F(FaultFixture, CorruptedMutatesDeterministically)
{
    std::vector<uint8_t> bytes(256);
    for (size_t i = 0; i < bytes.size(); ++i) {
        bytes[i] = static_cast<uint8_t>(i);
    }

    Spec spec;
    spec.kind = Kind::Corrupt;
    spec.seed = 7;
    arm("buf.site", spec);
    auto first = corrupted("buf.site", bytes);
    ASSERT_TRUE(first.has_value());
    EXPECT_NE(*first, bytes);
    EXPECT_EQ(first->size(), bytes.size());

    // Re-arming resets the hit counter: the same mutation comes back.
    arm("buf.site", spec);
    auto second = corrupted("buf.site", bytes);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(*first, *second);

    Spec trunc;
    trunc.kind = Kind::Truncate;
    trunc.seed = 7;
    arm("buf.site", trunc);
    auto cut = corrupted("buf.site", bytes);
    ASSERT_TRUE(cut.has_value());
    EXPECT_LT(cut->size(), bytes.size());
}

TEST_F(FaultFixture, ArmFromTextParsesClauses)
{
    armFromText("x.site=throw,p=0.5,seed=9,after=2,limit=4;"
                "y.site=stall,stall=1");
    EXPECT_TRUE(anyArmed());
    // Consume hits on x.site: first two never fire (after=2).
    EXPECT_FALSE(fire("x.site").has_value());
    EXPECT_FALSE(fire("x.site").has_value());
    inject("y.site"); // stall returns, must not throw

    EXPECT_THROW(armFromText("z.site=explode"), util::Error);
    EXPECT_THROW(armFromText("no-equals-sign"), util::Error);
    EXPECT_THROW(armFromText("z.site=throw,bogus=1"), util::Error);
}

// ------------------------------------------------------------ runGuarded

TEST_F(FaultFixture, RunGuardedCleanRunReportsNoFailures)
{
    auto scheduler = sched::makeScheduler(sched::SchedulerKind::WorkStealing);
    std::vector<std::atomic<int>> seen(100);
    sched::FailureReport report = sched::runGuarded(
        *scheduler, 100, 8, 4, [&](size_t, size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
                seen[i].fetch_add(1);
            }
        });
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.summary(), "no failures");
    for (const auto& count : seen) {
        EXPECT_EQ(count.load(), 1);
    }
}

TEST_F(FaultFixture, RunGuardedRecoversTransientFailure)
{
    auto scheduler = sched::makeScheduler(sched::SchedulerKind::Static);
    std::atomic<bool> threw{false};
    std::vector<std::atomic<int>> seen(64);
    sched::FailureReport report = sched::runGuarded(
        *scheduler, 64, 8, 2, [&](size_t, size_t begin, size_t end) {
            if (begin == 16 && !threw.exchange(true)) {
                throw util::Error("transient worker death");
            }
            for (size_t i = begin; i < end; ++i) {
                seen[i].fetch_add(1);
            }
        });
    EXPECT_FALSE(report.ok());
    ASSERT_EQ(report.batches.size(), 1u);
    EXPECT_EQ(report.batches[0].begin, 16u);
    EXPECT_EQ(report.batches[0].end, 24u);
    EXPECT_TRUE(report.batches[0].recovered);
    EXPECT_NE(report.batches[0].what.find("transient"), std::string::npos);
    EXPECT_TRUE(report.poisoned.empty());
    for (const auto& count : seen) {
        EXPECT_EQ(count.load(), 1); // recovered batch ran exactly once
    }
}

TEST_F(FaultFixture, RunGuardedQuarantinesPoisonedItems)
{
    auto scheduler = sched::makeScheduler(sched::SchedulerKind::OmpDynamic);
    std::vector<std::atomic<int>> seen(100);
    sched::FailureReport report = sched::runGuarded(
        *scheduler, 100, 10, 4, [&](size_t, size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
                if (i == 37 || i == 73) {
                    throw util::Error("poisoned item");
                }
                seen[i].fetch_add(1);
            }
        });
    EXPECT_FALSE(report.ok());
    ASSERT_EQ(report.poisoned.size(), 2u);
    std::vector<size_t> poisoned = { report.poisoned[0].index,
                                     report.poisoned[1].index };
    std::sort(poisoned.begin(), poisoned.end());
    EXPECT_EQ(poisoned, (std::vector<size_t>{ 37, 73 }));
    for (const sched::BatchFailure& failure : report.batches) {
        EXPECT_FALSE(failure.recovered);
    }
    // Every healthy item — including the poisoned items' batchmates —
    // was processed at least once via bisection.
    for (size_t i = 0; i < seen.size(); ++i) {
        if (i == 37 || i == 73) {
            continue;
        }
        EXPECT_GE(seen[i].load(), 1) << "item " << i << " lost";
    }
}

TEST_F(FaultFixture, RunGuardedFiresSchedWorkerFaultPoint)
{
    armFromText("sched.worker=throw,limit=2");
    auto scheduler = sched::makeScheduler(sched::SchedulerKind::VgBatch);
    std::vector<std::atomic<int>> seen(80);
    sched::FailureReport report = sched::runGuarded(
        *scheduler, 80, 8, 4, [&](size_t, size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
                seen[i].fetch_add(1);
            }
        });
    EXPECT_EQ(report.batches.size(), 2u);
    for (const sched::BatchFailure& failure : report.batches) {
        EXPECT_TRUE(failure.recovered); // limit exhausted before retry
        EXPECT_NE(failure.what.find("sched.worker"), std::string::npos);
    }
    EXPECT_TRUE(report.poisoned.empty());
    for (const auto& count : seen) {
        EXPECT_EQ(count.load(), 1);
    }
    EXPECT_GE(stats("sched.worker").fires, 2u);
}

// ------------------------------------------------------------ end-to-end

/** Small mapping world for the acceptance scenario. */
class FaultPipelineFixture : public FaultFixture
{
  protected:
    void
    SetUp() override
    {
        FaultFixture::SetUp();
        sim::PangenomeParams pparams;
        pparams.seed = 901;
        pparams.backboneLength = 8000;
        pparams.haplotypes = 4;
        pg_ = sim::generatePangenome(pparams);

        index::MinimizerParams mparams;
        mparams.k = 15;
        mparams.w = 8;
        minimizers_ = index::MinimizerIndex(pg_.graph, mparams);
        distance_ = index::DistanceIndex(pg_.graph);

        sim::ReadSimParams rparams;
        rparams.seed = 902;
        rparams.count = 80;
        rparams.readLength = 100;
        rparams.errorRate = 0.005;
        reads_ = sim::simulateReads(pg_, rparams);
    }

    giraffe::ParentOutputs
    runParent(size_t threads, size_t batch_size = 8)
    {
        giraffe::ParentParams params;
        params.numThreads = threads;
        params.batchSize = batch_size;
        giraffe::ParentEmulator parent(pg_.graph, pg_.gbwt, minimizers_,
                                       distance_, params);
        return parent.run(reads_);
    }

    sim::GeneratedPangenome pg_;
    index::MinimizerIndex minimizers_;
    index::DistanceIndex distance_;
    map::ReadSet reads_;
};

TEST_F(FaultPipelineFixture, MgzDecodeFaultIsStructuredAndTransient)
{
    std::vector<uint8_t> bytes = io::encodeMgz(pg_.graph, pg_.gbwt);

    armFromText("io.mgz.decode=corrupt,limit=1");
    try {
        io::decodeMgz(bytes, "armed.mgz");
        FAIL() << "expected a structured decode error";
    } catch (const util::StatusError& e) {
        EXPECT_NE(e.status().code, util::StatusCode::Ok);
        EXPECT_EQ(e.status().file, "armed.mgz");
    }
    // The fault's limit is exhausted: the retry decodes cleanly.
    io::Pangenome decoded = io::decodeMgz(bytes, "armed.mgz");
    EXPECT_EQ(decoded.graph.numNodes(), pg_.graph.numNodes());
    EXPECT_EQ(decoded.gbwt.numPaths(), pg_.gbwt.numPaths());
    EXPECT_GE(stats("io.mgz.decode").fires, 1u);
}

TEST_F(FaultPipelineFixture, ParentRunCompletesUnderWorkerFaults)
{
    giraffe::ParentOutputs baseline = runParent(4);
    ASSERT_TRUE(baseline.failures.ok());

    armFromText("sched.worker=throw,limit=3");
    giraffe::ParentOutputs faulted = runParent(4);

    // The run completed and the report names the injected failures.
    EXPECT_EQ(faulted.failures.batches.size(), 3u);
    for (const sched::BatchFailure& failure : faulted.failures.batches) {
        EXPECT_TRUE(failure.recovered);
    }
    EXPECT_TRUE(faulted.failures.poisoned.empty());
    EXPECT_EQ(stats("sched.worker").fires, 3u);

    // Every read still got its fault-free alignment.
    ASSERT_EQ(faulted.alignments.size(), baseline.alignments.size());
    for (size_t i = 0; i < baseline.alignments.size(); ++i) {
        EXPECT_EQ(faulted.alignments[i].readName,
                  baseline.alignments[i].readName);
        EXPECT_EQ(faulted.alignments[i].mapped,
                  baseline.alignments[i].mapped);
        EXPECT_EQ(faulted.alignments[i].score,
                  baseline.alignments[i].score);
    }
    EXPECT_EQ(io::formatGaf(faulted.alignments, reads_, pg_.graph),
              io::formatGaf(baseline.alignments, reads_, pg_.graph));
}

TEST_F(FaultPipelineFixture, PoisonedReadsAreQuarantinedNotFatal)
{
    giraffe::ParentOutputs baseline = runParent(4);

    // Persistent per-read poison: every mapping attempt after the first
    // 60 throws, so retries cannot clear it and bisection must isolate
    // the poisoned reads.
    armFromText("map.read=throw,after=60");
    giraffe::ParentOutputs faulted = runParent(4);

    EXPECT_FALSE(faulted.failures.ok());
    EXPECT_FALSE(faulted.failures.poisoned.empty());

    std::vector<bool> poisoned(reads_.size(), false);
    for (const sched::ItemFailure& item : faulted.failures.poisoned) {
        ASSERT_LT(item.index, reads_.size());
        poisoned[item.index] = true;
        EXPECT_NE(item.what.find("map.read"), std::string::npos);
    }
    for (size_t i = 0; i < reads_.size(); ++i) {
        EXPECT_EQ(faulted.alignments[i].readName, reads_.reads[i].name);
        if (poisoned[i]) {
            EXPECT_FALSE(faulted.alignments[i].mapped);
            EXPECT_TRUE(faulted.extensions[i].extensions.empty());
        } else {
            EXPECT_EQ(faulted.alignments[i].mapped,
                      baseline.alignments[i].mapped);
            EXPECT_EQ(faulted.alignments[i].score,
                      baseline.alignments[i].score);
        }
    }
    // The GAF renders quarantined reads as unmapped records instead of
    // dropping them.
    std::string gaf = io::formatGaf(faulted.alignments, reads_, pg_.graph);
    size_t lines = static_cast<size_t>(
        std::count(gaf.begin(), gaf.end(), '\n'));
    EXPECT_EQ(lines, reads_.size());
}

TEST_F(FaultPipelineFixture, DisarmedRunsAreByteIdentical)
{
    giraffe::ParentOutputs baseline = runParent(4);

    armFromText("sched.worker=throw,limit=2;map.read=throw,limit=5");
    giraffe::ParentOutputs faulted = runParent(4);
    disarmAll();
    giraffe::ParentOutputs clean = runParent(4);

    EXPECT_FALSE(faulted.failures.ok());
    EXPECT_TRUE(clean.failures.ok());
    EXPECT_EQ(io::encodeExtensions(clean.extensions),
              io::encodeExtensions(baseline.extensions));
    EXPECT_EQ(io::formatGaf(clean.alignments, reads_, pg_.graph),
              io::formatGaf(baseline.alignments, reads_, pg_.graph));
}

TEST_F(FaultPipelineFixture, ProxyQuarantineKeepsReadNames)
{
    io::SeedCapture capture;
    capture.entries.reserve(reads_.size());
    for (const map::Read& read : reads_.reads) {
        io::ReadWithSeeds entry;
        entry.read = read;
        entry.seeds = map::findSeeds(minimizers_, read, {});
        capture.entries.push_back(std::move(entry));
    }

    giraffe::ProxyParams params;
    params.numThreads = 2;
    params.batchSize = 8;
    giraffe::ProxyRunner proxy(pg_.graph, pg_.gbwt, distance_, params);

    armFromText("map.read=throw,after=50");
    giraffe::ProxyOutputs outputs = proxy.run(capture);

    EXPECT_FALSE(outputs.failures.ok());
    EXPECT_FALSE(outputs.failures.poisoned.empty());
    EXPECT_EQ(outputs.readsMapped + outputs.failures.poisoned.size(),
              reads_.size());
    for (const sched::ItemFailure& item : outputs.failures.poisoned) {
        EXPECT_EQ(outputs.extensions[item.index].readName,
                  reads_.reads[item.index].name);
        EXPECT_TRUE(outputs.extensions[item.index].extensions.empty());
    }
}

} // namespace
} // namespace mg::fault
