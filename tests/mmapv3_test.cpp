/**
 * MGZ v3 zero-copy substrate tests (ctest label `mmapv3`).
 *
 * The contract under test: a v3 container is a pure function of the
 * pangenome (byte-identical across build thread counts), mapping it back
 * produces a pipeline observably identical to the heap-parsed v2 path
 * (GAF byte-for-byte on the A-human and B-yeast analogs), structural
 * damage is rejected with a structured error naming the section — never
 * a crash — and concurrent consumers of one file share a single
 * page-cache copy.
 */
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "gbwt/gbwt.h"
#include "giraffe/parent.h"
#include "index/distance.h"
#include "index/minimizer.h"
#include "io/file.h"
#include "io/gaf.h"
#include "io/mgz.h"
#include "mem/arena.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "sim/input_sets.h"
#include "util/status.h"

namespace mg::io {
namespace {

std::string
tempPath(const std::string& name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

/** One input-set analog with prebuilt indexes and its v2/v3 containers. */
struct V3World
{
    sim::InputSet set;
    index::MinimizerIndex minimizers;
    index::DistanceIndex distance;
    std::string v2Path;
    std::string v3Path;
};

V3World
buildV3World(const std::string& input_set, double scale)
{
    V3World world;
    world.set = sim::buildInputSet(sim::inputSetSpec(input_set), scale);
    index::MinimizerParams mparams;
    mparams.k = 15;
    mparams.w = 8;
    world.minimizers =
        index::MinimizerIndex(world.set.pangenome.graph, mparams);
    world.distance = index::DistanceIndex(world.set.pangenome.graph);
    world.v2Path = tempPath("mmapv3_" + input_set + ".mgz");
    world.v3Path = tempPath("mmapv3_" + input_set + ".mgz3");
    saveMgz(world.v2Path, world.set.pangenome.graph,
            world.set.pangenome.gbwt);
    saveMgz3(world.v3Path, world.set.pangenome.graph,
             world.set.pangenome.gbwt, world.minimizers, world.distance);
    return world;
}

std::string
mapToGaf(const IndexedPangenome& pg, const map::ReadSet& reads)
{
    giraffe::ParentEmulator parent(pg.graph, pg.gbwt, pg.minimizers,
                                   pg.distance, giraffe::ParentParams());
    giraffe::ParentOutputs outputs = parent.run(reads);
    return formatGaf(outputs.alignments, reads, pg.graph);
}

// --------------------------------------------------------------------
// mem substrate units

TEST(MappedFileTest, OpensMapsAndReportsResidency)
{
    std::string path = tempPath("mmapv3_basic.bin");
    std::vector<uint8_t> bytes(3 * mem::MappedFile::pageSize() + 17);
    for (size_t i = 0; i < bytes.size(); ++i) {
        bytes[i] = static_cast<uint8_t>(i * 31u);
    }
    writeFileBytes(path, bytes);

    auto mapping = mem::MappedFile::open(path);
    ASSERT_NE(mapping, nullptr);
    EXPECT_EQ(mapping->size(), bytes.size());
    EXPECT_EQ(mapping->path(), path);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(mapping->data())
                  % mem::MappedFile::pageSize(),
              0u);
    EXPECT_EQ(std::memcmp(mapping->data(), bytes.data(), bytes.size()), 0);
    // Touching every page makes the whole mapping resident.
    EXPECT_GE(mapping->residentBytes(), bytes.size());
    mapping->advise(mem::Advice::Random);
    mapping->advise(0, bytes.size(), mem::Advice::WillNeed);
}

TEST(MappedFileTest, OpenMissingFileThrows)
{
    EXPECT_THROW(mem::MappedFile::open(tempPath("mmapv3_missing.bin")),
                 util::Error);
}

TEST(ArenaViewTest, OwnedAndMappedBackingsAgree)
{
    mem::ArenaView<uint64_t> owned;
    owned.owned() = { 3, 1, 4, 1, 5 };
    EXPECT_FALSE(owned.isMapped());
    EXPECT_EQ(owned.size(), 5u);
    EXPECT_EQ(owned[2], 4u);
    EXPECT_EQ(owned.back(), 5u);
    EXPECT_EQ(owned.bytes(), 5 * sizeof(uint64_t));

    std::string path = tempPath("mmapv3_arena.bin");
    std::vector<uint8_t> raw(5 * sizeof(uint64_t));
    std::memcpy(raw.data(), owned.data(), raw.size());
    writeFileBytes(path, raw);
    auto mapping = mem::MappedFile::open(path);
    mem::ArenaView<uint64_t> mapped;
    mapped.bind(mapping,
                reinterpret_cast<const uint64_t*>(mapping->data()), 5);
    EXPECT_TRUE(mapped.isMapped());
    EXPECT_TRUE(mapped == owned);
    EXPECT_TRUE(owned == mapped);
    // The view keeps the mapping alive after the local handle drops.
    mapping.reset();
    EXPECT_EQ(mapped[4], 5u);
}

// --------------------------------------------------------------------
// Golden round trip: mmap-loaded v3 is observably identical to the
// heap-parsed v2 path, down to the GAF bytes.

class GoldenRoundTrip : public ::testing::TestWithParam<const char*>
{};

TEST_P(GoldenRoundTrip, MappedGafMatchesParsedByteForByte)
{
    V3World world = buildV3World(GetParam(), 0.03);

    IndexedPangenome parsed = loadPangenome(world.v2Path);
    IndexedPangenome mapped = loadPangenome(world.v3Path);

    EXPECT_EQ(parsed.info.mode, LoadMode::Parsed);
    EXPECT_EQ(mapped.info.mode, LoadMode::Mapped);
    EXPECT_STREQ(loadModeName(parsed.info.mode), "parsed");
    EXPECT_STREQ(loadModeName(mapped.info.mode), "mmap");
    EXPECT_EQ(parsed.mapping, nullptr);
    ASSERT_NE(mapped.mapping, nullptr);
    EXPECT_GT(mapped.info.mappedBytes, 0u);
    EXPECT_EQ(parsed.info.mappedBytes, 0u);

    // Same logical structures on both sides.
    EXPECT_EQ(parsed.graph.numNodes(), mapped.graph.numNodes());
    EXPECT_EQ(parsed.graph.numPaths(), mapped.graph.numPaths());
    EXPECT_EQ(parsed.gbwt.numPaths(), mapped.gbwt.numPaths());
    EXPECT_EQ(parsed.minimizers.numKeys(), mapped.minimizers.numKeys());

    // The arena accounting is mode-independent: same section names, same
    // logical byte sizes, whether parsed onto the heap or bound in place.
    ASSERT_EQ(parsed.info.sections.size(), mapped.info.sections.size());
    for (size_t i = 0; i < parsed.info.sections.size(); ++i) {
        EXPECT_EQ(parsed.info.sections[i].first,
                  mapped.info.sections[i].first);
        EXPECT_EQ(parsed.info.sections[i].second,
                  mapped.info.sections[i].second)
            << "section " << parsed.info.sections[i].first;
    }

    std::string parsed_gaf = mapToGaf(parsed, world.set.reads);
    std::string mapped_gaf = mapToGaf(mapped, world.set.reads);
    EXPECT_FALSE(parsed_gaf.empty());
    EXPECT_EQ(parsed_gaf, mapped_gaf)
        << "GAF must be byte-identical across load modes";

    mapped.refreshResidency();
    EXPECT_GT(mapped.info.residentBytes, 0u);
    EXPECT_LE(mapped.info.residentBytes, mapped.info.mappedBytes);
}

INSTANTIATE_TEST_SUITE_P(InputSets, GoldenRoundTrip,
                         ::testing::Values("A-human", "B-yeast"));

// --------------------------------------------------------------------
// Determinism: the v3 encoder is a pure function of the pangenome; the
// parallel GBWT/minimizer builders must not let thread scheduling leak
// into the bytes.

TEST(V3Determinism, ContainerBytesIdenticalAcrossBuildThreads)
{
    sim::InputSet set =
        sim::buildInputSet(sim::inputSetSpec("B-yeast"), 0.02);
    const graph::VariationGraph& graph = set.pangenome.graph;
    index::DistanceIndex distance(graph);

    std::vector<uint8_t> baseline;
    for (unsigned threads : { 1u, 4u, 8u }) {
        gbwt::GbwtBuilder builder;
        for (const graph::PathEntry& path : graph.paths()) {
            builder.addPath(path.steps);
        }
        gbwt::Gbwt gbwt = std::move(builder).build(threads);

        index::MinimizerParams mparams;
        mparams.k = 15;
        mparams.w = 8;
        mparams.buildThreads = threads;
        index::MinimizerIndex minimizers(graph, mparams);

        std::vector<uint8_t> bytes =
            encodeMgz3(graph, gbwt, minimizers, distance);
        if (baseline.empty()) {
            baseline = std::move(bytes);
            ASSERT_FALSE(baseline.empty());
        } else {
            EXPECT_EQ(bytes, baseline)
                << "v3 bytes differ at " << threads << " build threads";
        }
    }
}

TEST(V3Determinism, EncodeIsIdempotent)
{
    V3World world = buildV3World("B-yeast", 0.02);
    std::vector<uint8_t> a =
        encodeMgz3(world.set.pangenome.graph, world.set.pangenome.gbwt,
                   world.minimizers, world.distance);
    std::vector<uint8_t> b =
        encodeMgz3(world.set.pangenome.graph, world.set.pangenome.gbwt,
                   world.minimizers, world.distance);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, readFileBytes(world.v3Path));
}

// --------------------------------------------------------------------
// Inspection + validation

class V3Container : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        world_ = new V3World(buildV3World("B-yeast", 0.02));
        bytes_ = new std::vector<uint8_t>(readFileBytes(world_->v3Path));
    }

    static void
    TearDownTestSuite()
    {
        delete world_;
        delete bytes_;
        world_ = nullptr;
        bytes_ = nullptr;
    }

    /** Write a mutated copy and return its path. */
    std::string
    writeMutant(const std::string& name, std::vector<uint8_t> bytes) const
    {
        std::string path = tempPath("mmapv3_mut_" + name + ".mgz3");
        writeFileBytes(path, bytes);
        return path;
    }

    static V3World* world_;
    static std::vector<uint8_t>* bytes_;
};

V3World* V3Container::world_ = nullptr;
std::vector<uint8_t>* V3Container::bytes_ = nullptr;

TEST_F(V3Container, InspectReportsEverySectionChecksummed)
{
    MgzInfo info = inspectMgz3(bytes_->data(), bytes_->size(), "test");
    EXPECT_EQ(info.version, MgzVersion::V3);
    EXPECT_EQ(info.fileBytes, bytes_->size());
    EXPECT_EQ(info.sections.size(), 15u);
    EXPECT_TRUE(info.allChecksumsOk());
    uint64_t page = 4096;
    for (const MgzSectionInfo& section : info.sections) {
        EXPECT_EQ(section.offset % page, 0u) << section.name;
        EXPECT_TRUE(section.crcOk) << section.name;
        EXPECT_LE(section.offset + section.size, info.fileBytes)
            << section.name;
    }
    // inspectMgz dispatches on the magic and agrees.
    MgzInfo via_v2_entry = inspectMgz(*bytes_, "test");
    EXPECT_EQ(via_v2_entry.version, MgzVersion::V3);
    EXPECT_EQ(via_v2_entry.sections.size(), info.sections.size());
}

TEST_F(V3Container, InspectFlagsDamagedSectionWithoutThrowing)
{
    MgzInfo clean = inspectMgz3(bytes_->data(), bytes_->size(), "test");
    // Flip one byte inside the *payload* of the largest section.
    const MgzSectionInfo* victim = nullptr;
    for (const MgzSectionInfo& section : clean.sections) {
        if (section.size > 0
            && (victim == nullptr || section.size > victim->size)) {
            victim = &section;
        }
    }
    ASSERT_NE(victim, nullptr);
    std::vector<uint8_t> damaged = *bytes_;
    damaged[victim->offset + victim->size / 2] ^= 0x40;
    MgzInfo info = inspectMgz3(damaged.data(), damaged.size(), "test");
    EXPECT_FALSE(info.allChecksumsOk());
    size_t bad = 0;
    for (const MgzSectionInfo& section : info.sections) {
        bad += section.crcOk ? 0 : 1;
    }
    EXPECT_EQ(bad, 1u);
}

TEST_F(V3Container, DecodeMgzRefusesV3WithPointerToLoader)
{
    try {
        decodeMgz(*bytes_, "test.mgz3");
        FAIL() << "decodeMgz must reject v3 containers";
    } catch (const util::StatusError& error) {
        EXPECT_NE(std::string(error.what()).find("loadPangenome"),
                  std::string::npos);
    }
}

TEST_F(V3Container, StructuralDamageRejected)
{
    auto expect_rejected = [&](const std::string& name,
                               std::vector<uint8_t> bytes) {
        std::string path = writeMutant(name, std::move(bytes));
        EXPECT_THROW(loadPangenome(path), util::Error) << name;
    };

    { // bad magic
        std::vector<uint8_t> b = *bytes_;
        b[0] = 'X';
        expect_rejected("magic", std::move(b));
    }
    { // wrong format version
        std::vector<uint8_t> b = *bytes_;
        b[4] = 9;
        expect_rejected("version", std::move(b));
    }
    { // wrong page size
        std::vector<uint8_t> b = *bytes_;
        b[8] = 0x00;
        b[9] = 0x08; // 2048
        expect_rejected("page", std::move(b));
    }
    { // wrong section count
        std::vector<uint8_t> b = *bytes_;
        b[12] = 3;
        expect_rejected("count", std::move(b));
    }
    { // corrupt section table (offset of section 1 bumped: overlap /
      // non-canonical placement *and* a table CRC mismatch)
        std::vector<uint8_t> b = *bytes_;
        b[32 + 40 + 16] ^= 0x01;
        expect_rejected("table", std::move(b));
    }
    { // truncated: header only
        std::vector<uint8_t> b(bytes_->begin(), bytes_->begin() + 64);
        expect_rejected("header_only", std::move(b));
    }
    { // truncated: drop the last page (file size mismatch)
        std::vector<uint8_t> b(bytes_->begin(), bytes_->end() - 4096);
        expect_rejected("truncated", std::move(b));
    }
    { // extended: trailing garbage breaks canonical placement
        std::vector<uint8_t> b = *bytes_;
        b.resize(b.size() + 4096, 0xAB);
        expect_rejected("extended", std::move(b));
    }
}

// 400 randomly damaged containers: every one either loads (damage landed
// in inter-section padding) or fails with a structured error.  Never a
// crash, never an unstructured exception.
TEST_F(V3Container, DamagedContainerFuzz400)
{
    std::mt19937_64 rng(0xDA4A6EDull);
    std::uniform_int_distribution<size_t> pick_offset(0,
                                                      bytes_->size() - 1);
    std::uniform_int_distribution<int> pick_bit(0, 7);
    std::string path = tempPath("mmapv3_fuzz.mgz3");

    LoadOptions options;
    options.verifySectionCrcs = true;

    size_t loaded = 0;
    size_t rejected = 0;
    for (int round = 0; round < 400; ++round) {
        std::vector<uint8_t> damaged = *bytes_;
        if (round % 4 == 3) {
            // Truncate to a random prefix (possibly unmappable: empty).
            size_t keep = pick_offset(rng);
            damaged.resize(keep);
        } else {
            // Flip 1-3 random bits.
            int flips = 1 + round % 3;
            for (int i = 0; i < flips; ++i) {
                damaged[pick_offset(rng)] ^=
                    static_cast<uint8_t>(1u << pick_bit(rng));
            }
        }
        writeFileBytes(path, damaged);
        try {
            IndexedPangenome pg = loadPangenome(path, options);
            // Loaded clean: damage fell into padding.  The pangenome
            // must still be fully usable.
            EXPECT_EQ(pg.graph.numNodes(),
                      world_->set.pangenome.graph.numNodes());
            ++loaded;
        } catch (const util::Error&) {
            ++rejected; // structured rejection is the expected outcome
        }
    }
    EXPECT_EQ(loaded + rejected, 400u);
    // With full-CRC verification on, nearly all mutations must be caught;
    // only padding hits can slip through.
    EXPECT_GT(rejected, 300u);
}

// --------------------------------------------------------------------
// Page-cache sharing: a second consumer of the same container finds the
// pages already resident — the kernel backs every mapping of the file
// with one physical copy.

TEST_F(V3Container, SecondProcessFindsPagesAlreadyResident)
{
    // Child process: map the container and touch every page, then exit.
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        auto mapping = mem::MappedFile::open(world_->v3Path);
        uint64_t sum = 0;
        for (size_t i = 0; i < mapping->size(); i += 512) {
            sum += mapping->data()[i];
        }
        _exit(sum == 0xFFFFFFFFu ? 1 : 0);
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);

    // Parent: a fresh mapping of the same file reports the pages resident
    // *before* touching a single byte — they are the child's pages,
    // shared through the page cache.
    auto mapping = mem::MappedFile::open(world_->v3Path);
    size_t resident = mapping->residentBytes();
    EXPECT_GE(resident, mapping->size() / 2)
        << "expected the child's page-cache copy to back this mapping";
}

// --------------------------------------------------------------------
// Serving from a mapped container: two daemon instances over one v3
// file — the mgd deployment shape — answer identically, report the mmap
// load mode, and share the container's pages.

TEST_F(V3Container, TwoDaemonsShareOneMappedContainer)
{
    IndexedPangenome pg1 = loadPangenome(world_->v3Path);
    IndexedPangenome pg2 = loadPangenome(world_->v3Path);
    ASSERT_EQ(pg1.info.mode, LoadMode::Mapped);
    ASSERT_EQ(pg2.info.mode, LoadMode::Mapped);

    auto make_params = [&](const IndexedPangenome& pg,
                           const std::string& name) {
        serve::DaemonParams params;
        params.socketPath =
            std::string(::testing::TempDir()) + "/" + name + ".sock";
        params.workers = 2;
        params.queueCapacity = 16;
        params.indexLoadMode = loadModeName(pg.info.mode);
        params.indexLoadSeconds = pg.info.loadSeconds;
        return params;
    };
    serve::Daemon daemon1(pg1.graph, pg1.gbwt, pg1.minimizers,
                          pg1.distance, make_params(pg1, "mmapv3_d1"));
    serve::Daemon daemon2(pg2.graph, pg2.gbwt, pg2.minimizers,
                          pg2.distance, make_params(pg2, "mmapv3_d2"));
    daemon1.start();
    daemon2.start();

    std::vector<map::Read> reads(world_->set.reads.reads.begin(),
                                 world_->set.reads.reads.begin()
                                     + std::min<size_t>(
                                         24,
                                         world_->set.reads.reads.size()));
    auto map_through = [&](const serve::Daemon& daemon) {
        serve::ClientParams cparams;
        cparams.socketPath = daemon.params().socketPath;
        serve::Client client(cparams);
        serve::Response response;
        util::Status status = client.mapReads(
            "default", reads, resilience::WorkBudget(), response);
        EXPECT_TRUE(status.ok()) << status.message;
        EXPECT_EQ(response.status, serve::ResponseStatus::Ok);
        return response.gaf;
    };
    std::string gaf1 = map_through(daemon1);
    std::string gaf2 = map_through(daemon2);
    EXPECT_FALSE(gaf1.empty());
    EXPECT_EQ(gaf1, gaf2)
        << "two daemons on one container must answer identically";

    daemon1.stop();
    daemon2.stop();
    EXPECT_EQ(daemon1.report().indexLoadMode, "mmap");
    EXPECT_EQ(daemon2.report().indexLoadMode, "mmap");
    EXPECT_EQ(daemon1.report().completed, 1u);
    EXPECT_EQ(daemon2.report().completed, 1u);

    // The RSS story: both instances are backed by the same page-cache
    // copy, so each mapping reports (shared) resident pages while the
    // per-process unique cost of the second instance is ~zero.  mincore
    // sees page-cache residency, which is exactly the shared copy.
    size_t resident1 = pg1.mapping->residentBytes();
    size_t resident2 = pg2.mapping->residentBytes();
    EXPECT_GT(resident1, 0u);
    EXPECT_GT(resident2, 0u);
    EXPECT_EQ(pg1.mapping->size(), pg2.mapping->size());
}

} // namespace
} // namespace mg::io
