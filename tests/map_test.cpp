/**
 * Tests for the mapping core: seeding, clustering, extension, and the
 * mapper facade.  The key end-to-end property: error-free reads sampled
 * from indexed haplotypes map back full-length with zero mismatches.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "map/mapper.h"
#include "sim/input_sets.h"
#include "sim/read_sim.h"
#include "util/dna.h"
#include "util/rng.h"

namespace mg::map {
namespace {

/** Shared fixture: a modest pangenome with all indexes built. */
class MappingFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sim::PangenomeParams params;
        params.seed = 71;
        params.backboneLength = 12000;
        params.haplotypes = 6;
        pg_ = sim::generatePangenome(params);

        index::MinimizerParams mparams;
        mparams.k = 15;
        mparams.w = 8;
        minimizers_ = index::MinimizerIndex(pg_.graph, mparams);
        distance_ = index::DistanceIndex(pg_.graph);

        mapper_ = std::make_unique<Mapper>(pg_.graph, pg_.gbwt, minimizers_,
                                           distance_, MapperParams());
        state_ = mapper_->makeState();
    }

    Read
    sampleRead(util::Rng& rng, size_t length, bool reverse)
    {
        const std::string& hap =
            pg_.sequences[rng.uniform(pg_.sequences.size())];
        size_t start = rng.uniform(hap.size() - length + 1);
        Read read;
        read.name = "r";
        read.sequence = hap.substr(start, length);
        if (reverse) {
            read.sequence = util::reverseComplement(read.sequence);
        }
        return read;
    }

    sim::GeneratedPangenome pg_;
    index::MinimizerIndex minimizers_;
    index::DistanceIndex distance_;
    std::unique_ptr<Mapper> mapper_;
    std::unique_ptr<MapperState> state_;
};

TEST_F(MappingFixture, SeedingFindsSeedsForSampledReads)
{
    util::Rng rng(72);
    for (int trial = 0; trial < 20; ++trial) {
        Read read = sampleRead(rng, 150, trial % 2 == 1);
        SeedVector seeds = findSeeds(minimizers_, read);
        EXPECT_FALSE(seeds.empty()) << "trial " << trial;
    }
}

TEST_F(MappingFixture, SeedsCarryValidPositions)
{
    util::Rng rng(73);
    Read read = sampleRead(rng, 150, false);
    for (const Seed& seed : findSeeds(minimizers_, read)) {
        ASSERT_TRUE(pg_.graph.hasNode(seed.position.handle.id()));
        ASSERT_LT(seed.position.offset,
                  pg_.graph.length(seed.position.handle.id()));
        ASSERT_LT(seed.readOffset, read.sequence.size());
        ASSERT_GT(seed.score, 0.0f);
    }
}

TEST_F(MappingFixture, ClusteringGroupsConsistentSeeds)
{
    util::Rng rng(74);
    Read read = sampleRead(rng, 150, false);
    SeedVector seeds = findSeeds(minimizers_, read);
    auto clusters =
        clusterSeeds(pg_.graph, distance_, seeds, ClusterParams());
    ASSERT_FALSE(clusters.empty());
    // Sorted by descending score.
    for (size_t i = 1; i < clusters.size(); ++i) {
        EXPECT_GE(clusters[i - 1].score, clusters[i].score);
    }
    // Every seed index is valid and appears in exactly one cluster.
    std::vector<int> seen(seeds.size(), 0);
    for (const Cluster& cluster : clusters) {
        for (uint32_t idx : cluster.seedIndices) {
            ASSERT_LT(idx, seeds.size());
            ++seen[idx];
        }
    }
    for (size_t i = 0; i < seeds.size(); ++i) {
        EXPECT_EQ(seen[i], 1) << "seed " << i;
    }
}

TEST_F(MappingFixture, ClusterOrientationsNeverMix)
{
    util::Rng rng(75);
    Read read = sampleRead(rng, 150, false);
    SeedVector seeds = findSeeds(minimizers_, read);
    for (const Cluster& cluster :
         clusterSeeds(pg_.graph, distance_, seeds, ClusterParams())) {
        for (uint32_t idx : cluster.seedIndices) {
            EXPECT_EQ(seeds[idx].onReverseRead, cluster.onReverseRead);
        }
    }
}

TEST_F(MappingFixture, ErrorFreeReadsMapFullLength)
{
    util::Rng rng(76);
    for (int trial = 0; trial < 30; ++trial) {
        Read read = sampleRead(rng, 150, trial % 2 == 1);
        MapResult result = mapper_->mapRead(read, *state_);
        ASSERT_FALSE(result.extensions.empty()) << "trial " << trial;
        const GaplessExtension& best = result.extensions.front();
        EXPECT_TRUE(best.fullLength) << "trial " << trial;
        EXPECT_TRUE(best.mismatchOffsets.empty()) << "trial " << trial;
        EXPECT_EQ(best.score,
                  150 * mapper_->params().extend.matchScore +
                      mapper_->params().extend.fullLengthBonus);
    }
}

TEST_F(MappingFixture, ExtensionPathSpellsTheRead)
{
    util::Rng rng(77);
    for (int trial = 0; trial < 20; ++trial) {
        Read read = sampleRead(rng, 120, false);
        MapResult result = mapper_->mapRead(read, *state_);
        ASSERT_FALSE(result.extensions.empty());
        const GaplessExtension& best = result.extensions.front();
        ASSERT_TRUE(best.fullLength);

        // Spell the graph bases under the alignment and compare.
        std::string oriented = best.onReverseRead
            ? util::reverseComplement(read.sequence)
            : read.sequence;
        std::string spelled;
        for (graph::Handle step : best.path) {
            spelled += pg_.graph.sequence(step);
        }
        std::string aligned =
            spelled.substr(best.startOffset, best.length());
        EXPECT_EQ(aligned, oriented) << "trial " << trial;
    }
}

TEST_F(MappingFixture, MismatchedBasesAreReported)
{
    util::Rng rng(78);
    for (int trial = 0; trial < 20; ++trial) {
        Read read = sampleRead(rng, 150, false);
        // Inject one substitution near the middle (away from every
        // minimizer boundary effect).
        size_t flip = 70 + rng.uniform(10);
        read.sequence[flip] =
            rng.differentBase(read.sequence[flip]);
        MapResult result = mapper_->mapRead(read, *state_);
        ASSERT_FALSE(result.extensions.empty()) << "trial " << trial;
        const GaplessExtension& best = result.extensions.front();
        if (best.fullLength) {
            ASSERT_EQ(best.mismatchOffsets.size(), 1u) << "trial " << trial;
            EXPECT_EQ(best.mismatchOffsets[0],
                      best.onReverseRead ? 149 - flip : flip);
            EXPECT_EQ(best.score,
                      149 * mapper_->params().extend.matchScore -
                          mapper_->params().extend.mismatchPenalty +
                          mapper_->params().extend.fullLengthBonus);
        }
    }
}

TEST_F(MappingFixture, ExtensionsAreDeterministic)
{
    util::Rng rng(79);
    Read read = sampleRead(rng, 150, false);
    MapResult a = mapper_->mapRead(read, *state_);
    auto fresh = mapper_->makeState();
    MapResult b = mapper_->mapRead(read, *fresh);
    ASSERT_EQ(a.extensions.size(), b.extensions.size());
    for (size_t i = 0; i < a.extensions.size(); ++i) {
        EXPECT_TRUE(a.extensions[i] == b.extensions[i]) << "ext " << i;
    }
}

TEST_F(MappingFixture, CacheCapacityDoesNotChangeResults)
{
    util::Rng rng(80);
    std::vector<Read> reads;
    for (int i = 0; i < 10; ++i) {
        reads.push_back(sampleRead(rng, 150, i % 2 == 0));
    }
    MapperParams tiny = mapper_->params();
    tiny.gbwtCacheCapacity = 0;
    Mapper uncached(pg_.graph, pg_.gbwt, minimizers_, distance_, tiny);
    auto uncached_state = uncached.makeState();
    for (const Read& read : reads) {
        MapResult a = mapper_->mapRead(read, *state_);
        MapResult b = uncached.mapRead(read, *uncached_state);
        ASSERT_EQ(a.extensions.size(), b.extensions.size());
        for (size_t i = 0; i < a.extensions.size(); ++i) {
            EXPECT_TRUE(a.extensions[i] == b.extensions[i]);
        }
    }
}

TEST_F(MappingFixture, MapFromSeedsMatchesMapRead)
{
    // The proxy path (precomputed seeds) and the parent path (inline
    // seeding) must agree exactly -- the paper's 100% functional match.
    util::Rng rng(81);
    for (int trial = 0; trial < 15; ++trial) {
        Read read = sampleRead(rng, 150, trial % 2 == 1);
        SeedVector seeds = findSeeds(minimizers_, read);
        MapResult inline_result = mapper_->mapRead(read, *state_);
        MapResult seeded_result =
            mapper_->mapFromSeeds(read, seeds, *state_);
        ASSERT_EQ(inline_result.extensions.size(),
                  seeded_result.extensions.size());
        for (size_t i = 0; i < inline_result.extensions.size(); ++i) {
            EXPECT_TRUE(inline_result.extensions[i] ==
                        seeded_result.extensions[i]);
        }
    }
}

TEST_F(MappingFixture, ThresholdCappingLimitsProcessedClusters)
{
    util::Rng rng(82);
    Read read = sampleRead(rng, 150, false);
    MapResult result = mapper_->mapRead(read, *state_);
    EXPECT_LE(result.clustersProcessed, mapper_->params().maxClusters);
    EXPECT_LE(result.clustersProcessed, result.clustersFormed);
    EXPECT_LE(result.extensions.size(), mapper_->params().maxExtensions);
}

TEST_F(MappingFixture, RandomReadsRarelyMapFullLength)
{
    // Reads not drawn from the pangenome should usually fail to extend
    // fully (they may seed by chance, but extensions stay partial).
    util::Rng rng(83);
    int full = 0;
    for (int trial = 0; trial < 20; ++trial) {
        Read read;
        read.name = "random";
        read.sequence = rng.randomDna(150);
        MapResult result = mapper_->mapRead(read, *state_);
        for (const GaplessExtension& ext : result.extensions) {
            if (ext.fullLength) {
                ++full;
                break;
            }
        }
    }
    EXPECT_LE(full, 1);
}

// ------------------------------------------------------- extender units

TEST_F(MappingFixture, WalkStopsAtMismatchBudget)
{
    Extender extender(pg_.graph, ExtendParams());
    gbwt::CachedGbwt cache(pg_.gbwt, 256);
    // Query with garbage after 30 good bases: walk must stop early.
    const auto& walk0 = pg_.walks[0];
    graph::Handle start = walk0[0];
    std::string good = pg_.graph.sequence(start).substr(0, 10);
    std::string query = good + std::string(40, 'A');
    // (The haplotype may continue with As; just bound the consumed length.)
    DirectionalWalk walk = extender.walk(start, 0, query, cache);
    EXPECT_GE(walk.consumed, good.size());
    EXPECT_LE(walk.mismatchOffsets.size(),
              static_cast<size_t>(ExtendParams().maxMismatches));
}

TEST_F(MappingFixture, WalkRespectsHaplotypeSupport)
{
    // Walking from a node with no haplotype visits returns empty.
    Extender extender(pg_.graph, ExtendParams());
    gbwt::CachedGbwt cache(pg_.gbwt, 256);
    // Find an unvisited orientation (reverse of a node only used forward
    // in the middle of walks still has reverse visits, so synthesize): use
    // an extension query on a node id but from an empty state via a fake
    // handle beyond the slot range is invalid; instead check: every
    // consumed walk is haplotype-supported by re-following the GBWT.
    const auto& walk0 = pg_.walks[0];
    std::string query = pg_.sequences[0].substr(0, 60);
    DirectionalWalk walk = extender.walk(walk0[0], 0, query, cache);
    ASSERT_FALSE(walk.path.empty());
    gbwt::SearchState state = cache.find(walk.path[0]);
    for (size_t i = 1; i < walk.path.size(); ++i) {
        state = cache.extend(state, walk.path[i]);
        ASSERT_FALSE(state.empty()) << "step " << i;
    }
}

/** Parameterized: mismatch budgets sweep. */
class MismatchBudgetProperty : public ::testing::TestWithParam<int>
{};

TEST_P(MismatchBudgetProperty, MismatchCountNeverExceedsBudget)
{
    sim::PangenomeParams params;
    params.seed = 84;
    params.backboneLength = 6000;
    params.haplotypes = 4;
    sim::GeneratedPangenome pg = sim::generatePangenome(params);
    index::MinimizerParams mparams;
    mparams.k = 15;
    mparams.w = 8;
    index::MinimizerIndex minimizers(pg.graph, mparams);
    index::DistanceIndex distance(pg.graph);
    MapperParams mp;
    mp.extend.maxMismatches = GetParam();
    Mapper mapper(pg.graph, pg.gbwt, minimizers, distance, mp);
    auto state = mapper.makeState();

    util::Rng rng(85);
    for (int trial = 0; trial < 10; ++trial) {
        const std::string& hap =
            pg.sequences[rng.uniform(pg.sequences.size())];
        size_t start = rng.uniform(hap.size() - 150);
        Read read;
        read.name = "r";
        read.sequence = hap.substr(start, 150);
        // Heavy error injection.
        for (int e = 0; e < 6; ++e) {
            size_t pos = rng.uniform(read.sequence.size());
            read.sequence[pos] = rng.differentBase(read.sequence[pos]);
        }
        MapResult result = mapper.mapRead(read, *state);
        for (const GaplessExtension& ext : result.extensions) {
            // Each direction may use the budget independently.
            EXPECT_LE(ext.mismatchOffsets.size(),
                      2 * static_cast<size_t>(GetParam()));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Budgets, MismatchBudgetProperty,
                         ::testing::Values(0, 1, 2, 4, 8));

} // namespace
} // namespace mg::map
