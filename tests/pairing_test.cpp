/** Tests for the paired-end pairing stage. */
#include <gtest/gtest.h>

#include "giraffe/pairing.h"
#include "giraffe/parent.h"
#include "sim/pangenome_gen.h"
#include "sim/read_sim.h"

namespace mg::giraffe {
namespace {

class PairingFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sim::PangenomeParams pparams;
        pparams.seed = 401;
        pparams.backboneLength = 15000;
        pparams.haplotypes = 6;
        pg_ = sim::generatePangenome(pparams);

        index::MinimizerParams mparams;
        mparams.k = 15;
        mparams.w = 8;
        minimizers_ = index::MinimizerIndex(pg_.graph, mparams);
        distance_ = index::DistanceIndex(pg_.graph);

        sim::ReadSimParams rparams;
        rparams.seed = 402;
        rparams.count = 200;
        rparams.paired = true;
        rparams.readLength = 100;
        rparams.fragmentLength = 350;
        rparams.errorRate = 0.002;
        reads_ = sim::simulateReads(pg_, rparams);
    }

    ParentOutputs
    mapAll()
    {
        ParentEmulator parent(pg_.graph, pg_.gbwt, minimizers_, distance_,
                              ParentParams());
        return parent.run(reads_);
    }

    sim::GeneratedPangenome pg_;
    index::MinimizerIndex minimizers_;
    index::DistanceIndex distance_;
    map::ReadSet reads_;
};

TEST_F(PairingFixture, ParentRunProducesPairVerdicts)
{
    ParentOutputs outputs = mapAll();
    EXPECT_EQ(outputs.pairs.size(), reads_.size() / 2);
}

TEST_F(PairingFixture, MostSimulatedPairsAreProper)
{
    ParentOutputs outputs = mapAll();
    size_t proper = 0;
    for (const PairResult& pair : outputs.pairs) {
        if (pair.properPair) {
            ++proper;
        }
    }
    // The reads were simulated as genuine fragments: the vast majority
    // must be recognized as proper pairs.
    EXPECT_GT(proper * 10, outputs.pairs.size() * 7);
}

TEST_F(PairingFixture, FragmentModelRecoversSimulatedLength)
{
    ParentOutputs outputs = mapAll();
    PairingParams params;
    FragmentModel model = estimateFragmentModel(reads_, outputs.alignments,
                                                distance_, params);
    ASSERT_GE(model.samples, params.minModelPairs);
    // The simulator drew fragments around 350 +- 25%.
    EXPECT_GT(model.mean, 250.0);
    EXPECT_LT(model.mean, 450.0);
    EXPECT_GT(model.stdev, 1.0);
}

TEST_F(PairingFixture, ProperPairsObserveFragmentsNearTheMean)
{
    ParentOutputs outputs = mapAll();
    for (const PairResult& pair : outputs.pairs) {
        if (pair.properPair) {
            EXPECT_GT(pair.observedFragment, 100);
            EXPECT_LT(pair.observedFragment, 700);
        }
    }
}

TEST_F(PairingFixture, ProperPairBonusRaisesMapq)
{
    // Map once without pairing (single-end view) and once with; proper
    // pairs must not lose MAPQ.
    ParentEmulator parent(pg_.graph, pg_.gbwt, minimizers_, distance_,
                          ParentParams());
    map::ReadSet unpaired = reads_;
    unpaired.pairedEnd = false;
    ParentOutputs without = parent.run(unpaired);
    ParentOutputs with = parent.run(reads_);
    ASSERT_EQ(without.alignments.size(), with.alignments.size());
    for (const PairResult& pair : with.pairs) {
        if (!pair.properPair) {
            continue;
        }
        EXPECT_GE(with.alignments[pair.firstRead].mappingQuality,
                  without.alignments[pair.firstRead].mappingQuality);
        EXPECT_GE(with.alignments[pair.secondRead].mappingQuality,
                  without.alignments[pair.secondRead].mappingQuality);
    }
}

TEST(PairingModelTest, FallsBackWithoutEnoughSamples)
{
    // Two reads, unmapped: the model must use the configured prior.
    map::ReadSet reads;
    map::Read r1;
    r1.name = "a/1";
    r1.sequence = "ACGT";
    r1.mate = 1;
    map::Read r2;
    r2.name = "a/2";
    r2.sequence = "ACGT";
    r2.mate = 0;
    reads.reads = {r1, r2};
    reads.pairedEnd = true;
    std::vector<Alignment> alignments(2); // both unmapped

    graph::VariationGraph g;
    g.addNode("ACGTACGT");
    index::DistanceIndex distance(g);
    PairingParams params;
    params.fallbackMean = 321.0;
    FragmentModel model =
        estimateFragmentModel(reads, alignments, distance, params);
    EXPECT_EQ(model.samples, 0u);
    EXPECT_DOUBLE_EQ(model.mean, 321.0);

    auto results = pairAlignments(reads, alignments, distance, params);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].bothMapped);
    EXPECT_FALSE(results[0].properPair);
}

TEST(PairingModelTest, SameStrandPairsAreNotProper)
{
    // Hand-built alignments on the same strand: never a proper pair.
    graph::VariationGraph g;
    graph::NodeId a = g.addNode(std::string(500, 'A'));
    (void)a;
    index::DistanceIndex distance(g);

    map::ReadSet reads;
    map::Read r1;
    r1.name = "p/1";
    r1.sequence = std::string(100, 'A');
    r1.mate = 1;
    map::Read r2 = r1;
    r2.name = "p/2";
    r2.mate = 0;
    reads.reads = {r1, r2};
    reads.pairedEnd = true;

    Alignment m1;
    m1.mapped = true;
    m1.onReverseRead = false;
    m1.path = {graph::Handle(1, false)};
    m1.startOffset = 0;
    m1.readEnd = 100;
    Alignment m2 = m1;
    m2.startOffset = 300; // same strand, downstream
    std::vector<Alignment> alignments = {m1, m2};

    PairingParams params;
    auto results = pairAlignments(reads, alignments, distance, params);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].bothMapped);
    EXPECT_FALSE(results[0].properPair);
}

} // namespace
} // namespace mg::giraffe
