/**
 * Tests for the parent emulator, the proxy runner, and — centrally — the
 * paper's functional validation (Section VI-a): the proxy's critical-
 * function output must match the parent's exactly, for every input set
 * workflow, across schedulers and thread counts.
 */
#include <gtest/gtest.h>

#include "giraffe/parent.h"
#include "giraffe/proxy.h"
#include "machine/tracer.h"
#include "sim/input_sets.h"

namespace mg::giraffe {
namespace {

/** Small end-to-end world shared by the tests. */
class PipelineFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sim::PangenomeParams pparams;
        pparams.seed = 201;
        pparams.backboneLength = 10000;
        pparams.haplotypes = 6;
        pg_ = sim::generatePangenome(pparams);

        index::MinimizerParams mparams;
        mparams.k = 15;
        mparams.w = 8;
        minimizers_ = index::MinimizerIndex(pg_.graph, mparams);
        distance_ = index::DistanceIndex(pg_.graph);

        sim::ReadSimParams rparams;
        rparams.seed = 202;
        rparams.count = 120;
        rparams.readLength = 120;
        rparams.errorRate = 0.005;
        reads_ = sim::simulateReads(pg_, rparams);
    }

    ParentEmulator
    makeParent(size_t threads = 1) const
    {
        ParentParams params;
        params.numThreads = threads;
        return ParentEmulator(pg_.graph, pg_.gbwt, minimizers_, distance_,
                              params);
    }

    sim::GeneratedPangenome pg_;
    index::MinimizerIndex minimizers_;
    index::DistanceIndex distance_;
    map::ReadSet reads_;
};

TEST_F(PipelineFixture, ParentMapsMostReads)
{
    ParentEmulator parent = makeParent();
    ParentOutputs outputs = parent.run(reads_);
    ASSERT_EQ(outputs.alignments.size(), reads_.size());
    size_t mapped = 0;
    for (const Alignment& alignment : outputs.alignments) {
        if (alignment.mapped) {
            ++mapped;
        }
    }
    // Low error rate: nearly everything maps.
    EXPECT_GT(mapped * 10, reads_.size() * 9);
}

TEST_F(PipelineFixture, AlignmentsCarrySaneFields)
{
    ParentEmulator parent = makeParent();
    ParentOutputs outputs = parent.run(reads_);
    for (size_t i = 0; i < outputs.alignments.size(); ++i) {
        const Alignment& alignment = outputs.alignments[i];
        EXPECT_EQ(alignment.readName, reads_.reads[i].name);
        if (!alignment.mapped) {
            continue;
        }
        EXPECT_FALSE(alignment.path.empty());
        EXPECT_LT(alignment.readBegin, alignment.readEnd);
        EXPECT_LE(alignment.readEnd, reads_.reads[i].sequence.size());
        EXPECT_LE(alignment.mappingQuality, 60);
    }
}

TEST_F(PipelineFixture, CacheStatsAccumulate)
{
    ParentEmulator parent = makeParent();
    ParentOutputs outputs = parent.run(reads_);
    EXPECT_GT(outputs.cacheStats.lookups, 0u);
    EXPECT_GT(outputs.cacheStats.hits, 0u);
    EXPECT_GT(outputs.cacheStats.decodes, 0u);
}

TEST_F(PipelineFixture, ProfilerSeesThePaperRegions)
{
    ParentEmulator parent = makeParent();
    perf::Profiler profiler;
    parent.run(reads_, &profiler);
    EXPECT_GT(profiler.regionSeconds(perf::regions::kFindSeeds), 0.0);
    EXPECT_GT(profiler.regionSeconds(perf::regions::kClusterSeeds), 0.0);
    EXPECT_GT(
        profiler.regionSeconds(perf::regions::kProcessUntilThresholdC),
        0.0);
    EXPECT_GT(profiler.regionSeconds(perf::regions::kScoreExtensions), 0.0);
    EXPECT_GT(profiler.regionSeconds(perf::regions::kAlign), 0.0);
    // Extension nests inside process_until_threshold_c.
    EXPECT_LE(profiler.regionSeconds(perf::regions::kExtend),
              profiler.regionSeconds(
                  perf::regions::kProcessUntilThresholdC) + 1e-6);
}

TEST_F(PipelineFixture, CaptureContainsEveryRead)
{
    ParentEmulator parent = makeParent();
    io::SeedCapture capture = parent.capturePreprocessing(reads_);
    ASSERT_EQ(capture.entries.size(), reads_.size());
    size_t with_seeds = 0;
    for (size_t i = 0; i < capture.entries.size(); ++i) {
        EXPECT_EQ(capture.entries[i].read.name, reads_.reads[i].name);
        if (!capture.entries[i].seeds.empty()) {
            ++with_seeds;
        }
    }
    EXPECT_GT(with_seeds * 10, reads_.size() * 9);
}

// ------------------------------------------------ functional validation

TEST_F(PipelineFixture, ProxyOutputExactlyMatchesParent)
{
    // The paper's Section VI-a: export parent extensions, run the proxy
    // from the captured seeds, compare.  Expect a 100% match.
    ParentEmulator parent = makeParent();
    ParentOutputs parent_out = parent.run(reads_);
    io::SeedCapture capture = parent.capturePreprocessing(reads_);

    ProxyParams pparams;
    ProxyRunner proxy(pg_.graph, pg_.gbwt, distance_, pparams);
    ProxyOutputs proxy_out = proxy.run(capture);

    io::ValidationReport report =
        io::validateExtensions(parent_out.extensions,
                               proxy_out.extensions);
    EXPECT_TRUE(report.perfectMatch())
        << "missing=" << report.missing
        << " unexpected=" << report.unexpected;
    EXPECT_EQ(report.extensionsExpected, report.extensionsFound);
    EXPECT_GT(report.extensionsExpected, 0u);
}

TEST_F(PipelineFixture, ValidationHoldsAcrossSchedulersAndThreads)
{
    ParentEmulator parent = makeParent();
    ParentOutputs parent_out = parent.run(reads_);
    io::SeedCapture capture = parent.capturePreprocessing(reads_);

    for (sched::SchedulerKind kind :
         {sched::SchedulerKind::OmpDynamic, sched::SchedulerKind::VgBatch,
          sched::SchedulerKind::WorkStealing}) {
        for (size_t threads : {1, 4}) {
            ProxyParams pparams;
            pparams.scheduler = kind;
            pparams.numThreads = threads;
            pparams.batchSize = 16;
            ProxyRunner proxy(pg_.graph, pg_.gbwt, distance_, pparams);
            ProxyOutputs proxy_out = proxy.run(capture);
            io::ValidationReport report = io::validateExtensions(
                parent_out.extensions, proxy_out.extensions);
            EXPECT_TRUE(report.perfectMatch())
                << sched::schedulerName(kind) << " threads=" << threads
                << " missing=" << report.missing
                << " unexpected=" << report.unexpected;
        }
    }
}

TEST_F(PipelineFixture, ValidationHoldsAcrossCacheCapacities)
{
    ParentEmulator parent = makeParent();
    ParentOutputs parent_out = parent.run(reads_);
    io::SeedCapture capture = parent.capturePreprocessing(reads_);
    for (size_t capacity : {size_t{0}, size_t{2}, size_t{4096}}) {
        ProxyParams pparams;
        pparams.mapper.gbwtCacheCapacity = capacity;
        ProxyRunner proxy(pg_.graph, pg_.gbwt, distance_, pparams);
        ProxyOutputs proxy_out = proxy.run(capture);
        io::ValidationReport report = io::validateExtensions(
            parent_out.extensions, proxy_out.extensions);
        EXPECT_TRUE(report.perfectMatch()) << "capacity=" << capacity;
    }
}

TEST_F(PipelineFixture, CaptureRoundTripThroughDiskPreservesValidation)
{
    // The proxy's real input path: capture -> .bin file -> load -> run.
    ParentEmulator parent = makeParent();
    ParentOutputs parent_out = parent.run(reads_);
    io::SeedCapture capture = parent.capturePreprocessing(reads_);
    std::string path = ::testing::TempDir() + "/mg_capture.bin";
    io::saveSeedCapture(path, capture);
    io::SeedCapture loaded = io::loadSeedCapture(path);

    ProxyRunner proxy(pg_.graph, pg_.gbwt, distance_, ProxyParams());
    ProxyOutputs proxy_out = proxy.run(loaded);
    io::ValidationReport report = io::validateExtensions(
        parent_out.extensions, proxy_out.extensions);
    EXPECT_TRUE(report.perfectMatch());
}

TEST_F(PipelineFixture, MultithreadedParentMatchesSingleThreaded)
{
    ParentEmulator single = makeParent(1);
    ParentEmulator multi = makeParent(4);
    ParentOutputs a = single.run(reads_);
    ParentOutputs b = multi.run(reads_);
    io::ValidationReport report =
        io::validateExtensions(a.extensions, b.extensions);
    EXPECT_TRUE(report.perfectMatch());
}

TEST_F(PipelineFixture, TracedRunProducesCounters)
{
    ParentEmulator parent = makeParent(1);
    machine::TraceCounter tracer(machine::paperMachines());
    parent.run(reads_, nullptr, &tracer);
    EXPECT_GT(tracer.work().instructions, 0u);
    EXPECT_GT(tracer.countersFor("local-intel").l1Accesses, 0u);
}

TEST_F(PipelineFixture, TracerRejectsMultithreadedRun)
{
    ParentEmulator parent = makeParent(2);
    machine::TraceCounter tracer(machine::paperMachines());
    EXPECT_THROW(parent.run(reads_, nullptr, &tracer), util::Error);
}

// --------------------------------------------------------- post-process

TEST(PostProcessTest, UnmappedWhenNoExtensions)
{
    Alignment alignment = postProcess("r", {}, PostProcessParams());
    EXPECT_FALSE(alignment.mapped);
    EXPECT_EQ(alignment.readName, "r");
}

TEST(PostProcessTest, UniquePlacementGetsMapqCap)
{
    map::GaplessExtension ext;
    ext.path = {graph::Handle(1, false)};
    ext.readEnd = 100;
    ext.score = 100;
    Alignment alignment = postProcess("r", {ext}, PostProcessParams());
    EXPECT_TRUE(alignment.mapped);
    EXPECT_EQ(alignment.mappingQuality, 60);
    EXPECT_EQ(alignment.score, 100);
}

TEST(PostProcessTest, CloseRunnerUpLowersMapq)
{
    map::GaplessExtension best;
    best.path = {graph::Handle(1, false)};
    best.readEnd = 100;
    best.score = 100;
    map::GaplessExtension rival = best;
    rival.path = {graph::Handle(2, false)};
    rival.score = 97;
    Alignment alignment =
        postProcess("r", {best, rival}, PostProcessParams());
    EXPECT_TRUE(alignment.mapped);
    EXPECT_EQ(alignment.mappingQuality, 3);
    EXPECT_EQ(alignment.path, best.path);
}

TEST(PostProcessTest, LowScoringExtensionsAreFiltered)
{
    map::GaplessExtension best;
    best.path = {graph::Handle(1, false)};
    best.readEnd = 100;
    best.score = 100;
    map::GaplessExtension weak = best;
    weak.path = {graph::Handle(2, false)};
    weak.score = 10; // below keepFraction * 100
    Alignment alignment =
        postProcess("r", {best, weak}, PostProcessParams());
    // The weak rival is dropped, so the placement counts as unique.
    EXPECT_EQ(alignment.mappingQuality, 60);
}

} // namespace
} // namespace mg::giraffe
