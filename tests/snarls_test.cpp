/** Tests for snarl (superbubble) decomposition. */
#include <gtest/gtest.h>

#include "graph/snarls.h"
#include "sim/pangenome_gen.h"

namespace mg::graph {
namespace {

/** 1 -> {2,3} -> 4: one SNP-style bubble. */
VariationGraph
diamond()
{
    VariationGraph g;
    NodeId a = g.addNode("ACGTACGT");
    NodeId b = g.addNode("T");
    NodeId c = g.addNode("G");
    NodeId d = g.addNode("CCAA");
    g.addEdge(Handle(a, false), Handle(b, false));
    g.addEdge(Handle(a, false), Handle(c, false));
    g.addEdge(Handle(b, false), Handle(d, false));
    g.addEdge(Handle(c, false), Handle(d, false));
    return g;
}

TEST(SnarlsTest, FindsTheDiamondBubble)
{
    auto snarls = decomposeSnarls(diamond());
    ASSERT_EQ(snarls.size(), 1u);
    const Snarl& snarl = snarls[0];
    EXPECT_EQ(snarl.source, 1u);
    EXPECT_EQ(snarl.sink, 4u);
    EXPECT_EQ(snarl.interior, (std::vector<NodeId>{2, 3}));
    EXPECT_EQ(snarl.walkCount, 2u);
    EXPECT_TRUE(snarl.isSimpleBubble());
    EXPECT_EQ(snarl.minWalkBases, 1u);
    EXPECT_EQ(snarl.maxWalkBases, 1u);
}

TEST(SnarlsTest, DeletionBubbleWithDirectEdge)
{
    // 1 -> 2 -> 3 and 1 -> 3: the deletion shape the generator emits.
    VariationGraph g;
    NodeId a = g.addNode("AAAA");
    NodeId b = g.addNode("CCCCC");
    NodeId c = g.addNode("GGGG");
    g.addEdge(Handle(a, false), Handle(b, false));
    g.addEdge(Handle(b, false), Handle(c, false));
    g.addEdge(Handle(a, false), Handle(c, false));
    auto snarls = decomposeSnarls(g);
    ASSERT_EQ(snarls.size(), 1u);
    EXPECT_EQ(snarls[0].source, a);
    EXPECT_EQ(snarls[0].sink, c);
    EXPECT_EQ(snarls[0].interior, (std::vector<NodeId>{b}));
    EXPECT_EQ(snarls[0].walkCount, 2u);
    EXPECT_EQ(snarls[0].minWalkBases, 0u); // the deletion walk
    EXPECT_EQ(snarls[0].maxWalkBases, 5u);
}

TEST(SnarlsTest, PlainChainHasNoSnarls)
{
    VariationGraph g;
    NodeId prev = 0;
    for (int i = 0; i < 5; ++i) {
        NodeId node = g.addNode("ACGT");
        if (prev) {
            g.addEdge(Handle(prev, false), Handle(node, false));
        }
        prev = node;
    }
    EXPECT_TRUE(decomposeSnarls(g).empty());
}

TEST(SnarlsTest, TipExitIsNotASnarl)
{
    // 1 -> {2, 3}; 2 is a dead end: no walk-closed subgraph.
    VariationGraph g;
    NodeId a = g.addNode("AAAA");
    g.addNode("CC");
    g.addNode("GG");
    g.addEdge(Handle(a, false), Handle(2, false));
    g.addEdge(Handle(a, false), Handle(3, false));
    EXPECT_TRUE(decomposeSnarls(g).empty());
}

TEST(SnarlsTest, ThreeWayBubbleCountsWalks)
{
    VariationGraph g;
    NodeId a = g.addNode("AAAA");
    NodeId b1 = g.addNode("C");
    NodeId b2 = g.addNode("GG");
    NodeId b3 = g.addNode("TTT");
    NodeId d = g.addNode("AACC");
    for (NodeId b : {b1, b2, b3}) {
        g.addEdge(Handle(a, false), Handle(b, false));
        g.addEdge(Handle(b, false), Handle(d, false));
    }
    auto snarls = decomposeSnarls(g);
    ASSERT_EQ(snarls.size(), 1u);
    EXPECT_EQ(snarls[0].walkCount, 3u);
    EXPECT_FALSE(snarls[0].isSimpleBubble());
    EXPECT_EQ(snarls[0].minWalkBases, 1u);
    EXPECT_EQ(snarls[0].maxWalkBases, 3u);
}

TEST(SnarlsTest, ChainOfBubblesFindsEachSite)
{
    // Two consecutive diamonds sharing the middle anchor.
    VariationGraph g;
    NodeId n1 = g.addNode("AAAA");
    NodeId b1 = g.addNode("C");
    NodeId b2 = g.addNode("G");
    NodeId n2 = g.addNode("TTTT");
    NodeId c1 = g.addNode("A");
    NodeId c2 = g.addNode("T");
    NodeId n3 = g.addNode("GGGG");
    g.addEdge(Handle(n1, false), Handle(b1, false));
    g.addEdge(Handle(n1, false), Handle(b2, false));
    g.addEdge(Handle(b1, false), Handle(n2, false));
    g.addEdge(Handle(b2, false), Handle(n2, false));
    g.addEdge(Handle(n2, false), Handle(c1, false));
    g.addEdge(Handle(n2, false), Handle(c2, false));
    g.addEdge(Handle(c1, false), Handle(n3, false));
    g.addEdge(Handle(c2, false), Handle(n3, false));
    auto snarls = decomposeSnarls(g);
    ASSERT_EQ(snarls.size(), 2u);
    EXPECT_EQ(snarls[0].source, n1);
    EXPECT_EQ(snarls[0].sink, n2);
    EXPECT_EQ(snarls[1].source, n2);
    EXPECT_EQ(snarls[1].sink, n3);
}

TEST(SnarlsTest, GeneratedPangenomeDecomposesIntoVariantSites)
{
    sim::PangenomeParams params;
    params.seed = 91;
    params.backboneLength = 8000;
    params.haplotypes = 4;
    params.repeatFraction = 0.0; // pure variant-site census
    sim::GeneratedPangenome pg = sim::generatePangenome(params);

    auto snarls = decomposeSnarls(pg.graph);
    SnarlStats stats = summarizeSnarls(snarls);
    // The generator emits roughly one variant site per anchor; the
    // decomposition must find a substantial census of small snarls.
    EXPECT_GT(stats.snarls, 50u);
    EXPECT_GT(stats.simpleBubbles * 2, stats.snarls);
    EXPECT_LE(stats.maxInterior, 4u);
    // Every haplotype walk stays inside the snarl chain: each snarl's
    // source precedes its sink in every walk that visits both.
    for (const Snarl& snarl : snarls) {
        EXPECT_EQ(snarl.minWalkBases <= snarl.maxWalkBases, true);
        EXPECT_GE(snarl.walkCount, 2u);
    }
}

TEST(SnarlsTest, CyclicForwardGraphThrows)
{
    VariationGraph g;
    NodeId a = g.addNode("AA");
    NodeId b = g.addNode("CC");
    g.addEdge(Handle(a, false), Handle(b, false));
    g.addEdge(Handle(b, false), Handle(a, false));
    EXPECT_THROW(decomposeSnarls(g), util::Error);
}

} // namespace
} // namespace mg::graph
