/** Tests for util::SmallVector (inline-storage vector of the extension
 *  kernel): spill to heap, move semantics, and iterator stability. */
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "graph/handle.h"
#include "util/small_vector.h"

namespace mg::util {
namespace {

using Vec = SmallVector<uint32_t, 4>;

TEST(SmallVectorTest, StartsInlineAndEmpty)
{
    Vec v;
    EXPECT_TRUE(v.empty());
    EXPECT_TRUE(v.inlined());
    EXPECT_EQ(v.size(), 0u);
    EXPECT_EQ(v.capacity(), 4u);
}

TEST(SmallVectorTest, PushBackWithinInlineCapacityStaysInline)
{
    Vec v;
    for (uint32_t i = 0; i < 4; ++i) {
        v.push_back(i * 10);
    }
    EXPECT_TRUE(v.inlined());
    EXPECT_EQ(v.size(), 4u);
    for (uint32_t i = 0; i < 4; ++i) {
        EXPECT_EQ(v[i], i * 10);
    }
}

TEST(SmallVectorTest, SpillsToHeapPastInlineCapacityKeepingContents)
{
    Vec v;
    for (uint32_t i = 0; i < 100; ++i) {
        v.push_back(i);
    }
    EXPECT_FALSE(v.inlined());
    EXPECT_EQ(v.size(), 100u);
    EXPECT_GE(v.capacity(), 100u);
    for (uint32_t i = 0; i < 100; ++i) {
        ASSERT_EQ(v[i], i);
    }
}

TEST(SmallVectorTest, ClearKeepsSpilledCapacity)
{
    Vec v;
    for (uint32_t i = 0; i < 64; ++i) {
        v.push_back(i);
    }
    size_t capacity = v.capacity();
    v.clear();
    EXPECT_EQ(v.size(), 0u);
    EXPECT_EQ(v.capacity(), capacity);
    EXPECT_FALSE(v.inlined()); // storage retained for reuse
}

TEST(SmallVectorTest, CopyIsIndependent)
{
    Vec a = {1, 2, 3};
    Vec b = a;
    b.push_back(4);
    b[0] = 99;
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(a[0], 1u);
    EXPECT_EQ(b.size(), 4u);
    EXPECT_EQ(b[0], 99u);
}

TEST(SmallVectorTest, MoveOfInlineVectorCopiesElements)
{
    Vec a = {7, 8};
    Vec b = std::move(a);
    EXPECT_EQ(b.size(), 2u);
    EXPECT_EQ(b[0], 7u);
    EXPECT_EQ(b[1], 8u);
    EXPECT_TRUE(b.inlined());
    EXPECT_EQ(a.size(), 0u); // moved-from is empty and reusable
    a.push_back(1);
    EXPECT_EQ(a[0], 1u);
}

TEST(SmallVectorTest, MoveOfSpilledVectorStealsBufferAndKeepsIterators)
{
    Vec a;
    for (uint32_t i = 0; i < 32; ++i) {
        a.push_back(i);
    }
    ASSERT_FALSE(a.inlined());
    const uint32_t* data_before = a.data();
    Vec b = std::move(a);
    // O(1) steal: the heap buffer (and thus every iterator into it)
    // survives the move unchanged.
    EXPECT_EQ(b.data(), data_before);
    EXPECT_EQ(b.size(), 32u);
    for (uint32_t i = 0; i < 32; ++i) {
        ASSERT_EQ(b[i], i);
    }
    EXPECT_TRUE(a.inlined()); // donor reset to its inline buffer
    EXPECT_EQ(a.size(), 0u);
}

TEST(SmallVectorTest, MoveAssignReleasesOldHeapBuffer)
{
    Vec a;
    for (uint32_t i = 0; i < 32; ++i) {
        a.push_back(i);
    }
    Vec b;
    for (uint32_t i = 0; i < 16; ++i) {
        b.push_back(100 + i);
    }
    b = std::move(a);
    EXPECT_EQ(b.size(), 32u);
    EXPECT_EQ(b[31], 31u);
}

TEST(SmallVectorTest, ReserveDoesNotChangeSizeOrContents)
{
    Vec v = {1, 2, 3};
    v.reserve(1000);
    EXPECT_EQ(v.size(), 3u);
    EXPECT_GE(v.capacity(), 1000u);
    EXPECT_EQ(v[2], 3u);
}

TEST(SmallVectorTest, ResizeGrowsZeroFilledAndShrinksInPlace)
{
    Vec v = {5};
    v.resize(8);
    EXPECT_EQ(v.size(), 8u);
    EXPECT_EQ(v[0], 5u);
    for (size_t i = 1; i < 8; ++i) {
        EXPECT_EQ(v[i], 0u);
    }
    v.resize(2);
    EXPECT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0], 5u);
}

TEST(SmallVectorTest, AssignAndInsertAtEnd)
{
    std::vector<uint32_t> src(20);
    std::iota(src.begin(), src.end(), 0);
    Vec v;
    v.assign(src.begin(), src.begin() + 10);
    EXPECT_EQ(v.size(), 10u);
    v.insert(v.end(), src.begin() + 10, src.end());
    EXPECT_EQ(v.size(), 20u);
    for (uint32_t i = 0; i < 20; ++i) {
        ASSERT_EQ(v[i], i);
    }
}

TEST(SmallVectorTest, ComparisonOperators)
{
    Vec a = {1, 2, 3};
    Vec b = {1, 2, 3};
    Vec c = {1, 2, 4};
    Vec d = {1, 2};
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_LT(a, c);
    EXPECT_LT(d, a);
    // Mixed comparison with std::vector (both directions).
    std::vector<uint32_t> sv = {1, 2, 3};
    EXPECT_TRUE(a == sv);
    EXPECT_TRUE(sv == a);
}

TEST(SmallVectorTest, WorksWithHandleElements)
{
    SmallVector<graph::Handle, 2> path;
    path.push_back(graph::Handle(1, false));
    path.push_back(graph::Handle(2, true));
    path.push_back(graph::Handle(3, false)); // spills
    EXPECT_FALSE(path.inlined());
    EXPECT_EQ(path[1], graph::Handle(2, true));
    EXPECT_EQ(path.back(), graph::Handle(3, false));
    path.pop_back();
    EXPECT_EQ(path.back(), graph::Handle(2, true));
}

TEST(SmallVectorTest, RangeForAndFrontBack)
{
    Vec v = {3, 1, 4, 1, 5, 9};
    uint32_t sum = 0;
    for (uint32_t x : v) {
        sum += x;
    }
    EXPECT_EQ(sum, 23u);
    EXPECT_EQ(v.front(), 3u);
    EXPECT_EQ(v.back(), 9u);
}

} // namespace
} // namespace mg::util
