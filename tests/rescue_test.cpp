/** Tests for mate rescue. */
#include <gtest/gtest.h>

#include "giraffe/parent.h"
#include "sim/pangenome_gen.h"
#include "sim/read_sim.h"

namespace mg::giraffe {
namespace {

/** A repeat-heavy pangenome where rescue has real work to do. */
class RescueFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Identical repeat copies longer than a read: reads contained in
        // a copy have several exactly tied placements, so global mapping
        // picks arbitrarily and pairing breaks — rescue's home turf.
        sim::PangenomeParams pparams;
        pparams.seed = 501;
        pparams.backboneLength = 30000;
        pparams.haplotypes = 6;
        pparams.meanAnchorLength = 150;
        pparams.repeatFraction = 0.35;
        pparams.repeatLibrarySize = 10;
        pparams.repeatDivergence = 0.0;
        pg_ = sim::generatePangenome(pparams);

        index::MinimizerParams mparams;
        mparams.k = 15;
        mparams.w = 8;
        minimizers_ = index::MinimizerIndex(pg_.graph, mparams);
        distance_ = index::DistanceIndex(pg_.graph);

        sim::ReadSimParams rparams;
        rparams.seed = 502;
        rparams.count = 400;
        rparams.paired = true;
        rparams.readLength = 90;
        rparams.fragmentLength = 400;
        reads_ = sim::simulateReads(pg_, rparams);
    }

    ParentOutputs
    run(bool rescue)
    {
        ParentParams params;
        params.mateRescue = rescue;
        ParentEmulator parent(pg_.graph, pg_.gbwt, minimizers_, distance_,
                              params);
        return parent.run(reads_);
    }

    static size_t
    properCount(const ParentOutputs& outputs)
    {
        size_t proper = 0;
        for (const PairResult& pair : outputs.pairs) {
            if (pair.properPair) {
                ++proper;
            }
        }
        return proper;
    }

    sim::GeneratedPangenome pg_;
    index::MinimizerIndex minimizers_;
    index::DistanceIndex distance_;
    map::ReadSet reads_;
};

TEST_F(RescueFixture, RescueNeverLosesProperPairs)
{
    size_t without = properCount(run(false));
    ParentOutputs with = run(true);
    EXPECT_GE(properCount(with), without);
}

TEST_F(RescueFixture, RescueRecoversRepeatConfusedPairs)
{
    ParentOutputs without = run(false);
    ParentOutputs with = run(true);
    // The repeat-rich graph must give rescue something to attempt, and it
    // must convert at least some attempts.
    EXPECT_GT(with.rescue.attempted, 0u);
    if (properCount(without) < without.pairs.size()) {
        EXPECT_GT(with.rescue.rescued, 0u);
        EXPECT_GT(properCount(with), properCount(without));
    }
    EXPECT_LE(with.rescue.rescued, with.rescue.attempted);
}

TEST_F(RescueFixture, RescuedPairsHavePlausibleFragments)
{
    ParentOutputs outputs = run(true);
    for (const PairResult& pair : outputs.pairs) {
        if (pair.properPair) {
            EXPECT_GT(pair.observedFragment, 0);
            EXPECT_LT(pair.observedFragment, 1500);
        }
    }
}

TEST_F(RescueFixture, RescueDisabledReportsNothing)
{
    ParentOutputs outputs = run(false);
    EXPECT_EQ(outputs.rescue.attempted, 0u);
    EXPECT_EQ(outputs.rescue.rescued, 0u);
}

TEST_F(RescueFixture, SingleEndRunsSkipRescue)
{
    map::ReadSet unpaired = reads_;
    unpaired.pairedEnd = false;
    ParentParams params;
    ParentEmulator parent(pg_.graph, pg_.gbwt, minimizers_, distance_,
                          params);
    ParentOutputs outputs = parent.run(unpaired);
    EXPECT_TRUE(outputs.pairs.empty());
    EXPECT_EQ(outputs.rescue.attempted, 0u);
}

} // namespace
} // namespace mg::giraffe
