/** Tests for the distance index, against a brute-force oracle. */
#include <gtest/gtest.h>

#include "index/distance.h"
#include "sim/pangenome_gen.h"
#include "util/rng.h"

namespace mg::index {
namespace {

using graph::Handle;
using graph::Position;

/** 1 -> {2,3} -> 4 diamond with known lengths. */
graph::VariationGraph
diamond()
{
    graph::VariationGraph g;
    g.addNode("ACGTACGT");  // 1, len 8
    g.addNode("TT");        // 2, len 2
    g.addNode("GGGGG");     // 3, len 5
    g.addNode("CCAA");      // 4, len 4
    g.addEdge(Handle(1, false), Handle(2, false));
    g.addEdge(Handle(1, false), Handle(3, false));
    g.addEdge(Handle(2, false), Handle(4, false));
    g.addEdge(Handle(3, false), Handle(4, false));
    return g;
}

TEST(DistanceIndexTest, ChainCoordinatesOnDiamond)
{
    graph::VariationGraph g = diamond();
    DistanceIndex index(g);
    EXPECT_EQ(index.chainCoordinate({Handle(1, false), 0}), 0);
    EXPECT_EQ(index.chainCoordinate({Handle(1, false), 7}), 7);
    EXPECT_EQ(index.chainCoordinate({Handle(2, false), 0}), 8);
    EXPECT_EQ(index.chainCoordinate({Handle(3, false), 0}), 8);
    // Node 4's min prefix goes through the short branch (node 2).
    EXPECT_EQ(index.chainCoordinate({Handle(4, false), 0}), 10);
}

TEST(DistanceIndexTest, MinDistanceWithinNode)
{
    graph::VariationGraph g = diamond();
    DistanceIndex index(g);
    Position a{Handle(1, false), 2};
    Position b{Handle(1, false), 6};
    EXPECT_EQ(index.minDistance(g, a, b, 100), 4);
    EXPECT_EQ(index.minDistance(g, a, a, 100), 0);
    // Backwards within a node is unreachable in a DAG.
    EXPECT_EQ(index.minDistance(g, b, a, 100), kUnreachable);
}

TEST(DistanceIndexTest, MinDistanceAcrossBubble)
{
    graph::VariationGraph g = diamond();
    DistanceIndex index(g);
    Position a{Handle(1, false), 7}; // last base of node 1
    Position b{Handle(4, false), 0}; // first base of node 4
    // Shortest walk goes through node 2 (2 bases): distance 3.
    EXPECT_EQ(index.minDistance(g, a, b, 100), 3);
    // Through node 3 would be 6; cap below 3 makes it unreachable.
    EXPECT_EQ(index.minDistance(g, a, b, 2), kUnreachable);
}

TEST(DistanceIndexTest, UnreachableAcrossBranches)
{
    graph::VariationGraph g = diamond();
    DistanceIndex index(g);
    Position a{Handle(2, false), 0};
    Position b{Handle(3, false), 0};
    EXPECT_EQ(index.minDistance(g, a, b, 1000), kUnreachable);
}

TEST(DistanceIndexTest, EstimateEqualsExactOnChainWalks)
{
    // On a pure chain (single haplotype, no bubbles reachable), the chain
    // coordinate difference equals the exact distance.
    graph::VariationGraph g;
    graph::NodeId prev = 0;
    for (int i = 0; i < 10; ++i) {
        graph::NodeId node = g.addNode("ACGTAC");
        if (prev != 0) {
            g.addEdge(Handle(prev, false), Handle(node, false));
        }
        prev = node;
    }
    DistanceIndex index(g);
    Position a{Handle(2, false), 3};
    Position b{Handle(7, false), 1};
    EXPECT_EQ(index.estimatedDistance(a, b),
              index.minDistance(g, a, b, 10000));
}

TEST(DistanceIndexTest, OracleAgreementOnGeneratedPangenome)
{
    sim::PangenomeParams params;
    params.seed = 61;
    params.backboneLength = 3000;
    params.haplotypes = 4;
    sim::GeneratedPangenome pg = sim::generatePangenome(params);
    DistanceIndex index(pg.graph);

    // Sample position pairs along one haplotype walk; the walk-index
    // distance from the walk is an upper bound on the min distance, the
    // estimate must be within one bubble detour of the exact value.
    util::Rng rng(62);
    const auto& walk = pg.walks[0];
    // Walk step start coordinates within the haplotype string.
    std::vector<size_t> starts(walk.size() + 1, 0);
    for (size_t i = 0; i < walk.size(); ++i) {
        starts[i + 1] = starts[i] + pg.graph.length(walk[i].id());
    }
    for (int trial = 0; trial < 100; ++trial) {
        size_t ai = rng.uniform(walk.size() - 1);
        size_t bi = ai + 1 + rng.uniform(std::min<size_t>(
            4, walk.size() - ai - 1));
        Position a{walk[ai],
                   static_cast<uint32_t>(
                       rng.uniform(pg.graph.length(walk[ai].id())))};
        Position b{walk[bi],
                   static_cast<uint32_t>(
                       rng.uniform(pg.graph.length(walk[bi].id())))};
        int64_t walk_distance =
            static_cast<int64_t>(starts[bi] + b.offset) -
            static_cast<int64_t>(starts[ai] + a.offset);
        int64_t exact = index.minDistance(pg.graph, a, b, 1 << 20);
        ASSERT_NE(exact, kUnreachable);
        EXPECT_LE(exact, walk_distance);
        // The chain-coordinate estimate stays within one SV detour.
        int64_t estimate = index.estimatedDistance(a, b);
        EXPECT_LE(std::abs(estimate - exact), 256) << "trial " << trial;
    }
}

TEST(DistanceIndexTest, CoordinatesAreMonotoneAlongWalks)
{
    sim::PangenomeParams params;
    params.seed = 63;
    params.backboneLength = 2000;
    params.haplotypes = 3;
    sim::GeneratedPangenome pg = sim::generatePangenome(params);
    DistanceIndex index(pg.graph);
    for (const auto& walk : pg.walks) {
        int64_t prev = -1;
        for (Handle step : walk) {
            // Non-strict: an insertion branch and the anchor after it share
            // the same min-prefix coordinate.
            int64_t coord = index.chainCoordinate({step, 0});
            EXPECT_GE(coord, prev);
            prev = coord;
        }
    }
}

} // namespace
} // namespace mg::index
