/**
 * mg::io fd primitives + mg::serve frame codec tests: EINTR and
 * partial-transfer resilience of readFull/writeFull under a storm of
 * real signals, Unix-socket plumbing, frame encode/decode roundtrips,
 * and the rejection paths for torn, truncated, oversized, and
 * checksum-damaged frames.
 */
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstring>
#include <thread>
#include <vector>

#include "io/fd.h"
#include "serve/frame.h"
#include "util/rng.h"

namespace mg::serve {
namespace {

// ---------------------------------------------------------- readFull/write

TEST(FdFullTest, PipeRoundtripAcrossManySmallKernelBuffers)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);

    // Well beyond the default pipe buffer, so writeFull must loop.
    std::vector<uint8_t> sent(1 << 20);
    util::Rng rng(7);
    for (uint8_t& byte : sent) {
        byte = static_cast<uint8_t>(rng.next());
    }
    std::thread writer([&] {
        EXPECT_EQ(io::writeFull(fds[1], sent.data(), sent.size()),
                  static_cast<ssize_t>(sent.size()));
        ::close(fds[1]);
    });
    std::vector<uint8_t> got(sent.size());
    EXPECT_EQ(io::readFull(fds[0], got.data(), got.size()),
              static_cast<ssize_t>(got.size()));
    writer.join();
    EXPECT_EQ(got, sent);
    ::close(fds[0]);
}

TEST(FdFullTest, ReadFullReportsEarlyEofWithPartialCount)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const char some[] = "abc";
    ASSERT_EQ(io::writeFull(fds[1], some, 3), 3);
    ::close(fds[1]);

    char buf[16];
    EXPECT_EQ(io::readFull(fds[0], buf, sizeof buf), 3);  // partial
    EXPECT_EQ(io::readFull(fds[0], buf, sizeof buf), 0);  // clean EOF
    ::close(fds[0]);
}

namespace eintr {
std::atomic<uint64_t> signals{0};
void onAlarm(int) { signals.fetch_add(1); }
} // namespace eintr

/**
 * The EINTR gauntlet: a SIGALRM interval timer fires every millisecond
 * (installed *without* SA_RESTART, so raw read/write would fail with
 * EINTR constantly) while a large transfer crosses a socketpair.  The
 * *Full primitives must complete the transfer bit-exact anyway.
 */
TEST(FdFullTest, SurvivesSignalStormWithoutSaRestart)
{
    int pair[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);

    struct sigaction action = {};
    action.sa_handler = eintr::onAlarm;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0; // deliberately no SA_RESTART
    struct sigaction old_action;
    ASSERT_EQ(::sigaction(SIGALRM, &action, &old_action), 0);

    struct itimerval timer = {};
    timer.it_interval.tv_usec = 1000;
    timer.it_value.tv_usec = 1000;
    struct itimerval old_timer;
    ASSERT_EQ(::setitimer(ITIMER_REAL, &timer, &old_timer), 0);

    std::vector<uint8_t> sent(4 << 20);
    util::Rng rng(11);
    for (uint8_t& byte : sent) {
        byte = static_cast<uint8_t>(rng.next());
    }
    std::vector<uint8_t> got(sent.size());
    std::thread reader([&] {
        EXPECT_EQ(io::readFull(pair[1], got.data(), got.size()),
                  static_cast<ssize_t>(got.size()));
    });
    EXPECT_EQ(io::writeFull(pair[0], sent.data(), sent.size()),
              static_cast<ssize_t>(sent.size()));
    reader.join();

    ::setitimer(ITIMER_REAL, &old_timer, nullptr);
    ::sigaction(SIGALRM, &old_action, nullptr);
    EXPECT_EQ(got, sent);
    // The storm must actually have been a storm for the test to mean
    // anything; at 1 kHz over a multi-MB transfer some signals landed.
    EXPECT_GT(eintr::signals.load(), 0u);
    ::close(pair[0]);
    ::close(pair[1]);
}

TEST(FdFullTest, WriteFullToClosedPeerFailsWithoutSignal)
{
    io::ignoreSigpipe();
    int pair[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
    ::close(pair[1]);
    std::vector<uint8_t> bytes(1 << 16, 0xAB);
    // EPIPE as a return value, not a process-killing SIGPIPE.
    EXPECT_EQ(io::writeFull(pair[0], bytes.data(), bytes.size()), -1);
    ::close(pair[0]);
}

TEST(UnixSocketTest, ListenConnectRoundtrip)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/net_test.sock";
    int listener = io::listenUnix(path);
    ASSERT_GE(listener, 0);

    int client = io::connectUnix(path);
    ASSERT_GE(client, 0);
    int server = ::accept(listener, nullptr, nullptr);
    ASSERT_GE(server, 0);

    const char ping[] = "ping";
    EXPECT_EQ(io::writeFull(client, ping, 4), 4);
    char buf[4];
    EXPECT_EQ(io::readFull(server, buf, 4), 4);
    EXPECT_EQ(std::memcmp(buf, ping, 4), 0);

    ::close(client);
    ::close(server);
    ::close(listener);
    ::unlink(path.c_str());
}

// ---------------------------------------------------------------- codec

Request
sampleRequest()
{
    Request request;
    request.id = 42;
    request.tenant = "gold";
    request.deadlineMicros = 250000;
    request.maxExtendSteps = 64;
    request.maxGbwtLookups = 128;
    map::Read read;
    read.name = "r1";
    read.sequence = "ACGTACGTACGT";
    request.reads.push_back(read);
    read.name = "r2";
    read.sequence = "TTTTGGGGCCCC";
    request.reads.push_back(read);
    return request;
}

TEST(FrameCodecTest, RequestRoundtrip)
{
    const Request request = sampleRequest();
    std::vector<uint8_t> payload = encodeRequest(request);

    MessageKind kind;
    ASSERT_TRUE(peekKind(payload, kind).ok());
    EXPECT_EQ(kind, MessageKind::Request);

    Request out;
    util::Status status = decodeRequest(payload, out);
    ASSERT_TRUE(status.ok()) << status.toString();
    EXPECT_EQ(out.id, 42u);
    EXPECT_EQ(out.tenant, "gold");
    EXPECT_EQ(out.deadlineMicros, 250000u);
    EXPECT_EQ(out.maxExtendSteps, 64u);
    EXPECT_EQ(out.maxGbwtLookups, 128u);
    ASSERT_EQ(out.reads.size(), 2u);
    EXPECT_EQ(out.reads[0].name, "r1");
    EXPECT_EQ(out.reads[1].sequence, "TTTTGGGGCCCC");
}

TEST(FrameCodecTest, ResponseRoundtripPerStatus)
{
    Response ok;
    ok.id = 7;
    ok.status = ResponseStatus::Ok;
    ok.gaf = "r1\t12\t0\t12\t+\tdg:Z:deadline\n";
    ok.mappedReads = 1;
    ok.degradedReads = 1;
    Response out;
    ASSERT_TRUE(decodeResponse(encodeResponse(ok), out).ok());
    EXPECT_EQ(out.id, 7u);
    EXPECT_EQ(out.gaf, ok.gaf);
    EXPECT_EQ(out.mappedReads, 1u);
    EXPECT_EQ(out.degradedReads, 1u);

    Response retry;
    retry.id = 8;
    retry.status = ResponseStatus::RetryAfter;
    retry.retryAfterMillis = 75;
    ASSERT_TRUE(decodeResponse(encodeResponse(retry), out).ok());
    EXPECT_EQ(out.status, ResponseStatus::RetryAfter);
    EXPECT_EQ(out.retryAfterMillis, 75u);

    Response error;
    error.id = 9;
    error.status = ResponseStatus::Error;
    error.message = "unknown tenant";
    ASSERT_TRUE(decodeResponse(encodeResponse(error), out).ok());
    EXPECT_EQ(out.status, ResponseStatus::Error);
    EXPECT_EQ(out.message, "unknown tenant");
}

TEST(FrameCodecTest, KindConfusionIsRejected)
{
    Request request;
    ASSERT_FALSE(decodeRequest(encodeResponse(Response{}), request).ok());
    Response response;
    ASSERT_FALSE(decodeResponse(encodeRequest(Request{}), response).ok());
}

TEST(FrameCodecTest, FrameStreamRoundtripAndDamageOffsets)
{
    std::vector<uint8_t> stream;
    for (uint64_t id = 1; id <= 3; ++id) {
        Request request = sampleRequest();
        request.id = id;
        std::vector<uint8_t> frame = frameBytes(encodeRequest(request));
        stream.insert(stream.end(), frame.begin(), frame.end());
    }
    std::vector<std::vector<uint8_t>> payloads =
        parseFrameStream(stream, "cap.mgreq");
    ASSERT_EQ(payloads.size(), 3u);
    Request out;
    ASSERT_TRUE(decodeRequest(payloads[2], out).ok());
    EXPECT_EQ(out.id, 3u);

    // Flip one payload byte: the CRC of that frame must catch it.
    std::vector<uint8_t> damaged = stream;
    damaged[damaged.size() / 2] ^= 0x40;
    EXPECT_THROW(parseFrameStream(damaged, "cap.mgreq"),
                 util::StatusError);

    // Truncate mid-frame: structured truncation error, not a crash.
    std::vector<uint8_t> torn(stream.begin(),
                              stream.begin() + stream.size() - 5);
    EXPECT_THROW(parseFrameStream(torn, "cap.mgreq"), util::StatusError);
}

/** Frame-level socket roundtrip through writeFrame/readFrame. */
TEST(FrameIoTest, SocketRoundtrip)
{
    int pair[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);

    const Request request = sampleRequest();
    ASSERT_TRUE(writeFrame(pair[0], encodeRequest(request)).ok());
    std::vector<uint8_t> payload;
    ASSERT_TRUE(readFrame(pair[1], payload).ok());
    Request out;
    ASSERT_TRUE(decodeRequest(payload, out).ok());
    EXPECT_EQ(out.id, request.id);

    // Clean close between frames is the clean-EOF marker, nothing else.
    ::close(pair[0]);
    util::Status status = readFrame(pair[1], payload);
    EXPECT_FALSE(status.ok());
    EXPECT_TRUE(isCleanEof(status));
    ::close(pair[1]);
}

TEST(FrameIoTest, DamagedMagicAndOversizedLengthAreCorrupt)
{
    int pair[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);

    // Wrong magic.
    const uint8_t junk[] = { 'X', 'F', 0x01, 0x00, 0x00, 0x00, 0x00 };
    ASSERT_EQ(io::writeFull(pair[0], junk, sizeof junk),
              static_cast<ssize_t>(sizeof junk));
    std::vector<uint8_t> payload;
    util::Status status = readFrame(pair[1], payload);
    EXPECT_FALSE(status.ok());
    EXPECT_FALSE(isCleanEof(status));

    // A hostile varint length over kMaxFramePayload must be rejected
    // before any allocation happens.
    const uint8_t huge[] = { 'M', 'F', 0xFF, 0xFF, 0xFF, 0xFF,
                             0xFF, 0xFF, 0xFF, 0xFF, 0x7F };
    ASSERT_EQ(io::writeFull(pair[0], huge, sizeof huge),
              static_cast<ssize_t>(sizeof huge));
    status = readFrame(pair[1], payload);
    EXPECT_FALSE(status.ok());

    ::close(pair[0]);
    ::close(pair[1]);
}

TEST(FrameIoTest, CrcMismatchOnTheWireIsDetected)
{
    int pair[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
    std::vector<uint8_t> frame = frameBytes(encodeRequest(sampleRequest()));
    frame[frame.size() - 6] ^= 0x01; // payload byte, CRC left stale
    ASSERT_EQ(io::writeFull(pair[0], frame.data(), frame.size()),
              static_cast<ssize_t>(frame.size()));
    std::vector<uint8_t> payload;
    util::Status status = readFrame(pair[1], payload);
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code, util::StatusCode::ChecksumMismatch);
    ::close(pair[0]);
    ::close(pair[1]);
}

// --------------------------------------------------------------- budget

TEST(RequestBudgetTest, CeilingClampsEveryField)
{
    Request request;
    request.deadlineMicros = 10'000'000; // wants 10 s
    request.maxExtendSteps = 0;          // wants unlimited
    request.maxGbwtLookups = 1000;

    resilience::WorkBudget ceiling;
    ceiling.wallSeconds = 0.5;
    ceiling.maxExtendSteps = 64;
    ceiling.maxGbwtLookups = 0; // operator imposes no lookup ceiling

    resilience::WorkBudget budget = requestBudget(request, ceiling);
    EXPECT_DOUBLE_EQ(budget.wallSeconds, 0.5);
    EXPECT_EQ(budget.maxExtendSteps, 64u); // unlimited -> the ceiling
    EXPECT_EQ(budget.maxGbwtLookups, 1000u);

    resilience::WorkBudget open = requestBudget(request, {});
    EXPECT_DOUBLE_EQ(open.wallSeconds, 10.0);
    EXPECT_EQ(open.maxExtendSteps, 0u);
    EXPECT_EQ(open.maxGbwtLookups, 1000u);
}

} // namespace
} // namespace mg::serve
