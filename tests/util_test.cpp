/** Unit and property tests for the util substrate. */
#include <gtest/gtest.h>

#include <fstream>
#include <limits>
#include <set>

#include "util/common.h"
#include "util/crc32.h"
#include "util/csv.h"
#include "util/cursor.h"
#include "util/dna.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/str.h"
#include "util/varint.h"

namespace mg::util {
namespace {

// ---------------------------------------------------------------- varint

TEST(VarintTest, EncodesSmallValuesInOneByte)
{
    for (uint64_t v : {0ull, 1ull, 64ull, 127ull}) {
        std::vector<uint8_t> bytes;
        putVarint(bytes, v);
        EXPECT_EQ(bytes.size(), 1u) << v;
    }
}

TEST(VarintTest, RoundTripsBoundaryValues)
{
    std::vector<uint64_t> values = {
        0, 1, 127, 128, 16383, 16384, (1ull << 32) - 1, 1ull << 32,
        std::numeric_limits<uint64_t>::max(),
    };
    ByteWriter writer;
    for (uint64_t v : values) {
        writer.putVarint(v);
    }
    ByteReader reader(writer.bytes());
    for (uint64_t v : values) {
        EXPECT_EQ(reader.getVarint(), v);
    }
    EXPECT_TRUE(reader.atEnd());
}

TEST(VarintTest, SignedRoundTrip)
{
    std::vector<int64_t> values = {
        0, -1, 1, -64, 63, -65, 1000000, -1000000,
        std::numeric_limits<int64_t>::min(),
        std::numeric_limits<int64_t>::max(),
    };
    ByteWriter writer;
    for (int64_t v : values) {
        writer.putSignedVarint(v);
    }
    ByteReader reader(writer.bytes());
    for (int64_t v : values) {
        EXPECT_EQ(reader.getSignedVarint(), v);
    }
}

TEST(VarintTest, RandomRoundTripSweep)
{
    Rng rng(99);
    ByteWriter writer;
    std::vector<uint64_t> values;
    for (int i = 0; i < 2000; ++i) {
        // Bias towards small magnitudes: shift by a random amount.
        uint64_t v = rng.next() >> (rng.uniform(64));
        values.push_back(v);
        writer.putVarint(v);
    }
    ByteReader reader(writer.bytes());
    for (uint64_t v : values) {
        EXPECT_EQ(reader.getVarint(), v);
    }
}

TEST(VarintTest, TruncatedInputThrows)
{
    std::vector<uint8_t> bytes = { 0x80, 0x80 }; // continuation, no end
    ByteReader reader(bytes);
    EXPECT_THROW(reader.getVarint(), Error);
}

TEST(ByteReaderTest, StringRoundTripAndBounds)
{
    ByteWriter writer;
    writer.putString("hello");
    writer.putString("");
    writer.putString(std::string(300, 'x'));
    ByteReader reader(writer.bytes());
    EXPECT_EQ(reader.getString(), "hello");
    EXPECT_EQ(reader.getString(), "");
    EXPECT_EQ(reader.getString(), std::string(300, 'x'));
    EXPECT_THROW(reader.getByte(), Error);
}

TEST(ByteReaderTest, SeekValidation)
{
    std::vector<uint8_t> bytes = {1, 2, 3};
    ByteReader reader(bytes);
    reader.seek(3);
    EXPECT_TRUE(reader.atEnd());
    EXPECT_THROW(reader.seek(4), Error);
}

// ------------------------------------------------------------------- dna

TEST(DnaTest, BaseCodesAreInvertible)
{
    for (char base : {'A', 'C', 'G', 'T'}) {
        EXPECT_EQ(codeBase(baseCode(base)), base);
    }
    EXPECT_EQ(baseCode('N'), 0xff);
    EXPECT_EQ(baseCode('a'), 0xff);
}

TEST(DnaTest, ComplementPairs)
{
    EXPECT_EQ(complementBase('A'), 'T');
    EXPECT_EQ(complementBase('T'), 'A');
    EXPECT_EQ(complementBase('C'), 'G');
    EXPECT_EQ(complementBase('G'), 'C');
}

TEST(DnaTest, ReverseComplementIsInvolution)
{
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
        std::string seq = rng.randomDna(1 + rng.uniform(200));
        EXPECT_EQ(reverseComplement(reverseComplement(seq)), seq);
    }
}

TEST(DnaTest, ReverseComplementKnownValue)
{
    EXPECT_EQ(reverseComplement("ACGT"), "ACGT"); // palindrome
    EXPECT_EQ(reverseComplement("AAAC"), "GTTT");
    EXPECT_EQ(reverseComplement("G"), "C");
}

TEST(DnaTest, PackUnpackKmerRoundTrip)
{
    Rng rng(6);
    for (int k : {1, 2, 15, 31, 32}) {
        std::string seq = rng.randomDna(k);
        EXPECT_EQ(unpackKmer(packKmer(seq, k), k), seq) << "k=" << k;
    }
}

TEST(DnaTest, PackedReverseComplementMatchesStringVersion)
{
    Rng rng(7);
    for (int i = 0; i < 40; ++i) {
        int k = 1 + static_cast<int>(rng.uniform(32));
        std::string seq = rng.randomDna(k);
        uint64_t packed = packKmer(seq, k);
        EXPECT_EQ(unpackKmer(reverseComplementKmer(packed, k), k),
                  reverseComplement(seq));
    }
}

TEST(DnaTest, Hash64IsDeterministicAndSpreads)
{
    std::set<uint64_t> seen;
    for (uint64_t i = 0; i < 1000; ++i) {
        uint64_t h = hash64(i);
        EXPECT_EQ(h, hash64(i));
        seen.insert(h);
    }
    EXPECT_EQ(seen.size(), 1000u); // no collisions on a tiny dense range
}

// ------------------------------------------------------------------- rng

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(RngTest, UniformRespectsBound)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.uniform(17), 17u);
    }
}

TEST(RngTest, UniformIntCoversRangeInclusive)
{
    Rng rng(12);
    std::set<int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.uniformInt(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformRealInHalfOpenUnitInterval)
{
    Rng rng(13);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        double v = rng.uniformReal();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, DifferentBaseNeverReturnsInput)
{
    Rng rng(14);
    for (int i = 0; i < 400; ++i) {
        char base = rng.randomBase();
        EXPECT_NE(rng.differentBase(base), base);
    }
}

TEST(RngTest, WeightedIndexHonorsZeroWeights)
{
    Rng rng(15);
    std::vector<double> weights = {0.0, 1.0, 0.0, 2.0};
    for (int i = 0; i < 500; ++i) {
        size_t idx = rng.weightedIndex(weights);
        EXPECT_TRUE(idx == 1 || idx == 3);
    }
}

TEST(RngTest, ShufflePreservesElements)
{
    Rng rng(16);
    std::vector<int> items = {1, 2, 3, 4, 5, 6, 7};
    std::vector<int> shuffled = items;
    rng.shuffle(shuffled);
    std::multiset<int> a(items.begin(), items.end());
    std::multiset<int> b(shuffled.begin(), shuffled.end());
    EXPECT_EQ(a, b);
}

// ----------------------------------------------------------------- flags

TEST(FlagsTest, ParsesTypedValuesAndDefaults)
{
    Flags flags("prog");
    flags.define("threads", "4", "thread count")
         .define("rate", "0.5", "a rate")
         .define("name", "x", "a name")
         .define("verbose", "false", "chatty");
    const char* argv[] = {"--threads", "8", "--rate=0.25", "--verbose"};
    ASSERT_TRUE(flags.parse(4, argv));
    EXPECT_EQ(flags.integer("threads"), 8);
    EXPECT_DOUBLE_EQ(flags.real("rate"), 0.25);
    EXPECT_EQ(flags.str("name"), "x");
    EXPECT_TRUE(flags.boolean("verbose"));
}

TEST(FlagsTest, UnknownFlagThrows)
{
    Flags flags("prog");
    flags.define("a", "1", "");
    const char* argv[] = {"--nope", "3"};
    EXPECT_THROW(flags.parse(2, argv), Error);
}

TEST(FlagsTest, PositionalArgumentsCollected)
{
    Flags flags("prog");
    flags.define("a", "1", "");
    const char* argv[] = {"input.bin", "--a", "2", "more.gbz"};
    ASSERT_TRUE(flags.parse(4, argv));
    ASSERT_EQ(flags.positional().size(), 2u);
    EXPECT_EQ(flags.positional()[0], "input.bin");
    EXPECT_EQ(flags.positional()[1], "more.gbz");
}

TEST(FlagsTest, BadIntegerValueThrows)
{
    Flags flags("prog");
    flags.define("n", "1", "");
    const char* argv[] = {"--n", "abc"};
    ASSERT_TRUE(flags.parse(2, argv));
    EXPECT_THROW(flags.integer("n"), Error);
}

// ------------------------------------------------------------------- str

TEST(StrTest, SplitPreservesEmptyFields)
{
    auto parts = split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(StrTest, JoinInvertsSplit)
{
    std::vector<std::string> parts = {"x", "y", "z"};
    EXPECT_EQ(join(parts, ","), "x,y,z");
    EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(StrTest, TrimRemovesSurroundingWhitespace)
{
    EXPECT_EQ(trim("  abc \t\n"), "abc");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(StrTest, PaddingWidths)
{
    EXPECT_EQ(padRight("ab", 5), "ab   ");
    EXPECT_EQ(padLeft("ab", 5), "   ab");
    EXPECT_EQ(padRight("abcdef", 3), "abcdef"); // never truncates
}

TEST(StrTest, FixedFormatting)
{
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fixed(-0.5, 1), "-0.5");
}

// ------------------------------------------------------------------- csv

TEST(CsvTest, WritesHeaderAndEscapesFields)
{
    std::string path = ::testing::TempDir() + "/mg_csv_test.csv";
    {
        CsvWriter csv(path, {"a", "b"});
        csv.row({"1", "plain"});
        csv.row({"with,comma", "with\"quote"});
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "1,plain");
    std::getline(in, line);
    EXPECT_EQ(line, "\"with,comma\",\"with\"\"quote\"");
}

// ---------------------------------------------------------------- common

TEST(CommonTest, RequireThrowsWithMessage)
{
    try {
        require(false, "bad thing ", 42);
        FAIL() << "expected throw";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("bad thing 42"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------- crc32

TEST(Crc32Test, EmptyInputIsZero)
{
    EXPECT_EQ(crc32(nullptr, 0), 0x00000000u);
    Crc32 crc;
    EXPECT_EQ(crc.value(), 0x00000000u);
}

TEST(Crc32Test, KnownVectors)
{
    // The classic CRC32 check value, plus a couple of cross-checked
    // references (python zlib.crc32).
    const char check[] = "123456789";
    EXPECT_EQ(crc32(check, 9), 0xCBF43926u);
    const char a[] = "a";
    EXPECT_EQ(crc32(a, 1), 0xE8B7BE43u);
    const char abc[] = "abc";
    EXPECT_EQ(crc32(abc, 3), 0x352441C2u);
}

TEST(Crc32Test, IncrementalMatchesOneShot)
{
    std::vector<uint8_t> bytes(300);
    for (size_t i = 0; i < bytes.size(); ++i) {
        bytes[i] = static_cast<uint8_t>(i * 7 + 3);
    }
    uint32_t whole = crc32(bytes.data(), bytes.size());
    // Feed in uneven chunks, including an empty one.
    Crc32 crc;
    crc.update(bytes.data(), 1);
    crc.update(bytes.data() + 1, 0);
    crc.update(bytes.data() + 1, 128);
    crc.update(bytes.data() + 129, bytes.size() - 129);
    EXPECT_EQ(crc.value(), whole);
    // reset() starts a fresh stream.
    crc.reset();
    crc.update(bytes.data(), bytes.size());
    EXPECT_EQ(crc.value(), whole);
}

TEST(Crc32Test, SingleBitFlipChangesChecksum)
{
    std::vector<uint8_t> bytes(64, 0xAB);
    uint32_t clean = crc32(bytes.data(), bytes.size());
    for (size_t i = 0; i < bytes.size(); ++i) {
        bytes[i] ^= 0x01;
        EXPECT_NE(crc32(bytes.data(), bytes.size()), clean) << i;
        bytes[i] ^= 0x01;
    }
}

// ---------------------------------------------------------------- status

TEST(StatusTest, ToStringCarriesProvenance)
{
    Status status;
    status.code = StatusCode::Truncated;
    status.message = "need 8 bytes";
    status.file = "graph.mgz";
    status.section = "nodes";
    status.offset = 517;
    std::string text = status.toString();
    EXPECT_NE(text.find("truncated"), std::string::npos);
    EXPECT_NE(text.find("need 8 bytes"), std::string::npos);
    EXPECT_NE(text.find("graph.mgz"), std::string::npos);
    EXPECT_NE(text.find("nodes"), std::string::npos);
    EXPECT_NE(text.find("517"), std::string::npos);
}

TEST(StatusTest, StatusErrorIsAnError)
{
    Status status;
    status.code = StatusCode::Corrupt;
    status.message = "bad magic";
    try {
        throwStatus(status);
        FAIL() << "expected throw";
    } catch (const Error& e) { // legacy catch sites keep working
        EXPECT_NE(std::string(e.what()).find("bad magic"),
                  std::string::npos);
        const auto* structured = dynamic_cast<const StatusError*>(&e);
        ASSERT_NE(structured, nullptr);
        EXPECT_EQ(structured->status().code, StatusCode::Corrupt);
    }
}

// ---------------------------------------------------------------- cursor

TEST(ByteCursorTest, BoundsViolationReportsFileSectionOffset)
{
    std::vector<uint8_t> bytes = {1, 2, 3, 4};
    ByteCursor cursor(bytes, "cap.bin");
    cursor.enterSection("reads");
    cursor.getByte();
    cursor.getByte();
    try {
        uint8_t sink[4];
        cursor.getBytes(sink, sizeof(sink));
        FAIL() << "expected throw";
    } catch (const StatusError& e) {
        EXPECT_EQ(e.status().code, StatusCode::Truncated);
        EXPECT_EQ(e.status().file, "cap.bin");
        EXPECT_EQ(e.status().section, "reads");
        EXPECT_EQ(e.status().offset, 2u);
    }
}

TEST(ByteCursorTest, CheckRaisesWithFormattedMessage)
{
    std::vector<uint8_t> bytes = {9};
    ByteCursor cursor(bytes, "f.bin");
    cursor.check(true, StatusCode::Corrupt, "never thrown");
    try {
        cursor.check(false, StatusCode::Corrupt, "count ", 12, " too big");
        FAIL() << "expected throw";
    } catch (const StatusError& e) {
        EXPECT_EQ(e.status().code, StatusCode::Corrupt);
        EXPECT_NE(e.status().message.find("count 12 too big"),
                  std::string::npos);
        EXPECT_EQ(e.status().file, "f.bin");
    }
}

} // namespace
} // namespace mg::util
