/**
 * Robustness fuzzing of the binary formats: random truncations and byte
 * corruptions of valid images must either decode to something valid or
 * throw mg::util::Error — never crash, hang, or silently misbehave.
 */
#include <gtest/gtest.h>

#include "io/checkpoint.h"
#include "io/extensions_io.h"
#include "io/mgz.h"
#include "io/reads_bin.h"
#include "sim/pangenome_gen.h"
#include "sim/read_sim.h"
#include "util/common.h"
#include "util/rng.h"
#include "util/status.h"

namespace mg::io {
namespace {

/** Valid MGZ image fixture. */
std::vector<uint8_t>
validMgz()
{
    sim::PangenomeParams params;
    params.seed = 701;
    params.backboneLength = 2000;
    params.haplotypes = 3;
    sim::GeneratedPangenome pg = sim::generatePangenome(params);
    return encodeMgz(pg.graph, pg.gbwt);
}

std::vector<uint8_t>
validCapture()
{
    sim::PangenomeParams params;
    params.seed = 702;
    params.backboneLength = 2000;
    params.haplotypes = 3;
    sim::GeneratedPangenome pg = sim::generatePangenome(params);
    sim::ReadSimParams rparams;
    rparams.seed = 703;
    rparams.count = 10;
    rparams.readLength = 60;
    map::ReadSet reads = sim::simulateReads(pg, rparams);
    SeedCapture capture;
    for (const map::Read& read : reads.reads) {
        ReadWithSeeds entry;
        entry.read = read;
        map::Seed seed;
        seed.position.handle = graph::Handle(1, false);
        seed.readOffset = 3;
        seed.score = 1.0f;
        entry.seeds.push_back(seed);
        capture.entries.push_back(entry);
    }
    return encodeSeedCapture(capture);
}

TEST(FuzzTest, TruncatedMgzNeverCrashes)
{
    std::vector<uint8_t> bytes = validMgz();
    util::Rng rng(710);
    for (int trial = 0; trial < 60; ++trial) {
        std::vector<uint8_t> cut(
            bytes.begin(),
            bytes.begin() + rng.uniform(bytes.size()));
        try {
            Pangenome pg = decodeMgz(cut);
            pg.graph.validate(); // if it decoded, it must be coherent
        } catch (const util::Error&) {
            // expected for most truncations
        }
    }
}

TEST(FuzzTest, CorruptedMgzNeverCrashes)
{
    std::vector<uint8_t> bytes = validMgz();
    util::Rng rng(711);
    for (int trial = 0; trial < 120; ++trial) {
        std::vector<uint8_t> bad = bytes;
        // Flip 1-4 random bytes.
        int flips = 1 + static_cast<int>(rng.uniform(4));
        for (int f = 0; f < flips; ++f) {
            bad[rng.uniform(bad.size())] ^=
                static_cast<uint8_t>(1 + rng.uniform(255));
        }
        try {
            Pangenome pg = decodeMgz(bad);
            // Decoded images may be semantically different but must pass
            // their own structural checks or have thrown above.
            pg.graph.validate();
        } catch (const util::Error&) {
        }
    }
}

TEST(FuzzTest, TruncatedCaptureNeverCrashes)
{
    std::vector<uint8_t> bytes = validCapture();
    util::Rng rng(712);
    for (int trial = 0; trial < 60; ++trial) {
        std::vector<uint8_t> cut(
            bytes.begin(),
            bytes.begin() + rng.uniform(bytes.size()));
        try {
            decodeSeedCapture(cut);
        } catch (const util::Error&) {
        }
    }
}

TEST(FuzzTest, CorruptedCaptureNeverCrashes)
{
    std::vector<uint8_t> bytes = validCapture();
    util::Rng rng(713);
    for (int trial = 0; trial < 120; ++trial) {
        std::vector<uint8_t> bad = bytes;
        bad[rng.uniform(bad.size())] ^=
            static_cast<uint8_t>(1 + rng.uniform(255));
        try {
            decodeSeedCapture(bad);
        } catch (const util::Error&) {
        }
    }
}

TEST(FuzzTest, ExtensionsFileFuzz)
{
    std::vector<ReadExtensions> all(1);
    all[0].readName = "r";
    map::GaplessExtension ext;
    ext.path = {graph::Handle(3, false), graph::Handle(4, false)};
    ext.readEnd = 50;
    ext.mismatchOffsets = {4, 9};
    ext.score = 40;
    all[0].extensions.push_back(ext);
    std::vector<uint8_t> bytes = encodeExtensions(all);

    util::Rng rng(714);
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<uint8_t> bad = bytes;
        if (rng.chance(0.5) && !bad.empty()) {
            bad.resize(rng.uniform(bad.size()));
        } else {
            bad[rng.uniform(bad.size())] ^= 0xff;
        }
        try {
            decodeExtensions(bad);
        } catch (const util::Error&) {
        }
    }
}

/**
 * The structured-error corruption fuzzer: 1000 seeded mutations of a
 * valid V2 container.  Flips avoid the 4-byte magic (which would turn
 * the file into a pseudo-V1 image and exercise the legacy path tested
 * separately below); every failed decode must surface as a StatusError
 * carrying the provenance we passed in — any other exception type
 * escapes the catch and fails the test.
 */
TEST(FuzzTest, MgzV2CorruptionFuzzerReportsStructuredErrors)
{
    std::vector<uint8_t> bytes = validMgz();
    ASSERT_GT(bytes.size(), 8u);
    size_t decoded_ok = 0;
    size_t structured = 0;
    for (uint64_t seed = 0; seed < 1000; ++seed) {
        util::Rng rng(80000 + seed);
        std::vector<uint8_t> bad = bytes;
        if (rng.chance(0.3)) {
            bad.resize(4 + rng.uniform(bad.size() - 4)); // keep the magic
        } else {
            int flips = 1 + static_cast<int>(rng.uniform(4));
            for (int f = 0; f < flips; ++f) {
                bad[4 + rng.uniform(bad.size() - 4)] ^=
                    static_cast<uint8_t>(1 + rng.uniform(255));
            }
        }
        bool decoded = false;
        try {
            Pangenome pg = decodeMgz(bad, "fuzz.mgz");
            decoded = true;
        } catch (const util::StatusError& e) {
            ++structured;
            EXPECT_NE(e.status().code, util::StatusCode::Ok);
            EXPECT_EQ(e.status().file, "fuzz.mgz");
        }
        decoded_ok += decoded ? 1 : 0;
    }
    // Per-section CRCs catch essentially every mutation.
    EXPECT_EQ(decoded_ok + structured, 1000u);
    EXPECT_GT(structured, 990u);
}

/** Same mutations against the legacy unversioned format: no checksums,
 *  so corrupt payloads reach the section decoders — they may throw any
 *  mg::util::Error but must never crash. */
TEST(FuzzTest, MgzV1CorruptionFuzzerNeverCrashes)
{
    sim::PangenomeParams params;
    params.seed = 704;
    params.backboneLength = 2000;
    params.haplotypes = 3;
    sim::GeneratedPangenome pg = sim::generatePangenome(params);
    std::vector<uint8_t> bytes =
        encodeMgz(pg.graph, pg.gbwt, MgzVersion::V1);

    for (uint64_t seed = 0; seed < 300; ++seed) {
        util::Rng rng(81000 + seed);
        std::vector<uint8_t> bad = bytes;
        if (rng.chance(0.3)) {
            bad.resize(rng.uniform(bad.size()));
        } else {
            bad[rng.uniform(bad.size())] ^=
                static_cast<uint8_t>(1 + rng.uniform(255));
        }
        try {
            Pangenome out = decodeMgz(bad);
            out.graph.validate();
        } catch (const util::Error&) {
            // any structured or legacy error is acceptable on V1
        }
    }
}

TEST(FuzzTest, RandomGarbageIsRejected)
{
    util::Rng rng(715);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<uint8_t> garbage(rng.uniform(200));
        for (auto& byte : garbage) {
            byte = static_cast<uint8_t>(rng.uniform(256));
        }
        EXPECT_THROW(decodeMgz(garbage), util::Error);
        EXPECT_THROW(decodeSeedCapture(garbage), util::Error);
        EXPECT_THROW(decodeExtensions(garbage), util::Error);
    }
}

// ------------------------------------------------------ checkpoint files

/** Valid checkpoint shard image. */
std::vector<uint8_t>
validShard()
{
    Shard shard;
    shard.begin = 128;
    shard.end = 160;
    for (uint64_t i = shard.begin; i < shard.end; ++i) {
        shard.gaf += "read" + std::to_string(i) +
                     "\t100\t0\t100\t+\tpath\t1\t0\t1\t1\t1\t60\n";
    }
    shard.stats.stepCapHits = 3;
    shard.stats.cacheLookups = 4096;
    return encodeShard(shard);
}

/** Valid checkpoint manifest image. */
std::vector<uint8_t>
validManifest()
{
    Manifest manifest;
    manifest.totalReads = 1000;
    for (uint64_t b = 0; b < 1000; b += 100) {
        manifest.shards.push_back(
            {b, b + 100, static_cast<uint32_t>(0xabc0 + b),
             shardFileName(b, b + 100)});
    }
    return encodeManifest(manifest);
}

/**
 * The checkpoint decoders are *total*: any truncation or bit flip of a
 * shard or manifest image yields a non-Ok Status — never an exception,
 * crash, or hang.  The trailing CRC makes essentially every mutation
 * detectable, and the structural validator catches what a colliding CRC
 * would let through.
 */
TEST(FuzzTest, CheckpointShardFuzzReturnsStatus)
{
    std::vector<uint8_t> bytes = validShard();
    Shard reference;
    ASSERT_TRUE(decodeShard(bytes, "s.mgs", reference).ok());

    size_t rejected = 0;
    for (uint64_t seed = 0; seed < 400; ++seed) {
        util::Rng rng(90000 + seed);
        std::vector<uint8_t> bad = bytes;
        if (rng.chance(0.4)) {
            bad.resize(rng.uniform(bad.size()));
        } else {
            int flips = 1 + static_cast<int>(rng.uniform(4));
            for (int f = 0; f < flips; ++f) {
                bad[rng.uniform(bad.size())] ^=
                    static_cast<uint8_t>(1 + rng.uniform(255));
            }
        }
        Shard out;
        util::Status status = decodeShard(bad, "s.mgs", out);
        rejected += status.ok() ? 0 : 1;
        if (status.ok()) {
            // A surviving decode must be the unmutated image (CRC
            // collision on a changed payload is the one thing the format
            // cannot promise against, but flips that land on dead bytes
            // do not exist — every byte is covered).
            EXPECT_EQ(out.begin, reference.begin);
            EXPECT_EQ(out.end, reference.end);
            EXPECT_EQ(out.gaf, reference.gaf);
        }
    }
    EXPECT_GT(rejected, 390u);
}

TEST(FuzzTest, CheckpointManifestFuzzReturnsStatus)
{
    std::vector<uint8_t> bytes = validManifest();
    Manifest reference;
    ASSERT_TRUE(decodeManifest(bytes, "m.mgc", reference).ok());

    size_t rejected = 0;
    for (uint64_t seed = 0; seed < 400; ++seed) {
        util::Rng rng(91000 + seed);
        std::vector<uint8_t> bad = bytes;
        if (rng.chance(0.4)) {
            bad.resize(rng.uniform(bad.size()));
        } else {
            int flips = 1 + static_cast<int>(rng.uniform(4));
            for (int f = 0; f < flips; ++f) {
                bad[rng.uniform(bad.size())] ^=
                    static_cast<uint8_t>(1 + rng.uniform(255));
            }
        }
        Manifest out;
        rejected += decodeManifest(bad, "m.mgc", out).ok() ? 0 : 1;
    }
    EXPECT_GT(rejected, 390u);
}

TEST(FuzzTest, CheckpointGarbageAndStructuralViolationsRejected)
{
    util::Rng rng(716);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<uint8_t> garbage(rng.uniform(200));
        for (auto& byte : garbage) {
            byte = static_cast<uint8_t>(rng.uniform(256));
        }
        Shard shard;
        EXPECT_FALSE(decodeShard(garbage, "g.mgs", shard).ok());
        Manifest manifest;
        EXPECT_FALSE(decodeManifest(garbage, "g.mgc", manifest).ok());
    }

    // Well-framed (valid CRC) images with illegal structure: duplicate
    // and overlapping shard ranges, inverted ranges, ranges past the end.
    auto rejects = [](Manifest bad) {
        Manifest out;
        return !decodeManifest(encodeManifest(bad), "m.mgc", out).ok();
    };
    Manifest base;
    base.totalReads = 100;

    Manifest duplicate = base;
    duplicate.shards.push_back({0, 50, 1, shardFileName(0, 50)});
    duplicate.shards.push_back({0, 50, 1, shardFileName(0, 50)});
    EXPECT_TRUE(rejects(duplicate));

    Manifest overlapping = base;
    overlapping.shards.push_back({0, 60, 1, shardFileName(0, 60)});
    overlapping.shards.push_back({40, 100, 2, shardFileName(40, 100)});
    EXPECT_TRUE(rejects(overlapping));

    Manifest inverted = base;
    inverted.shards.push_back({50, 20, 1, shardFileName(50, 20)});
    EXPECT_TRUE(rejects(inverted));

    Manifest past_end = base;
    past_end.shards.push_back({80, 120, 1, shardFileName(80, 120)});
    EXPECT_TRUE(rejects(past_end));

    Manifest nameless = base;
    nameless.shards.push_back({0, 50, 1, ""});
    EXPECT_TRUE(rejects(nameless));
}

} // namespace
} // namespace mg::io
