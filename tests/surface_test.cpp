/**
 * Cross-cutting API-surface tests: counter resets, flag usage text,
 * read-simulator fragment geometry, and distance-estimate signs — small
 * contracts no other suite pins down.
 */
#include <gtest/gtest.h>

#include "index/distance.h"
#include "machine/tracer.h"
#include "sim/pangenome_gen.h"
#include "sim/read_sim.h"
#include "util/dna.h"
#include "util/flags.h"
#include "util/timer.h"

namespace mg {
namespace {

TEST(TimerTest, MeasuresElapsedTime)
{
    util::WallTimer timer;
    volatile uint64_t x = 0;
    for (int i = 0; i < 2000000; ++i) {
        x += i;
    }
    double first = timer.seconds();
    EXPECT_GT(first, 0.0);
    EXPECT_GT(timer.nanos(), 0u);
    timer.reset();
    EXPECT_LT(timer.seconds(), first + 1.0);
}

TEST(FlagsUsageTest, ListsEveryFlagWithDefaults)
{
    util::Flags flags("tool");
    flags.define("alpha", "1", "first knob")
         .define("beta", "x", "second knob");
    std::string usage = flags.usage();
    EXPECT_NE(usage.find("tool"), std::string::npos);
    EXPECT_NE(usage.find("--alpha"), std::string::npos);
    EXPECT_NE(usage.find("default: 1"), std::string::npos);
    EXPECT_NE(usage.find("second knob"), std::string::npos);
}

TEST(TraceCounterTest, ResetCountersZeroesEverything)
{
    machine::TraceCounter tracer(machine::paperMachines());
    int buffer[32] = {};
    tracer.onAccess(buffer, sizeof(buffer), true);
    tracer.onWork(5);
    tracer.resetCounters();
    EXPECT_EQ(tracer.work().instructions, 0u);
    EXPECT_EQ(tracer.work().memoryAccesses, 0u);
    for (size_t m = 0; m < tracer.numMachines(); ++m) {
        EXPECT_EQ(tracer.counters(m).l1Accesses, 0u);
    }
    // Cache contents stay warm: the same line now hits.
    tracer.onAccess(buffer, 8, false);
    EXPECT_EQ(tracer.counters(0).l1Misses, 0u);
}

TEST(ReadSimGeometryTest, PairedMatesComeFromOneFragment)
{
    // With zero errors, mate 1 is a prefix of some haplotype window and
    // mate 2 is the reverse complement of the window's suffix, both
    // within the configured fragment length of each other.
    sim::PangenomeParams pparams;
    pparams.seed = 801;
    pparams.backboneLength = 8000;
    pparams.haplotypes = 3;
    sim::GeneratedPangenome pg = sim::generatePangenome(pparams);
    sim::ReadSimParams rparams;
    rparams.seed = 802;
    rparams.count = 60;
    rparams.paired = true;
    rparams.readLength = 80;
    rparams.fragmentLength = 300;
    rparams.errorRate = 0.0;
    map::ReadSet reads = sim::simulateReads(pg, rparams);

    for (size_t p = 0; p < reads.size(); p += 2) {
        const std::string& left = reads.reads[p].sequence;
        std::string right =
            util::reverseComplement(reads.reads[p + 1].sequence);
        bool found = false;
        for (const std::string& hap : pg.sequences) {
            size_t lpos = hap.find(left);
            while (lpos != std::string::npos && !found) {
                size_t rpos = hap.find(right, lpos);
                if (rpos != std::string::npos &&
                    rpos + right.size() <= lpos + 300 * 13 / 10 + 1) {
                    found = true;
                }
                lpos = hap.find(left, lpos + 1);
            }
            if (found) {
                break;
            }
        }
        EXPECT_TRUE(found) << "pair " << p / 2;
    }
}

TEST(DistanceSignTest, EstimateIsAntisymmetric)
{
    sim::PangenomeParams params;
    params.seed = 803;
    params.backboneLength = 3000;
    params.haplotypes = 2;
    sim::GeneratedPangenome pg = sim::generatePangenome(params);
    index::DistanceIndex index(pg.graph);
    const auto& walk = pg.walks[0];
    graph::Position a{walk[1], 0};
    graph::Position b{walk[std::min<size_t>(8, walk.size() - 1)], 0};
    EXPECT_EQ(index.estimatedDistance(a, b),
              -index.estimatedDistance(b, a));
    EXPECT_GE(index.estimatedDistance(a, b), 0);
}

} // namespace
} // namespace mg
