/** Tests for descriptive statistics, special functions, and ANOVA. */
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "stats/anova.h"
#include "stats/latency.h"
#include "stats/bootstrap.h"
#include "stats/descriptive.h"
#include "stats/special.h"
#include "util/common.h"
#include "util/rng.h"

namespace mg::stats {
namespace {

TEST(DescriptiveTest, MeanVarianceStdev)
{
    std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_DOUBLE_EQ(variance(xs), 4.0);
    EXPECT_DOUBLE_EQ(stdev(xs), 2.0);
}

TEST(DescriptiveTest, EmptyAndSingleton)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(variance({1.0}), 0.0);
}

TEST(DescriptiveTest, GeomeanKnownValues)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    // The paper's headline: per-input speedups combine geometrically
    // (1.36, 1.07, 1.10, 1.11 give the reported ~1.15 overall).
    EXPECT_NEAR(geomean({1.36, 1.07, 1.10, 1.11}), 1.1545, 1e-3);
}

TEST(DescriptiveTest, MinMax)
{
    std::vector<double> xs = {3.0, -1.0, 7.5};
    EXPECT_DOUBLE_EQ(minOf(xs), -1.0);
    EXPECT_DOUBLE_EQ(maxOf(xs), 7.5);
}

TEST(DescriptiveTest, CosineSimilarityBounds)
{
    std::vector<double> a = {1, 2, 3};
    EXPECT_NEAR(cosineSimilarity(a, a), 1.0, 1e-12);
    std::vector<double> orthogonal_a = {1, 0};
    std::vector<double> orthogonal_b = {0, 1};
    EXPECT_NEAR(cosineSimilarity(orthogonal_a, orthogonal_b), 0.0, 1e-12);
    std::vector<double> scaled = {2, 4, 6};
    EXPECT_NEAR(cosineSimilarity(a, scaled), 1.0, 1e-12);
}

TEST(DescriptiveTest, PearsonKnownValues)
{
    std::vector<double> x = {1, 2, 3, 4};
    std::vector<double> y = {2, 4, 6, 8};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    std::vector<double> z = {8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

// --------------------------------------------------------------- special

TEST(SpecialTest, IncompleteBetaBoundaries)
{
    EXPECT_DOUBLE_EQ(regularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(regularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(SpecialTest, IncompleteBetaKnownValues)
{
    // I_x(1, 1) = x (uniform CDF).
    for (double x : {0.1, 0.25, 0.5, 0.9}) {
        EXPECT_NEAR(regularizedIncompleteBeta(1.0, 1.0, x), x, 1e-10);
    }
    // I_x(1, b) = 1 - (1-x)^b.
    EXPECT_NEAR(regularizedIncompleteBeta(1.0, 3.0, 0.5),
                1.0 - std::pow(0.5, 3), 1e-10);
    // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
    EXPECT_NEAR(regularizedIncompleteBeta(2.5, 4.5, 0.3),
                1.0 - regularizedIncompleteBeta(4.5, 2.5, 0.7), 1e-10);
}

TEST(SpecialTest, FDistributionReferenceValues)
{
    // Reference quantiles: P(F_{d1,d2} <= f).  F_{1,10}: the 95th
    // percentile is 4.9646; F_{3,20}: 3.0984 (standard tables).
    EXPECT_NEAR(fDistributionCdf(4.9646, 1, 10), 0.95, 1e-3);
    EXPECT_NEAR(fDistributionCdf(3.0984, 3, 20), 0.95, 1e-3);
    EXPECT_NEAR(fDistributionSf(3.0984, 3, 20), 0.05, 1e-3);
    EXPECT_DOUBLE_EQ(fDistributionCdf(0.0, 3, 20), 0.0);
}

TEST(SpecialTest, TDistributionSymmetry)
{
    EXPECT_NEAR(tDistributionCdf(0.0, 7), 0.5, 1e-12);
    // t_{0.975, 10} = 2.228.
    EXPECT_NEAR(tDistributionCdf(2.228, 10), 0.975, 1e-3);
    EXPECT_NEAR(tDistributionCdf(-2.228, 10), 0.025, 1e-3);
}

// ------------------------------------------------------- latency histogram

TEST(LatencyHistogramTest, MergeAcrossThreadsMatchesSerialRecording)
{
    // Each worker records into a private histogram (the per-thread pattern
    // used by the mapper and the obs registry); merging the shards must be
    // indistinguishable from one histogram that saw every sample.
    constexpr int kThreads = 4;
    constexpr uint64_t kPerThread = 5000;
    std::vector<LatencyHistogram> shards(kThreads);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&shards, t] {
            for (uint64_t i = 0; i < kPerThread; ++i) {
                shards[static_cast<size_t>(t)].record(
                    (i % 1000) * 37 + static_cast<uint64_t>(t));
            }
        });
    }
    for (std::thread& w : workers) {
        w.join();
    }

    LatencyHistogram merged;
    LatencyHistogram serial;
    for (int t = 0; t < kThreads; ++t) {
        merged.merge(shards[static_cast<size_t>(t)]);
        for (uint64_t i = 0; i < kPerThread; ++i) {
            serial.record((i % 1000) * 37 + static_cast<uint64_t>(t));
        }
    }

    EXPECT_EQ(merged.count(), kThreads * kPerThread);
    EXPECT_EQ(merged.count(), serial.count());
    EXPECT_EQ(merged.sumNanos(), serial.sumNanos());
    EXPECT_EQ(merged.rawBuckets(), serial.rawBuckets());
    EXPECT_DOUBLE_EQ(merged.p50(), serial.p50());
    EXPECT_DOUBLE_EQ(merged.p999(), serial.p999());
}

TEST(LatencyHistogramTest, FromRawRoundTrips)
{
    LatencyHistogram h;
    for (uint64_t nanos : { 1u, 100u, 100u, 1u << 20 }) {
        h.record(nanos);
    }
    LatencyHistogram copy =
        LatencyHistogram::fromRaw(h.rawBuckets(), h.count(), h.sumNanos());
    EXPECT_EQ(copy.count(), h.count());
    EXPECT_EQ(copy.sumNanos(), h.sumNanos());
    EXPECT_EQ(copy.rawBuckets(), h.rawBuckets());
}

// ----------------------------------------------------------------- anova

TEST(AnovaTest, DetectsStrongFactor)
{
    // Factor A shifts the response by 10; factor B does nothing.
    util::Rng rng(31);
    Factor a{"A", {}, 2};
    Factor b{"B", {}, 2};
    std::vector<double> response;
    for (int i = 0; i < 40; ++i) {
        size_t la = i % 2;
        size_t lb = (i / 2) % 2;
        a.levels.push_back(la);
        b.levels.push_back(lb);
        response.push_back(static_cast<double>(la) * 10.0 +
                           rng.uniformReal());
    }
    AnovaResult result = anova({a, b}, response);
    ASSERT_EQ(result.effects.size(), 2u);
    EXPECT_LT(result.effects[0].pValue, 1e-6);
    EXPECT_GT(result.effects[1].pValue, 0.1);
}

TEST(AnovaTest, NullFactorsHaveUniformishPValues)
{
    // With pure noise, p-values should not be systematically tiny.
    util::Rng rng(32);
    int significant = 0;
    for (int rep = 0; rep < 50; ++rep) {
        Factor f{"F", {}, 4};
        std::vector<double> response;
        for (int i = 0; i < 32; ++i) {
            f.levels.push_back(i % 4);
            response.push_back(rng.uniformReal());
        }
        AnovaResult result = anova({f}, response);
        if (result.effects[0].pValue < 0.05) {
            ++significant;
        }
    }
    EXPECT_LE(significant, 8); // ~2.5 expected; generous bound
}

TEST(AnovaTest, SumsOfSquaresDecompose)
{
    util::Rng rng(33);
    Factor a{"A", {}, 3};
    std::vector<double> response;
    for (int i = 0; i < 30; ++i) {
        a.levels.push_back(i % 3);
        response.push_back(static_cast<double>(i % 3) + rng.uniformReal());
    }
    AnovaResult result = anova({a}, response);
    EXPECT_NEAR(result.effects[0].sumSquares + result.residualSumSquares,
                result.totalSumSquares, 1e-9);
    EXPECT_EQ(result.effects[0].degreesOfFreedom, 2u);
    EXPECT_EQ(result.residualDegreesOfFreedom, 27u);
}

TEST(AnovaTest, FormatTableContainsFactors)
{
    Factor a{"capacity", {0, 1, 0, 1, 0, 1, 0, 1}, 2};
    std::vector<double> response = {1, 5, 1.1, 5.2, 0.9, 4.9, 1.0, 5.1};
    AnovaResult result = anova({a}, response);
    std::string table = formatAnovaTable(result);
    EXPECT_NE(table.find("capacity"), std::string::npos);
    EXPECT_NE(table.find("residual"), std::string::npos);
}

// ------------------------------------------------------------- bootstrap

TEST(BootstrapTest, MeanCiCoversTheTruth)
{
    // Samples from a known uniform-ish population around 10.
    util::Rng rng(41);
    std::vector<double> sample;
    for (int i = 0; i < 40; ++i) {
        sample.push_back(9.0 + 2.0 * rng.uniformReal());
    }
    ConfidenceInterval ci = bootstrapCi(
        sample, [](const std::vector<double>& xs) { return mean(xs); });
    EXPECT_LT(ci.lower, ci.upper);
    EXPECT_TRUE(ci.contains(ci.pointEstimate));
    EXPECT_TRUE(ci.contains(10.0));
    EXPECT_GT(ci.lower, 9.0);
    EXPECT_LT(ci.upper, 11.0);
}

TEST(BootstrapTest, NarrowsWithTighterData)
{
    std::vector<double> tight = {10.0, 10.01, 9.99, 10.0, 10.02, 9.98};
    std::vector<double> loose = {6.0, 14.0, 9.0, 11.0, 5.0, 15.0};
    auto width = [](const ConfidenceInterval& ci) {
        return ci.upper - ci.lower;
    };
    auto the_mean = [](const std::vector<double>& xs) { return mean(xs); };
    EXPECT_LT(width(bootstrapCi(tight, the_mean)),
              width(bootstrapCi(loose, the_mean)));
}

TEST(BootstrapTest, RelativeDifferenceDetectsRealGaps)
{
    // b is ~10% slower than a: the CI should exclude zero.
    std::vector<double> a = {1.00, 1.01, 0.99, 1.02, 0.98, 1.00};
    std::vector<double> b = {1.10, 1.11, 1.09, 1.12, 1.08, 1.10};
    ConfidenceInterval ci = bootstrapRelativeDifference(b, a);
    EXPECT_GT(ci.lower, 0.05);
    EXPECT_LT(ci.upper, 0.15);
    EXPECT_FALSE(ci.contains(0.0));
}

TEST(BootstrapTest, IndistinguishableSamplesCoverZero)
{
    std::vector<double> a = {1.0, 1.2, 0.8, 1.1, 0.9, 1.05};
    std::vector<double> b = {1.05, 0.95, 1.15, 0.85, 1.1, 0.95};
    ConfidenceInterval ci = bootstrapRelativeDifference(a, b);
    EXPECT_TRUE(ci.contains(0.0));
}

TEST(BootstrapTest, RejectsDegenerateInputs)
{
    std::vector<double> one = {1.0};
    auto the_mean = [](const std::vector<double>& xs) { return mean(xs); };
    EXPECT_THROW(bootstrapCi(one, the_mean), util::Error);
    std::vector<double> two = {1.0, 2.0};
    EXPECT_THROW(bootstrapCi(two, the_mean, 1.5), util::Error);
    EXPECT_THROW(bootstrapCi(two, the_mean, 0.95, 10), util::Error);
}

} // namespace
} // namespace mg::stats
