/** Tests for GFA 1.0 interchange. */
#include <gtest/gtest.h>

#include "io/gfa.h"
#include "sim/pangenome_gen.h"
#include "util/common.h"

namespace mg::io {
namespace {

TEST(GfaTest, FormatsAllRecordTypes)
{
    graph::VariationGraph g;
    graph::NodeId a = g.addNode("ACGT");
    graph::NodeId b = g.addNode("TT");
    g.addEdge(graph::Handle(a, false), graph::Handle(b, false));
    g.addPath("hap0", {graph::Handle(a, false), graph::Handle(b, false)});

    std::string gfa = formatGfa(g);
    EXPECT_NE(gfa.find("H\tVN:Z:1.0"), std::string::npos);
    EXPECT_NE(gfa.find("S\t1\tACGT"), std::string::npos);
    EXPECT_NE(gfa.find("S\t2\tTT"), std::string::npos);
    EXPECT_NE(gfa.find("L\t1\t+\t2\t+\t0M"), std::string::npos);
    EXPECT_NE(gfa.find("P\thap0\t1+,2+\t*"), std::string::npos);
}

TEST(GfaTest, RoundTripPreservesGeneratedPangenome)
{
    sim::PangenomeParams params;
    params.seed = 55;
    params.backboneLength = 3000;
    params.haplotypes = 4;
    sim::GeneratedPangenome pg = sim::generatePangenome(params);

    graph::VariationGraph back = parseGfa(formatGfa(pg.graph));
    ASSERT_EQ(back.numNodes(), pg.graph.numNodes());
    ASSERT_EQ(back.numEdges(), pg.graph.numEdges());
    ASSERT_EQ(back.numPaths(), pg.graph.numPaths());
    for (graph::NodeId id = 1; id <= pg.graph.numNodes(); ++id) {
        ASSERT_EQ(back.forwardSequence(id), pg.graph.forwardSequence(id));
    }
    for (size_t p = 0; p < pg.graph.numPaths(); ++p) {
        EXPECT_EQ(back.path(p).name, pg.graph.path(p).name);
        ASSERT_EQ(back.path(p).steps, pg.graph.path(p).steps);
    }
    back.validate();
}

TEST(GfaTest, ParsesReverseOrientationLinks)
{
    std::string gfa =
        "H\tVN:Z:1.0\n"
        "S\t1\tACGT\n"
        "S\t2\tGGG\n"
        "L\t1\t+\t2\t-\t0M\n";
    graph::VariationGraph g = parseGfa(gfa);
    EXPECT_TRUE(g.hasEdge(graph::Handle(1, false), graph::Handle(2, true)));
    EXPECT_TRUE(g.hasEdge(graph::Handle(2, false), graph::Handle(1, true)));
}

TEST(GfaTest, CompactsSparseNumericIds)
{
    // Segment names 10 and 20 become dense ids 1 and 2, numeric order.
    std::string gfa =
        "S\t20\tCC\n"
        "S\t10\tAA\n"
        "L\t10\t+\t20\t+\t*\n"
        "P\tp\t10+,20+\t*\n";
    graph::VariationGraph g = parseGfa(gfa);
    ASSERT_EQ(g.numNodes(), 2u);
    EXPECT_EQ(g.forwardSequence(1), "AA");
    EXPECT_EQ(g.forwardSequence(2), "CC");
    ASSERT_EQ(g.numPaths(), 1u);
    EXPECT_EQ(g.path(0).steps[0], graph::Handle(1, false));
}

TEST(GfaTest, IgnoresCommentsAndUnknownRecords)
{
    std::string gfa =
        "# a comment\n"
        "S\t1\tACGT\n"
        "W\tsample\t1\tchr1\t0\t4\t>1\n"; // GFA 1.1 walk: ignored
    graph::VariationGraph g = parseGfa(gfa);
    EXPECT_EQ(g.numNodes(), 1u);
}

TEST(GfaTest, MalformedInputThrows)
{
    EXPECT_THROW(parseGfa("S\t1\n"), util::Error);            // short S
    EXPECT_THROW(parseGfa("S\tx\tACGT\n"), util::Error);      // bad name
    EXPECT_THROW(parseGfa("S\t1\tACGT\nS\t1\tA\n"),
                 util::Error);                                // duplicate
    EXPECT_THROW(parseGfa("S\t1\tAC\nL\t1\t+\t2\t+\t0M\n"),
                 util::Error);                                // bad target
    EXPECT_THROW(parseGfa("S\t1\tAC\nS\t2\tGG\nL\t1\t+\t2\t+\t5M\n"),
                 util::Error);                                // overlap
    EXPECT_THROW(parseGfa("S\t1\tAC\nP\tp\t3+\t*\n"),
                 util::Error);                                // bad step
}

} // namespace
} // namespace mg::io
