/**
 * Scheduler correctness tests: every policy must process every item exactly
 * once, for any (total, batch, threads) combination, under concurrency.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "sched/scheduler.h"
#include "util/common.h"

namespace mg::sched {
namespace {

std::vector<SchedulerKind> allKinds()
{
    return {SchedulerKind::OmpDynamic, SchedulerKind::VgBatch,
            SchedulerKind::WorkStealing, SchedulerKind::Static};
}

TEST(SchedulerNamesTest, RoundTrip)
{
    for (SchedulerKind kind : allKinds()) {
        EXPECT_EQ(schedulerFromName(schedulerName(kind)), kind);
    }
    EXPECT_THROW(schedulerFromName("bogus"), util::Error);
}

TEST(SchedulerExceptionTest, WorkerThrowIsRethrownAfterAllBatchesRun)
{
    for (SchedulerKind kind : allKinds()) {
        auto scheduler = makeScheduler(kind);
        const size_t total = 400;
        std::vector<std::atomic<int>> seen(total);
        try {
            scheduler->run(total, 16, 4,
                           [&](size_t, size_t begin, size_t end) {
                               for (size_t i = begin; i < end; ++i) {
                                   seen[i].fetch_add(1);
                               }
                               if (begin == 96) {
                                   throw util::Error("poisoned batch");
                               }
                           });
            FAIL() << "expected rethrow from " << schedulerName(kind);
        } catch (const util::Error& e) {
            EXPECT_NE(std::string(e.what()).find("poisoned batch"),
                      std::string::npos)
                << schedulerName(kind);
        }
        // The failing batch must not abort the rest of the run: every
        // item was still processed exactly once.
        for (size_t i = 0; i < total; ++i) {
            EXPECT_EQ(seen[i].load(), 1)
                << schedulerName(kind) << " item " << i;
        }
    }
}

TEST(SchedulerNamesTest, UnknownNameErrorListsValidNames)
{
    try {
        schedulerFromName("bogus");
        FAIL() << "expected throw";
    } catch (const util::Error& e) {
        std::string what = e.what();
        EXPECT_NE(what.find("bogus"), std::string::npos);
        for (const char* name : {"openmp", "vg", "steal", "static"}) {
            EXPECT_NE(what.find(name), std::string::npos) << name;
        }
    }
}

TEST(SchedulerFactoryTest, MakesMatchingKind)
{
    for (SchedulerKind kind : allKinds()) {
        auto scheduler = makeScheduler(kind);
        ASSERT_NE(scheduler, nullptr);
        EXPECT_EQ(scheduler->kind(), kind);
    }
}

/** (kind, total, batch, threads) sweep. */
class SchedulerProperty
    : public ::testing::TestWithParam<
          std::tuple<SchedulerKind, size_t, size_t, size_t>>
{};

TEST_P(SchedulerProperty, ProcessesEveryItemExactlyOnce)
{
    auto [kind, total, batch, threads] = GetParam();
    auto scheduler = makeScheduler(kind);

    std::vector<std::atomic<uint32_t>> touched(total);
    std::atomic<size_t> max_thread{0};
    scheduler->run(total, batch, threads,
                   [&](size_t thread, size_t begin, size_t end) {
                       ASSERT_LE(begin, end);
                       ASSERT_LE(end, total);
                       size_t prev = max_thread.load();
                       while (thread > prev &&
                              !max_thread.compare_exchange_weak(prev,
                                                                thread)) {
                       }
                       for (size_t i = begin; i < end; ++i) {
                           touched[i].fetch_add(1);
                       }
                   });
    for (size_t i = 0; i < total; ++i) {
        ASSERT_EQ(touched[i].load(), 1u) << "item " << i;
    }
    EXPECT_LT(max_thread.load(), threads);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulerProperty,
    ::testing::Combine(
        ::testing::Values(SchedulerKind::OmpDynamic, SchedulerKind::VgBatch,
                          SchedulerKind::WorkStealing,
                          SchedulerKind::Static),
        ::testing::Values(0, 1, 7, 100, 1000, 4097),
        ::testing::Values(1, 3, 64, 512),
        ::testing::Values(1, 2, 4, 8)));

TEST(SchedulerTest, BatchSizesAreRespected)
{
    for (SchedulerKind kind : allKinds()) {
        auto scheduler = makeScheduler(kind);
        std::atomic<size_t> oversized{0};
        scheduler->run(1000, 64, 4,
                       [&](size_t, size_t begin, size_t end) {
                           if (end - begin > 64) {
                               oversized.fetch_add(1);
                           }
                       });
        EXPECT_EQ(oversized.load(), 0u) << schedulerName(kind);
    }
}

TEST(SchedulerTest, InvalidArgumentsThrow)
{
    for (SchedulerKind kind : allKinds()) {
        auto scheduler = makeScheduler(kind);
        EXPECT_THROW(scheduler->run(10, 0, 2, [](size_t, size_t, size_t) {}),
                     util::Error);
        EXPECT_THROW(scheduler->run(10, 4, 0, [](size_t, size_t, size_t) {}),
                     util::Error);
    }
}

TEST(SchedulerTest, WorkStealingBalancesSkewedWork)
{
    // One giant chunk of slow items: stealing must spread batches across
    // more than one thread context.
    auto scheduler = makeScheduler(SchedulerKind::WorkStealing);
    std::vector<std::atomic<uint32_t>> per_thread(8);
    for (auto& counter : per_thread) {
        counter.store(0);
    }
    scheduler->run(800, 16, 8, [&](size_t thread, size_t begin, size_t end) {
        per_thread[thread].fetch_add(static_cast<uint32_t>(end - begin));
    });
    uint32_t total = 0;
    for (auto& counter : per_thread) {
        total += counter.load();
    }
    EXPECT_EQ(total, 800u);
}

} // namespace
} // namespace mg::sched
