/**
 * mg::serve::AdmissionQueue tests: the capacity invariant under
 * concurrent producers, explicit RETRY_AFTER verdicts that grow with
 * load, weighted-fair dequeue ratios within tolerance, per-tenant
 * in-flight caps, the stride re-entry fix, and close/drain semantics.
 * Built to run clean under TSan (the tsan preset includes the serve
 * label).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "serve/queue.h"

namespace mg::serve {
namespace {

std::vector<TenantConfig>
twoTenants(uint32_t gold_weight = 3, uint32_t free_weight = 1)
{
    TenantConfig gold;
    gold.name = "gold";
    gold.weight = gold_weight;
    TenantConfig free_tier;
    free_tier.name = "free";
    free_tier.weight = free_weight;
    return { gold, free_tier };
}

TEST(AdmissionQueueTest, TenantLookup)
{
    AdmissionQueue<int> queue(4, twoTenants());
    EXPECT_EQ(queue.tenantCount(), 2u);
    EXPECT_EQ(queue.tenantIndex("gold"), 0u);
    EXPECT_EQ(queue.tenantIndex("free"), 1u);
    EXPECT_EQ(queue.tenantIndex("absent"), SIZE_MAX);
    EXPECT_EQ(queue.tenant(0).weight, 3u);
}

TEST(AdmissionQueueTest, RejectsBeyondCapacityWithGrowingRetryAfter)
{
    AdmissionQueue<int> queue(2, twoTenants(), /*retry_base_millis=*/20);
    EXPECT_TRUE(queue.tryPush(0, 1).admitted());
    EXPECT_TRUE(queue.tryPush(0, 2).admitted());

    AdmissionVerdict verdict = queue.tryPush(0, 3);
    EXPECT_EQ(verdict.outcome, Admission::QueueFull);
    EXPECT_GE(verdict.retryAfterMillis, 20u);
    // Full queue: the hint includes the load term (base + base * 2/2).
    EXPECT_GE(verdict.retryAfterMillis, 40u);
    EXPECT_EQ(queue.depth(), 2u);
}

TEST(AdmissionQueueTest, PerTenantQueuedCapIsIndependent)
{
    std::vector<TenantConfig> tenants = twoTenants();
    tenants[1].maxQueued = 1;
    AdmissionQueue<int> queue(8, tenants);
    EXPECT_TRUE(queue.tryPush(1, 1).admitted());
    AdmissionVerdict verdict = queue.tryPush(1, 2);
    EXPECT_EQ(verdict.outcome, Admission::TenantSaturated);
    // The other tenant is unaffected by its neighbor's saturation.
    EXPECT_TRUE(queue.tryPush(0, 3).admitted());
}

TEST(AdmissionQueueTest, ClosedQueueShedsNewAndDrainsOld)
{
    AdmissionQueue<int> queue(4, twoTenants());
    ASSERT_TRUE(queue.tryPush(0, 10).admitted());
    ASSERT_TRUE(queue.tryPush(1, 20).admitted());
    queue.close();

    EXPECT_EQ(queue.tryPush(0, 30).outcome, Admission::Closed);

    int item = 0;
    size_t tenant = SIZE_MAX;
    EXPECT_TRUE(queue.pop(item, tenant));
    queue.complete(tenant);
    EXPECT_TRUE(queue.pop(item, tenant));
    queue.complete(tenant);
    EXPECT_FALSE(queue.pop(item, tenant)); // closed and empty: stop
}

TEST(AdmissionQueueTest, InFlightCapMakesTenantIneligible)
{
    std::vector<TenantConfig> tenants = twoTenants();
    tenants[0].maxInFlight = 1;
    AdmissionQueue<int> queue(8, tenants);
    ASSERT_TRUE(queue.tryPush(0, 1).admitted());
    ASSERT_TRUE(queue.tryPush(0, 2).admitted());
    ASSERT_TRUE(queue.tryPush(1, 3).admitted());

    int item = 0;
    size_t tenant = SIZE_MAX;
    ASSERT_TRUE(queue.pop(item, tenant));
    EXPECT_EQ(tenant, 0u); // gold has the lowest pass first

    // Gold is now at its in-flight cap: the next pop must serve free
    // even though gold still has the queue's lowest pass.
    ASSERT_TRUE(queue.pop(item, tenant));
    EXPECT_EQ(tenant, 1u);
    EXPECT_EQ(item, 3);

    // Completing gold's request frees the slot; its queued item drains.
    queue.complete(0);
    ASSERT_TRUE(queue.pop(item, tenant));
    EXPECT_EQ(tenant, 0u);
    EXPECT_EQ(item, 2);
}

TEST(AdmissionQueueTest, WeightedFairDequeueMatchesWeights)
{
    // Saturate both tenants, then drain: over any window the dequeue
    // counts must track the 3:1 weights.
    AdmissionQueue<int> queue(400, twoTenants(3, 1));
    for (int i = 0; i < 200; ++i) {
        ASSERT_TRUE(queue.tryPush(0, i).admitted());
        ASSERT_TRUE(queue.tryPush(1, i).admitted());
    }
    size_t first_hundred[2] = { 0, 0 };
    for (int i = 0; i < 100; ++i) {
        int item = 0;
        size_t tenant = SIZE_MAX;
        ASSERT_TRUE(queue.pop(item, tenant));
        queue.complete(tenant);
        ++first_hundred[tenant];
    }
    // Exact stride behavior over 100 dequeues at weights 3:1 is 75/25;
    // allow a window's worth of rounding slack.
    EXPECT_NEAR(static_cast<double>(first_hundred[0]), 75.0, 2.0);
    EXPECT_NEAR(static_cast<double>(first_hundred[1]), 25.0, 2.0);
}

TEST(AdmissionQueueTest, ReenteringIdleTenantCannotCashSavedCredit)
{
    // Free idles while gold drains 90 requests; when free wakes up it
    // must share from *now* on, not monopolize the next 90 dequeues to
    // "catch up" — the classic stride re-entry problem.
    AdmissionQueue<int> queue(400, twoTenants(1, 1));
    for (int i = 0; i < 90; ++i) {
        ASSERT_TRUE(queue.tryPush(0, i).admitted());
    }
    for (int i = 0; i < 90; ++i) {
        int item = 0;
        size_t tenant = SIZE_MAX;
        ASSERT_TRUE(queue.pop(item, tenant));
        queue.complete(tenant);
        ASSERT_EQ(tenant, 0u);
    }
    for (int i = 0; i < 40; ++i) {
        ASSERT_TRUE(queue.tryPush(0, i).admitted());
        ASSERT_TRUE(queue.tryPush(1, i).admitted());
    }
    size_t drained[2] = { 0, 0 };
    for (int i = 0; i < 40; ++i) {
        int item = 0;
        size_t tenant = SIZE_MAX;
        ASSERT_TRUE(queue.pop(item, tenant));
        queue.complete(tenant);
        ++drained[tenant];
    }
    EXPECT_NEAR(static_cast<double>(drained[0]), 20.0, 2.0);
    EXPECT_NEAR(static_cast<double>(drained[1]), 20.0, 2.0);
}

// ------------------------------------------------------------ concurrency

/**
 * The capacity invariant under fire: producers racing consumers, every
 * admission decision explicit.  admitted - popped can never exceed
 * capacity, peakDepth() proves the bound held at every instant, and
 * admitted + rejected == attempts (no silent drops).
 */
TEST(AdmissionQueueConcurrencyTest, CapacityInvariantAndNoSilentDrops)
{
    constexpr size_t kCapacity = 16;
    constexpr size_t kProducers = 4;
    constexpr size_t kConsumers = 2;
    constexpr size_t kPerProducer = 2000;

    AdmissionQueue<int> queue(kCapacity, twoTenants());
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> rejected{0};
    std::atomic<uint64_t> popped{0};

    std::vector<std::thread> producers;
    for (size_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (size_t i = 0; i < kPerProducer; ++i) {
                AdmissionVerdict verdict =
                    queue.tryPush(p % 2, static_cast<int>(i));
                if (verdict.admitted()) {
                    admitted.fetch_add(1);
                } else {
                    ASSERT_GT(verdict.retryAfterMillis, 0u);
                    rejected.fetch_add(1);
                    std::this_thread::yield();
                }
            }
        });
    }
    std::vector<std::thread> consumers;
    for (size_t c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&] {
            int item = 0;
            size_t tenant = SIZE_MAX;
            while (queue.pop(item, tenant)) {
                popped.fetch_add(1);
                queue.complete(tenant);
            }
        });
    }
    for (std::thread& thread : producers) {
        thread.join();
    }
    queue.close();
    for (std::thread& thread : consumers) {
        thread.join();
    }

    EXPECT_EQ(admitted.load() + rejected.load(), kProducers * kPerProducer);
    EXPECT_EQ(popped.load(), admitted.load()); // closed queue drains fully
    EXPECT_LE(queue.peakDepth(), kCapacity);
    EXPECT_EQ(queue.depth(), 0u);
    EXPECT_EQ(queue.inFlight(), 0u);
}

/**
 * Weighted fairness holds under concurrent producers too.  Stride
 * ratios are defined for *backlogged* tenants (an empty tenant forfeits
 * its turns by design), so each tenant gets a maxQueued cap of half the
 * capacity and two spinning producers that keep it topped up: every pop
 * frees a slot only the same tenant can reclaim, the backlog composition
 * cannot drift, and the dequeue stream must track the 3:1 weights —
 * unlike arrival order, which the racing producers keep at 1:1.
 */
TEST(AdmissionQueueConcurrencyTest, WeightedFairUnderRacingProducers)
{
    std::vector<TenantConfig> tenants = twoTenants(3, 1);
    tenants[0].maxQueued = 32;
    tenants[1].maxQueued = 32;
    AdmissionQueue<int> queue(64, tenants);

    std::atomic<bool> stop{false};
    std::vector<std::thread> producers;
    for (size_t t = 0; t < 4; ++t) {
        producers.emplace_back([&, t] {
            while (!stop.load()) {
                if (!queue.tryPush(t % 2, 1).admitted()) {
                    std::this_thread::yield();
                }
            }
        });
    }

    // Burst-drain from a known-full queue: full means exactly 32/32 (the
    // caps), and 32 pops from that start split 24/8 by stride no matter
    // how the producers race to refill mid-burst — each side starts with
    // more than its share of the burst, so neither can go empty.
    size_t drained[2] = { 0, 0 };
    size_t total = 0;
    for (int round = 0; round < 10; ++round) {
        while (queue.depth() < 64) {
            std::this_thread::yield();
        }
        for (int i = 0; i < 32; ++i) {
            int item = 0;
            size_t tenant = SIZE_MAX;
            ASSERT_TRUE(queue.pop(item, tenant));
            queue.complete(tenant);
            ++drained[tenant];
            ++total;
        }
    }
    stop.store(true);
    for (std::thread& thread : producers) {
        thread.join();
    }
    queue.close();

    const double gold_share =
        static_cast<double>(drained[0]) / static_cast<double>(total);
    // Weight 3 of 4 => 0.75 exactly per burst, modulo stride remainders
    // carried across bursts.
    EXPECT_NEAR(gold_share, 0.75, 0.03);
}

} // namespace
} // namespace mg::serve
