/**
 * Property suite for the 2-bit packed sequence substrate: pack/unpack and
 * reverse-complement round-trips, shift-carry chunk reads at every offset,
 * the canonicalization policy, the packed SequenceStore, and — the core of
 * the suite — 10k randomized match-run trials pitting every dispatchable
 * kernel variant (scalar, SWAR, and each wide-SIMD level this binary and
 * CPU can run) against a per-character ground truth, including
 * word-boundary starts, runs ending exactly on word and vector-lane
 * edges, adversarial tail lengths, span cutoffs, and sanitized non-ACGT
 * input.  Registered like every other mg_test, so ASan+UBSan MG_SANITIZE
 * builds run the whole suite under both sanitizers.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "gbwt/cached_gbwt.h"
#include "graph/sequence_store.h"
#include "map/extender.h"
#include "sim/input_sets.h"
#include "util/common.h"
#include "util/dna.h"
#include "util/rng.h"
#include "util/simd.h"

namespace mg::util {
namespace {

/** Pack a string into a fresh pad-word-correct buffer. */
std::vector<uint64_t>
packString(std::string_view seq, uint64_t at = 0)
{
    std::vector<uint64_t> words(packedBufferWords(at + seq.size()), 0);
    packAsciiInto(seq, words.data(), at);
    return words;
}

TEST(SanitizePolicyTest, CountsAndCanonicalizes)
{
    std::string clean = "acgtACGT";
    SanitizeCounts counts = sanitizeDna(clean);
    EXPECT_EQ(clean, "ACGTACGT");
    EXPECT_EQ(counts.ambiguous, 0u); // case-normalization is not counted
    EXPECT_EQ(counts.invalid, 0u);

    std::string ambiguous = "ANRYKMSWBDHVNU";
    counts = sanitizeDna(ambiguous);
    EXPECT_EQ(ambiguous, "AAAAAAAAAAAAAA");
    EXPECT_EQ(counts.ambiguous, 13u);
    EXPECT_EQ(counts.invalid, 0u);

    std::string garbage = "AC-T*";
    counts = sanitizeDna(garbage);
    EXPECT_EQ(garbage, "ACATA");
    EXPECT_EQ(counts.ambiguous, 0u);
    EXPECT_EQ(counts.invalid, 2u);
}

TEST(SanitizePolicyTest, CanonicalCodeFollowsPolicy)
{
    EXPECT_EQ(canonicalCode('A'), 0);
    EXPECT_EQ(canonicalCode('a'), 0);
    EXPECT_EQ(canonicalCode('c'), 1);
    EXPECT_EQ(canonicalCode('G'), 2);
    EXPECT_EQ(canonicalCode('t'), 3);
    EXPECT_EQ(canonicalCode('N'), 0); // ambiguity letters read as 'A'
    EXPECT_EQ(canonicalCode('R'), 0);
    EXPECT_EQ(canonicalCode('-'), 0); // invalid bytes too (ingest rejects)
}

TEST(PackedDnaTest, PackUnpackRoundTrip)
{
    Rng rng(101);
    for (size_t len : {size_t{0}, size_t{1}, size_t{31}, size_t{32},
                       size_t{33}, size_t{63}, size_t{64}, size_t{65},
                       size_t{200}, size_t{977}}) {
        std::string seq = rng.randomDna(len);
        std::vector<uint64_t> words = packString(seq);
        EXPECT_EQ(unpackPacked(words.data(), 0, len), seq);
        for (size_t i = 0; i < len; ++i) {
            EXPECT_EQ(codeBase(packedCode(words.data(), i)), seq[i]);
        }
        // Tail bits past the data must be zero (RC derivation relies on it).
        if (len % kBasesPerWord != 0) {
            uint64_t tail = words[len / kBasesPerWord];
            EXPECT_EQ(tail & ~basesMask(len % kBasesPerWord), 0u);
        }
        EXPECT_EQ(words.back(), 0u); // pad word untouched
    }
}

TEST(PackedDnaTest, Chunk32AtEveryOffset)
{
    Rng rng(102);
    std::string seq = rng.randomDna(128);
    std::vector<uint64_t> words = packString(seq);
    for (uint64_t p = 0; p <= 96; ++p) {
        uint64_t chunk = chunk32(words.data(), p);
        for (uint32_t b = 0; b < kBasesPerWord; ++b) {
            ASSERT_EQ(static_cast<uint8_t>((chunk >> (2 * b)) & 3u),
                      packedCode(words.data(), p + b))
                << "offset " << p << " base " << b;
        }
    }
}

TEST(PackedDnaTest, RcWordMatchesStringReverseComplement)
{
    Rng rng(103);
    for (int trial = 0; trial < 50; ++trial) {
        std::string seq = rng.randomDna(32);
        std::vector<uint64_t> words = packString(seq);
        std::vector<uint64_t> rc = {rcWord(words[0]), 0};
        EXPECT_EQ(unpackPacked(rc.data(), 0, 32), reverseComplement(seq));
    }
}

TEST(PackedDnaTest, ReverseComplementPackedMatchesString)
{
    Rng rng(104);
    std::vector<size_t> lengths = {1, 2, 31, 32, 33, 64, 96, 97};
    for (int trial = 0; trial < 40; ++trial) {
        lengths.push_back(1 + rng.uniform(300));
    }
    for (size_t len : lengths) {
        std::string seq = rng.randomDna(len);
        std::vector<uint64_t> fwd = packString(seq);
        std::vector<uint64_t> rc(packedBufferWords(len), 0);
        reverseComplementPacked(fwd.data(), len, rc.data());
        ASSERT_EQ(unpackPacked(rc.data(), 0, len), reverseComplement(seq))
            << "len " << len;
        // Involution: RC(RC(x)) == x, and tail bits stay zero.
        std::vector<uint64_t> back(packedBufferWords(len), 0);
        reverseComplementPacked(rc.data(), len, back.data());
        ASSERT_EQ(unpackPacked(back.data(), 0, len), seq);
        if (len % kBasesPerWord != 0) {
            EXPECT_EQ(rc[len / kBasesPerWord] &
                          ~basesMask(len % kBasesPerWord),
                      0u);
        }
    }
}

TEST(PackedDnaTest, CopyPackedIntoArbitraryOffsets)
{
    Rng rng(105);
    for (uint64_t dst_base : {uint64_t{0}, uint64_t{1}, uint64_t{31},
                              uint64_t{32}, uint64_t{33}, uint64_t{63},
                              uint64_t{100}}) {
        size_t len = 1 + rng.uniform(150);
        std::string seq = rng.randomDna(len);
        std::vector<uint64_t> src = packString(seq);
        std::vector<uint64_t> dst(packedBufferWords(dst_base + len), 0);
        copyPackedInto(dst.data(), dst_base, src.data(), len);
        ASSERT_EQ(unpackPacked(dst.data(), dst_base, len), seq)
            << "dst_base " << dst_base;
    }
}

/** Per-character ground truth for the match-run kernels. */
uint32_t
charMatchRun(std::string_view a, std::string_view b, uint32_t span)
{
    uint32_t i = 0;
    while (i < span && a[i] == b[i]) {
        ++i;
    }
    return i;
}

/** Every match-run function this binary and this CPU can execute. */
std::vector<std::pair<std::string, MatchRunFn>>
availableMatchRunFns()
{
    std::vector<std::pair<std::string, MatchRunFn>> fns;
    fns.emplace_back("scalar", resolveKernel(KernelVariant::Scalar).fn);
    fns.emplace_back("swar", resolveKernel(KernelVariant::Swar).fn);
    const CpuFeatures& cpu = cpuFeatures();
    const std::pair<SimdLevel, bool> levels[] = {
        {SimdLevel::Neon, cpu.neon},
        {SimdLevel::Avx2, cpu.avx2},
        {SimdLevel::Avx512bw, cpu.avx512bw},
    };
    for (const auto& [level, available] : levels) {
        MatchRunFn fn = matchRunForLevel(level);
        if (available && fn != nullptr) {
            fns.emplace_back(simdLevelName(level), fn);
        }
    }
    return fns;
}

TEST(PackedDnaTest, MatchRunAllVariantsVsCharGroundTruth)
{
    const auto fns = availableMatchRunFns();
    ASSERT_GE(fns.size(), 2u);
    Rng rng(106);
    for (int trial = 0; trial < 10000; ++trial) {
        // Word-boundary coverage: starts anywhere in the first two words.
        uint64_t abase = rng.uniform(64);
        uint64_t bbase = rng.uniform(64);
        // Spans up to just past the widest vector step (256 bases), with
        // every tail length 0–63 hit often, so each wide loop sees both
        // "too short, straight to tail" and "wide step plus ragged tail".
        uint32_t span = static_cast<uint32_t>(
            trial % 2 == 0 ? rng.uniform(100) : rng.uniform(300));
        std::string q = rng.randomDna(span);
        std::string t = q;
        switch (trial % 5) {
        case 0:
            // Random mutations anywhere (including none).
            for (uint32_t m = rng.uniform(3); m > 0; --m) {
                if (span == 0) {
                    break;
                }
                size_t at = rng.uniform(span);
                t[at] = rng.differentBase(t[at]);
            }
            break;
        case 1:
            // Run ends exactly on a word edge of the a-side.
            if (span > 0) {
                uint64_t edge = ((abase / 32) + 1) * 32;
                if (edge > abase && edge - abase <= span) {
                    size_t at = static_cast<size_t>(edge - abase);
                    if (at < span) {
                        t[at] = rng.differentBase(t[at]);
                    }
                }
            }
            break;
        case 2:
            // Mismatch in the very first base.
            if (span > 0) {
                t[0] = rng.differentBase(t[0]);
            }
            break;
        case 3:
            // Exact match: the run must end at the span cutoff even though
            // the packed buffers keep matching beyond it.
            break;
        case 4: {
            // Mismatch straddling a vector-lane boundary: one base before
            // or after the 32/64/128/256-base marks (relative to the
            // span start), the off-by-one hot spots of every wide loop.
            if (span == 0) {
                break;
            }
            const uint32_t lanes[] = {31, 32, 63, 64, 127, 128, 255, 256};
            uint32_t at = lanes[rng.uniform(8)];
            if (at < span) {
                t[at] = rng.differentBase(t[at]);
            }
            break;
        }
        }
        std::vector<uint64_t> a = packString(q, abase);
        std::vector<uint64_t> b = packString(t, bbase);
        uint32_t expect = charMatchRun(q, t, span);
        for (const auto& [name, fn] : fns) {
            uint64_t words = 0;
            uint32_t got = fn(a.data(), abase, b.data(), bbase, span, words);
            ASSERT_EQ(got, expect)
                << name << " trial " << trial << " abase " << abase
                << " bbase " << bbase << " span " << span;
        }
        // Chunk-count bounds hold for the SWAR kernel specifically: one
        // XOR per started 32-base block of the scanned prefix.  (Vector
        // kernels count full wide steps, scalar counts nothing.)
        uint64_t words = 0;
        uint32_t swar =
            matchRunPacked(a.data(), abase, b.data(), bbase, span, words);
        if (span > 0) {
            ASSERT_GE(words, (uint64_t{swar} + 31) / 32);
            ASSERT_LE(words, uint64_t{span} / 32 + 1);
        }
    }
}

TEST(PackedDnaTest, MatchRunVariantsOnSanitizedInput)
{
    // Ambiguity letters and stray bytes canonicalize to 'A' before
    // packing; every kernel must agree on the sanitized strings.
    const auto fns = availableMatchRunFns();
    Rng rng(110);
    const std::string alphabet = "ACGTNRYKMSWBDHVU-acgtn";
    for (int trial = 0; trial < 2000; ++trial) {
        uint32_t span = static_cast<uint32_t>(rng.uniform(200));
        std::string q, t;
        for (uint32_t i = 0; i < span; ++i) {
            q.push_back(alphabet[rng.uniform(alphabet.size())]);
            t.push_back(rng.chance(0.9)
                            ? q.back()
                            : alphabet[rng.uniform(alphabet.size())]);
        }
        std::string qs = q, ts = t;
        sanitizeDna(qs);
        sanitizeDna(ts);
        uint64_t abase = rng.uniform(64);
        uint64_t bbase = rng.uniform(64);
        // packAsciiInto applies the same canonicalization, so packing the
        // raw strings must equal packing the sanitized ones.
        std::vector<uint64_t> a = packString(q, abase);
        std::vector<uint64_t> b = packString(t, bbase);
        uint32_t expect = charMatchRun(qs, ts, span);
        for (const auto& [name, fn] : fns) {
            uint64_t words = 0;
            ASSERT_EQ(fn(a.data(), abase, b.data(), bbase, span, words),
                      expect)
                << name << " trial " << trial;
        }
    }
}

TEST(PackedDnaTest, MatchRunAdversarialTails)
{
    // Long identical prefixes with the first difference placed in every
    // tail position 0–63 after each wide-step multiple, at every intra-
    // word phase of the a-side: the tail handoff (wide loop -> SWAR
    // fallback) must be seamless for every variant.
    const auto fns = availableMatchRunFns();
    Rng rng(111);
    for (uint32_t stride : {uint32_t{0}, uint32_t{64}, uint32_t{128},
                            uint32_t{256}}) {
        for (uint32_t tail = 0; tail < 64; ++tail) {
            const uint32_t at = stride + tail;
            const uint32_t span = at + 1 + rng.uniform(40);
            const uint64_t abase = rng.uniform(32);
            const uint64_t bbase = rng.uniform(32);
            std::string q = rng.randomDna(span);
            std::string t = q;
            t[at] = rng.differentBase(t[at]);
            std::vector<uint64_t> a = packString(q, abase);
            std::vector<uint64_t> b = packString(t, bbase);
            for (const auto& [name, fn] : fns) {
                uint64_t words = 0;
                ASSERT_EQ(
                    fn(a.data(), abase, b.data(), bbase, span, words), at)
                    << name << " stride " << stride << " tail " << tail;
            }
        }
    }
}

TEST(PackedSpanTest, AccessorsDecodeTheRange)
{
    Rng rng(107);
    std::string seq = rng.randomDna(90);
    std::vector<uint64_t> words = packString(seq, 17);
    PackedSpan span{words.data(), 17, 90};
    EXPECT_EQ(span.str(), seq);
    for (uint32_t i = 0; i < span.size; ++i) {
        ASSERT_EQ(span.at(i), seq[i]);
    }
}

} // namespace
} // namespace mg::util

namespace mg::graph {
namespace {

TEST(PackedSequenceStoreTest, StoresBothStrandsAndSanitizes)
{
    SequenceStore store;
    store.addNode("ACGNT"); // N -> A under the policy
    EXPECT_EQ(store.numNodes(), 1u);
    EXPECT_EQ(store.forwardSequence(1), "ACGAT");
    EXPECT_EQ(store.sequence(Handle(1, true)), "ATCGT");
    EXPECT_EQ(store.sanitizedBases(), 1u);
    EXPECT_THROW(store.addNode("AC T"), util::Error);

    util::Rng rng(108);
    std::vector<std::string> seqs;
    for (int i = 0; i < 40; ++i) {
        seqs.push_back(rng.randomDna(1 + rng.uniform(120)));
        store.addNode(seqs.back());
    }
    for (size_t i = 0; i < seqs.size(); ++i) {
        NodeId id = static_cast<NodeId>(i + 2);
        ASSERT_EQ(store.length(id), seqs[i].size());
        ASSERT_EQ(store.forwardSequence(id), seqs[i]);
        ASSERT_EQ(store.sequence(Handle(id, true)),
                  util::reverseComplement(seqs[i]));
        ASSERT_EQ(store.packedView(Handle(id, false)).str(), seqs[i]);
        for (size_t off = 0; off < seqs[i].size(); ++off) {
            ASSERT_EQ(store.base(Handle(id, false), off), seqs[i][off]);
        }
    }
}

TEST(PackedSequenceStoreTest, FootprintReportsResidentAndReserved)
{
    SequenceStore store;
    store.reserveBases(1 << 16);
    store.addNode("ACGTACGTACGTACGT");
    EXPECT_GT(store.footprintBytes(), 0u);
    EXPECT_EQ(store.footprintBytes(),
              store.arenaBytes() + store.offsetTableBytes());
    // reserveBases left far more capacity than data: reserved >> resident.
    EXPECT_GT(store.reservedBytes(), store.footprintBytes());
    // 2 bits per base, both strands: arena words for 2*16 bases + pad.
    EXPECT_EQ(store.arenaBytes(),
              util::packedBufferWords(2 * 16) * sizeof(uint64_t));
}

} // namespace
} // namespace mg::graph

namespace mg::map {
namespace {

/** Every forced kernel variant must produce identical walks, field by
 *  field — the dispatch-level guarantee behind ExtendParams::kernel. */
TEST(PackedExtenderTest, AllKernelVariantsAgreeOnSimWorldWalks)
{
    sim::InputSet set = sim::buildInputSet(sim::inputSetSpec("B-yeast"), 0.02);
    const graph::VariationGraph& graph = set.pangenome.graph;

    const util::KernelVariant variants[] = {
        util::KernelVariant::Scalar,
        util::KernelVariant::Swar,
        util::KernelVariant::Simd, // degrades to Swar when no wide ISA
        util::KernelVariant::Auto,
    };
    struct Forced
    {
        std::unique_ptr<Extender> extender;
        std::unique_ptr<gbwt::CachedGbwt> cache;
        ExtendScratch scratch;
    };
    std::vector<Forced> forced;
    for (util::KernelVariant variant : variants) {
        ExtendParams params;
        params.kernel = variant;
        Forced f;
        f.extender = std::make_unique<Extender>(graph, params);
        f.cache = std::make_unique<gbwt::CachedGbwt>(set.pangenome.gbwt);
        // Resolution never yields Auto and only yields Simd when runnable.
        EXPECT_NE(f.extender->kernel().effective,
                  util::KernelVariant::Auto);
        forced.push_back(std::move(f));
    }

    util::Rng rng(109);
    size_t nontrivial = 0;
    for (int trial = 0; trial < 600; ++trial) {
        graph::NodeId id =
            static_cast<graph::NodeId>(1 + rng.uniform(graph.numNodes()));
        graph::Handle handle(id, rng.chance(0.5));
        uint32_t offset =
            static_cast<uint32_t>(rng.uniform(graph.length(id)));
        const std::string& read =
            set.reads.reads[rng.uniform(set.reads.size())].sequence;
        size_t from = rng.uniform(read.size());
        std::string_view query = std::string_view(read).substr(from);

        DirectionalWalk ref = forced[0].extender->walk(
            handle, offset, query, *forced[0].cache, forced[0].scratch);
        for (size_t v = 1; v < forced.size(); ++v) {
            DirectionalWalk got = forced[v].extender->walk(
                handle, offset, query, *forced[v].cache,
                forced[v].scratch);
            const char* name = util::kernelVariantName(
                forced[v].extender->kernel().effective);
            ASSERT_EQ(got.consumed, ref.consumed)
                << name << " trial " << trial;
            ASSERT_EQ(got.score, ref.score) << name << " trial " << trial;
            ASSERT_EQ(got.endOffset, ref.endOffset)
                << name << " trial " << trial;
            ASSERT_TRUE(got.path == ref.path) << name << " trial " << trial;
            ASSERT_TRUE(got.mismatchOffsets == ref.mismatchOffsets)
                << name << " trial " << trial;
        }
        nontrivial += ref.consumed > 0;
    }
    EXPECT_GT(nontrivial, 50u); // the comparison must exercise real walks
}

} // namespace
} // namespace mg::map
