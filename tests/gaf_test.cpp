/** Tests for the GAF alignment writer. */
#include <gtest/gtest.h>

#include "io/gaf.h"
#include "util/common.h"
#include "util/str.h"

namespace mg::io {
namespace {

graph::VariationGraph
smallGraph()
{
    graph::VariationGraph g;
    g.addNode("ACGTACGT"); // 1, len 8
    g.addNode("TTTT");     // 2, len 4
    g.addEdge(graph::Handle(1, false), graph::Handle(2, false));
    return g;
}

map::Read
read100(const std::string& name)
{
    map::Read read;
    read.name = name;
    read.sequence = std::string(10, 'A');
    return read;
}

TEST(GafTest, MappedLineHasTwelveColumnsPlusTags)
{
    graph::VariationGraph g = smallGraph();
    giraffe::Alignment alignment;
    alignment.readName = "r1";
    alignment.mapped = true;
    alignment.path = {graph::Handle(1, false), graph::Handle(2, true)};
    alignment.startOffset = 3;
    alignment.readBegin = 0;
    alignment.readEnd = 9;
    alignment.mismatches = 1;
    alignment.score = 9 - 1 - 4;
    alignment.mappingQuality = 42;

    std::string line = formatGafLine(alignment, read100("r1"), g);
    std::vector<std::string> fields = util::split(line, '\t');
    ASSERT_GE(fields.size(), 13u);
    EXPECT_EQ(fields[0], "r1");
    EXPECT_EQ(fields[1], "10");      // query length
    EXPECT_EQ(fields[2], "0");       // qstart
    EXPECT_EQ(fields[3], "9");       // qend
    EXPECT_EQ(fields[4], "+");
    EXPECT_EQ(fields[5], ">1<2");    // oriented path
    EXPECT_EQ(fields[6], "12");      // path bases
    EXPECT_EQ(fields[7], "3");       // path start
    EXPECT_EQ(fields[8], "12");      // path end
    EXPECT_EQ(fields[9], "8");       // matches = 9 aligned - 1 mismatch
    EXPECT_EQ(fields[10], "9");      // alignment span
    EXPECT_EQ(fields[11], "42");     // mapq
    EXPECT_EQ(fields[12], "AS:i:4"); // score tag
}

TEST(GafTest, UnmappedLineUsesStarPath)
{
    graph::VariationGraph g = smallGraph();
    giraffe::Alignment alignment;
    alignment.readName = "r2";
    std::string line = formatGafLine(alignment, read100("r2"), g);
    std::vector<std::string> fields = util::split(line, '\t');
    ASSERT_EQ(fields.size(), 12u);
    EXPECT_EQ(fields[5], "*");
    EXPECT_EQ(fields[11], "255");
}

TEST(GafTest, WholeRunOneLinePerRead)
{
    graph::VariationGraph g = smallGraph();
    map::ReadSet reads;
    reads.reads = {read100("a"), read100("b")};
    std::vector<giraffe::Alignment> alignments(2);
    alignments[0].readName = "a";
    alignments[1].readName = "b";
    alignments[1].mapped = true;
    alignments[1].path = {graph::Handle(1, false)};
    alignments[1].readEnd = 8;

    std::string gaf = formatGaf(alignments, reads, g);
    std::vector<std::string> lines = util::split(gaf, '\n');
    // Two records plus the empty trailing split field.
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_TRUE(util::startsWith(lines[0], "a\t"));
    EXPECT_TRUE(util::startsWith(lines[1], "b\t"));
}

TEST(GafTest, MismatchedNamesThrow)
{
    graph::VariationGraph g = smallGraph();
    giraffe::Alignment alignment;
    alignment.readName = "x";
    EXPECT_THROW(formatGafLine(alignment, read100("y"), g), util::Error);
}

} // namespace
} // namespace mg::io
