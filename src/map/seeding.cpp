#include "map/seeding.h"

#include <cmath>

#include "util/dna.h"

namespace mg::map {

void
appendSeeds(const index::MinimizerIndex& index, std::string_view seq,
            bool on_reverse_read, const SeedingParams& params,
            SeedVector& out, util::MemTracer* tracer)
{
    for (const index::Minimizer& min :
         index::minimizersOf(seq, index.params())) {
        auto [positions, count] = index.lookup(min.hash);
        util::traceWork(tracer, 8);
        if (count == 0 || count > params.maxSeedsPerMinimizer) {
            continue;
        }
        util::traceAccess(tracer, positions,
                          static_cast<uint32_t>(count * sizeof(*positions)));
        // Rarity score: a unique minimizer scores 1, frequent ones decay
        // logarithmically (mirrors Giraffe's hard-hit downweighting).
        float score =
            1.0f / (1.0f + std::log2(static_cast<float>(count)));
        for (size_t i = 0; i < count; ++i) {
            Seed seed;
            seed.position = positions[i];
            seed.readOffset = min.offset;
            seed.onReverseRead = on_reverse_read;
            seed.score = score;
            out.push_back(seed);
        }
    }
}

SeedVector
findSeeds(const index::MinimizerIndex& index, const Read& read,
          const SeedingParams& params, util::MemTracer* tracer)
{
    // First query after an mmap/hot-swap: start faulting the mapped
    // lookup tables in now (one relaxed load per read once disarmed).
    index.maybePrefetch();
    SeedVector seeds;
    appendSeeds(index, read.sequence, false, params, seeds, tracer);
    std::string rc = util::reverseComplement(read.sequence);
    appendSeeds(index, rc, true, params, seeds, tracer);
    return seeds;
}

} // namespace mg::map
