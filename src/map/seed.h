/**
 * @file
 * Seeds: matches between a read minimizer and the pangenome (Section IV-B).
 * "A seed is a pair containing the pangenome graph node and a score
 * indicating the probability of a match when starting the mapping walk from
 * that node."  Seeds are where the walk-and-compare extension starts.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "graph/handle.h"

namespace mg::map {

/** One seed for one read orientation. */
struct Seed
{
    /** Where the matching minimizer's k-mer starts in the graph. */
    graph::Position position;
    /** Offset of the minimizer k-mer in the (oriented) read. */
    uint32_t readOffset = 0;
    /**
     * True if this seed was found on the reverse complement of the read;
     * extension then runs on the reverse-complemented sequence.
     */
    bool onReverseRead = false;
    /**
     * Rarity score: rare minimizers make trustworthy seeds.  Computed from
     * the index occurrence count at seeding time.
     */
    float score = 0.0f;

    friend bool
    operator==(const Seed& a, const Seed& b)
    {
        return a.position == b.position && a.readOffset == b.readOffset &&
               a.onReverseRead == b.onReverseRead;
    }
};

/** All seeds of one read (both orientations). */
using SeedVector = std::vector<Seed>;

} // namespace mg::map
