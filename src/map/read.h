/**
 * @file
 * Short reads: the sequencing fragments mapped against the pangenome.
 * Reads are 50-300 bases (Giraffe's short-read regime) and arrive either
 * single-ended or as read pairs sequenced from both ends of one fragment
 * (Section II-B of the paper).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mg::map {

/** One short read. */
struct Read
{
    std::string name;
    std::string sequence;
    /** Index of the mate read for paired-end data; SIZE_MAX if single. */
    size_t mate = SIZE_MAX;

    bool paired() const { return mate != SIZE_MAX; }
};

/** A batch of reads plus workflow metadata. */
struct ReadSet
{
    std::vector<Read> reads;
    bool pairedEnd = false;
    /** Bases canonicalized from ambiguity letters to 'A' at ingest
     *  (util/dna.h policy); downstream may assume pure ACGT. */
    size_t sanitizedBases = 0;

    size_t size() const { return reads.size(); }
};

} // namespace mg::map
