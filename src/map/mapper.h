/**
 * @file
 * The mapping pipeline core shared by miniGiraffe (the proxy) and the
 * parent emulator.  Per read: seeds -> cluster_seeds ->
 * process_until_threshold_c (score-thresholded cluster processing calling
 * the gapless extender) -> raw extensions (the proxy's output).
 *
 * process_until_threshold_c follows the semantics the paper describes for
 * Giraffe's helper of the same name: candidate clusters are visited in
 * descending score order and processed while their score stays within a
 * fraction of the best cluster's score, with floor and ceiling counts.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "gbwt/cached_gbwt.h"
#include "graph/variation_graph.h"
#include "index/distance.h"
#include "index/minimizer.h"
#include "map/cluster.h"
#include "map/extender.h"
#include "map/read.h"
#include "map/seeding.h"
#include "obs/hub.h"
#include "perf/profiler.h"
#include "resilience/budget.h"

namespace mg::map {

/** End-to-end mapping parameters (defaults mirror the paper's defaults). */
struct MapperParams
{
    SeedingParams seeding;
    ClusterParams cluster;
    ExtendParams extend;
    /** Process clusters scoring at least this fraction of the best
     *  (Giraffe's absolute cluster-score threshold admits many clusters;
     *  a low fraction mirrors that permissiveness). */
    double clusterScoreFraction = 0.02;
    /** Always process at least this many clusters (if available). */
    size_t minClusters = 2;
    /** Never process more than this many clusters per read. */
    size_t maxClusters = 48;
    /** Distinct seeds extended per processed cluster. */
    size_t maxSeedsPerCluster = 4;
    /**
     * Extension prefilter: within a processed cluster, skip chosen seeds
     * scoring below this fraction of the cluster's best chosen seed —
     * they restate evidence the best seed already provides and their
     * extensions almost always lose the dedup anyway.  Killed seeds are
     * counted (mg_map_extensions_aborted_total{reason="prefilter"}), not
     * attempted.  0 disables the filter (the default: the golden output
     * gate requires byte-identical GAF, which only holds when every seed
     * extends).
     */
    double prefilterFraction = 0.0;
    /** Extensions kept per read (best first). */
    size_t maxExtensions = 16;
    /** Initial CachedGBWT capacity (0 disables caching). */
    size_t gbwtCacheCapacity = gbwt::CachedGbwt::kDefaultInitialCapacity;
};

/**
 * Per-worker-thread mutable state plus optional instrumentation handles.
 *
 * The CachedGBWT starts fresh for every read (freshCache()), mirroring
 * Giraffe's extender, which constructs a CachedGBWT per mapping task.
 * This short lifetime is what makes the *initial capacity* a meaningful
 * tuning parameter (Section VII-B): a table far larger than one read's
 * working set pays locality costs on every read, while a tiny one rehashes
 * repeatedly.  With the epoch-stamped cache, "fresh" is an O(1) generation
 * bump — the slot array, decoded-record storage, and every scratch buffer
 * below are reused, so steady-state mapping allocates nothing per read.
 */
class MapperState
{
  public:
    MapperState(const gbwt::Gbwt& gbwt, size_t cache_capacity,
                util::MemTracer* tracer = nullptr)
        : tracer(tracer), cache_(gbwt, cache_capacity, tracer)
    {
        extendScratch.budget = &budget;
    }

    /** The current read's decode cache. */
    gbwt::CachedGbwt& cache() { return cache_; }

    /** Start a new read: accumulate stats, reset the cache (O(1)). */
    void
    freshCache()
    {
        accumulated_.accumulate(cache_.stats());
        cache_.clear();
    }

    /** Cache statistics accumulated across all reads so far. */
    gbwt::CacheStats
    totalStats() const
    {
        gbwt::CacheStats total = accumulated_;
        total.accumulate(cache_.stats());
        return total;
    }

    /**
     * Stats snapshot/restore around retryable batch attempts: a failed
     * attempt's partial work must contribute nothing to the final counters,
     * so callers (sched::runGuarded batch lambdas) snapshot before each
     * attempt and restore before letting the scheduler retry or bisect.
     * Restoring folds the snapshot into accumulated_ and clears the live
     * cache (clear() zeroes its stats), so totalStats() returns exactly
     * the snapshot value.
     */
    struct StatsSnapshot
    {
        gbwt::CacheStats cache;
        resilience::ResilienceStats resilience;
    };

    StatsSnapshot
    statsSnapshot() const
    {
        return StatsSnapshot{totalStats(), resilience};
    }

    void
    restoreStats(const StatsSnapshot& snapshot)
    {
        accumulated_ = snapshot.cache;
        cache_.clear();
        resilience = snapshot.resilience;
        // The failed attempt's buffered funnel counts must vanish with it
        // (flushMetrics at the successful attempt's end is the only path
        // into the live metrics slab, so totals never double-count).
        pending = PendingFunnel{};
    }

    /**
     * Per-batch funnel increments, buffered in plain fields.  Buffering is
     * what makes metrics retry-safe: sched::runGuarded may run a batch
     * several times (retry, bisect), and only the attempt that *completes*
     * may contribute — the batch lambda calls flushMetrics() on success
     * and restoreStats() (which drops the buffer) on failure.
     */
    struct PendingFunnel
    {
        uint64_t reads = 0;
        uint64_t seeds = 0;
        uint64_t clustersFormed = 0;
        uint64_t clustersProcessed = 0;
        uint64_t extensionsAttempted = 0;
        uint64_t extensionsAborted = 0;
        uint64_t extensionsPrefiltered = 0;
        uint64_t extensionsEmitted = 0;
        uint64_t degradedDeadline = 0;
        uint64_t degradedStepCap = 0;
        uint64_t degradedLookupCap = 0;
        uint64_t degradedWatchdog = 0;
        stats::LatencyHistogram readLatency;
    };

    /**
     * Publish the pending funnel counts and the cache-stat growth since
     * the last flush to the metrics slab.  No-op when telemetry is off.
     */
    void
    flushMetrics()
    {
        if (metrics == nullptr || metricIds == nullptr) {
            return;
        }
        const obs::MapMetricIds& ids = *metricIds;
        metrics->add(ids.reads, pending.reads);
        metrics->add(ids.seeds, pending.seeds);
        metrics->add(ids.clustersFormed, pending.clustersFormed);
        metrics->add(ids.clustersProcessed, pending.clustersProcessed);
        metrics->add(ids.extensionsAttempted,
                     pending.extensionsAttempted);
        metrics->add(ids.extensionsAborted, pending.extensionsAborted);
        metrics->add(ids.extensionsPrefiltered,
                     pending.extensionsPrefiltered);
        metrics->add(ids.extensionsEmitted, pending.extensionsEmitted);
        metrics->add(ids.degradedDeadline, pending.degradedDeadline);
        metrics->add(ids.degradedStepCap, pending.degradedStepCap);
        metrics->add(ids.degradedLookupCap, pending.degradedLookupCap);
        metrics->add(ids.degradedWatchdog, pending.degradedWatchdog);
        metrics->mergeHistogram(ids.readLatency, pending.readLatency);
        pending = PendingFunnel{};

        // Cache stats grow monotonically except across restoreStats,
        // which rolls them back exactly to the last flushed watermark —
        // so the delta below is the completed work since that flush.
        gbwt::CacheStats total = totalStats();
        metrics->add(ids.gbwtLookups, total.lookups - flushed_.lookups);
        metrics->add(ids.gbwtHits, total.hits - flushed_.hits);
        metrics->add(ids.gbwtDecodes, total.decodes - flushed_.decodes);
        metrics->add(ids.gbwtRehashes,
                     total.rehashes - flushed_.rehashes);
        metrics->add(ids.gbwtProbes, total.probes - flushed_.probes);
        metrics->add(ids.gbwtRecycles,
                     total.recycles - flushed_.recycles);
        flushed_ = total;
    }

    util::MemTracer* tracer = nullptr;
    /** Region instrumentation (null when profiling is off). */
    perf::Profiler::ThreadLog* log = nullptr;

    /** Live-metrics sinks (all null when telemetry is off). */
    obs::Registry::ThreadSlab* metrics = nullptr;
    const obs::MapMetricIds* metricIds = nullptr;
    /** Flight-recorder ring for this worker (null when off). */
    obs::FlightRecorder::Ring* flight = nullptr;
    /**
     * Per-request stage-time accumulator for traced requests (null when
     * the request is untraced).  The mapper adds the wall time of each
     * pipeline stage (seed/cluster/extend) here; timing-only, so a
     * traced request's GAF stays byte-identical to an untraced one.
     */
    obs::StageAccumulator* stageTrace = nullptr;
    PendingFunnel pending;

    /**
     * Per-read work budget (deadline + step/lookup caps + cancel token).
     * Inactive unless configure()d; wired into extendScratch at
     * construction so the extension kernel charges it.
     */
    resilience::ReadBudget budget;
    /** Degradation counters + per-read latency histogram for this worker. */
    resilience::ResilienceStats resilience;

    /** Extension-kernel buffers reused across seeds and reads. */
    ExtendScratch extendScratch;
    /** Cluster-processing buffers reused across clusters and reads. */
    std::vector<Cluster> clusters;
    std::vector<uint32_t> sortedSeeds;
    std::vector<uint32_t> chosenSeeds;
    std::string reverseSeq;
    /**
     * Candidate extensions before dedup/trim.  A read can produce an order
     * of magnitude more candidates than the maxExtensions it returns;
     * accumulating them here keeps that churn in warm capacity and the
     * returned MapResult allocates only for its final trimmed set.
     */
    std::vector<GaplessExtension> extensionBuffer;

  private:
    gbwt::CachedGbwt cache_;
    gbwt::CacheStats accumulated_;
    /** Cache stats already published to the metrics slab. */
    gbwt::CacheStats flushed_;
};

/**
 * Immutable mapping engine over one graph + indexes.  Thread-safe: all
 * mutation lives in MapperState.
 */
class Mapper
{
  public:
    Mapper(const graph::VariationGraph& graph, const gbwt::Gbwt& gbwt,
           const index::MinimizerIndex& minimizers,
           const index::DistanceIndex& distance, MapperParams params);

    const MapperParams& params() const { return params_; }
    const graph::VariationGraph& graph() const { return graph_; }
    const gbwt::Gbwt& gbwt() const { return gbwt_; }

    /** Fresh per-thread state bound to this mapper's GBWT. */
    std::unique_ptr<MapperState>
    makeState(util::MemTracer* tracer = nullptr) const
    {
        return std::make_unique<MapperState>(gbwt_,
                                             params_.gbwtCacheCapacity,
                                             tracer);
    }

    /** Full pipeline: seed, cluster, extend.  (Parent emulator path.) */
    MapResult mapRead(const Read& read, MapperState& state) const;

    /**
     * Critical-functions-only pipeline from precomputed seeds (the proxy
     * path: miniGiraffe's inputs are reads plus their seeds).
     */
    MapResult mapFromSeeds(const Read& read, const SeedVector& seeds,
                           MapperState& state) const;

    /** Register the region ids used for instrumentation. */
    void bindProfiler(perf::Profiler& profiler);

  private:
    /** The paper's process_until_threshold_c over scored clusters. */
    void processUntilThresholdC(const Read& read, const SeedVector& seeds,
                                const std::vector<Cluster>& clusters,
                                MapperState& state, MapResult& result) const;

    const graph::VariationGraph& graph_;
    const gbwt::Gbwt& gbwt_;
    const index::MinimizerIndex& minimizers_;
    const index::DistanceIndex& distance_;
    MapperParams params_;
    Extender extender_;

    // Region ids (registered once; zero-cost when no log is attached).
    perf::RegionId regionFindSeeds_ = 0;
    perf::RegionId regionCluster_ = 0;
    perf::RegionId regionProcess_ = 0;
    perf::RegionId regionExtend_ = 0;
    bool profilerBound_ = false;
};

} // namespace mg::map
