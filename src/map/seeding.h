/**
 * @file
 * Seed generation: "the first operation finds the minimizers and the
 * distance index information for the short read being processed.  Once
 * found, the application creates a vector of seeds" (Section IV-B).  In the
 * full application this is part of the preprocessing that Giraffe performs
 * before the critical functions; the parent emulator runs it inline and the
 * proxy typically loads the precomputed result from the reads+seeds .bin
 * file, exactly as the paper's miniGiraffe does.
 */
#pragma once

#include <string_view>

#include "index/minimizer.h"
#include "map/read.h"
#include "map/seed.h"
#include "util/mem_tracer.h"

namespace mg::map {

/** Seed-generation knobs. */
struct SeedingParams
{
    /** Ignore minimizers with more matches than this (repeat guard). */
    size_t maxSeedsPerMinimizer = 64;
};

/**
 * Find all seeds of one read against the minimizer index, for the forward
 * read and its reverse complement.  Seed scores reflect minimizer rarity
 * (rarer match == stronger evidence).
 */
SeedVector findSeeds(const index::MinimizerIndex& index, const Read& read,
                     const SeedingParams& params = SeedingParams(),
                     util::MemTracer* tracer = nullptr);

/** Seeds of one linear sequence in one orientation (helper). */
void appendSeeds(const index::MinimizerIndex& index, std::string_view seq,
                 bool on_reverse_read, const SeedingParams& params,
                 SeedVector& out, util::MemTracer* tracer = nullptr);

} // namespace mg::map
