#include "map/extender.h"

#include <algorithm>

#include "util/common.h"
#include "util/mem_tracer.h"
#include "util/dna.h"

namespace mg::map {

namespace {

/** One in-flight walk state of the DFS over haplotype-supported branches. */
struct WalkState
{
    gbwt::SearchState state;       // haplotype range at the current node
    uint32_t nodeOffset = 0;       // next base to compare within the node
    uint32_t queryPos = 0;         // next query character to compare
    int mismatches = 0;
    int32_t score = 0;
    std::vector<graph::Handle> path;
    std::vector<uint32_t> mismatchOffsets;
    // Snapshot at the maximum-score prefix end (always a matching base),
    // used to trim the walk to its best local alignment when it stops.
    uint32_t bestQueryPos = 0;
    uint32_t bestEndOffset = 0;
    int32_t bestScore = 0;
    size_t bestMismatches = 0;
    size_t bestPathLen = 0;
};

/** Walk result plus its end offset inside the final node. */
struct WalkCandidate
{
    DirectionalWalk walk;
    bool valid = false;
};

/** Deterministic "is a better than b" for finished walk prefixes. */
bool
betterCandidate(const DirectionalWalk& a, const DirectionalWalk& b)
{
    if (a.score != b.score) {
        return a.score > b.score;
    }
    if (a.consumed != b.consumed) {
        return a.consumed > b.consumed;
    }
    if (a.path != b.path) {
        return a.path < b.path;
    }
    return a.mismatchOffsets < b.mismatchOffsets;
}

} // namespace

DirectionalWalk
Extender::walk(graph::Handle start, uint32_t offset, std::string_view query,
               gbwt::CachedGbwt& cache) const
{
    DirectionalWalk best; // empty walk: consumed 0, score 0
    if (query.empty()) {
        return best;
    }
    gbwt::SearchState root = cache.find(start);
    if (root.empty()) {
        return best; // no haplotype visits this node in this orientation
    }

    std::vector<WalkState> stack;
    {
        WalkState init;
        init.state = root;
        init.nodeOffset = offset;
        stack.push_back(std::move(init));
    }
    size_t explored = 0;

    auto finish = [&](const WalkState& s) {
        // Trim to the maximum-score prefix (it always ends on a match).
        DirectionalWalk candidate;
        candidate.consumed = s.bestQueryPos;
        candidate.score = s.bestScore;
        candidate.endOffset = s.bestEndOffset;
        candidate.mismatchOffsets.assign(
            s.mismatchOffsets.begin(),
            s.mismatchOffsets.begin() +
                static_cast<long>(s.bestMismatches));
        candidate.path.assign(s.path.begin(),
                              s.path.begin() +
                                  static_cast<long>(s.bestPathLen));
        if (candidate.consumed > 0 && betterCandidate(candidate, best)) {
            best = std::move(candidate);
        }
    };

    util::MemTracer* tracer = cache.tracer();
    while (!stack.empty()) {
        WalkState s = std::move(stack.back());
        stack.pop_back();
        if (++explored > params_.maxWalkStates) {
            finish(s);
            break;
        }
        graph::Handle handle = s.state.node;
        uint32_t len = static_cast<uint32_t>(graph_.length(handle.id()));
        bool dead = false;

        // Consume bases within the current node.
        if (s.nodeOffset < len && s.queryPos < query.size()) {
            s.path.push_back(handle);
            // The walk-and-compare inner loop: report the graph bases and
            // query bytes about to be read, and the compare/branch work.
            uint32_t span = std::min<uint32_t>(
                len - s.nodeOffset,
                static_cast<uint32_t>(query.size()) - s.queryPos);
            std::string_view node_seq = graph_.sequenceView(handle.id());
            util::traceAccess(tracer, node_seq.data() + s.nodeOffset, span);
            util::traceAccess(tracer, query.data() + s.queryPos, span);
            util::traceWork(tracer, span * 6);
        }
        while (s.nodeOffset < len && s.queryPos < query.size()) {
            char graph_base = graph_.base(handle, s.nodeOffset);
            if (graph_base == query[s.queryPos]) {
                s.score += params_.matchScore;
                ++s.nodeOffset;
                ++s.queryPos;
                if (s.score >= s.bestScore) {
                    s.bestQueryPos = s.queryPos;
                    s.bestEndOffset = s.nodeOffset;
                    s.bestScore = s.score;
                    s.bestMismatches = s.mismatchOffsets.size();
                    s.bestPathLen = s.path.size();
                }
            } else {
                if (s.mismatches + 1 > params_.maxMismatches) {
                    dead = true;
                    break;
                }
                ++s.mismatches;
                s.score -= params_.mismatchPenalty;
                s.mismatchOffsets.push_back(s.queryPos);
                ++s.nodeOffset;
                ++s.queryPos;
            }
        }

        if (dead || s.queryPos >= query.size()) {
            finish(s);
            continue;
        }

        // Node exhausted with query left: branch on haplotype-supported
        // successors.  Push in descending handle order so the DFS visits
        // smaller handles first (determinism).
        std::vector<gbwt::SearchState> successors;
        if (params_.haplotypeConsistent) {
            successors = cache.successorStates(s.state);
        } else {
            // Ablation mode: walk every graph edge with dummy states.
            for (graph::Handle succ : graph_.successors(handle)) {
                successors.emplace_back(succ, 0, 1);
            }
        }
        if (successors.empty()) {
            finish(s);
            continue;
        }
        std::sort(successors.begin(), successors.end(),
                  [](const gbwt::SearchState& a, const gbwt::SearchState& b) {
                      return b.node < a.node;
                  });
        for (gbwt::SearchState& succ : successors) {
            WalkState next = s;      // copy: branches are rare in bubbles
            next.state = succ;
            next.nodeOffset = 0;
            stack.push_back(std::move(next));
        }
    }
    return best;
}

GaplessExtension
Extender::extendSeed(const Seed& seed, std::string_view sequence,
                     gbwt::CachedGbwt& cache) const
{
    const graph::Position& pos = seed.position;
    const uint32_t read_offset = seed.readOffset;
    MG_ASSERT(read_offset < sequence.size());
    const uint32_t node_len =
        static_cast<uint32_t>(graph_.length(pos.handle.id()));
    MG_ASSERT(pos.offset < node_len);

    // Rightward: match the read suffix starting at the seed base itself.
    DirectionalWalk right =
        walk(pos.handle, pos.offset, sequence.substr(read_offset), cache);

    // Leftward: match the reverse complement of the read prefix by walking
    // the flipped start node from the mirrored offset.
    std::string left_query = util::reverseComplement(
        sequence.substr(0, read_offset));
    DirectionalWalk left =
        walk(pos.handle.flip(), node_len - pos.offset, left_query, cache);

    GaplessExtension ext;
    ext.onReverseRead = seed.onReverseRead;
    ext.readBegin = read_offset - left.consumed;
    ext.readEnd = read_offset + right.consumed;
    ext.score = left.score + right.score;

    // Mismatch offsets: left walk position j maps to read_offset - 1 - j.
    for (auto it = left.mismatchOffsets.rbegin();
         it != left.mismatchOffsets.rend(); ++it) {
        ext.mismatchOffsets.push_back(read_offset - 1 - *it);
    }
    for (uint32_t off : right.mismatchOffsets) {
        ext.mismatchOffsets.push_back(read_offset + off);
    }

    // Path: flipped left walk reversed, then the right walk; the seed node
    // appears in both when each consumed bases there.
    for (auto it = left.path.rbegin(); it != left.path.rend(); ++it) {
        ext.path.push_back(it->flip());
    }
    if (!ext.path.empty() && !right.path.empty() &&
        ext.path.back() == right.path.front()) {
        ext.path.pop_back();
    }
    ext.path.insert(ext.path.end(), right.path.begin(), right.path.end());

    // Start offset within the first path node (forward coordinates).
    if (left.consumed > 0) {
        graph::Handle first = ext.path.front();
        uint32_t first_len =
            static_cast<uint32_t>(graph_.length(first.id()));
        // The left walk's final node is first.flip(); the walk consumed up
        // to flipped offset left.endOffset; mirror it to forward strand.
        ext.startOffset = first_len - left.endOffset;
    } else {
        ext.startOffset = pos.offset;
    }

    if (ext.readBegin == 0 && ext.readEnd == sequence.size()) {
        ext.fullLength = true;
        ext.score += params_.fullLengthBonus;
    }
    return ext;
}

} // namespace mg::map
