#include "map/extender.h"

#include <algorithm>

#include "util/common.h"
#include "util/mem_tracer.h"
#include "util/dna.h"

namespace mg::map {

namespace {

using detail::WalkState;

/** Deterministic "is a better than b" for finished walk prefixes. */
bool
betterCandidate(const DirectionalWalk& a, const DirectionalWalk& b)
{
    if (a.score != b.score) {
        return a.score > b.score;
    }
    if (a.consumed != b.consumed) {
        return a.consumed > b.consumed;
    }
    if (a.path != b.path) {
        return a.path < b.path;
    }
    return a.mismatchOffsets < b.mismatchOffsets;
}

/** Per-thread scratch backing the convenience overloads. */
ExtendScratch&
threadScratch()
{
    static thread_local ExtendScratch scratch;
    return scratch;
}

} // namespace

void
PackedQuery::pack(std::string_view oriented)
{
    size = static_cast<uint32_t>(oriented.size());
    const uint64_t words = util::packedBufferWords(size);
    // assign() reuses capacity: zero allocations once warm.
    fwd.assign(words, 0);
    rc.assign(words, 0);
    util::packAsciiInto(oriented, fwd.data(), 0);
    util::reverseComplementPacked(fwd.data(), size, rc.data());
    keyData_ = oriented.data();
    keyLen_ = oriented.size();
}

DirectionalWalk
Extender::walkPacked(graph::Handle start, uint32_t offset,
                     util::PackedSpan query, gbwt::CachedGbwt& cache,
                     ExtendScratch& scratch) const
{
    DirectionalWalk best; // empty walk: consumed 0, score 0
    if (query.size == 0) {
        return best;
    }
    resilience::ReadBudget* budget = scratch.budget;
    if (budget != nullptr) {
        budget->chargeLookup();
    }
    gbwt::SearchState root = cache.find(start);
    if (root.empty()) {
        return best; // no haplotype visits this node in this orientation
    }

    std::vector<WalkState>& stack = scratch.stack;
    stack.clear();
    {
        WalkState init;
        init.state = root;
        init.nodeOffset = offset;
        stack.push_back(std::move(init));
    }
    size_t explored = 0;
    const uint32_t query_size = query.size;

    auto finish = [&](const WalkState& s) {
        if (s.bestQueryPos == 0) {
            return; // nothing consumed; can never beat even an empty best
        }
        // Cheap reject on the (score, consumed) prefix of the candidate
        // order before paying for the path/mismatch copies; the full
        // comparison below breaks exact ties deterministically.
        if (best.consumed > 0 &&
            (s.bestScore < best.score ||
             (s.bestScore == best.score &&
              s.bestQueryPos < best.consumed))) {
            return;
        }
        // Trim to the maximum-score prefix (it always ends on a match).
        DirectionalWalk candidate;
        candidate.consumed = s.bestQueryPos;
        candidate.score = s.bestScore;
        candidate.endOffset = s.bestEndOffset;
        candidate.mismatchOffsets.assign(
            s.mismatchOffsets.begin(),
            s.mismatchOffsets.begin() +
                static_cast<long>(s.bestMismatches));
        candidate.path.assign(s.path.begin(),
                              s.path.begin() +
                                  static_cast<long>(s.bestPathLen));
        if (betterCandidate(candidate, best)) {
            best = std::move(candidate);
        }
    };

    util::MemTracer* tracer = cache.tracer();
    bool capped = false;
    while (!stack.empty() && !capped) {
        WalkState s = std::move(stack.back());
        stack.pop_back();
        // In-place continuation: instead of pushing the deepest branch and
        // immediately popping it back (two ~250-byte WalkState moves per
        // node step), the inner loop keeps walking it in `s`.  Traversal
        // order and the explored count are exactly those of the
        // push-then-pop formulation, just without the stack round-trip.
        for (;;) {
            if (++explored > params_.maxWalkStates) {
                finish(s);
                capped = true;
                break;
            }
            // Cancellation point: only at walk-state boundaries, so a
            // budget-exhausted walk ends exactly like a capped one — trimmed
            // to its best prefix, never torn mid-node.
            if (budget != nullptr && budget->chargeStep()) {
                finish(s);
                capped = true;
                break;
            }
            graph::Handle handle = s.state.node;
            // One contiguous packed span of the both-orientation arena:
            // reverse-strand bases are pre-materialized, so the compare loop
            // below never calls a per-base complement.
            util::PackedSpan node_seq = graph_.packedView(handle);
            const uint32_t len = node_seq.size;
            bool dead = false;

            if (s.nodeOffset < len && s.queryPos < query_size) {
                s.path.push_back(handle);
                // The walk-and-compare inner loop: report the packed words the
                // SWAR compare is about to stream (a quarter of the byte-layout
                // traffic) and the chunk XOR/scan work.
                uint32_t span =
                    std::min<uint32_t>(len - s.nodeOffset,
                                       query_size - s.queryPos);
                uint64_t chunk_words = (span >> 5) + 1;
                util::traceAccess(
                    tracer,
                    node_seq.words + ((node_seq.first + s.nodeOffset) >> 5),
                    chunk_words * sizeof(uint64_t));
                util::traceAccess(
                    tracer, query.words + ((query.first + s.queryPos) >> 5),
                    chunk_words * sizeof(uint64_t));
                util::traceWork(tracer, chunk_words * 8);
            }
            // Consume bases within the current node, a match-run at a time.
            // Within a run the score rises by matchScore per base, so taking
            // the best-prefix snapshot once at the run's end is exactly
            // equivalent to the per-base update.
            while (s.nodeOffset < len && s.queryPos < query_size) {
                const uint32_t span = std::min<uint32_t>(
                    len - s.nodeOffset, query_size - s.queryPos);
                const uint64_t gbase = node_seq.first + s.nodeOffset;
                const uint64_t qbase = query.first + s.queryPos;
                uint32_t run =
                    params_.useSwar
                        ? util::matchRunPacked(node_seq.words, gbase,
                                               query.words, qbase, span,
                                               scratch.wordsCompared)
                        : util::matchRunScalar(node_seq.words, gbase,
                                               query.words, qbase, span);
                if (run > 0) {
                    s.score += static_cast<int32_t>(run) * params_.matchScore;
                    s.nodeOffset += run;
                    s.queryPos += run;
                    if (s.score >= s.bestScore) {
                        s.bestQueryPos = s.queryPos;
                        s.bestEndOffset = s.nodeOffset;
                        s.bestScore = s.score;
                        s.bestMismatches = s.mismatchOffsets.size();
                        s.bestPathLen = s.path.size();
                    }
                }
                if (run == span) {
                    continue; // node or query exhausted; loop condition exits
                }
                if (s.mismatches + 1 > params_.maxMismatches) {
                    dead = true;
                    break;
                }
                ++s.mismatches;
                s.score -= params_.mismatchPenalty;
                s.mismatchOffsets.push_back(s.queryPos);
                ++s.nodeOffset;
                ++s.queryPos;
            }

            if (dead || s.queryPos >= query_size) {
                finish(s);
                break;
            }

            // Node exhausted with query left: branch on haplotype-supported
            // successors.  Push in descending handle order so the DFS visits
            // smaller handles first (determinism).
            std::vector<gbwt::SearchState>& successors = scratch.successors;
            successors.clear();
            if (params_.haplotypeConsistent) {
                if (budget != nullptr) {
                    budget->chargeLookup();
                }
                cache.successorStatesInto(s.state, successors);
            } else {
                // Ablation mode: walk every graph edge with dummy states.
                for (graph::Handle succ : graph_.successors(handle)) {
                    successors.emplace_back(succ, 0, 1);
                }
            }
            if (successors.empty()) {
                finish(s);
                break;
            }
            if (successors.size() > 1) {
                std::sort(successors.begin(), successors.end(),
                          [](const gbwt::SearchState& a,
                             const gbwt::SearchState& b) {
                              return b.node < a.node;
                          });
            }
            // Warm the cache slots and compressed records the branches are
            // about to probe; pure hint, no decode, no stats.
            for (const gbwt::SearchState& succ : successors) {
                cache.prefetch(succ.node);
            }
            // All but the last branch copy the state (memcpy-cheap with inline
            // storage); the last one — the smallest handle, exactly the state
            // the pop would deliver next — continues in `s` without touching
            // the stack.  The common single-successor step of a bubble chain
            // copies nothing.
            for (size_t i = 0; i + 1 < successors.size(); ++i) {
                WalkState next = s;
                next.state = successors[i];
                next.nodeOffset = 0;
                stack.push_back(std::move(next));
            }
            s.state = successors.back();
            s.nodeOffset = 0;
        }
    }
    return best;
}

DirectionalWalk
Extender::walk(graph::Handle start, uint32_t offset, std::string_view query,
               gbwt::CachedGbwt& cache, ExtendScratch& scratch) const
{
    // Pack the ad-hoc query (tests, reference harnesses) into scratch and
    // run the packed walk — one kernel, no byte-path twin to keep in sync.
    const uint32_t len = static_cast<uint32_t>(query.size());
    scratch.walkQuery.assign(util::packedBufferWords(len), 0);
    util::packAsciiInto(query, scratch.walkQuery.data(), 0);
    return walkPacked(start, offset,
                      util::PackedSpan{scratch.walkQuery.data(), 0, len},
                      cache, scratch);
}

DirectionalWalk
Extender::walk(graph::Handle start, uint32_t offset, std::string_view query,
               gbwt::CachedGbwt& cache) const
{
    return walk(start, offset, query, cache, threadScratch());
}

GaplessExtension
Extender::extendSeed(const Seed& seed, std::string_view sequence,
                     gbwt::CachedGbwt& cache, ExtendScratch& scratch) const
{
    const graph::Position& pos = seed.position;
    const uint32_t read_offset = seed.readOffset;
    MG_ASSERT(read_offset < sequence.size());
    const uint32_t node_len =
        static_cast<uint32_t>(graph_.length(pos.handle.id()));
    MG_ASSERT(pos.offset < node_len);

    // Pack the oriented read once (both strands); consecutive seeds of the
    // same read hit the (pointer, length) key and repack nothing.
    scratch.query.ensure(sequence);

    // Rightward: match the read suffix starting at the seed base itself.
    DirectionalWalk right =
        walkPacked(pos.handle, pos.offset, scratch.query.suffix(read_offset),
                   cache, scratch);

    // Leftward: match the reverse complement of the read prefix by walking
    // the flipped start node from the mirrored offset.  RC(prefix[0, r)) is
    // the suffix of RC(read) starting at len - r, so the packed RC words
    // computed at pack() time serve every seed with zero materialization.
    DirectionalWalk left =
        walkPacked(pos.handle.flip(), node_len - pos.offset,
                   scratch.query.rcPrefix(read_offset), cache, scratch);

    GaplessExtension ext;
    ext.onReverseRead = seed.onReverseRead;
    ext.readBegin = read_offset - left.consumed;
    ext.readEnd = read_offset + right.consumed;
    ext.score = left.score + right.score;

    // Mismatch offsets: left walk position j maps to read_offset - 1 - j.
    for (size_t i = left.mismatchOffsets.size(); i > 0; --i) {
        ext.mismatchOffsets.push_back(read_offset - 1 -
                                      left.mismatchOffsets[i - 1]);
    }
    for (uint32_t off : right.mismatchOffsets) {
        ext.mismatchOffsets.push_back(read_offset + off);
    }

    // Path: flipped left walk reversed, then the right walk; the seed node
    // appears in both when each consumed bases there.
    for (size_t i = left.path.size(); i > 0; --i) {
        ext.path.push_back(left.path[i - 1].flip());
    }
    if (!ext.path.empty() && !right.path.empty() &&
        ext.path.back() == right.path.front()) {
        ext.path.pop_back();
    }
    ext.path.insert(ext.path.end(), right.path.begin(), right.path.end());

    // Start offset within the first path node (forward coordinates).
    if (left.consumed > 0) {
        graph::Handle first = ext.path.front();
        uint32_t first_len =
            static_cast<uint32_t>(graph_.length(first.id()));
        // The left walk's final node is first.flip(); the walk consumed up
        // to flipped offset left.endOffset; mirror it to forward strand.
        ext.startOffset = first_len - left.endOffset;
    } else {
        ext.startOffset = pos.offset;
    }

    if (ext.readBegin == 0 && ext.readEnd == sequence.size()) {
        ext.fullLength = true;
        ext.score += params_.fullLengthBonus;
    }
    return ext;
}

GaplessExtension
Extender::extendSeed(const Seed& seed, std::string_view sequence,
                     gbwt::CachedGbwt& cache) const
{
    return extendSeed(seed, sequence, cache, threadScratch());
}

} // namespace mg::map
