#include "map/extender.h"

#include <algorithm>

#include "util/common.h"
#include "util/mem_tracer.h"
#include "util/dna.h"

namespace mg::map {

namespace {

using detail::BatchLane;
using detail::WalkState;

/** Deterministic "is a better than b" for finished walk prefixes. */
bool
betterCandidate(const DirectionalWalk& a, const DirectionalWalk& b)
{
    if (a.score != b.score) {
        return a.score > b.score;
    }
    if (a.consumed != b.consumed) {
        return a.consumed > b.consumed;
    }
    if (a.path != b.path) {
        return a.path < b.path;
    }
    return a.mismatchOffsets < b.mismatchOffsets;
}

/** Fold a finished walk state's best prefix into the walk's best result. */
void
finishWalk(const WalkState& s, DirectionalWalk& best)
{
    if (s.bestQueryPos == 0) {
        return; // nothing consumed; can never beat even an empty best
    }
    // Cheap reject on the (score, consumed) prefix of the candidate
    // order before paying for the path/mismatch copies; the full
    // comparison below breaks exact ties deterministically.
    if (best.consumed > 0 &&
        (s.bestScore < best.score ||
         (s.bestScore == best.score && s.bestQueryPos < best.consumed))) {
        return;
    }
    // Strictly better on the (score, consumed) prefix of the candidate
    // order: accept by trimming straight into `best` (the maximum-score
    // prefix always ends on a match) — no intermediate copy.
    if (best.consumed == 0 || s.bestScore > best.score ||
        s.bestQueryPos > best.consumed) {
        best.consumed = s.bestQueryPos;
        best.score = s.bestScore;
        best.endOffset = s.bestEndOffset;
        best.mismatchOffsets.assign(
            s.mismatchOffsets.begin(),
            s.mismatchOffsets.begin() +
                static_cast<long>(s.bestMismatches));
        best.path.assign(s.path.begin(),
                         s.path.begin() + static_cast<long>(s.bestPathLen));
        return;
    }
    // Exact (score, consumed) tie: materialize the trimmed candidate and
    // break it on the full deterministic order.
    DirectionalWalk candidate;
    candidate.consumed = s.bestQueryPos;
    candidate.score = s.bestScore;
    candidate.endOffset = s.bestEndOffset;
    candidate.mismatchOffsets.assign(
        s.mismatchOffsets.begin(),
        s.mismatchOffsets.begin() + static_cast<long>(s.bestMismatches));
    candidate.path.assign(s.path.begin(),
                          s.path.begin() +
                              static_cast<long>(s.bestPathLen));
    if (betterCandidate(candidate, best)) {
        best = std::move(candidate);
    }
}

/**
 * Sort successors into descending handle order.  Branch lists are almost
 * always 1–2 entries (bubble graphs), where an insertion sort beats the
 * std::sort call; successors of one state have distinct nodes, so any
 * comparison sort yields the same order.
 */
void
sortSuccessors(std::vector<gbwt::SearchState>& successors)
{
    const size_t n = successors.size();
    if (n <= 8) {
        for (size_t i = 1; i < n; ++i) {
            gbwt::SearchState key = successors[i];
            size_t j = i;
            while (j > 0 && successors[j - 1].node < key.node) {
                successors[j] = successors[j - 1];
                --j;
            }
            successors[j] = key;
        }
        return;
    }
    std::sort(successors.begin(), successors.end(),
              [](const gbwt::SearchState& a, const gbwt::SearchState& b) {
                  return b.node < a.node;
              });
}

/** Per-thread scratch backing the convenience overloads. */
ExtendScratch&
threadScratch()
{
    static thread_local ExtendScratch scratch;
    return scratch;
}

/**
 * Per-walk invariants of the node-step loop, hoisted once per walk (or
 * per batch) so the per-node code touches only registers.  Graph nodes
 * average a handful of bases, so the step loop runs every few
 * nanoseconds; re-deriving kernel selection, tracer, and budget per node
 * is measurable at that rate.
 */
struct StepCtx
{
    const graph::VariationGraph& graph;
    const ExtendParams& params;
    gbwt::CachedGbwt& cache;
    std::vector<gbwt::SearchState>& successors;
    uint64_t& wordsCompared;
    util::MemTracer* tracer;
    resilience::ReadBudget* budget;
    util::MatchRunFn kernel;
    uint32_t wideCutoff;
    bool scalar;
};

/** Build the hoisted step context for one walk or batch. */
StepCtx
makeStepCtx(const graph::VariationGraph& graph, const ExtendParams& params,
            const util::ResolvedKernel& kernel, gbwt::CachedGbwt& cache,
            ExtendScratch& scratch)
{
    // Kernel selection, flattened for the short-span regime.  Graph nodes
    // are 1–32 bases, so most match runs never reach a wide vector step;
    // paying an indirect call (which also blocks inlining of the SWAR
    // loop) on every run costs more than the wide compare saves.  The
    // inlined SWAR kernel therefore serves every sub-wide span for both
    // the Swar and Simd variants — exactly the code the wide kernels run
    // as their tail — and the function pointer is reserved for spans long
    // enough to amortize it.  The Scalar oracle keeps the indirect call
    // unconditionally: it exists to measure the reference loop, not to be
    // fast.  Match lengths are identical on every path by construction.
    return StepCtx{
        graph,
        params,
        cache,
        scratch.successors,
        scratch.wordsCompared,
        cache.tracer(),
        scratch.budget,
        kernel.fn,
        kernel.effective == util::KernelVariant::Simd ? 64u : UINT32_MAX,
        kernel.effective == util::KernelVariant::Scalar,
    };
}

/**
 * Advance `s` by one node: match-run within the current node, then
 * either finish the walk state (dead end, query exhausted, or no
 * haplotype-supported successor — `best` updated; returns true) or
 * branch, pushing all but the smallest-handle successor onto `stack`
 * and continuing `s` in place (returns false).  Shared verbatim by the
 * sequential walk and every lockstep lane, which is what makes their
 * results identical by construction; always_inline clones the loop into
 * both callers so the SWAR kernel and the best-prefix updates fold into
 * each walk loop exactly as they would hand-written.
 */
[[gnu::always_inline]] inline bool
stepNode(const StepCtx& ctx, WalkState& s, const util::PackedSpan& query,
         std::vector<WalkState>& stack, DirectionalWalk& best)
{
    const uint32_t query_size = query.size;

    graph::Handle handle = s.state.node;
    // One contiguous packed span of the both-orientation arena:
    // reverse-strand bases are pre-materialized, so the compare loop
    // below never calls a per-base complement.
    util::PackedSpan node_seq = ctx.graph.packedView(handle);
    const uint32_t len = node_seq.size;
    bool dead = false;

    if (s.nodeOffset < len && s.queryPos < query_size) {
        s.path.push_back(handle);
        if (ctx.tracer != nullptr) {
            // The walk-and-compare inner loop: report the packed words the
            // wide compare is about to stream (a quarter of the byte-layout
            // traffic) and the chunk XOR/scan work.
            uint32_t span = std::min<uint32_t>(len - s.nodeOffset,
                                               query_size - s.queryPos);
            uint64_t chunk_words = (span >> 5) + 1;
            util::traceAccess(
                ctx.tracer,
                node_seq.words + ((node_seq.first + s.nodeOffset) >> 5),
                chunk_words * sizeof(uint64_t));
            util::traceAccess(
                ctx.tracer, query.words + ((query.first + s.queryPos) >> 5),
                chunk_words * sizeof(uint64_t));
            util::traceWork(ctx.tracer, chunk_words * 8);
        }
    }
    // Consume bases within the current node, a match-run at a time.
    // Within a run the score rises by matchScore per base, so taking
    // the best-prefix snapshot once at the run's end is exactly
    // equivalent to the per-base update.
    while (s.nodeOffset < len && s.queryPos < query_size) {
        const uint32_t span = std::min<uint32_t>(len - s.nodeOffset,
                                                 query_size - s.queryPos);
        const uint64_t gbase = node_seq.first + s.nodeOffset;
        const uint64_t qbase = query.first + s.queryPos;
        uint32_t run;
        if (span >= ctx.wideCutoff || ctx.scalar) {
            run = ctx.kernel(node_seq.words, gbase, query.words, qbase, span,
                             ctx.wordsCompared);
        } else {
            run = util::matchRunPacked(node_seq.words, gbase, query.words,
                                       qbase, span, ctx.wordsCompared);
        }
        if (run > 0) {
            s.score += static_cast<int32_t>(run) * ctx.params.matchScore;
            s.nodeOffset += run;
            s.queryPos += run;
            if (s.score >= s.bestScore) {
                s.bestQueryPos = s.queryPos;
                s.bestEndOffset = s.nodeOffset;
                s.bestScore = s.score;
                s.bestMismatches = s.mismatchOffsets.size();
                s.bestPathLen = s.path.size();
            }
        }
        if (run == span) {
            continue; // node or query exhausted; loop condition exits
        }
        if (s.mismatches + 1 > ctx.params.maxMismatches) {
            dead = true;
            break;
        }
        ++s.mismatches;
        s.score -= ctx.params.mismatchPenalty;
        s.mismatchOffsets.push_back(s.queryPos);
        ++s.nodeOffset;
        ++s.queryPos;
    }

    if (dead || s.queryPos >= query_size) {
        finishWalk(s, best);
        return true;
    }

    // Node exhausted with query left: branch on haplotype-supported
    // successors.  Push in descending handle order so the DFS visits
    // smaller handles first (determinism).
    std::vector<gbwt::SearchState>& successors = ctx.successors;
    successors.clear();
    if (ctx.params.haplotypeConsistent) {
        if (ctx.budget != nullptr) {
            ctx.budget->chargeLookup();
        }
        ctx.cache.successorStatesInto(s.state, successors);
    } else {
        // Ablation mode: walk every graph edge with dummy states.
        for (graph::Handle succ : ctx.graph.successors(handle)) {
            successors.emplace_back(succ, 0, 1);
        }
    }
    if (successors.empty()) {
        finishWalk(s, best);
        return true;
    }
    if (successors.size() > 1) {
        sortSuccessors(successors);
        // Warm the cache slots and compressed records the deferred
        // branches will probe after the continued one; pure hint, no
        // decode, no stats.  The continued branch (the last entry) is
        // probed immediately by the next step — prefetching it would
        // just pay the hash probe twice — and the common single-
        // successor step of a bubble chain skips the pass entirely.
        for (size_t i = 0; i + 1 < successors.size(); ++i) {
            ctx.cache.prefetch(successors[i].node);
        }
    }
    // All but the last branch copy the state (memcpy-cheap with inline
    // storage); the last one — the smallest handle, exactly the state
    // the pop would deliver next — continues in `s` without touching
    // the stack.  The common single-successor step of a bubble chain
    // copies nothing.
    for (size_t i = 0; i + 1 < successors.size(); ++i) {
        WalkState next = s;
        next.state = successors[i];
        next.nodeOffset = 0;
        stack.push_back(std::move(next));
    }
    s.state = successors.back();
    s.nodeOffset = 0;
    return false;
}

} // namespace

void
PackedQuery::pack(std::string_view oriented)
{
    size = static_cast<uint32_t>(oriented.size());
    const uint64_t words = util::packedBufferWords(size);
    // assign() reuses capacity: zero allocations once warm.
    fwd.assign(words, 0);
    rc.assign(words, 0);
    util::packAsciiInto(oriented, fwd.data(), 0);
    util::reverseComplementPacked(fwd.data(), size, rc.data());
    keyData_ = oriented.data();
    keyLen_ = oriented.size();
}

DirectionalWalk
Extender::walkPacked(graph::Handle start, uint32_t offset,
                     util::PackedSpan query, gbwt::CachedGbwt& cache,
                     ExtendScratch& scratch) const
{
    DirectionalWalk best; // empty walk: consumed 0, score 0
    if (query.size == 0) {
        return best;
    }
    resilience::ReadBudget* budget = scratch.budget;
    if (budget != nullptr) {
        budget->chargeLookup();
    }
    gbwt::SearchState root = cache.find(start);
    if (root.empty()) {
        return best; // no haplotype visits this node in this orientation
    }

    std::vector<WalkState>& stack = scratch.stack;
    stack.clear();
    {
        WalkState init;
        init.state = root;
        init.nodeOffset = offset;
        stack.push_back(std::move(init));
    }
    size_t explored = 0;
    const StepCtx ctx =
        makeStepCtx(graph_, params_, kernel_, cache, scratch);

    bool capped = false;
    while (!stack.empty() && !capped) {
        WalkState s = std::move(stack.back());
        stack.pop_back();
        // In-place continuation: instead of pushing the deepest branch and
        // immediately popping it back (two ~250-byte WalkState moves per
        // node step), the inner loop keeps walking it in `s`.  Traversal
        // order and the explored count are exactly those of the
        // push-then-pop formulation, just without the stack round-trip.
        for (;;) {
            if (++explored > params_.maxWalkStates) {
                finishWalk(s, best);
                capped = true;
                break;
            }
            // Cancellation point: only at walk-state boundaries, so a
            // budget-exhausted walk ends exactly like a capped one — trimmed
            // to its best prefix, never torn mid-node.
            if (budget != nullptr && budget->chargeStep()) {
                finishWalk(s, best);
                capped = true;
                break;
            }
            if (stepNode(ctx, s, query, stack, best)) {
                break;
            }
        }
    }
    return best;
}

void
Extender::extendSeedsBatch(const SeedVector& seeds, const uint32_t* chosen,
                           size_t count, std::string_view sequence,
                           gbwt::CachedGbwt& cache, ExtendScratch& scratch,
                           std::vector<GaplessExtension>& out) const
{
    if (count == 0) {
        return;
    }
    // Pack the oriented read once (both strands); consecutive batches of
    // the same oriented read hit the (pointer, length) key.
    scratch.query.ensure(sequence);

    std::vector<BatchLane>& lanes = scratch.lanes;
    std::vector<uint32_t>& order = scratch.laneOrder;
    const size_t nlanes = 2 * count;
    if (lanes.size() < nlanes) {
        lanes.resize(nlanes);
    }

    // Lane setup: 2i = right walk, 2i+1 = left walk of chosen[i].  Reset
    // reuses every buffer (clear keeps capacity), so warm batches allocate
    // nothing.
    for (size_t i = 0; i < count; ++i) {
        const Seed& seed = seeds[chosen[i]];
        const graph::Position& pos = seed.position;
        const uint32_t read_offset = seed.readOffset;
        MG_ASSERT(read_offset < sequence.size());
        const uint32_t node_len =
            static_cast<uint32_t>(graph_.length(pos.handle.id()));
        MG_ASSERT(pos.offset < node_len);

        BatchLane& right = lanes[2 * i];
        right.query = scratch.query.suffix(read_offset);
        right.cur.state = gbwt::SearchState(pos.handle, 0, 0);
        right.cur.nodeOffset = pos.offset;

        BatchLane& left = lanes[2 * i + 1];
        left.query = scratch.query.rcPrefix(read_offset);
        left.cur.state = gbwt::SearchState(pos.handle.flip(), 0, 0);
        left.cur.nodeOffset = node_len - pos.offset;
    }
    for (size_t l = 0; l < nlanes; ++l) {
        BatchLane& lane = lanes[l];
        lane.stack.clear();
        lane.explored = 0;
        lane.done = false;
        lane.best.consumed = 0;
        lane.best.score = 0;
        lane.best.endOffset = 0;
        lane.best.mismatchOffsets.clear();
        lane.best.path.clear();
        WalkState& s = lane.cur;
        s.queryPos = 0;
        s.mismatches = 0;
        s.score = 0;
        s.path.clear();
        s.mismatchOffsets.clear();
        s.bestQueryPos = 0;
        s.bestEndOffset = 0;
        s.bestScore = 0;
        s.bestMismatches = 0;
        s.bestPathLen = 0;
    }

    // Root lookups in handle order: lanes rooted on the same or adjacent
    // records (seeds of one cluster sit on the same bubble chain) share
    // one decode instead of interleaving distant probes.
    order.clear();
    for (uint32_t l = 0; l < nlanes; ++l) {
        order.push_back(l);
    }
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        return lanes[a].cur.state.node.packed() <
               lanes[b].cur.state.node.packed();
    });
    size_t live = 0;
    for (size_t i = 0; i < order.size(); ++i) {
        const uint32_t l = order[i];
        BatchLane& lane = lanes[l];
        if (lane.query.size == 0) {
            lane.done = true;
            continue;
        }
        gbwt::SearchState root = cache.find(lane.cur.state.node);
        if (root.empty()) {
            lane.done = true; // no haplotype visits this orientation
            continue;
        }
        lane.cur.state = root;
        order[live++] = l;
    }
    order.resize(live);

    // Lockstep rounds: every live lane advances one node per round, with
    // each frontier prefetched at the round boundary — by the time a
    // lane steps, its record load is in flight or shared with an earlier
    // lane this round.  Lanes keep their root order (seeds of one
    // cluster sit on the same bubble chain, so frontiers stay adjacent
    // as walks advance together); re-sorting every round costs more than
    // the residual locality it buys.  The live list compacts in place —
    // no per-round rebuild.  Walks are independent, so per-lane
    // traversal (and therefore every result) is exactly the sequential
    // walkPacked's.
    const StepCtx ctx =
        makeStepCtx(graph_, params_, kernel_, cache, scratch);
    while (!order.empty()) {
        for (uint32_t l : order) {
            cache.prefetch(lanes[l].cur.state.node);
        }
        size_t write = 0;
        for (uint32_t l : order) {
            BatchLane& lane = lanes[l];
            if (++lane.explored > params_.maxWalkStates) {
                // Walk-state cap: the whole walk stops, exactly like the
                // sequential path (remaining branches discarded).
                finishWalk(lane.cur, lane.best);
                lane.done = true;
                continue;
            }
            if (stepNode(ctx, lane.cur, lane.query, lane.stack,
                         lane.best)) {
                if (lane.stack.empty()) {
                    lane.done = true;
                    continue;
                }
                lane.cur = std::move(lane.stack.back());
                lane.stack.pop_back();
            }
            order[write++] = l;
        }
        order.resize(write);
    }

    // Merge each seed's two walks and emit non-empty extensions in seed
    // order — the exact emission the sequential loop produces.
    for (size_t i = 0; i < count; ++i) {
        GaplessExtension ext =
            mergeWalks(seeds[chosen[i]], sequence.size(),
                       lanes[2 * i + 1].best, lanes[2 * i].best);
        if (ext.readEnd > ext.readBegin) {
            out.push_back(std::move(ext));
        }
    }
}

DirectionalWalk
Extender::walk(graph::Handle start, uint32_t offset, std::string_view query,
               gbwt::CachedGbwt& cache, ExtendScratch& scratch) const
{
    // Pack the ad-hoc query (tests, reference harnesses) into scratch and
    // run the packed walk — one kernel, no byte-path twin to keep in sync.
    const uint32_t len = static_cast<uint32_t>(query.size());
    scratch.walkQuery.assign(util::packedBufferWords(len), 0);
    util::packAsciiInto(query, scratch.walkQuery.data(), 0);
    return walkPacked(start, offset,
                      util::PackedSpan{scratch.walkQuery.data(), 0, len},
                      cache, scratch);
}

DirectionalWalk
Extender::walk(graph::Handle start, uint32_t offset, std::string_view query,
               gbwt::CachedGbwt& cache) const
{
    return walk(start, offset, query, cache, threadScratch());
}

GaplessExtension
Extender::mergeWalks(const Seed& seed, size_t sequence_size,
                     const DirectionalWalk& left,
                     const DirectionalWalk& right) const
{
    const graph::Position& pos = seed.position;
    const uint32_t read_offset = seed.readOffset;

    GaplessExtension ext;
    ext.onReverseRead = seed.onReverseRead;
    ext.readBegin = read_offset - left.consumed;
    ext.readEnd = read_offset + right.consumed;
    ext.score = left.score + right.score;

    // Mismatch offsets: left walk position j maps to read_offset - 1 - j.
    for (size_t i = left.mismatchOffsets.size(); i > 0; --i) {
        ext.mismatchOffsets.push_back(read_offset - 1 -
                                      left.mismatchOffsets[i - 1]);
    }
    for (uint32_t off : right.mismatchOffsets) {
        ext.mismatchOffsets.push_back(read_offset + off);
    }

    // Path: flipped left walk reversed, then the right walk; the seed node
    // appears in both when each consumed bases there.
    for (size_t i = left.path.size(); i > 0; --i) {
        ext.path.push_back(left.path[i - 1].flip());
    }
    if (!ext.path.empty() && !right.path.empty() &&
        ext.path.back() == right.path.front()) {
        ext.path.pop_back();
    }
    ext.path.insert(ext.path.end(), right.path.begin(), right.path.end());

    // Start offset within the first path node (forward coordinates).
    if (left.consumed > 0) {
        graph::Handle first = ext.path.front();
        uint32_t first_len =
            static_cast<uint32_t>(graph_.length(first.id()));
        // The left walk's final node is first.flip(); the walk consumed up
        // to flipped offset left.endOffset; mirror it to forward strand.
        ext.startOffset = first_len - left.endOffset;
    } else {
        ext.startOffset = pos.offset;
    }

    if (ext.readBegin == 0 && ext.readEnd == sequence_size) {
        ext.fullLength = true;
        ext.score += params_.fullLengthBonus;
    }
    return ext;
}

GaplessExtension
Extender::extendSeed(const Seed& seed, std::string_view sequence,
                     gbwt::CachedGbwt& cache, ExtendScratch& scratch) const
{
    const graph::Position& pos = seed.position;
    const uint32_t read_offset = seed.readOffset;
    MG_ASSERT(read_offset < sequence.size());
    const uint32_t node_len =
        static_cast<uint32_t>(graph_.length(pos.handle.id()));
    MG_ASSERT(pos.offset < node_len);

    // Pack the oriented read once (both strands); consecutive seeds of the
    // same read hit the (pointer, length) key and repack nothing.
    scratch.query.ensure(sequence);

    // Rightward: match the read suffix starting at the seed base itself.
    DirectionalWalk right =
        walkPacked(pos.handle, pos.offset, scratch.query.suffix(read_offset),
                   cache, scratch);

    // Leftward: match the reverse complement of the read prefix by walking
    // the flipped start node from the mirrored offset.  RC(prefix[0, r)) is
    // the suffix of RC(read) starting at len - r, so the packed RC words
    // computed at pack() time serve every seed with zero materialization.
    DirectionalWalk left =
        walkPacked(pos.handle.flip(), node_len - pos.offset,
                   scratch.query.rcPrefix(read_offset), cache, scratch);

    return mergeWalks(seed, sequence.size(), left, right);
}

GaplessExtension
Extender::extendSeed(const Seed& seed, std::string_view sequence,
                     gbwt::CachedGbwt& cache) const
{
    return extendSeed(seed, sequence, cache, threadScratch());
}

} // namespace mg::map
