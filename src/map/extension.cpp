#include "map/extension.h"

namespace mg::map {

bool
operator<(const GaplessExtension& a, const GaplessExtension& b)
{
    if (a.score != b.score) {
        return a.score > b.score; // best first
    }
    if (a.onReverseRead != b.onReverseRead) {
        return !a.onReverseRead && b.onReverseRead;
    }
    if (a.readBegin != b.readBegin) {
        return a.readBegin < b.readBegin;
    }
    if (a.readEnd != b.readEnd) {
        return a.readEnd < b.readEnd;
    }
    if (a.startOffset != b.startOffset) {
        return a.startOffset < b.startOffset;
    }
    if (a.path != b.path) {
        return a.path < b.path;
    }
    return a.mismatchOffsets < b.mismatchOffsets;
}

std::string
GaplessExtension::str() const
{
    std::string out;
    out += onReverseRead ? '-' : '+';
    out += ' ';
    out += std::to_string(readBegin) + ".." + std::to_string(readEnd);
    out += " @";
    for (graph::Handle step : path) {
        out += ' ';
        out += step.str();
    }
    out += ":" + std::to_string(startOffset);
    out += " mm[";
    for (size_t i = 0; i < mismatchOffsets.size(); ++i) {
        if (i > 0) {
            out += ',';
        }
        out += std::to_string(mismatchOffsets[i]);
    }
    out += "] score=" + std::to_string(score);
    if (fullLength) {
        out += " full";
    }
    return out;
}

} // namespace mg::map
