/**
 * @file
 * Haplotype-consistent gapless extension — Giraffe's single most expensive
 * kernel ("the function that extends the search from the seeds",
 * Section V).  From each seed the extender walks the variation graph in
 * both directions, comparing graph bases against read bases, following only
 * successors supported by at least one haplotype in the (cached) GBWT, and
 * allowing a small budget of mismatches.  The per-node GBWT record lookups
 * this walk performs are exactly the accesses the CachedGBWT exists to
 * serve.
 *
 * Hot-path memory overhaul: walk states keep their paths and mismatch
 * lists in SmallVector inline storage, and all growable buffers (DFS
 * stack, successor list, packed-query words) live in a caller-owned
 * ExtendScratch reused across seeds — the steady-state extend loop
 * performs zero heap allocations.
 *
 * Packed SWAR kernel: graph bases come from the 2-bit packed arena
 * (graph::SequenceStore::packedView) and the query is packed once per
 * read into ExtendScratch (forward + reverse complement, the latter via
 * word-wise bit tricks).  The inner match loop XORs 32-base words and
 * locates the first mismatch with countr_zero — identical mismatch
 * offsets, scores, and trimming as the byte loop (golden_kernel_test is
 * the oracle), at a quarter of the memory traffic and a fraction of the
 * compare instructions.  The left walk reads its reverse-complemented
 * prefix directly out of the packed RC words (the RC of a prefix is a
 * suffix of the RC), so no per-seed reverse complement is materialized.
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "gbwt/cached_gbwt.h"
#include "graph/variation_graph.h"
#include "map/extension.h"
#include "map/seed.h"
#include "resilience/budget.h"
#include "util/simd.h"
#include "util/small_vector.h"

namespace mg::map {

/** Extension knobs (paper-scale defaults). */
struct ExtendParams
{
    /** Mismatch budget per direction (Giraffe's default is 4 overall). */
    int maxMismatches = 4;
    /** Scoring: +match, -mismatch, plus a bonus for full-length mappings. */
    int matchScore = 1;
    int mismatchPenalty = 4;
    int fullLengthBonus = 5;
    /** Cap on simultaneously explored walk states per seed (safety). */
    size_t maxWalkStates = 64;
    /**
     * Follow only haplotype-supported successors (the GBWT-guided search
     * that defines Giraffe).  Disabling falls back to walking every graph
     * edge — the ablation showing why the haplotype constraint matters
     * (more states, more work, spurious recombinant alignments).
     */
    bool haplotypeConsistent = true;
    /**
     * Match-kernel variant for the inner compare loop.  Auto resolves to
     * the widest SIMD ISA the running CPU supports (AVX-512BW / AVX2 /
     * NEON) and degrades to the 64-bit SWAR loop when none is present.
     * Scalar and Swar force the bit-identical reference loops — A/B
     * baselines and property-test oracles, not production modes.  Every
     * variant produces identical walks (golden + kernel-matrix tests).
     */
    util::KernelVariant kernel = util::KernelVariant::Auto;
    /**
     * Advance a cluster's pending extensions in lockstep (extendSeedsBatch)
     * instead of one walk at a time, so frontier prefetches and GBWT
     * record accesses amortize across lanes.  Results are byte-identical
     * to the sequential path; the mapper spills to sequential walks when a
     * work budget or memory tracer is attached (their charge/trace order
     * is defined in terms of the sequential walk).
     */
    bool lockstep = true;
};

/** Result of extending in one direction. */
struct DirectionalWalk
{
    /** Query characters consumed (after trailing-mismatch trimming). */
    uint32_t consumed = 0;
    /** Query offsets of mismatches within the consumed prefix. */
    MismatchOffsets mismatchOffsets;
    /** Oriented nodes entered, in walk order (may be empty). */
    ExtensionPath path;
    /** Accumulated score of the consumed prefix. */
    int32_t score = 0;
    /** Offset just past the last consumed base within path.back(). */
    uint32_t endOffset = 0;
};

namespace detail {

/** One in-flight walk state of the DFS over haplotype-supported branches.
 *  Inline-storage members make branch copies plain memcpys. */
struct WalkState
{
    gbwt::SearchState state;       // haplotype range at the current node
    uint32_t nodeOffset = 0;       // next base to compare within the node
    uint32_t queryPos = 0;         // next query character to compare
    int mismatches = 0;
    int32_t score = 0;
    ExtensionPath path;
    MismatchOffsets mismatchOffsets;
    // Snapshot at the maximum-score prefix end (always a matching base),
    // used to trim the walk to its best local alignment when it stops.
    uint32_t bestQueryPos = 0;
    uint32_t bestEndOffset = 0;
    int32_t bestScore = 0;
    size_t bestMismatches = 0;
    size_t bestPathLen = 0;
};

/**
 * One lane of a lockstep batch: a full directional walk (its own DFS
 * stack, best-so-far prefix, and explored count) advanced one node per
 * round.  Lane 2i is seed i's right walk, lane 2i+1 its left walk.
 * Buffers persist inside ExtendScratch, so a warm batch allocates nothing.
 */
struct BatchLane
{
    std::vector<WalkState> stack; // this lane's DFS worklist
    WalkState cur;                // the state being advanced
    DirectionalWalk best;         // best finished prefix so far
    util::PackedSpan query;       // this direction's packed query view
    size_t explored = 0;          // walk states visited (cap accounting)
    bool done = false;            // walk finished; best is final
};

} // namespace detail

/**
 * The query of one read, packed 2 bits/base in both orientations.  The
 * right walk reads the forward words from the seed offset; the left walk
 * reads the reverse-complemented prefix as a suffix of the RC words.
 * pack() canonicalizes ambiguous letters to 'A' (util/dna.h policy).
 *
 * ensure() keys on (data pointer, length) so consecutive seeds of the
 * same oriented read repack nothing; callers that rewrite a reused buffer
 * in place must call invalidate() (MapperState does, per read).
 */
struct PackedQuery
{
    std::vector<uint64_t> fwd; // packed oriented read + pad word
    std::vector<uint64_t> rc;  // packed reverse complement + pad word
    uint32_t size = 0;

    void pack(std::string_view oriented);

    void
    ensure(std::string_view oriented)
    {
        if (oriented.data() != keyData_ || oriented.size() != keyLen_) {
            pack(oriented);
        }
    }

    void
    invalidate()
    {
        keyData_ = nullptr;
        keyLen_ = 0;
    }

    /** Query suffix [from, size) — the right walk's view. */
    util::PackedSpan
    suffix(uint32_t from) const
    {
        return util::PackedSpan{fwd.data(), from, size - from};
    }

    /** RC of the prefix [0, len) — the left walk's view. */
    util::PackedSpan
    rcPrefix(uint32_t len) const
    {
        return util::PackedSpan{rc.data(), size - len, len};
    }

  private:
    const char* keyData_ = nullptr;
    size_t keyLen_ = 0;
};

/**
 * Reusable buffers for the extension kernel, owned by the caller (one per
 * worker thread, typically inside MapperState).  After the first few seeds
 * every capacity has reached its high-water mark and extension allocates
 * nothing.
 */
struct ExtendScratch
{
    std::vector<detail::WalkState> stack;      // DFS worklist
    std::vector<gbwt::SearchState> successors; // per-node branch buffer
    PackedQuery query;                         // per-read packed query
    std::vector<uint64_t> walkQuery;           // string walk() overload
    std::vector<detail::BatchLane> lanes;      // lockstep batch lanes
    std::vector<uint32_t> laneOrder;           // per-round frontier order
    /** 32-base SWAR chunks XORed (bench: words compared per extension). */
    uint64_t wordsCompared = 0;
    /**
     * Optional work budget charged per walk state and GBWT lookup.  When
     * set and exhausted, walks stop at the next state boundary and return
     * their best-so-far prefix (never torn mid-node).  Null disables all
     * budget accounting (the default for tests and tools).
     */
    resilience::ReadBudget* budget = nullptr;
};

/**
 * Stateless extension routines; all mutable state (the GBWT cache, the
 * scratch buffers) is owned by the caller, one per worker thread.
 */
class Extender
{
  public:
    Extender(const graph::VariationGraph& graph, ExtendParams params)
        : graph_(graph), params_(params),
          kernel_(util::resolveKernel(params.kernel))
    {}

    const ExtendParams& params() const { return params_; }

    /** The match kernel this extender resolved at construction (what
     *  actually runs: Auto never appears as `effective`). */
    const util::ResolvedKernel& kernel() const { return kernel_; }

    /**
     * Extend one seed against the (oriented) read sequence.  `sequence`
     * must already be the reverse complement when seed.onReverseRead is
     * set; seeding produced the seed against exactly that string.
     */
    GaplessExtension extendSeed(const Seed& seed, std::string_view sequence,
                                gbwt::CachedGbwt& cache,
                                ExtendScratch& scratch) const;

    /**
     * Lockstep batch mode: extend `count` seeds (indices into `seeds`) of
     * one oriented read together.  All 2*count directional walks advance
     * one node per round, lanes visited in frontier-record order with the
     * next round's records prefetched at the round boundary, so GBWT
     * accesses to a shared region amortize across lanes.  Appends the
     * non-empty extensions to `out` in seed order — byte-identical to
     * calling extendSeed per seed and appending non-empty results.
     *
     * Walks are mutually independent (the GBWT cache only memoizes), so
     * the interleaving cannot change any lane's result; callers that
     * attach an *active* work budget or a memory tracer must use the
     * sequential path instead, because those observe walk order.
     */
    void extendSeedsBatch(const SeedVector& seeds, const uint32_t* chosen,
                          size_t count, std::string_view sequence,
                          gbwt::CachedGbwt& cache, ExtendScratch& scratch,
                          std::vector<GaplessExtension>& out) const;

    /** Convenience overload using a per-thread scratch (tests, tools). */
    GaplessExtension extendSeed(const Seed& seed, std::string_view sequence,
                                gbwt::CachedGbwt& cache) const;

    /**
     * Core walk: match `query` (left to right) against graph bases starting
     * at `offset` within oriented node `start`, following only
     * haplotype-supported edges.  Packs the query into scratch first;
     * exposed for unit testing.
     */
    DirectionalWalk walk(graph::Handle start, uint32_t offset,
                         std::string_view query, gbwt::CachedGbwt& cache,
                         ExtendScratch& scratch) const;

    /**
     * The packed walk the mapping loop runs: `query` is a span of already
     * packed 2-bit codes (a view into ExtendScratch::query).
     */
    DirectionalWalk walkPacked(graph::Handle start, uint32_t offset,
                               util::PackedSpan query,
                               gbwt::CachedGbwt& cache,
                               ExtendScratch& scratch) const;

    /** Convenience overload using a per-thread scratch (tests, tools). */
    DirectionalWalk walk(graph::Handle start, uint32_t offset,
                         std::string_view query,
                         gbwt::CachedGbwt& cache) const;

  private:
    /** Merge one seed's two directional walks into a GaplessExtension
     *  (mismatch mapping, path stitch, start offset, full-length bonus). */
    GaplessExtension mergeWalks(const Seed& seed, size_t sequence_size,
                                const DirectionalWalk& left,
                                const DirectionalWalk& right) const;

    const graph::VariationGraph& graph_;
    ExtendParams params_;
    util::ResolvedKernel kernel_;
};

} // namespace mg::map
