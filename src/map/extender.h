/**
 * @file
 * Haplotype-consistent gapless extension — Giraffe's single most expensive
 * kernel ("the function that extends the search from the seeds",
 * Section V).  From each seed the extender walks the variation graph in
 * both directions, comparing graph bases against read bases, following only
 * successors supported by at least one haplotype in the (cached) GBWT, and
 * allowing a small budget of mismatches.  The per-node GBWT record lookups
 * this walk performs are exactly the accesses the CachedGBWT exists to
 * serve.
 */
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "gbwt/cached_gbwt.h"
#include "graph/variation_graph.h"
#include "map/extension.h"
#include "map/seed.h"

namespace mg::map {

/** Extension knobs (paper-scale defaults). */
struct ExtendParams
{
    /** Mismatch budget per direction (Giraffe's default is 4 overall). */
    int maxMismatches = 4;
    /** Scoring: +match, -mismatch, plus a bonus for full-length mappings. */
    int matchScore = 1;
    int mismatchPenalty = 4;
    int fullLengthBonus = 5;
    /** Cap on simultaneously explored walk states per seed (safety). */
    size_t maxWalkStates = 64;
    /**
     * Follow only haplotype-supported successors (the GBWT-guided search
     * that defines Giraffe).  Disabling falls back to walking every graph
     * edge — the ablation showing why the haplotype constraint matters
     * (more states, more work, spurious recombinant alignments).
     */
    bool haplotypeConsistent = true;
};

/** Result of extending in one direction. */
struct DirectionalWalk
{
    /** Query characters consumed (after trailing-mismatch trimming). */
    uint32_t consumed = 0;
    /** Query offsets of mismatches within the consumed prefix. */
    std::vector<uint32_t> mismatchOffsets;
    /** Oriented nodes entered, in walk order (may be empty). */
    std::vector<graph::Handle> path;
    /** Accumulated score of the consumed prefix. */
    int32_t score = 0;
    /** Offset just past the last consumed base within path.back(). */
    uint32_t endOffset = 0;
};

/**
 * Stateless extension routines; all mutable state (the GBWT cache) is
 * owned by the caller, one per worker thread.
 */
class Extender
{
  public:
    Extender(const graph::VariationGraph& graph, ExtendParams params)
        : graph_(graph), params_(params)
    {}

    const ExtendParams& params() const { return params_; }

    /**
     * Extend one seed against the (oriented) read sequence.  `sequence`
     * must already be the reverse complement when seed.onReverseRead is
     * set; seeding produced the seed against exactly that string.
     */
    GaplessExtension extendSeed(const Seed& seed, std::string_view sequence,
                                gbwt::CachedGbwt& cache) const;

    /**
     * Core walk: match `query` (left to right) against graph bases starting
     * at `offset` within oriented node `start`, following only
     * haplotype-supported edges.  Exposed for unit testing.
     */
    DirectionalWalk walk(graph::Handle start, uint32_t offset,
                         std::string_view query,
                         gbwt::CachedGbwt& cache) const;

  private:
    const graph::VariationGraph& graph_;
    ExtendParams params_;
};

} // namespace mg::map
