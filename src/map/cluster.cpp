#include "map/cluster.h"

#include <algorithm>
#include <cmath>

namespace mg::map {

namespace {

struct Keyed
{
    int64_t key;       // chain coordinate adjusted by read offset
    int64_t coord;     // raw chain coordinate of the seed position
    uint32_t seed;     // index into the seed vector
    uint32_t readOff;  // read offset (for coverage/score dedup)
    float score;
};

/**
 * Per-thread reusable buffers.  clusterSeeds runs once per read on the
 * mapping hot path; group membership is always a contiguous range of a
 * sorted array, so the stages below pass (pointer, count) spans and the
 * only per-call heap traffic left is growth of the output vector itself.
 */
struct ClusterScratch
{
    std::vector<Keyed> forward;
    std::vector<Keyed> reverse;
    std::vector<Keyed> ordered;
    std::vector<Keyed> byOffset;
};

ClusterScratch&
scratch()
{
    static thread_local ClusterScratch s;
    return s;
}

/** Score one finished cluster and append it to the output. */
void
emitCluster(const Keyed* members, size_t count, bool on_reverse,
            std::vector<Cluster>& out)
{
    Cluster cluster;
    cluster.onReverseRead = on_reverse;
    // Score counts each distinct read offset once: many graph placements
    // of one minimizer are one piece of evidence.  Gather in read-offset
    // order for the dedup.
    std::vector<Keyed>& by_offset = scratch().byOffset;
    by_offset.assign(members, members + count);
    std::sort(by_offset.begin(), by_offset.end(),
              [](const Keyed& a, const Keyed& b) {
                  if (a.readOff != b.readOff) {
                      return a.readOff < b.readOff;
                  }
                  return a.seed < b.seed;
              });
    uint32_t last_offset = UINT32_MAX;
    for (const Keyed& member : by_offset) {
        cluster.seedIndices.push_back(member.seed);
        if (member.readOff != last_offset) {
            cluster.score += member.score;
            ++cluster.coverage;
            last_offset = member.readOff;
        }
    }
    out.push_back(std::move(cluster));
}

/**
 * Stage 2: split a key-proximate group wherever adjacent seeds are not
 * actually co-reachable in the graph at (approximately) the distance
 * their coordinates imply.  These bounded Dijkstra queries are the
 * distance-index traversals that make cluster_seeds expensive in the
 * parent application.
 */
void
refineAndEmit(const graph::VariationGraph& graph,
              const index::DistanceIndex& distance,
              const SeedVector& seeds, const Keyed* group, size_t count,
              bool on_reverse, const ClusterParams& params,
              std::vector<Cluster>& out, util::MemTracer* tracer)
{
    if (!params.exactRefinement || count < 2) {
        emitCluster(group, count, on_reverse, out);
        return;
    }
    // Verify adjacency in raw-coordinate order.  Segments of consistent
    // neighbours are contiguous ranges of the sorted scratch array, so
    // each split emits a (pointer, count) slice directly.
    std::vector<Keyed>& ordered = scratch().ordered;
    ordered.assign(group, group + count);
    std::sort(ordered.begin(), ordered.end(),
              [](const Keyed& a, const Keyed& b) {
                  if (a.coord != b.coord) {
                      return a.coord < b.coord;
                  }
                  return a.seed < b.seed;
              });
    size_t segment_begin = 0;
    for (size_t i = 1; i < ordered.size(); ++i) {
        const Keyed& prev = ordered[i - 1];
        const Keyed& next = ordered[i];
        const graph::Position& from = seeds[prev.seed].position;
        const graph::Position& to = seeds[next.seed].position;
        int64_t expected = next.coord - prev.coord;
        bool consistent = true;
        if (!(from == to)) {
            util::traceWork(tracer, 64);
            int64_t exact = distance.minDistance(
                graph, from, to, expected + params.exactDistanceCap);
            consistent = exact != index::kUnreachable &&
                         std::llabs(exact - expected) <=
                             params.distanceLimit;
        }
        if (!consistent) {
            emitCluster(ordered.data() + segment_begin, i - segment_begin,
                        on_reverse, out);
            segment_begin = i;
        }
    }
    emitCluster(ordered.data() + segment_begin,
                ordered.size() - segment_begin, on_reverse, out);
}

void
sweepOrientation(const graph::VariationGraph& graph,
                 const index::DistanceIndex& distance,
                 const SeedVector& seeds, std::vector<Keyed>& keyed,
                 bool on_reverse, const ClusterParams& params,
                 std::vector<Cluster>& out, util::MemTracer* tracer)
{
    if (keyed.empty()) {
        return;
    }
    std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
        if (a.key != b.key) {
            return a.key < b.key;
        }
        return a.seed < b.seed;
    });
    util::traceAccess(tracer, keyed.data(),
                      static_cast<uint32_t>(keyed.size() * sizeof(Keyed)));
    util::traceWork(tracer, keyed.size() * 8);

    size_t begin = 0;
    for (size_t i = 1; i <= keyed.size(); ++i) {
        bool split = i == keyed.size() ||
                     keyed[i].key - keyed[i - 1].key > params.distanceLimit;
        if (!split) {
            continue;
        }
        refineAndEmit(graph, distance, seeds, keyed.data() + begin,
                      i - begin, on_reverse, params, out, tracer);
        begin = i;
    }
}

} // namespace

void
clusterSeedsInto(const graph::VariationGraph& graph,
                 const index::DistanceIndex& distance,
                 const SeedVector& seeds, const ClusterParams& params,
                 std::vector<Cluster>& out, util::MemTracer* tracer)
{
    out.clear();
    std::vector<Keyed>& forward = scratch().forward;
    std::vector<Keyed>& reverse = scratch().reverse;
    forward.clear();
    reverse.clear();
    for (uint32_t i = 0; i < seeds.size(); ++i) {
        const Seed& seed = seeds[i];
        util::traceAccess(tracer, &seed, sizeof(Seed));
        Keyed keyed;
        keyed.coord = distance.chainCoordinate(seed.position);
        keyed.key = keyed.coord - static_cast<int64_t>(seed.readOffset);
        keyed.seed = i;
        keyed.readOff = seed.readOffset;
        keyed.score = seed.score;
        (seed.onReverseRead ? reverse : forward).push_back(keyed);
    }

    sweepOrientation(graph, distance, seeds, forward, false, params, out,
                     tracer);
    sweepOrientation(graph, distance, seeds, reverse, true, params, out,
                     tracer);
    std::sort(out.begin(), out.end(),
              [](const Cluster& a, const Cluster& b) {
                  if (a.score != b.score) {
                      return a.score > b.score;
                  }
                  if (a.onReverseRead != b.onReverseRead) {
                      return !a.onReverseRead;
                  }
                  return a.seedIndices < b.seedIndices;
              });
}

std::vector<Cluster>
clusterSeeds(const graph::VariationGraph& graph,
             const index::DistanceIndex& distance, const SeedVector& seeds,
             const ClusterParams& params, util::MemTracer* tracer)
{
    std::vector<Cluster> clusters;
    clusterSeedsInto(graph, distance, seeds, params, clusters, tracer);
    return clusters;
}

} // namespace mg::map
