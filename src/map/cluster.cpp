#include "map/cluster.h"

#include <algorithm>
#include <cmath>

namespace mg::map {

namespace {

struct Keyed
{
    int64_t key;       // chain coordinate adjusted by read offset
    int64_t coord;     // raw chain coordinate of the seed position
    uint32_t seed;     // index into the seed vector
    uint32_t readOff;  // read offset (for coverage/score dedup)
    float score;
};

/** Score one finished cluster and append it to the output. */
void
emitCluster(const std::vector<Keyed>& members, bool on_reverse,
            std::vector<Cluster>& out)
{
    Cluster cluster;
    cluster.onReverseRead = on_reverse;
    // Score counts each distinct read offset once: many graph placements
    // of one minimizer are one piece of evidence.  Gather in read-offset
    // order for the dedup.
    std::vector<Keyed> by_offset = members;
    std::sort(by_offset.begin(), by_offset.end(),
              [](const Keyed& a, const Keyed& b) {
                  if (a.readOff != b.readOff) {
                      return a.readOff < b.readOff;
                  }
                  return a.seed < b.seed;
              });
    uint32_t last_offset = UINT32_MAX;
    for (const Keyed& member : by_offset) {
        cluster.seedIndices.push_back(member.seed);
        if (member.readOff != last_offset) {
            cluster.score += member.score;
            ++cluster.coverage;
            last_offset = member.readOff;
        }
    }
    out.push_back(std::move(cluster));
}

/**
 * Stage 2: split a key-proximate group wherever adjacent seeds are not
 * actually co-reachable in the graph at (approximately) the distance
 * their coordinates imply.  These bounded Dijkstra queries are the
 * distance-index traversals that make cluster_seeds expensive in the
 * parent application.
 */
void
refineAndEmit(const graph::VariationGraph& graph,
              const index::DistanceIndex& distance,
              const SeedVector& seeds,
              const std::vector<Keyed>& group, bool on_reverse,
              const ClusterParams& params, std::vector<Cluster>& out,
              util::MemTracer* tracer)
{
    if (!params.exactRefinement || group.size() < 2) {
        emitCluster(group, on_reverse, out);
        return;
    }
    // Verify adjacency in raw-coordinate order.
    std::vector<Keyed> ordered = group;
    std::sort(ordered.begin(), ordered.end(),
              [](const Keyed& a, const Keyed& b) {
                  if (a.coord != b.coord) {
                      return a.coord < b.coord;
                  }
                  return a.seed < b.seed;
              });
    std::vector<Keyed> segment = {ordered.front()};
    for (size_t i = 1; i < ordered.size(); ++i) {
        const Keyed& prev = ordered[i - 1];
        const Keyed& next = ordered[i];
        const graph::Position& from = seeds[prev.seed].position;
        const graph::Position& to = seeds[next.seed].position;
        int64_t expected = next.coord - prev.coord;
        bool consistent = true;
        if (!(from == to)) {
            util::traceWork(tracer, 64);
            int64_t exact = distance.minDistance(
                graph, from, to, expected + params.exactDistanceCap);
            consistent = exact != index::kUnreachable &&
                         std::llabs(exact - expected) <=
                             params.distanceLimit;
        }
        if (!consistent) {
            emitCluster(segment, on_reverse, out);
            segment.clear();
        }
        segment.push_back(next);
    }
    emitCluster(segment, on_reverse, out);
}

void
sweepOrientation(const graph::VariationGraph& graph,
                 const index::DistanceIndex& distance,
                 const SeedVector& seeds, std::vector<Keyed>& keyed,
                 bool on_reverse, const ClusterParams& params,
                 std::vector<Cluster>& out, util::MemTracer* tracer)
{
    if (keyed.empty()) {
        return;
    }
    std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
        if (a.key != b.key) {
            return a.key < b.key;
        }
        return a.seed < b.seed;
    });
    util::traceAccess(tracer, keyed.data(),
                      static_cast<uint32_t>(keyed.size() * sizeof(Keyed)));
    util::traceWork(tracer, keyed.size() * 8);

    size_t begin = 0;
    for (size_t i = 1; i <= keyed.size(); ++i) {
        bool split = i == keyed.size() ||
                     keyed[i].key - keyed[i - 1].key > params.distanceLimit;
        if (!split) {
            continue;
        }
        std::vector<Keyed> group(keyed.begin() + begin, keyed.begin() + i);
        refineAndEmit(graph, distance, seeds, group, on_reverse, params,
                      out, tracer);
        begin = i;
    }
}

} // namespace

std::vector<Cluster>
clusterSeeds(const graph::VariationGraph& graph,
             const index::DistanceIndex& distance, const SeedVector& seeds,
             const ClusterParams& params, util::MemTracer* tracer)
{
    std::vector<Keyed> forward;
    std::vector<Keyed> reverse;
    for (uint32_t i = 0; i < seeds.size(); ++i) {
        const Seed& seed = seeds[i];
        util::traceAccess(tracer, &seed, sizeof(Seed));
        Keyed keyed;
        keyed.coord = distance.chainCoordinate(seed.position);
        keyed.key = keyed.coord - static_cast<int64_t>(seed.readOffset);
        keyed.seed = i;
        keyed.readOff = seed.readOffset;
        keyed.score = seed.score;
        (seed.onReverseRead ? reverse : forward).push_back(keyed);
    }

    std::vector<Cluster> clusters;
    sweepOrientation(graph, distance, seeds, forward, false, params,
                     clusters, tracer);
    sweepOrientation(graph, distance, seeds, reverse, true, params,
                     clusters, tracer);
    std::sort(clusters.begin(), clusters.end(),
              [](const Cluster& a, const Cluster& b) {
                  if (a.score != b.score) {
                      return a.score > b.score;
                  }
                  if (a.onReverseRead != b.onReverseRead) {
                      return !a.onReverseRead;
                  }
                  return a.seedIndices < b.seedIndices;
              });
    return clusters;
}

} // namespace mg::map
