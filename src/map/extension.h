/**
 * @file
 * Gapless extensions: the raw mapping results.  An extension is a maximal
 * gapless local alignment of a read interval against a haplotype-supported
 * walk of the graph, with up to a budget of mismatches (Section IV-B).
 * miniGiraffe's output is exactly these extensions — "the offsets and
 * scores of each match" — which is also what the functional validation
 * compares between proxy and parent (Section VI).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/handle.h"
#include "resilience/budget.h"
#include "util/small_vector.h"

namespace mg::map {

/** Inline path capacity: a 150 bp read over bubble-chain nodes of 1-32 bp
 *  crosses a dozen-odd nodes; 16 keeps nearly every extension heap-free. */
using ExtensionPath = util::SmallVector<graph::Handle, 16>;
/** Mismatch budget is 4 per direction, so 8 covers every extension. */
using MismatchOffsets = util::SmallVector<uint32_t, 8>;

/** One gapless extension of one seed. */
struct GaplessExtension
{
    /** Oriented nodes walked, in read order. */
    ExtensionPath path;
    /** Offset in path.front() where the alignment starts. */
    uint32_t startOffset = 0;
    /** Read interval [readBegin, readEnd) covered by the alignment. */
    uint32_t readBegin = 0;
    uint32_t readEnd = 0;
    /** Read offsets of mismatching bases, ascending. */
    MismatchOffsets mismatchOffsets;
    /** Alignment score (matches * match - mismatches * penalty + bonus). */
    int32_t score = 0;
    /** True if the extension was computed on the reverse-complement read. */
    bool onReverseRead = false;
    /** True if the whole read is covered. */
    bool fullLength = false;

    uint32_t length() const { return readEnd - readBegin; }
    uint32_t
    matches() const
    {
        return length() - static_cast<uint32_t>(mismatchOffsets.size());
    }

    /**
     * Canonical identity for validation and dedup: two extensions are the
     * same mapping iff orientation, read interval, start position, and walk
     * coincide.
     */
    friend bool
    operator==(const GaplessExtension& a, const GaplessExtension& b)
    {
        return a.onReverseRead == b.onReverseRead &&
               a.readBegin == b.readBegin && a.readEnd == b.readEnd &&
               a.startOffset == b.startOffset && a.path == b.path &&
               a.mismatchOffsets == b.mismatchOffsets;
    }

    /** Deterministic ordering: best score first, then canonical identity. */
    friend bool operator<(const GaplessExtension& a,
                          const GaplessExtension& b);

    /** Compact textual form used by output files and validation dumps. */
    std::string str() const;
};

/** The proxy's per-read output: extensions for the winning candidates. */
struct MapResult
{
    std::vector<GaplessExtension> extensions;
    /** Number of clusters formed / processed (observability for tests). */
    uint32_t clustersFormed = 0;
    uint32_t clustersProcessed = 0;
    /** Funnel telemetry: extendSeed calls made / cut short by the
     *  budget before the seed loop finished. */
    uint32_t extensionsAttempted = 0;
    uint32_t extensionsAborted = 0;
    /** Chosen seeds the score prefilter killed before extension started
     *  (counted instead of, not in addition to, attempted). */
    uint32_t extensionsPrefiltered = 0;
    /**
     * Why the read's mapping was cut short (None when it ran to
     * completion).  A degraded read still carries its best-so-far
     * extensions; downstream output tags it (GAF dg:Z:<reason>).
     */
    resilience::CancelReason degraded = resilience::CancelReason::None;
};

} // namespace mg::map
