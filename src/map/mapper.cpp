#include "map/mapper.h"

#include <algorithm>

#include "fault/fault.h"
#include "util/common.h"
#include "util/dna.h"
#include "util/timer.h"

namespace mg::map {

Mapper::Mapper(const graph::VariationGraph& graph, const gbwt::Gbwt& gbwt,
               const index::MinimizerIndex& minimizers,
               const index::DistanceIndex& distance, MapperParams params)
    : graph_(graph), gbwt_(gbwt), minimizers_(minimizers),
      distance_(distance), params_(params), extender_(graph, params.extend)
{}

void
Mapper::bindProfiler(perf::Profiler& profiler)
{
    regionFindSeeds_ = profiler.regionId(perf::regions::kFindSeeds);
    regionCluster_ = profiler.regionId(perf::regions::kClusterSeeds);
    regionProcess_ =
        profiler.regionId(perf::regions::kProcessUntilThresholdC);
    regionExtend_ = profiler.regionId(perf::regions::kExtend);
    profilerBound_ = true;
}

MapResult
Mapper::mapRead(const Read& read, MapperState& state) const
{
    SeedVector seeds;
    {
        const uint64_t seed_start =
            state.stageTrace != nullptr ? util::nowNanos() : 0;
        perf::ScopedRegion region(state.log, regionFindSeeds_);
        seeds = findSeeds(minimizers_, read, params_.seeding, state.tracer);
        if (state.stageTrace != nullptr) {
            state.stageTrace->add(obs::SpanStage::Seed,
                                  util::nowNanos() - seed_start);
        }
    }
    return mapFromSeeds(read, seeds, state);
}

MapResult
Mapper::mapFromSeeds(const Read& read, const SeedVector& seeds,
                     MapperState& state) const
{
    // Fault point: a single read poisoning its mapping task.
    fault::inject("map.read");

    const uint64_t start_nanos = util::nowNanos();
    MapResult result;
    // Fresh per-read CachedGBWT, as Giraffe's extender constructs one per
    // mapping task; its initialization is part of the read's cost.
    state.freshCache();
    state.budget.beginRead();
    // The packed-query cache keys on (pointer, length); reverseSeq is a
    // reused buffer, so a new read can alias the previous read's key with
    // different contents.  Force a repack on first use.
    state.extendScratch.query.invalidate();
    std::vector<Cluster>& clusters = state.clusters;
    if (state.flight != nullptr) {
        state.flight->stage(obs::ReadStage::Cluster);
    }
    {
        const uint64_t cluster_start =
            state.stageTrace != nullptr ? util::nowNanos() : 0;
        perf::ScopedRegion region(state.log, regionCluster_);
        clusterSeedsInto(graph_, distance_, seeds, params_.cluster,
                         clusters, state.tracer);
        if (state.stageTrace != nullptr) {
            state.stageTrace->add(obs::SpanStage::Cluster,
                                  util::nowNanos() - cluster_start);
        }
    }
    result.clustersFormed = static_cast<uint32_t>(clusters.size());
    if (state.flight != nullptr) {
        state.flight->stage(obs::ReadStage::Process);
    }
    {
        const uint64_t extend_start =
            state.stageTrace != nullptr ? util::nowNanos() : 0;
        perf::ScopedRegion region(state.log, regionProcess_);
        processUntilThresholdC(read, seeds, clusters, state, result);
        if (state.stageTrace != nullptr) {
            state.stageTrace->add(obs::SpanStage::Extend,
                                  util::nowNanos() - extend_start);
        }
    }
    result.degraded = state.budget.reason();
    state.resilience.countDegraded(result.degraded);
    const uint64_t elapsed = util::nowNanos() - start_nanos;
    state.resilience.latency.record(elapsed);
    if (state.metrics != nullptr) {
        MapperState::PendingFunnel& p = state.pending;
        ++p.reads;
        p.seeds += seeds.size();
        p.clustersFormed += result.clustersFormed;
        p.clustersProcessed += result.clustersProcessed;
        p.extensionsAttempted += result.extensionsAttempted;
        p.extensionsAborted += result.extensionsAborted;
        p.extensionsPrefiltered += result.extensionsPrefiltered;
        p.extensionsEmitted += result.extensions.size();
        switch (result.degraded) {
        case resilience::CancelReason::None: break;
        case resilience::CancelReason::Deadline: ++p.degradedDeadline; break;
        case resilience::CancelReason::StepCap: ++p.degradedStepCap; break;
        case resilience::CancelReason::LookupCap:
            ++p.degradedLookupCap;
            break;
        case resilience::CancelReason::Watchdog:
            ++p.degradedWatchdog;
            break;
        }
        p.readLatency.record(elapsed);
    }
    return result;
}

void
Mapper::processUntilThresholdC(const Read& read, const SeedVector& seeds,
                               const std::vector<Cluster>& clusters,
                               MapperState& state, MapResult& result) const
{
    if (clusters.empty()) {
        return;
    }
    const double best_score = clusters.front().score;
    const double cutoff = best_score * params_.clusterScoreFraction;
    std::vector<GaplessExtension>& candidates = state.extensionBuffer;
    candidates.clear();
    // The reverse complement is computed once per read into the state's
    // reusable buffer; both orientations' extensions compare against their
    // own oriented sequence.
    bool reverse_ready = false;

    for (size_t c = 0; c < clusters.size(); ++c) {
        const Cluster& cluster = clusters[c];
        // process_until_threshold_c: floor of minClusters, ceiling of
        // maxClusters, and a relative score cutoff in between.
        if (c >= params_.maxClusters) {
            break;
        }
        if (c >= params_.minClusters && cluster.score < cutoff) {
            break;
        }
        // Cancellation point between clusters: a degraded read keeps the
        // extensions it already produced and skips the rest.
        if (state.budget.exhausted()) {
            break;
        }
        ++result.clustersProcessed;

        std::string_view oriented = read.sequence;
        if (cluster.onReverseRead) {
            if (!reverse_ready) {
                util::reverseComplementInto(read.sequence,
                                            state.reverseSeq);
                reverse_ready = true;
            }
            oriented = state.reverseSeq;
        }

        // Pick the strongest seeds of the cluster, one per read offset.
        // Both index buffers live in MapperState and keep their capacity
        // across clusters and reads.
        std::vector<uint32_t>& chosen = state.chosenSeeds;
        chosen.clear();
        {
            std::vector<uint32_t>& sorted = state.sortedSeeds;
            sorted.assign(cluster.seedIndices.begin(),
                          cluster.seedIndices.end());
            std::sort(sorted.begin(), sorted.end(),
                      [&](uint32_t a, uint32_t b) {
                          if (seeds[a].score != seeds[b].score) {
                              return seeds[a].score > seeds[b].score;
                          }
                          return a < b;
                      });
            uint32_t last_offset = UINT32_MAX;
            for (uint32_t idx : sorted) {
                if (seeds[idx].readOffset == last_offset) {
                    continue;
                }
                chosen.push_back(idx);
                last_offset = seeds[idx].readOffset;
                if (chosen.size() >= params_.maxSeedsPerCluster) {
                    break;
                }
            }
        }

        // Score prefilter: chosen is sorted best-first, so a single scan
        // from the back trims the hopeless tail before any walk starts.
        if (params_.prefilterFraction > 0.0 && !chosen.empty()) {
            const double floor =
                seeds[chosen.front()].score * params_.prefilterFraction;
            while (!chosen.empty() &&
                   seeds[chosen.back()].score < floor) {
                chosen.pop_back();
                ++result.extensionsPrefiltered;
            }
        }

        if (state.flight != nullptr) {
            state.flight->stage(obs::ReadStage::Extend);
        }
        perf::ScopedRegion region(state.log, regionExtend_);
        // Lockstep batch path: all of the cluster's walks advance together
        // so their GBWT record accesses amortize.  Byte-identical to the
        // sequential loop below, but the budget's charge order and the
        // tracer's access order are defined by sequential walks — spill
        // whenever either observer is attached.
        if (extender_.params().lockstep && !state.budget.active() &&
            state.cache().tracer() == nullptr) {
            result.extensionsAttempted +=
                static_cast<uint32_t>(chosen.size());
            extender_.extendSeedsBatch(seeds, chosen.data(), chosen.size(),
                                       oriented, state.cache(),
                                       state.extendScratch, candidates);
            continue;
        }
        for (uint32_t idx : chosen) {
            // Cancellation point between seeds of a cluster.
            if (state.budget.exhausted()) {
                break;
            }
            ++result.extensionsAttempted;
            GaplessExtension ext =
                extender_.extendSeed(seeds[idx], oriented, state.cache(),
                                     state.extendScratch);
            // An extension that left the budget exhausted was (at least
            // potentially) trimmed at a cancellation point mid-walk.
            if (state.budget.exhausted()) {
                ++result.extensionsAborted;
            }
            if (ext.readEnd > ext.readBegin) {
                candidates.push_back(std::move(ext));
            }
        }
    }

    // Deduplicate identical extensions found from different seeds, keep
    // the best-scoring ones, deterministic order; only the survivors are
    // copied into the returned result.
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    if (candidates.size() > params_.maxExtensions) {
        candidates.resize(params_.maxExtensions);
    }
    result.extensions.reserve(candidates.size());
    for (GaplessExtension& ext : candidates) {
        result.extensions.push_back(std::move(ext));
    }
}

} // namespace mg::map
