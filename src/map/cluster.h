/**
 * @file
 * cluster_seeds — the second most expensive region of Giraffe's mapping
 * (11-21% of runtime, Section IV-A).  Seeds whose graph positions are
 * consistent with a single placement of the read are grouped into clusters
 * and scored; high-scoring clusters are the inputs of
 * process_until_threshold_c (map/mapper.h).
 *
 * Clustering proceeds in two stages, mirroring the structure (and the
 * cost profile) of Giraffe's distance-index clusterer:
 *  1. a sorted single-linkage sweep over read-offset-adjusted chain
 *     coordinates — a seed at read offset r placed at coordinate c implies
 *     the read start sits near (c - r), so co-placed seeds share that key;
 *  2. an exact-distance refinement: adjacent seeds of a tentative cluster
 *     are verified with bounded minimum-distance queries against the
 *     graph (the expensive distance-index traversals of the real
 *     clusterer), splitting groups whose members are not actually
 *     co-reachable at the expected distance.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "graph/variation_graph.h"
#include "index/distance.h"
#include "map/seed.h"
#include "util/mem_tracer.h"
#include "util/small_vector.h"

namespace mg::map {

/** Clustering knobs. */
struct ClusterParams
{
    /**
     * Max gap between adjacent adjusted coordinates inside one cluster
     * (bases).  Giraffe uses a fragment-scale distance limit; for
     * single-end short reads a small slack suffices.
     */
    int64_t distanceLimit = 32;
    /**
     * Run the exact-distance refinement stage (stage 2 above).  Exposed
     * so tests can compare against the sweep-only behaviour.
     */
    bool exactRefinement = true;
    /** Exploration cap of each exact minimum-distance query (bases). */
    int64_t exactDistanceCap = 512;
};

/** One cluster of seeds for one read orientation. */
struct Cluster
{
    /**
     * Indices into the read's seed vector.  Inline storage sized for the
     * common case so that forming a cluster performs no heap allocation;
     * only unusually seed-dense clusters spill.
     */
    util::SmallVector<uint32_t, 16> seedIndices;
    /** Sum of distinct-read-offset seed scores (Giraffe-style quality). */
    float score = 0.0f;
    /** Distinct read minimizer offsets covered (evidence breadth). */
    uint32_t coverage = 0;
    bool onReverseRead = false;
};

/**
 * Group the seeds of one read into clusters, separately per orientation,
 * and score them.  Output is sorted by descending score (processing order
 * of process_until_threshold_c).
 */
std::vector<Cluster> clusterSeeds(const graph::VariationGraph& graph,
                                  const index::DistanceIndex& distance,
                                  const SeedVector& seeds,
                                  const ClusterParams& params,
                                  util::MemTracer* tracer = nullptr);

/**
 * Allocation-lean variant for the hot loop: clears and refills `out`,
 * reusing its capacity (and per-thread internal scratch) across reads.
 * Identical output to clusterSeeds.
 */
void clusterSeedsInto(const graph::VariationGraph& graph,
                      const index::DistanceIndex& distance,
                      const SeedVector& seeds, const ClusterParams& params,
                      std::vector<Cluster>& out,
                      util::MemTracer* tracer = nullptr);

} // namespace mg::map
