/**
 * @file
 * Process-wide graceful-stop signal.  SIGTERM/SIGINT land in an
 * async-signal-safe handler that sets a lock-free flag and writes one
 * byte to a self-pipe, giving consumers two ergonomic views of the same
 * event:
 *
 *  - stopFlag() / stopRequested(): polled by schedulers between batches
 *    and by apps between phases (finish the current batch, write the
 *    checkpoint, emit the summary, exit 0);
 *  - stopFd(): poll()-able by threads that sleep, e.g. mgd's main
 *    thread waiting to start its drain.
 *
 * A second signal while stopping keeps the default disposition-restoring
 * behavior out of scope deliberately: mapping runs always terminate (the
 * budget layer guarantees bounded batches), so one cooperative signal
 * suffices and `kill -9` remains the escape hatch — which is exactly the
 * crash-consistency scenario the checkpoint tests exercise.
 */
#pragma once

#include <atomic>

namespace mg::serve {

/** Install SIGTERM + SIGINT handlers (idempotent). */
void installStopHandlers();

/** True once a stop signal arrived. */
bool stopRequested() noexcept;

/** The flag itself, for Scheduler::bindStop wiring. */
const std::atomic<bool>* stopFlag() noexcept;

/** Read end of the self-pipe; readable once a stop signal arrived.
 *  Returns -1 before installStopHandlers(). */
int stopFd() noexcept;

/**
 * Additionally route SIGHUP to a *reload* flag (same self-pipe wakes
 * poll()ers).  Installed separately from the stop handlers because only
 * daemon-shaped processes (mgd) want "SIGHUP = hot-swap the index";
 * batch apps keep the default disposition.  Idempotent; call after
 * installStopHandlers() so the shared pipe exists.
 */
void installReloadHandler();

/** True once a SIGHUP arrived that has not been cleared yet. */
bool reloadRequested() noexcept;

/** Acknowledge the pending reload (the next SIGHUP re-raises it). */
void clearReloadRequest() noexcept;

/** Re-arm for tests that deliver signals repeatedly in one process. */
void resetStopForTests() noexcept;

} // namespace mg::serve
