/**
 * @file
 * Bounded admission queue with per-tenant QoS — the backpressure heart of
 * the mgd daemon.  Admission control happens at tryPush time and is
 * *explicit*: a full queue or a saturated tenant is answered with a
 * structured verdict carrying a RETRY_AFTER hint, never by blocking the
 * acceptor or silently dropping the request.
 *
 * Dequeue is weighted-fair via stride scheduling: each tenant holds a
 * `pass` value advanced by `kStrideScale / weight` per dequeue, and pop()
 * serves the eligible tenant with the smallest pass — so over any window,
 * tenants drain in proportion to their weights regardless of arrival
 * order.  A tenant at its in-flight cap is ineligible until complete()
 * runs, which is how one slow tenant is prevented from occupying every
 * worker.
 *
 * Concurrency: one mutex + two condvars (mutator-friendly, TSan-clean by
 * construction).  The queue sits off the mapping hot path — push/pop
 * happen once per *request* (a batch of reads), not per read.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/common.h"

namespace mg::serve {

/** One tenant's QoS contract. */
struct TenantConfig
{
    std::string name;
    /** Fair-share weight; a weight-3 tenant drains 3x a weight-1 one. */
    uint32_t weight = 1;
    /** Concurrent requests being mapped for this tenant (0 = unlimited). */
    size_t maxInFlight = 0;
    /** Queued requests this tenant may hold (0 = global cap only). */
    size_t maxQueued = 0;
};

/** Admission-control outcome of one tryPush. */
enum class Admission : uint8_t
{
    Admitted = 0,
    /** Global queue capacity reached: system-wide backpressure. */
    QueueFull,
    /** This tenant's own queued cap reached: per-tenant backpressure. */
    TenantSaturated,
    /** The queue is closed (daemon draining). */
    Closed,
};

/** Short stable name ("admitted", "queue-full", ...). */
inline const char*
admissionName(Admission admission)
{
    switch (admission) {
      case Admission::Admitted:
        return "admitted";
      case Admission::QueueFull:
        return "queue-full";
      case Admission::TenantSaturated:
        return "tenant-saturated";
      case Admission::Closed:
        return "closed";
    }
    return "?";
}

/** One tenant's instantaneous load (live introspection snapshot). */
struct TenantLoad
{
    size_t queued = 0;
    size_t inFlight = 0;
};

/** Verdict of one admission attempt. */
struct AdmissionVerdict
{
    Admission outcome = Admission::Admitted;
    /** Backoff floor for rejected requests (RETRY_AFTER), milliseconds. */
    uint32_t retryAfterMillis = 0;
    /** Queue depth observed at decision time (gauge fodder). */
    size_t depth = 0;

    bool admitted() const { return outcome == Admission::Admitted; }
};

/**
 * Bounded multi-tenant queue.  T is the request payload (the daemon
 * queues a Job struct; the unit tests queue integers).
 */
template <typename T>
class AdmissionQueue
{
  public:
    /** Stride numerator; large enough that weight ratios stay exact. */
    static constexpr uint64_t kStrideScale = 1 << 20;

    AdmissionQueue(size_t capacity, std::vector<TenantConfig> tenants,
                   uint32_t retry_base_millis = 25)
        : capacity_(capacity), retryBaseMillis_(retry_base_millis)
    {
        MG_CHECK(capacity_ > 0, "admission queue capacity must be positive");
        MG_CHECK(!tenants.empty(), "admission queue needs >= 1 tenant");
        tenants_.reserve(tenants.size());
        for (TenantConfig& config : tenants) {
            MG_CHECK(config.weight > 0, "tenant '", config.name,
                     "' must have a positive weight");
            Tenant tenant;
            tenant.config = std::move(config);
            tenant.stride = kStrideScale / tenant.config.weight;
            tenants_.push_back(std::move(tenant));
        }
    }

    size_t tenantCount() const { return tenants_.size(); }

    const TenantConfig&
    tenant(size_t index) const
    {
        return tenants_[index].config;
    }

    /** Index of a tenant by name; SIZE_MAX when unknown. */
    size_t
    tenantIndex(const std::string& name) const
    {
        for (size_t i = 0; i < tenants_.size(); ++i) {
            if (tenants_[i].config.name == name) {
                return i;
            }
        }
        return SIZE_MAX;
    }

    /**
     * Admit or reject one request.  Never blocks: the verdict is the
     * backpressure signal.  retryAfterMillis scales with how far over
     * capacity demand is, so a persistently full queue pushes clients
     * further out instead of letting them hammer the socket.
     */
    AdmissionVerdict
    tryPush(size_t tenant_index, T item)
    {
        MG_ASSERT(tenant_index < tenants_.size());
        std::lock_guard<std::mutex> lock(mutex_);
        AdmissionVerdict verdict;
        verdict.depth = totalQueued_;
        if (closed_) {
            verdict.outcome = Admission::Closed;
            verdict.retryAfterMillis = retryAfter();
            return verdict;
        }
        if (totalQueued_ >= capacity_) {
            verdict.outcome = Admission::QueueFull;
            verdict.retryAfterMillis = retryAfter();
            return verdict;
        }
        Tenant& tenant = tenants_[tenant_index];
        if (tenant.config.maxQueued != 0 &&
            tenant.items.size() >= tenant.config.maxQueued) {
            verdict.outcome = Admission::TenantSaturated;
            verdict.retryAfterMillis = retryAfter();
            return verdict;
        }
        if (tenant.items.empty()) {
            // A tenant re-entering after idling must not cash in the pass
            // it "saved" while absent — that would let it monopolize the
            // next several dequeues (classic stride re-entry fix).
            if (tenant.pass < basePass_) {
                tenant.pass = basePass_;
            }
        }
        tenant.items.push_back(std::move(item));
        ++totalQueued_;
        verdict.depth = totalQueued_;
        if (totalQueued_ > peakDepth_) {
            peakDepth_ = totalQueued_;
        }
        readable_.notify_one();
        return verdict;
    }

    /**
     * Dequeue the next request by weighted fair order.  Blocks while the
     * queue is open but has nothing eligible; returns false once the
     * queue is closed *and* empty (worker shutdown signal).
     */
    bool
    pop(T& out, size_t& tenant_index)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            size_t winner = SIZE_MAX;
            for (size_t i = 0; i < tenants_.size(); ++i) {
                Tenant& tenant = tenants_[i];
                if (tenant.items.empty()) {
                    continue;
                }
                if (tenant.config.maxInFlight != 0 &&
                    tenant.inFlight >= tenant.config.maxInFlight) {
                    continue;
                }
                if (winner == SIZE_MAX ||
                    tenant.pass < tenants_[winner].pass) {
                    winner = i;
                }
            }
            if (winner != SIZE_MAX) {
                Tenant& tenant = tenants_[winner];
                out = std::move(tenant.items.front());
                tenant.items.pop_front();
                --totalQueued_;
                ++tenant.inFlight;
                basePass_ = tenant.pass;
                tenant.pass += tenant.stride;
                tenant_index = winner;
                return true;
            }
            if (closed_ && totalQueued_ == 0) {
                return false;
            }
            readable_.wait(lock);
        }
    }

    /**
     * Remove every *still-queued* item matching `predicate`, handing the
     * (tenant index, item) pairs to the caller so the shed requests can
     * be answered outside the lock (SLO-aware shedding: a queued request
     * whose client deadline can no longer be met is cheaper to refuse
     * now than to map and throw away).  Items already popped — in flight
     * on a worker — are untouched; no in-flight accounting is involved.
     */
    template <typename Predicate>
    void
    shedIf(Predicate&& predicate,
           std::vector<std::pair<size_t, T>>& shed)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (size_t i = 0; i < tenants_.size(); ++i) {
            std::deque<T>& items = tenants_[i].items;
            for (auto it = items.begin(); it != items.end();) {
                if (predicate(*it)) {
                    shed.emplace_back(i, std::move(*it));
                    it = items.erase(it);
                    --totalQueued_;
                } else {
                    ++it;
                }
            }
        }
    }

    /** A popped request finished (or was shed); frees an in-flight slot. */
    void
    complete(size_t tenant_index)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        MG_ASSERT(tenant_index < tenants_.size());
        MG_ASSERT(tenants_[tenant_index].inFlight > 0);
        --tenants_[tenant_index].inFlight;
        // A freed in-flight slot can make a capped tenant eligible again.
        readable_.notify_all();
    }

    /** Stop admitting; wakes poppers so they can drain and exit. */
    void
    close()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
        readable_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    size_t
    depth() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return totalQueued_;
    }

    /** Highest depth ever observed (capacity-invariant checks). */
    size_t
    peakDepth() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return peakDepth_;
    }

    size_t
    inFlight() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        size_t total = 0;
        for (const Tenant& tenant : tenants_) {
            total += tenant.inFlight;
        }
        return total;
    }

    /** Per-tenant load snapshot, index-aligned with tenant(); one lock
     *  acquisition so the queued/in-flight pairs are mutually
     *  consistent (ControlOp::Stats introspection). */
    std::vector<TenantLoad>
    tenantLoads() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<TenantLoad> loads;
        loads.reserve(tenants_.size());
        for (const Tenant& tenant : tenants_) {
            TenantLoad load;
            load.queued = tenant.items.size();
            load.inFlight = tenant.inFlight;
            loads.push_back(load);
        }
        return loads;
    }

    size_t capacity() const { return capacity_; }

  private:
    struct Tenant
    {
        // Move-only: std::deque declares a copy constructor even for
        // move-only T (it only fails at instantiation), so without the
        // explicit delete vector relocation would pick the copy path
        // and hard-error once T carries a unique_ptr (the Job's trace).
        Tenant() = default;
        Tenant(const Tenant&) = delete;
        Tenant& operator=(const Tenant&) = delete;
        Tenant(Tenant&&) = default;
        Tenant& operator=(Tenant&&) = default;

        TenantConfig config;
        std::deque<T> items;
        size_t inFlight = 0;
        uint64_t pass = 0;
        uint64_t stride = kStrideScale;
    };

    /** Backoff hint under the lock: base + base * load. */
    uint32_t
    retryAfter() const
    {
        uint64_t scaled =
            retryBaseMillis_ +
            (static_cast<uint64_t>(retryBaseMillis_) * totalQueued_) /
                capacity_;
        return static_cast<uint32_t>(scaled);
    }

    const size_t capacity_;
    const uint32_t retryBaseMillis_;
    mutable std::mutex mutex_;
    std::condition_variable readable_;
    std::vector<Tenant> tenants_;
    size_t totalQueued_ = 0;
    size_t peakDepth_ = 0;
    uint64_t basePass_ = 0;
    bool closed_ = false;
};

} // namespace mg::serve
