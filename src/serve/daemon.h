/**
 * @file
 * mgd — mapping as a service.  One Daemon owns a listening Unix-domain
 * socket, an acceptor, per-connection reader threads, a bounded
 * multi-tenant AdmissionQueue, a pool of mapping workers over one shared
 * MapSession, and a watchdog supervising those workers.
 *
 * Request lifecycle:
 *
 *   accept -> readFrame -> decodeRequest -> admission (tryPush)
 *     admitted:  queued; a worker pops it by weighted fair order,
 *                maps it under its WorkBudget (over-budget reads return
 *                best-so-far GAF tagged dg:Z:), writes the Ok response.
 *     rejected:  RETRY_AFTER response written immediately (backpressure
 *                is explicit, the acceptor never blocks on a full queue).
 *     draining:  ShuttingDown response; clients move to another instance.
 *
 * Graceful drain (SIGTERM/SIGINT via requestDrain, or stop()):
 *
 *   Running -> Draining: stop accepting connections, answer new requests
 *     ShuttingDown, close the queue.  Workers keep finishing queued +
 *     in-flight requests.
 *   Draining -> Stopped: when everything drained, or at the drain
 *     deadline: worker CancelTokens fire (in-flight requests return
 *     degraded within one cancellation point) and still-queued requests
 *     are shed with ShuttingDown.  Every admitted request gets a
 *     response or a logged shed; then sockets close, threads join,
 *     metrics can be flushed, and the process exits 0.
 *
 * Fault sites serve.accept / serve.read / serve.write / serve.enqueue
 * let the chaos tests inject failures at each boundary; the invariant
 * under all of them is "the daemon never crashes".
 */
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "giraffe/session.h"
#include "obs/hub.h"
#include "resilience/budget.h"
#include "sched/watchdog.h"
#include "serve/frame.h"
#include "serve/index_manager.h"
#include "serve/queue.h"

namespace mg::serve {

/** Daemon configuration. */
struct DaemonParams
{
    std::string socketPath;
    /** Mapping worker threads (and MapSession worker slots). */
    size_t workers = 2;
    /** Bound on queued (not yet mapping) requests across all tenants. */
    size_t queueCapacity = 64;
    /** Tenant QoS classes; empty means one "default" tenant. */
    std::vector<TenantConfig> tenants;
    /** RETRY_AFTER base; grows with queue depth. */
    uint32_t retryBaseMillis = 25;
    /** Budget every request is clamped to (0 fields = no ceiling). */
    resilience::WorkBudget maxBudget;
    /** Requests carrying more reads than this are answered Error. */
    size_t maxReadsPerRequest = 4096;
    /** Seconds drain waits for in-flight + queued work before forcing. */
    double drainDeadlineSeconds = 5.0;
    /** Supervise workers; a stalled request is cancelled, not eternal. */
    bool watchdog = true;
    sched::WatchdogParams watchdogParams;
    giraffe::SessionParams session;
    /**
     * How the served pangenome got into memory ("parsed", "mmap",
     * "generated") and how long that took — filled by the embedding
     * process (mgd) and echoed in the DaemonReport so service logs say
     * whether this instance shares its index pages with its neighbours.
     */
    std::string indexLoadMode = "parsed";
    double indexLoadSeconds = 0.0;
    /**
     * Prefix each Ok response's GAF with a `# mg:gen=<N>` comment naming
     * the generation that mapped it.  Off by default: the comment makes
     * daemon GAF differ from direct-session GAF byte-for-byte, so it is
     * opt-in for deployments that want generation attribution in the
     * output stream itself (the Response.generation field always
     * carries it).
     */
    bool gafGenerationComment = false;
    /**
     * Head-sampling probability for tracing untagged requests, [0, 1].
     * Client-tagged requests (Request.traceId != 0) are always traced
     * regardless of this rate.  Tracing is timing-only: a traced
     * request's GAF is byte-identical to an untraced one's.
     */
    double traceSample = 0.0;
    /** Chrome-trace JSON written at stop() (Perfetto-loadable; empty =
     *  no export). */
    std::string traceOut;
    /** Tail-based exemplar ring: always keep the slowest N traced
     *  requests' full span trees, whatever the sampling rate. */
    size_t traceExemplars = 8;
    /** Prefix for slow-request `.mgtrace` dumps written at stop(), one
     *  per exemplar (empty = no dumps). */
    std::string traceDumpPrefix;
    /** Flight-recorder ring slots per worker (the last N reads each
     *  worker touched, named in watchdog and crash dumps). */
    size_t flightRingSize = obs::FlightRecorder::kDefaultRingSize;
};

/** Daemon lifecycle state. */
enum class DaemonState : uint8_t
{
    Idle = 0,
    Running,
    Draining,
    Stopped,
};

/** End-of-life accounting (stable after stop() returns). */
struct DaemonReport
{
    uint64_t accepted = 0;
    uint64_t completed = 0;
    uint64_t shed = 0;
    uint64_t drainShed = 0;
    /** Queued requests shed because their client deadline lapsed. */
    uint64_t deadlineShed = 0;
    uint64_t errors = 0;
    uint64_t badFrames = 0;
    uint64_t watchdogCancels = 0;
    /** Hot swaps published / rejected over the daemon's lifetime. */
    uint64_t reloads = 0;
    uint64_t reloadsRejected = 0;
    /** Old generations fully released (arenas unmapped) by stop time. */
    uint64_t generationsRetired = 0;
    /** Generation serving when the daemon stopped (1 = never swapped). */
    uint64_t finalGeneration = 1;
    /** Drain finished inside the deadline (no forcing needed). */
    bool drainClean = true;
    /** Traced requests committed over the daemon's lifetime. */
    uint64_t tracedRequests = 0;
    /** Slow-request `.mgtrace` dumps written at stop(). */
    uint64_t traceDumps = 0;
    /** Index load mode ("parsed" | "mmap" | "generated") and map/parse
     *  seconds, copied from DaemonParams at construction. */
    std::string indexLoadMode = "parsed";
    double indexLoadSeconds = 0.0;
};

class Daemon
{
  public:
    /** Serve caller-owned indexes (generated pangenomes, tests); they
     *  must outlive the daemon. */
    Daemon(const graph::VariationGraph& graph, const gbwt::Gbwt& gbwt,
           const index::MinimizerIndex& minimizers,
           const index::DistanceIndex& distance, DaemonParams params);

    /** Serve a pangenome loaded from `source` (hot-swappable: the first
     *  generation is owned, so RELOAD can retire it cleanly). */
    Daemon(io::IndexedPangenome&& pangenome, std::string source,
           DaemonParams params);

    ~Daemon();

    Daemon(const Daemon&) = delete;
    Daemon& operator=(const Daemon&) = delete;

    /** Bind the socket and start acceptor + workers + watchdog. */
    void start();

    /**
     * Hot-swap the serving pangenome to the container at `path`
     * (SIGHUP and the RELOAD control frame both land here).  Rejected
     * while draining; otherwise delegates to IndexManager::swap and
     * accounts the outcome in the serve metrics.  Thread-safe.
     */
    SwapOutcome reloadIndex(const std::string& path);

    /** The epoch manager (tests: pin/retire introspection). */
    IndexManager& indexManager() { return *index_; }

    /**
     * Begin graceful drain (async-signal-unsafe; call from a thread, not
     * a signal handler — mgd observes its stop flag and calls this).
     * Idempotent.
     */
    void requestDrain();

    /**
     * Drain (if not already draining) and block until everything is
     * down.  Safe to call once after start(); also runs in ~Daemon.
     */
    void stop();

    DaemonState state() const { return state_.load(); }
    obs::Hub& hub() { return *hub_; }
    const DaemonReport& report() const { return report_; }
    const DaemonParams& params() const { return params_; }
    /** The request tracer (tests: exemplar/in-flight introspection). */
    obs::RequestTracer& tracer() { return *tracer_; }

    /**
     * Live introspection snapshot as JSON — what a ControlOp::Stats
     * frame answers: lifecycle state, generation + reload/publish state,
     * per-tenant queue depth / in-flight / counters / service EWMA,
     * worker heartbeat ages, per-stage latency histograms with trace-id
     * exemplars, and the slowest in-flight traces.  Thread-safe.
     */
    std::string statsJson();

  private:
    /** One client connection; workers and the reader share the fd. */
    struct Connection
    {
        ~Connection();

        int fd = -1;
        /** Serializes response frames (several workers, one stream). */
        std::mutex writeMutex;
        std::atomic<bool> open{true};
    };

    /** One admitted request waiting for (or holding) a worker. */
    struct Job
    {
        std::shared_ptr<Connection> conn;
        Request request;
        size_t tenant = 0;
        uint64_t admittedNanos = 0;
        /** Absolute client deadline (nowNanos domain); 0 = none. */
        uint64_t deadlineNanos = 0;
        /** The generation pinned at admission; the swap path cannot
         *  unmap these arenas while this job holds the handle. */
        IndexManager::Handle handle;
        /** Span context when the request is traced (null otherwise);
         *  rides the job from the reader thread to its worker. */
        std::unique_ptr<obs::TraceContext> trace;
    };

    void acceptorLoop();
    void readerLoop(std::shared_ptr<Connection> conn);
    void workerLoop(size_t worker);
    void handleRequest(std::shared_ptr<Connection>& conn,
                       Request&& request, uint64_t frame_arrival_nanos,
                       uint64_t accept_end_nanos,
                       uint64_t decode_end_nanos);
    void handleControl(std::shared_ptr<Connection>& conn,
                       ControlRequest&& control);
    void processJob(size_t worker, Job& job, uint64_t popped_nanos);
    /** Stamp end + disposition, feed the stage histograms, and append
     *  the finished context to `lane`'s span buffer. */
    void commitTrace(size_t lane, obs::TraceContext&& ctx,
                     std::string_view disposition,
                     obs::Registry::ThreadSlab* slab);
    void initTracing();
    /** Shed still-queued jobs whose client deadline can no longer be
     *  met (DEADLINE_SHED), using the service-time EWMA as the cost
     *  estimate for work not yet started. */
    void shedExpiredJobs(size_t worker);
    /** Fold newly expired retired generations into the metric. */
    void accountRetired();
    bool respond(Connection& conn, const Response& response);
    void closeConnection(Connection& conn);
    obs::Registry::ThreadSlab* controlSlab();

    DaemonParams params_;
    std::unique_ptr<obs::Hub> hub_;
    std::unique_ptr<IndexManager> index_;
    std::unique_ptr<AdmissionQueue<Job>> queue_;
    sched::HeartbeatBoard board_;
    std::unique_ptr<sched::Watchdog> watchdog_;
    std::unique_ptr<obs::RequestTracer> tracer_;

    /** EWMA of per-request mapping time (relaxed; heuristic only). */
    std::atomic<uint64_t> serviceEwmaNanos_{0};
    /** Per-tenant EWMA of mapping time, index-aligned with the tenant
     *  configs (relaxed; introspection only). */
    std::unique_ptr<std::atomic<uint64_t>[]> tenantEwmaNanos_;
    /** Consecutive admissions refused by the publish window; scales the
     *  RETRY_AFTER hint so clients back off a stretched publish. */
    std::atomic<uint32_t> publishRejects_{0};
    /** Retired generations already counted into the metric. */
    std::atomic<uint64_t> retiredAccounted_{0};
    /** Serializes accountRetired's read-then-add. */
    std::mutex retireAccountMutex_;

    std::atomic<DaemonState> state_{DaemonState::Idle};
    /** Absolute drain cutoff (nowNanos domain); 0 until draining. */
    std::atomic<uint64_t> drainDeadlineNanos_{0};

    int listenFd_ = -1;
    /** Self-pipe waking the acceptor's poll() for drain. */
    int wakePipe_[2] = { -1, -1 };

    std::thread acceptor_;
    std::vector<std::thread> workers_;
    std::mutex connMutex_;
    std::vector<std::shared_ptr<Connection>> connections_;
    std::vector<std::thread> readers_;

    DaemonReport report_;
};

/**
 * Parse "name:weight=3:inflight=8:queued=16,name2,..." into tenant
 * configs (weight defaults 1, caps default unlimited).  Throws
 * util::Error on malformed specs.
 */
std::vector<TenantConfig> parseTenantSpec(const std::string& spec);

} // namespace mg::serve
