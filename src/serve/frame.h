/**
 * @file
 * The mgd wire protocol: length-prefixed, CRC-framed messages over a
 * Unix-domain stream socket, reusing the MGZ container's varint + CRC32
 * conventions so every byte on the wire has the same integrity story as
 * every byte at rest.
 *
 * Frame layout (one message per frame):
 *
 *     "MF"                      2-byte frame magic (stream resync anchor)
 *     varint payload size       bounded by kMaxFramePayload at both ends
 *     payload bytes             one encoded Request or Response
 *     uint32 LE CRC32           checksum of the payload bytes
 *
 * A frame whose magic, size bound, or CRC fails is *corrupt input from an
 * untrusted peer*, reported as a total Status (never a throw on the
 * daemon's accept path): the daemon answers with a structured Error
 * response when it still can, drops the connection otherwise, and always
 * stays up.  Fault sites "serve.read" and "serve.write" let the chaos
 * tests inject torn frames and stalled transfers at exactly this
 * boundary.
 *
 * Captured streams: the client can append every request frame it sends
 * to a `.mgreq` file and every response frame it receives to a `.mgresp`
 * file — just frames back to back — which mg_verify can later validate
 * (CRCs, monotone request ids, every request answered or shed).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "map/read.h"
#include "resilience/budget.h"
#include "util/status.h"

namespace mg::serve {

/** Upper bound on one frame's payload (defense against a hostile or
 *  corrupt length prefix allocating unbounded memory). */
inline constexpr uint64_t kMaxFramePayload = 64ull << 20;

/** Message discriminator (first payload byte). */
enum class MessageKind : uint8_t
{
    Request = 1,
    Response = 2,
    /** Operator control plane (hot reload), same framing + CRC story. */
    Control = 3,
};

/** How the daemon disposed of a request. */
enum class ResponseStatus : uint8_t
{
    /** Mapped; the GAF payload is attached. */
    Ok = 0,
    /** Shed by admission control; honor retryAfterMillis before retrying. */
    RetryAfter = 1,
    /** The request was malformed or failed; message carries the reason. */
    Error = 2,
    /** The daemon is draining; retry against a fresh instance later. */
    ShuttingDown = 3,
    /** Control: the replacement pangenome was published. */
    ReloadOk = 4,
    /** Control: the replacement was rejected; message carries the
     *  validation failure and the old index keeps serving. */
    ReloadRejected = 5,
    /** Shed while still queued because the client deadline could no
     *  longer be met; the work was never started (SLO shedding). */
    DeadlineShed = 6,
    /** Control: live introspection snapshot; message carries the JSON. */
    StatsOk = 7,
};

/** Short stable name ("ok", "retry-after", ...). */
const char* responseStatusName(ResponseStatus status);

/** One mapping request: a batch of reads under one tenant + budget. */
struct Request
{
    uint64_t id = 0;
    std::string tenant;
    /** Per-request work budget carried in the header.  wallSeconds is
     *  derived from deadlineMicros; step/lookup caps ride verbatim. */
    uint64_t deadlineMicros = 0;
    uint64_t maxExtendSteps = 0;
    uint64_t maxGbwtLookups = 0;
    std::vector<map::Read> reads;
    /**
     * Request trace id (0 = untraced).  Encoded as an optional trailing
     * varint so untraced frames are byte-identical to the pre-tracing
     * wire format and old peers still decode traced frames' prefix.
     */
    uint64_t traceId = 0;
};

/** One response, paired to its request by id. */
struct Response
{
    uint64_t id = 0;
    ResponseStatus status = ResponseStatus::Ok;
    /**
     * Pangenome generation that answered (1 = the index the daemon
     * started with; each published hot swap increments it).  Carried on
     * every status so load drivers can attribute sheds and retries to a
     * generation, not just successes.
     */
    uint64_t generation = 0;
    /** Ok: mapped GAF text (degraded reads carry dg:Z tags). */
    std::string gaf;
    uint64_t mappedReads = 0;
    uint64_t degradedReads = 0;
    /** RetryAfter / ShuttingDown: client-side backoff floor. */
    uint32_t retryAfterMillis = 0;
    /** Error / ReloadOk / ReloadRejected: human-readable reason.
     *  StatsOk: the introspection snapshot JSON. */
    std::string message;
    /**
     * Trace echo (optional trailing block, present only when the request
     * was traced): the trace id plus the daemon's own measurement of the
     * request's queue wait and mapping time, so clients can reconcile
     * their observed latency against the daemon's stage attribution.
     */
    uint64_t traceId = 0;
    uint64_t queueNanos = 0;
    uint64_t mapNanos = 0;
};

/** Control-plane operations (MessageKind::Control payloads). */
enum class ControlOp : uint8_t
{
    /** Hot-swap the serving pangenome to the named container path. */
    Reload = 1,
    /** Live introspection snapshot; answered StatsOk with JSON in
     *  message (queue depths, generations, heartbeats, slow traces). */
    Stats = 2,
};

/** One control request; answered with a Response
 *  (ReloadOk/ReloadRejected/StatsOk). */
struct ControlRequest
{
    uint64_t id = 0;
    ControlOp op = ControlOp::Reload;
    /** Reload: absolute path of the replacement container.  Stats: empty. */
    std::string path;
};

/** Encode a message into a frame payload (no frame header/CRC yet). */
std::vector<uint8_t> encodeRequest(const Request& request);
std::vector<uint8_t> encodeResponse(const Response& response);
std::vector<uint8_t> encodeControl(const ControlRequest& control);

/** Total decoders: malformed payloads produce a non-Ok Status. */
util::Status decodeRequest(const std::vector<uint8_t>& payload,
                           Request& out);
util::Status decodeResponse(const std::vector<uint8_t>& payload,
                            Response& out);
util::Status decodeControl(const std::vector<uint8_t>& payload,
                           ControlRequest& out);

/** Peek the message kind of a payload (Status on empty/unknown). */
util::Status peekKind(const std::vector<uint8_t>& payload,
                      MessageKind& out);

/** Wrap a payload in a complete frame (magic + size + payload + CRC). */
std::vector<uint8_t> frameBytes(const std::vector<uint8_t>& payload);

/**
 * Write one frame to `fd` (EINTR/partial-write-safe).  Fault site
 * "serve.write": Corrupt/Truncate send a deterministically mangled or
 * torn frame instead (the peer's CRC must catch it), Stall sleeps first,
 * Throw reports an IoError — the daemon's write path treats any non-Ok
 * as a shed-with-log, never a crash.
 */
util::Status writeFrame(int fd, const std::vector<uint8_t>& payload);

/**
 * Read one frame from `fd` into `payload`.  Returns Ok on a whole,
 * CRC-valid frame; a Status with code Truncated on clean EOF before the
 * first magic byte (normal connection close), and Corrupt/Truncated/
 * ChecksumMismatch/IoError otherwise.  Fault site "serve.read" (Stall /
 * Throw) models a slow or failing peer.
 *
 * `arrival_nanos` (nullable) is stamped with util::nowNanos() right
 * after the frame magic arrives — the moment this frame's bytes started
 * flowing, excluding the idle wait for a request to show up.  It is the
 * begin timestamp of a traced request's "accept" span.
 */
util::Status readFrame(int fd, std::vector<uint8_t>& payload,
                       uint64_t* arrival_nanos = nullptr);

/** True when the status is the clean-EOF marker readFrame returns for a
 *  peer that closed between frames. */
bool isCleanEof(const util::Status& status);

/**
 * Parse a captured frame stream (concatenated frames, e.g. a .mgreq /
 * .mgresp capture) into its payloads.  Throws StatusError naming the
 * offset of the first damaged frame.
 */
std::vector<std::vector<uint8_t>>
parseFrameStream(const std::vector<uint8_t>& bytes,
                 std::string_view file = {});

/**
 * Derive the session budget of a request: the wall deadline becomes
 * wallSeconds, caps ride through, and every field is clamped to
 * `ceiling` when the ceiling is non-zero (the daemon never lets a
 * client demand more work than the operator allows).
 */
resilience::WorkBudget requestBudget(const Request& request,
                                     const resilience::WorkBudget& ceiling);

} // namespace mg::serve
