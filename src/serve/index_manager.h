/**
 * @file
 * Epoch-based (RCU-style) hot swap of the serving pangenome — the part
 * of mgd that lets an operator publish a rebuilt index without dropping
 * the socket or a single in-flight request.
 *
 * Lifetime model: every loaded index set lives inside one refcounted
 * Generation (graph + GBWT + minimizer + distance + the MapSession that
 * serves them, plus — for file-backed generations — the IndexedPangenome
 * whose mapping keepalive pins the mmap'd arenas).  The daemon pins the
 * current generation at admission with pin(); the returned Handle is a
 * plain shared_ptr, so a request that is still mapping when a swap
 * publishes keeps its whole index set alive until its response is
 * written.  When the last pinned request of a retired generation
 * completes, the shared_ptr chain unwinds: MapSession, arenas, and —
 * through the MappedFile keepalive — the mmap itself are released, with
 * no quiescence barrier and no reader-side synchronization beyond one
 * mutex-protected shared_ptr copy.
 *
 * Swap protocol (swap(), serialized on its own mutex):
 *
 *   load      read + deep-validate the replacement container off the
 *             serving path (structure, section CRCs) — a corrupt or
 *             truncated image is rejected here, before any state changes
 *   validate  bind it, then check it is compatible with what is being
 *             served (non-empty graph, same minimizer (k,w) contract)
 *   publish   warm the new generation's MapSession, raise `publishing_`
 *             (late pins see nullptr and the daemon answers RETRY_AFTER
 *             with a growing hint instead of racing the flip), then swap
 *             the current handle under the pin mutex — pins only ever
 *             observe a complete, fully-constructed generation
 *   retire    the old handle moves to the retired list as weak_ptrs;
 *             expiry of those weak_ptrs is the *proof* that the last
 *             pinned request finished and the old arenas were unmapped
 *
 * Every step carries an mg::fault site (serve.swap.load / .validate /
 * .publish / .retire) so the chaos matrix can fail, stall, or kill the
 * process at each boundary; any rejection leaves the old generation
 * serving untouched (validated rollback).
 */
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "giraffe/session.h"
#include "io/mgz.h"
#include "obs/hub.h"

namespace mg::serve {

/** Result of one swap() attempt. */
struct SwapOutcome
{
    /** The replacement was published. */
    bool accepted = false;
    /** Generation now serving (the new one on success, the unchanged
     *  old one on rejection). */
    uint64_t generation = 0;
    /** Rejection reason (validation/compatibility failure), empty on
     *  success. */
    std::string reason;
    /** Wall seconds from open to publish (success only). */
    double loadSeconds = 0.0;
};

class IndexManager
{
  public:
    /**
     * One published index set.  Immutable after construction except for
     * the MapSession's per-worker scratch (safe for distinct workers,
     * like any MapSession).  For file-backed generations `owned` holds
     * the IndexedPangenome and the index pointers alias into it; for the
     * borrowed first generation (generated/test pangenomes) they alias
     * the caller's objects, which must outlive the manager.
     */
    struct Generation
    {
        uint64_t number = 0;
        /** Container path, or "generated" for a synthesized pangenome. */
        std::string source;
        /** "parsed" | "mmap" | "generated". */
        std::string loadMode;
        double loadSeconds = 0.0;
        std::optional<io::IndexedPangenome> owned;
        const graph::VariationGraph* graph = nullptr;
        const gbwt::Gbwt* gbwt = nullptr;
        const index::MinimizerIndex* minimizers = nullptr;
        const index::DistanceIndex* distance = nullptr;
        std::unique_ptr<giraffe::MapSession> session;
    };

    /** A pinned generation; holding one keeps its arenas mapped. */
    using Handle = std::shared_ptr<const Generation>;

    /** First generation borrowing caller-owned indexes (generated
     *  pangenomes, tests).  The borrowed objects must outlive the
     *  manager *and* every handle it ever hands out. */
    IndexManager(const graph::VariationGraph& graph, const gbwt::Gbwt& gbwt,
                 const index::MinimizerIndex& minimizers,
                 const index::DistanceIndex& distance,
                 giraffe::SessionParams session, std::string source,
                 std::string load_mode, double load_seconds);

    /** First generation owning a pangenome loaded from a container. */
    IndexManager(io::IndexedPangenome&& pangenome,
                 giraffe::SessionParams session, std::string source);

    IndexManager(const IndexManager&) = delete;
    IndexManager& operator=(const IndexManager&) = delete;

    /**
     * Pin the current generation.  Returns nullptr only while a swap is
     * inside its publish window — the daemon answers those admissions
     * with RETRY_AFTER instead of racing the flip.  A non-null handle is
     * always a complete, fully-constructed generation.
     */
    Handle pin() const;

    /** Number of the currently published generation (1-based). */
    uint64_t generation() const;

    /** True while a swap is inside its publish window (pins would see
     *  nullptr right now); introspection only, inherently racy. */
    bool
    publishing() const
    {
        return publishing_.load(std::memory_order_relaxed);
    }

    /**
     * Load, validate, and publish the container at `path` as the next
     * generation; on any failure the old generation keeps serving and
     * the outcome carries the rejection reason.  Serialized: concurrent
     * calls run one at a time.  `hub` (nullable) wires the new
     * MapSession's worker metrics during warmup.
     */
    SwapOutcome swap(const std::string& path, obs::Hub* hub = nullptr);

    /** Generations ever retired by a successful swap. */
    uint64_t retiredTotal() const;

    /**
     * Retired generations still pinned by at least one in-flight
     * request.  0 means every superseded index set has been fully
     * released — for mapped generations, that the munmap has happened
     * (the MappedFile keepalive dies with the last handle).
     */
    size_t retiredAlive() const;

    /** Retired *mappings* still alive (subset of retiredAlive: only
     *  file-backed generations hold one). */
    size_t retiredMappingsAlive() const;

  private:
    struct Retired
    {
        uint64_t number = 0;
        std::weak_ptr<const Generation> generation;
        std::weak_ptr<mem::MappedFile> mapping;
    };

    Handle current() const;
    void publish(Handle next);

    giraffe::SessionParams sessionParams_;
    /** Serializes swap() end to end. */
    mutable std::mutex swapMutex_;
    /** Guards current_ and retired_ (held only for pointer copies). */
    mutable std::mutex pinMutex_;
    /** Raised for the duration of the publish window. */
    std::atomic<bool> publishing_{false};
    Handle current_;
    std::vector<Retired> retired_;
    uint64_t retiredCount_ = 0;
};

} // namespace mg::serve
