#include "serve/client.h"

#include <unistd.h>

#include <fstream>

#include "io/fd.h"
#include "util/common.h"

namespace mg::serve {

namespace {

util::Status
exhaustedStatus(uint32_t attempts, const char* why)
{
    util::Status status;
    status.code = util::StatusCode::ResourceExhausted;
    status.message = util::cat("gave up after ", attempts, " attempts (",
                               why, ")");
    return status;
}

} // namespace

Client::Client(ClientParams params)
    : params_(std::move(params)), rng_(params_.seed)
{
    io::ignoreSigpipe();
    if (!params_.capturePrefix.empty()) {
        // Truncate stale captures so a rerun starts a fresh stream.
        std::ofstream(params_.capturePrefix + ".mgreq",
                      std::ios::binary | std::ios::trunc);
        std::ofstream(params_.capturePrefix + ".mgresp",
                      std::ios::binary | std::ios::trunc);
    }
}

Client::~Client()
{
    disconnect();
}

util::Status
Client::ensureConnected()
{
    if (fd_ >= 0) {
        return util::Status{};
    }
    try {
        fd_ = io::connectUnix(params_.socketPath);
    } catch (const util::StatusError& err) {
        return err.status();
    }
    return util::Status{};
}

void
Client::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Client::capture(const std::string& path,
                const std::vector<uint8_t>& payload)
{
    std::vector<uint8_t> frame = frameBytes(payload);
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
}

uint32_t
Client::backoffMillis(uint32_t attempt, uint32_t retry_after)
{
    // Capped exponential backoff with full jitter, floored at the
    // server's RETRY_AFTER hint: the server knows its queue depth.
    uint64_t exp = params_.backoffBaseMillis;
    for (uint32_t i = 0; i < attempt && exp < params_.backoffCapMillis;
         ++i) {
        exp *= 2;
    }
    if (exp > params_.backoffCapMillis) {
        exp = params_.backoffCapMillis;
    }
    uint64_t jittered = rng_.uniform(exp + 1);
    if (jittered < retry_after) {
        jittered = retry_after;
    }
    return static_cast<uint32_t>(jittered);
}

util::Status
Client::call(const Request& request, Response& out)
{
    util::Status status = ensureConnected();
    if (!status.ok()) {
        return status;
    }
    std::vector<uint8_t> payload = encodeRequest(request);
    if (!params_.capturePrefix.empty()) {
        capture(params_.capturePrefix + ".mgreq", payload);
    }
    status = writeFrame(fd_, payload);
    if (!status.ok()) {
        disconnect();
        return status;
    }
    ++stats_.sent;
    std::vector<uint8_t> reply;
    status = readFrame(fd_, reply);
    if (!status.ok()) {
        disconnect();
        return status;
    }
    util::Status decoded = decodeResponse(reply, out);
    if (!decoded.ok()) {
        disconnect();
        return decoded;
    }
    if (!params_.capturePrefix.empty()) {
        capture(params_.capturePrefix + ".mgresp", reply);
    }
    return util::Status{};
}

util::Status
Client::reload(const std::string& path, Response& out)
{
    util::Status status = ensureConnected();
    if (!status.ok()) {
        return status;
    }
    ControlRequest control;
    control.id = nextId();
    control.path = path;
    std::vector<uint8_t> payload = encodeControl(control);
    if (!params_.capturePrefix.empty()) {
        capture(params_.capturePrefix + ".mgreq", payload);
    }
    status = writeFrame(fd_, payload);
    if (!status.ok()) {
        disconnect();
        return status;
    }
    ++stats_.sent;
    std::vector<uint8_t> reply;
    status = readFrame(fd_, reply);
    if (!status.ok()) {
        disconnect();
        return status;
    }
    util::Status decoded = decodeResponse(reply, out);
    if (!decoded.ok()) {
        disconnect();
        return decoded;
    }
    if (!params_.capturePrefix.empty()) {
        capture(params_.capturePrefix + ".mgresp", reply);
    }
    if (out.status == ResponseStatus::ReloadOk) {
        ++stats_.reloadsOk;
    } else if (out.status == ResponseStatus::ReloadRejected) {
        ++stats_.reloadsRejected;
    }
    return util::Status{};
}

util::Status
Client::queryStats(Response& out)
{
    util::Status status = ensureConnected();
    if (!status.ok()) {
        return status;
    }
    ControlRequest control;
    control.id = nextId();
    control.op = ControlOp::Stats;
    std::vector<uint8_t> payload = encodeControl(control);
    if (!params_.capturePrefix.empty()) {
        capture(params_.capturePrefix + ".mgreq", payload);
    }
    status = writeFrame(fd_, payload);
    if (!status.ok()) {
        disconnect();
        return status;
    }
    ++stats_.sent;
    std::vector<uint8_t> reply;
    status = readFrame(fd_, reply);
    if (!status.ok()) {
        disconnect();
        return status;
    }
    util::Status decoded = decodeResponse(reply, out);
    if (!decoded.ok()) {
        disconnect();
        return decoded;
    }
    if (!params_.capturePrefix.empty()) {
        capture(params_.capturePrefix + ".mgresp", reply);
    }
    return util::Status{};
}

util::Status
Client::mapReads(const std::string& tenant,
                 const std::vector<map::Read>& reads,
                 const resilience::WorkBudget& budget, Response& out)
{
    Request request;
    request.id = nextId();
    request.tenant = tenant;
    request.deadlineMicros =
        budget.wallSeconds > 0.0
            ? static_cast<uint64_t>(budget.wallSeconds * 1e6)
            : 0;
    request.maxExtendSteps = budget.maxExtendSteps;
    request.maxGbwtLookups = budget.maxGbwtLookups;
    request.reads = reads;
    if (params_.traceSample > 0.0 && rng_.chance(params_.traceSample)) {
        // Mint a nonzero trace id.  It stays stable across retries: the
        // retried call is the same logical request, and the trace should
        // show every attempt under one id.
        do {
            request.traceId = rng_.next();
        } while (request.traceId == 0);
        ++stats_.traced;
    }

    for (uint32_t attempt = 0; attempt < params_.maxAttempts; ++attempt) {
        util::Status status = call(request, out);
        uint32_t retry_after = 0;
        const char* why = "transport failure";
        if (status.ok()) {
            switch (out.status) {
              case ResponseStatus::Ok:
                ++stats_.ok;
                return util::Status{};
              case ResponseStatus::Error:
                // Protocol-level failure: retrying an Error will not
                // change the answer, so surface it immediately.
                ++stats_.errors;
                return util::Status{};
              case ResponseStatus::RetryAfter:
                ++stats_.shed;
                retry_after = out.retryAfterMillis;
                why = "shed with RETRY_AFTER";
                break;
              case ResponseStatus::ShuttingDown:
                ++stats_.shuttingDown;
                retry_after = out.retryAfterMillis;
                why = "server shutting down";
                break;
              case ResponseStatus::DeadlineShed:
                // The deadline is already unmeetable; a retry would
                // miss it by even more.  Surface the shed to the
                // caller, like Error but counted separately.
                ++stats_.deadlineShed;
                return util::Status{};
              case ResponseStatus::ReloadOk:
              case ResponseStatus::ReloadRejected:
              case ResponseStatus::StatsOk:
                // A control response to a map request is a protocol
                // violation from the server; treat as Error.
                ++stats_.errors;
                return util::Status{};
            }
        } else {
            ++stats_.reconnects;
        }
        if (attempt + 1 >= params_.maxAttempts) {
            ++stats_.exhausted;
            return exhaustedStatus(params_.maxAttempts, why);
        }
        ++stats_.retries;
        ::usleep(backoffMillis(attempt, retry_after) * 1000u);
        // Each attempt is a fresh request id: ids stay strictly monotone
        // on the wire (what mg_verify checks) and every id maps to
        // exactly one response.
        request.id = nextId();
    }
    ++stats_.exhausted;
    return exhaustedStatus(params_.maxAttempts, "no attempts made");
}

} // namespace mg::serve
