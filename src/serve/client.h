/**
 * @file
 * mgd client: connects to the daemon's Unix socket, frames requests, and
 * retries rejected or failed calls with capped exponential backoff plus
 * jitter, honoring the server's RETRY_AFTER hint as the floor — the
 * client half of the backpressure contract (a shed client that retries
 * immediately defeats admission control).
 *
 * Optionally captures every request frame sent to `<prefix>.mgreq` and
 * every response frame received to `<prefix>.mgresp` (frames
 * back-to-back), which mg_verify validates offline.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "resilience/budget.h"
#include "serve/frame.h"
#include "util/rng.h"
#include "util/status.h"

namespace mg::serve {

/** Client behavior knobs. */
struct ClientParams
{
    std::string socketPath;
    /** Attempts per call (first try + retries). */
    uint32_t maxAttempts = 8;
    /** Exponential backoff base; doubles per retry. */
    uint32_t backoffBaseMillis = 10;
    /** Backoff ceiling. */
    uint32_t backoffCapMillis = 2000;
    /** Jitter RNG seed (deterministic tests want a fixed one). */
    uint64_t seed = 1;
    /** When non-empty, capture frames to <prefix>.mgreq / .mgresp. */
    std::string capturePrefix;
    /**
     * Probability that mapReads tags a request with a client-minted
     * trace id (0 = never, 1 = every request).  A traced request keeps
     * the same trace id across its retries — the retries are the same
     * logical request — and its response echoes the id plus the
     * daemon's queue/map stage attribution.
     */
    double traceSample = 0.0;
};

/** What a client saw across its lifetime (loadgen reporting). */
struct ClientStats
{
    uint64_t sent = 0;
    uint64_t ok = 0;
    uint64_t shed = 0;
    uint64_t shuttingDown = 0;
    uint64_t errors = 0;
    uint64_t reconnects = 0;
    uint64_t retries = 0;
    uint64_t exhausted = 0;
    /** Requests refused with DEADLINE_SHED (never retried: the deadline
     *  is already unmeetable). */
    uint64_t deadlineShed = 0;
    /** RELOAD control calls accepted / rejected by the server. */
    uint64_t reloadsOk = 0;
    uint64_t reloadsRejected = 0;
    /** Requests sent with a client-minted trace id. */
    uint64_t traced = 0;
};

class Client
{
  public:
    explicit Client(ClientParams params);
    ~Client();

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    /**
     * Map reads under one tenant + budget.  Retries RETRY_AFTER /
     * ShuttingDown / transport failures with backoff; returns Ok with
     * the final response (which may itself be Error — protocol-level
     * failures are the caller's to interpret), or ResourceExhausted
     * once maxAttempts rejections/failures pile up.
     */
    util::Status mapReads(const std::string& tenant,
                          const std::vector<map::Read>& reads,
                          const resilience::WorkBudget& budget,
                          Response& out);

    /** One unretried round trip (chaos tests poke the raw path). */
    util::Status call(const Request& request, Response& out);

    /**
     * Ask the daemon to hot-swap its pangenome to the container at
     * `path` (one unretried RELOAD control round trip).  Ok means the
     * exchange worked; `out.status` says whether the swap was published
     * (ReloadOk) or rejected with the old index still serving
     * (ReloadRejected, `out.message` carries the reason).
     */
    util::Status reload(const std::string& path, Response& out);

    /**
     * Fetch the daemon's live introspection snapshot (one unretried
     * STATS control round trip).  On Ok, `out.status` is StatsOk and
     * `out.message` carries the JSON (queue depths, per-tenant load,
     * worker heartbeats, stage latencies, slowest in-flight traces).
     */
    util::Status queryStats(Response& out);

    const ClientStats& stats() const { return stats_; }
    uint64_t nextId() { return nextId_++; }

  private:
    util::Status ensureConnected();
    void disconnect();
    void capture(const std::string& path,
                 const std::vector<uint8_t>& payload);
    uint32_t backoffMillis(uint32_t attempt, uint32_t retry_after);

    ClientParams params_;
    int fd_ = -1;
    uint64_t nextId_ = 1;
    util::Rng rng_;
    ClientStats stats_;
};

} // namespace mg::serve
