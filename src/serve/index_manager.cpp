#include "serve/index_manager.h"

#include "fault/fault.h"
#include "util/common.h"
#include "util/status.h"
#include "util/timer.h"

namespace mg::serve {

namespace {

/** RAII publish window: pins see nullptr while this is alive. */
class PublishWindow
{
  public:
    explicit PublishWindow(std::atomic<bool>& flag) : flag_(flag)
    {
        flag_.store(true, std::memory_order_release);
    }
    ~PublishWindow() { flag_.store(false, std::memory_order_release); }

  private:
    std::atomic<bool>& flag_;
};

} // namespace

IndexManager::IndexManager(const graph::VariationGraph& graph,
                           const gbwt::Gbwt& gbwt,
                           const index::MinimizerIndex& minimizers,
                           const index::DistanceIndex& distance,
                           giraffe::SessionParams session,
                           std::string source, std::string load_mode,
                           double load_seconds)
    : sessionParams_(session)
{
    auto gen = std::make_shared<Generation>();
    gen->number = 1;
    gen->source = std::move(source);
    gen->loadMode = std::move(load_mode);
    gen->loadSeconds = load_seconds;
    gen->graph = &graph;
    gen->gbwt = &gbwt;
    gen->minimizers = &minimizers;
    gen->distance = &distance;
    gen->session = std::make_unique<giraffe::MapSession>(
        graph, gbwt, minimizers, distance, sessionParams_);
    current_ = std::move(gen);
}

IndexManager::IndexManager(io::IndexedPangenome&& pangenome,
                           giraffe::SessionParams session,
                           std::string source)
    : sessionParams_(session)
{
    auto gen = std::make_shared<Generation>();
    gen->number = 1;
    gen->source = std::move(source);
    gen->loadMode = io::loadModeName(pangenome.info.mode);
    gen->loadSeconds = pangenome.info.loadSeconds;
    gen->owned.emplace(std::move(pangenome));
    gen->graph = &gen->owned->graph;
    gen->gbwt = &gen->owned->gbwt;
    gen->minimizers = &gen->owned->minimizers;
    gen->distance = &gen->owned->distance;
    gen->session = std::make_unique<giraffe::MapSession>(
        *gen->graph, *gen->gbwt, *gen->minimizers, *gen->distance,
        sessionParams_);
    current_ = std::move(gen);
}

IndexManager::Handle
IndexManager::pin() const
{
    if (publishing_.load(std::memory_order_acquire)) {
        return nullptr;
    }
    std::lock_guard<std::mutex> lock(pinMutex_);
    return current_;
}

IndexManager::Handle
IndexManager::current() const
{
    std::lock_guard<std::mutex> lock(pinMutex_);
    return current_;
}

uint64_t
IndexManager::generation() const
{
    std::lock_guard<std::mutex> lock(pinMutex_);
    return current_->number;
}

void
IndexManager::publish(Handle next)
{
    std::lock_guard<std::mutex> lock(pinMutex_);
    Retired retired;
    retired.number = current_->number;
    retired.generation = current_;
    if (current_->owned && current_->owned->mapping) {
        retired.mapping = current_->owned->mapping;
    }
    retired_.push_back(std::move(retired));
    ++retiredCount_;
    current_ = std::move(next);
}

SwapOutcome
IndexManager::swap(const std::string& path, obs::Hub* hub)
{
    std::lock_guard<std::mutex> swap_lock(swapMutex_);
    SwapOutcome outcome;
    Handle serving = current();
    outcome.generation = serving->number;

    util::WallTimer timer;
    auto gen = std::make_shared<Generation>();
    try {
        // -- load: read and deep-validate the image before binding it.
        // This is the open/validate split: a corrupt replacement is
        // rejected from its bytes alone, with the serving index never
        // touched.  (The re-validation during load below is therefore
        // belt and braces, not the rejection path.)
        fault::inject("serve.swap.load");
        util::Status valid = io::validatePangenomeFile(path, true);
        if (!valid.ok()) {
            outcome.reason = valid.toString();
            return outcome;
        }
        io::LoadOptions options;
        options.minimizer = serving->minimizers->params();
        options.prefetchFirstQuery = true;
        gen->owned.emplace(io::loadPangenome(path, options));

        // -- validate: the image is structurally sound; now check it is
        // compatible with the serving contract.
        fault::inject("serve.swap.validate");
        const io::IndexedPangenome& loaded = *gen->owned;
        if (loaded.graph.numNodes() == 0) {
            outcome.reason = "replacement pangenome has no nodes";
            return outcome;
        }
        const index::MinimizerParams& now =
            serving->minimizers->params();
        const index::MinimizerParams& next = loaded.minimizers.params();
        if (next.k != now.k || next.w != now.w) {
            outcome.reason = util::cat(
                "replacement minimizer parameters (k=", next.k,
                ",w=", next.w, ") do not match serving (k=", now.k,
                ",w=", now.w, ")");
            return outcome;
        }

        gen->number = serving->number + 1;
        gen->source = path;
        gen->loadMode = io::loadModeName(loaded.info.mode);
        gen->graph = &gen->owned->graph;
        gen->gbwt = &gen->owned->gbwt;
        gen->minimizers = &gen->owned->minimizers;
        gen->distance = &gen->owned->distance;
        gen->session = std::make_unique<giraffe::MapSession>(
            *gen->graph, *gen->gbwt, *gen->minimizers, *gen->distance,
            sessionParams_);
        // Warm every worker slot *before* publish so the first post-swap
        // request pays no lazy-init cost inside the new generation.
        gen->session->warmup(hub);

        // -- publish: raise the window (late pins -> RETRY_AFTER), then
        // flip the handle under the pin mutex.  A fault here fires with
        // the window up but the old generation still published, so a
        // Throw rolls back cleanly and a Crash models dying mid-swap
        // with the old image still the durable truth.
        {
            PublishWindow window(publishing_);
            fault::inject("serve.swap.publish");
            gen->loadSeconds = timer.seconds();
            outcome.loadSeconds = gen->loadSeconds;
            outcome.generation = gen->number;
            publish(std::move(gen));
        }
    } catch (const util::Error& err) {
        outcome.accepted = false;
        outcome.generation = serving->number;
        outcome.reason = err.what();
        return outcome;
    }
    outcome.accepted = true;

    // -- retire: the old handle now lives only in pinned requests; a
    // fault here must not un-publish (the flip already happened).
    try {
        fault::inject("serve.swap.retire");
    } catch (const util::Error&) {
        // Retirement bookkeeping is passive; nothing to undo.
    }
    return outcome;
}

uint64_t
IndexManager::retiredTotal() const
{
    std::lock_guard<std::mutex> lock(pinMutex_);
    return retiredCount_;
}

size_t
IndexManager::retiredAlive() const
{
    std::lock_guard<std::mutex> lock(pinMutex_);
    size_t alive = 0;
    for (const Retired& retired : retired_) {
        if (!retired.generation.expired()) {
            ++alive;
        }
    }
    return alive;
}

size_t
IndexManager::retiredMappingsAlive() const
{
    std::lock_guard<std::mutex> lock(pinMutex_);
    size_t alive = 0;
    for (const Retired& retired : retired_) {
        if (!retired.mapping.expired()) {
            ++alive;
        }
    }
    return alive;
}

} // namespace mg::serve
