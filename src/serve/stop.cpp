#include "serve/stop.h"

#include <csignal>
#include <cstdint>
#include <fcntl.h>
#include <unistd.h>

namespace mg::serve {

namespace {

std::atomic<bool> g_stop{false};
std::atomic<bool> g_reload{false};
int g_pipe[2] = { -1, -1 };
std::atomic<bool> g_installed{false};
std::atomic<bool> g_reloadInstalled{false};

/** Async-signal-safe: one atomic store + one write(2). */
void
stopHandler(int /*sig*/)
{
    g_stop.store(true, std::memory_order_release);
    if (g_pipe[1] >= 0) {
        uint8_t byte = 1;
        // Best effort; the pipe is non-blocking so a flooded pipe (many
        // signals) cannot wedge the handler.
        [[maybe_unused]] ssize_t n = ::write(g_pipe[1], &byte, 1);
    }
}

/** Async-signal-safe SIGHUP handler: flag + shared-pipe wake. */
void
reloadHandler(int /*sig*/)
{
    g_reload.store(true, std::memory_order_release);
    if (g_pipe[1] >= 0) {
        uint8_t byte = 1;
        [[maybe_unused]] ssize_t n = ::write(g_pipe[1], &byte, 1);
    }
}

} // namespace

void
installStopHandlers()
{
    bool expected = false;
    if (!g_installed.compare_exchange_strong(expected, true)) {
        return;
    }
    if (::pipe(g_pipe) == 0) {
        ::fcntl(g_pipe[0], F_SETFL, O_NONBLOCK);
        ::fcntl(g_pipe[1], F_SETFL, O_NONBLOCK);
    }
    struct sigaction action {};
    action.sa_handler = &stopHandler;
    sigemptyset(&action.sa_mask);
    // No SA_RESTART: a blocking read in the main thread should come back
    // with EINTR so the stop is observed promptly (io::readFull resumes
    // transfers that should continue).
    action.sa_flags = 0;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
}

void
installReloadHandler()
{
    bool expected = false;
    if (!g_reloadInstalled.compare_exchange_strong(expected, true)) {
        return;
    }
    struct sigaction action {};
    action.sa_handler = &reloadHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    ::sigaction(SIGHUP, &action, nullptr);
}

bool
reloadRequested() noexcept
{
    return g_reload.load(std::memory_order_acquire);
}

void
clearReloadRequest() noexcept
{
    g_reload.store(false, std::memory_order_release);
}

bool
stopRequested() noexcept
{
    return g_stop.load(std::memory_order_acquire);
}

const std::atomic<bool>*
stopFlag() noexcept
{
    return &g_stop;
}

int
stopFd() noexcept
{
    return g_pipe[0];
}

void
resetStopForTests() noexcept
{
    g_stop.store(false, std::memory_order_release);
    g_reload.store(false, std::memory_order_release);
    if (g_pipe[0] >= 0) {
        uint8_t drain[16];
        while (::read(g_pipe[0], drain, sizeof(drain)) > 0) {
        }
    }
}

} // namespace mg::serve
