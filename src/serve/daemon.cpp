#include "serve/daemon.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

#include "fault/fault.h"
#include "io/fd.h"
#include "util/common.h"
#include "util/timer.h"

namespace mg::serve {

namespace {

/** Default QoS when the operator configures no tenants. */
std::vector<TenantConfig>
defaultTenants()
{
    TenantConfig config;
    config.name = "default";
    return { config };
}

std::vector<std::string>
tenantNames(const std::vector<TenantConfig>& tenants)
{
    std::vector<std::string> names;
    names.reserve(tenants.size());
    for (const TenantConfig& tenant : tenants) {
        names.push_back(tenant.name);
    }
    return names;
}

} // namespace

Daemon::Connection::~Connection()
{
    // Last reference gone (reader exited, no worker holds a job for
    // this peer): now the fd number can be safely recycled.
    if (fd >= 0) {
        ::close(fd);
    }
}

Daemon::Daemon(const graph::VariationGraph& graph, const gbwt::Gbwt& gbwt,
               const index::MinimizerIndex& minimizers,
               const index::DistanceIndex& distance, DaemonParams params)
    : graph_(graph), params_(std::move(params)),
      hub_(std::make_unique<obs::Hub>(
          params_.workers + 1,
          tenantNames(params_.tenants.empty() ? defaultTenants()
                                              : params_.tenants))),
      session_(graph, gbwt, minimizers, distance,
               [&] {
                   giraffe::SessionParams session = params_.session;
                   session.workers = params_.workers;
                   return session;
               }()),
      board_(params_.workers)
{
    MG_CHECK(params_.workers > 0, "daemon needs at least one worker");
    MG_CHECK(!params_.socketPath.empty(), "daemon needs a socket path");
    report_.indexLoadMode = params_.indexLoadMode;
    report_.indexLoadSeconds = params_.indexLoadSeconds;
    if (params_.tenants.empty()) {
        params_.tenants = defaultTenants();
    }
    queue_ = std::make_unique<AdmissionQueue<Job>>(
        params_.queueCapacity, params_.tenants, params_.retryBaseMillis);
    watchdog_ =
        std::make_unique<sched::Watchdog>(board_, params_.watchdogParams);
    watchdog_->attachFlightRecorder(&hub_->flight());
}

Daemon::~Daemon()
{
    stop();
}

obs::Registry::ThreadSlab*
Daemon::controlSlab()
{
    // Control-plane threads (acceptor + readers) share the extra slab
    // past the workers'.  The cells are atomics, so the multi-writer
    // sharing is race-free; contention is irrelevant off the hot path.
    return hub_->slab(params_.workers);
}

void
Daemon::start()
{
    MG_CHECK(state_.load() == DaemonState::Idle,
             "daemon started twice");
    io::ignoreSigpipe();
    listenFd_ = io::listenUnix(params_.socketPath);
    MG_CHECK(::pipe(wakePipe_) == 0, "cannot create daemon wake pipe");
    // Freeze the metric layout before any worker runs.
    controlSlab();
    state_.store(DaemonState::Running);
    if (params_.watchdog) {
        watchdog_->start();
    }
    workers_.reserve(params_.workers);
    for (size_t w = 0; w < params_.workers; ++w) {
        workers_.emplace_back([this, w] { workerLoop(w); });
    }
    acceptor_ = std::thread([this] { acceptorLoop(); });
}

void
Daemon::acceptorLoop()
{
    for (;;) {
        if (state_.load() != DaemonState::Running) {
            break;
        }
        struct pollfd fds[2] = {
            { listenFd_, POLLIN, 0 },
            { wakePipe_[0], POLLIN, 0 },
        };
        int rc = ::poll(fds, 2, 200);
        if (state_.load() != DaemonState::Running) {
            break;
        }
        if (rc <= 0 || (fds[0].revents & POLLIN) == 0) {
            continue; // timeout, EINTR, or just the wake pipe
        }
        try {
            // Fault site: the accept path failing or stalling.
            fault::inject("serve.accept");
        } catch (const util::Error&) {
            controlSlab()->add(hub_->serve().badFrames);
            continue;
        }
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            continue; // EINTR/ECONNABORTED: not fatal for a server
        }
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        std::lock_guard<std::mutex> lock(connMutex_);
        connections_.push_back(conn);
        readers_.emplace_back(
            [this, conn]() mutable { readerLoop(std::move(conn)); });
    }
    // Draining: close the listen socket *now*, not at stop().  A client
    // connecting mid-drain would otherwise land in the kernel backlog
    // with nobody ever accepting — its request written, its read blocked
    // forever.  Refusing the connect (ECONNREFUSED) turns that hang into
    // a transport failure the client retries with backoff.
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
}

void
Daemon::readerLoop(std::shared_ptr<Connection> conn)
{
    std::vector<uint8_t> payload;
    while (conn->open.load()) {
        util::Status status;
        try {
            status = readFrame(conn->fd, payload);
        } catch (const util::Error&) {
            // Injected serve.read throw: treat like an I/O failure.
            closeConnection(*conn);
            break;
        }
        if (!status.ok()) {
            if (isCleanEof(status) ||
                status.code == util::StatusCode::IoError) {
                closeConnection(*conn);
                break;
            }
            // Damaged frame: the stream may be desynchronized, so answer
            // once (best effort) and drop the connection.
            controlSlab()->add(hub_->serve().badFrames);
            Response error;
            error.status = ResponseStatus::Error;
            error.message = status.toString();
            respond(*conn, error);
            closeConnection(*conn);
            break;
        }
        Request request;
        util::Status decoded = decodeRequest(payload, request);
        if (!decoded.ok()) {
            controlSlab()->add(hub_->serve().badFrames);
            Response error;
            error.status = ResponseStatus::Error;
            error.message = decoded.toString();
            respond(*conn, error);
            closeConnection(*conn);
            break;
        }
        try {
            handleRequest(conn, std::move(request));
        } catch (const util::Error& err) {
            // Nothing past this point may kill the daemon; answer and
            // keep serving the connection.
            Response error;
            error.id = request.id;
            error.status = ResponseStatus::Error;
            error.message = err.what();
            respond(*conn, error);
        }
    }
}

void
Daemon::handleRequest(std::shared_ptr<Connection>& conn,
                      Request&& request)
{
    const obs::ServeMetricIds& serve = hub_->serve();
    obs::Registry::ThreadSlab* slab = controlSlab();
    slab->add(serve.requests);

    size_t tenant = request.tenant.empty()
                        ? 0
                        : queue_->tenantIndex(request.tenant);
    if (tenant == SIZE_MAX) {
        Response error;
        error.id = request.id;
        error.status = ResponseStatus::Error;
        error.message = util::cat("unknown tenant '", request.tenant, "'");
        respond(*conn, error);
        return;
    }
    const obs::ServeTenantMetricIds& ids = serve.perTenant[tenant];

    if (request.reads.size() > params_.maxReadsPerRequest) {
        slab->add(ids.errors);
        Response error;
        error.id = request.id;
        error.status = ResponseStatus::Error;
        error.message =
            util::cat("request carries ", request.reads.size(),
                      " reads; limit is ", params_.maxReadsPerRequest);
        respond(*conn, error);
        return;
    }

    if (state_.load() != DaemonState::Running) {
        slab->add(ids.shed);
        Response shutdown;
        shutdown.id = request.id;
        shutdown.status = ResponseStatus::ShuttingDown;
        shutdown.retryAfterMillis = params_.retryBaseMillis;
        respond(*conn, shutdown);
        return;
    }

    // Fault site: the enqueue step itself failing.
    fault::inject("serve.enqueue");

    Job job;
    job.conn = conn;
    uint64_t id = request.id;
    job.request = std::move(request);
    job.tenant = tenant;
    job.admittedNanos = util::nowNanos();
    AdmissionVerdict verdict = queue_->tryPush(tenant, std::move(job));
    if (verdict.admitted()) {
        slab->add(ids.accepted);
        slab->raise(serve.queueDepth, verdict.depth);
        return;
    }
    slab->add(ids.shed);
    Response shed;
    shed.id = id;
    shed.status = verdict.outcome == Admission::Closed
                      ? ResponseStatus::ShuttingDown
                      : ResponseStatus::RetryAfter;
    shed.retryAfterMillis = verdict.retryAfterMillis;
    respond(*conn, shed);
}

void
Daemon::workerLoop(size_t worker)
{
    Job job;
    size_t tenant = 0;
    while (queue_->pop(job, tenant)) {
        try {
            processJob(worker, job);
        } catch (const util::Error& err) {
            hub_->slab(worker)->add(
                hub_->serve().perTenant[tenant].errors);
            Response error;
            error.id = job.request.id;
            error.status = ResponseStatus::Error;
            error.message = err.what();
            respond(*job.conn, error);
        }
        job.conn.reset();
        queue_->complete(tenant);
    }
}

void
Daemon::processJob(size_t worker, Job& job)
{
    const obs::ServeMetricIds& serve = hub_->serve();
    const obs::ServeTenantMetricIds& ids = serve.perTenant[job.tenant];
    obs::Registry::ThreadSlab* slab = hub_->slab(worker);

    // Past the drain deadline, queued work is shed, not mapped: the
    // drain contract is "finish or degrade within the deadline", and
    // these requests would start after it.
    uint64_t drain_deadline = drainDeadlineNanos_.load();
    if (drain_deadline != 0 && util::nowNanos() >= drain_deadline) {
        slab->add(ids.shed);
        slab->add(serve.drainShed);
        Response shed;
        shed.id = job.request.id;
        shed.status = ResponseStatus::ShuttingDown;
        shed.retryAfterMillis = params_.retryBaseMillis;
        respond(*job.conn, shed);
        return;
    }

    resilience::WorkBudget budget =
        requestBudget(job.request, params_.maxBudget);
    giraffe::SessionResult result = session_.map(
        worker, job.request.reads, budget, &board_, hub_.get());

    Response ok;
    ok.id = job.request.id;
    ok.status = ResponseStatus::Ok;
    ok.mappedReads = result.mappedReads;
    ok.degradedReads = result.degradedReads;
    ok.gaf = std::move(result.gaf);
    if (!respond(*job.conn, ok)) {
        // The peer vanished mid-request; the work is done but the
        // response has nowhere to go.  Count it so no request is ever
        // silently unaccounted for.
        slab->add(ids.errors);
        std::fprintf(stderr,
                     "mgd: response %llu (tenant %s) lost: peer gone\n",
                     static_cast<unsigned long long>(job.request.id),
                     queue_->tenant(job.tenant).name.c_str());
        return;
    }
    slab->add(ids.completed);
    if (result.degradedReads > 0) {
        slab->add(ids.degraded);
    }
    slab->observe(ids.latency, util::nowNanos() - job.admittedNanos);
}

bool
Daemon::respond(Connection& conn, const Response& response)
{
    if (!conn.open.load()) {
        return false;
    }
    std::vector<uint8_t> payload = encodeResponse(response);
    std::lock_guard<std::mutex> lock(conn.writeMutex);
    util::Status status;
    try {
        status = writeFrame(conn.fd, payload);
    } catch (const util::Error&) {
        closeConnection(conn);
        return false;
    }
    if (!status.ok()) {
        closeConnection(conn);
        return false;
    }
    return true;
}

void
Daemon::closeConnection(Connection& conn)
{
    // Shut down both directions but leave the close() of the fd to the
    // Connection destructor: a worker may still hold the shared_ptr and
    // the fd number must not be recycled under it.
    bool was_open = conn.open.exchange(false);
    if (was_open) {
        ::shutdown(conn.fd, SHUT_RDWR);
    }
}

void
Daemon::requestDrain()
{
    DaemonState expected = DaemonState::Running;
    if (!state_.compare_exchange_strong(expected,
                                        DaemonState::Draining)) {
        return; // already draining/stopped
    }
    controlSlab()->add(hub_->serve().drains);
    drainDeadlineNanos_.store(
        util::nowNanos() +
        static_cast<uint64_t>(params_.drainDeadlineSeconds * 1e9));
    // Stop admitting and wake the acceptor out of poll().
    queue_->close();
    if (wakePipe_[1] >= 0) {
        uint8_t byte = 1;
        (void)io::writeFull(wakePipe_[1], &byte, 1);
    }
}

void
Daemon::stop()
{
    if (state_.load() == DaemonState::Idle ||
        state_.load() == DaemonState::Stopped) {
        state_.store(DaemonState::Stopped);
        return;
    }
    requestDrain();

    // Drain supervision: give queued + in-flight work until the deadline,
    // then force — cancel tokens make in-flight requests return degraded
    // at their next cancellation point, and workers shed what is still
    // queued with ShuttingDown responses.
    const uint64_t deadline = drainDeadlineNanos_.load();
    while (queue_->depth() > 0 || queue_->inFlight() > 0) {
        if (util::nowNanos() >= deadline) {
            report_.drainClean = false;
            controlSlab()->add(hub_->serve().drainForced,
                               queue_->inFlight());
            for (size_t w = 0; w < params_.workers; ++w) {
                board_.slot(w).token.cancel(
                    resilience::CancelReason::Deadline);
            }
            break;
        }
        ::usleep(2000);
    }
    for (std::thread& worker : workers_) {
        worker.join();
    }
    workers_.clear();
    watchdog_->stop();

    // Every response is out; now unblock the readers and the acceptor.
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (const std::shared_ptr<Connection>& conn : connections_) {
            closeConnection(*conn);
        }
    }
    if (acceptor_.joinable()) {
        acceptor_.join();
    }
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (std::thread& reader : readers_) {
            reader.join();
        }
        readers_.clear();
        connections_.clear();
    }
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    for (int& fd : wakePipe_) {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
    ::unlink(params_.socketPath.c_str());

    // Final accounting from the registry (counters are already summed
    // across worker + control slabs by snapshot()).
    obs::Snapshot snap = hub_->registry().snapshot();
    const obs::ServeMetricIds& serve = hub_->serve();
    report_.accepted = 0;
    report_.completed = 0;
    report_.shed = 0;
    report_.errors = 0;
    for (const std::string& tenant : serve.tenants) {
        auto named = [&tenant](const char* stem) {
            return std::string(stem) + "{tenant=\"" + tenant + "\"}";
        };
        report_.accepted += snap.valueOf(named("mg_serve_accepted_total"));
        report_.completed +=
            snap.valueOf(named("mg_serve_completed_total"));
        report_.shed += snap.valueOf(named("mg_serve_shed_total"));
        report_.errors += snap.valueOf(named("mg_serve_errors_total"));
    }
    report_.drainShed = snap.valueOf("mg_serve_drain_shed_total");
    report_.badFrames = snap.valueOf("mg_serve_bad_frames_total");
    report_.watchdogCancels = watchdog_->events().size();
    state_.store(DaemonState::Stopped);
}

std::vector<TenantConfig>
parseTenantSpec(const std::string& spec)
{
    std::vector<TenantConfig> tenants;
    size_t start = 0;
    while (start <= spec.size()) {
        size_t comma = spec.find(',', start);
        std::string entry =
            spec.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        start = comma == std::string::npos ? spec.size() + 1 : comma + 1;
        if (entry.empty()) {
            continue;
        }
        TenantConfig config;
        size_t colon = entry.find(':');
        config.name = entry.substr(0, colon);
        MG_CHECK(!config.name.empty(), "tenant spec '", entry,
                 "' has no name");
        while (colon != std::string::npos) {
            size_t next = entry.find(':', colon + 1);
            std::string field =
                entry.substr(colon + 1, next == std::string::npos
                                            ? std::string::npos
                                            : next - colon - 1);
            colon = next;
            size_t eq = field.find('=');
            MG_CHECK(eq != std::string::npos, "tenant field '", field,
                     "' is not key=value");
            std::string key = field.substr(0, eq);
            std::string text = field.substr(eq + 1);
            char* end = nullptr;
            uint64_t value = std::strtoull(text.c_str(), &end, 10);
            MG_CHECK(end != nullptr && *end == '\0' && !text.empty(),
                     "tenant field '", field, "' is not a number");
            if (key == "weight") {
                config.weight = static_cast<uint32_t>(value);
            } else if (key == "inflight") {
                config.maxInFlight = value;
            } else if (key == "queued") {
                config.maxQueued = value;
            } else {
                MG_CHECK(false, "unknown tenant field '", key, "'");
            }
        }
        tenants.push_back(std::move(config));
    }
    return tenants;
}

} // namespace mg::serve
