#include "serve/daemon.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

#include "fault/fault.h"
#include "io/fd.h"
#include "obs/json.h"
#include "util/common.h"
#include "util/timer.h"

namespace mg::serve {

namespace {

/** Default QoS when the operator configures no tenants. */
std::vector<TenantConfig>
defaultTenants()
{
    TenantConfig config;
    config.name = "default";
    return { config };
}

const char*
daemonStateName(DaemonState state)
{
    switch (state) {
      case DaemonState::Idle:
        return "idle";
      case DaemonState::Running:
        return "running";
      case DaemonState::Draining:
        return "draining";
      case DaemonState::Stopped:
        return "stopped";
    }
    return "?";
}

std::vector<std::string>
tenantNames(const std::vector<TenantConfig>& tenants)
{
    std::vector<std::string> names;
    names.reserve(tenants.size());
    for (const TenantConfig& tenant : tenants) {
        names.push_back(tenant.name);
    }
    return names;
}

} // namespace

Daemon::Connection::~Connection()
{
    // Last reference gone (reader exited, no worker holds a job for
    // this peer): now the fd number can be safely recycled.
    if (fd >= 0) {
        ::close(fd);
    }
}

Daemon::Daemon(const graph::VariationGraph& graph, const gbwt::Gbwt& gbwt,
               const index::MinimizerIndex& minimizers,
               const index::DistanceIndex& distance, DaemonParams params)
    : params_(std::move(params)),
      hub_(std::make_unique<obs::Hub>(
          params_.workers + 1,
          tenantNames(params_.tenants.empty() ? defaultTenants()
                                              : params_.tenants),
          params_.flightRingSize)),
      board_(params_.workers)
{
    MG_CHECK(params_.workers > 0, "daemon needs at least one worker");
    MG_CHECK(!params_.socketPath.empty(), "daemon needs a socket path");
    report_.indexLoadMode = params_.indexLoadMode;
    report_.indexLoadSeconds = params_.indexLoadSeconds;
    if (params_.tenants.empty()) {
        params_.tenants = defaultTenants();
    }
    giraffe::SessionParams session = params_.session;
    session.workers = params_.workers;
    index_ = std::make_unique<IndexManager>(
        graph, gbwt, minimizers, distance, session, "generated",
        params_.indexLoadMode, params_.indexLoadSeconds);
    queue_ = std::make_unique<AdmissionQueue<Job>>(
        params_.queueCapacity, params_.tenants, params_.retryBaseMillis);
    watchdog_ =
        std::make_unique<sched::Watchdog>(board_, params_.watchdogParams);
    watchdog_->attachFlightRecorder(&hub_->flight());
    initTracing();
}

Daemon::Daemon(io::IndexedPangenome&& pangenome, std::string source,
               DaemonParams params)
    : params_(std::move(params)),
      hub_(std::make_unique<obs::Hub>(
          params_.workers + 1,
          tenantNames(params_.tenants.empty() ? defaultTenants()
                                              : params_.tenants),
          params_.flightRingSize)),
      board_(params_.workers)
{
    MG_CHECK(params_.workers > 0, "daemon needs at least one worker");
    MG_CHECK(!params_.socketPath.empty(), "daemon needs a socket path");
    params_.indexLoadMode = io::loadModeName(pangenome.info.mode);
    params_.indexLoadSeconds = pangenome.info.loadSeconds;
    report_.indexLoadMode = params_.indexLoadMode;
    report_.indexLoadSeconds = params_.indexLoadSeconds;
    if (params_.tenants.empty()) {
        params_.tenants = defaultTenants();
    }
    giraffe::SessionParams session = params_.session;
    session.workers = params_.workers;
    index_ = std::make_unique<IndexManager>(std::move(pangenome), session,
                                            std::move(source));
    queue_ = std::make_unique<AdmissionQueue<Job>>(
        params_.queueCapacity, params_.tenants, params_.retryBaseMillis);
    watchdog_ =
        std::make_unique<sched::Watchdog>(board_, params_.watchdogParams);
    watchdog_->attachFlightRecorder(&hub_->flight());
    initTracing();
}

void
Daemon::initTracing()
{
    obs::RequestTracer::Params tracer_params;
    tracer_params.lanes = params_.workers;
    tracer_params.sampleRate = params_.traceSample;
    tracer_params.exemplars = params_.traceExemplars;
    tracer_ = std::make_unique<obs::RequestTracer>(tracer_params);
    tenantEwmaNanos_ =
        std::make_unique<std::atomic<uint64_t>[]>(params_.tenants.size());
    for (size_t t = 0; t < params_.tenants.size(); ++t) {
        tenantEwmaNanos_[t].store(0, std::memory_order_relaxed);
    }
}

void
Daemon::commitTrace(size_t lane, obs::TraceContext&& ctx,
                    std::string_view disposition,
                    obs::Registry::ThreadSlab* slab)
{
    ctx.endNanos = util::nowNanos();
    ctx.disposition = std::string(disposition);
    const obs::ServeMetricIds& serve = hub_->serve();
    for (const obs::Span& span : ctx.spans) {
        slab->observe(serve.stageNanos[static_cast<size_t>(span.stage)],
                      span.endNanos - span.beginNanos);
    }
    tracer_->commit(lane, std::move(ctx));
}

Daemon::~Daemon()
{
    stop();
}

obs::Registry::ThreadSlab*
Daemon::controlSlab()
{
    // Control-plane threads (acceptor + readers) share the extra slab
    // past the workers'.  The cells are atomics, so the multi-writer
    // sharing is race-free; contention is irrelevant off the hot path.
    return hub_->slab(params_.workers);
}

void
Daemon::start()
{
    MG_CHECK(state_.load() == DaemonState::Idle,
             "daemon started twice");
    io::ignoreSigpipe();
    listenFd_ = io::listenUnix(params_.socketPath);
    MG_CHECK(::pipe(wakePipe_) == 0, "cannot create daemon wake pipe");
    // Freeze the metric layout before any worker runs.
    controlSlab();
    state_.store(DaemonState::Running);
    if (params_.watchdog) {
        watchdog_->start();
    }
    workers_.reserve(params_.workers);
    for (size_t w = 0; w < params_.workers; ++w) {
        workers_.emplace_back([this, w] { workerLoop(w); });
    }
    acceptor_ = std::thread([this] { acceptorLoop(); });
}

void
Daemon::acceptorLoop()
{
    for (;;) {
        if (state_.load() != DaemonState::Running) {
            break;
        }
        struct pollfd fds[2] = {
            { listenFd_, POLLIN, 0 },
            { wakePipe_[0], POLLIN, 0 },
        };
        int rc = ::poll(fds, 2, 200);
        if (state_.load() != DaemonState::Running) {
            break;
        }
        if (rc <= 0 || (fds[0].revents & POLLIN) == 0) {
            continue; // timeout, EINTR, or just the wake pipe
        }
        try {
            // Fault site: the accept path failing or stalling.
            fault::inject("serve.accept");
        } catch (const util::Error&) {
            controlSlab()->add(hub_->serve().badFrames);
            continue;
        }
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            continue; // EINTR/ECONNABORTED: not fatal for a server
        }
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        std::lock_guard<std::mutex> lock(connMutex_);
        connections_.push_back(conn);
        readers_.emplace_back(
            [this, conn]() mutable { readerLoop(std::move(conn)); });
    }
    // Draining: close the listen socket *now*, not at stop().  A client
    // connecting mid-drain would otherwise land in the kernel backlog
    // with nobody ever accepting — its request written, its read blocked
    // forever.  Refusing the connect (ECONNREFUSED) turns that hang into
    // a transport failure the client retries with backoff.
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
}

void
Daemon::readerLoop(std::shared_ptr<Connection> conn)
{
    std::vector<uint8_t> payload;
    while (conn->open.load()) {
        util::Status status;
        uint64_t frame_arrival = 0;
        try {
            status = readFrame(conn->fd, payload, &frame_arrival);
        } catch (const util::Error&) {
            // Injected serve.read throw: treat like an I/O failure.
            closeConnection(*conn);
            break;
        }
        const uint64_t accept_end = util::nowNanos();
        if (!status.ok()) {
            if (isCleanEof(status) ||
                status.code == util::StatusCode::IoError) {
                closeConnection(*conn);
                break;
            }
            // Damaged frame: the stream may be desynchronized, so answer
            // once (best effort) and drop the connection.
            controlSlab()->add(hub_->serve().badFrames);
            Response error;
            error.status = ResponseStatus::Error;
            error.message = status.toString();
            respond(*conn, error);
            closeConnection(*conn);
            break;
        }
        MessageKind kind = MessageKind::Request;
        if (peekKind(payload, kind).ok() &&
            kind == MessageKind::Control) {
            ControlRequest control;
            util::Status decoded = decodeControl(payload, control);
            if (!decoded.ok()) {
                controlSlab()->add(hub_->serve().badFrames);
                Response error;
                error.status = ResponseStatus::Error;
                error.message = decoded.toString();
                respond(*conn, error);
                closeConnection(*conn);
                break;
            }
            try {
                handleControl(conn, std::move(control));
            } catch (const util::Error& err) {
                Response error;
                error.id = control.id;
                error.status = ResponseStatus::Error;
                error.message = err.what();
                respond(*conn, error);
            }
            continue;
        }
        Request request;
        util::Status decoded = decodeRequest(payload, request);
        const uint64_t decode_end = util::nowNanos();
        if (!decoded.ok()) {
            controlSlab()->add(hub_->serve().badFrames);
            Response error;
            error.status = ResponseStatus::Error;
            error.message = decoded.toString();
            respond(*conn, error);
            closeConnection(*conn);
            break;
        }
        try {
            handleRequest(conn, std::move(request), frame_arrival,
                          accept_end, decode_end);
        } catch (const util::Error& err) {
            // Nothing past this point may kill the daemon; answer and
            // keep serving the connection.
            Response error;
            error.id = request.id;
            error.status = ResponseStatus::Error;
            error.message = err.what();
            respond(*conn, error);
        }
    }
}

void
Daemon::handleControl(std::shared_ptr<Connection>& conn,
                      ControlRequest&& control)
{
    if (control.op == ControlOp::Stats) {
        Response response;
        response.id = control.id;
        response.status = ResponseStatus::StatsOk;
        response.generation = index_->generation();
        response.message = statsJson();
        respond(*conn, response);
        return;
    }
    Response response;
    response.id = control.id;
    SwapOutcome outcome = reloadIndex(control.path);
    response.generation = outcome.generation;
    if (outcome.accepted) {
        response.status = ResponseStatus::ReloadOk;
        response.message =
            util::cat("generation ", outcome.generation, " published");
    } else {
        response.status = ResponseStatus::ReloadRejected;
        response.message = outcome.reason;
    }
    respond(*conn, response);
}

SwapOutcome
Daemon::reloadIndex(const std::string& path)
{
    const obs::ServeMetricIds& serve = hub_->serve();
    if (state_.load() != DaemonState::Running) {
        // A swap racing a drain loses: the daemon is on its way down and
        // must not start publishing new state mid-teardown.
        SwapOutcome outcome;
        outcome.generation = index_->generation();
        outcome.reason = "daemon is not running (draining or stopped)";
        controlSlab()->add(serve.reloadsRejected);
        return outcome;
    }
    SwapOutcome outcome = index_->swap(path, hub_.get());
    obs::Registry::ThreadSlab* slab = controlSlab();
    if (outcome.accepted) {
        slab->add(serve.reloads);
        slab->raise(serve.generation, outcome.generation);
        slab->observe(serve.reloadLatency,
                      static_cast<uint64_t>(outcome.loadSeconds * 1e9));
    } else {
        slab->add(serve.reloadsRejected);
    }
    accountRetired();
    return outcome;
}

std::string
Daemon::statsJson()
{
    const uint64_t now = util::nowNanos();
    obs::Snapshot snap = hub_->registry().snapshot();
    const obs::ServeMetricIds& serve = hub_->serve();
    const std::array<obs::RequestTracer::StageExemplar, obs::kSpanStages>
        stage_exemplars = tracer_->stageExemplars();

    obs::JsonWriter w(/*pretty=*/false);
    w.beginObject();
    w.field("minigiraffe_stats", uint64_t{1});
    w.field("state", daemonStateName(state_.load()));
    w.field("now_ns", now);
    w.field("generation", index_->generation());
    w.field("publishing", index_->publishing());
    w.field("reloads", snap.valueOf("mg_serve_reloads_total"));
    w.field("reloads_rejected",
            snap.valueOf("mg_serve_reloads_rejected_total"));
    w.field("generations_retired",
            snap.valueOf("mg_serve_generations_retired_total"));

    w.key("queue").beginObject();
    w.field("depth", static_cast<uint64_t>(queue_->depth()));
    w.field("capacity", static_cast<uint64_t>(queue_->capacity()));
    w.field("in_flight", static_cast<uint64_t>(queue_->inFlight()));
    w.field("peak_depth", static_cast<uint64_t>(queue_->peakDepth()));
    w.endObject();

    const std::vector<TenantLoad> loads = queue_->tenantLoads();
    w.key("tenants").beginArray();
    for (size_t t = 0; t < serve.tenants.size(); ++t) {
        const std::string& name = serve.tenants[t];
        auto named = [&name](const char* stem) {
            return std::string(stem) + "{" + obs::promLabel("tenant", name) +
                   "}";
        };
        w.beginObject();
        w.field("name", name);
        w.field("queued", static_cast<uint64_t>(
                              t < loads.size() ? loads[t].queued : 0));
        w.field("in_flight", static_cast<uint64_t>(
                                 t < loads.size() ? loads[t].inFlight : 0));
        w.field("accepted", snap.valueOf(named("mg_serve_accepted_total")));
        w.field("completed",
                snap.valueOf(named("mg_serve_completed_total")));
        w.field("shed", snap.valueOf(named("mg_serve_shed_total")));
        w.field("deadline_shed",
                snap.valueOf(named("mg_serve_deadline_shed_total")));
        w.field("errors", snap.valueOf(named("mg_serve_errors_total")));
        w.field("ewma_service_ns",
                tenantEwmaNanos_[t].load(std::memory_order_relaxed));
        w.endObject();
    }
    w.endArray();

    w.key("workers").beginArray();
    for (size_t wk = 0; wk < params_.workers; ++wk) {
        const uint64_t beat =
            board_.slot(wk).beatNanos.load(std::memory_order_acquire);
        w.beginObject();
        w.field("worker", static_cast<uint64_t>(wk));
        w.field("busy", beat != 0);
        w.field("heartbeat_age_ns",
                beat != 0 && now > beat ? now - beat : uint64_t{0});
        w.endObject();
    }
    w.endArray();

    w.key("stages").beginArray();
    for (size_t s = 0; s < obs::kSpanStages; ++s) {
        const auto stage = static_cast<obs::SpanStage>(s);
        const std::string metric_name =
            std::string("mg_serve_stage_ns{") +
            obs::promLabel("stage", obs::spanStageName(stage)) + "}";
        const obs::MetricValue* m = snap.find(metric_name);
        w.beginObject();
        w.field("stage", obs::spanStageName(stage));
        if (m != nullptr) {
            w.field("count", m->hist.count());
            w.field("sum_ns", m->hist.sumNanos());
            w.field("mean_ns",
                    static_cast<uint64_t>(m->hist.meanNanos()));
            w.field("p50_ns", static_cast<uint64_t>(m->hist.p50()));
            w.field("p99_ns", static_cast<uint64_t>(m->hist.p99()));
        }
        if (stage_exemplars[s].traceId != 0) {
            w.field("exemplar",
                    obs::traceIdHex(stage_exemplars[s].traceId));
            w.field("exemplar_ns", stage_exemplars[s].nanos);
        }
        w.endObject();
    }
    w.endArray();

    w.key("slowest_in_flight").beginArray();
    for (const obs::RequestTracer::InFlightEntry& entry :
         tracer_->inFlight()) {
        w.beginObject();
        w.field("worker", static_cast<uint64_t>(entry.lane));
        w.field("trace", obs::traceIdHex(entry.traceId));
        w.field("age_ns",
                now > entry.beginNanos ? now - entry.beginNanos
                                       : uint64_t{0});
        w.endObject();
    }
    w.endArray();

    w.key("trace").beginObject();
    w.field("sample_rate", params_.traceSample);
    w.field("committed", tracer_->committedTotal());
    w.field("dropped_spans", tracer_->droppedSpans());
    w.endObject();

    w.endObject();
    return w.str();
}

void
Daemon::accountRetired()
{
    std::lock_guard<std::mutex> lock(retireAccountMutex_);
    const uint64_t released =
        index_->retiredTotal() - index_->retiredAlive();
    const uint64_t seen = retiredAccounted_.load();
    if (released > seen) {
        controlSlab()->add(hub_->serve().generationsRetired,
                           released - seen);
        retiredAccounted_.store(released);
    }
}

void
Daemon::handleRequest(std::shared_ptr<Connection>& conn,
                      Request&& request, uint64_t frame_arrival_nanos,
                      uint64_t accept_end_nanos, uint64_t decode_end_nanos)
{
    const obs::ServeMetricIds& serve = hub_->serve();
    obs::Registry::ThreadSlab* slab = controlSlab();
    slab->add(serve.requests);

    size_t tenant = request.tenant.empty()
                        ? 0
                        : queue_->tenantIndex(request.tenant);
    if (tenant == SIZE_MAX) {
        Response error;
        error.id = request.id;
        error.status = ResponseStatus::Error;
        error.message = util::cat("unknown tenant '", request.tenant, "'");
        respond(*conn, error);
        return;
    }
    const obs::ServeTenantMetricIds& ids = serve.perTenant[tenant];

    // Trace decision: a client-tagged request is always traced; an
    // untagged one is traced when it wins the head-sampling coin flip
    // (the daemon mints its id and echoes it in the response).
    std::unique_ptr<obs::TraceContext> trace;
    if (request.traceId != 0 ||
        (params_.traceSample > 0.0 && tracer_->sampleHead())) {
        trace = std::make_unique<obs::TraceContext>();
        trace->traceId =
            request.traceId != 0 ? request.traceId : tracer_->mint();
        request.traceId = trace->traceId;
        trace->tenant = queue_->tenant(tenant).name;
        const auto reader_lane =
            static_cast<uint32_t>(tracer_->controlLane());
        const uint64_t arrival = frame_arrival_nanos != 0
                                     ? frame_arrival_nanos
                                     : accept_end_nanos;
        trace->beginNanos = arrival;
        trace->span(obs::SpanStage::Accept, reader_lane, arrival,
                    accept_end_nanos);
        trace->span(obs::SpanStage::Decode, reader_lane, accept_end_nanos,
                    decode_end_nanos);
    }

    if (request.reads.size() > params_.maxReadsPerRequest) {
        slab->add(ids.errors);
        Response error;
        error.id = request.id;
        error.status = ResponseStatus::Error;
        error.generation = index_->generation();
        error.message =
            util::cat("request carries ", request.reads.size(),
                      " reads; limit is ", params_.maxReadsPerRequest);
        if (trace) {
            error.traceId = trace->traceId;
            commitTrace(tracer_->controlLane(), std::move(*trace),
                        "error", slab);
        }
        respond(*conn, error);
        return;
    }

    if (state_.load() != DaemonState::Running) {
        slab->add(ids.shed);
        Response shutdown;
        shutdown.id = request.id;
        shutdown.status = ResponseStatus::ShuttingDown;
        shutdown.generation = index_->generation();
        shutdown.retryAfterMillis = params_.retryBaseMillis;
        if (trace) {
            shutdown.traceId = trace->traceId;
            commitTrace(tracer_->controlLane(), std::move(*trace),
                        "shutting-down", slab);
        }
        respond(*conn, shutdown);
        return;
    }

    // Fault site: the enqueue step itself failing.
    fault::inject("serve.enqueue");

    // Pin the serving generation *at admission*: whatever swaps publish
    // while this request waits or maps, its whole index set stays alive
    // until its response is written.  During a swap's publish window the
    // pin refuses instead of racing the flip; those admissions get a
    // RETRY_AFTER whose hint grows with consecutive refusals, so clients
    // back off a stretched publish instead of hammering it.
    const uint64_t pin_start = trace ? util::nowNanos() : 0;
    IndexManager::Handle handle = index_->pin();
    if (trace) {
        trace->span(obs::SpanStage::GenerationPin,
                    static_cast<uint32_t>(tracer_->controlLane()),
                    pin_start, util::nowNanos());
    }
    if (!handle) {
        uint32_t rejects =
            publishRejects_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (rejects > 64) {
            rejects = 64;
        }
        slab->add(ids.shed);
        Response retry;
        retry.id = request.id;
        retry.status = ResponseStatus::RetryAfter;
        retry.generation = index_->generation();
        retry.retryAfterMillis = params_.retryBaseMillis * rejects;
        if (trace) {
            retry.traceId = trace->traceId;
            commitTrace(tracer_->controlLane(), std::move(*trace),
                        "retry-after", slab);
        }
        respond(*conn, retry);
        return;
    }
    publishRejects_.store(0, std::memory_order_relaxed);

    Job job;
    job.conn = conn;
    uint64_t id = request.id;
    const uint64_t generation = handle->number;
    if (trace) {
        trace->generation = generation;
    }
    job.request = std::move(request);
    job.tenant = tenant;
    job.admittedNanos = util::nowNanos();
    job.deadlineNanos =
        job.request.deadlineMicros != 0
            ? job.admittedNanos + job.request.deadlineMicros * 1000
            : 0;
    job.handle = std::move(handle);
    job.trace = std::move(trace);
    // tryPush destroys the job on rejection, trace and all; a cheap copy
    // of the context (a handful of spans) keeps the shed committable.
    obs::TraceContext rejected_copy;
    if (job.trace) {
        rejected_copy = *job.trace;
    }
    AdmissionVerdict verdict = queue_->tryPush(tenant, std::move(job));
    if (verdict.admitted()) {
        slab->add(ids.accepted);
        slab->raise(serve.queueDepth, verdict.depth);
        return;
    }
    slab->add(ids.shed);
    Response shed;
    shed.id = id;
    shed.status = verdict.outcome == Admission::Closed
                      ? ResponseStatus::ShuttingDown
                      : ResponseStatus::RetryAfter;
    shed.generation = generation;
    shed.retryAfterMillis = verdict.retryAfterMillis;
    if (rejected_copy.traceId != 0) {
        shed.traceId = rejected_copy.traceId;
        commitTrace(tracer_->controlLane(), std::move(rejected_copy),
                    verdict.outcome == Admission::Closed
                        ? "shutting-down"
                        : "retry-after",
                    slab);
    }
    respond(*conn, shed);
}

void
Daemon::workerLoop(size_t worker)
{
    Job job;
    size_t tenant = 0;
    while (queue_->pop(job, tenant)) {
        const uint64_t popped = util::nowNanos();
        // SLO sweep: queued requests whose client deadline can no longer
        // be met are answered DEADLINE_SHED now, not mapped later.
        shedExpiredJobs(worker);
        try {
            processJob(worker, job, popped);
        } catch (const util::Error& err) {
            hub_->slab(worker)->add(
                hub_->serve().perTenant[tenant].errors);
            Response error;
            error.id = job.request.id;
            error.status = ResponseStatus::Error;
            error.generation = job.handle ? job.handle->number : 0;
            error.message = err.what();
            if (job.trace) {
                // The mapping threw mid-request: unwind the in-flight
                // marks and keep the partial span tree with an error
                // disposition.
                hub_->flight().ring(worker)->setTrace(0);
                tracer_->endInFlight(worker);
                error.traceId = job.trace->traceId;
                commitTrace(worker, std::move(*job.trace), "error",
                            hub_->slab(worker));
                job.trace.reset();
            }
            respond(*job.conn, error);
        }
        // Drop the pin before blocking on the next pop: an idle worker
        // must not keep a retired generation's arenas mapped.
        job.conn.reset();
        job.handle.reset();
        job.trace.reset();
        queue_->complete(tenant);
    }
}

void
Daemon::shedExpiredJobs(size_t worker)
{
    const uint64_t now = util::nowNanos();
    const uint64_t ewma = serviceEwmaNanos_.load(std::memory_order_relaxed);
    std::vector<std::pair<size_t, Job>> shed;
    queue_->shedIf(
        [&](const Job& queued) {
            return queued.deadlineNanos != 0 &&
                   now + ewma >= queued.deadlineNanos;
        },
        shed);
    if (shed.empty()) {
        return;
    }
    const obs::ServeMetricIds& serve = hub_->serve();
    obs::Registry::ThreadSlab* slab = hub_->slab(worker);
    for (std::pair<size_t, Job>& entry : shed) {
        Job& job = entry.second;
        slab->add(serve.perTenant[entry.first].deadlineShed);
        Response response;
        response.id = job.request.id;
        response.status = ResponseStatus::DeadlineShed;
        response.generation = job.handle ? job.handle->number : 0;
        if (job.trace) {
            // The request died in the queue; close its span tree with the
            // wait it actually endured.  The sweep runs on this worker's
            // thread, so committing through its lane is single-writer.
            job.trace->span(obs::SpanStage::QueueWait,
                            static_cast<uint32_t>(tracer_->controlLane()),
                            job.admittedNanos, now);
            response.traceId = job.trace->traceId;
            commitTrace(worker, std::move(*job.trace), "deadline-shed",
                        slab);
            job.trace.reset();
        }
        respond(*job.conn, response);
        job.conn.reset();
        job.handle.reset();
    }
}

void
Daemon::processJob(size_t worker, Job& job, uint64_t popped_nanos)
{
    const obs::ServeMetricIds& serve = hub_->serve();
    const obs::ServeTenantMetricIds& ids = serve.perTenant[job.tenant];
    obs::Registry::ThreadSlab* slab = hub_->slab(worker);

    const uint64_t generation = job.handle->number;
    obs::TraceContext* trace = job.trace.get();
    const auto lane = static_cast<uint32_t>(worker);
    const uint64_t queue_wait =
        popped_nanos > job.admittedNanos ? popped_nanos - job.admittedNanos
                                         : 0;
    if (trace != nullptr) {
        // The queue-wait span lands on the worker's track: it is the
        // first span of the request's worker-side life, and the flow
        // arrow from the reader track attaches to it.
        trace->span(obs::SpanStage::QueueWait, lane, job.admittedNanos,
                    popped_nanos);
    }

    // Past the drain deadline, queued work is shed, not mapped: the
    // drain contract is "finish or degrade within the deadline", and
    // these requests would start after it.
    uint64_t drain_deadline = drainDeadlineNanos_.load();
    if (drain_deadline != 0 && util::nowNanos() >= drain_deadline) {
        slab->add(ids.shed);
        slab->add(serve.drainShed);
        Response shed;
        shed.id = job.request.id;
        shed.status = ResponseStatus::ShuttingDown;
        shed.generation = generation;
        shed.retryAfterMillis = params_.retryBaseMillis;
        if (trace != nullptr) {
            shed.traceId = trace->traceId;
            shed.queueNanos = queue_wait;
            commitTrace(worker, std::move(*job.trace), "drain-shed", slab);
            job.trace.reset();
        }
        respond(*job.conn, shed);
        return;
    }

    // The client deadline lapsed while this job waited (or the sweep
    // missed it by a beat): refuse rather than map into the void.
    if (job.deadlineNanos != 0 && util::nowNanos() >= job.deadlineNanos) {
        slab->add(ids.deadlineShed);
        Response shed;
        shed.id = job.request.id;
        shed.status = ResponseStatus::DeadlineShed;
        shed.generation = generation;
        if (trace != nullptr) {
            shed.traceId = trace->traceId;
            shed.queueNanos = queue_wait;
            commitTrace(worker, std::move(*job.trace), "deadline-shed",
                        slab);
            job.trace.reset();
        }
        respond(*job.conn, shed);
        return;
    }

    obs::StageAccumulator stage_nanos;
    if (trace != nullptr) {
        // While this request maps, the flight recorder attributes its
        // reads to the trace id and the in-flight table names it — so
        // watchdog cancels, crash dumps, and mg_top all say which
        // *request* was on the table, not just which read.
        hub_->flight().ring(worker)->setTrace(trace->traceId);
        tracer_->beginInFlight(worker, trace->traceId, trace->beginNanos);
    }

    resilience::WorkBudget budget =
        requestBudget(job.request, params_.maxBudget);
    const uint64_t map_start = util::nowNanos();
    giraffe::SessionResult result = job.handle->session->map(
        worker, job.request.reads, budget, &board_, hub_.get(), nullptr,
        trace != nullptr ? &stage_nanos : nullptr);
    const uint64_t map_end = util::nowNanos();
    const uint64_t service = map_end - map_start;
    const uint64_t prev =
        serviceEwmaNanos_.load(std::memory_order_relaxed);
    serviceEwmaNanos_.store(
        prev == 0 ? service : (7 * prev + service) / 8,
        std::memory_order_relaxed);
    std::atomic<uint64_t>& tenant_ewma = tenantEwmaNanos_[job.tenant];
    const uint64_t tenant_prev =
        tenant_ewma.load(std::memory_order_relaxed);
    tenant_ewma.store(tenant_prev == 0 ? service
                                       : (7 * tenant_prev + service) / 8,
                      std::memory_order_relaxed);

    if (trace != nullptr) {
        // The mapping stages were accumulated across the request's reads;
        // lay them end to end inside the map window so the trace shows
        // where the request's mapping time went without a span per read.
        uint64_t at = map_start;
        constexpr obs::SpanStage kMapStages[] = {
            obs::SpanStage::Seed, obs::SpanStage::Cluster,
            obs::SpanStage::Extend, obs::SpanStage::GafEmit
        };
        for (obs::SpanStage stage : kMapStages) {
            const uint64_t ns =
                stage_nanos.nanos[static_cast<size_t>(stage)];
            if (ns == 0) {
                continue;
            }
            trace->span(stage, lane, at, at + ns);
            at += ns;
        }
    }

    Response ok;
    ok.id = job.request.id;
    ok.status = ResponseStatus::Ok;
    ok.generation = generation;
    ok.mappedReads = result.mappedReads;
    ok.degradedReads = result.degradedReads;
    if (params_.gafGenerationComment) {
        ok.gaf = util::cat("# mg:gen=", generation,
                           " source=", job.handle->source, "\n");
        ok.gaf += result.gaf;
    } else {
        ok.gaf = std::move(result.gaf);
    }
    if (trace != nullptr) {
        ok.traceId = trace->traceId;
        ok.queueNanos = queue_wait;
        ok.mapNanos = service;
    }
    const uint64_t write_start = util::nowNanos();
    const bool sent = respond(*job.conn, ok);
    if (trace != nullptr) {
        trace->span(obs::SpanStage::Write, lane, write_start,
                    util::nowNanos());
        hub_->flight().ring(worker)->setTrace(0);
        tracer_->endInFlight(worker);
        commitTrace(worker, std::move(*job.trace),
                    !sent ? "error"
                          : (result.degradedReads > 0 ? "degraded" : "ok"),
                    slab);
        job.trace.reset();
    }
    if (!sent) {
        // The peer vanished mid-request; the work is done but the
        // response has nowhere to go.  Count it so no request is ever
        // silently unaccounted for.
        slab->add(ids.errors);
        std::fprintf(stderr,
                     "mgd: response %llu (tenant %s) lost: peer gone\n",
                     static_cast<unsigned long long>(job.request.id),
                     queue_->tenant(job.tenant).name.c_str());
        return;
    }
    slab->add(ids.completed);
    if (result.degradedReads > 0) {
        slab->add(ids.degraded);
    }
    slab->observe(ids.latency, util::nowNanos() - job.admittedNanos);
}

bool
Daemon::respond(Connection& conn, const Response& response)
{
    if (!conn.open.load()) {
        return false;
    }
    std::vector<uint8_t> payload = encodeResponse(response);
    std::lock_guard<std::mutex> lock(conn.writeMutex);
    util::Status status;
    try {
        status = writeFrame(conn.fd, payload);
    } catch (const util::Error&) {
        closeConnection(conn);
        return false;
    }
    if (!status.ok()) {
        closeConnection(conn);
        return false;
    }
    return true;
}

void
Daemon::closeConnection(Connection& conn)
{
    // Shut down both directions but leave the close() of the fd to the
    // Connection destructor: a worker may still hold the shared_ptr and
    // the fd number must not be recycled under it.
    bool was_open = conn.open.exchange(false);
    if (was_open) {
        ::shutdown(conn.fd, SHUT_RDWR);
    }
}

void
Daemon::requestDrain()
{
    DaemonState expected = DaemonState::Running;
    if (!state_.compare_exchange_strong(expected,
                                        DaemonState::Draining)) {
        return; // already draining/stopped
    }
    controlSlab()->add(hub_->serve().drains);
    drainDeadlineNanos_.store(
        util::nowNanos() +
        static_cast<uint64_t>(params_.drainDeadlineSeconds * 1e9));
    // Stop admitting and wake the acceptor out of poll().
    queue_->close();
    if (wakePipe_[1] >= 0) {
        uint8_t byte = 1;
        (void)io::writeFull(wakePipe_[1], &byte, 1);
    }
}

void
Daemon::stop()
{
    if (state_.load() == DaemonState::Idle ||
        state_.load() == DaemonState::Stopped) {
        state_.store(DaemonState::Stopped);
        return;
    }
    requestDrain();

    // Drain supervision: give queued + in-flight work until the deadline,
    // then force — cancel tokens make in-flight requests return degraded
    // at their next cancellation point, and workers shed what is still
    // queued with ShuttingDown responses.
    const uint64_t deadline = drainDeadlineNanos_.load();
    while (queue_->depth() > 0 || queue_->inFlight() > 0) {
        if (util::nowNanos() >= deadline) {
            report_.drainClean = false;
            controlSlab()->add(hub_->serve().drainForced,
                               queue_->inFlight());
            for (size_t w = 0; w < params_.workers; ++w) {
                board_.slot(w).token.cancel(
                    resilience::CancelReason::Deadline);
            }
            break;
        }
        ::usleep(2000);
    }
    for (std::thread& worker : workers_) {
        worker.join();
    }
    workers_.clear();
    watchdog_->stop();

    // Every response is out; now unblock the readers and the acceptor.
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (const std::shared_ptr<Connection>& conn : connections_) {
            closeConnection(*conn);
        }
    }
    if (acceptor_.joinable()) {
        acceptor_.join();
    }
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (std::thread& reader : readers_) {
            reader.join();
        }
        readers_.clear();
        connections_.clear();
    }
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    for (int& fd : wakePipe_) {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
    ::unlink(params_.socketPath.c_str());

    // Workers are joined, so the last pinned handles are gone; fold any
    // newly released generations into the metric before the snapshot.
    accountRetired();

    // Trace exports (post-join: the span buffers are quiescent).
    report_.tracedRequests = tracer_->committedTotal();
    if (!params_.traceOut.empty()) {
        tracer_->writeChromeTrace(params_.traceOut, "mgd");
    }
    if (!params_.traceDumpPrefix.empty()) {
        // One dump per tail exemplar, named by trace id; the flight
        // recorder rings provide the "what else was on the table"
        // context shared by every dump.
        std::vector<obs::FlightEntry> flight;
        for (size_t wk = 0; wk < params_.workers; ++wk) {
            std::vector<obs::FlightEntry> entries =
                hub_->flight().snapshot(wk);
            flight.insert(flight.end(), entries.begin(), entries.end());
        }
        for (const obs::RequestTracer::Exemplar& exemplar :
             tracer_->exemplars()) {
            obs::writeTraceDump(params_.traceDumpPrefix +
                                    obs::traceIdHex(exemplar.ctx.traceId) +
                                    ".mgtrace",
                                exemplar, flight);
            ++report_.traceDumps;
        }
    }

    // Final accounting from the registry (counters are already summed
    // across worker + control slabs by snapshot()).
    obs::Snapshot snap = hub_->registry().snapshot();
    const obs::ServeMetricIds& serve = hub_->serve();
    report_.accepted = 0;
    report_.completed = 0;
    report_.shed = 0;
    report_.deadlineShed = 0;
    report_.errors = 0;
    for (const std::string& tenant : serve.tenants) {
        auto named = [&tenant](const char* stem) {
            return std::string(stem) + "{" +
                   obs::promLabel("tenant", tenant) + "}";
        };
        report_.accepted += snap.valueOf(named("mg_serve_accepted_total"));
        report_.completed +=
            snap.valueOf(named("mg_serve_completed_total"));
        report_.shed += snap.valueOf(named("mg_serve_shed_total"));
        report_.deadlineShed +=
            snap.valueOf(named("mg_serve_deadline_shed_total"));
        report_.errors += snap.valueOf(named("mg_serve_errors_total"));
    }
    report_.drainShed = snap.valueOf("mg_serve_drain_shed_total");
    report_.badFrames = snap.valueOf("mg_serve_bad_frames_total");
    report_.reloads = snap.valueOf("mg_serve_reloads_total");
    report_.reloadsRejected =
        snap.valueOf("mg_serve_reloads_rejected_total");
    report_.generationsRetired =
        snap.valueOf("mg_serve_generations_retired_total");
    report_.finalGeneration = index_->generation();
    report_.watchdogCancels = watchdog_->events().size();
    state_.store(DaemonState::Stopped);
}

std::vector<TenantConfig>
parseTenantSpec(const std::string& spec)
{
    std::vector<TenantConfig> tenants;
    size_t start = 0;
    while (start <= spec.size()) {
        size_t comma = spec.find(',', start);
        std::string entry =
            spec.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        start = comma == std::string::npos ? spec.size() + 1 : comma + 1;
        if (entry.empty()) {
            continue;
        }
        TenantConfig config;
        size_t colon = entry.find(':');
        config.name = entry.substr(0, colon);
        MG_CHECK(!config.name.empty(), "tenant spec '", entry,
                 "' has no name");
        while (colon != std::string::npos) {
            size_t next = entry.find(':', colon + 1);
            std::string field =
                entry.substr(colon + 1, next == std::string::npos
                                            ? std::string::npos
                                            : next - colon - 1);
            colon = next;
            size_t eq = field.find('=');
            MG_CHECK(eq != std::string::npos, "tenant field '", field,
                     "' is not key=value");
            std::string key = field.substr(0, eq);
            std::string text = field.substr(eq + 1);
            char* end = nullptr;
            uint64_t value = std::strtoull(text.c_str(), &end, 10);
            MG_CHECK(end != nullptr && *end == '\0' && !text.empty(),
                     "tenant field '", field, "' is not a number");
            if (key == "weight") {
                config.weight = static_cast<uint32_t>(value);
            } else if (key == "inflight") {
                config.maxInFlight = value;
            } else if (key == "queued") {
                config.maxQueued = value;
            } else {
                MG_CHECK(false, "unknown tenant field '", key, "'");
            }
        }
        tenants.push_back(std::move(config));
    }
    return tenants;
}

} // namespace mg::serve
