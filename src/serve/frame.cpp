#include "serve/frame.h"

#include <cerrno>
#include <cstring>

#include "fault/fault.h"
#include "io/fd.h"
#include "util/common.h"
#include "util/crc32.h"
#include "util/cursor.h"
#include "util/timer.h"
#include "util/varint.h"

namespace mg::serve {

namespace {

constexpr uint8_t kFrameMagic[2] = { 'M', 'F' };

/** Most reads a request may carry (mirrors the frame-size defense: a
 *  corrupt count must not drive a huge allocation before the payload
 *  bounds catch it). */
constexpr uint64_t kMaxReadsPerFrame = 1u << 20;

util::Status
statusOf(util::StatusCode code, std::string message, uint64_t offset = 0)
{
    util::Status status;
    status.code = code;
    status.message = std::move(message);
    status.section = "frame";
    status.offset = offset;
    return status;
}

/** Run a ByteCursor decode, converting any StatusError to a Status. */
template <typename Fn>
util::Status
guardedDecode(Fn&& fn)
{
    try {
        fn();
    } catch (const util::StatusError& err) {
        return err.status();
    }
    return util::Status{};
}

} // namespace

const char*
responseStatusName(ResponseStatus status)
{
    switch (status) {
      case ResponseStatus::Ok:
        return "ok";
      case ResponseStatus::RetryAfter:
        return "retry-after";
      case ResponseStatus::Error:
        return "error";
      case ResponseStatus::ShuttingDown:
        return "shutting-down";
      case ResponseStatus::ReloadOk:
        return "reload-ok";
      case ResponseStatus::ReloadRejected:
        return "reload-rejected";
      case ResponseStatus::DeadlineShed:
        return "deadline-shed";
      case ResponseStatus::StatsOk:
        return "stats-ok";
    }
    return "?";
}

std::vector<uint8_t>
encodeRequest(const Request& request)
{
    util::ByteWriter writer;
    writer.putByte(static_cast<uint8_t>(MessageKind::Request));
    writer.putVarint(request.id);
    writer.putString(request.tenant);
    writer.putVarint(request.deadlineMicros);
    writer.putVarint(request.maxExtendSteps);
    writer.putVarint(request.maxGbwtLookups);
    writer.putVarint(request.reads.size());
    for (const map::Read& read : request.reads) {
        writer.putString(read.name);
        writer.putString(read.sequence);
    }
    // Optional trailing trace id: omitted entirely for untraced requests
    // so their encoding is byte-identical to the pre-tracing format.
    if (request.traceId != 0) {
        writer.putVarint(request.traceId);
    }
    return writer.takeBytes();
}

std::vector<uint8_t>
encodeResponse(const Response& response)
{
    util::ByteWriter writer;
    writer.putByte(static_cast<uint8_t>(MessageKind::Response));
    writer.putVarint(response.id);
    writer.putByte(static_cast<uint8_t>(response.status));
    // The generation rides on every status so per-generation breakdowns
    // can attribute sheds and retries, not just successful maps.
    writer.putVarint(response.generation);
    switch (response.status) {
      case ResponseStatus::Ok:
        writer.putVarint(response.mappedReads);
        writer.putVarint(response.degradedReads);
        writer.putString(response.gaf);
        break;
      case ResponseStatus::RetryAfter:
      case ResponseStatus::ShuttingDown:
      case ResponseStatus::DeadlineShed:
        writer.putVarint(response.retryAfterMillis);
        break;
      case ResponseStatus::Error:
      case ResponseStatus::ReloadOk:
      case ResponseStatus::ReloadRejected:
      case ResponseStatus::StatsOk:
        writer.putString(response.message);
        break;
    }
    // Optional trailing trace echo (id + daemon-side queue/map time),
    // present only for traced requests; untraced responses stay
    // byte-identical to the pre-tracing format.
    if (response.traceId != 0) {
        writer.putVarint(response.traceId);
        writer.putVarint(response.queueNanos);
        writer.putVarint(response.mapNanos);
    }
    return writer.takeBytes();
}

std::vector<uint8_t>
encodeControl(const ControlRequest& control)
{
    util::ByteWriter writer;
    writer.putByte(static_cast<uint8_t>(MessageKind::Control));
    writer.putVarint(control.id);
    writer.putByte(static_cast<uint8_t>(control.op));
    writer.putString(control.path);
    return writer.takeBytes();
}

util::Status
peekKind(const std::vector<uint8_t>& payload, MessageKind& out)
{
    if (payload.empty()) {
        return statusOf(util::StatusCode::Truncated, "empty payload");
    }
    if (payload[0] != static_cast<uint8_t>(MessageKind::Request) &&
        payload[0] != static_cast<uint8_t>(MessageKind::Response) &&
        payload[0] != static_cast<uint8_t>(MessageKind::Control)) {
        return statusOf(util::StatusCode::Corrupt,
                        util::cat("unknown message kind ",
                                  static_cast<int>(payload[0])));
    }
    out = static_cast<MessageKind>(payload[0]);
    return util::Status{};
}

util::Status
decodeRequest(const std::vector<uint8_t>& payload, Request& out)
{
    return guardedDecode([&] {
        util::ByteCursor cursor(payload);
        cursor.enterSection("request");
        cursor.check(cursor.getByte() ==
                         static_cast<uint8_t>(MessageKind::Request),
                     util::StatusCode::Corrupt, "not a request payload");
        out.id = cursor.getVarint();
        out.tenant = cursor.getString();
        out.deadlineMicros = cursor.getVarint();
        out.maxExtendSteps = cursor.getVarint();
        out.maxGbwtLookups = cursor.getVarint();
        uint64_t count = cursor.getVarint();
        cursor.check(count <= kMaxReadsPerFrame, util::StatusCode::Corrupt,
                     "request claims ", count, " reads (cap ",
                     kMaxReadsPerFrame, ")");
        cursor.check(count <= cursor.remaining(),
                     util::StatusCode::Truncated,
                     "read count exceeds remaining payload");
        out.reads.clear();
        out.reads.reserve(count);
        for (uint64_t i = 0; i < count; ++i) {
            map::Read read;
            read.name = cursor.getString();
            read.sequence = cursor.getString();
            out.reads.push_back(std::move(read));
        }
        out.traceId = 0;
        if (!cursor.atEnd()) {
            out.traceId = cursor.getVarint();
        }
        cursor.check(cursor.atEnd(), util::StatusCode::Corrupt,
                     "trailing bytes after request");
    });
}

util::Status
decodeResponse(const std::vector<uint8_t>& payload, Response& out)
{
    return guardedDecode([&] {
        util::ByteCursor cursor(payload);
        cursor.enterSection("response");
        cursor.check(cursor.getByte() ==
                         static_cast<uint8_t>(MessageKind::Response),
                     util::StatusCode::Corrupt, "not a response payload");
        out.id = cursor.getVarint();
        uint8_t raw = cursor.getByte();
        cursor.check(raw <= static_cast<uint8_t>(ResponseStatus::StatsOk),
                     util::StatusCode::Corrupt, "unknown response status ",
                     static_cast<int>(raw));
        out.status = static_cast<ResponseStatus>(raw);
        out.generation = cursor.getVarint();
        out.gaf.clear();
        out.message.clear();
        out.mappedReads = 0;
        out.degradedReads = 0;
        out.retryAfterMillis = 0;
        out.traceId = 0;
        out.queueNanos = 0;
        out.mapNanos = 0;
        switch (out.status) {
          case ResponseStatus::Ok:
            out.mappedReads = cursor.getVarint();
            out.degradedReads = cursor.getVarint();
            out.gaf = cursor.getString();
            break;
          case ResponseStatus::RetryAfter:
          case ResponseStatus::ShuttingDown:
          case ResponseStatus::DeadlineShed:
            out.retryAfterMillis =
                static_cast<uint32_t>(cursor.getVarint());
            break;
          case ResponseStatus::Error:
          case ResponseStatus::ReloadOk:
          case ResponseStatus::ReloadRejected:
          case ResponseStatus::StatsOk:
            out.message = cursor.getString();
            break;
        }
        if (!cursor.atEnd()) {
            out.traceId = cursor.getVarint();
            out.queueNanos = cursor.getVarint();
            out.mapNanos = cursor.getVarint();
        }
        cursor.check(cursor.atEnd(), util::StatusCode::Corrupt,
                     "trailing bytes after response");
    });
}

util::Status
decodeControl(const std::vector<uint8_t>& payload, ControlRequest& out)
{
    return guardedDecode([&] {
        util::ByteCursor cursor(payload);
        cursor.enterSection("control");
        cursor.check(cursor.getByte() ==
                         static_cast<uint8_t>(MessageKind::Control),
                     util::StatusCode::Corrupt, "not a control payload");
        out.id = cursor.getVarint();
        uint8_t raw = cursor.getByte();
        cursor.check(raw == static_cast<uint8_t>(ControlOp::Reload) ||
                         raw == static_cast<uint8_t>(ControlOp::Stats),
                     util::StatusCode::Corrupt, "unknown control op ",
                     static_cast<int>(raw));
        out.op = static_cast<ControlOp>(raw);
        out.path = cursor.getString();
        cursor.check(cursor.atEnd(), util::StatusCode::Corrupt,
                     "trailing bytes after control request");
    });
}

std::vector<uint8_t>
frameBytes(const std::vector<uint8_t>& payload)
{
    MG_CHECK(payload.size() <= kMaxFramePayload,
             "frame payload exceeds kMaxFramePayload");
    std::vector<uint8_t> out;
    out.reserve(2 + 10 + payload.size() + 4);
    out.push_back(kFrameMagic[0]);
    out.push_back(kFrameMagic[1]);
    util::putVarint(out, payload.size());
    out.insert(out.end(), payload.begin(), payload.end());
    uint32_t crc = util::crc32(payload.data(), payload.size());
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<uint8_t>(crc >> (8 * i)));
    }
    return out;
}

util::Status
writeFrame(int fd, const std::vector<uint8_t>& payload)
{
    std::vector<uint8_t> frame = frameBytes(payload);
    // Fault site: a failing, stalling, or torn transmit.  A Corrupt or
    // TornWrite fire mangles the *frame* (not the payload codec), which
    // is exactly what the receiver's CRC exists to catch.
    if (auto mangled = fault::corrupted("serve.write", frame)) {
        frame = std::move(*mangled);
    }
    if (io::writeFull(fd, frame.data(), frame.size()) < 0) {
        return statusOf(util::StatusCode::IoError,
                        util::cat("frame write failed: ",
                                  std::strerror(errno)));
    }
    return util::Status{};
}

util::Status
readFrame(int fd, std::vector<uint8_t>& payload, uint64_t* arrival_nanos)
{
    // Fault site: a stalled or failing peer on the receive path.
    fault::inject("serve.read");

    uint8_t magic[2];
    ssize_t got = io::readFull(fd, magic, 2);
    if (got < 0) {
        return statusOf(util::StatusCode::IoError,
                        util::cat("frame read failed: ",
                                  std::strerror(errno)));
    }
    if (got == 0) {
        // Clean EOF between frames: the peer closed its end.
        return statusOf(util::StatusCode::Truncated, "eof");
    }
    if (got < 2 || magic[0] != kFrameMagic[0] ||
        magic[1] != kFrameMagic[1]) {
        return statusOf(util::StatusCode::Corrupt, "bad frame magic");
    }
    if (arrival_nanos != nullptr) {
        *arrival_nanos = util::nowNanos();
    }

    // Varint size, one byte at a time (LEB128, at most 10 bytes).
    uint64_t size = 0;
    int shift = 0;
    for (int i = 0;; ++i) {
        if (i >= 10) {
            return statusOf(util::StatusCode::Corrupt,
                            "overlong frame size varint");
        }
        uint8_t byte;
        got = io::readFull(fd, &byte, 1);
        if (got < 0) {
            return statusOf(util::StatusCode::IoError,
                            util::cat("frame read failed: ",
                                      std::strerror(errno)));
        }
        if (got == 0) {
            return statusOf(util::StatusCode::Truncated,
                            "eof inside frame size");
        }
        size |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
            break;
        }
        shift += 7;
    }
    if (size > kMaxFramePayload) {
        return statusOf(util::StatusCode::Corrupt,
                        util::cat("frame payload of ", size,
                                  " bytes exceeds cap"));
    }

    payload.resize(size);
    if (size > 0) {
        got = io::readFull(fd, payload.data(), size);
        if (got < 0) {
            return statusOf(util::StatusCode::IoError,
                            util::cat("frame read failed: ",
                                      std::strerror(errno)));
        }
        if (static_cast<uint64_t>(got) < size) {
            return statusOf(util::StatusCode::Truncated,
                            "eof inside frame payload");
        }
    }

    uint8_t crc_bytes[4];
    got = io::readFull(fd, crc_bytes, 4);
    if (got < 0) {
        return statusOf(util::StatusCode::IoError,
                        util::cat("frame read failed: ",
                                  std::strerror(errno)));
    }
    if (got < 4) {
        return statusOf(util::StatusCode::Truncated,
                        "eof inside frame checksum");
    }
    uint32_t stored = 0;
    for (int i = 0; i < 4; ++i) {
        stored |= static_cast<uint32_t>(crc_bytes[i]) << (8 * i);
    }
    uint32_t actual = util::crc32(payload.data(), payload.size());
    if (stored != actual) {
        return statusOf(util::StatusCode::ChecksumMismatch,
                        util::cat("frame checksum mismatch: stored ",
                                  stored, ", computed ", actual));
    }
    return util::Status{};
}

bool
isCleanEof(const util::Status& status)
{
    return status.code == util::StatusCode::Truncated &&
           status.message == "eof";
}

std::vector<std::vector<uint8_t>>
parseFrameStream(const std::vector<uint8_t>& bytes, std::string_view file)
{
    std::vector<std::vector<uint8_t>> payloads;
    util::ByteCursor cursor(bytes, file);
    cursor.enterSection("frame-stream");
    while (!cursor.atEnd()) {
        uint8_t m0 = cursor.getByte();
        uint8_t m1 = cursor.getByte();
        cursor.check(m0 == kFrameMagic[0] && m1 == kFrameMagic[1],
                     util::StatusCode::Corrupt, "bad frame magic");
        uint64_t size = cursor.getVarint();
        cursor.check(size <= kMaxFramePayload, util::StatusCode::Corrupt,
                     "frame payload of ", size, " bytes exceeds cap");
        cursor.check(size + 4 <= cursor.remaining(),
                     util::StatusCode::Truncated,
                     "frame larger than remaining stream");
        std::vector<uint8_t> payload(size);
        cursor.getBytes(payload.data(), size);
        uint8_t crc_bytes[4];
        cursor.getBytes(crc_bytes, 4);
        uint32_t stored = 0;
        for (int i = 0; i < 4; ++i) {
            stored |= static_cast<uint32_t>(crc_bytes[i]) << (8 * i);
        }
        uint32_t actual = util::crc32(payload.data(), payload.size());
        cursor.check(stored == actual, util::StatusCode::ChecksumMismatch,
                     "frame checksum mismatch: stored ", stored,
                     ", computed ", actual);
        payloads.push_back(std::move(payload));
    }
    return payloads;
}

resilience::WorkBudget
requestBudget(const Request& request, const resilience::WorkBudget& ceiling)
{
    resilience::WorkBudget budget;
    budget.wallSeconds =
        static_cast<double>(request.deadlineMicros) * 1e-6;
    budget.maxExtendSteps = request.maxExtendSteps;
    budget.maxGbwtLookups = request.maxGbwtLookups;
    // Clamp to the operator ceiling: 0 in the request means "unlimited",
    // which a non-zero ceiling turns into "exactly the ceiling".
    if (ceiling.wallSeconds > 0.0 &&
        (budget.wallSeconds <= 0.0 ||
         budget.wallSeconds > ceiling.wallSeconds)) {
        budget.wallSeconds = ceiling.wallSeconds;
    }
    if (ceiling.maxExtendSteps != 0 &&
        (budget.maxExtendSteps == 0 ||
         budget.maxExtendSteps > ceiling.maxExtendSteps)) {
        budget.maxExtendSteps = ceiling.maxExtendSteps;
    }
    if (ceiling.maxGbwtLookups != 0 &&
        (budget.maxGbwtLookups == 0 ||
         budget.maxGbwtLookups > ceiling.maxGbwtLookups)) {
        budget.maxGbwtLookups = ceiling.maxGbwtLookups;
    }
    return budget;
}

} // namespace mg::serve
